package maxflow

import "fmt"

// Solver is a reusable retrieval-feasibility engine. It owns one bipartite
// flow network (source → blocks → devices → sink) whose buffers are
// preallocated once and rewritten in place on every call, so repeated
// solves perform zero heap allocations in the steady state. Results are
// bit-identical to the from-scratch FeasibleSchedule/MinAccesses reference:
// edges are laid out in the exact same order and solved by the same Dinic
// implementation, so the computed flow — and therefore the returned
// assignment — matches the fresh-graph path exactly.
//
// A Solver is NOT safe for concurrent use: it reuses internal scratch and
// returns assignments backed by an internal buffer that the next call
// overwrites. Use one Solver per goroutine (sampling.Estimate gives each
// worker its own) and copy the assignment if it must outlive the next call.
type Solver struct {
	g Graph // active network; slices re-point into the buffers below

	// Backing buffers sized for the largest shape seen so far.
	adjBuf   [][]int
	levelBuf []int
	iterBuf  []int
	queueBuf []int

	// Shape of the network currently built: b blocks, n devices, and the
	// replica-list length of each block. When an incoming instance has the
	// same shape, only the block→device edge targets and the device
	// adjacency lists are rewritten; the source→block and device→sink
	// structure is kept as is.
	b, n       int
	counts     []int
	blockEdges int // total block→device edge count of the current shape

	assign Assignment // reusable result buffer
}

// NewSolver returns a Solver preallocated for instances of up to maxBlocks
// blocks on up to maxDevices devices. Larger instances still work — buffers
// grow on demand — but the steady state is allocation-free only once the
// buffers have grown to the working set's high-water mark.
func NewSolver(maxBlocks, maxDevices int) *Solver {
	if maxBlocks < 0 {
		maxBlocks = 0
	}
	if maxDevices < 0 {
		maxDevices = 0
	}
	nv := maxBlocks + maxDevices + 2
	const replicasHint = 4
	s := &Solver{
		adjBuf:   make([][]int, nv),
		levelBuf: make([]int, nv),
		iterBuf:  make([]int, nv),
		queueBuf: make([]int, nv),
		counts:   make([]int, 0, maxBlocks),
		assign:   make(Assignment, 0, maxBlocks),
	}
	s.g.edges = make([]edge, 0, 2*(maxBlocks*(replicasHint+1)+maxDevices))
	return s
}

// ensure grows the vertex-indexed buffers to hold nv vertices and points
// the graph's scratch slices at them.
func (s *Solver) ensure(nv int) {
	if nv > len(s.adjBuf) {
		grown := make([][]int, nv)
		copy(grown, s.adjBuf)
		s.adjBuf = grown
		s.levelBuf = make([]int, nv)
		s.iterBuf = make([]int, nv)
		s.queueBuf = make([]int, nv)
	}
	s.g.n = nv
	s.g.adj = s.adjBuf[:nv]
	s.g.level = s.levelBuf[:nv]
	s.g.iter = s.iterBuf[:nv]
	s.g.queue = s.queueBuf[:0]
}

// sameShape reports whether the instance matches the currently built
// network: identical block count, device count, and per-block replica-list
// lengths. Replica *targets* may differ — those are rewritten in place.
func (s *Solver) sameShape(replicas [][]int, n int) bool {
	if len(replicas) != s.b || n != s.n || len(s.counts) != len(replicas) {
		return false
	}
	for i, devs := range replicas {
		if len(devs) != s.counts[i] {
			return false
		}
	}
	return true
}

// prepare builds (or rewrites in place) the feasibility network for the
// instance, leaving every device→sink capacity at 0 and all flow zeroed;
// callers follow with setCaps/setCapsUniform. Device ids are validated in
// one upfront pass. Edge order matches FeasibleSchedule's reference layout
// exactly: b source→block pairs, then the block→device pairs in replica
// order, then n device→sink pairs.
func (s *Solver) prepare(replicas [][]int, n int) {
	for _, devs := range replicas {
		for _, d := range devs {
			if d < 0 || d >= n {
				panic(fmt.Sprintf("maxflow: device %d out of range [0,%d)", d, n))
			}
		}
	}
	if s.sameShape(replicas, n) {
		s.rewrite(replicas)
		return
	}
	s.rebuild(replicas, n)
}

// rewrite retargets the block→device edges of a same-shape network in
// place: edge slots, source/block/sink adjacency, and capacities are all
// reused; only the edge targets, the device adjacency lists, and the flow
// state change.
func (s *Solver) rewrite(replicas [][]int) {
	b, n := s.b, s.n
	g := &s.g
	for i := range g.edges {
		g.edges[i].flow = 0
	}
	for d := 0; d < n; d++ {
		g.adj[1+b+d] = g.adj[1+b+d][:0]
	}
	k := 0
	for _, devs := range replicas {
		for _, d := range devs {
			fwd := 2 * (b + k)
			g.edges[fwd].to = 1 + b + d
			g.adj[1+b+d] = append(g.adj[1+b+d], fwd+1)
			k++
		}
	}
	// The device→sink edge was added after all block edges, so it comes
	// last in each device's adjacency — same order as a fresh build.
	for d := 0; d < n; d++ {
		g.adj[1+b+d] = append(g.adj[1+b+d], 2*(b+s.blockEdges+d))
	}
	g.queue = s.queueBuf[:0]
}

// rebuild constructs the network from scratch into the reused buffers.
func (s *Solver) rebuild(replicas [][]int, n int) {
	b := len(replicas)
	nv := b + n + 2
	// Clear the adjacency of every vertex the previous shape used; vertices
	// beyond that are empty by induction.
	prev := s.b + s.n + 2
	if s.b == 0 && s.n == 0 {
		prev = 0
	}
	for i := 0; i < prev && i < len(s.adjBuf); i++ {
		s.adjBuf[i] = s.adjBuf[i][:0]
	}
	s.ensure(nv)
	g := &s.g
	g.edges = g.edges[:0]
	src, sink := 0, b+n+1
	for i := range replicas {
		g.AddEdge(src, 1+i, 1)
	}
	s.counts = s.counts[:0]
	k := 0
	for i, devs := range replicas {
		for _, d := range devs {
			g.AddEdge(1+i, 1+b+d, 1)
			k++
		}
		s.counts = append(s.counts, len(devs))
	}
	for d := 0; d < n; d++ {
		g.AddEdge(1+b+d, sink, 0)
	}
	s.b, s.n, s.blockEdges = b, n, k
}

// setCapsUniform sets every device→sink capacity to m.
func (s *Solver) setCapsUniform(m int) {
	base := s.b + s.blockEdges
	for d := 0; d < s.n; d++ {
		s.g.edges[2*(base+d)].cap = m
	}
}

// raiseCaps increments every device→sink capacity by one. The flow already
// pushed remains a valid flow in the enlarged network — raising sink-side
// capacities never violates an edge's capacity or conservation — so Dinic
// can continue from the current residual instead of re-solving.
func (s *Solver) raiseCaps() {
	base := s.b + s.blockEdges
	for d := 0; d < s.n; d++ {
		s.g.edges[2*(base+d)].cap++
	}
}

// resetFlows zeroes the flow state, keeping the network structure.
func (s *Solver) resetFlows() {
	for i := range s.g.edges {
		s.g.edges[i].flow = 0
	}
}

// extract reads the assignment off the block→device edge flows by index
// arithmetic (block edge k is edge pair b+k, in replica order) into the
// solver's reusable buffer. Valid until the next call on this Solver.
func (s *Solver) extract(replicas [][]int) Assignment {
	b := s.b
	if cap(s.assign) < b {
		s.assign = make(Assignment, b)
	}
	s.assign = s.assign[:b]
	k := 0
	for i, devs := range replicas {
		s.assign[i] = -1
		for range devs {
			fwd := 2 * (b + k)
			if s.g.edges[fwd].flow > 0 {
				s.assign[i] = s.g.edges[fwd].to - (1 + b)
			}
			k++
		}
	}
	return s.assign
}

// Feasible reports whether the b blocks can be retrieved in at most m
// parallel accesses on n devices, and if so returns the block→device
// assignment. Semantics match FeasibleSchedule; the returned assignment is
// backed by the Solver's buffer and is valid only until the next call.
func (s *Solver) Feasible(replicas [][]int, n, m int) (Assignment, bool) {
	b := len(replicas)
	if b == 0 {
		return Assignment{}, true
	}
	if m <= 0 {
		return nil, false
	}
	s.prepare(replicas, n)
	s.setCapsUniform(m)
	if s.g.MaxFlow(0, b+n+1) != b {
		return nil, false
	}
	return s.extract(replicas), true
}

// FeasibleCaps is Feasible with an individual capacity per device (device d
// may serve at most caps[d] blocks); n is len(caps). Used by the
// heterogeneous (makespan) scheduler.
func (s *Solver) FeasibleCaps(replicas [][]int, caps []int) (Assignment, bool) {
	b := len(replicas)
	n := len(caps)
	if b == 0 {
		return Assignment{}, true
	}
	s.prepare(replicas, n)
	base := s.b + s.blockEdges
	for d := 0; d < n; d++ {
		s.g.edges[2*(base+d)].cap = caps[d]
	}
	if s.g.MaxFlow(0, b+n+1) != b {
		return nil, false
	}
	return s.extract(replicas), true
}

// Solve returns the minimal number of parallel accesses M* for the request
// together with an optimal assignment, raising M incrementally: after an
// infeasible check at M, the device→sink capacities are bumped to M+1 and
// Dinic continues from the existing residual flow, so each increment pays
// only for the marginal augmenting paths. When M had to be raised, one
// final from-scratch solve at M* canonicalizes the assignment so it is
// bit-identical to the fresh-graph MinAccesses reference. Semantics match
// MinAccesses; the returned assignment is backed by the Solver's buffer
// and is valid only until the next call.
func (s *Solver) Solve(replicas [][]int, n int) (int, Assignment) {
	b := len(replicas)
	if b == 0 {
		return 0, Assignment{}
	}
	lb := (b + n - 1) / n // optimal lower bound ⌈b/n⌉
	s.prepare(replicas, n)
	s.setCapsUniform(lb)
	src, sink := 0, b+n+1
	flow := s.g.MaxFlow(src, sink)
	m := lb
	for flow < b {
		m++
		if m > b {
			panic("maxflow: no feasible schedule — block with no valid replica")
		}
		s.raiseCaps()
		flow += s.g.MaxFlow(src, sink)
	}
	if m > lb {
		// Re-solve once from zero flow at M*: the incremental residual told
		// us the minimal M cheaply, but its flow decomposition can differ
		// from a fresh solve's, and callers (and the paper harnesses)
		// depend on the reference assignment bit-for-bit.
		s.resetFlows()
		if s.g.MaxFlow(src, sink) != b {
			panic("maxflow: canonical re-solve infeasible") // unreachable: M* verified above
		}
	}
	return m, s.extract(replicas)
}
