package maxflow

import (
	"math/rand"
	"reflect"
	"testing"
)

// --- From-scratch reference implementations ---
//
// These are verbatim copies of the pre-engine FeasibleSchedule/MinAccesses:
// a fresh Graph per call, bookkeeping slice for the block edges. The Solver
// must reproduce their results bit-for-bit — same feasibility verdicts,
// same M*, same assignments — across arbitrary instances and arbitrary
// reuse orders.

func referenceFeasible(replicas [][]int, n, m int) (Assignment, bool) {
	b := len(replicas)
	if b == 0 {
		return Assignment{}, true
	}
	if m <= 0 {
		return nil, false
	}
	src, sink := 0, b+n+1
	g := NewGraph(b + n + 2)
	type blockEdge struct{ block, device, edgeIdx int }
	var bEdges []blockEdge
	edgeCount := 0
	for i := range replicas {
		g.AddEdge(src, 1+i, 1)
		edgeCount++
	}
	for i, devs := range replicas {
		for _, d := range devs {
			g.AddEdge(1+i, 1+b+d, 1)
			bEdges = append(bEdges, blockEdge{i, d, edgeCount})
			edgeCount++
		}
	}
	for d := 0; d < n; d++ {
		g.AddEdge(1+b+d, sink, m)
		edgeCount++
	}
	if g.MaxFlow(src, sink) != b {
		return nil, false
	}
	assign := make(Assignment, b)
	for i := range assign {
		assign[i] = -1
	}
	for _, be := range bEdges {
		if g.Flow(be.edgeIdx) > 0 {
			assign[be.block] = be.device
		}
	}
	return assign, true
}

func referenceMinAccesses(replicas [][]int, n int) (int, Assignment) {
	b := len(replicas)
	if b == 0 {
		return 0, Assignment{}
	}
	m := (b + n - 1) / n
	for {
		if a, ok := referenceFeasible(replicas, n, m); ok {
			return m, a
		}
		m++
		if m > b {
			panic("maxflow: no feasible schedule — block with no valid replica")
		}
	}
}

func referenceFeasibleCaps(replicas [][]int, caps []int) (Assignment, bool) {
	b := len(replicas)
	n := len(caps)
	src, sink := 0, b+n+1
	g := NewGraph(b + n + 2)
	type be struct{ block, device, idx int }
	var edges []be
	idx := 0
	for i := range replicas {
		g.AddEdge(src, 1+i, 1)
		idx++
	}
	for i, devs := range replicas {
		for _, d := range devs {
			g.AddEdge(1+i, 1+b+d, 1)
			edges = append(edges, be{i, d, idx})
			idx++
		}
	}
	for d := 0; d < n; d++ {
		g.AddEdge(1+b+d, sink, caps[d])
		idx++
	}
	if g.MaxFlow(src, sink) != b {
		return nil, false
	}
	assign := make(Assignment, b)
	for i := range assign {
		assign[i] = -1
	}
	for _, e := range edges {
		if g.Flow(e.idx) > 0 {
			assign[e.block] = e.device
		}
	}
	return assign, true
}

// randInstance draws a random replica-set instance. With emptyProb > 0 some
// blocks get empty replica lists, modelling buckets whose devices all
// failed.
func randInstance(r *rand.Rand, maxB, maxN int, emptyProb float64) ([][]int, int) {
	n := 1 + r.Intn(maxN)
	b := r.Intn(maxB + 1)
	replicas := make([][]int, b)
	for i := range replicas {
		if r.Float64() < emptyProb {
			replicas[i] = nil
			continue
		}
		c := 1 + r.Intn(minInt(n, 4))
		perm := r.Perm(n)
		replicas[i] = perm[:c]
	}
	return replicas, n
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func hasEmpty(replicas [][]int) bool {
	for _, devs := range replicas {
		if len(devs) == 0 {
			return true
		}
	}
	return false
}

// TestSolverFeasibleMatchesReference reuses ONE solver across thousands of
// random instances — including infeasible m, m <= 0, empty requests, and
// failed-device (empty replica list) blocks — and demands bit-identical
// results versus the fresh-graph reference on every call.
func TestSolverFeasibleMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	s := NewSolver(8, 4) // deliberately small: exercises buffer growth too
	for trial := 0; trial < 5000; trial++ {
		replicas, n := randInstance(r, 30, 12, 0.05)
		m := r.Intn(len(replicas)+3) - 1 // includes -1, 0, and > needed
		wantA, wantOK := referenceFeasible(replicas, n, m)
		gotA, gotOK := s.Feasible(replicas, n, m)
		if gotOK != wantOK {
			t.Fatalf("trial %d: Feasible ok = %v, reference %v (b=%d n=%d m=%d)",
				trial, gotOK, wantOK, len(replicas), n, m)
		}
		if wantOK && !reflect.DeepEqual(append(Assignment{}, gotA...), wantA) {
			t.Fatalf("trial %d: assignment %v, reference %v (b=%d n=%d m=%d)",
				trial, gotA, wantA, len(replicas), n, m)
		}
	}
}

// TestSolverSolveMatchesReference checks the incremental M-raising path:
// M* and the assignment must match the reference that re-solves from
// scratch at every M.
func TestSolverSolveMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	s := NewSolver(0, 0) // all growth on demand
	for trial := 0; trial < 5000; trial++ {
		replicas, n := randInstance(r, 25, 10, 0)
		if hasEmpty(replicas) {
			continue
		}
		wantM, wantA := referenceMinAccesses(replicas, n)
		gotM, gotA := s.Solve(replicas, n)
		if gotM != wantM {
			t.Fatalf("trial %d: M* = %d, reference %d (b=%d n=%d)", trial, gotM, wantM, len(replicas), n)
		}
		if !reflect.DeepEqual(append(Assignment{}, gotA...), wantA) {
			t.Fatalf("trial %d: assignment %v, reference %v (b=%d n=%d M*=%d)",
				trial, gotA, wantA, len(replicas), n, gotM)
		}
	}
}

// TestSolverSkewedInstances forces deep M-raising: all blocks concentrated
// on one or two devices, so M* is far above ⌈b/n⌉ and the incremental path
// performs many capacity bumps.
func TestSolverSkewedInstances(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := NewSolver(16, 16)
	for trial := 0; trial < 500; trial++ {
		n := 2 + r.Intn(8)
		b := 1 + r.Intn(16)
		hot := r.Intn(n)
		replicas := make([][]int, b)
		for i := range replicas {
			if r.Intn(4) == 0 {
				replicas[i] = []int{hot, (hot + 1) % n}
			} else {
				replicas[i] = []int{hot}
			}
		}
		wantM, wantA := referenceMinAccesses(replicas, n)
		gotM, gotA := s.Solve(replicas, n)
		if gotM != wantM || !reflect.DeepEqual(append(Assignment{}, gotA...), wantA) {
			t.Fatalf("trial %d: (%d,%v), reference (%d,%v)", trial, gotM, gotA, wantM, wantA)
		}
	}
}

// TestSolverFeasibleCapsMatchesReference covers the heterogeneous
// (per-device capacity) network, including zero capacities.
func TestSolverFeasibleCapsMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	s := NewSolver(4, 4)
	for trial := 0; trial < 3000; trial++ {
		replicas, n := randInstance(r, 20, 8, 0)
		caps := make([]int, n)
		for d := range caps {
			caps[d] = r.Intn(len(replicas) + 2)
		}
		wantA, wantOK := referenceFeasibleCaps(replicas, caps)
		gotA, gotOK := s.FeasibleCaps(replicas, caps)
		if gotOK != wantOK {
			t.Fatalf("trial %d: ok = %v, reference %v", trial, gotOK, wantOK)
		}
		if wantOK && !reflect.DeepEqual(append(Assignment{}, gotA...), wantA) {
			t.Fatalf("trial %d: assignment %v, reference %v", trial, gotA, wantA)
		}
	}
}

// TestSolverRepeatedReuse solves the same instance many times (the
// same-shape rewrite fast path) and interleaves shape changes; every
// repetition must return the same result.
func TestSolverRepeatedReuse(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	s := NewSolver(10, 6)
	type inst struct {
		replicas [][]int
		n        int
		m        int
		a        Assignment
	}
	var insts []inst
	for i := 0; i < 20; i++ {
		replicas, n := randInstance(r, 15, 6, 0)
		if hasEmpty(replicas) || len(replicas) == 0 {
			continue
		}
		m, a := referenceMinAccesses(replicas, n)
		insts = append(insts, inst{replicas, n, m, a})
	}
	for round := 0; round < 10; round++ {
		for i, in := range insts {
			gotM, gotA := s.Solve(in.replicas, in.n)
			if gotM != in.m || !reflect.DeepEqual(append(Assignment{}, gotA...), in.a) {
				t.Fatalf("round %d inst %d: (%d,%v), want (%d,%v)", round, i, gotM, gotA, in.m, in.a)
			}
		}
	}
}

// TestSolverEmptyReplicaInfeasible: blocks with no surviving replica make
// every m infeasible and Solve must panic exactly like the reference.
func TestSolverEmptyReplicaInfeasible(t *testing.T) {
	s := NewSolver(4, 4)
	replicas := [][]int{{0}, nil, {1}}
	if _, ok := s.Feasible(replicas, 4, 3); ok {
		t.Error("instance with an empty replica list must be infeasible")
	}
	defer func() {
		if recover() == nil {
			t.Error("Solve with an unservable block should panic like MinAccesses")
		}
	}()
	s.Solve(replicas, 4)
}

// TestSolverDeviceValidation: invalid device ids panic in the upfront
// validation pass with the reference message.
func TestSolverDeviceValidation(t *testing.T) {
	s := NewSolver(4, 4)
	for _, bad := range [][][]int{{{3}}, {{-1}}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("device set %v should panic", bad)
				}
			}()
			s.Feasible(bad, 3, 1)
		}()
	}
}

// TestSolverSolveAllocs pins the steady-state allocation count of the
// engine at zero: once buffers have grown to the instance shape, repeated
// solves must not touch the heap.
func TestSolverSolveAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	replicas := make([][]int, 27)
	for i := range replicas {
		perm := rng.Perm(9)
		replicas[i] = perm[:3]
	}
	s := NewSolver(27, 9)
	s.Solve(replicas, 9) // warm up buffers
	if allocs := testing.AllocsPerRun(200, func() {
		s.Solve(replicas, 9)
	}); allocs != 0 {
		t.Errorf("Solver.Solve allocates %.1f objects/op in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		s.Feasible(replicas, 9, 3)
	}); allocs != 0 {
		t.Errorf("Solver.Feasible allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

// TestSolverAllocsAcrossShapes: alternating between two shapes (the
// rebuild path, not just the fast rewrite) must also be allocation-free
// once both shapes have been seen.
func TestSolverAllocsAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small := make([][]int, 5)
	for i := range small {
		perm := rng.Perm(9)
		small[i] = perm[:3]
	}
	big := make([][]int, 27)
	for i := range big {
		perm := rng.Perm(9)
		big[i] = perm[:3]
	}
	s := NewSolver(27, 9)
	s.Solve(small, 9)
	s.Solve(big, 9)
	if allocs := testing.AllocsPerRun(100, func() {
		s.Solve(small, 9)
		s.Solve(big, 9)
	}); allocs != 0 {
		t.Errorf("shape-alternating Solve allocates %.1f objects/op, want 0", allocs)
	}
}
