// Package maxflow implements Dinic's maximum-flow algorithm and the
// block→device feasibility network used to compute optimal retrieval
// schedules for replicated data (paper §III-C; Altiparmak & Tosun, ICPP
// 2012). For a request of b replicated blocks on N devices, the minimal
// number of parallel accesses M* is the smallest M for which the bipartite
// network
//
//	source → block_i   (capacity 1)
//	block_i → device_d (capacity 1, for each device holding a replica of i)
//	device_d → sink    (capacity M)
//
// admits a flow of value b. Dinic's algorithm runs in O(E·√V) on these
// unit-capacity bipartite networks, comfortably inside the paper's O(b³)
// bound.
package maxflow

import "fmt"

// Graph is a flow network over vertices 0..n-1 with integer capacities.
// The zero value is not usable; create with NewGraph.
type Graph struct {
	n     int
	edges []edge
	adj   [][]int // vertex -> indices into edges
	// scratch for Dinic
	level []int
	iter  []int
	queue []int
}

type edge struct {
	to, cap, flow int
	rev           int // index of reverse edge in edges
}

// NewGraph returns an empty flow network with n vertices.
func NewGraph(n int) *Graph {
	return &Graph{
		n:     n,
		adj:   make([][]int, n),
		level: make([]int, n),
		iter:  make([]int, n),
		queue: make([]int, 0, n),
	}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.n }

// AddEdge adds a directed edge from u to v with the given capacity and a
// residual reverse edge of capacity 0. It panics on out-of-range vertices or
// negative capacity.
func (g *Graph) AddEdge(u, v, capacity int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic("maxflow: negative capacity")
	}
	g.edges = append(g.edges, edge{to: v, cap: capacity, rev: len(g.edges) + 1})
	g.adj[u] = append(g.adj[u], len(g.edges)-1)
	g.edges = append(g.edges, edge{to: u, cap: 0, rev: len(g.edges) - 1})
	g.adj[v] = append(g.adj[v], len(g.edges)-1)
}

// bfs builds the level graph; returns false if t is unreachable.
func (g *Graph) bfs(s, t int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	g.queue = append(g.queue[:0], s)
	g.level[s] = 0
	for head := 0; head < len(g.queue); head++ {
		u := g.queue[head]
		for _, ei := range g.adj[u] {
			e := &g.edges[ei]
			if e.cap-e.flow > 0 && g.level[e.to] < 0 {
				g.level[e.to] = g.level[u] + 1
				g.queue = append(g.queue, e.to)
			}
		}
	}
	return g.level[t] >= 0
}

// dfs sends blocking flow along the level graph.
func (g *Graph) dfs(u, t, f int) int {
	if u == t {
		return f
	}
	for ; g.iter[u] < len(g.adj[u]); g.iter[u]++ {
		ei := g.adj[u][g.iter[u]]
		e := &g.edges[ei]
		if e.cap-e.flow <= 0 || g.level[e.to] != g.level[u]+1 {
			continue
		}
		d := g.dfs(e.to, t, min(f, e.cap-e.flow))
		if d > 0 {
			e.flow += d
			g.edges[e.rev].flow -= d
			return d
		}
	}
	return 0
}

// MaxFlow computes the maximum flow from s to t, mutating the graph's flow
// state. Calling it twice continues from the current flow (idempotent in
// value).
func (g *Graph) MaxFlow(s, t int) int {
	if s == t {
		return 0
	}
	flow := 0
	for g.bfs(s, t) {
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			f := g.dfs(s, t, int(^uint(0)>>1))
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

// Reset zeroes all flow, allowing the graph to be reused.
func (g *Graph) Reset() {
	for i := range g.edges {
		g.edges[i].flow = 0
	}
}

// Flow returns the current flow on the i-th added edge (in AddEdge order).
func (g *Graph) Flow(i int) int {
	return g.edges[2*i].flow
}

// --- Retrieval feasibility network ---

// Assignment maps each requested block index to the device chosen for its
// retrieval.
type Assignment []int

// FeasibleSchedule reports whether b blocks with the given replica device
// sets can be retrieved in at most m parallel accesses, and if so returns an
// assignment block→device in which no device serves more than m blocks.
// replicas[i] lists the devices storing block i; n is the device count.
//
// This is a convenience wrapper that builds a throwaway Solver per call;
// hot paths should hold a Solver (one per goroutine) and call
// Solver.Feasible to avoid the per-call allocations.
func FeasibleSchedule(replicas [][]int, n, m int) (Assignment, bool) {
	if len(replicas) == 0 {
		return Assignment{}, true
	}
	if m <= 0 {
		return nil, false
	}
	a, ok := NewSolver(len(replicas), n).Feasible(replicas, n, m)
	if !ok {
		return nil, false
	}
	out := make(Assignment, len(a))
	copy(out, a)
	return out, true
}

// MinAccesses returns the minimal number of parallel accesses M* needed to
// retrieve the given blocks, together with an optimal assignment. The lower
// bound ⌈b/n⌉ is tried first and M is raised until feasible (M* ≤ b
// always, since every block has at least one replica).
//
// This is a convenience wrapper over a throwaway Solver; hot paths should
// hold a Solver and call Solver.Solve.
func MinAccesses(replicas [][]int, n int) (int, Assignment) {
	if len(replicas) == 0 {
		return 0, Assignment{}
	}
	m, a := NewSolver(len(replicas), n).Solve(replicas, n)
	out := make(Assignment, len(a))
	copy(out, a)
	return m, out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
