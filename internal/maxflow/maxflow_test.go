package maxflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplePath(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 5)
	if got := g.MaxFlow(0, 3); got != 2 {
		t.Errorf("MaxFlow = %d, want 2 (bottleneck)", got)
	}
}

func TestParallelPaths(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1, 10)
	g.AddEdge(0, 2, 10)
	g.AddEdge(1, 3, 4)
	g.AddEdge(2, 4, 9)
	g.AddEdge(3, 5, 10)
	g.AddEdge(4, 5, 10)
	if got := g.MaxFlow(0, 5); got != 13 {
		t.Errorf("MaxFlow = %d, want 13", got)
	}
}

func TestClassicCLRS(t *testing.T) {
	// CLRS Figure 26.1 network; max flow 23.
	g := NewGraph(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 3, 12)
	g.AddEdge(2, 1, 4)
	g.AddEdge(2, 4, 14)
	g.AddEdge(3, 2, 9)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 3, 7)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Errorf("MaxFlow = %d, want 23", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Errorf("MaxFlow = %d, want 0", got)
	}
}

func TestSourceEqualsSink(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 5)
	if got := g.MaxFlow(0, 0); got != 0 {
		t.Errorf("MaxFlow(s,s) = %d, want 0", got)
	}
}

func TestReset(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 2)
	if g.MaxFlow(0, 2) != 2 {
		t.Fatal("first flow wrong")
	}
	g.Reset()
	if got := g.MaxFlow(0, 2); got != 2 {
		t.Errorf("after Reset: MaxFlow = %d, want 2", got)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewGraph(2)
	for _, c := range []func(){
		func() { g.AddEdge(0, 2, 1) },
		func() { g.AddEdge(-1, 1, 1) },
		func() { g.AddEdge(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			c()
		}()
	}
}

func TestBipartiteMatching(t *testing.T) {
	// 3 blocks, 3 devices; block i can go to device i or i+1 (mod 3).
	// Perfect matching exists → all 3 retrievable in 1 access.
	replicas := [][]int{{0, 1}, {1, 2}, {2, 0}}
	a, ok := FeasibleSchedule(replicas, 3, 1)
	if !ok {
		t.Fatal("feasible schedule not found")
	}
	used := map[int]int{}
	for i, d := range a {
		found := false
		for _, r := range replicas[i] {
			if r == d {
				found = true
			}
		}
		if !found {
			t.Errorf("block %d assigned to non-replica device %d", i, d)
		}
		used[d]++
	}
	for d, n := range used {
		if n > 1 {
			t.Errorf("device %d serves %d blocks with m=1", d, n)
		}
	}
}

func TestInfeasible(t *testing.T) {
	// Two blocks both stored only on device 0: m=1 infeasible, m=2 feasible.
	replicas := [][]int{{0}, {0}}
	if _, ok := FeasibleSchedule(replicas, 2, 1); ok {
		t.Error("m=1 should be infeasible")
	}
	if _, ok := FeasibleSchedule(replicas, 2, 2); !ok {
		t.Error("m=2 should be feasible")
	}
	if m, _ := MinAccesses(replicas, 2); m != 2 {
		t.Errorf("MinAccesses = %d, want 2", m)
	}
}

func TestFeasibleEdgeCases(t *testing.T) {
	if a, ok := FeasibleSchedule(nil, 5, 1); !ok || len(a) != 0 {
		t.Error("empty request should be trivially feasible")
	}
	if _, ok := FeasibleSchedule([][]int{{0}}, 1, 0); ok {
		t.Error("m=0 with nonempty request should be infeasible")
	}
	if m, _ := MinAccesses(nil, 4); m != 0 {
		t.Error("MinAccesses of empty request should be 0")
	}
}

func TestPaperFig3(t *testing.T) {
	// Paper Fig 3: 9 non-conflicting (9,3,1) requests retrievable in 1 access.
	replicas := [][]int{
		{0, 1, 2}, {1, 2, 0}, {2, 0, 1}, {3, 8, 1}, {4, 8, 0},
		{5, 7, 0}, {6, 0, 3}, {7, 0, 5}, {8, 1, 3},
	}
	m, a := MinAccesses(replicas, 9)
	if m != 1 {
		t.Errorf("Fig 3 request set needs %d accesses, paper says 1", m)
	}
	seen := map[int]bool{}
	for _, d := range a {
		if seen[d] {
			t.Errorf("device %d used twice in optimal 1-access schedule", d)
		}
		seen[d] = true
	}
}

// Property: MinAccesses is always >= ceil(b/n) and the returned assignment
// respects replica sets and the load bound.
func TestQuickMinAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		b := 1 + r.Intn(25)
		c := 2 + r.Intn(2)
		replicas := make([][]int, b)
		for i := range replicas {
			perm := r.Perm(n)
			replicas[i] = perm[:c]
		}
		m, a := MinAccesses(replicas, n)
		if m < (b+n-1)/n {
			return false
		}
		load := make([]int, n)
		for i, d := range a {
			ok := false
			for _, rd := range replicas[i] {
				if rd == d {
					ok = true
				}
			}
			if !ok {
				return false
			}
			load[d]++
		}
		for _, l := range load {
			if l > m {
				return false
			}
		}
		// Minimality: m-1 must be infeasible (or m is the lower bound).
		if m > (b+n-1)/n {
			if _, ok := FeasibleSchedule(replicas, n, m-1); ok {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: flow conservation — for random graphs, flow out of source equals
// flow into sink, and per-edge flow <= capacity.
func TestQuickFlowConservation(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(8)
		g := NewGraph(n)
		type e struct{ u, v, c int }
		var es []e
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			c := r.Intn(10)
			g.AddEdge(u, v, c)
			es = append(es, e{u, v, c})
		}
		val := g.MaxFlow(0, n-1)
		if val < 0 {
			return false
		}
		net := make([]int, n)
		for i, ed := range es {
			f := g.Flow(i)
			if f < 0 || f > ed.c {
				return false
			}
			net[ed.u] -= f
			net[ed.v] += f
		}
		for v := 0; v < n; v++ {
			switch v {
			case 0:
				if net[v] != -val {
					return false
				}
			case n - 1:
				if net[v] != val {
					return false
				}
			default:
				if net[v] != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// BenchmarkMinAccesses27 measures the steady-state engine path: one Solver
// reused across solves, as every hot call site now does.
func BenchmarkMinAccesses27(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	replicas := make([][]int, 27)
	for i := range replicas {
		perm := rng.Perm(9)
		replicas[i] = perm[:3]
	}
	s := NewSolver(27, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(replicas, 9)
	}
}

// BenchmarkMinAccesses27PerCall measures the compatibility wrapper, which
// pays a fresh Solver per call.
func BenchmarkMinAccesses27PerCall(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	replicas := make([][]int, 27)
	for i := range replicas {
		perm := rng.Perm(9)
		replicas[i] = perm[:3]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinAccesses(replicas, 9)
	}
}
