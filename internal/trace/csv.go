package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The SNIA/MSR-Cambridge CSV format used by the paper's original
// workloads (block I/O traces from iotta.snia.org):
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp is in Windows filetime (100 ns ticks); Offset and Size are in
// bytes; Type is "Read" or "Write".

// WriteCSV exports a trace in the SNIA/MSR-Cambridge CSV format, the
// inverse of ReadCSV (response time column written as 0 — the simulator
// computes it).
func WriteCSV(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime"); err != nil {
		return err
	}
	for _, r := range t.Records {
		op := "Read"
		if r.Write {
			op = "Write"
		}
		ticks := int64(r.Arrival * 10000) // ms -> 100ns ticks
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%s,%d,%d,0\n",
			ticks, t.Name, r.Device, op, r.Block*BlockSize, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace in the SNIA/MSR-Cambridge CSV format. Offsets
// are converted to 8 KB-aligned block numbers (multi-block requests are
// split, as the paper aligns requests to 8 KB), timestamps are rebased to
// milliseconds from the first record, and a header line is skipped.
// intervalMS sets the reporting-interval length of the returned trace
// (e.g. 15 minutes = 900000).
func ReadCSV(r io.Reader, intervalMS float64) (*Trace, error) {
	if intervalMS <= 0 {
		return nil, fmt.Errorf("trace: intervalMS must be positive")
	}
	t := &Trace{Name: "csv", IntervalMS: intervalMS}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	var base int64 = -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if lineNo == 1 && len(fields) > 0 && strings.EqualFold(strings.TrimSpace(fields[0]), "timestamp") {
			continue // header
		}
		if len(fields) < 6 {
			return nil, fmt.Errorf("trace: csv line %d: want >= 6 fields, got %d", lineNo, len(fields))
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad timestamp: %v", lineNo, err)
		}
		disk, err := strconv.Atoi(strings.TrimSpace(fields[2]))
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad disk number: %v", lineNo, err)
		}
		op := strings.ToLower(strings.TrimSpace(fields[3]))
		var write bool
		switch op {
		case "read", "r":
			write = false
		case "write", "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: csv line %d: bad type %q", lineNo, fields[3])
		}
		offset, err := strconv.ParseInt(strings.TrimSpace(fields[4]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad offset: %v", lineNo, err)
		}
		size, err := strconv.Atoi(strings.TrimSpace(fields[5]))
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad size: %v", lineNo, err)
		}
		if base < 0 {
			base = ts
		}
		arrivalMS := float64(ts-base) / 10000 // 100ns ticks -> ms
		// Align to 8 KB blocks, splitting multi-block requests the way the
		// paper does ("the requests are aligned to 8KB of block sizes").
		first := offset / BlockSize
		last := (offset + int64(size) - 1) / BlockSize
		if size <= 0 {
			last = first
		}
		for b := first; b <= last; b++ {
			t.Records = append(t.Records, Record{
				Arrival: arrivalMS,
				Device:  disk,
				Block:   b,
				Size:    BlockSize,
				Write:   write,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	t.Sort()
	return t, nil
}
