package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	in := `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
128166372003061629,exchange,0,Read,8192,8192,100
128166372003161629,exchange,1,Write,16384,8192,200
128166372004061629,exchange,2,Read,0,8192,50
`
	tr, err := ReadCSV(strings.NewReader(in), 900000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(tr.Records))
	}
	r0 := tr.Records[0]
	if r0.Arrival != 0 {
		t.Errorf("first arrival %g, want rebased 0", r0.Arrival)
	}
	if r0.Block != 1 || r0.Device != 0 || r0.Write {
		t.Errorf("first record wrong: %+v", r0)
	}
	// Second record: 100000 ticks later = 10 ms.
	r1 := tr.Records[1]
	if r1.Arrival != 10 || !r1.Write || r1.Block != 2 {
		t.Errorf("second record wrong: %+v", r1)
	}
	if tr.IntervalMS != 900000 {
		t.Error("interval not set")
	}
}

func TestReadCSVMultiBlockSplit(t *testing.T) {
	// A 32 KB read at offset 4096 spans blocks 0..4 (4096..36863).
	in := "128166372003061629,h,0,Read,4096,32768,1\n"
	tr, err := ReadCSV(strings.NewReader(in), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 5 {
		t.Fatalf("got %d aligned records, want 5", len(tr.Records))
	}
	for i, r := range tr.Records {
		if r.Block != int64(i) {
			t.Errorf("record %d block %d, want %d", i, r.Block, i)
		}
		if r.Size != BlockSize {
			t.Errorf("record %d size %d", i, r.Size)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	bad := []string{
		"1,h,0,Read,0\n",       // too few fields
		"x,h,0,Read,0,8192\n",  // bad timestamp
		"1,h,x,Read,0,8192\n",  // bad disk
		"1,h,0,Bogus,0,8192\n", // bad type
		"1,h,0,Read,x,8192\n",  // bad offset
		"1,h,0,Read,0,x\n",     // bad size
	}
	for _, in := range bad {
		if _, err := ReadCSV(strings.NewReader(in), 1000); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
	if _, err := ReadCSV(strings.NewReader(""), 0); err == nil {
		t.Error("zero interval should fail")
	}
	// Comments, blank lines, lowercase ops are fine.
	tr, err := ReadCSV(strings.NewReader("# c\n\n1,h,0,r,0,8192,9\n2,h,0,w,8192,8192,9\n"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 || tr.Records[0].Write || !tr.Records[1].Write {
		t.Errorf("lenient parse wrong: %+v", tr.Records)
	}
}

func TestReadCSVSortsByArrival(t *testing.T) {
	in := "200000,h,0,Read,0,8192,1\n100000,h,0,Read,8192,8192,1\n"
	tr, err := ReadCSV(strings.NewReader(in), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Records[0].Arrival > tr.Records[1].Arrival {
		t.Error("records not sorted by arrival")
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	orig := &Trace{Name: "x", IntervalMS: 1000}
	orig.Records = []Record{
		{Arrival: 0, Device: 0, Block: 1, Size: BlockSize},
		{Arrival: 10, Device: 2, Block: 7, Size: BlockSize, Write: true},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 2 {
		t.Fatalf("got %d records", len(got.Records))
	}
	for i := range got.Records {
		a, b := got.Records[i], orig.Records[i]
		if a.Block != b.Block || a.Device != b.Device || a.Write != b.Write {
			t.Errorf("record %d: %+v vs %+v", i, a, b)
		}
		if math.Abs(a.Arrival-b.Arrival) > 1e-3 {
			t.Errorf("record %d arrival %g vs %g", i, a.Arrival, b.Arrival)
		}
	}
}
