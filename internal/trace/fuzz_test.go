package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that the trace parser never panics on arbitrary input
// and that anything it accepts survives a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("1.0 0 5 8192 R\n")
	f.Add("# name x\n# interval-ms 10\n0.5 2 3 8192 W\n")
	f.Add("")
	f.Add("# comment only\n")
	f.Add("1.0 0 5 8192 R\n2.0 1 6 8192 W\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write of accepted trace failed: %v", err)
		}
		tr2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read of written trace failed: %v", err)
		}
		if len(tr2.Records) != len(tr.Records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(tr.Records), len(tr2.Records))
		}
	})
}
