package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// SyntheticConfig configures the paper's synthetic workload generator
// (§V-B1): requests arrive in batches of BlocksPerInterval at the start of
// every IntervalMS, drawn uniformly from a pool of PoolSize buckets, until
// TotalRequests have been generated.
type SyntheticConfig struct {
	IntervalMS        float64 // batch period, e.g. 0.133
	BlocksPerInterval int     // requests per batch, e.g. 5, 14, 27
	TotalRequests     int     // e.g. 10000
	PoolSize          int     // bucket pool, e.g. 36
	Seed              int64
}

// Synthetic generates the paper's synthetic trace: all requests of a batch
// are placed exactly at the interval start (§V-C: "All the requests are
// placed at the beginning of each time interval"). Each batch requests
// distinct blocks from the pool — the design guarantee is over bucket sets,
// so the pool must be at least as large as the batch.
func Synthetic(cfg SyntheticConfig) (*Trace, error) {
	if cfg.IntervalMS <= 0 || cfg.BlocksPerInterval < 1 || cfg.TotalRequests < 1 || cfg.PoolSize < 1 {
		return nil, fmt.Errorf("trace: invalid synthetic config %+v", cfg)
	}
	if cfg.PoolSize < cfg.BlocksPerInterval {
		return nil, fmt.Errorf("trace: pool %d smaller than batch %d", cfg.PoolSize, cfg.BlocksPerInterval)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Trace{
		Name:       fmt.Sprintf("synthetic-k%d", cfg.BlocksPerInterval),
		IntervalMS: cfg.IntervalMS,
	}
	for n := 0; n < cfg.TotalRequests; {
		interval := n / cfg.BlocksPerInterval
		at := float64(interval) * cfg.IntervalMS
		perm := rng.Perm(cfg.PoolSize)
		for j := 0; j < cfg.BlocksPerInterval && n < cfg.TotalRequests; j++ {
			t.Records = append(t.Records, Record{
				Arrival: at,
				Block:   int64(perm[j]),
				Size:    BlockSize,
			})
			n++
		}
	}
	return t, nil
}

// WorkloadConfig parameterizes the server-trace synthesizers. The defaults
// of ExchangeLike and TPCELike are calibrated so the downstream experiments
// reproduce the paper's shapes (Fig 6, 8, 9, 11); see DESIGN.md.
type WorkloadConfig struct {
	Name        string
	Intervals   int       // reporting intervals
	IntervalMS  float64   // simulated length of each interval
	RatePerSec  []float64 // per-interval mean arrival rate (len == Intervals)
	Volumes     int       // devices named in the trace
	Universe    int64     // distinct block numbers
	HotBlocks   int       // size of the hot set
	HotFrac     float64   // fraction of requests hitting the hot set
	HotCarry    float64   // fraction of hot set kept between intervals
	ZipfS       float64   // Zipf exponent for cold accesses (>1)
	BurstFactor float64   // arrival burstiness: 0 = Poisson, >0 adds bursts
	WriteFrac   float64   // fraction of requests that are writes (default 0: the paper's read traces)
	Seed        int64
}

func (c *WorkloadConfig) validate() error {
	switch {
	case c.Intervals < 1 || c.IntervalMS <= 0:
		return fmt.Errorf("trace: bad interval config")
	case len(c.RatePerSec) != c.Intervals:
		return fmt.Errorf("trace: RatePerSec has %d entries, want %d", len(c.RatePerSec), c.Intervals)
	case c.Volumes < 1 || c.Universe < 1 || c.HotBlocks < 1 || int64(c.HotBlocks) > c.Universe:
		return fmt.Errorf("trace: bad block config")
	case c.HotFrac < 0 || c.HotFrac > 1 || c.HotCarry < 0 || c.HotCarry > 1:
		return fmt.Errorf("trace: bad hot-set fractions")
	case c.WriteFrac < 0 || c.WriteFrac > 1:
		return fmt.Errorf("trace: bad write fraction")
	case c.ZipfS <= 1:
		return fmt.Errorf("trace: ZipfS must be > 1")
	}
	return nil
}

// Generate synthesizes a server-like trace from the config.
func Generate(cfg WorkloadConfig) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Universe-1))
	t := &Trace{Name: cfg.Name, IntervalMS: cfg.IntervalMS}

	// Initial hot set.
	hot := make([]int64, cfg.HotBlocks)
	inHot := make(map[int64]bool, cfg.HotBlocks)
	for i := range hot {
		for {
			b := int64(rng.Int63n(cfg.Universe))
			if !inHot[b] {
				hot[i] = b
				inHot[b] = true
				break
			}
		}
	}

	for iv := 0; iv < cfg.Intervals; iv++ {
		// Evolve the hot set: keep HotCarry of it, resample the rest.
		if iv > 0 {
			for i := range hot {
				if rng.Float64() >= cfg.HotCarry {
					delete(inHot, hot[i])
					for {
						b := int64(rng.Int63n(cfg.Universe))
						if !inHot[b] {
							hot[i] = b
							inHot[b] = true
							break
						}
					}
				}
			}
		}
		// Arrivals: the interval is cut into 200 slices; each slice is
		// independently "bursty" with 3% probability, multiplying the rate
		// by (1+BurstFactor). Within a slice arrivals are Poisson. The 3%
		// duty cycle keeps the long-run rate near the nominal value so the
		// system stays stable while short overloads still occur.
		ratePerMS := cfg.RatePerSec[iv] / 1000
		if ratePerMS <= 0 {
			continue
		}
		start := float64(iv) * cfg.IntervalMS
		sliceLen := cfg.IntervalMS / 200
		now := start
		sliceEnd := start + sliceLen
		rate := ratePerMS
		advanceSlice := func() {
			rate = ratePerMS
			if cfg.BurstFactor > 0 && rng.Float64() < 0.03 {
				rate *= 1 + cfg.BurstFactor
			}
		}
		advanceSlice()
		for {
			now += rng.ExpFloat64() / rate
			for now >= sliceEnd {
				if sliceEnd >= start+cfg.IntervalMS {
					break
				}
				sliceEnd += sliceLen
				advanceSlice()
			}
			if now >= start+cfg.IntervalMS {
				break
			}
			var block int64
			if rng.Float64() < cfg.HotFrac {
				block = hot[rng.Intn(len(hot))]
			} else {
				block = int64(zipf.Uint64())
			}
			t.Records = append(t.Records, Record{
				Arrival: now,
				Device:  int(block % int64(cfg.Volumes)),
				Block:   block,
				Size:    BlockSize,
				Write:   cfg.WriteFrac > 0 && rng.Float64() < cfg.WriteFrac,
			})
		}
	}
	t.Sort()
	return t, nil
}

// DiurnalRates builds a day-shaped per-interval rate curve: a base rate
// modulated by a raised cosine peaking mid-trace, plus multiplicative
// noise. Used by the Exchange-like synthesizer (the paper's Exchange trace
// spans a 24-hour weekday, Fig 6(a,b)).
func DiurnalRates(intervals int, base, peak, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, intervals)
	for i := range out {
		phase := 2 * math.Pi * float64(i) / float64(intervals)
		day := (1 - math.Cos(phase)) / 2 // 0 at edges, 1 mid-trace
		r := base + (peak-base)*day
		r *= 1 + noise*(2*rng.Float64()-1)
		if r < 1 {
			r = 1
		}
		out[i] = r
	}
	return out
}

// FlatRates builds a near-constant rate curve with mild noise, as in the
// TPC-E trace's steady OLTP load (Fig 6(c,d)).
func FlatRates(intervals int, rate, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, intervals)
	for i := range out {
		out[i] = rate * (1 + noise*(2*rng.Float64()-1))
	}
	return out
}

// ExchangeLike synthesizes a stand-in for the SNIA Exchange mail-server
// trace: 96 reporting intervals (24 h of 15-minute intervals, time-scaled),
// 9 volumes, a diurnal rate curve, moderate hot-set persistence and low
// per-window pair density — giving the ≈17 % FIM match the paper reports
// (Fig 11a).
func ExchangeLike(seed int64, scale float64) (*Trace, error) {
	if scale <= 0 {
		scale = 1
	}
	intervals := 96
	return Generate(WorkloadConfig{
		Name:        "exchange-like",
		Intervals:   intervals,
		IntervalMS:  1000 * scale, // each 15-min interval scaled to 1 s of simulated time
		RatePerSec:  DiurnalRates(intervals, 800, 9000, 0.25, seed+1),
		Volumes:     9,
		Universe:    200000,
		HotBlocks:   400,
		HotFrac:     0.45,
		HotCarry:    0.25,
		ZipfS:       1.2,
		BurstFactor: 8,
		Seed:        seed,
	})
}

// TPCELike synthesizes a stand-in for the TPC-E OLTP trace: 6 reporting
// parts, 13 volumes, a high steady request rate and a strongly persistent
// hot set — giving the ≈87 % FIM match of Fig 11b.
func TPCELike(seed int64, scale float64) (*Trace, error) {
	if scale <= 0 {
		scale = 1
	}
	intervals := 6
	return Generate(WorkloadConfig{
		Name:        "tpce-like",
		Intervals:   intervals,
		IntervalMS:  2000 * scale, // each 10–16-min part scaled to 2 s
		RatePerSec:  FlatRates(intervals, 16000, 0.15, seed+1),
		Volumes:     13,
		Universe:    50000,
		HotBlocks:   200,
		HotFrac:     0.85,
		HotCarry:    0.95,
		ZipfS:       1.5,
		BurstFactor: 1,
		Seed:        seed,
	})
}
