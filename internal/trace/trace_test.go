package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSyntheticPaperShape(t *testing.T) {
	// The §V-C trace: 5 blocks every 0.133 ms, 10000 requests, pool of 36.
	tr, err := Synthetic(SyntheticConfig{IntervalMS: 0.133, BlocksPerInterval: 5, TotalRequests: 10000, PoolSize: 36, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 10000 {
		t.Fatalf("got %d records, want 10000", len(tr.Records))
	}
	// All requests in a batch share the interval-start arrival.
	for i, r := range tr.Records {
		wantAt := float64(i/5) * 0.133
		if math.Abs(r.Arrival-wantAt) > 1e-9 {
			t.Fatalf("record %d at %g, want %g", i, r.Arrival, wantAt)
		}
		if r.Block < 0 || r.Block >= 36 {
			t.Fatalf("record %d block %d outside pool", i, r.Block)
		}
		if r.Size != BlockSize {
			t.Fatalf("record %d size %d, want %d", i, r.Size, BlockSize)
		}
	}
	if got := tr.NumIntervals(); got != 2000 {
		t.Errorf("NumIntervals = %d, want 2000", got)
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{IntervalMS: 0, BlocksPerInterval: 5, TotalRequests: 10, PoolSize: 36},
		{IntervalMS: 1, BlocksPerInterval: 0, TotalRequests: 10, PoolSize: 36},
		{IntervalMS: 1, BlocksPerInterval: 5, TotalRequests: 0, PoolSize: 36},
		{IntervalMS: 1, BlocksPerInterval: 5, TotalRequests: 10, PoolSize: 0},
		{IntervalMS: 1, BlocksPerInterval: 40, TotalRequests: 10, PoolSize: 36},
	}
	for i, cfg := range bad {
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestIntervalSlicing(t *testing.T) {
	tr := &Trace{IntervalMS: 10}
	for _, at := range []float64{0, 1, 9.99, 10, 15, 25} {
		tr.Records = append(tr.Records, Record{Arrival: at})
	}
	if got := len(tr.Interval(0)); got != 3 {
		t.Errorf("interval 0 has %d records, want 3", got)
	}
	if got := len(tr.Interval(1)); got != 2 {
		t.Errorf("interval 1 has %d records, want 2", got)
	}
	if got := len(tr.Interval(2)); got != 1 {
		t.Errorf("interval 2 has %d records, want 1", got)
	}
	if got := len(tr.Interval(5)); got != 0 {
		t.Errorf("out-of-range interval has %d records, want 0", got)
	}
	if tr.NumIntervals() != 3 {
		t.Errorf("NumIntervals = %d, want 3", tr.NumIntervals())
	}
	if tr.IntervalOf(Record{Arrival: 15}) != 1 {
		t.Error("IntervalOf wrong")
	}
}

func TestStats(t *testing.T) {
	tr := &Trace{IntervalMS: 2000} // two 2-second intervals
	// Interval 0: 10 reads in the first second, 0 after → max 10/s, avg 5/s.
	for i := 0; i < 10; i++ {
		tr.Records = append(tr.Records, Record{Arrival: float64(i) * 50})
	}
	// Interval 1: 4 reads + 2 writes (writes not counted).
	for i := 0; i < 4; i++ {
		tr.Records = append(tr.Records, Record{Arrival: 2000 + float64(i)*400})
	}
	tr.Records = append(tr.Records, Record{Arrival: 2100, Write: true}, Record{Arrival: 2200, Write: true})
	tr.Sort()
	st := tr.Stats()
	if len(st) != 2 {
		t.Fatalf("got %d stats, want 2", len(st))
	}
	if st[0].Total != 10 || st[1].Total != 4 {
		t.Errorf("totals = %d/%d, want 10/4", st[0].Total, st[1].Total)
	}
	if math.Abs(st[0].AvgPerSec-5) > 1e-9 {
		t.Errorf("avg/s = %g, want 5", st[0].AvgPerSec)
	}
	if st[0].MaxPerSec < st[0].AvgPerSec {
		t.Error("max rate below average rate")
	}
}

func TestStatsEmpty(t *testing.T) {
	tr := &Trace{IntervalMS: 10}
	if len(tr.Stats()) != 0 {
		t.Error("empty trace should have no stats")
	}
}

func TestRoundTripFormat(t *testing.T) {
	tr, err := Synthetic(SyntheticConfig{IntervalMS: 0.133, BlocksPerInterval: 5, TotalRequests: 100, PoolSize: 36, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr.Records[3].Write = true
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.IntervalMS != tr.IntervalMS {
		t.Errorf("metadata lost: %q %g", got.Name, got.IntervalMS)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("record count %d, want %d", len(got.Records), len(tr.Records))
	}
	for i := range got.Records {
		a, b := got.Records[i], tr.Records[i]
		if math.Abs(a.Arrival-b.Arrival) > 1e-6 || a.Block != b.Block || a.Size != b.Size || a.Write != b.Write || a.Device != b.Device {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"1.0 0 5 8192",          // too few fields
		"x 0 5 8192 R",          // bad arrival
		"1.0 x 5 8192 R",        // bad device
		"1.0 0 x 8192 R",        // bad block
		"1.0 0 5 x R",           // bad size
		"1.0 0 5 8192 Q",        // bad op
		"# interval-ms notanum", // bad header
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
	// Comments and blank lines are fine.
	tr, err := Read(strings.NewReader("# hello comment\n\n1.0 2 3 8192 W\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 || !tr.Records[0].Write {
		t.Error("valid input parsed wrong")
	}
}

func TestExchangeLikeShape(t *testing.T) {
	tr, err := ExchangeLike(1, 0.25) // quarter scale for test speed
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumIntervals() > 96 || tr.NumIntervals() < 90 {
		t.Errorf("intervals = %d, want ~96", tr.NumIntervals())
	}
	st := tr.Stats()
	// Diurnal shape: mid-trace rate well above edges.
	edge := (st[0].AvgPerSec + st[len(st)-1].AvgPerSec) / 2
	mid := st[len(st)/2].AvgPerSec
	if mid < 2*edge {
		t.Errorf("no diurnal shape: edge %g mid %g", edge, mid)
	}
	// Devices within the 9 volumes.
	for _, r := range tr.Records[:100] {
		if r.Device < 0 || r.Device >= 9 {
			t.Fatalf("device %d outside 9 volumes", r.Device)
		}
	}
	// Sorted arrivals.
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].Arrival < tr.Records[i-1].Arrival {
			t.Fatal("trace not sorted")
		}
	}
}

func TestTPCELikeShape(t *testing.T) {
	tr, err := TPCELike(1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumIntervals() != 6 {
		t.Errorf("intervals = %d, want 6", tr.NumIntervals())
	}
	st := tr.Stats()
	// Flat: every interval within 2x of the mean.
	var mean float64
	for _, s := range st {
		mean += s.AvgPerSec
	}
	mean /= float64(len(st))
	for _, s := range st {
		if s.AvgPerSec < mean/2 || s.AvgPerSec > mean*2 {
			t.Errorf("interval %d rate %g far from mean %g (should be flat)", s.Interval, s.AvgPerSec, mean)
		}
	}
	for _, r := range tr.Records[:100] {
		if r.Device < 0 || r.Device >= 13 {
			t.Fatalf("device %d outside 13 volumes", r.Device)
		}
	}
}

func TestTPCEHotSetPersistence(t *testing.T) {
	// The TPC-E synthesizer must carry most of its hot set across
	// intervals: a large fraction of interval-i blocks reappear in i+1.
	tr, err := TPCELike(3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var overlaps []float64
	for i := 1; i < tr.NumIntervals(); i++ {
		prev := map[int64]bool{}
		for _, b := range DistinctBlocks(tr.Interval(i - 1)) {
			prev[b] = true
		}
		cur := DistinctBlocks(tr.Interval(i))
		if len(cur) == 0 {
			continue
		}
		hit := 0
		for _, b := range cur {
			if prev[b] {
				hit++
			}
		}
		overlaps = append(overlaps, float64(hit)/float64(len(cur)))
	}
	var mean float64
	for _, o := range overlaps {
		mean += o
	}
	mean /= float64(len(overlaps))
	if mean < 0.5 {
		t.Errorf("TPC-E block overlap %.2f, want high (> 0.5) persistence", mean)
	}
}

func TestGenerateValidation(t *testing.T) {
	base := WorkloadConfig{
		Name: "x", Intervals: 2, IntervalMS: 100,
		RatePerSec: []float64{10, 10}, Volumes: 3, Universe: 100,
		HotBlocks: 10, HotFrac: 0.5, HotCarry: 0.5, ZipfS: 1.5,
	}
	mutate := []func(*WorkloadConfig){
		func(c *WorkloadConfig) { c.Intervals = 0 },
		func(c *WorkloadConfig) { c.RatePerSec = []float64{10} },
		func(c *WorkloadConfig) { c.Volumes = 0 },
		func(c *WorkloadConfig) { c.HotBlocks = 200 },
		func(c *WorkloadConfig) { c.HotFrac = 1.5 },
		func(c *WorkloadConfig) { c.ZipfS = 1.0 },
	}
	for i, m := range mutate {
		c := base
		c.RatePerSec = append([]float64{}, base.RatePerSec...)
		m(&c)
		if _, err := Generate(c); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestDiurnalAndFlatRates(t *testing.T) {
	d := DiurnalRates(96, 100, 1000, 0, 1)
	if d[0] > d[48] {
		t.Error("diurnal curve should peak mid-trace")
	}
	if len(d) != 96 {
		t.Error("length wrong")
	}
	f := FlatRates(6, 500, 0, 1)
	for _, r := range f {
		if r != 500 {
			t.Error("flat rates with zero noise should be constant")
		}
	}
}

func TestDistinctBlocks(t *testing.T) {
	recs := []Record{{Block: 1}, {Block: 2}, {Block: 1}, {Block: 3}}
	got := DistinctBlocks(recs)
	if len(got) != 3 {
		t.Errorf("distinct = %v, want 3 blocks", got)
	}
	if DistinctBlocks(nil) != nil {
		t.Error("empty input should give nil")
	}
}

// Property: generated traces are sorted, in-range, and reproducible by seed.
func TestQuickGenerateInvariants(t *testing.T) {
	prop := func(s uint8) bool {
		seed := int64(s) + 1
		cfg := WorkloadConfig{
			Name: "q", Intervals: 3, IntervalMS: 50,
			RatePerSec: []float64{500, 1000, 700},
			Volumes:    5, Universe: 1000, HotBlocks: 50,
			HotFrac: 0.6, HotCarry: 0.5, ZipfS: 1.3, Seed: seed,
		}
		t1, err := Generate(cfg)
		if err != nil {
			return false
		}
		t2, _ := Generate(cfg)
		if len(t1.Records) != len(t2.Records) {
			return false
		}
		for i := range t1.Records {
			if t1.Records[i] != t2.Records[i] {
				return false
			}
			r := t1.Records[i]
			if r.Arrival < 0 || r.Arrival >= 150 || r.Block < 0 || r.Block >= 1000 || r.Device < 0 || r.Device >= 5 {
				return false
			}
			if i > 0 && r.Arrival < t1.Records[i-1].Arrival {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerateExchange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ExchangeLike(int64(i+1), 0.1); err != nil {
			b.Fatal(err)
		}
	}
}
