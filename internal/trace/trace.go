// Package trace provides the I/O trace infrastructure of the paper's
// evaluation (§V-B): a DiskSim-style ASCII record format with reader and
// writer, the synthetic workload generator of §V-B1, and synthesizers that
// stand in for the SNIA Exchange and TPC-E server traces (§V-B2). The
// synthesizers reproduce the statistics the experiments consume — interval
// structure, arrival intensity, block popularity and cross-interval pair
// locality — at a laptop-friendly scale (see DESIGN.md for the
// substitution argument).
//
// Times are in milliseconds, block addresses are 8 KB-aligned logical block
// numbers, matching the paper's alignment of all requests to DiskSim's 8 KB
// blocks.
package trace

import (
	"sort"
)

// BlockSize is the request size used throughout the paper (8 KB).
const BlockSize = 8192

// Record is one I/O request.
type Record struct {
	Arrival float64 // ms since trace start
	Device  int     // volume/device hint from the original trace
	Block   int64   // logical block number (8 KB units)
	Size    int     // bytes (BlockSize unless stated otherwise)
	Write   bool    // false = read (the paper's experiments use reads)
}

// Trace is a sequence of records broken into fixed reporting intervals
// (15-minute intervals for Exchange, 10–16-minute parts for TPC-E; scaled
// in the synthesizers).
type Trace struct {
	Name       string
	Records    []Record // sorted by Arrival
	IntervalMS float64  // reporting-interval length
}

// Sort orders records by arrival time (stable).
func (t *Trace) Sort() {
	sort.SliceStable(t.Records, func(i, j int) bool { return t.Records[i].Arrival < t.Records[j].Arrival })
}

// NumIntervals returns the number of reporting intervals covered.
func (t *Trace) NumIntervals() int {
	if len(t.Records) == 0 || t.IntervalMS <= 0 {
		return 0
	}
	last := t.Records[len(t.Records)-1].Arrival
	return int(last/t.IntervalMS) + 1
}

// IntervalOf returns the reporting interval index of a record.
func (t *Trace) IntervalOf(r Record) int {
	if t.IntervalMS <= 0 {
		return 0
	}
	return int(r.Arrival / t.IntervalMS)
}

// Interval returns the records of reporting interval i (a subslice; do not
// modify). Records must be sorted.
func (t *Trace) Interval(i int) []Record {
	lo := sort.Search(len(t.Records), func(j int) bool {
		return t.Records[j].Arrival >= float64(i)*t.IntervalMS
	})
	hi := sort.Search(len(t.Records), func(j int) bool {
		return t.Records[j].Arrival >= float64(i+1)*t.IntervalMS
	})
	return t.Records[lo:hi]
}

// IntervalStats summarizes one reporting interval the way the paper's Fig 6
// does: total reads, and the average and maximum per-second read rate.
type IntervalStats struct {
	Interval  int
	Total     int     // total read requests in the interval
	AvgPerSec float64 // total / interval duration
	MaxPerSec float64 // peak over 1-second bins (bins shorter than 1 s are scaled)
}

// Stats computes per-interval statistics (Fig 6). Only reads are counted,
// like the paper's read-request figures.
func (t *Trace) Stats() []IntervalStats {
	n := t.NumIntervals()
	out := make([]IntervalStats, n)
	if n == 0 {
		return out
	}
	binMS := 1000.0 // 1-second bins
	if t.IntervalMS < binMS {
		binMS = t.IntervalMS / 10 // short synthetic intervals: use 10 bins
	}
	for i := 0; i < n; i++ {
		recs := t.Interval(i)
		st := IntervalStats{Interval: i}
		bins := map[int]int{}
		for _, r := range recs {
			if r.Write {
				continue
			}
			st.Total++
			bins[int(r.Arrival/binMS)]++
		}
		st.AvgPerSec = float64(st.Total) / (t.IntervalMS / 1000)
		maxBin := 0
		for _, c := range bins {
			if c > maxBin {
				maxBin = c
			}
		}
		st.MaxPerSec = float64(maxBin) / (binMS / 1000)
		out[i] = st
	}
	return out
}

// DistinctBlocks returns the distinct block numbers in a record slice.
func DistinctBlocks(recs []Record) []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, r := range recs {
		if !seen[r.Block] {
			seen[r.Block] = true
			out = append(out, r.Block)
		}
	}
	return out
}
