package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The ASCII format is one request per line, DiskSim-style:
//
//	<arrival-ms> <device> <block> <size-bytes> <R|W>
//
// Lines starting with '#' are comments; a leading "# interval-ms <v>" and
// "# name <s>" header carries trace metadata.

// Write serializes a trace in ASCII format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if t.Name != "" {
		if _, err := fmt.Fprintf(bw, "# name %s\n", t.Name); err != nil {
			return err
		}
	}
	if t.IntervalMS > 0 {
		if _, err := fmt.Fprintf(bw, "# interval-ms %g\n", t.IntervalMS); err != nil {
			return err
		}
	}
	for _, r := range t.Records {
		op := "R"
		if r.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%.6f %d %d %d %s\n", r.Arrival, r.Device, r.Block, r.Size, op); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses an ASCII trace.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(strings.TrimPrefix(line, "#"))
			if len(fields) == 2 {
				switch fields[0] {
				case "name":
					t.Name = fields[1]
				case "interval-ms":
					v, err := strconv.ParseFloat(fields[1], 64)
					if err != nil {
						return nil, fmt.Errorf("trace: line %d: bad interval-ms: %v", lineNo, err)
					}
					t.IntervalMS = v
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		arrival, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad arrival: %v", lineNo, err)
		}
		dev, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad device: %v", lineNo, err)
		}
		block, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad block: %v", lineNo, err)
		}
		size, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size: %v", lineNo, err)
		}
		var write bool
		switch fields[4] {
		case "R", "r":
			write = false
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[4])
		}
		t.Records = append(t.Records, Record{Arrival: arrival, Device: dev, Block: block, Size: size, Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return t, nil
}
