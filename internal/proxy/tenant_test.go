package proxy

import (
	"strconv"
	"strings"
	"testing"

	"flashqos/internal/admission"
	"flashqos/internal/core"
	"flashqos/internal/health"
	"flashqos/internal/qosnet"
	"flashqos/internal/shard"
	"flashqos/internal/wire"
)

// startTenantBackend is startBackend with a T-window far longer than the
// test's wall clock, so every request lands in window 0 and per-backend
// tenant limits apply deterministically.
func startTenantBackend(t *testing.T) (*qosnet.Server, string) {
	t.Helper()
	arr, err := shard.New(1, core.Config{N: 9, C: 3, M: 1, IntervalMS: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	err = arr.NewHealthMonitors(200, health.Config{SuspectAfter: 3, FailAfter: 10})
	if err != nil {
		t.Fatal(err)
	}
	srv := qosnet.NewServerSharded(arr, qosnet.Options{Proto: qosnet.ProtoBinary})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, addr.String()
}

// TestProxyTenantControlPlane drives the tenant surface through the proxy:
// SET broadcasts to both backends with agreeing indices, HELLO resolves
// names cluster-wide, tagged submissions forward with each backend gating
// independently, GET/STATS merge the per-backend gauges, METRICS exposes
// the cluster series, and DEL turns the index unknown everywhere.
func TestProxyTenantControlPlane(t *testing.T) {
	srv0, a0 := startTenantBackend(t)
	srv1, a1 := startTenantBackend(t)
	_, c := startProxy(t, Options{ProbeInterval: -1}, a0, a1)

	idx, err := c.TenantSet(wire.TenantSpec{Name: "alpha", Reserve: 2, Limit: 2, Weight: 1})
	if err != nil || idx != 1 {
		t.Fatalf("TenantSet alpha via proxy: %d %v", idx, err)
	}
	if idx, err = c.TenantSet(wire.TenantSpec{Name: "beta", Reserve: 1, Weight: 2}); err != nil || idx != 2 {
		t.Fatalf("TenantSet beta via proxy: %d %v", idx, err)
	}
	// Both backends hold the same table: name→index agrees on direct dials.
	for _, srv := range []*qosnet.Server{srv0, srv1} {
		if got := srv.Array().TenantIndex("alpha"); got != 1 {
			t.Fatalf("backend alpha index = %d, want 1", got)
		}
		if got := srv.Array().TenantIndex("beta"); got != 2 {
			t.Fatalf("backend beta index = %d, want 2", got)
		}
	}
	// A reserve beyond any backend's S is refused cluster-wide.
	if _, err := c.TenantSet(wire.TenantSpec{Name: "big", Reserve: 99, Weight: 1}); err == nil {
		t.Fatal("TenantSet beyond S accepted through proxy")
	}

	hello, err := c.TenantHello([]string{"alpha", "beta", "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if hello[0] != 1 || hello[1] != 2 || hello[2] != 0 {
		t.Fatalf("proxy hello = %v, want [1 2 0]", hello)
	}

	// Tagged submissions route by block and each backend gates its own
	// share against Limit 2; expected admissions are min(2, routed count)
	// per backend.
	want := [2]int{}
	admitted, overLimit := 0, 0
	for block := int64(0); block < 12; block++ {
		owner := shard.Route(block, 2)
		if want[owner] < 2 {
			want[owner]++
		}
		res, err := c.ReadTenant(block, hello[0])
		if err != nil {
			t.Fatalf("tagged READ %d: %v", block, err)
		}
		switch {
		case !res.Rejected:
			admitted++
			if res.Device/9 != owner {
				t.Errorf("tagged READ %d served by device %d, want backend %d", block, res.Device, owner)
			}
		case res.OverLimit:
			overLimit++
		default:
			t.Fatalf("tagged READ %d rejected without the over-limit bit: %+v", block, res)
		}
	}
	if wantTotal := want[0] + want[1]; admitted != wantTotal || overLimit != 12-wantTotal {
		t.Fatalf("admitted %d / overLimit %d, want %d / %d", admitted, overLimit, wantTotal, 12-wantTotal)
	}

	// An index no backend knows is refused with the backend's own error.
	if _, err := c.ReadTenant(3, 99); err == nil || !strings.Contains(err.Error(), "unknown tenant") {
		t.Fatalf("unknown tenant through proxy: %v", err)
	}

	// GET and STATS sum the gauges across backends.
	entry, err := c.TenantGet("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Index != 1 || entry.Admitted != int64(admitted) || entry.OverLimit != int64(overLimit) {
		t.Fatalf("proxy TenantGet = %+v, want admitted %d overLimit %d", entry, admitted, overLimit)
	}
	stats, err := c.TenantStats()
	if err != nil || len(stats) != 2 {
		t.Fatalf("proxy TenantStats: %+v %v", stats, err)
	}
	if stats[0] != entry || stats[1].Spec.Name != "beta" || stats[1].Admitted != 0 {
		t.Fatalf("proxy TenantStats entries: %+v", stats)
	}
	if _, err := c.TenantGet("ghost"); err == nil || !strings.Contains(err.Error(), "unknown tenant") {
		t.Fatalf("proxy TenantGet ghost: %v", err)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`flashqos_proxy_tenant_admitted_total{tenant="alpha"} ` + strconv.Itoa(admitted),
		`flashqos_proxy_tenant_over_limit_total{tenant="alpha"} ` + strconv.Itoa(overLimit),
		`flashqos_proxy_tenant_admitted_total{tenant="beta"} 0`,
	} {
		if !strings.Contains(m, series+"\n") {
			t.Errorf("proxy metrics missing %q", series)
		}
	}

	// DEL broadcasts: the index refuses on both backends afterwards.
	if err := c.TenantDel("beta"); err != nil {
		t.Fatal(err)
	}
	for _, srv := range []*qosnet.Server{srv0, srv1} {
		if srv.Array().TenantActive(2) {
			t.Fatal("beta still active on a backend after proxy DEL")
		}
	}
	if _, err := c.ReadTenant(1, 2); err == nil || !strings.Contains(err.Error(), "unknown tenant") {
		t.Fatalf("deleted tenant through proxy: %v", err)
	}
	// Untenanted traffic rode along untouched.
	if res, err := c.Read(20); err != nil || res.Rejected {
		t.Fatalf("untenanted read through proxy: %+v %v", res, err)
	}
}

// TestProxyTenantIndexMismatch skews one backend's table out from under the
// proxy and checks the control plane refuses to answer with ambiguous
// indices instead of silently picking one.
func TestProxyTenantIndexMismatch(t *testing.T) {
	srv0, a0 := startTenantBackend(t)
	_, a1 := startTenantBackend(t)
	_, c := startProxy(t, Options{ProbeInterval: -1}, a0, a1)

	// Backend 0 learns a tenant behind the proxy's back, so the next
	// cluster-wide SET lands on different slots.
	if _, err := srv0.Array().TenantSet(admission.TenantSpec{Name: "rogue", Reserve: 1, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TenantSet(wire.TenantSpec{Name: "alpha", Reserve: 1, Weight: 1}); err == nil ||
		!strings.Contains(err.Error(), "index mismatch") {
		t.Fatalf("skewed SET: err = %v, want index mismatch", err)
	}
	// HELLO sees the divergence too: "rogue" resolves on one backend only.
	if _, err := c.TenantHello([]string{"rogue"}); err == nil ||
		!strings.Contains(err.Error(), "index mismatch") {
		t.Fatalf("skewed HELLO: err = %v, want index mismatch", err)
	}
}
