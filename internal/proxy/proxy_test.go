package proxy

import (
	"strings"
	"testing"
	"time"

	"flashqos/internal/core"
	"flashqos/internal/health"
	"flashqos/internal/qosnet"
	"flashqos/internal/shard"
)

// startBackend runs one in-process qosd-shaped backend: a single-shard
// (9,3,1) array with a health monitor, served over the binary protocol.
func startBackend(t *testing.T) (*qosnet.Server, string) {
	t.Helper()
	arr, err := shard.New(1, core.Config{N: 9, C: 3, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = arr.NewHealthMonitors(200, health.Config{SuspectAfter: 3, FailAfter: 10})
	if err != nil {
		t.Fatal(err)
	}
	srv := qosnet.NewServerSharded(arr, qosnet.Options{Proto: qosnet.ProtoBinary})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, addr.String()
}

// startProxy fronts the given backends and returns a connected client.
func startProxy(t *testing.T, opts Options, addrs ...string) (*Proxy, *qosnet.BinaryClient) {
	t.Helper()
	p, err := New(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve()
	t.Cleanup(func() { p.Close() })
	c, err := qosnet.DialBinary(bound.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return p, c
}

// TestProxyRoutesByBlock checks that READ/WRITE/MAP through the proxy land
// on the backend shard.Route picks, with outcomes remapped to the global
// device numbering (backend i owns devices [9i, 9i+9)).
func TestProxyRoutesByBlock(t *testing.T) {
	_, a0 := startBackend(t)
	_, a1 := startBackend(t)
	p, c := startProxy(t, Options{ProbeInterval: -1}, a0, a1)
	if p.Devices() != 18 {
		t.Fatalf("Devices() = %d, want 18", p.Devices())
	}
	for block := int64(0); block < 24; block++ {
		want := shard.Route(block, 2)
		res, err := c.Read(block)
		if err != nil {
			t.Fatalf("READ %d: %v", block, err)
		}
		if res.Rejected {
			continue
		}
		if got := res.Device / 9; got != want {
			t.Errorf("READ %d served by backend %d (device %d), want backend %d",
				block, got, res.Device, want)
		}
		db, devs, err := c.Map(block)
		if err != nil {
			t.Fatalf("MAP %d: %v", block, err)
		}
		if db != int(block%36) || len(devs) != 3 {
			t.Errorf("MAP %d = (%d, %v), want design block %d with 3 replicas", block, db, devs, block%36)
		}
		for _, d := range devs {
			if d/9 != want {
				t.Errorf("MAP %d replica device %d outside backend %d's window", block, d, want)
			}
		}
	}
	if res, err := c.Write(7); err != nil {
		t.Fatalf("WRITE: %v", err)
	} else if !res.Rejected && res.Device/9 != shard.Route(7, 2) {
		t.Errorf("WRITE 7 device %d on wrong backend", res.Device)
	}
}

// TestProxyBatchAndAggregation drives BATCH across both backends and then
// checks the fan-out verbs: STATS sums request counters, HEALTH merges the
// device reports under global ids, SHARDSTATS concatenates, METRICS
// exposes the proxy gauges.
func TestProxyBatchAndAggregation(t *testing.T) {
	_, a0 := startBackend(t)
	_, a1 := startBackend(t)
	_, c := startProxy(t, Options{ProbeInterval: -1}, a0, a1)

	blocks := make([]int64, 10)
	for i := range blocks {
		blocks[i] = int64(i * 5)
	}
	outs, err := c.Batch(blocks)
	if err != nil {
		t.Fatalf("BATCH: %v", err)
	}
	if len(outs) != len(blocks) {
		t.Fatalf("BATCH returned %d outcomes, want %d", len(outs), len(blocks))
	}
	for i, o := range outs {
		if o.Rejected {
			continue
		}
		if want := shard.Route(blocks[i], 2); o.Device/9 != want {
			t.Errorf("batch block %d served by device %d, want backend %d", blocks[i], o.Device, want)
		}
	}

	reqs, _, rejected, _, err := c.Stats()
	if err != nil {
		t.Fatalf("STATS: %v", err)
	}
	if reqs != int64(len(blocks)) || rejected != 0 {
		t.Errorf("STATS = %d requests / %d rejected, want %d / 0", reqs, rejected, len(blocks))
	}

	h, err := c.Health()
	if err != nil {
		t.Fatalf("HEALTH: %v", err)
	}
	if h.Devices != 18 || h.Alive != 18 || len(h.States) != 18 {
		t.Errorf("HEALTH = %d devices / %d alive / %d states, want 18/18/18",
			h.Devices, h.Alive, len(h.States))
	}
	for i, d := range h.States {
		if d.Device != i {
			t.Errorf("HEALTH state %d has device %d, want global ids in order", i, d.Device)
		}
	}

	gs, err := c.ShardStats()
	if err != nil {
		t.Fatalf("SHARDSTATS: %v", err)
	}
	if len(gs) != 2 {
		t.Errorf("SHARDSTATS returned %d gauges, want 2 (one shard per backend)", len(gs))
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("METRICS: %v", err)
	}
	for _, want := range []string{
		"flashqos_proxy_backends 2",
		"flashqos_proxy_backend_up{backend=\"0\"",
		"flashqos_proxy_requests_total 10",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("METRICS missing %q:\n%s", want, m)
		}
	}
}

// TestProxyAdminByGlobalDevice fails a device owned by the second backend
// through the proxy and checks the degradation is visible — and scoped to
// that backend — in the aggregated HEALTH report.
func TestProxyAdminByGlobalDevice(t *testing.T) {
	_, a0 := startBackend(t)
	_, a1 := startBackend(t)
	_, c := startProxy(t, Options{ProbeInterval: -1}, a0, a1)

	state, _, err := c.Fail(9) // backend 1, local device 0
	if err != nil {
		t.Fatalf("FAIL 9: %v", err)
	}
	if state != "failed" {
		t.Errorf("FAIL 9 state = %q, want failed", state)
	}
	h, err := c.Health()
	if err != nil {
		t.Fatalf("HEALTH: %v", err)
	}
	if h.Alive != 17 {
		t.Errorf("HEALTH alive = %d after failing one device, want 17", h.Alive)
	}
	if h.States[9].State != "failed" {
		t.Errorf("global device 9 state = %q, want failed", h.States[9].State)
	}
	if h.States[0].State != "healthy" {
		t.Errorf("backend 0's device 0 state = %q, want healthy (failure must not leak)", h.States[0].State)
	}
	if _, _, err := c.Recover(9); err != nil {
		t.Fatalf("RECOVER 9: %v", err)
	}
	if _, _, err := c.Fail(18); err == nil {
		t.Error("FAIL 18 succeeded, want error for out-of-range global device")
	}
}

// TestProxyBackendEjection kills one backend and checks the prober ejects
// it: its blocks answer error frames, the other backend keeps serving, and
// HEALTH degrades to unreachable devices instead of failing outright.
func TestProxyBackendEjection(t *testing.T) {
	_, a0 := startBackend(t)
	srv1, a1 := startBackend(t)
	p, c := startProxy(t, Options{ProbeInterval: 20 * time.Millisecond, EjectAfter: 2}, a0, a1)

	srv1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for p.backends[1].up.Load() {
		if time.Now().After(deadline) {
			t.Fatal("backend 1 not ejected after close")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Blocks owned by the dead backend answer error frames; the live
	// backend keeps admitting.
	served, failed := 0, 0
	for block := int64(0); block < 32; block++ {
		res, err := c.Read(block)
		owner := shard.Route(block, 2)
		if owner == 1 {
			if err == nil {
				t.Errorf("READ %d (dead backend) succeeded with device %d", block, res.Device)
			}
			failed++
			continue
		}
		if err != nil {
			t.Errorf("READ %d (live backend): %v", block, err)
			continue
		}
		served++
	}
	if served == 0 || failed == 0 {
		t.Fatalf("route split degenerate: %d served, %d dead-routed", served, failed)
	}

	h, err := c.Health()
	if err != nil {
		t.Fatalf("HEALTH with ejected backend: %v", err)
	}
	if h.Devices != 18 || h.Alive != 9 {
		t.Errorf("HEALTH = %d devices / %d alive, want 18 / 9", h.Devices, h.Alive)
	}
	unreachable := 0
	for _, d := range h.States {
		if d.State == "unreachable" {
			unreachable++
		}
	}
	if unreachable != 9 {
		t.Errorf("HEALTH reports %d unreachable devices, want 9", unreachable)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("METRICS with ejected backend: %v", err)
	}
	if !strings.Contains(m, "\"} 0\n") {
		t.Errorf("METRICS missing a backend_up 0 gauge:\n%s", m)
	}
}
