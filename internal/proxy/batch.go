package proxy

import (
	"sync"

	"flashqos/internal/shard"
	"flashqos/internal/wire"
)

// batchScratch holds every buffer one BATCH forward needs: the decoded
// request, the per-backend split (sub-batches, original positions,
// encoded sub-requests, raw and decoded sub-responses), the merged
// outcomes, and the encoded response. Scratches are pooled so the BATCH
// path stops allocating per call; a scratch may be returned to the pool
// as soon as the response frame has been handed to the connection writer
// (which copies the payload into its buffer before returning).
type batchScratch struct {
	blocks []int64          // decoded request blocks
	idxs   [][]int          // idxs[bi]: original positions of backend bi's sub-batch
	parts  [][]int64        // parts[bi]: backend bi's sub-batch blocks
	reqs   [][]byte         // reqs[bi]: encoded sub-request payload
	rps    [][]byte         // rps[bi]: raw sub-response payload
	subs   [][]wire.Outcome // subs[bi]: decoded sub-response outcomes
	outs   []wire.Outcome   // merged outcomes in input order
	resp   []byte           // encoded response payload
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// ensure sizes the per-backend slices for k backends, growing only when a
// scratch meets a larger fan-out than it has seen and keeping every inner
// backing array for reuse.
func (sc *batchScratch) ensure(k int) {
	for len(sc.idxs) < k {
		sc.idxs = append(sc.idxs, nil)
		sc.parts = append(sc.parts, nil)
		sc.reqs = append(sc.reqs, nil)
		sc.rps = append(sc.rps, nil)
		sc.subs = append(sc.subs, nil)
	}
}

// outBuf returns the merged-outcome buffer re-sliced to n.
func (sc *batchScratch) outBuf(n int) []wire.Outcome {
	if cap(sc.outs) < n {
		sc.outs = make([]wire.Outcome, n)
	}
	sc.outs = sc.outs[:n]
	return sc.outs
}

// splitBatch partitions blocks by owning backend — shard.Route over k,
// the same hash the per-request path uses — into sc.parts and sc.idxs.
// Steady-state reuse of a scratch is allocation-free.
func splitBatch(blocks []int64, k int, sc *batchScratch) {
	sc.ensure(k)
	for bi := 0; bi < k; bi++ {
		sc.idxs[bi] = sc.idxs[bi][:0]
		sc.parts[bi] = sc.parts[bi][:0]
	}
	for i, blk := range blocks {
		bi := shard.Route(blk, k)
		sc.idxs[bi] = append(sc.idxs[bi], i)
		sc.parts[bi] = append(sc.parts[bi], blk)
	}
}

// mergeBatch scatters one backend's sub-batch outcomes back into input
// order, globalizing admitted device ids by the backend's offset. idx is
// the position list splitBatch built for that backend.
func mergeBatch(outs, sub []wire.Outcome, idx []int, offset int32) {
	for j, o := range sub {
		if o.Device >= 0 {
			o.Device += offset
		}
		outs[idx[j]] = o
	}
}
