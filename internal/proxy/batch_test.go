package proxy

import (
	"testing"

	"flashqos/internal/shard"
	"flashqos/internal/wire"
)

// TestSplitMergeRoundTrip checks the pure split/merge pair against the
// routing rule: every block lands in its owning backend's sub-batch, and
// merging the sub-responses reproduces input order with globalized
// device ids.
func TestSplitMergeRoundTrip(t *testing.T) {
	const k = 3
	blocks := make([]int64, 50)
	for i := range blocks {
		blocks[i] = int64(i * 977)
	}
	sc := new(batchScratch)
	splitBatch(blocks, k, sc)
	total := 0
	for bi := 0; bi < k; bi++ {
		if len(sc.parts[bi]) != len(sc.idxs[bi]) {
			t.Fatalf("backend %d: %d blocks vs %d indices", bi, len(sc.parts[bi]), len(sc.idxs[bi]))
		}
		for j, blk := range sc.parts[bi] {
			if shard.Route(blk, k) != bi {
				t.Errorf("block %d split to backend %d, Route says %d", blk, bi, shard.Route(blk, k))
			}
			if blocks[sc.idxs[bi][j]] != blk {
				t.Errorf("backend %d pos %d: index %d points at block %d, want %d",
					bi, j, sc.idxs[bi][j], blocks[sc.idxs[bi][j]], blk)
			}
		}
		total += len(sc.parts[bi])
	}
	if total != len(blocks) {
		t.Fatalf("split covers %d blocks, want %d", total, len(blocks))
	}

	// Simulate each backend answering with local device ids, then merge.
	outs := sc.outBuf(len(blocks))
	for bi := 0; bi < k; bi++ {
		sub := sc.subs[bi][:0]
		for j := range sc.parts[bi] {
			dev := int32(j % 9)
			if j == 0 {
				dev = -1 // a rejection must not get the offset
			}
			sub = append(sub, wire.Outcome{Device: dev, Status: wire.StatusDelayed})
		}
		sc.subs[bi] = sub
		mergeBatch(outs, sub, sc.idxs[bi], int32(bi*9))
	}
	for bi := 0; bi < k; bi++ {
		for j, idx := range sc.idxs[bi] {
			got := outs[idx]
			want := int32(bi*9 + j%9)
			if j == 0 {
				want = -1
			}
			if got.Device != want {
				t.Errorf("merged outcome %d device = %d, want %d", idx, got.Device, want)
			}
		}
	}
}

// TestBatchScratchAllocFree pins the steady-state allocation count of the
// whole split → encode → decode → merge → encode cycle on a warmed
// scratch to zero, so the BATCH forward path cannot silently regress to
// per-call allocation again.
func TestBatchScratchAllocFree(t *testing.T) {
	const k = 4
	blocks := make([]int64, 64)
	for i := range blocks {
		blocks[i] = int64(i * 977)
	}
	payload := wire.AppendBatchReq(nil, blocks)
	sc := new(batchScratch)
	run := func() {
		dec, err := wire.ParseBatchReq(payload, sc.blocks)
		if err != nil {
			t.Fatal(err)
		}
		sc.blocks = dec
		splitBatch(dec, k, sc)
		outs := sc.outBuf(len(dec))
		for bi := 0; bi < k; bi++ {
			if len(sc.parts[bi]) == 0 {
				continue
			}
			sc.reqs[bi] = wire.AppendBatchReq(sc.reqs[bi][:0], sc.parts[bi])
			// Stand in for the backend round trip: echo an outcome per block.
			sub := sc.subs[bi][:0]
			for range sc.parts[bi] {
				sub = append(sub, wire.Outcome{Device: 2})
			}
			sc.subs[bi] = sub
			mergeBatch(outs, sub, sc.idxs[bi], int32(bi*9))
		}
		sc.resp = wire.AppendBatchResp(sc.resp[:0], outs)
	}
	run() // warm the scratch
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("batch split/merge cycle allocates %.1f per run on warm scratch, want 0", n)
	}
}
