package proxy

import (
	"errors"
	"sync"

	"flashqos/internal/wire"
)

// Tenant control plane across backends.
//
// The proxy holds no tenant state of its own: TENANT SET/DEL broadcast to
// every live backend so each backend's gate enforces the same per-shard
// policy, hello resolution fans out and demands index agreement (a
// submission tagged with index i must mean the same tenant wherever its
// block routes), and stats/GET merge the per-backend gauges by name. The
// broadcast is not atomic — a backend that refuses a SET (say, a reserve
// beyond its S) leaves earlier backends updated and the error tells the
// operator to reconcile — but the hot path stays safe either way, because
// every backend validates the index on each tagged submission itself.

// errNoBackends is answered when an aggregation verb finds nothing live.
var errNoBackends = errors.New("no live backends")

// fanOut runs fn against every live backend concurrently and returns the
// per-backend results; the first error wins.
func fanOut[T any](bs []*backend, fn func(*backend) (T, error)) ([]T, error) {
	res := make([]T, len(bs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ferr error
	for i, b := range bs {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			r, err := fn(b)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if ferr == nil {
					ferr = err
				}
				return
			}
			res[i] = r
		}(i, b)
	}
	wg.Wait()
	if ferr != nil {
		return nil, ferr
	}
	return res, nil
}

// forwardTenantHello resolves tenant names on every live backend and
// demands they agree on every index — 0 (unknown) included — before
// answering, so a client-cached index means the same tenant on whichever
// backend a block routes to.
func (p *Proxy) forwardTenantHello(w *connWriter, h wire.Header, payload []byte) {
	resp := wire.Header{Opcode: wire.OpTenantHello, ID: h.ID}
	names, err := wire.ParseTenantHelloReq(payload)
	if err != nil {
		w.writeError(resp, "bad tenant hello payload")
		return
	}
	bs := p.upBackends()
	if len(bs) == 0 {
		w.writeError(resp, errNoBackends.Error())
		return
	}
	res, err := fanOut(bs, func(b *backend) ([]int32, error) {
		return b.client().TenantHello(names)
	})
	if err != nil {
		w.writeError(resp, err.Error())
		return
	}
	for _, idx := range res[1:] {
		for j := range idx {
			if idx[j] != res[0][j] {
				w.writeError(resp, "tenant index mismatch across backends for "+names[j])
				return
			}
		}
	}
	w.writeFrame(resp, wire.AppendTenantHelloResp(nil, res[0]))
}

// forwardTenant broadcasts SET/DEL to every live backend and serves GET
// from the merged per-backend gauges.
func (p *Proxy) forwardTenant(w *connWriter, h wire.Header, payload []byte) {
	resp := wire.Header{Opcode: wire.OpTenant, ID: h.ID}
	cmd, spec, err := wire.ParseTenantReq(payload)
	if err != nil {
		w.writeError(resp, "bad tenant payload")
		return
	}
	bs := p.upBackends()
	if len(bs) == 0 {
		w.writeError(resp, errNoBackends.Error())
		return
	}
	switch cmd {
	case wire.TenantCmdSet:
		idxs, err := fanOut(bs, func(b *backend) (int32, error) {
			return b.client().TenantSet(spec)
		})
		if err != nil {
			w.writeError(resp, err.Error())
			return
		}
		for _, idx := range idxs[1:] {
			if idx != idxs[0] {
				w.writeError(resp, "tenant index mismatch across backends for "+spec.Name)
				return
			}
		}
		w.writeFrame(resp, wire.AppendInt32(nil, idxs[0]))
	case wire.TenantCmdDel:
		if _, err := fanOut(bs, func(b *backend) (struct{}, error) {
			return struct{}{}, b.client().TenantDel(spec.Name)
		}); err != nil {
			w.writeError(resp, err.Error())
			return
		}
		w.writeFrame(resp, nil)
	case wire.TenantCmdGet:
		entries, err := fanOut(bs, func(b *backend) (wire.TenantEntry, error) {
			return b.client().TenantGet(spec.Name)
		})
		if err != nil {
			w.writeError(resp, err.Error())
			return
		}
		agg := entries[0]
		for _, e := range entries[1:] {
			agg.Admitted += e.Admitted
			agg.Rejected += e.Rejected
			agg.OverLimit += e.OverLimit
			agg.Deficit += e.Deficit
		}
		w.writeFrame(resp, wire.AppendTenantStats(nil, []wire.TenantEntry{agg}))
	}
}

// gatherTenantStats fans OpTenantStats to every live backend and merges
// entries by tenant name in first-appearance order, summing the gauges.
// Spec and index come from the first backend reporting the name.
func (p *Proxy) gatherTenantStats() ([]wire.TenantEntry, error) {
	bs := p.upBackends()
	if len(bs) == 0 {
		return nil, errNoBackends
	}
	parts, err := fanOut(bs, func(b *backend) ([]wire.TenantEntry, error) {
		return b.client().TenantStats()
	})
	if err != nil {
		return nil, err
	}
	var merged []wire.TenantEntry
	at := map[string]int{}
	for _, part := range parts {
		for _, e := range part {
			i, ok := at[e.Spec.Name]
			if !ok {
				at[e.Spec.Name] = len(merged)
				merged = append(merged, e)
				continue
			}
			merged[i].Admitted += e.Admitted
			merged[i].Rejected += e.Rejected
			merged[i].OverLimit += e.OverLimit
			merged[i].Deficit += e.Deficit
		}
	}
	return merged, nil
}

func (p *Proxy) aggregateTenantStats(w *connWriter, h wire.Header) {
	resp := wire.Header{Opcode: wire.OpTenantStats, ID: h.ID}
	merged, err := p.gatherTenantStats()
	if err != nil {
		w.writeError(resp, err.Error())
		return
	}
	w.writeFrame(resp, wire.AppendTenantStats(nil, merged))
}
