// Package proxy implements a stateless binary-protocol router in front of
// K independent qosd backends. Blocks are hash-partitioned across the
// backends with the same splitmix64 rule the in-process shard layer uses
// (shard.Route), so the proxy tier scales the aggregate guaranteed
// admission capacity to K·S per interval without any shared state between
// backends — the cluster analogue of qosd -shards.
//
// The proxy speaks the framed binary protocol (internal/wire) on both
// sides. Client frames are forwarded asynchronously over a per-backend
// connection pool — request IDs are remapped by the pool's BinaryClients
// and completions stream back out of order, so deep client pipelines stay
// pipelined end to end. Device ids are globalized: backend i's local
// device d appears to clients as offset(i)+d in outcomes, MAP responses,
// HEALTH reports, and the FAIL/RECOVER admin verbs route by that global
// numbering.
//
// Aggregation verbs fan out to every live backend: STATS sums the
// counters, HEALTH merges the per-device reports, SHARDSTATS concatenates
// the per-shard gauges in backend order, and METRICS renders a proxy-level
// exposition (backend up/down gauges plus aggregated totals).
//
// A prober goroutine per backend issues HEALTH probes every ProbeInterval
// on a fresh connection; EjectAfter consecutive failures eject the backend
// (its blocks answer error frames, aggregations skip it) until a probe
// succeeds again, at which point the connection pool is re-dialed and the
// backend rejoins.
package proxy

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"flashqos/internal/qosnet"
	"flashqos/internal/shard"
	"flashqos/internal/wire"
)

// Options configures the proxy tier.
type Options struct {
	// PoolSize is the number of pooled binary connections per backend.
	// 0 means DefaultPoolSize.
	PoolSize int
	// ProbeInterval is the backend health-probe period. 0 means
	// DefaultProbeInterval; negative disables probing (backends stay in
	// their startup state).
	ProbeInterval time.Duration
	// EjectAfter is the number of consecutive probe failures that eject a
	// backend. 0 means DefaultEjectAfter.
	EjectAfter int
	// ReadTimeout is the per-frame client read deadline (0 = none).
	ReadTimeout time.Duration
	// MaxPayloadBytes caps client frame payloads (0 = wire default).
	MaxPayloadBytes int
}

// Defaults for Options zero values.
const (
	DefaultPoolSize      = 2
	DefaultEjectAfter    = 3
	DefaultProbeInterval = 2 * time.Second
)

// backend is one downstream qosd process: its pooled connections, its
// global device-id window, and its probed liveness.
type backend struct {
	addr    string
	offset  int // first global device id owned by this backend
	devices int // device count, learned from HEALTH at startup
	pool    atomic.Pointer[[]*qosnet.BinaryClient]
	next    atomic.Uint64
	up      atomic.Bool
	fails   int // prober-goroutine local
}

// client picks a pooled connection round-robin.
func (b *backend) client() *qosnet.BinaryClient {
	cs := *b.pool.Load()
	return cs[(b.next.Add(1)-1)%uint64(len(cs))]
}

func (b *backend) closePool() {
	if cs := b.pool.Load(); cs != nil {
		for _, c := range *cs {
			c.Close()
		}
	}
}

// Proxy is the router tier. Create with New, then Listen and Serve.
type Proxy struct {
	opts     Options
	backends []*backend

	lis      net.Listener
	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// New connects to the given backend addresses and learns their device
// topology (a HEALTH round trip per backend, so backends must run with a
// health monitor — qosd's default). Global device ids are assigned in
// argument order: backend i owns [offset(i), offset(i)+devices(i)).
func New(addrs []string, opts Options) (*Proxy, error) {
	if len(addrs) == 0 {
		return nil, errors.New("proxy: no backends")
	}
	if opts.PoolSize <= 0 {
		opts.PoolSize = DefaultPoolSize
	}
	if opts.EjectAfter <= 0 {
		opts.EjectAfter = DefaultEjectAfter
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = DefaultProbeInterval
	}
	p := &Proxy{
		opts:   opts,
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	offset := 0
	for _, addr := range addrs {
		b := &backend{addr: addr, offset: offset}
		if err := dialPool(b, opts.PoolSize); err != nil {
			p.closeBackends()
			return nil, fmt.Errorf("proxy: backend %s: %w", addr, err)
		}
		h, err := b.client().Health()
		if err != nil {
			b.closePool()
			p.closeBackends()
			return nil, fmt.Errorf("proxy: backend %s health probe: %w", addr, err)
		}
		b.devices = h.Devices
		b.up.Store(true)
		offset += b.devices
		p.backends = append(p.backends, b)
	}
	return p, nil
}

func dialPool(b *backend, n int) error {
	cs := make([]*qosnet.BinaryClient, 0, n)
	for i := 0; i < n; i++ {
		c, err := qosnet.DialBinary(b.addr)
		if err != nil {
			for _, cc := range cs {
				cc.Close()
			}
			return err
		}
		cs = append(cs, c)
	}
	b.pool.Store(&cs)
	return nil
}

func (p *Proxy) closeBackends() {
	for _, b := range p.backends {
		b.closePool()
	}
}

// Backends reports the number of configured backends.
func (p *Proxy) Backends() int { return len(p.backends) }

// Devices reports the global device count across all backends.
func (p *Proxy) Devices() int {
	n := 0
	for _, b := range p.backends {
		n += b.devices
	}
	return n
}

// route returns the backend owning a block.
func (p *Proxy) route(block int64) *backend {
	return p.backends[shard.Route(block, len(p.backends))]
}

// deviceBackend resolves a global device id to its backend and local id.
func (p *Proxy) deviceBackend(global int) (*backend, int, bool) {
	for _, b := range p.backends {
		if global >= b.offset && global < b.offset+b.devices {
			return b, global - b.offset, true
		}
	}
	return nil, 0, false
}

// Listen binds the client-facing listener and returns the bound address.
func (p *Proxy) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p.lis = lis
	return lis.Addr(), nil
}

// Serve accepts client connections until Close. Each backend's prober
// starts with the first Serve call.
func (p *Proxy) Serve() error {
	if p.opts.ProbeInterval > 0 {
		for _, b := range p.backends {
			p.wg.Add(1)
			go p.probe(b)
		}
	}
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			select {
			case <-p.closed:
				return nil
			default:
				return err
			}
		}
		p.connMu.Lock()
		p.conns[conn] = struct{}{}
		p.connMu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
			p.connMu.Lock()
			delete(p.conns, conn)
			p.connMu.Unlock()
		}()
	}
}

// Close stops serving: listener, client connections, probers, and backend
// pools are all shut down.
func (p *Proxy) Close() error {
	p.closeOne.Do(func() {
		close(p.closed)
		if p.lis != nil {
			p.lis.Close()
		}
		p.connMu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.connMu.Unlock()
	})
	p.wg.Wait()
	p.closeBackends()
	return nil
}

// probe watches one backend: a HEALTH round trip on a fresh connection
// every ProbeInterval. EjectAfter consecutive failures mark the backend
// down; the first success re-dials the pool and marks it up again. A
// healthy backend whose pooled connections have died (e.g. a transient
// network reset) gets its pool re-dialed too.
func (p *Proxy) probe(b *backend) {
	defer p.wg.Done()
	t := time.NewTicker(p.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.closed:
			return
		case <-t.C:
		}
		c, err := qosnet.DialBinary(b.addr)
		if err == nil {
			_, err = c.Health()
			c.Close()
		}
		if err != nil {
			b.fails++
			if b.fails >= p.opts.EjectAfter && b.up.Load() {
				b.up.Store(false)
			}
			continue
		}
		b.fails = 0
		if !b.up.Load() {
			old := b.pool.Load()
			if derr := dialPool(b, p.opts.PoolSize); derr != nil {
				continue // still unreachable for a full pool; stay down
			}
			for _, cc := range *old {
				cc.Close()
			}
			b.up.Store(true)
			continue
		}
		// Up, but replace a pool with dead connections.
		for _, cc := range *b.pool.Load() {
			if cc.Err() != nil {
				old := b.pool.Load()
				if derr := dialPool(b, p.opts.PoolSize); derr == nil {
					for _, occ := range *old {
						occ.Close()
					}
				}
				break
			}
		}
	}
}

// connWriter serializes response frames onto one client connection.
// Completions arrive concurrently from every backend pool's demultiplexer,
// so writes take a mutex; a kick-driven flusher goroutine coalesces each
// burst of completions into one flush, mirroring BinaryClient's write
// side.
type connWriter struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	wr   *wire.Writer
	err  error
	kick chan struct{}
	done chan struct{}
	once sync.Once
}

func newConnWriter(conn net.Conn) *connWriter {
	w := &connWriter{
		bw:   bufio.NewWriterSize(conn, 32768),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	w.wr = wire.NewWriter(w.bw)
	go w.flusher()
	return w
}

func (w *connWriter) flusher() {
	for {
		select {
		case <-w.done:
			return
		case <-w.kick:
			w.mu.Lock()
			if w.err == nil {
				w.err = w.bw.Flush()
			}
			w.mu.Unlock()
		}
	}
}

func (w *connWriter) kickFlush() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

func (w *connWriter) stop() { w.once.Do(func() { close(w.done) }) }

func (w *connWriter) failed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err != nil
}

func (w *connWriter) writeFrame(h wire.Header, payload []byte) {
	w.mu.Lock()
	if w.err == nil {
		w.err = w.wr.WriteFrame(h, payload)
	}
	w.mu.Unlock()
	w.kickFlush()
}

func (w *connWriter) writeOutcome(h wire.Header, o wire.Outcome) {
	w.mu.Lock()
	if w.err == nil {
		w.err = w.wr.WriteOutcome(h, o)
	}
	w.mu.Unlock()
	w.kickFlush()
}

func (w *connWriter) writeError(h wire.Header, msg string) {
	w.mu.Lock()
	if w.err == nil {
		w.err = w.wr.WriteError(h, msg)
	}
	w.mu.Unlock()
	w.kickFlush()
}

// call runs one synchronous round trip on a pooled client and unwraps
// error frames. The response payload is copied out of the demultiplexer
// into dst's backing (grown as needed; pass nil for a fresh allocation),
// so callers holding pooled scratch reuse it across calls.
func call(c *qosnet.BinaryClient, op uint8, payload, dst []byte) ([]byte, error) {
	type result struct {
		p   []byte
		err error
	}
	ch := make(chan result, 1)
	c.Call(op, payload, func(h wire.Header, p []byte, err error) {
		if err == nil && h.Flags&wire.FlagError != 0 {
			err = errors.New(string(p))
			p = nil
		}
		ch <- result{p: append(dst[:0], p...), err: err}
	})
	r := <-ch
	return r.p, r.err
}

// handle serves one client connection.
func (p *Proxy) handle(conn net.Conn) {
	defer conn.Close()
	rd := wire.NewReader(bufio.NewReaderSize(conn, 32768), p.opts.MaxPayloadBytes)
	w := newConnWriter(conn)
	defer w.stop()
	for {
		if p.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(p.opts.ReadTimeout))
		}
		h, payload, err := rd.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				conn.SetWriteDeadline(time.Now().Add(time.Second))
				w.writeError(wire.Header{}, err.Error())
			}
			return
		}
		switch h.Opcode {
		case wire.OpSubmit, wire.OpWrite:
			p.forwardSubmit(w, h, payload)
		case wire.OpBatch:
			p.forwardBatch(w, h, payload)
		case wire.OpMap:
			p.forwardMap(w, h, payload)
		case wire.OpStats:
			p.aggregateStats(w, h)
		case wire.OpMetrics:
			p.metrics(w, h)
		case wire.OpFail, wire.OpRecover:
			p.forwardAdmin(w, h, payload)
		case wire.OpHealth:
			p.aggregateHealth(w, h)
		case wire.OpShardStats:
			p.aggregateShardStats(w, h)
		case wire.OpTenantHello:
			p.forwardTenantHello(w, h, payload)
		case wire.OpTenant:
			p.forwardTenant(w, h, payload)
		case wire.OpTenantStats:
			p.aggregateTenantStats(w, h)
		case wire.OpQuit:
			return
		default:
			w.writeError(wire.Header{Opcode: h.Opcode, ID: h.ID},
				"unknown opcode "+strconv.Itoa(int(h.Opcode)))
		}
		if w.failed() {
			return
		}
	}
}

// forwardSubmit routes one READ/WRITE to the owning backend and streams
// the completion back asynchronously with the device id globalized. This
// is the hot path: no waiting, the client's pipeline depth carries
// through to the backend pool. A tenant-tagged frame (FlagTenant) is
// forwarded with its flag and payload unchanged — the backend owns tenant
// validation and answers an unknown index with the error frame relayed
// below — the proxy only decodes the block id to route.
func (p *Proxy) forwardSubmit(w *connWriter, h wire.Header, payload []byte) {
	resp := wire.Header{Opcode: h.Opcode, ID: h.ID}
	var (
		block int64
		err   error
	)
	flags := h.Flags & wire.FlagTenant
	if flags != 0 {
		block, _, err = wire.ParseTenantBlock(payload)
	} else {
		block, err = wire.ParseBlock(payload)
	}
	if err != nil {
		w.writeError(resp, "bad block payload")
		return
	}
	b := p.route(block)
	if !b.up.Load() {
		w.writeError(resp, "backend down: "+b.addr)
		return
	}
	off := int32(b.offset)
	// CallFlags copies the payload into the pool connection's write buffer
	// before returning, so forwarding the reader's bytes directly is safe.
	b.client().CallFlags(h.Opcode, flags, payload,
		func(rh wire.Header, rp []byte, rerr error) {
			if rerr != nil {
				w.writeError(resp, rerr.Error())
				return
			}
			if rh.Flags&wire.FlagError != 0 {
				w.writeError(resp, string(rp))
				return
			}
			o, _, perr := wire.ParseOutcome(rp)
			if perr != nil {
				w.writeError(resp, "bad backend outcome")
				return
			}
			if o.Device >= 0 {
				o.Device += off
			}
			w.writeOutcome(resp, o)
		})
}

// forwardBatch splits a joint-admission batch by owning backend, forwards
// the sub-batches concurrently, and reassembles the outcomes in input
// order. Joint admission holds within each backend (which is where window
// capacity lives); across backends the partitions are independent anyway.
// All split/merge scratch comes from a pooled batchScratch — each fan-out
// goroutine owns its backend's slots, so steady state allocates nothing
// beyond the round-trip channels. BinaryClient.Call copies the request
// payload into its write buffer before returning and the connection
// writer copies the response payload likewise, so the scratch can go back
// to the pool as soon as this function returns.
func (p *Proxy) forwardBatch(w *connWriter, h wire.Header, payload []byte) {
	resp := wire.Header{Opcode: wire.OpBatch, ID: h.ID}
	sc := batchPool.Get().(*batchScratch)
	defer batchPool.Put(sc)
	blocks, err := wire.ParseBatchReq(payload, sc.blocks)
	if blocks != nil {
		sc.blocks = blocks
	}
	if err != nil {
		w.writeError(resp, "bad batch payload")
		return
	}
	splitBatch(blocks, len(p.backends), sc)
	outs := sc.outBuf(len(blocks))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ferr error
	for bi := range p.backends {
		if len(sc.parts[bi]) == 0 {
			continue
		}
		wg.Add(1)
		go func(bi int, b *backend) {
			defer wg.Done()
			if !b.up.Load() {
				mu.Lock()
				ferr = errors.New("backend down: " + b.addr)
				mu.Unlock()
				return
			}
			sc.reqs[bi] = wire.AppendBatchReq(sc.reqs[bi][:0], sc.parts[bi])
			rp, err := call(b.client(), wire.OpBatch, sc.reqs[bi], sc.rps[bi])
			if rp != nil {
				sc.rps[bi] = rp
			}
			var sub []wire.Outcome
			if err == nil {
				sub, err = wire.ParseBatchResp(rp, sc.subs[bi])
				if sub != nil {
					sc.subs[bi] = sub
				}
			}
			if err == nil && len(sub) != len(sc.idxs[bi]) {
				err = errors.New("backend batch size mismatch")
			}
			if err != nil {
				mu.Lock()
				ferr = err
				mu.Unlock()
				return
			}
			mergeBatch(outs, sub, sc.idxs[bi], int32(b.offset))
		}(bi, p.backends[bi])
	}
	wg.Wait()
	if ferr != nil {
		w.writeError(resp, ferr.Error())
		return
	}
	sc.resp = wire.AppendBatchResp(sc.resp[:0], outs)
	w.writeFrame(resp, sc.resp)
}

// forwardMap routes a MAP to the owning backend and globalizes the replica
// device ids.
func (p *Proxy) forwardMap(w *connWriter, h wire.Header, payload []byte) {
	resp := wire.Header{Opcode: wire.OpMap, ID: h.ID}
	block, err := wire.ParseBlock(payload)
	if err != nil {
		w.writeError(resp, "bad block payload")
		return
	}
	b := p.route(block)
	if !b.up.Load() {
		w.writeError(resp, "backend down: "+b.addr)
		return
	}
	rp, err := call(b.client(), wire.OpMap, wire.AppendBlock(nil, block), nil)
	if err != nil {
		w.writeError(resp, err.Error())
		return
	}
	m, err := wire.ParseMapResp(rp)
	if err != nil {
		w.writeError(resp, "bad backend map response")
		return
	}
	for i := range m.Devices {
		m.Devices[i] += int32(b.offset)
	}
	w.writeFrame(resp, wire.AppendMapResp(nil, m))
}

// upBackends snapshots the live backends.
func (p *Proxy) upBackends() []*backend {
	bs := make([]*backend, 0, len(p.backends))
	for _, b := range p.backends {
		if b.up.Load() {
			bs = append(bs, b)
		}
	}
	return bs
}

// gatherStats fans a STATS round trip out to every live backend and sums.
func (p *Proxy) gatherStats() (wire.Stats, error) {
	bs := p.upBackends()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var agg wire.Stats
	var delaySum float64
	var ferr error
	for _, b := range bs {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			req, del, rej, avg, err := b.client().Stats()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				ferr = err
				return
			}
			agg.Requests += req
			agg.Delayed += del
			agg.Rejected += rej
			delaySum += avg * float64(del)
		}(b)
	}
	wg.Wait()
	if ferr != nil {
		return wire.Stats{}, ferr
	}
	if agg.Delayed > 0 {
		agg.AvgDelayMS = delaySum / float64(agg.Delayed)
	}
	return agg, nil
}

func (p *Proxy) aggregateStats(w *connWriter, h wire.Header) {
	resp := wire.Header{Opcode: wire.OpStats, ID: h.ID}
	agg, err := p.gatherStats()
	if err != nil {
		w.writeError(resp, err.Error())
		return
	}
	w.writeFrame(resp, wire.AppendStats(nil, agg))
}

// metrics renders the proxy-level exposition: topology and liveness
// gauges plus the aggregated request counters.
func (p *Proxy) metrics(w *connWriter, h wire.Header) {
	resp := wire.Header{Opcode: wire.OpMetrics, ID: h.ID}
	agg, err := p.gatherStats()
	if err != nil {
		w.writeError(resp, err.Error())
		return
	}
	buf := make([]byte, 0, 512)
	buf = append(buf, "# HELP flashqos_proxy_backends Configured qosd backends behind this proxy.\n"...)
	buf = append(buf, "# TYPE flashqos_proxy_backends gauge\nflashqos_proxy_backends "...)
	buf = strconv.AppendInt(buf, int64(len(p.backends)), 10)
	buf = append(buf, "\n# HELP flashqos_proxy_backend_up Backend liveness (1 = serving, 0 = ejected).\n"...)
	buf = append(buf, "# TYPE flashqos_proxy_backend_up gauge\n"...)
	for i, b := range p.backends {
		buf = append(buf, "flashqos_proxy_backend_up{backend=\""...)
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, "\",addr=\""...)
		buf = append(buf, b.addr...)
		buf = append(buf, "\"} "...)
		if b.up.Load() {
			buf = append(buf, '1')
		} else {
			buf = append(buf, '0')
		}
		buf = append(buf, '\n')
	}
	buf = append(buf, "# HELP flashqos_proxy_requests_total Requests summed over live backends.\n"...)
	buf = append(buf, "# TYPE flashqos_proxy_requests_total counter\nflashqos_proxy_requests_total "...)
	buf = strconv.AppendInt(buf, agg.Requests, 10)
	buf = append(buf, "\nflashqos_proxy_delayed_total "...)
	buf = strconv.AppendInt(buf, agg.Delayed, 10)
	buf = append(buf, "\nflashqos_proxy_rejected_total "...)
	buf = strconv.AppendInt(buf, agg.Rejected, 10)
	buf = append(buf, '\n')
	// Cluster-wide tenant gauges, merged across backends by name. A fan-out
	// failure drops the section rather than the whole page: the topology
	// gauges above stay scrapeable while a backend is flapping.
	if tenants, err := p.gatherTenantStats(); err == nil && len(tenants) > 0 {
		appendSeries := func(name string, pick func(wire.TenantEntry) int64) {
			buf = append(buf, "# TYPE "...)
			buf = append(buf, name...)
			buf = append(buf, " counter\n"...)
			for _, e := range tenants {
				buf = append(buf, name...)
				buf = append(buf, "{tenant=\""...)
				buf = append(buf, e.Spec.Name...)
				buf = append(buf, "\"} "...)
				buf = strconv.AppendInt(buf, pick(e), 10)
				buf = append(buf, '\n')
			}
		}
		appendSeries("flashqos_proxy_tenant_admitted_total", func(e wire.TenantEntry) int64 { return e.Admitted })
		appendSeries("flashqos_proxy_tenant_rejected_total", func(e wire.TenantEntry) int64 { return e.Rejected })
		appendSeries("flashqos_proxy_tenant_over_limit_total", func(e wire.TenantEntry) int64 { return e.OverLimit })
	}
	w.writeFrame(resp, buf)
}

// forwardAdmin routes FAIL/RECOVER by global device id and passes the
// owning backend's response through.
func (p *Proxy) forwardAdmin(w *connWriter, h wire.Header, payload []byte) {
	resp := wire.Header{Opcode: h.Opcode, ID: h.ID}
	dev, err := wire.ParseDevice(payload)
	if err != nil {
		w.writeError(resp, "bad device payload")
		return
	}
	b, local, ok := p.deviceBackend(int(dev))
	if !ok {
		w.writeError(resp, "bad device "+strconv.Itoa(int(dev)))
		return
	}
	if !b.up.Load() {
		w.writeError(resp, "backend down: "+b.addr)
		return
	}
	rp, err := call(b.client(), h.Opcode, wire.AppendDevice(nil, uint32(local)), nil)
	if err != nil {
		w.writeError(resp, err.Error())
		return
	}
	w.writeFrame(resp, rp)
}

// aggregateHealth merges every backend's HEALTH report into the global
// device numbering. Ejected backends contribute their configured device
// count as unreachable devices, so the summary degrades instead of lying.
func (p *Proxy) aggregateHealth(w *connWriter, h wire.Header) {
	resp := wire.Header{Opcode: wire.OpHealth, ID: h.ID}
	reports := make([]*qosnet.HealthStatus, len(p.backends))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ferr error
	for i, b := range p.backends {
		if !b.up.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			hs, err := b.client().Health()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				ferr = err
				return
			}
			reports[i] = &hs
		}(i, b)
	}
	wg.Wait()
	if ferr != nil {
		w.writeError(resp, ferr.Error())
		return
	}
	var agg wire.Health
	for i, b := range p.backends {
		agg.Devices += int32(b.devices)
		r := reports[i]
		if r == nil {
			for d := 0; d < b.devices; d++ {
				agg.States = append(agg.States, wire.DeviceHealth{
					Device: int32(b.offset + d), State: "unreachable",
				})
			}
			continue
		}
		agg.Alive += int32(r.Alive)
		agg.EffectiveS += int32(r.EffectiveS)
		agg.FullS += int32(r.FullS)
		agg.RebuildPending += int32(r.RebuildPending)
		agg.RebuildDone += r.RebuildDone
		for _, d := range r.States {
			agg.States = append(agg.States, wire.DeviceHealth{
				Device: int32(b.offset + d.Device),
				EWMAMS: d.EWMAMS,
				State:  d.State,
			})
		}
	}
	w.writeFrame(resp, wire.AppendHealth(nil, agg))
}

// aggregateShardStats concatenates the per-shard gauges of every live
// backend in backend order.
func (p *Proxy) aggregateShardStats(w *connWriter, h wire.Header) {
	resp := wire.Header{Opcode: wire.OpShardStats, ID: h.ID}
	bs := p.upBackends()
	parts := make([][]wire.ShardGauge, len(bs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ferr error
	for i, b := range bs {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			gs, err := b.client().ShardStats()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				ferr = err
				return
			}
			parts[i] = gs
		}(i, b)
	}
	wg.Wait()
	if ferr != nil {
		w.writeError(resp, ferr.Error())
		return
	}
	var all []wire.ShardGauge
	for _, gs := range parts {
		all = append(all, gs...)
	}
	w.writeFrame(resp, wire.AppendShardStats(nil, all))
}
