package decluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flashqos/internal/design"
	"flashqos/internal/maxflow"
)

func allSchemes(t *testing.T) []Allocator {
	t.Helper()
	dt, err := NewDesignTheoretic(design.Paper931())
	if err != nil {
		t.Fatal(err)
	}
	mir, err := NewRAID1Mirrored(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewRAID1Chained(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	rda, err := NewRDA(9, 3, 36, 1)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartitioned(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	per, err := NewDependentPeriodic(9, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	orth, err := NewOrthogonal(9)
	if err != nil {
		t.Fatal(err)
	}
	return []Allocator{dt, mir, ch, rda, part, per, orth}
}

func TestValidateAllSchemes(t *testing.T) {
	for _, a := range allSchemes(t) {
		if err := Validate(a); err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
	}
}

func TestDesignTheoreticShape(t *testing.T) {
	dt, _ := NewDesignTheoretic(design.Paper931())
	if dt.Devices() != 9 || dt.Copies() != 3 || dt.Rows() != 36 {
		t.Errorf("DT(9,3,1): N=%d c=%d rows=%d, want 9/3/36", dt.Devices(), dt.Copies(), dt.Rows())
	}
	if dt.GuaranteedAccesses(5) != 1 || dt.GuaranteedAccesses(6) != 2 || dt.GuaranteedAccesses(14) != 2 || dt.GuaranteedAccesses(15) != 3 {
		t.Error("DT guarantee thresholds wrong (want S(1)=5, S(2)=14)")
	}
}

func TestDesignTheoreticRejectsBadDesign(t *testing.T) {
	bad := &design.Design{N: 9, C: 3, Lambda: 1, Blocks: [][]int{{0, 1, 2}}}
	if _, err := NewDesignTheoretic(bad); err == nil {
		t.Error("NewDesignTheoretic should reject an invalid design")
	}
}

// TestDesignTheoreticGuarantee is the paper's core claim: any b <= S(M)
// DISTINCT buckets are retrievable in M accesses. (The guarantee is about
// bucket sets — with duplicate requests it can be beaten, e.g. two requests
// for each rotation of one design block put 5+ requests on 3 devices; the
// paper's Fig 4 sampling allows duplicates but such collisions are too rare
// to register.)
func TestDesignTheoreticGuarantee(t *testing.T) {
	dt, _ := NewDesignTheoretic(design.Paper931())
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		m := 1 + rng.Intn(3)
		s := dt.Design().S(m)
		b := 1 + rng.Intn(s)
		perm := rng.Perm(36)
		replicas := make([][]int, b)
		for i := range replicas {
			replicas[i] = dt.Replicas(perm[i])
		}
		got, _ := maxflow.MinAccesses(replicas, 9)
		if got > m {
			t.Fatalf("guarantee violated: %d buckets needed %d accesses, guarantee %d", b, got, m)
		}
	}
}

// TestDuplicateRequestsCanBeatGuarantee documents the boundary: the
// deterministic guarantee is stated over distinct buckets. Five requests
// covering the three rotations of one design block (two of them twice)
// land on only three devices and need two accesses.
func TestDuplicateRequestsCanBeatGuarantee(t *testing.T) {
	dt, _ := NewDesignTheoretic(design.Paper931())
	// Buckets 0, 12 and 24 are the three rotations of design block 0
	// (rotation-major order): same device set.
	replicas := [][]int{
		dt.Replicas(0), dt.Replicas(12), dt.Replicas(24),
		dt.Replicas(0), dt.Replicas(12),
	}
	m, _ := maxflow.MinAccesses(replicas, 9)
	if m != 2 {
		t.Errorf("duplicate-heavy request cost %d accesses, want 2", m)
	}
}

func TestRAID1MirroredMatchesFig7(t *testing.T) {
	mir, _ := NewRAID1Mirrored(9, 3)
	// Paper Fig 7: b0 → d0,d1,d2; b1 → d3,d4,d5; b2 → d6,d7,d8; b3 → d0,d1,d2.
	want := map[int][]int{
		0: {0, 1, 2}, 1: {3, 4, 5}, 2: {6, 7, 8}, 3: {0, 1, 2},
	}
	for b, w := range want {
		got := mir.Replicas(b)
		same := true
		// Compare as sets: the mirrored group is what Fig 7 specifies.
		set := map[int]bool{}
		for _, d := range got {
			set[d] = true
		}
		for _, d := range w {
			if !set[d] {
				same = false
			}
		}
		if !same {
			t.Errorf("mirrored bucket %d on %v, want group %v", b, got, w)
		}
	}
}

func TestRAID1ChainedMatchesFig7(t *testing.T) {
	ch, _ := NewRAID1Chained(9, 3)
	// Paper Fig 7: b0 → d0,d1,d2; b1 → d1,d2,d3; ...; b8 → d8,d0,d1.
	for b := 0; b < 9; b++ {
		got := ch.Replicas(b)
		for j := 0; j < 3; j++ {
			if got[j] != (b+j)%9 {
				t.Errorf("chained bucket %d copy %d on %d, want %d", b, j, got[j], (b+j)%9)
			}
		}
	}
}

func TestRAID1RotationsSpreadPrimaries(t *testing.T) {
	// With rotations (rows beyond the first wrap), the primary copy of the
	// mirrored scheme must not always land on the group's first device.
	mir, _ := NewRAID1Mirrored(9, 3)
	primaries := map[int]bool{}
	for b := 0; b < mir.Rows(); b++ {
		primaries[mir.Replicas(b)[0]] = true
	}
	if len(primaries) != 9 {
		t.Errorf("mirrored primaries cover %d devices, want 9", len(primaries))
	}
}

func TestRDADeterministicSeed(t *testing.T) {
	a1, _ := NewRDA(9, 3, 36, 7)
	a2, _ := NewRDA(9, 3, 36, 7)
	for b := 0; b < 36; b++ {
		r1, r2 := a1.Replicas(b), a2.Replicas(b)
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatal("same seed should give same placement")
			}
		}
	}
	a3, _ := NewRDA(9, 3, 36, 8)
	diff := false
	for b := 0; b < 36; b++ {
		r1, r3 := a1.Replicas(b), a3.Replicas(b)
		for i := range r1 {
			if r1[i] != r3[i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds should give different placements")
	}
}

func TestPartitionedStructure(t *testing.T) {
	p, _ := NewPartitioned(9, 3)
	for b := 0; b < 9; b++ {
		row := p.Replicas(b)
		if row[0] != b {
			t.Errorf("partitioned primary of bucket %d is %d, want %d", b, row[0], b)
		}
		group := b / 3
		for _, d := range row {
			if d/3 != group {
				t.Errorf("bucket %d replica %d escapes group %d", b, d, group)
			}
		}
	}
}

func TestDependentPeriodic(t *testing.T) {
	p, err := NewDependentPeriodic(9, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	row := p.Replicas(1)
	want := []int{1, 4, 7}
	for i := range want {
		if row[i] != want[i] {
			t.Errorf("periodic shift-3 bucket 1: %v, want %v", row, want)
		}
	}
	// shift that collides replicas must be rejected: shift=3, n=9, c=4
	// places copy 3 at +9 ≡ +0.
	if _, err := NewDependentPeriodic(9, 4, 3); err == nil {
		t.Error("colliding shift should be rejected")
	}
}

func TestOrthogonalPairProperty(t *testing.T) {
	o, err := NewOrthogonal(9)
	if err != nil {
		t.Fatal(err)
	}
	if o.Rows() != 36 {
		t.Errorf("orthogonal(9) rows = %d, want 36 pairs", o.Rows())
	}
	seen := map[[2]int]bool{}
	for b := 0; b < o.Rows(); b++ {
		r := o.Replicas(b)
		lo, hi := r[0], r[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		key := [2]int{lo, hi}
		if seen[key] {
			t.Fatalf("pair %v hosts two buckets", key)
		}
		seen[key] = true
	}
}

func TestOrthogonalGuarantee(t *testing.T) {
	o, _ := NewOrthogonal(9)
	g := o.(Guaranteer)
	// §II-B3: orthogonal needs ⌈√3⌉=2 accesses for 3 buckets, 3 for 8, 4 for 15.
	for b, want := range map[int]int{3: 2, 8: 3, 15: 4, 0: 0, 1: 1, 4: 2} {
		if got := g.GuaranteedAccesses(b); got != want {
			t.Errorf("orthogonal guarantee(%d) = %d, want %d", b, got, want)
		}
	}
	// Empirically verify the bound holds for random requests.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		b := 1 + rng.Intn(20)
		replicas := make([][]int, b)
		for i := range replicas {
			replicas[i] = o.Replicas(rng.Intn(o.Rows()))
		}
		m, _ := maxflow.MinAccesses(replicas, 9)
		if m > g.GuaranteedAccesses(b) {
			t.Fatalf("orthogonal bound violated: b=%d cost=%d bound=%d", b, m, g.GuaranteedAccesses(b))
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := []struct {
		name string
		f    func() (Allocator, error)
	}{
		{"mirrored n%c!=0", func() (Allocator, error) { return NewRAID1Mirrored(10, 3) }},
		{"mirrored c<2", func() (Allocator, error) { return NewRAID1Mirrored(9, 1) }},
		{"chained n<c", func() (Allocator, error) { return NewRAID1Chained(2, 3) }},
		{"rda buckets<1", func() (Allocator, error) { return NewRDA(9, 3, 0, 1) }},
		{"partitioned n%c!=0", func() (Allocator, error) { return NewPartitioned(10, 3) }},
		{"periodic shift<1", func() (Allocator, error) { return NewDependentPeriodic(9, 3, 0) }},
		{"orthogonal n<2", func() (Allocator, error) { return NewOrthogonal(1) }},
	}
	for _, c := range cases {
		if _, err := c.f(); err == nil {
			t.Errorf("%s: constructor should fail", c.name)
		}
	}
}

func TestNegativeBucketPanics(t *testing.T) {
	dt, _ := NewDesignTheoretic(design.Paper931())
	defer func() {
		if recover() == nil {
			t.Error("negative bucket should panic")
		}
	}()
	dt.Replicas(-1)
}

// Property: for every scheme, replica sets are stable (same bucket → same
// devices) and wrap modulo Rows().
func TestQuickReplicaStability(t *testing.T) {
	schemes := allSchemes(t)
	prop := func(bu uint16) bool {
		b := int(bu)
		for _, a := range schemes {
			r1 := a.Replicas(b)
			r2 := a.Replicas(b)
			r3 := a.Replicas(b % a.Rows())
			for i := range r1 {
				if r1[i] != r2[i] || r1[i] != r3[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestWorstCaseComparison demonstrates the paper's motivation: with RAID-1
// mirrored, an adversarial 5-bucket request can force 5 serial accesses on
// one mirror group (only 3 devices serve them), while design-theoretic
// guarantees 1 access for any 5 buckets.
func TestWorstCaseComparison(t *testing.T) {
	mir, _ := NewRAID1Mirrored(9, 3)
	// Buckets 0, 3, 6, 9, 12 all live on group {0,1,2} (b mod 3 == 0).
	replicas := make([][]int, 5)
	for i := range replicas {
		replicas[i] = mir.Replicas(i * 3)
	}
	m, _ := maxflow.MinAccesses(replicas, 9)
	if m < 2 {
		t.Errorf("mirrored worst case: got %d accesses, expected >= 2", m)
	}

	dt, _ := NewDesignTheoretic(design.Paper931())
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		perm := rng.Perm(36)
		reps := make([][]int, 5)
		for i := range reps {
			reps[i] = dt.Replicas(perm[i])
		}
		got, _ := maxflow.MinAccesses(reps, 9)
		if got != 1 {
			t.Fatalf("DT: 5 distinct buckets needed %d accesses, want 1 always", got)
		}
	}
}

func BenchmarkDesignTheoreticReplicas(b *testing.B) {
	dt, _ := NewDesignTheoretic(design.Paper931())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dt.Replicas(i % 36)
	}
}

func TestOrthogonalGrid(t *testing.T) {
	for _, cfg := range [][2]int{{5, 2}, {7, 3}, {8, 4}, {9, 2}} {
		n, c := cfg[0], cfg[1]
		a, err := NewOrthogonalGrid(n, c)
		if err != nil {
			t.Fatalf("(%d,%d): %v", n, c, err)
		}
		if err := Validate(a); err != nil {
			t.Fatalf("(%d,%d): %v", n, c, err)
		}
		if a.Rows() != (n-1)*n {
			t.Errorf("(%d,%d): rows = %d, want %d", n, c, a.Rows(), (n-1)*n)
		}
		// Orthogonality: for every pair of copy indices, each ordered
		// device pair appears at most once across buckets.
		for k := 0; k < c; k++ {
			for l := k + 1; l < c; l++ {
				seen := map[[2]int]bool{}
				for b := 0; b < a.Rows(); b++ {
					r := a.Replicas(b)
					key := [2]int{r[k], r[l]}
					if seen[key] {
						t.Fatalf("(%d,%d): copies %d,%d repeat device pair %v", n, c, k, l, key)
					}
					seen[key] = true
				}
			}
		}
	}
}

func TestOrthogonalGridRejects(t *testing.T) {
	for _, cfg := range [][2]int{{6, 2}, {5, 1}, {5, 5}, {4, 4}} {
		if _, err := NewOrthogonalGrid(cfg[0], cfg[1]); err == nil {
			t.Errorf("(%d,%d) should fail", cfg[0], cfg[1])
		}
	}
}

// TestGuaranteeAcrossDesigns replicates the core guarantee property on the
// other constructions the framework offers: any b <= S(M) distinct buckets
// retrieve within M accesses on (13,3,1), (16,4,1) and (7,3,1).
func TestGuaranteeAcrossDesigns(t *testing.T) {
	configs := []struct{ n, c int }{{13, 3}, {16, 4}, {7, 3}}
	for _, cfg := range configs {
		d, err := design.ForParams(cfg.n, cfg.c)
		if err != nil {
			t.Fatalf("(%d,%d): %v", cfg.n, cfg.c, err)
		}
		dt, err := NewDesignTheoretic(d)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(cfg.n*100 + cfg.c)))
		for trial := 0; trial < 800; trial++ {
			m := 1 + rng.Intn(2)
			s := d.S(m)
			if s > dt.Rows() {
				s = dt.Rows()
			}
			b := 1 + rng.Intn(s)
			perm := rng.Perm(dt.Rows())
			replicas := make([][]int, b)
			for i := range replicas {
				replicas[i] = dt.Replicas(perm[i])
			}
			got, _ := maxflow.MinAccesses(replicas, d.N)
			if got > m {
				t.Fatalf("(%d,%d) M=%d: %d buckets needed %d accesses", cfg.n, cfg.c, m, b, got)
			}
		}
	}
}
