// Package decluster implements replicated declustering schemes: strategies
// for placing c copies of each bucket on N storage devices (paper §II-B2).
// All schemes implement the Allocator interface; the design-theoretic
// allocator is the paper's choice, the others (RAID-1 mirrored, RAID-1
// chained, random duplicate allocation, partitioned, dependent periodic,
// orthogonal) are the baselines it is compared against.
//
// An allocator exposes a finite number of distinct placement rows; buckets
// beyond that wrap modulo Rows(), mirroring the paper's use of a 36-bucket
// pool for the (9,3,1) design and its baselines (§V-C1, Fig 7).
package decluster

import (
	"fmt"
	"math"
	"math/rand"

	"flashqos/internal/design"
	"flashqos/internal/gf"
)

// Allocator maps buckets to the ordered list of devices storing their
// replicas. Index 0 of a replica list is the primary (first) copy.
type Allocator interface {
	// Name identifies the scheme.
	Name() string
	// Devices returns N, the number of devices.
	Devices() int
	// Copies returns c, the replication factor.
	Copies() int
	// Rows returns the number of distinct placement rows; Replicas(b) equals
	// Replicas(b % Rows()).
	Rows() int
	// Replicas returns the devices storing bucket b, in copy order. The
	// returned slice must not be modified.
	Replicas(bucket int) []int
}

// Guaranteer is implemented by schemes that can bound worst-case retrieval
// cost for an arbitrary b-bucket request.
type Guaranteer interface {
	// GuaranteedAccesses returns an upper bound on the number of parallel
	// accesses needed to retrieve any b buckets.
	GuaranteedAccesses(b int) int
}

// tableAllocator is the common finite-table implementation.
type tableAllocator struct {
	name string
	n, c int
	rows [][]int
}

func (t *tableAllocator) Name() string { return t.name }
func (t *tableAllocator) Devices() int { return t.n }
func (t *tableAllocator) Copies() int  { return t.c }
func (t *tableAllocator) Rows() int    { return len(t.rows) }
func (t *tableAllocator) Replicas(b int) []int {
	// In-range buckets (the common case: mappers emit design blocks that
	// are already row indices) skip the wrapping division.
	if uint(b) < uint(len(t.rows)) {
		return t.rows[b]
	}
	if b < 0 {
		panic(fmt.Sprintf("decluster: negative bucket %d", b))
	}
	return t.rows[b%len(t.rows)]
}

// DesignTheoretic allocates buckets using the rotations of an (N, c, 1)
// design's blocks (paper §II-B3/B4). It guarantees that any
// S(M) = (c-1)M²+cM buckets are retrievable in M accesses.
type DesignTheoretic struct {
	tableAllocator
	d *design.Design
}

// NewDesignTheoretic builds the allocator from a verified design.
func NewDesignTheoretic(d *design.Design) (*DesignTheoretic, error) {
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("decluster: %w", err)
	}
	return &DesignTheoretic{
		tableAllocator: tableAllocator{
			name: fmt.Sprintf("design-theoretic (%d,%d,%d)", d.N, d.C, d.Lambda),
			n:    d.N, c: d.C,
			rows: d.Rotations(),
		},
		d: d,
	}, nil
}

// Design returns the underlying block design.
func (a *DesignTheoretic) Design() *design.Design { return a.d }

// GuaranteedAccesses returns the design guarantee: the smallest M with
// S(M) >= b.
func (a *DesignTheoretic) GuaranteedAccesses(b int) int { return a.d.AccessesFor(b) }

// NewRAID1Mirrored builds the RAID-1 mirrored baseline (paper Fig 7): the N
// devices form N/c groups of c devices that mirror each other; bucket b is
// stored on group b mod (N/c). Successive wraps of the bucket space rotate
// the copy order so reads spread across the mirrors. N must be divisible
// by c.
func NewRAID1Mirrored(n, c int) (Allocator, error) {
	if c < 2 || n < c || n%c != 0 {
		return nil, fmt.Errorf("decluster: RAID-1 mirrored needs n divisible by c, got n=%d c=%d", n, c)
	}
	groups := n / c
	rows := make([][]int, 0, groups*c)
	for r := 0; r < c; r++ { // rotation of copy order
		for g := 0; g < groups; g++ {
			row := make([]int, c)
			for j := 0; j < c; j++ {
				row[j] = g*c + (j+r)%c
			}
			rows = append(rows, row)
		}
	}
	return &tableAllocator{name: "RAID-1 mirrored", n: n, c: c, rows: rows}, nil
}

// NewRAID1Chained builds the RAID-1 chained baseline (paper Fig 7): the
// primary copy of bucket b lives on device b mod N and copies j on
// (b + j) mod N. Wraps of the bucket space rotate the copy order, matching
// the paper's use of rotations to support 36 buckets.
func NewRAID1Chained(n, c int) (Allocator, error) {
	if c < 2 || n < c {
		return nil, fmt.Errorf("decluster: RAID-1 chained needs n >= c >= 2, got n=%d c=%d", n, c)
	}
	rows := make([][]int, 0, n*c)
	for r := 0; r < c; r++ {
		for d0 := 0; d0 < n; d0++ {
			row := make([]int, c)
			for j := 0; j < c; j++ {
				row[j] = (d0 + (j+r)%c) % n
			}
			rows = append(rows, row)
		}
	}
	return &tableAllocator{name: "RAID-1 chained", n: n, c: c, rows: rows}, nil
}

// NewRDA builds a random duplicate allocation (Sanders et al.): each of the
// `buckets` rows picks c distinct devices uniformly at random. RDA is within
// one of optimal with high probability but offers no deterministic
// guarantee (paper §II-B2). The seed makes placements reproducible.
func NewRDA(n, c, buckets int, seed int64) (Allocator, error) {
	if c < 1 || n < c || buckets < 1 {
		return nil, fmt.Errorf("decluster: RDA needs n >= c >= 1, buckets >= 1; got n=%d c=%d buckets=%d", n, c, buckets)
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]int, buckets)
	for b := range rows {
		perm := rng.Perm(n)
		row := make([]int, c)
		copy(row, perm[:c])
		rows[b] = row
	}
	return &tableAllocator{name: "RDA", n: n, c: c, rows: rows}, nil
}

// NewPartitioned builds partitioned replication (Ferhatosmanoglu et al.):
// devices are split into n/c groups of size c; the primary copy of bucket b
// is on device b mod n and the remaining copies cycle within the primary's
// group. Unlike RAID-1 mirrored, primaries round-robin over all devices.
// N must be divisible by c.
func NewPartitioned(n, c int) (Allocator, error) {
	if c < 2 || n < c || n%c != 0 {
		return nil, fmt.Errorf("decluster: partitioned needs n divisible by c, got n=%d c=%d", n, c)
	}
	rows := make([][]int, n)
	for b := 0; b < n; b++ {
		base := (b / c) * c
		row := make([]int, c)
		for j := 0; j < c; j++ {
			row[j] = base + (b-base+j)%c
		}
		rows[b] = row
	}
	return &tableAllocator{name: "partitioned", n: n, c: c, rows: rows}, nil
}

// NewDependentPeriodic builds dependent periodic allocation (Tosun &
// Ferhatosmanoglu): copy j of bucket b is stored on (b + j·shift) mod N.
// shift=1 degenerates to an unrotated RAID-1 chain; larger shifts spread
// replicas. Good for range/connected queries, weaker for arbitrary ones.
func NewDependentPeriodic(n, c, shift int) (Allocator, error) {
	if c < 2 || n < c || shift < 1 {
		return nil, fmt.Errorf("decluster: dependent periodic needs n >= c >= 2, shift >= 1; got n=%d c=%d shift=%d", n, c, shift)
	}
	// All c replica devices must be distinct: j*shift mod n distinct for j in [0,c).
	seen := make(map[int]bool, c)
	for j := 0; j < c; j++ {
		o := j * shift % n
		if seen[o] {
			return nil, fmt.Errorf("decluster: shift %d collides replicas for n=%d c=%d", shift, n, c)
		}
		seen[o] = true
	}
	rows := make([][]int, n)
	for b := 0; b < n; b++ {
		row := make([]int, c)
		for j := 0; j < c; j++ {
			row[j] = (b + j*shift) % n
		}
		rows[b] = row
	}
	return &tableAllocator{name: fmt.Sprintf("dependent periodic (shift %d)", shift), n: n, c: c, rows: rows}, nil
}

// orthogonalAllocator implements 2-copy orthogonal allocation: every
// unordered device pair hosts at most one bucket, which guarantees
// retrieval of any b buckets in at most ⌈√b⌉ accesses (paper §II-B2).
type orthogonalAllocator struct {
	tableAllocator
}

// NewOrthogonal builds a 2-copy orthogonal allocation on n devices: bucket k
// is assigned the k-th unordered device pair in a balanced enumeration that
// cycles pair distances, so consecutive buckets use disjoint devices where
// possible. Supports n(n-1)/2 distinct buckets.
func NewOrthogonal(n int) (Allocator, error) {
	if n < 2 {
		return nil, fmt.Errorf("decluster: orthogonal needs n >= 2, got %d", n)
	}
	// Enumerate pairs grouped by circular distance d = 1..n/2; within each
	// distance, walk the ring. For even n, distance n/2 yields only n/2
	// distinct pairs.
	var rows [][]int
	seen := make(map[[2]int]bool)
	for d := 1; d <= n/2; d++ {
		for a := 0; a < n; a++ {
			b := (a + d) % n
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			key := [2]int{lo, hi}
			if seen[key] {
				continue
			}
			seen[key] = true
			rows = append(rows, []int{a, b})
		}
	}
	return &orthogonalAllocator{tableAllocator{name: "orthogonal", n: n, c: 2, rows: rows}}, nil
}

// GuaranteedAccesses returns ⌈√b⌉, the orthogonal allocation guarantee for
// arbitrary queries of b buckets.
func (o *orthogonalAllocator) GuaranteedAccesses(b int) int {
	if b <= 0 {
		return 0
	}
	return int(math.Ceil(math.Sqrt(float64(b))))
}

// Validate runs structural checks on any allocator: replica lists have c
// distinct in-range devices and rows wrap consistently.
func Validate(a Allocator) error {
	n, c := a.Devices(), a.Copies()
	if a.Rows() < 1 {
		return fmt.Errorf("decluster: %s has no rows", a.Name())
	}
	for b := 0; b < a.Rows(); b++ {
		row := a.Replicas(b)
		if len(row) != c {
			return fmt.Errorf("decluster: %s row %d has %d copies, want %d", a.Name(), b, len(row), c)
		}
		seen := make(map[int]bool, c)
		for _, d := range row {
			if d < 0 || d >= n {
				return fmt.Errorf("decluster: %s row %d device %d out of range", a.Name(), b, d)
			}
			if seen[d] {
				return fmt.Errorf("decluster: %s row %d repeats device %d", a.Name(), b, d)
			}
			seen[d] = true
		}
	}
	// Wrapping.
	r0 := a.Replicas(0)
	rw := a.Replicas(a.Rows())
	for i := range r0 {
		if r0[i] != rw[i] {
			return fmt.Errorf("decluster: %s does not wrap modulo Rows()", a.Name())
		}
	}
	return nil
}

// NewOrthogonalGrid builds an orthogonal allocation from mutually
// orthogonal Latin squares over GF(n) (Ferhatosmanoglu, Tosun &
// Ramachandran; paper §II-B2): buckets form an (n-1)×n grid and copy k of
// bucket (i, j) — with i ranging over the nonzero field elements so the
// copies of a bucket land on distinct devices — is stored on device
// (k+1)·i + j in GF(n). Between any two fixed copy indices every ordered
// device pair appears at most once, the orthogonality property behind the
// ⌈√b⌉ retrieval guarantee for c = 2. Requires a prime-power n and
// 2 <= c <= n-1.
func NewOrthogonalGrid(n, c int) (Allocator, error) {
	if c < 2 || c > n-1 {
		return nil, fmt.Errorf("decluster: orthogonal grid needs 2 <= c <= n-1, got n=%d c=%d", n, c)
	}
	f, err := gf.NewOrder(n)
	if err != nil {
		return nil, fmt.Errorf("decluster: orthogonal grid needs prime-power n: %v", err)
	}
	rows := make([][]int, 0, (n-1)*n)
	for i := 1; i < n; i++ { // nonzero rows keep copies distinct
		for j := 0; j < n; j++ {
			row := make([]int, c)
			for k := 0; k < c; k++ {
				row[k] = f.Add(f.Mul(k+1, i), j)
			}
			rows = append(rows, row)
		}
	}
	return &tableAllocator{name: fmt.Sprintf("orthogonal grid (MOLS, c=%d)", c), n: n, c: c, rows: rows}, nil
}
