// Package blockmap matches a storage system's many data blocks onto the
// limited number of design blocks (allocation rows) of a replicated
// declustering scheme (paper §IV-A). Data blocks that FIM reports as
// frequently requested together are assigned to different design blocks —
// different device sets — so they can be retrieved in parallel. Data blocks
// not covered by the mining fall back to the paper's modulo rule:
// designBlock = dataBlockNumber mod numberOfDesignBlocks.
package blockmap

import (
	"fmt"
	"sort"

	"flashqos/internal/fim"
)

// Mapper assigns data blocks to design blocks.
type Mapper struct {
	rows     int
	assigned map[int64]int
}

// NewMapper creates a mapper for a scheme with the given number of design
// blocks (allocation rows).
func NewMapper(rows int) (*Mapper, error) {
	if rows < 1 {
		return nil, fmt.Errorf("blockmap: rows must be >= 1, got %d", rows)
	}
	return &Mapper{rows: rows, assigned: make(map[int64]int)}, nil
}

// Rows returns the number of design blocks.
func (m *Mapper) Rows() int { return m.rows }

// MappedCount returns how many data blocks have FIM-derived assignments.
func (m *Mapper) MappedCount() int { return len(m.assigned) }

// Mapped reports whether a data block has a FIM-derived assignment.
func (m *Mapper) Mapped(dataBlock int64) bool {
	_, ok := m.assigned[dataBlock]
	return ok
}

// DesignBlock returns the design block for a data block: the FIM-derived
// assignment if one exists, the modulo fallback otherwise.
func (m *Mapper) DesignBlock(dataBlock int64) int {
	// The assigned map is empty until the first FIM remap; skip the hash
	// on the submit hot path until then.
	if len(m.assigned) != 0 {
		if db, ok := m.assigned[dataBlock]; ok {
			return db
		}
	}
	mod := dataBlock % int64(m.rows)
	if mod < 0 {
		mod += int64(m.rows)
	}
	return int(mod)
}

// BuildFromPairs replaces the FIM-derived assignments using the mined
// frequent pairs. Data blocks are processed in descending order of total
// pair support; each is assigned the design block that minimizes the total
// support of conflicts with already-assigned co-requested blocks, breaking
// ties toward the least-used design block.
func (m *Mapper) BuildFromPairs(pairs []fim.Pair) {
	m.assigned = make(map[int64]int)
	if len(pairs) == 0 {
		return
	}
	// Conflict graph: neighbor lists with supports.
	type edge struct {
		to     int64
		weight int
	}
	adj := make(map[int64][]edge)
	weight := make(map[int64]int)
	for _, p := range pairs {
		adj[p.A] = append(adj[p.A], edge{p.B, p.Support})
		adj[p.B] = append(adj[p.B], edge{p.A, p.Support})
		weight[p.A] += p.Support
		weight[p.B] += p.Support
	}
	blocks := make([]int64, 0, len(adj))
	for b := range adj {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool {
		if weight[blocks[i]] != weight[blocks[j]] {
			return weight[blocks[i]] > weight[blocks[j]]
		}
		return blocks[i] < blocks[j]
	})
	usage := make([]int, m.rows)
	conflict := make([]int, m.rows) // scratch: conflict weight per design block
	for _, b := range blocks {
		for i := range conflict {
			conflict[i] = 0
		}
		for _, e := range adj[b] {
			if db, ok := m.assigned[e.to]; ok {
				conflict[db] += e.weight
			}
		}
		best := 0
		for db := 1; db < m.rows; db++ {
			if conflict[db] < conflict[best] ||
				(conflict[db] == conflict[best] && usage[db] < usage[best]) {
				best = db
			}
		}
		m.assigned[b] = best
		usage[best]++
	}
}

// MatchFraction returns the fraction of the given data blocks that have
// FIM-derived assignments — the paper's Fig 11 metric ("percentage of
// blocks that are matched according to the FIM results"). Returns 0 for an
// empty input.
func (m *Mapper) MatchFraction(blocks []int64) float64 {
	if len(blocks) == 0 {
		return 0
	}
	hit := 0
	for _, b := range blocks {
		if m.Mapped(b) {
			hit++
		}
	}
	return float64(hit) / float64(len(blocks))
}

// MappedSeenFraction returns the fraction of FIM-mapped data blocks that
// appear in the given block set — the paper's Fig 11 metric: "x% of the
// blocks found mining the previous interval is encountered in the current
// interval". Returns 0 when nothing is mapped.
func (m *Mapper) MappedSeenFraction(blocks []int64) float64 {
	if len(m.assigned) == 0 {
		return 0
	}
	present := make(map[int64]bool, len(blocks))
	for _, b := range blocks {
		present[b] = true
	}
	hit := 0
	for b := range m.assigned {
		if present[b] {
			hit++
		}
	}
	return float64(hit) / float64(len(m.assigned))
}

// ConflictSupport measures the residual conflict of the current assignment:
// the total support of mined pairs whose two data blocks map to the same
// design block (and would therefore share a device set). Lower is better;
// used by the FIM-vs-modulo ablation.
func (m *Mapper) ConflictSupport(pairs []fim.Pair) int {
	total := 0
	for _, p := range pairs {
		if m.DesignBlock(p.A) == m.DesignBlock(p.B) {
			total += p.Support
		}
	}
	return total
}
