package blockmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flashqos/internal/fim"
)

func TestNewMapperValidation(t *testing.T) {
	if _, err := NewMapper(0); err == nil {
		t.Error("rows=0 should fail")
	}
	if _, err := NewMapper(-5); err == nil {
		t.Error("negative rows should fail")
	}
}

func TestModuloFallback(t *testing.T) {
	m, err := NewMapper(36)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int64{0, 1, 35, 36, 37, 1000000} {
		want := int(b % 36)
		if got := m.DesignBlock(b); got != want {
			t.Errorf("DesignBlock(%d) = %d, want %d (modulo rule)", b, got, want)
		}
		if m.Mapped(b) {
			t.Errorf("block %d should not be FIM-mapped", b)
		}
	}
	// Negative data block numbers still land in range.
	if got := m.DesignBlock(-5); got < 0 || got >= 36 {
		t.Errorf("negative block mapped out of range: %d", got)
	}
}

func TestBuildFromPairsSeparatesCoRequested(t *testing.T) {
	m, _ := NewMapper(36)
	pairs := []fim.Pair{
		{A: 100, B: 200, Support: 10},
		{A: 100, B: 300, Support: 8},
		{A: 200, B: 300, Support: 5},
	}
	m.BuildFromPairs(pairs)
	if m.MappedCount() != 3 {
		t.Fatalf("mapped %d blocks, want 3", m.MappedCount())
	}
	// All three co-requested blocks must land on distinct design blocks.
	d1, d2, d3 := m.DesignBlock(100), m.DesignBlock(200), m.DesignBlock(300)
	if d1 == d2 || d1 == d3 || d2 == d3 {
		t.Errorf("co-requested blocks share design blocks: %d %d %d", d1, d2, d3)
	}
	if m.ConflictSupport(pairs) != 0 {
		t.Errorf("conflict support = %d, want 0", m.ConflictSupport(pairs))
	}
}

func TestBuildFromPairsOverloaded(t *testing.T) {
	// More mutually-conflicting blocks than design blocks: with rows=2 and
	// a triangle of pairs, one conflict is unavoidable; the mapper must
	// sacrifice the lowest-support edge.
	m, _ := NewMapper(2)
	pairs := []fim.Pair{
		{A: 1, B: 2, Support: 100},
		{A: 1, B: 3, Support: 90},
		{A: 2, B: 3, Support: 1},
	}
	m.BuildFromPairs(pairs)
	if m.DesignBlock(1) == m.DesignBlock(2) {
		t.Error("highest-support pair (1,2) should be separated")
	}
	if m.DesignBlock(1) == m.DesignBlock(3) {
		t.Error("pair (1,3) should be separated")
	}
	if got := m.ConflictSupport(pairs); got != 1 {
		t.Errorf("conflict support = %d, want 1 (the weak edge)", got)
	}
}

func TestBuildFromPairsEmptyResets(t *testing.T) {
	m, _ := NewMapper(8)
	m.BuildFromPairs([]fim.Pair{{A: 1, B: 2, Support: 3}})
	if m.MappedCount() == 0 {
		t.Fatal("build did nothing")
	}
	m.BuildFromPairs(nil)
	if m.MappedCount() != 0 {
		t.Error("rebuilding with no pairs should clear assignments")
	}
}

func TestMatchFraction(t *testing.T) {
	m, _ := NewMapper(8)
	m.BuildFromPairs([]fim.Pair{{A: 1, B: 2, Support: 3}})
	got := m.MatchFraction([]int64{1, 2, 3, 4})
	if got != 0.5 {
		t.Errorf("MatchFraction = %g, want 0.5", got)
	}
	if m.MatchFraction(nil) != 0 {
		t.Error("empty MatchFraction should be 0")
	}
}

func TestFIMBeatsModuloOnConflicts(t *testing.T) {
	// Construct a workload where co-requested blocks collide under modulo:
	// pairs (k, k+rows) always share a modulo class.
	rows := 12
	m, _ := NewMapper(rows)
	var pairs []fim.Pair
	for k := int64(0); k < 10; k++ {
		pairs = append(pairs, fim.Pair{A: k, B: k + int64(rows), Support: 5})
	}
	// Modulo: every pair conflicts.
	if got := m.ConflictSupport(pairs); got != 50 {
		t.Fatalf("modulo conflict = %d, want 50", got)
	}
	m.BuildFromPairs(pairs)
	if got := m.ConflictSupport(pairs); got != 0 {
		t.Errorf("FIM mapping conflict = %d, want 0", got)
	}
}

// Property: the mapping is always in range and deterministic, and blocks
// from the mined pairs are all assigned.
func TestQuickMapperInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(40)
		m, err := NewMapper(rows)
		if err != nil {
			return false
		}
		var pairs []fim.Pair
		for i := 0; i < rng.Intn(50); i++ {
			a := int64(rng.Intn(100))
			b := int64(rng.Intn(100))
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			pairs = append(pairs, fim.Pair{A: a, B: b, Support: 1 + rng.Intn(20)})
		}
		m.BuildFromPairs(pairs)
		for _, p := range pairs {
			if !m.Mapped(p.A) || !m.Mapped(p.B) {
				return false
			}
		}
		for b := int64(-10); b < 200; b++ {
			db := m.DesignBlock(b)
			if db < 0 || db >= rows {
				return false
			}
			if db != m.DesignBlock(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuildFromPairs(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var pairs []fim.Pair
	for i := 0; i < 5000; i++ {
		a := int64(rng.Intn(2000))
		bb := int64(rng.Intn(2000))
		if a == bb {
			continue
		}
		if a > bb {
			a, bb = bb, a
		}
		pairs = append(pairs, fim.Pair{A: a, B: bb, Support: 1 + rng.Intn(50)})
	}
	m, _ := NewMapper(36)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BuildFromPairs(pairs)
	}
}
