// Tenant extensions to the qosnet binary protocol.
//
// The tenant seam keeps the 16-byte header and every tenant-less codec
// byte-identical: a request that carries a tenant identity sets FlagTenant
// and appends a uvarint tenant index after the opcode's normal payload
// (SUBMIT/WRITE: 8-byte block id, then the index). Indices are 1-based
// slots negotiated out of band — either by name through OpTenantHello or
// implicitly as slot order of the server's configured policy — so the hot
// path never ships names.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Tenant opcodes (continuing the Op* space; 0x0F is OpQuit).
const (
	OpTenantHello = 0x0D // resolve tenant names → stable 1-based indices
	OpTenant      = 0x0E // admin: TENANT SET / GET / DEL
	OpTenantStats = 0x10 // per-tenant specs + admission gauges
)

// FlagTenant marks a request whose payload carries a trailing uvarint
// tenant index (see AppendTenantBlock).
const FlagTenant = 0x02

// StatusOverLimit marks a rejection by the tenant gate's per-window
// arrival limit: the request consumed no S-bound credit.
const StatusOverLimit = 0x08

// OverLimit reports the StatusOverLimit bit.
func (o Outcome) OverLimit() bool { return o.Status&StatusOverLimit != 0 }

// Tenant admin subcommands (first payload byte of OpTenant).
const (
	TenantCmdSet = 1
	TenantCmdGet = 2
	TenantCmdDel = 3
)

// TenantSpec is the wire form of one tenant's QoS policy (the network
// mirror of admission.TenantSpec; wire stays dependency-free).
type TenantSpec struct {
	Name    string
	Reserve int32
	Limit   int32
	Weight  float64
}

// TenantEntry is one tenant's slice of an OpTenantStats response (and the
// body of a TENANT GET response): the spec, its stable index, and the
// four admission gauges.
type TenantEntry struct {
	Index     int32
	Spec      TenantSpec
	Admitted  int64
	Rejected  int64
	OverLimit int64
	Deficit   int64
}

// AppendTenantBlock appends a tenant-tagged SUBMIT/WRITE request payload:
// the 8-byte block id followed by the uvarint tenant index. The frame's
// header must set FlagTenant.
func AppendTenantBlock(buf []byte, block int64, tenant int32) []byte {
	buf = AppendInt64(buf, block)
	var tmp [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(tmp[:], uint64(uint32(tenant)))
	return append(buf, tmp[:n]...)
}

// ParseTenantBlock decodes a tenant-tagged SUBMIT/WRITE request payload.
// The uvarint must be present, in range, and consume the whole payload.
func ParseTenantBlock(b []byte) (block int64, tenant int32, err error) {
	if len(b) < 9 {
		return 0, 0, ErrShortPayload
	}
	block = int64(binary.LittleEndian.Uint64(b))
	u, n := binary.Uvarint(b[8:])
	if n <= 0 || n != len(b)-8 {
		return 0, 0, fmt.Errorf("wire: malformed tenant index")
	}
	if u == 0 || u > uint64(1)<<31-1 {
		return 0, 0, fmt.Errorf("wire: tenant index %d out of range", u)
	}
	return block, int32(u), nil
}

// appendString appends a length-prefixed (one byte) string, truncating at
// 255 bytes like the HEALTH state codec.
func appendString(buf []byte, s string) []byte {
	if len(s) > 255 {
		s = s[:255]
	}
	buf = append(buf, byte(len(s)))
	return append(buf, s...)
}

func parseString(b []byte) (string, []byte, error) {
	if len(b) < 1 {
		return "", b, ErrShortPayload
	}
	n := int(b[0])
	if len(b) < 1+n {
		return "", b, ErrShortPayload
	}
	return string(b[1 : 1+n]), b[1+n:], nil
}

// AppendTenantHelloReq appends an OpTenantHello request payload: a name
// count, then each name length-prefixed.
func AppendTenantHelloReq(buf []byte, names []string) []byte {
	buf = AppendUint32(buf, uint32(len(names)))
	for _, n := range names {
		buf = appendString(buf, n)
	}
	return buf
}

// ParseTenantHelloReq decodes an OpTenantHello request payload.
func ParseTenantHelloReq(b []byte) ([]string, error) {
	n, b, err := parseU32(b)
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(len(b)) { // each name is at least 1 byte
		return nil, ErrShortPayload
	}
	names := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		var s string
		if s, b, err = parseString(b); err != nil {
			return nil, err
		}
		names = append(names, s)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after TENANT hello", len(b))
	}
	return names, nil
}

// AppendTenantHelloResp appends an OpTenantHello response payload: one
// int32 index per requested name, in request order (0 = unknown tenant).
func AppendTenantHelloResp(buf []byte, idx []int32) []byte {
	buf = AppendUint32(buf, uint32(len(idx)))
	for _, i := range idx {
		buf = AppendInt32(buf, i)
	}
	return buf
}

// ParseTenantHelloResp decodes an OpTenantHello response payload.
func ParseTenantHelloResp(b []byte) ([]int32, error) {
	n, b, err := parseU32(b)
	if err != nil {
		return nil, err
	}
	if uint64(len(b)) != uint64(n)*4 {
		return nil, ErrShortPayload
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return idx, nil
}

// AppendTenantReq appends an OpTenant request payload: the subcommand
// byte, the tenant name, and for TenantCmdSet the spec fields.
func AppendTenantReq(buf []byte, cmd uint8, spec TenantSpec) []byte {
	buf = append(buf, cmd)
	buf = appendString(buf, spec.Name)
	if cmd == TenantCmdSet {
		buf = AppendInt32(buf, spec.Reserve)
		buf = AppendInt32(buf, spec.Limit)
		buf = AppendFloat64(buf, spec.Weight)
	}
	return buf
}

// ParseTenantReq decodes an OpTenant request payload.
func ParseTenantReq(b []byte) (cmd uint8, spec TenantSpec, err error) {
	if len(b) < 1 {
		return 0, TenantSpec{}, ErrShortPayload
	}
	cmd = b[0]
	b = b[1:]
	if spec.Name, b, err = parseString(b); err != nil {
		return 0, TenantSpec{}, err
	}
	switch cmd {
	case TenantCmdSet:
		if len(b) != 16 {
			return 0, TenantSpec{}, ErrShortPayload
		}
		spec.Reserve = int32(binary.LittleEndian.Uint32(b))
		spec.Limit = int32(binary.LittleEndian.Uint32(b[4:]))
		spec.Weight, _, _ = parseF64(b[8:])
	case TenantCmdGet, TenantCmdDel:
		if len(b) != 0 {
			return 0, TenantSpec{}, fmt.Errorf("wire: %d trailing bytes after TENANT request", len(b))
		}
	default:
		return 0, TenantSpec{}, fmt.Errorf("wire: unknown TENANT subcommand %d", cmd)
	}
	return cmd, spec, nil
}

// AppendTenantEntry appends one TenantEntry: index int32, name, spec
// fields, four gauges.
func AppendTenantEntry(buf []byte, e TenantEntry) []byte {
	buf = AppendInt32(buf, e.Index)
	buf = appendString(buf, e.Spec.Name)
	buf = AppendInt32(buf, e.Spec.Reserve)
	buf = AppendInt32(buf, e.Spec.Limit)
	buf = AppendFloat64(buf, e.Spec.Weight)
	buf = AppendInt64(buf, e.Admitted)
	buf = AppendInt64(buf, e.Rejected)
	buf = AppendInt64(buf, e.OverLimit)
	return AppendInt64(buf, e.Deficit)
}

// ParseTenantEntry decodes one TenantEntry, returning the remaining
// bytes.
func ParseTenantEntry(b []byte) (TenantEntry, []byte, error) {
	var e TenantEntry
	u, b, err := parseU32(b)
	if err != nil {
		return TenantEntry{}, b, err
	}
	e.Index = int32(u)
	if e.Spec.Name, b, err = parseString(b); err != nil {
		return TenantEntry{}, b, err
	}
	if len(b) < 48 {
		return TenantEntry{}, b, ErrShortPayload
	}
	e.Spec.Reserve = int32(binary.LittleEndian.Uint32(b))
	e.Spec.Limit = int32(binary.LittleEndian.Uint32(b[4:]))
	e.Spec.Weight, _, _ = parseF64(b[8:])
	e.Admitted = int64(binary.LittleEndian.Uint64(b[16:]))
	e.Rejected = int64(binary.LittleEndian.Uint64(b[24:]))
	e.OverLimit = int64(binary.LittleEndian.Uint64(b[32:]))
	e.Deficit = int64(binary.LittleEndian.Uint64(b[40:]))
	return e, b[48:], nil
}

// AppendTenantStats appends an OpTenantStats (or TENANT GET, count 1)
// response payload: a count then the entries.
func AppendTenantStats(buf []byte, entries []TenantEntry) []byte {
	buf = AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = AppendTenantEntry(buf, e)
	}
	return buf
}

// ParseTenantStats decodes an OpTenantStats response payload.
func ParseTenantStats(b []byte) ([]TenantEntry, error) {
	n, b, err := parseU32(b)
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(len(b))/53 { // each entry is at least 53 bytes
		return nil, ErrShortPayload
	}
	entries := make([]TenantEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		var e TenantEntry
		if e, b, err = ParseTenantEntry(b); err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after TENANT stats", len(b))
	}
	return entries, nil
}
