// Package wire implements the length-prefixed binary framing layer of the
// qosnet protocol: a fixed 16-byte header (magic, version, opcode, flags,
// request ID, payload length — all integer fields little-endian) followed
// by an opcode-specific payload. Request IDs let one connection carry many
// in-flight requests with out-of-order completion: the server echoes the
// ID of the request a response answers, and a response carrying FlagError
// holds a UTF-8 message instead of the opcode's payload.
//
// Frame layout (offsets in bytes):
//
//	[0]      magic    0xFB
//	[1]      version  1
//	[2]      opcode   Op*
//	[3]      flags    bit 0 = FlagError (response payload is an error message)
//	[4:12]   id       uint64 LE, chosen by the requester, echoed by the responder
//	[12:16]  len      uint32 LE, payload byte count
//
// The hot path allocates nothing: headers encode into caller buffers or a
// Writer's fixed scratch array, Reader returns payload slices that alias
// its internal buffer (valid until the next call), and composite payloads
// build with append-style codecs (Append*/Parse*) so steady-state encode
// and decode run at 0 allocs/op. Buffers that must outlive a Reader call —
// async completions, proxy forwarding — come from a sync.Pool (GetBuffer /
// PutBuffer).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Framing constants.
const (
	Magic      = 0xFB // first byte of every frame; no text verb starts with it
	Version    = 1
	HeaderSize = 16

	// DefaultMaxPayload caps the payload length a Reader accepts. A header
	// announcing more is a protocol violation (the stream cannot be
	// resynchronized and must be closed).
	DefaultMaxPayload = 1 << 20
)

// Opcodes. Requests and their responses carry the same opcode; error
// responses additionally set FlagError.
const (
	OpSubmit     = 0x01 // block read (text READ)
	OpWrite      = 0x02 // block write, updates all replicas (text WRITE)
	OpBatch      = 0x03 // joint admission of simultaneous reads
	OpMap        = 0x04 // block → design block + replica devices (text MAP)
	OpStats      = 0x05 // server counters (text STATS)
	OpMetrics    = 0x06 // Prometheus-style exposition text (text METRICS)
	OpFail       = 0x07 // admin: take a device out of service (text FAIL)
	OpRecover    = 0x08 // admin: bring a device back (text RECOVER)
	OpHealth     = 0x09 // device-health report (text HEALTH)
	OpShardStats = 0x0A // per-shard admission gauges (the METRICS shard series)
	OpGet        = 0x0B // payload read: block → outcome + stored bytes (data path)
	OpPut        = 0x0C // payload write: block + bytes → outcome (data path)
	OpQuit       = 0x0F // close the connection (text QUIT); no response
)

// Flags.
const (
	FlagError = 0x01 // response payload is a UTF-8 error message
)

// Outcome status bits (Outcome.Status).
const (
	StatusDelayed     = 0x01
	StatusRejected    = 0x02
	StatusUnavailable = 0x04
)

// Framing errors.
var (
	ErrBadMagic        = errors.New("wire: bad magic byte")
	ErrBadVersion      = errors.New("wire: unsupported protocol version")
	ErrPayloadTooLarge = errors.New("wire: payload length exceeds limit")
	ErrShortPayload    = errors.New("wire: payload too short for opcode")
)

// Header is a decoded frame header. Len is the payload byte count; writers
// derive it from the payload, so callers rarely set it themselves.
type Header struct {
	Opcode uint8
	Flags  uint8
	ID     uint64
	Len    uint32
}

// PutHeader encodes h into b, which must hold at least HeaderSize bytes.
func PutHeader(b []byte, h Header) {
	_ = b[HeaderSize-1]
	b[0] = Magic
	b[1] = Version
	b[2] = h.Opcode
	b[3] = h.Flags
	binary.LittleEndian.PutUint64(b[4:12], h.ID)
	binary.LittleEndian.PutUint32(b[12:16], h.Len)
}

// AppendHeader appends the encoded header to buf.
func AppendHeader(buf []byte, h Header) []byte {
	var b [HeaderSize]byte
	PutHeader(b[:], h)
	return append(buf, b[:]...)
}

// ParseHeader decodes a frame header, validating magic and version. The
// payload-length cap is the Reader's to enforce (it knows its limit).
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("wire: short header (%d bytes)", len(b))
	}
	if b[0] != Magic {
		return Header{}, ErrBadMagic
	}
	if b[1] != Version {
		return Header{}, ErrBadVersion
	}
	return Header{
		Opcode: b[2],
		Flags:  b[3],
		ID:     binary.LittleEndian.Uint64(b[4:12]),
		Len:    binary.LittleEndian.Uint32(b[12:16]),
	}, nil
}

// AppendFrame appends a complete frame (header + payload) to buf, deriving
// the header's Len from the payload.
func AppendFrame(buf []byte, h Header, payload []byte) []byte {
	h.Len = uint32(len(payload))
	buf = AppendHeader(buf, h)
	return append(buf, payload...)
}

// Buffer pool for payloads that must outlive a Reader.Next call (async
// completion hand-off, proxy forwarding). Pointers to slices avoid the
// interface-boxing allocation on Put.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetBuffer returns a pooled byte slice, length 0. Grow with append;
// return with PutBuffer when done.
func GetBuffer() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuffer returns a buffer obtained from GetBuffer to the pool.
func PutBuffer(b *[]byte) { bufPool.Put(b) }

// Reader decodes frames from a buffered stream. The payload slice returned
// by Next aliases the Reader's internal buffer and is valid only until the
// following Next call — copy (e.g. into a GetBuffer slice) to retain it.
type Reader struct {
	r    *bufio.Reader
	max  uint32
	buf  []byte // spill buffer for payloads larger than the bufio window
	more bool   // set by Next: another complete frame is already buffered
}

// NewReader wraps a buffered stream. maxPayload <= 0 selects
// DefaultMaxPayload.
func NewReader(r *bufio.Reader, maxPayload int) *Reader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &Reader{r: r, max: uint32(maxPayload)}
}

// Next reads one frame. Small payloads are returned zero-copy as a slice
// into the bufio buffer (Peek + Discard); larger ones are read into a
// reused spill buffer. Steady state allocates nothing.
func (rd *Reader) Next() (Header, []byte, error) {
	// Fast path: when a complete frame is already buffered — the common
	// case under pipelining, where one socket fill delivers a burst of
	// small frames — a single Peek over the buffered bytes frames it with
	// no fill and no second Peek.
	if n := rd.r.Buffered(); n >= HeaderSize {
		b, perr := rd.r.Peek(n)
		if perr == nil {
			h, err := ParseHeader(b)
			if err != nil {
				return Header{}, nil, err
			}
			if h.Len > rd.max {
				return Header{}, nil, ErrPayloadTooLarge
			}
			if total := HeaderSize + int(h.Len); total <= n {
				// Discard only moves the read pointer; the peeked bytes
				// stay valid until the next fill, i.e. the next Next call.
				rd.r.Discard(total)
				rd.more = frameBuffered(b[total:])
				if h.Len == 0 {
					return h, nil, nil
				}
				return h, b[HeaderSize:total], nil
			}
			// Payload not fully buffered yet: fall through to the filling
			// path (it re-validates the header, which cannot now fail).
		}
	}
	hb, err := rd.r.Peek(HeaderSize)
	if err != nil {
		if err == io.EOF && rd.r.Buffered() == 0 {
			return Header{}, nil, io.EOF
		}
		if err == io.EOF {
			return Header{}, nil, io.ErrUnexpectedEOF
		}
		return Header{}, nil, err
	}
	h, err := ParseHeader(hb)
	if err != nil {
		return Header{}, nil, err
	}
	if h.Len > rd.max {
		return Header{}, nil, ErrPayloadTooLarge
	}
	n := int(h.Len)
	if n == 0 {
		rd.r.Discard(HeaderSize)
		rd.computeMore()
		return h, nil, nil
	}
	if HeaderSize+n <= rd.r.Size() {
		full, err := rd.r.Peek(HeaderSize + n)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Header{}, nil, err
		}
		// Discard only moves the read pointer; the peeked bytes stay valid
		// until the next fill, i.e. until the next Next call.
		rd.r.Discard(HeaderSize + n)
		rd.computeMore()
		return h, full[HeaderSize:], nil
	}
	rd.r.Discard(HeaderSize)
	if cap(rd.buf) < n {
		rd.buf = make([]byte, n)
	}
	buf := rd.buf[:n]
	if _, err := io.ReadFull(rd.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Header{}, nil, err
	}
	rd.computeMore()
	return h, buf, nil
}

// frameBuffered reports whether b starts with a complete frame. A
// malformed header counts: the next Next call will fail on it without
// blocking, which is the property More's callers rely on.
func frameBuffered(b []byte) bool {
	if len(b) < HeaderSize {
		return false
	}
	h, err := ParseHeader(b)
	if err != nil {
		return true
	}
	return uint64(len(b)) >= HeaderSize+uint64(h.Len)
}

// computeMore refreshes the More flag from the bytes currently buffered —
// the non-fast-path variant that must re-Peek.
func (rd *Reader) computeMore() {
	n := rd.r.Buffered()
	if n < HeaderSize {
		rd.more = false
		return
	}
	b, err := rd.r.Peek(n)
	rd.more = err == nil && frameBuffered(b)
}

// More reports whether the bytes already buffered when Next last returned
// held another complete frame (or a malformed header the next Next will
// fail on without blocking). Servers use it to gate response flushing: a
// flush is needed only when the following Next may block on the network.
// A buffered partial frame reads as false — the next call could block
// waiting for its remainder.
func (rd *Reader) More() bool { return rd.more }

// Writer encodes frames onto a buffered stream. Not safe for concurrent
// use; callers own flushing policy (Flush).
type Writer struct {
	w   *bufio.Writer
	hdr [HeaderSize]byte
}

// NewWriter wraps a buffered stream.
func NewWriter(w *bufio.Writer) *Writer { return &Writer{w: w} }

// WriteFrame writes one frame, deriving the header's Len from payload.
// The bytes may sit in the bufio buffer until Flush.
func (wr *Writer) WriteFrame(h Header, payload []byte) error {
	h.Len = uint32(len(payload))
	PutHeader(wr.hdr[:], h)
	if _, err := wr.w.Write(wr.hdr[:]); err != nil {
		return err
	}
	_, err := wr.w.Write(payload)
	return err
}

// WriteOutcome writes a SUBMIT/WRITE completion frame: header plus the
// 21-byte outcome encode into one stack buffer and hit the stream as a
// single buffered write.
func (wr *Writer) WriteOutcome(h Header, o Outcome) error {
	var b [HeaderSize + OutcomeSize]byte
	h.Len = OutcomeSize
	PutHeader(b[:], h)
	AppendOutcome(b[:HeaderSize], o) // appends in place: cap(b) is exact
	_, err := wr.w.Write(b[:])
	return err
}

// WriteError writes an error response: the request's opcode and ID with
// FlagError set and the message as payload.
func (wr *Writer) WriteError(h Header, msg string) error {
	h.Flags |= FlagError
	h.Len = uint32(len(msg))
	PutHeader(wr.hdr[:], h)
	if _, err := wr.w.Write(wr.hdr[:]); err != nil {
		return err
	}
	_, err := wr.w.WriteString(msg)
	return err
}

// Flush flushes the underlying bufio writer.
func (wr *Writer) Flush() error { return wr.w.Flush() }

// ---- primitive append/parse helpers (little-endian) ----

// AppendUint32 appends v little-endian.
func AppendUint32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// AppendUint64 appends v little-endian.
func AppendUint64(buf []byte, v uint64) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendInt32 appends v little-endian (two's complement).
func AppendInt32(buf []byte, v int32) []byte { return AppendUint32(buf, uint32(v)) }

// AppendInt64 appends v little-endian (two's complement).
func AppendInt64(buf []byte, v int64) []byte { return AppendUint64(buf, uint64(v)) }

// AppendFloat64 appends v as its IEEE-754 bits, little-endian.
func AppendFloat64(buf []byte, v float64) []byte {
	return AppendUint64(buf, math.Float64bits(v))
}

func parseU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, b, ErrShortPayload
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

func parseU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, b, ErrShortPayload
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func parseF64(b []byte) (float64, []byte, error) {
	u, rest, err := parseU64(b)
	return math.Float64frombits(u), rest, err
}

// ---- verb payload codecs ----

// Outcome is a SUBMIT/WRITE completion: the wire form of a core.Outcome.
// Encoded as device int32, delay float64, response float64, status byte
// (21 bytes). A rejected outcome carries device -1.
type Outcome struct {
	Device  int32
	DelayMS float64
	RespMS  float64
	Status  uint8
}

// OutcomeSize is the encoded size of one Outcome.
const OutcomeSize = 21

// Delayed reports the StatusDelayed bit.
func (o Outcome) Delayed() bool { return o.Status&StatusDelayed != 0 }

// Rejected reports the StatusRejected bit.
func (o Outcome) Rejected() bool { return o.Status&StatusRejected != 0 }

// Unavailable reports the StatusUnavailable bit.
func (o Outcome) Unavailable() bool { return o.Status&StatusUnavailable != 0 }

// AppendOutcome appends the 21-byte encoding of o.
func AppendOutcome(buf []byte, o Outcome) []byte {
	buf = AppendInt32(buf, o.Device)
	buf = AppendFloat64(buf, o.DelayMS)
	buf = AppendFloat64(buf, o.RespMS)
	return append(buf, o.Status)
}

// AppendOutcomeFrame appends one complete SUBMIT/WRITE completion frame —
// header plus 21-byte outcome, Len derived — to buf. The server's burst
// path encodes a whole pipelined burst's responses append-style into one
// scratch buffer with it and flushes them in a single write.
func AppendOutcomeFrame(buf []byte, h Header, o Outcome) []byte {
	h.Len = OutcomeSize
	buf = AppendHeader(buf, h)
	return AppendOutcome(buf, o)
}

// ParseOutcome decodes one Outcome, returning the remaining bytes.
func ParseOutcome(b []byte) (Outcome, []byte, error) {
	if len(b) < OutcomeSize {
		return Outcome{}, b, ErrShortPayload
	}
	o := Outcome{
		Device:  int32(binary.LittleEndian.Uint32(b)),
		DelayMS: math.Float64frombits(binary.LittleEndian.Uint64(b[4:])),
		RespMS:  math.Float64frombits(binary.LittleEndian.Uint64(b[12:])),
		Status:  b[20],
	}
	return o, b[OutcomeSize:], nil
}

// AppendBlock appends a SUBMIT/WRITE/MAP request payload (one block id).
func AppendBlock(buf []byte, block int64) []byte { return AppendInt64(buf, block) }

// ParseBlock decodes a SUBMIT/WRITE/MAP request payload.
func ParseBlock(b []byte) (int64, error) {
	if len(b) != 8 {
		return 0, ErrShortPayload
	}
	return int64(binary.LittleEndian.Uint64(b)), nil
}

// AppendPutReq appends a PUT request payload: block id + stored bytes.
func AppendPutReq(buf []byte, block int64, data []byte) []byte {
	buf = AppendInt64(buf, block)
	return append(buf, data...)
}

// ParsePutReq decodes a PUT request payload. data aliases b and is only
// valid until the frame's Reader buffer is reused; an empty payload is a
// legal zero-length write.
func ParsePutReq(b []byte) (block int64, data []byte, err error) {
	if len(b) < 8 {
		return 0, nil, ErrShortPayload
	}
	return int64(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// AppendGetResp appends a GET response payload: the 21-byte outcome, then
// the stored bytes. A rejected outcome carries no data.
func AppendGetResp(buf []byte, o Outcome, data []byte) []byte {
	buf = AppendOutcome(buf, o)
	return append(buf, data...)
}

// ParseGetResp decodes a GET response payload. data aliases b past the
// outcome and is only valid until the frame's Reader buffer is reused.
func ParseGetResp(b []byte) (Outcome, []byte, error) {
	o, rest, err := ParseOutcome(b)
	if err != nil {
		return Outcome{}, nil, err
	}
	return o, rest, nil
}

// AppendBatchReq appends a BATCH request payload: count + block ids.
func AppendBatchReq(buf []byte, blocks []int64) []byte {
	buf = AppendUint32(buf, uint32(len(blocks)))
	for _, b := range blocks {
		buf = AppendInt64(buf, b)
	}
	return buf
}

// ParseBatchReq decodes a BATCH request payload into dst (reused when
// capacity allows). The declared count must exactly match the payload.
func ParseBatchReq(b []byte, dst []int64) ([]int64, error) {
	n, b, err := parseU32(b)
	if err != nil {
		return nil, err
	}
	if uint64(len(b)) != uint64(n)*8 {
		return nil, ErrShortPayload
	}
	dst = dst[:0]
	for i := uint32(0); i < n; i++ {
		dst = append(dst, int64(binary.LittleEndian.Uint64(b[i*8:])))
	}
	return dst, nil
}

// AppendBatchResp appends a BATCH response payload: count + outcomes.
func AppendBatchResp(buf []byte, outs []Outcome) []byte {
	buf = AppendUint32(buf, uint32(len(outs)))
	for _, o := range outs {
		buf = AppendOutcome(buf, o)
	}
	return buf
}

// ParseBatchResp decodes a BATCH response payload into dst.
func ParseBatchResp(b []byte, dst []Outcome) ([]Outcome, error) {
	n, b, err := parseU32(b)
	if err != nil {
		return nil, err
	}
	if uint64(len(b)) != uint64(n)*OutcomeSize {
		return nil, ErrShortPayload
	}
	dst = dst[:0]
	for i := uint32(0); i < n; i++ {
		o, _, err := ParseOutcome(b[int(i)*OutcomeSize:])
		if err != nil {
			return nil, err
		}
		dst = append(dst, o)
	}
	return dst, nil
}

// Stats is a STATS response payload (32 bytes).
type Stats struct {
	Requests   int64
	Delayed    int64
	Rejected   int64
	AvgDelayMS float64
}

// AppendStats appends the encoding of st.
func AppendStats(buf []byte, st Stats) []byte {
	buf = AppendInt64(buf, st.Requests)
	buf = AppendInt64(buf, st.Delayed)
	buf = AppendInt64(buf, st.Rejected)
	return AppendFloat64(buf, st.AvgDelayMS)
}

// ParseStats decodes a STATS response payload.
func ParseStats(b []byte) (Stats, error) {
	if len(b) != 32 {
		return Stats{}, ErrShortPayload
	}
	return Stats{
		Requests:   int64(binary.LittleEndian.Uint64(b)),
		Delayed:    int64(binary.LittleEndian.Uint64(b[8:])),
		Rejected:   int64(binary.LittleEndian.Uint64(b[16:])),
		AvgDelayMS: math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
	}, nil
}

// AppendDevice appends a FAIL/RECOVER request payload (one device id).
func AppendDevice(buf []byte, device uint32) []byte { return AppendUint32(buf, device) }

// ParseDevice decodes a FAIL/RECOVER request payload.
func ParseDevice(b []byte) (uint32, error) {
	if len(b) != 4 {
		return 0, ErrShortPayload
	}
	return binary.LittleEndian.Uint32(b), nil
}

// AdminResp is a FAIL/RECOVER response: the device's new state and the
// array's effective admission limit S'. Encoded as effS int32 followed by
// the state string (rest of payload).
type AdminResp struct {
	EffectiveS int32
	State      string
}

// AppendAdminResp appends the encoding of a.
func AppendAdminResp(buf []byte, a AdminResp) []byte {
	buf = AppendInt32(buf, a.EffectiveS)
	return append(buf, a.State...)
}

// ParseAdminResp decodes a FAIL/RECOVER response payload.
func ParseAdminResp(b []byte) (AdminResp, error) {
	if len(b) < 4 {
		return AdminResp{}, ErrShortPayload
	}
	return AdminResp{
		EffectiveS: int32(binary.LittleEndian.Uint32(b)),
		State:      string(b[4:]),
	}, nil
}

// MapResp is a MAP response: the design block and replica devices.
type MapResp struct {
	DesignBlock int32
	Devices     []int32
}

// AppendMapResp appends the encoding of m: designBlock int32, count
// uint16, devices int32 each.
func AppendMapResp(buf []byte, m MapResp) []byte {
	buf = AppendInt32(buf, m.DesignBlock)
	buf = append(buf, byte(len(m.Devices)), byte(len(m.Devices)>>8))
	for _, d := range m.Devices {
		buf = AppendInt32(buf, d)
	}
	return buf
}

// ParseMapResp decodes a MAP response payload.
func ParseMapResp(b []byte) (MapResp, error) {
	if len(b) < 6 {
		return MapResp{}, ErrShortPayload
	}
	m := MapResp{DesignBlock: int32(binary.LittleEndian.Uint32(b))}
	n := int(b[4]) | int(b[5])<<8
	b = b[6:]
	if len(b) != n*4 {
		return MapResp{}, ErrShortPayload
	}
	m.Devices = make([]int32, n)
	for i := range m.Devices {
		m.Devices[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return m, nil
}

// DeviceHealth is one device's entry in a HEALTH response.
type DeviceHealth struct {
	Device int32
	EWMAMS float64
	State  string
}

// Health is a HEALTH response payload.
type Health struct {
	Devices        int32
	Alive          int32
	EffectiveS     int32
	FullS          int32
	RebuildPending int32
	RebuildDone    int64
	States         []DeviceHealth
}

// AppendHealth appends the encoding of h: six summary integers, a device
// count, then per device (id int32, ewma float64, state length byte,
// state bytes).
func AppendHealth(buf []byte, h Health) []byte {
	buf = AppendInt32(buf, h.Devices)
	buf = AppendInt32(buf, h.Alive)
	buf = AppendInt32(buf, h.EffectiveS)
	buf = AppendInt32(buf, h.FullS)
	buf = AppendInt32(buf, h.RebuildPending)
	buf = AppendInt64(buf, h.RebuildDone)
	buf = AppendUint32(buf, uint32(len(h.States)))
	for _, d := range h.States {
		buf = AppendInt32(buf, d.Device)
		buf = AppendFloat64(buf, d.EWMAMS)
		if len(d.State) > 255 {
			d.State = d.State[:255]
		}
		buf = append(buf, byte(len(d.State)))
		buf = append(buf, d.State...)
	}
	return buf
}

// ParseHealth decodes a HEALTH response payload.
func ParseHealth(b []byte) (Health, error) {
	var h Health
	var err error
	var u uint32
	for _, dst := range []*int32{&h.Devices, &h.Alive, &h.EffectiveS, &h.FullS, &h.RebuildPending} {
		if u, b, err = parseU32(b); err != nil {
			return Health{}, err
		}
		*dst = int32(u)
	}
	var done uint64
	if done, b, err = parseU64(b); err != nil {
		return Health{}, err
	}
	h.RebuildDone = int64(done)
	var n uint32
	if n, b, err = parseU32(b); err != nil {
		return Health{}, err
	}
	if uint64(n) > uint64(len(b)) { // each entry is at least 13 bytes
		return Health{}, ErrShortPayload
	}
	h.States = make([]DeviceHealth, 0, n)
	for i := uint32(0); i < n; i++ {
		var d DeviceHealth
		if u, b, err = parseU32(b); err != nil {
			return Health{}, err
		}
		d.Device = int32(u)
		if d.EWMAMS, b, err = parseF64(b); err != nil {
			return Health{}, err
		}
		if len(b) < 1 {
			return Health{}, ErrShortPayload
		}
		sl := int(b[0])
		b = b[1:]
		if len(b) < sl {
			return Health{}, ErrShortPayload
		}
		d.State = string(b[:sl])
		b = b[sl:]
		h.States = append(h.States, d)
	}
	if len(b) != 0 {
		return Health{}, fmt.Errorf("wire: %d trailing bytes after HEALTH payload", len(b))
	}
	return h, nil
}

// ShardGauge is one shard's slice of an OpShardStats response — the binary
// form of the per-shard METRICS series.
type ShardGauge struct {
	S          int32
	EffectiveS int32
	Alive      int32
	Requests   int64
	Q          float64
}

// shardGaugeSize is the encoded size of one ShardGauge.
const shardGaugeSize = 28

// AppendShardStats appends an OpShardStats response payload: a count, then
// per shard (S int32, effS int32, alive int32, requests int64, q float64).
func AppendShardStats(buf []byte, gauges []ShardGauge) []byte {
	buf = AppendUint32(buf, uint32(len(gauges)))
	for _, g := range gauges {
		buf = AppendInt32(buf, g.S)
		buf = AppendInt32(buf, g.EffectiveS)
		buf = AppendInt32(buf, g.Alive)
		buf = AppendInt64(buf, g.Requests)
		buf = AppendFloat64(buf, g.Q)
	}
	return buf
}

// ParseShardStats decodes an OpShardStats response payload.
func ParseShardStats(b []byte) ([]ShardGauge, error) {
	n, b, err := parseU32(b)
	if err != nil {
		return nil, err
	}
	if uint64(len(b)) != uint64(n)*shardGaugeSize {
		return nil, ErrShortPayload
	}
	gs := make([]ShardGauge, n)
	for i := range gs {
		o := i * shardGaugeSize
		gs[i] = ShardGauge{
			S:          int32(binary.LittleEndian.Uint32(b[o:])),
			EffectiveS: int32(binary.LittleEndian.Uint32(b[o+4:])),
			Alive:      int32(binary.LittleEndian.Uint32(b[o+8:])),
			Requests:   int64(binary.LittleEndian.Uint64(b[o+12:])),
			Q:          math.Float64frombits(binary.LittleEndian.Uint64(b[o+20:])),
		}
	}
	return gs, nil
}
