package wire

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

func TestTenantBlockRoundTrip(t *testing.T) {
	for _, c := range []struct {
		block  int64
		tenant int32
	}{
		{0, 1}, {42, 1}, {-7, 127}, {1 << 40, 128}, {9, 1<<31 - 1},
	} {
		b := AppendTenantBlock(nil, c.block, c.tenant)
		block, tenant, err := ParseTenantBlock(b)
		if err != nil || block != c.block || tenant != c.tenant {
			t.Fatalf("round trip (%d,%d): got (%d,%d,%v)", c.block, c.tenant, block, tenant, err)
		}
	}
	// The tenant-less payload stays exactly 8 bytes and ParseBlock still
	// rejects anything else — the 0-alloc codecs are untouched.
	if len(AppendBlock(nil, 1)) != 8 {
		t.Fatal("AppendBlock grew")
	}
	if _, err := ParseBlock(AppendTenantBlock(nil, 1, 2)); err == nil {
		t.Fatal("ParseBlock accepted a tenant-tagged payload")
	}
}

func TestTenantBlockMalformed(t *testing.T) {
	for name, b := range map[string][]byte{
		"short":          AppendBlock(nil, 1),
		"zero index":     append(AppendBlock(nil, 1), 0),
		"trailing bytes": append(AppendTenantBlock(nil, 1, 2), 9),
		"huge index":     append(AppendBlock(nil, 1), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01),
		"unterminated":   append(AppendBlock(nil, 1), 0x80),
	} {
		if _, _, err := ParseTenantBlock(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTenantHelloRoundTrip(t *testing.T) {
	names := []string{"alpha", "beta", ""}
	got, err := ParseTenantHelloReq(AppendTenantHelloReq(nil, names))
	if err != nil || !reflect.DeepEqual(got, names) {
		t.Fatalf("hello req: %v %v", got, err)
	}
	idx := []int32{1, 0, 7}
	gi, err := ParseTenantHelloResp(AppendTenantHelloResp(nil, idx))
	if err != nil || !reflect.DeepEqual(gi, idx) {
		t.Fatalf("hello resp: %v %v", gi, err)
	}
	if _, err := ParseTenantHelloReq(append(AppendTenantHelloReq(nil, names), 1)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTenantReqRoundTrip(t *testing.T) {
	set := TenantSpec{Name: "alpha", Reserve: 3, Limit: 12, Weight: 2.5}
	cmd, spec, err := ParseTenantReq(AppendTenantReq(nil, TenantCmdSet, set))
	if err != nil || cmd != TenantCmdSet || spec != set {
		t.Fatalf("SET round trip: %d %+v %v", cmd, spec, err)
	}
	for _, c := range []uint8{TenantCmdGet, TenantCmdDel} {
		cmd, spec, err := ParseTenantReq(AppendTenantReq(nil, c, TenantSpec{Name: "x"}))
		if err != nil || cmd != c || spec.Name != "x" {
			t.Fatalf("cmd %d round trip: %d %+v %v", c, cmd, spec, err)
		}
	}
	if _, _, err := ParseTenantReq([]byte{9, 1, 'x'}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if _, _, err := ParseTenantReq(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, _, err := ParseTenantReq(append(AppendTenantReq(nil, TenantCmdDel, TenantSpec{Name: "x"}), 1)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTenantStatsRoundTrip(t *testing.T) {
	entries := []TenantEntry{
		{Index: 1, Spec: TenantSpec{Name: "alpha", Reserve: 3, Limit: 0, Weight: 3},
			Admitted: 900, Rejected: 1100, OverLimit: 5, Deficit: 1},
		{Index: 3, Spec: TenantSpec{Name: "beta", Reserve: 1, Limit: 9, Weight: 1}},
	}
	got, err := ParseTenantStats(AppendTenantStats(nil, entries))
	if err != nil || !reflect.DeepEqual(got, entries) {
		t.Fatalf("stats round trip: %+v %v", got, err)
	}
	if _, err := ParseTenantStats(AppendUint32(nil, 1<<30)); err == nil {
		t.Fatal("lying count accepted")
	}
	if _, err := ParseTenantStats(append(AppendTenantStats(nil, entries), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestOutcomeOverLimitBit(t *testing.T) {
	o := Outcome{Status: StatusRejected | StatusOverLimit}
	if !o.Rejected() || !o.OverLimit() || o.Delayed() {
		t.Fatalf("status bits: %+v", o)
	}
	parsed, _, err := ParseOutcome(AppendOutcome(nil, o))
	if err != nil || parsed != o {
		t.Fatalf("round trip: %+v %v", parsed, err)
	}
}

// FuzzDecodeTenantFrame drives the tenant codecs with arbitrary bytes
// (through the frame reader like FuzzDecodeFrame): no parser may panic,
// and every accepted value must be internally consistent.
func FuzzDecodeTenantFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Header{Opcode: OpSubmit, ID: 1, Flags: FlagTenant},
		AppendTenantBlock(nil, 42, 3)))
	f.Add(AppendFrame(nil, Header{Opcode: OpTenantHello, ID: 2},
		AppendTenantHelloReq(nil, []string{"alpha", "beta"})))
	f.Add(AppendFrame(nil, Header{Opcode: OpTenant, ID: 3},
		AppendTenantReq(nil, TenantCmdSet, TenantSpec{Name: "a", Reserve: 2, Limit: 8, Weight: 1})))
	f.Add(AppendFrame(nil, Header{Opcode: OpTenant, ID: 4},
		AppendTenantReq(nil, TenantCmdDel, TenantSpec{Name: "a"})))
	f.Add(AppendFrame(nil, Header{Opcode: OpTenantStats, ID: 5},
		AppendTenantStats(nil, []TenantEntry{{Index: 1, Spec: TenantSpec{Name: "a", Weight: 1}}})))
	// Malformed: zero index, truncated varint, lying hello count.
	f.Add(AppendFrame(nil, Header{Opcode: OpSubmit, ID: 6, Flags: FlagTenant},
		append(AppendBlock(nil, 1), 0)))
	f.Add(AppendFrame(nil, Header{Opcode: OpSubmit, ID: 7, Flags: FlagTenant},
		append(AppendBlock(nil, 1), 0x80)))
	f.Add(AppendFrame(nil, Header{Opcode: OpTenantHello, ID: 8}, AppendUint32(nil, 1<<29)))

	const maxPayload = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bufio.NewReaderSize(bytes.NewReader(data), 512), maxPayload)
		for {
			_, payload, err := rd.Next()
			if err != nil {
				return
			}
			if block, tenant, err := ParseTenantBlock(payload); err == nil {
				if tenant < 1 {
					t.Fatalf("accepted tenant index %d (block %d)", tenant, block)
				}
			}
			ParseTenantHelloReq(payload)
			if idx, err := ParseTenantHelloResp(payload); err == nil && uint64(len(idx))*4+4 != uint64(len(payload)) {
				t.Fatalf("hello resp parsed %d indices from %d bytes", len(idx), len(payload))
			}
			if cmd, spec, err := ParseTenantReq(payload); err == nil {
				if cmd != TenantCmdSet && cmd != TenantCmdGet && cmd != TenantCmdDel {
					t.Fatalf("accepted subcommand %d", cmd)
				}
				if len(spec.Name) > 255 {
					t.Fatalf("tenant name of %d bytes", len(spec.Name))
				}
			}
			if entries, err := ParseTenantStats(payload); err == nil {
				for _, e := range entries {
					if len(e.Spec.Name) > 255 {
						t.Fatalf("stats name of %d bytes", len(e.Spec.Name))
					}
				}
			}
		}
	})
}
