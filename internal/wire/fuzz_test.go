package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzDecodeFrame throws arbitrary byte streams at the frame reader and
// every composite payload parser: nothing may panic, every frame the
// reader accepts must be internally consistent (echoed length matches the
// returned payload, within the configured cap), and the parsers must
// either reject garbage or return well-formed values.
func FuzzDecodeFrame(f *testing.F) {
	// Well-formed frames.
	f.Add(AppendFrame(nil, Header{Opcode: OpSubmit, ID: 1}, AppendBlock(nil, 42)))
	f.Add(AppendFrame(nil, Header{Opcode: OpStats, ID: 2}, nil))
	f.Add(AppendFrame(nil, Header{Opcode: OpSubmit, ID: 3, Flags: FlagError}, []byte("boom")))
	two := AppendFrame(nil, Header{Opcode: OpSubmit, ID: 4}, AppendBlock(nil, 1))
	f.Add(AppendFrame(two, Header{Opcode: OpWrite, ID: 5}, AppendBlock(nil, 2)))
	// Malformed: bad magic, bad version, truncated header, truncated
	// payload, oversized length, ID reuse back to back.
	f.Add([]byte{'R', 'E', 'A', 'D', ' ', '4', '2', '\n'})
	f.Add([]byte{Magic, Version + 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{Magic, Version, OpSubmit})
	f.Add(AppendHeader(nil, Header{Opcode: OpSubmit, ID: 6, Len: 8})[:HeaderSize])
	f.Add(AppendHeader(nil, Header{Opcode: OpSubmit, ID: 7, Len: 1 << 31}))
	dup := AppendFrame(nil, Header{Opcode: OpSubmit, ID: 8}, AppendBlock(nil, 1))
	f.Add(AppendFrame(dup, Header{Opcode: OpSubmit, ID: 8}, AppendBlock(nil, 2)))
	// Batch with a lying count.
	lie := AppendUint32(nil, 1<<30)
	f.Add(AppendFrame(nil, Header{Opcode: OpBatch, ID: 9}, lie))
	// Data-path frames: a PUT carrying bytes, a GET request, a GET response
	// with a payload, and a PUT whose payload is shorter than a block id.
	f.Add(AppendFrame(nil, Header{Opcode: OpPut, ID: 10}, AppendPutReq(nil, 42, []byte("payload bytes"))))
	f.Add(AppendFrame(nil, Header{Opcode: OpGet, ID: 11}, AppendBlock(nil, 42)))
	f.Add(AppendFrame(nil, Header{Opcode: OpGet, ID: 12},
		AppendGetResp(nil, Outcome{Device: 3, RespMS: 1.5}, []byte("stored"))))
	f.Add(AppendFrame(nil, Header{Opcode: OpPut, ID: 13}, []byte{1, 2, 3}))

	const maxPayload = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bufio.NewReaderSize(bytes.NewReader(data), 512), maxPayload)
		for {
			h, payload, err := rd.Next()
			if err != nil {
				return
			}
			if int(h.Len) != len(payload) {
				t.Fatalf("header Len %d != payload %d", h.Len, len(payload))
			}
			if h.Len > maxPayload {
				t.Fatalf("accepted payload of %d bytes past the %d cap", h.Len, maxPayload)
			}
			// Every composite parser must survive an arbitrary payload.
			ParseBlock(payload)
			if o, _, err := ParseOutcome(payload); err == nil {
				_ = o.Delayed() || o.Rejected() || o.Unavailable()
			}
			if bs, err := ParseBatchReq(payload, nil); err == nil && uint64(len(bs))*8+4 != uint64(len(payload)) {
				t.Fatalf("batch req parsed %d blocks from %d bytes", len(bs), len(payload))
			}
			ParseBatchResp(payload, nil)
			ParseStats(payload)
			ParseDevice(payload)
			ParseAdminResp(payload)
			ParseMapResp(payload)
			if hh, err := ParseHealth(payload); err == nil {
				for _, d := range hh.States {
					if len(d.State) > 255 {
						t.Fatalf("health state of %d bytes", len(d.State))
					}
				}
			}
			ParseShardStats(payload)
			if _, data, err := ParsePutReq(payload); err == nil && len(data) != len(payload)-8 {
				t.Fatalf("put req parsed %d data bytes from %d", len(data), len(payload))
			}
			if _, data, err := ParseGetResp(payload); err == nil && len(data) != len(payload)-OutcomeSize {
				t.Fatalf("get resp parsed %d data bytes from %d", len(data), len(payload))
			}
		}
	})
}
