package wire

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	cases := []Header{
		{},
		{Opcode: OpSubmit, ID: 1, Len: 8},
		{Opcode: OpQuit, Flags: FlagError, ID: math.MaxUint64, Len: math.MaxUint32},
		{Opcode: 0xFF, Flags: 0xFF, ID: 0xdeadbeefcafebabe, Len: 12345},
	}
	for _, h := range cases {
		var b [HeaderSize]byte
		PutHeader(b[:], h)
		if b[0] != Magic || b[1] != Version {
			t.Fatalf("PutHeader(%+v): magic/version bytes = %x %x", h, b[0], b[1])
		}
		got, err := ParseHeader(b[:])
		if err != nil {
			t.Fatalf("ParseHeader(%+v): %v", h, err)
		}
		if got != h {
			t.Errorf("round trip: got %+v, want %+v", got, h)
		}
		if app := AppendHeader(nil, h); !bytes.Equal(app, b[:]) {
			t.Errorf("AppendHeader differs from PutHeader: %x vs %x", app, b)
		}
	}
}

func TestParseHeaderErrors(t *testing.T) {
	var b [HeaderSize]byte
	PutHeader(b[:], Header{Opcode: OpStats})
	if _, err := ParseHeader(b[:HeaderSize-1]); err == nil {
		t.Error("short header accepted")
	}
	bad := b
	bad[0] = 'R' // text protocol byte
	if _, err := ParseHeader(bad[:]); err != ErrBadMagic {
		t.Errorf("bad magic: got %v, want ErrBadMagic", err)
	}
	bad = b
	bad[1] = Version + 1
	if _, err := ParseHeader(bad[:]); err != ErrBadVersion {
		t.Errorf("bad version: got %v, want ErrBadVersion", err)
	}
}

// TestReaderWriterRoundTrip streams a mix of frame shapes — empty, small
// (zero-copy path), and larger than the bufio window (spill path) —
// through a Writer/Reader pair.
func TestReaderWriterRoundTrip(t *testing.T) {
	var net bytes.Buffer
	bw := bufio.NewWriter(&net)
	wr := NewWriter(bw)

	payloads := [][]byte{
		nil,
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 100),
		bytes.Repeat([]byte{0xCD}, 5000), // > the 256-byte reader window below
	}
	for i, p := range payloads {
		if err := wr.WriteFrame(Header{Opcode: uint8(i + 1), ID: uint64(i) * 7}, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}

	rd := NewReader(bufio.NewReaderSize(&net, 256), 0)
	for i, want := range payloads {
		h, got, err := rd.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if h.Opcode != uint8(i+1) || h.ID != uint64(i)*7 || int(h.Len) != len(want) {
			t.Errorf("frame %d: header %+v", i, h)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d: payload mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
	}
	if _, _, err := rd.Next(); err != io.EOF {
		t.Errorf("after last frame: got %v, want io.EOF", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	frame := AppendFrame(nil, Header{Opcode: OpSubmit, ID: 9}, []byte("12345678"))
	for cut := 1; cut < len(frame); cut++ {
		rd := NewReader(bufio.NewReader(bytes.NewReader(frame[:cut])), 0)
		if _, _, err := rd.Next(); err == nil {
			t.Errorf("truncated frame at %d bytes: no error", cut)
		} else if err == io.EOF {
			t.Errorf("truncated frame at %d bytes: plain EOF (want ErrUnexpectedEOF or parse error)", cut)
		}
	}
}

func TestReaderOversizedPayload(t *testing.T) {
	frame := AppendHeader(nil, Header{Opcode: OpSubmit, Len: 1 << 30})
	rd := NewReader(bufio.NewReader(bytes.NewReader(frame)), 1024)
	if _, _, err := rd.Next(); err != ErrPayloadTooLarge {
		t.Errorf("got %v, want ErrPayloadTooLarge", err)
	}
}

func TestWriteError(t *testing.T) {
	var net bytes.Buffer
	bw := bufio.NewWriter(&net)
	wr := NewWriter(bw)
	if err := wr.WriteError(Header{Opcode: OpFail, ID: 3}, "no health monitor"); err != nil {
		t.Fatal(err)
	}
	wr.Flush()
	rd := NewReader(bufio.NewReader(&net), 0)
	h, p, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if h.Flags&FlagError == 0 || h.ID != 3 || h.Opcode != OpFail {
		t.Errorf("error frame header %+v", h)
	}
	if string(p) != "no health monitor" {
		t.Errorf("error payload %q", p)
	}
}

func TestOutcomeCodec(t *testing.T) {
	cases := []Outcome{
		{Device: 4, DelayMS: 0, RespMS: 0.132507},
		{Device: 17, DelayMS: 1.25, RespMS: 2.5, Status: StatusDelayed},
		{Device: -1, Status: StatusRejected | StatusUnavailable},
	}
	for _, o := range cases {
		b := AppendOutcome(nil, o)
		if len(b) != OutcomeSize {
			t.Fatalf("encoded size %d, want %d", len(b), OutcomeSize)
		}
		got, rest, err := ParseOutcome(b)
		if err != nil || len(rest) != 0 {
			t.Fatalf("ParseOutcome: %v, %d rest", err, len(rest))
		}
		if got != o {
			t.Errorf("round trip: got %+v, want %+v", got, o)
		}
	}
	if _, _, err := ParseOutcome(make([]byte, OutcomeSize-1)); err != ErrShortPayload {
		t.Errorf("short outcome: %v", err)
	}
	o := Outcome{Status: StatusDelayed}
	if !o.Delayed() || o.Rejected() || o.Unavailable() {
		t.Error("status bit accessors wrong")
	}
}

// TestAppendOutcomeFrame checks the multi-frame append encoder produces
// exactly the bytes Writer.WriteOutcome puts on the wire — complete
// header with Len forced to OutcomeSize, then the outcome — so a burst
// response buffer decodes as a plain frame sequence, and that appending
// into a warm buffer allocates nothing.
func TestAppendOutcomeFrame(t *testing.T) {
	outs := []Outcome{
		{Device: 4, RespMS: 0.132507},
		{Device: -1, Status: StatusRejected},
		{Device: 7, DelayMS: 0.5, RespMS: 1.0, Status: StatusDelayed},
	}
	var buf []byte
	for i, o := range outs {
		buf = AppendOutcomeFrame(buf, Header{Opcode: OpSubmit, ID: uint64(i + 1), Len: 999}, o)
	}
	if len(buf) != len(outs)*(HeaderSize+OutcomeSize) {
		t.Fatalf("encoded %d bytes, want %d", len(buf), len(outs)*(HeaderSize+OutcomeSize))
	}
	rd := NewReader(bufio.NewReader(bytes.NewReader(buf)), 0)
	for i, want := range outs {
		h, p, err := rd.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if h.Opcode != OpSubmit || h.ID != uint64(i+1) || h.Len != OutcomeSize {
			t.Errorf("frame %d header %+v", i, h)
		}
		got, rest, err := ParseOutcome(p)
		if err != nil || len(rest) != 0 || got != want {
			t.Errorf("frame %d outcome %+v (err %v), want %+v", i, got, err, want)
		}
	}
	scratch := make([]byte, 0, 4*(HeaderSize+OutcomeSize))
	if n := testing.AllocsPerRun(100, func() {
		scratch = scratch[:0]
		for i, o := range outs {
			scratch = AppendOutcomeFrame(scratch, Header{Opcode: OpSubmit, ID: uint64(i)}, o)
		}
	}); n != 0 {
		t.Errorf("AppendOutcomeFrame allocates %.1f per run on warm buffer, want 0", n)
	}
}

func TestBlockAndBatchCodec(t *testing.T) {
	b := AppendBlock(nil, -42)
	if v, err := ParseBlock(b); err != nil || v != -42 {
		t.Errorf("block round trip: %d, %v", v, err)
	}
	if _, err := ParseBlock(b[:7]); err == nil {
		t.Error("short block accepted")
	}
	if _, err := ParseBlock(append(b, 0)); err == nil {
		t.Error("long block accepted")
	}

	blocks := []int64{1, -5, 1 << 40, 0}
	req := AppendBatchReq(nil, blocks)
	got, err := ParseBatchReq(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		if got[i] != blocks[i] {
			t.Errorf("batch req [%d] = %d, want %d", i, got[i], blocks[i])
		}
	}
	if _, err := ParseBatchReq(req[:len(req)-1], nil); err == nil {
		t.Error("truncated batch req accepted")
	}
	// A count that disagrees with the payload length must not be trusted.
	lie := AppendUint32(nil, 1000)
	lie = AppendInt64(lie, 7)
	if _, err := ParseBatchReq(lie, nil); err == nil {
		t.Error("batch req with lying count accepted")
	}

	outs := []Outcome{{Device: 1}, {Device: 2, Status: StatusRejected}}
	resp := AppendBatchResp(nil, outs)
	gotOuts, err := ParseBatchResp(resp, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if gotOuts[i] != outs[i] {
			t.Errorf("batch resp [%d] = %+v, want %+v", i, gotOuts[i], outs[i])
		}
	}
}

func TestStatsAdminMapCodecs(t *testing.T) {
	st := Stats{Requests: 100, Delayed: 10, Rejected: 1, AvgDelayMS: 0.5}
	got, err := ParseStats(AppendStats(nil, st))
	if err != nil || got != st {
		t.Errorf("stats round trip: %+v, %v", got, err)
	}
	if _, err := ParseStats(make([]byte, 31)); err == nil {
		t.Error("short stats accepted")
	}

	d := AppendDevice(nil, 7)
	if v, err := ParseDevice(d); err != nil || v != 7 {
		t.Errorf("device round trip: %d, %v", v, err)
	}

	a := AdminResp{EffectiveS: 3, State: "rebuilding"}
	gotA, err := ParseAdminResp(AppendAdminResp(nil, a))
	if err != nil || gotA != a {
		t.Errorf("admin round trip: %+v, %v", gotA, err)
	}

	m := MapResp{DesignBlock: 6, Devices: []int32{0, 4, 8}}
	gotM, err := ParseMapResp(AppendMapResp(nil, m))
	if err != nil || gotM.DesignBlock != m.DesignBlock || len(gotM.Devices) != 3 {
		t.Fatalf("map round trip: %+v, %v", gotM, err)
	}
	for i := range m.Devices {
		if gotM.Devices[i] != m.Devices[i] {
			t.Errorf("map device [%d] = %d", i, gotM.Devices[i])
		}
	}
}

func TestHealthCodec(t *testing.T) {
	h := Health{
		Devices: 9, Alive: 8, EffectiveS: 3, FullS: 5,
		RebuildPending: 2, RebuildDone: 12,
		States: []DeviceHealth{
			{Device: 0, EWMAMS: 0.13, State: "healthy"},
			{Device: 1, EWMAMS: 99, State: "failed"},
		},
	}
	got, err := ParseHealth(AppendHealth(nil, h))
	if err != nil {
		t.Fatal(err)
	}
	if got.Devices != h.Devices || got.Alive != h.Alive || got.RebuildDone != h.RebuildDone {
		t.Errorf("summary mismatch: %+v", got)
	}
	if len(got.States) != 2 || got.States[1].State != "failed" || got.States[0].EWMAMS != 0.13 {
		t.Errorf("states mismatch: %+v", got.States)
	}
	// Oversized state strings are clamped, not overflowed.
	long := Health{States: []DeviceHealth{{State: strings.Repeat("x", 300)}}}
	gotLong, err := ParseHealth(AppendHealth(nil, long))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotLong.States[0].State) != 255 {
		t.Errorf("oversized state length %d, want clamped to 255", len(gotLong.States[0].State))
	}
	if _, err := ParseHealth([]byte{1, 2, 3}); err == nil {
		t.Error("short health accepted")
	}
}

func TestShardStatsCodec(t *testing.T) {
	gs := []ShardGauge{
		{S: 5, EffectiveS: 5, Alive: 9, Requests: 1000, Q: 0},
		{S: 5, EffectiveS: 3, Alive: 8, Requests: 500, Q: 0.001},
	}
	got, err := ParseShardStats(AppendShardStats(nil, gs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range gs {
		if got[i] != gs[i] {
			t.Errorf("gauge [%d] = %+v, want %+v", i, got[i], gs[i])
		}
	}
	if _, err := ParseShardStats(AppendShardStats(nil, gs)[:10]); err == nil {
		t.Error("truncated shard stats accepted")
	}
}

func TestBufferPool(t *testing.T) {
	b := GetBuffer()
	if len(*b) != 0 {
		t.Fatalf("pooled buffer has length %d", len(*b))
	}
	*b = append(*b, "payload"...)
	PutBuffer(b)
	b2 := GetBuffer()
	if len(*b2) != 0 {
		t.Errorf("reused buffer not reset: length %d", len(*b2))
	}
	PutBuffer(b2)
}

// TestEncodeDecodeAllocs pins the framing hot path at 0 allocs/op: header
// encode, outcome append into a warm buffer, frame write through a
// pre-sized bufio.Writer, and frame decode through a Reader.
func TestEncodeDecodeAllocs(t *testing.T) {
	// Encode side.
	buf := make([]byte, 0, 64)
	o := Outcome{Device: 3, DelayMS: 1.5, RespMS: 2.25, Status: StatusDelayed}
	if n := testing.AllocsPerRun(1000, func() {
		buf = AppendHeader(buf[:0], Header{Opcode: OpSubmit, ID: 1, Len: OutcomeSize})
		buf = AppendOutcome(buf, o)
	}); n != 0 {
		t.Errorf("encode path allocates %v/op, want 0", n)
	}

	// Writer side (bufio buffer large enough to never flush mid-run).
	var sink bytes.Buffer
	bw := bufio.NewWriterSize(&sink, 1<<20)
	wr := NewWriter(bw)
	payload := AppendOutcome(nil, o)
	if n := testing.AllocsPerRun(1000, func() {
		if err := wr.WriteFrame(Header{Opcode: OpSubmit, ID: 2}, payload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("WriteFrame allocates %v/op, want 0", n)
	}

	// Decode side: replay one frame repeatedly through a reused reader.
	frame := AppendFrame(nil, Header{Opcode: OpSubmit, ID: 3}, payload)
	src := bytes.NewReader(frame)
	br := bufio.NewReaderSize(src, 4096)
	rd := NewReader(br, 0)
	if n := testing.AllocsPerRun(1000, func() {
		src.Seek(0, io.SeekStart)
		br.Reset(src)
		h, p, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := ParseOutcome(p)
		if err != nil || h.ID != 3 || out.Device != 3 {
			t.Fatal("bad decode")
		}
	}); n != 0 {
		t.Errorf("decode path allocates %v/op, want 0", n)
	}
}

// TestDataPathCodecs exercises the payload-carrying GET/PUT codecs: byte
// round-trips, short-input rejection, aliasing semantics, and the same
// zero-alloc guarantee the other codecs hold.
func TestDataPathCodecs(t *testing.T) {
	data := []byte("twelve bytes")

	// PUT request.
	p := AppendPutReq(nil, -7, data)
	if len(p) != 8+len(data) {
		t.Fatalf("put req length = %d, want %d", len(p), 8+len(data))
	}
	block, got, err := ParsePutReq(p)
	if err != nil || block != -7 || !bytes.Equal(got, data) {
		t.Fatalf("ParsePutReq = (%d, %q, %v)", block, got, err)
	}
	if &got[0] != &p[8] {
		t.Fatal("ParsePutReq copied the data instead of aliasing")
	}
	if block, got, err := ParsePutReq(AppendBlock(nil, 9)); err != nil || block != 9 || len(got) != 0 {
		t.Fatalf("empty put payload: (%d, %q, %v)", block, got, err)
	}
	if _, _, err := ParsePutReq(p[:7]); err != ErrShortPayload {
		t.Fatalf("short put req: err = %v", err)
	}

	// GET response.
	o := Outcome{Device: 5, DelayMS: 0.5, RespMS: 3.5, Status: StatusDelayed}
	g := AppendGetResp(nil, o, data)
	if len(g) != OutcomeSize+len(data) {
		t.Fatalf("get resp length = %d, want %d", len(g), OutcomeSize+len(data))
	}
	out, got2, err := ParseGetResp(g)
	if err != nil || out != o || !bytes.Equal(got2, data) {
		t.Fatalf("ParseGetResp = (%+v, %q, %v)", out, got2, err)
	}
	if out, got2, err := ParseGetResp(AppendOutcome(nil, o)); err != nil || out != o || len(got2) != 0 {
		t.Fatalf("dataless get resp: (%+v, %q, %v)", out, got2, err)
	}
	if _, _, err := ParseGetResp(g[:OutcomeSize-1]); err != ErrShortPayload {
		t.Fatalf("short get resp: err = %v", err)
	}

	// Zero-alloc encode/decode with a warm buffer.
	buf := make([]byte, 0, 128)
	if n := testing.AllocsPerRun(1000, func() {
		buf = AppendPutReq(buf[:0], 42, data)
		if _, _, err := ParsePutReq(buf); err != nil {
			t.Fatal(err)
		}
		buf = AppendGetResp(buf[:0], o, data)
		if _, _, err := ParseGetResp(buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("data-path codecs allocate %v/op, want 0", n)
	}
}

func BenchmarkEncodeOutcomeFrame(b *testing.B) {
	buf := make([]byte, 0, 64)
	o := Outcome{Device: 3, DelayMS: 1.5, RespMS: 2.25, Status: StatusDelayed}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendHeader(buf[:0], Header{Opcode: OpSubmit, ID: uint64(i), Len: OutcomeSize})
		buf = AppendOutcome(buf, o)
	}
}

func BenchmarkDecodeOutcomeFrame(b *testing.B) {
	payload := AppendOutcome(nil, Outcome{Device: 3, DelayMS: 1.5, RespMS: 2.25})
	frame := AppendFrame(nil, Header{Opcode: OpSubmit, ID: 3}, payload)
	src := bytes.NewReader(frame)
	br := bufio.NewReaderSize(src, 4096)
	rd := NewReader(br, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.Seek(0, io.SeekStart)
		br.Reset(src)
		h, p, err := rd.Next()
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ParseOutcome(p); err != nil || h.ID != 3 {
			b.Fatal("bad decode")
		}
	}
}
