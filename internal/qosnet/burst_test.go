package qosnet

import (
	"bufio"
	"net"
	"testing"
	"time"

	"flashqos/internal/wire"
)

// TestBinaryEmptyBatch pins the zero-length boundary of the batch path: a
// BATCH frame with no blocks answers an empty response, and the
// connection stays usable.
func TestBinaryEmptyBatch(t *testing.T) {
	_, addr := startServer(t)
	c := dialBinT(t, addr)
	rs, err := c.Batch(nil)
	if err != nil {
		t.Fatalf("empty BATCH: %v", err)
	}
	if len(rs) != 0 {
		t.Fatalf("empty BATCH returned %d outcomes", len(rs))
	}
	if _, err := c.Read(1); err != nil {
		t.Fatalf("connection unusable after empty BATCH: %v", err)
	}
}

// TestBinarySingleFrameBurst speaks raw frames one at a time — each socket
// fill holds exactly one request, so every "burst" the server drains has
// length one — and checks each response arrives immediately (the flush
// gate must not hold a lone frame's response hostage waiting for more).
func TestBinarySingleFrameBurst(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := wire.NewReader(bufio.NewReader(conn), 0)
	for i := uint64(1); i <= 5; i++ {
		frame := wire.AppendFrame(nil, wire.Header{Opcode: wire.OpSubmit, ID: i},
			wire.AppendBlock(nil, int64(i)))
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		h, payload, err := rd.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if h.ID != i {
			t.Fatalf("frame %d answered ID %d", i, h.ID)
		}
		o, _, err := wire.ParseOutcome(payload)
		if err != nil || o.Rejected() {
			t.Fatalf("frame %d outcome %+v err %v", i, o, err)
		}
	}
}

// TestBinaryBurstSpansReadBuffer sends one contiguous run of pipelined
// submit frames larger than the server's 32 KiB read buffer — the run
// spans multiple socket fills and crosses the maxBurstFrames cap — and
// checks every request completes exactly once with a well-formed outcome.
func TestBinaryBurstSpansReadBuffer(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const n = 2000 // n * 24-byte frames ≈ 48 KiB > connReadBuf
	buf := make([]byte, 0, n*(wire.HeaderSize+8))
	for i := 0; i < n; i++ {
		buf = wire.AppendFrame(buf, wire.Header{Opcode: wire.OpSubmit, ID: uint64(i + 1)},
			wire.AppendBlock(nil, int64(i)))
	}
	errc := make(chan error, 1)
	go func() {
		_, err := conn.Write(buf)
		errc <- err
	}()

	rd := wire.NewReader(bufio.NewReaderSize(conn, 1<<16), 0)
	seen := make([]bool, n+1)
	for got := 0; got < n; got++ {
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		h, payload, err := rd.Next()
		if err != nil {
			t.Fatalf("after %d responses: %v", got, err)
		}
		if h.Flags&wire.FlagError != 0 {
			t.Fatalf("request %d answered error %q", h.ID, payload)
		}
		if h.ID < 1 || h.ID > n {
			t.Fatalf("response ID %d out of range", h.ID)
		}
		if seen[h.ID] {
			t.Fatalf("request %d completed twice", h.ID)
		}
		seen[h.ID] = true
		if _, _, err := wire.ParseOutcome(payload); err != nil {
			t.Fatalf("request %d: bad outcome: %v", h.ID, err)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("write: %v", err)
	}
}

// TestBinaryBurstOrderAcrossOpcodes pipelines submits with a STATS frame
// in the middle of the run. The server must settle the pending burst
// before answering the non-submit opcode: responses arrive in request
// order, and the STATS snapshot already counts every submit that preceded
// it.
func TestBinaryBurstOrderAcrossOpcodes(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const before, after = 7, 4
	buf := make([]byte, 0, 512)
	id := uint64(0)
	for i := 0; i < before; i++ {
		id++
		buf = wire.AppendFrame(buf, wire.Header{Opcode: wire.OpSubmit, ID: id},
			wire.AppendBlock(nil, int64(i)))
	}
	id++
	statsID := id
	buf = wire.AppendFrame(buf, wire.Header{Opcode: wire.OpStats, ID: statsID}, nil)
	for i := 0; i < after; i++ {
		id++
		buf = wire.AppendFrame(buf, wire.Header{Opcode: wire.OpSubmit, ID: id},
			wire.AppendBlock(nil, int64(before+i)))
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}

	rd := wire.NewReader(bufio.NewReader(conn), 0)
	for want := uint64(1); want <= id; want++ {
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		h, payload, err := rd.Next()
		if err != nil {
			t.Fatalf("response %d: %v", want, err)
		}
		if h.ID != want {
			t.Fatalf("response order broken: got ID %d, want %d", h.ID, want)
		}
		if h.ID == statsID {
			st, err := wire.ParseStats(payload)
			if err != nil {
				t.Fatal(err)
			}
			if st.Requests != before {
				t.Errorf("STATS mid-pipeline counts %d requests, want %d (burst settled first)",
					st.Requests, before)
			}
		}
	}
}

// TestBinaryInFlightAcrossShutdownDrain starts a graceful Shutdown while a
// deep pipeline is in flight: every request must still complete cleanly
// (the drain serves connections to completion), and Shutdown must return
// nil once the client leaves.
func TestBinaryInFlightAcrossShutdownDrain(t *testing.T) {
	srv, addr := startServer(t)
	c := dialBinT(t, addr)

	const n = 400
	chans := make([]<-chan SubmitResult, n)
	for i := 0; i < n; i++ {
		chans[i] = c.SubmitAsync(int64(i))
	}
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(10 * time.Second) }()
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("in-flight submit %d failed during drain: %v", i, res.Err)
		}
		if res.Rejected {
			t.Errorf("submit %d rejected under Delay policy", i)
		}
	}
	c.Close()
	if err := <-done; err != nil {
		t.Errorf("Shutdown after pipeline drained = %v, want nil", err)
	}
}
