package qosnet

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/health"
)

// startHealthServer runs a server over a (9,3,1) system with a health
// monitor attached and the rebuild scheduler enabled.
func startHealthServer(t *testing.T, rebuildRate float64) (*Server, string) {
	t.Helper()
	sys, err := core.New(core.Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewHealthMonitor(rebuildRate, health.Config{}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, addr.String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// fakeServer answers every request line with the canned response and is
// used to exercise client-side parsing strictness.
func fakeServer(t *testing.T, response string) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					if _, err := r.ReadString('\n'); err != nil {
						return
					}
					if _, err := conn.Write([]byte(response)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return lis.Addr().String()
}

// TestStatsRejectsTrailingGarbage: Client.Stats must fail on malformed
// STATS lines instead of silently accepting them — the old fmt.Sscanf
// parser ignored anything after the last number.
func TestStatsRejectsTrailingGarbage(t *testing.T) {
	for _, bad := range []string{
		"STATS 1 2 3 0.5 junk\n", // the regression: trailing garbage
		"STATS 1 2 3\n",
		"STATS 1 2 3 0.5 6\n",
		"STATS one 2 3 0.5\n",
		"STATS 1 2 3 x\n",
		"BOGUS 1 2 3 0.5\n",
	} {
		c := dialT(t, fakeServer(t, bad))
		if _, _, _, _, err := c.Stats(); err == nil {
			t.Errorf("Stats accepted malformed response %q", strings.TrimSpace(bad))
		}
	}
	c := dialT(t, fakeServer(t, "STATS 10 2 1 0.250000\n"))
	req, del, rej, avg, err := c.Stats()
	if err != nil {
		t.Fatalf("well-formed STATS rejected: %v", err)
	}
	if req != 10 || del != 2 || rej != 1 || avg != 0.25 {
		t.Errorf("Stats = %d %d %d %g, want 10 2 1 0.25", req, del, rej, avg)
	}
}

func TestHealthVerbsWithoutMonitor(t *testing.T) {
	_, addr := startServer(t) // plain server, no monitor
	c := dialT(t, addr)
	if _, _, err := c.Fail(0); err == nil || !strings.Contains(err.Error(), "no health monitor") {
		t.Errorf("Fail without monitor: err = %v, want 'no health monitor'", err)
	}
	if _, err := c.Health(); err == nil || !strings.Contains(err.Error(), "no health monitor") {
		t.Errorf("Health without monitor: err = %v, want 'no health monitor'", err)
	}
}

// TestDegradedServerEndToEnd drives the acceptance flow over the wire:
// FAIL drops admission to S', reads avoid the failed device, RECOVER
// schedules a resilver that completes under the rate cap, and the full
// guarantee S comes back.
func TestDegradedServerEndToEnd(t *testing.T) {
	_, addr := startHealthServer(t, 2000)
	c := dialT(t, addr)

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Devices != 9 || h.Alive != 9 || h.EffectiveS != 5 || h.FullS != 5 {
		t.Fatalf("healthy HEALTH = %+v, want 9 devices alive, S=5", h)
	}
	if len(h.States) != 9 {
		t.Fatalf("HEALTH reported %d DEV lines, want 9", len(h.States))
	}
	for _, d := range h.States {
		if d.State != "healthy" {
			t.Errorf("device %d state %q at startup", d.Device, d.State)
		}
	}

	state, s, err := c.Fail(0)
	if err != nil {
		t.Fatal(err)
	}
	if state != "failed" || s != 3 {
		t.Fatalf("FAIL 0 = %q S'=%d, want failed S'=3", state, s)
	}
	if _, _, err := c.Fail(0); err == nil {
		t.Error("second FAIL 0 succeeded, want error")
	}

	// Degraded reads must keep working and never land on the failed device.
	for b := int64(0); b < 36; b++ {
		res, err := c.Read(b)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Rejected && res.Device == 0 {
			t.Fatalf("block %d served by failed device 0", b)
		}
	}

	metrics, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"flashqos_devices_alive 8",
		"flashqos_devices_unavailable 1",
		"flashqos_admission_limit_effective 3",
		"flashqos_admission_limit 5",
		"flashqos_health_transitions_total",
		"flashqos_rebuild_",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("METRICS missing %q", want)
		}
	}

	state, s, err = c.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if state != "rebuilding" {
		t.Fatalf("RECOVER 0 state %q, want rebuilding (rebuild enabled)", state)
	}
	if s != 3 {
		t.Errorf("S' during resilver = %d, want 3 (device not serving yet)", s)
	}

	// The Serve health pump drains the resilver; the device must come back
	// and the full guarantee with it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err = c.Health()
		if err != nil {
			t.Fatal(err)
		}
		if h.EffectiveS == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resilver never completed: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h.Alive != 9 || h.States[0].State != "healthy" {
		t.Errorf("after resilver HEALTH = %+v, want device 0 healthy", h)
	}
	// The resilver walked all 12 buckets with a replica on device 0. (The
	// reprotect pass started by FAIL is cancelled when RECOVER arrives
	// before it drains, so only the resilver's copies are guaranteed.)
	if h.RebuildDone < 12 {
		t.Errorf("rebuild_done = %d, want >= 12 (the resilver)", h.RebuildDone)
	}
	if h.RebuildPending != 0 {
		t.Errorf("rebuild_pending = %d after completion, want 0", h.RebuildPending)
	}

	if _, _, err := c.Recover(0); err == nil {
		t.Error("RECOVER of healthy device succeeded, want error")
	}
}

// TestMaxUnavailableGuardOverWire: the third FAIL must be refused — it
// would take a bucket's last replica out of service.
func TestMaxUnavailableGuardOverWire(t *testing.T) {
	_, addr := startHealthServer(t, 0)
	c := dialT(t, addr)
	if _, s, err := c.Fail(0); err != nil || s != 3 {
		t.Fatalf("FAIL 0: s=%d err=%v", s, err)
	}
	if _, s, err := c.Fail(1); err != nil || s != 1 {
		t.Fatalf("FAIL 1: s=%d err=%v", s, err)
	}
	if _, _, err := c.Fail(2); err == nil {
		t.Fatal("FAIL 2 succeeded past the c-1 guard")
	}
	// No rebuilder at rate 0: RECOVER promotes straight to healthy.
	if state, s, err := c.Recover(0); err != nil || state != "healthy" || s != 3 {
		t.Fatalf("RECOVER 0 = %q s=%d err=%v, want healthy s=3", state, s, err)
	}
	if state, s, err := c.Recover(1); err != nil || state != "healthy" || s != 5 {
		t.Fatalf("RECOVER 1 = %q s=%d err=%v, want healthy s=5", state, s, err)
	}
}
