package qosnet

import (
	"fmt"
	"strings"
	"testing"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/health"
	"flashqos/internal/shard"
)

// startShardedServer runs a server over K (9,3,1) shards with health
// monitors attached.
func startShardedServer(t *testing.T, k int) (*Server, string) {
	t.Helper()
	arr, err := shard.New(k, core.Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.NewHealthMonitors(0, health.Config{}); err != nil {
		t.Fatal(err)
	}
	srv := NewServerSharded(arr, Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, addr.String()
}

// TestShardedServerRouting round-trips reads and MAPs through a 4-shard
// server and checks the protocol speaks consistent global device ids: a
// block's served device sits inside the replica set MAP reports, and both
// sit inside the block's owning shard.
func TestShardedServerRouting(t *testing.T) {
	srv, addr := startShardedServer(t, 4)
	c := dialT(t, addr)
	arr := srv.Array()

	for block := int64(0); block < 60; block++ {
		db, devices, err := c.Map(block)
		if err != nil {
			t.Fatal(err)
		}
		own := arr.ShardOf(block)
		if wantDB := arr.System(own).DesignBlock(block); db != wantDB {
			t.Errorf("MAP %d designBlock = %d, want %d", block, db, wantDB)
		}
		inSet := make(map[int]bool, len(devices))
		for _, d := range devices {
			inSet[d] = true
			if d/arr.DevicesPerShard() != own {
				t.Errorf("MAP %d device %d outside owning shard %d", block, d, own)
			}
		}
		r, err := c.Read(block)
		if err != nil {
			t.Fatal(err)
		}
		if r.Rejected {
			t.Fatalf("READ %d rejected under Delay policy", block)
		}
		if !inSet[r.Device] {
			t.Errorf("READ %d served by device %d, not in replica set %v", block, r.Device, devices)
		}
	}

	req, _, rej, _, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if req != 60 || rej != 0 {
		t.Errorf("STATS requests=%d rejected=%d, want 60, 0", req, rej)
	}
}

// TestShardedServerMetrics checks the aggregated exposition: the shards
// gauge, per-shard labelled series, and aggregate limits K·S.
func TestShardedServerMetrics(t *testing.T) {
	srv, addr := startShardedServer(t, 4)
	c := dialT(t, addr)
	for block := int64(0); block < 40; block++ {
		if _, err := c.Read(block); err != nil {
			t.Fatal(err)
		}
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	s1 := srv.Array().System(0).S()
	for _, want := range []string{
		"flashqos_requests_total 40",
		"flashqos_shards 4",
		fmt.Sprintf("flashqos_admission_limit %d", 4*s1),
		fmt.Sprintf("flashqos_admission_limit_effective %d", 4*s1),
		"flashqos_devices_alive 36",
		`flashqos_shard_devices_alive{shard="3"} 9`,
		`flashqos_shard_admission_limit_effective{shard="0"} 5`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("METRICS missing %q", want)
		}
	}
	// Every shard's request counter appears, and they sum to the total.
	sum := 0
	for i := 0; i < 4; i++ {
		series := fmt.Sprintf(`flashqos_shard_requests_total{shard="%d"} `, i)
		idx := strings.Index(m, series)
		if idx < 0 {
			t.Fatalf("METRICS missing series %q", series)
		}
		var n int
		if _, err := fmt.Sscanf(m[idx+len(series):], "%d", &n); err != nil {
			t.Fatalf("bad %q sample: %v", series, err)
		}
		sum += n
	}
	if sum != 40 {
		t.Errorf("per-shard request counters sum to %d, want 40", sum)
	}
}

// TestShardedServerShardQ runs a statistical (ε > 0) 2-shard server, pushes
// load through it, and checks the per-shard Q gauge round-trips: the
// exposition carries one flashqos_shard_q_estimate series per shard and
// Client.ShardQ parses them into probabilities. On a deterministic server
// every shard reports exactly 0.
func TestShardedServerShardQ(t *testing.T) {
	arr, err := shard.New(2, core.Config{Design: design.Paper931(), Epsilon: 0.05, SampleTrials: 500})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerSharded(arr, Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	c := dialT(t, addr.String())

	for block := int64(0); block < 120; block++ {
		if _, err := c.Read(block); err != nil {
			t.Fatal(err)
		}
	}
	qs, err := c.ShardQ()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("ShardQ returned %d shards, want 2", len(qs))
	}
	for i, q := range qs {
		if q < 0 || q > 1 {
			t.Errorf("shard %d Q = %g, want a probability", i, q)
		}
		if want := arr.System(i).Q(); q > want+1e-6 || q < want-1e-6 {
			t.Errorf("shard %d gauge %g, live controller %g", i, q, want)
		}
	}

	// Deterministic server: series present, all zero.
	_, detAddr := startShardedServer(t, 4)
	dc := dialT(t, detAddr)
	qs, err = dc.ShardQ()
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 4 {
		t.Fatalf("deterministic ShardQ returned %d shards, want 4", len(qs))
	}
	for i, q := range qs {
		if q != 0 {
			t.Errorf("deterministic shard %d Q = %g, want 0", i, q)
		}
	}
}

// TestParseShardQ pins the strict parser: well-formed pages parse by shard
// index, and every malformation — no series, duplicate shards, gaps, bad
// labels, bad or out-of-range values, trailing garbage — is an error
// rather than a silent zero.
func TestParseShardQ(t *testing.T) {
	good := "# TYPE flashqos_shard_q_estimate gauge\n" +
		"flashqos_shard_q_estimate{shard=\"1\"} 0.25\n" +
		"flashqos_shard_q_estimate{shard=\"0\"} 0.000001\n" +
		"flashqos_q_estimate 0.5\n"
	qs, err := parseShardQ(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0] != 0.000001 || qs[1] != 0.25 {
		t.Errorf("parsed %v, want [0.000001 0.25]", qs)
	}
	for name, page := range map[string]string{
		"empty":        "",
		"no series":    "flashqos_q_estimate 0.5\n",
		"duplicate":    "flashqos_shard_q_estimate{shard=\"0\"} 0.1\nflashqos_shard_q_estimate{shard=\"0\"} 0.2\n",
		"gap":          "flashqos_shard_q_estimate{shard=\"0\"} 0.1\nflashqos_shard_q_estimate{shard=\"2\"} 0.2\n",
		"bad label":    "flashqos_shard_q_estimate{shard=\"x\"} 0.1\n",
		"no quote":     "flashqos_shard_q_estimate{shard=\"0} 0.1\n",
		"bad value":    "flashqos_shard_q_estimate{shard=\"0\"} zero\n",
		"negative":     "flashqos_shard_q_estimate{shard=\"0\"} -0.1\n",
		"above one":    "flashqos_shard_q_estimate{shard=\"0\"} 1.5\n",
		"trailing":     "flashqos_shard_q_estimate{shard=\"0\"} 0.1 extra\n",
		"negative idx": "flashqos_shard_q_estimate{shard=\"-1\"} 0.1\n",
	} {
		if _, err := parseShardQ(page); err == nil {
			t.Errorf("%s: parseShardQ accepted %q", name, page)
		}
	}
}

// TestShardedServerHealthAdmin fails a global device and checks the
// degradation is confined to its shard while the admin surface stays
// coherent: FAIL/RECOVER answer the aggregate S', HEALTH reports global
// ids across all shards.
func TestShardedServerHealthAdmin(t *testing.T) {
	srv, addr := startShardedServer(t, 4)
	c := dialT(t, addr)
	arr := srv.Array()
	full := arr.S()

	const global = 13 // shard 1, local device 4
	state, eff, err := c.Fail(global)
	if err != nil {
		t.Fatal(err)
	}
	if state != "failed" {
		t.Errorf("FAIL state %q, want failed", state)
	}
	degradedOne := arr.System(1).EffectiveS()
	if wantEff := full - arr.System(0).S() + degradedOne; eff != wantEff {
		t.Errorf("effective S after one failure = %d, want %d", eff, wantEff)
	}
	for _, i := range []int{0, 2, 3} {
		if arr.System(i).EffectiveS() != arr.System(i).S() {
			t.Errorf("healthy shard %d degraded to %d", i, arr.System(i).EffectiveS())
		}
	}

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Devices != 36 || h.Alive != 35 || h.EffectiveS != eff || h.FullS != full {
		t.Errorf("HEALTH = %+v, want devices=36 alive=35 s=%d s_full=%d", h, eff, full)
	}
	if len(h.States) != 36 {
		t.Fatalf("HEALTH reported %d devices, want 36", len(h.States))
	}
	for _, d := range h.States {
		want := "healthy"
		if d.Device == global {
			want = "failed"
		}
		if d.State != want {
			t.Errorf("DEV %d state %q, want %q", d.Device, d.State, want)
		}
	}

	// Reads for blocks owned by the degraded shard avoid the failed device.
	for block := int64(0); block < 200; block++ {
		if arr.ShardOf(block) != 1 {
			continue
		}
		r, err := c.Read(block)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Rejected && r.Device == global {
			t.Fatalf("READ %d served by failed device %d", block, global)
		}
	}

	if _, eff, err = c.Recover(global); err != nil {
		t.Fatal(err)
	}
	if eff != full {
		t.Errorf("effective S after recovery = %d, want %d", eff, full)
	}

	if _, _, err := c.Fail(36); err == nil || !strings.Contains(err.Error(), "bad device") {
		t.Errorf("FAIL 36 (out of range) err = %v, want bad device", err)
	}
}
