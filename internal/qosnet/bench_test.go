package qosnet

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/shard"
	"flashqos/internal/wire"
)

// benchBlock returns client id's sent-th block: a bit-mixed permutation
// of the client's own request index over a 2³¹-block space — a random
// read workload, the shape flash arrays are rated on.
//
// Random reads rather than sequential scans is load-bearing for the
// shards=1 vs shards=4 comparison the baseline ratio-gates. A purely
// sequential per-client stream walks the design-block table in a fixed
// cycle, so a single engine sees perfectly periodic replica rotations
// and branch-predictable scheduling; hash partitioning hands each shard
// a pseudo-random subsequence of the same stream, destroying that
// periodicity. The two configurations would then be measured on
// different effective workloads — the monolith on an artificially easy
// one — and the comparison would say nothing about sharding itself
// (a single shard fed the hash-sampled stream measures the same as four
// shards). Equal stream entropy for every shard count is what makes the
// shards=4 / shards=1 ratio meaningful.
func benchBlock(id, sent int) int64 {
	x := uint64(id)*1_000_000 + uint64(sent)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64((x ^ (x >> 31)) & (1<<31 - 1))
}

// BenchmarkServerThroughput floods one Server with 8 concurrent pipelined
// clients and reports aggregate ops/sec. Each client keeps a window of
// in-flight READ requests on its own connection, so the measurement stresses
// the server-side request pipeline (admission, scheduling, stats, response
// formatting) rather than per-request network round trips. Sub-benchmarks
// vary the shard count: with K shards the scheduler mutex and window
// ledger split K ways, so contention drops as K grows.
func BenchmarkServerThroughput(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchServerThroughput(b, shards)
		})
	}
}

func benchServerThroughput(b *testing.B, shards int) {
	const clients = 8
	const window = 384 // pipelined requests in flight per connection

	arr, err := shard.New(shards, core.Config{Design: design.Paper931()})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServerSharded(arr, Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	conns := make([]net.Conn, clients)
	for i := range conns {
		conns[i], err = net.Dial("tcp", addr.String())
		if err != nil {
			b.Fatal(err)
		}
		defer conns[i].Close()
	}

	// Split b.N across the clients.
	per := make([]int, clients)
	for i := 0; i < clients; i++ {
		per[i] = b.N / clients
	}
	per[0] += b.N % clients

	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id, n int) {
			defer wg.Done()
			conn := conns[id]
			w := bufio.NewWriterSize(conn, connReadBuf)
			r := bufio.NewReader(conn)
			sent, recvd := 0, 0
			for recvd < n {
				for sent < n && sent-recvd < window {
					fmt.Fprintf(w, "READ %d\n", benchBlock(id, sent))
					sent++
				}
				if err := w.Flush(); err != nil {
					b.Error(err)
					return
				}
				for recvd < sent {
					if _, err := r.ReadString('\n'); err != nil {
						b.Error(err)
						return
					}
					recvd++
				}
			}
		}(i, per[i])
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkBinaryThroughput is BenchmarkServerThroughput over the framed
// binary protocol: the same 8 pipelined connections and equally deep
// pipeline windows,
// but requests are raw OpSubmit frames and responses fixed-size outcome
// frames — no fmt, no line scanning, pooled buffers on both sides. The
// ops/s ratio against the text benchmark is the tentpole claim (≥3×) and
// both are pinned in .github/bench-baseline.txt.
func BenchmarkBinaryThroughput(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchBinaryThroughput(b, shards)
		})
	}
}

func benchBinaryThroughput(b *testing.B, shards int) {
	const clients = 8
	const window = 384

	arr, err := shard.New(shards, core.Config{Design: design.Paper931()})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServerSharded(arr, Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	conns := make([]net.Conn, clients)
	for i := range conns {
		conns[i], err = net.Dial("tcp", addr.String())
		if err != nil {
			b.Fatal(err)
		}
		defer conns[i].Close()
	}

	per := make([]int, clients)
	for i := 0; i < clients; i++ {
		per[i] = b.N / clients
	}
	per[0] += b.N % clients

	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id, n int) {
			defer wg.Done()
			conn := conns[id]
			w := bufio.NewWriterSize(conn, connReadBuf)
			rd := wire.NewReader(bufio.NewReaderSize(conn, connReadBuf), 0)
			var frame [wire.HeaderSize + 8]byte
			sent, recvd := 0, 0
			for recvd < n {
				for sent < n && sent-recvd < window {
					id64 := uint64(id)<<32 | uint64(sent)
					payload := wire.AppendBlock(frame[wire.HeaderSize:wire.HeaderSize], benchBlock(id, sent))
					wire.PutHeader(frame[:], wire.Header{Opcode: wire.OpSubmit, ID: id64, Len: uint32(len(payload))})
					if _, err := w.Write(frame[:]); err != nil {
						b.Error(err)
						return
					}
					sent++
				}
				if err := w.Flush(); err != nil {
					b.Error(err)
					return
				}
				for recvd < sent {
					if _, _, err := rd.Next(); err != nil {
						b.Error(err)
						return
					}
					recvd++
				}
			}
		}(i, per[i])
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}
