package qosnet

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/shard"
)

// BenchmarkServerThroughput floods one Server with 8 concurrent pipelined
// clients and reports aggregate ops/sec. Each client keeps a window of
// in-flight READ requests on its own connection, so the measurement stresses
// the server-side request pipeline (admission, scheduling, stats, response
// formatting) rather than per-request network round trips. Sub-benchmarks
// vary the shard count: with K shards the scheduler mutex and window
// ledger split K ways, so contention drops as K grows.
func BenchmarkServerThroughput(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchServerThroughput(b, shards)
		})
	}
}

func benchServerThroughput(b *testing.B, shards int) {
	const clients = 8
	const window = 64 // pipelined requests in flight per connection

	arr, err := shard.New(shards, core.Config{Design: design.Paper931()})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServerSharded(arr, Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	conns := make([]net.Conn, clients)
	for i := range conns {
		conns[i], err = net.Dial("tcp", addr.String())
		if err != nil {
			b.Fatal(err)
		}
		defer conns[i].Close()
	}

	// Split b.N across the clients.
	per := make([]int, clients)
	for i := 0; i < clients; i++ {
		per[i] = b.N / clients
	}
	per[0] += b.N % clients

	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id, n int) {
			defer wg.Done()
			conn := conns[id]
			w := bufio.NewWriter(conn)
			r := bufio.NewReader(conn)
			sent, recvd := 0, 0
			for recvd < n {
				for sent < n && sent-recvd < window {
					fmt.Fprintf(w, "READ %d\n", int64(id)*1_000_000+int64(sent))
					sent++
				}
				if err := w.Flush(); err != nil {
					b.Error(err)
					return
				}
				for recvd < sent {
					if _, err := r.ReadString('\n'); err != nil {
						b.Error(err)
						return
					}
					recvd++
				}
			}
		}(i, per[i])
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}
