// Package qosnet exposes a QoS system over TCP with a line-based text
// protocol, modelling the storage-cloud deployment the paper motivates
// (§I): tenants submit block reads to a shared flash array and receive the
// admission outcome and guaranteed response time.
//
// Protocol (one request per line, space-separated):
//
//	READ <block>        → OK <device> <delay-ms> <response-ms> <delayed>
//	                    | REJECTED
//	WRITE <block>       → same responses; updates all replicas
//	MAP <block>         → MAP <designBlock> <dev0> <dev1> ...
//	STATS               → STATS <requests> <delayed> <rejected> <avgDelay-ms>
//	METRICS             → Prometheus-style text exposition, blank-line terminated
//	QUIT                → connection closes
//
// Arrival times are virtual: milliseconds since the server started, read
// from a monotonic clock, so the simulated array timeline matches real
// request interleaving.
package qosnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"flashqos/internal/core"
)

// Server serves a core.System over TCP. Create with NewServer, then Serve.
type Server struct {
	sys   *core.System
	start time.Time

	mu       sync.Mutex
	lastT    float64
	requests int64
	delayed  int64
	rejected int64
	delaySum float64

	lis      net.Listener
	closed   chan struct{}
	connWG   sync.WaitGroup
	closeOne sync.Once
}

// NewServer wraps a QoS system. The system must not be used concurrently
// elsewhere.
func NewServer(sys *core.System) *Server {
	return &Server{sys: sys, start: time.Now(), closed: make(chan struct{})}
}

// Listen starts listening on addr (e.g. "127.0.0.1:0") and returns the
// bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.lis = lis
	return lis.Addr(), nil
}

// Serve accepts connections until Close. Call after Listen.
func (s *Server) Serve() error {
	if s.lis == nil {
		return errors.New("qosnet: Serve before Listen")
	}
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.closed:
				s.connWG.Wait()
				return nil
			default:
				return err
			}
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() {
	s.closeOne.Do(func() {
		close(s.closed)
		if s.lis != nil {
			s.lis.Close()
		}
	})
}

// now returns the virtual arrival time in ms, forced non-decreasing.
func (s *Server) now() float64 {
	t := float64(time.Since(s.start)) / float64(time.Millisecond)
	if t < s.lastT {
		t = s.lastT
	}
	s.lastT = t
	return t
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "READ", "WRITE":
			if len(fields) != 2 {
				fmt.Fprintf(w, "ERR usage: %s <block>\n", strings.ToUpper(fields[0]))
				break
			}
			block, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR bad block: %v\n", err)
				break
			}
			s.mu.Lock()
			var out core.Outcome
			if strings.ToUpper(fields[0]) == "WRITE" {
				out = s.sys.SubmitWrite(s.now(), block)
			} else {
				out = s.sys.Submit(s.now(), block)
			}
			s.requests++
			if out.Rejected {
				s.rejected++
			} else if out.Delayed {
				s.delayed++
				s.delaySum += out.Delay
			}
			s.mu.Unlock()
			if out.Rejected {
				fmt.Fprintln(w, "REJECTED")
			} else {
				fmt.Fprintf(w, "OK %d %.6f %.6f %v\n", out.Device, out.Delay, out.Response(), out.Delayed)
			}
		case "MAP":
			if len(fields) != 2 {
				fmt.Fprintln(w, "ERR usage: MAP <block>")
				break
			}
			block, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR bad block: %v\n", err)
				break
			}
			s.mu.Lock()
			db := s.sys.Mapper().DesignBlock(block)
			reps := s.sys.Replicas(block)
			s.mu.Unlock()
			fmt.Fprintf(w, "MAP %d", db)
			for _, d := range reps {
				fmt.Fprintf(w, " %d", d)
			}
			fmt.Fprintln(w)
		case "STATS":
			s.mu.Lock()
			avg := 0.0
			if s.delayed > 0 {
				avg = s.delaySum / float64(s.delayed)
			}
			fmt.Fprintf(w, "STATS %d %d %d %.6f\n", s.requests, s.delayed, s.rejected, avg)
			s.mu.Unlock()
		case "METRICS":
			s.mu.Lock()
			fmt.Fprintf(w, "# TYPE flashqos_requests_total counter\n")
			fmt.Fprintf(w, "flashqos_requests_total %d\n", s.requests)
			fmt.Fprintf(w, "# TYPE flashqos_delayed_total counter\n")
			fmt.Fprintf(w, "flashqos_delayed_total %d\n", s.delayed)
			fmt.Fprintf(w, "# TYPE flashqos_rejected_total counter\n")
			fmt.Fprintf(w, "flashqos_rejected_total %d\n", s.rejected)
			fmt.Fprintf(w, "# TYPE flashqos_delay_ms_sum counter\n")
			fmt.Fprintf(w, "flashqos_delay_ms_sum %.6f\n", s.delaySum)
			fmt.Fprintf(w, "# TYPE flashqos_admission_limit gauge\n")
			fmt.Fprintf(w, "flashqos_admission_limit %d\n", s.sys.S())
			fmt.Fprintf(w, "# TYPE flashqos_q_estimate gauge\n")
			fmt.Fprintf(w, "flashqos_q_estimate %.6f\n", s.sys.Q())
			s.mu.Unlock()
			fmt.Fprintln(w)
		case "QUIT":
			w.Flush()
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Client is a minimal client for the protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a qosnet server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	fmt.Fprintln(c.conn, "QUIT")
	return c.conn.Close()
}

// ReadResult is the outcome of a READ request.
type ReadResult struct {
	Device   int
	DelayMS  float64
	RespMS   float64
	Delayed  bool
	Rejected bool
}

func (c *Client) roundTrip(req string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, req); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR") {
		return "", errors.New(line)
	}
	return line, nil
}

// Read submits a block read.
func (c *Client) Read(block int64) (ReadResult, error) {
	line, err := c.roundTrip(fmt.Sprintf("READ %d", block))
	if err != nil {
		return ReadResult{}, err
	}
	if line == "REJECTED" {
		return ReadResult{Rejected: true}, nil
	}
	var r ReadResult
	var delayed string
	if _, err := fmt.Sscanf(line, "OK %d %f %f %s", &r.Device, &r.DelayMS, &r.RespMS, &delayed); err != nil {
		return ReadResult{}, fmt.Errorf("qosnet: bad response %q: %w", line, err)
	}
	r.Delayed = delayed == "true"
	return r, nil
}

// Map asks where a data block lives.
func (c *Client) Map(block int64) (designBlock int, devices []int, err error) {
	line, err := c.roundTrip(fmt.Sprintf("MAP %d", block))
	if err != nil {
		return 0, nil, err
	}
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "MAP" {
		return 0, nil, fmt.Errorf("qosnet: bad MAP response %q", line)
	}
	db, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, nil, err
	}
	for _, f := range fields[2:] {
		d, err := strconv.Atoi(f)
		if err != nil {
			return 0, nil, err
		}
		devices = append(devices, d)
	}
	return db, devices, nil
}

// Metrics fetches the Prometheus-style exposition text.
func (c *Client) Metrics() (string, error) {
	if _, err := fmt.Fprintln(c.conn, "METRICS"); err != nil {
		return "", err
	}
	var b strings.Builder
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return "", err
		}
		if strings.TrimSpace(line) == "" {
			return b.String(), nil
		}
		b.WriteString(line)
	}
}

// Stats fetches server counters.
func (c *Client) Stats() (requests, delayed, rejected int64, avgDelayMS float64, err error) {
	line, err := c.roundTrip("STATS")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if _, err := fmt.Sscanf(line, "STATS %d %d %d %f", &requests, &delayed, &rejected, &avgDelayMS); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("qosnet: bad STATS response %q: %w", line, err)
	}
	return requests, delayed, rejected, avgDelayMS, nil
}
