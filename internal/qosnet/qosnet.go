// Package qosnet exposes a QoS system over TCP with a line-based text
// protocol, modelling the storage-cloud deployment the paper motivates
// (§I): tenants submit block reads to a shared flash array and receive the
// admission outcome and guaranteed response time.
//
// Protocol (one request per line, space-separated):
//
//	READ <block> [tenant]  → OK <device> <delay-ms> <response-ms> <delayed>
//	                       | REJECTED
//	WRITE <block> [tenant] → same responses; updates all replicas
//	MAP <block>         → MAP <designBlock> <dev0> <dev1> ...
//	STATS               → STATS <requests> <delayed> <rejected> <avgDelay-ms>
//	METRICS             → Prometheus-style text exposition, blank-line terminated
//	FAIL <dev>          → OK failed <effective-S>       (admin: take device out of service)
//	RECOVER <dev>       → OK <state> <effective-S>      (admin: bring device back; state is
//	                                                     "rebuilding" or "healthy")
//	HEALTH              → HEALTH devices=<n> alive=<n> s=<S'> s_full=<S>
//	                             rebuild_pending=<n> rebuild_done=<n>
//	                      followed by one "DEV <i> <state> <ewma-ms>" line per
//	                      device and a blank terminator
//	TENANT SET <name> <reserve> <limit> <weight>
//	                    → OK <index>          (admin: install/update a tenant live)
//	TENANT GET <name>   → TENANT <name> index=<i> reserve=<r> limit=<l> weight=<w>
//	                             admitted=<n> rejected=<n> overlimit=<n> deficit=<n>
//	TENANT DEL <name>   → OK deleted          (admin: deactivate; the index stays reserved)
//	QUIT                → connection closes
//
// READ/WRITE may carry a tenant name: the request is admitted under that
// tenant's QoS policy (reservation, limit, weighted surplus share) and an
// unknown name answers "ERR unknown tenant" — requests are never silently
// downgraded to the untenanted path. METRICS adds per-tenant
// flashqos_tenant_* series labelled {tenant="name"} once tenants are
// configured.
//
// The admin verbs answer "ERR no health monitor" unless the served system
// was built with a health monitor attached (core.System.NewHealthMonitor);
// qosd attaches one by default.
//
// Arrival times are virtual: milliseconds since the server started, read
// from a monotonic clock, so the simulated array timeline matches real
// request interleaving.
//
// # Concurrency model
//
// Connections are handled by one goroutine each and requests flow through a
// concurrent pipeline with no global serialization:
//
//   - Admission runs through core.ConcurrentSystem: per-interval window
//     counts are sharded atomic counters reserved with a CAS loop, so
//     submissions only touch shared memory for the window they land in,
//     and the per-window count never exceeds S. Only the device scheduler
//     (picking the earliest-finishing replica and marking it busy) sits
//     behind a short mutex, because device next-free times are one global
//     resource. Statistical mode (ε > 0) is concurrent too: admissions
//     check a published Q-bound snapshot lock-free, and closed windows
//     merge into the estimator once per T-interval (core statGate).
//   - Server counters (requests/delayed/rejected/delay-sum) and the
//     virtual clock watermark are lock-free atomics; STATS and METRICS
//     read them without blocking request handlers.
//   - Each connection owns its bufio reader/writer and response scratch
//     buffer, so connections never contend on I/O state.
//
// Robustness controls (Options): a cap on concurrent connections (excess
// connections receive "ERR server busy" and are closed), a per-line read
// deadline, and a maximum request-line length (longer lines are discarded
// and answered with "ERR line too long"). Shutdown drains in-flight
// connections for a configurable timeout before force-closing them.
//
// # Sharding
//
// The server fronts a shard.Array: one or more independent QoS engines
// with the data-block space hash-partitioned across them (qosd -shards).
// The protocol is shard-transparent — READ/WRITE route to the owning
// shard, MAP/FAIL/RECOVER/HEALTH speak global device ids (shard i's local
// device d is global device i·N + d), STATS aggregates — and METRICS adds
// a flashqos_shards gauge plus per-shard series labelled {shard="i"}.
// NewServer wraps a single system as a one-shard array, so a standalone
// deployment behaves exactly as before.
//
// # Binary protocol
//
// Alongside the text protocol the server speaks a length-prefixed binary
// framing (internal/wire): a 16-byte header carrying a request ID lets one
// connection multiplex many in-flight requests with out-of-order
// completion, and every text verb has a binary opcode (OpSubmit/OpWrite/
// OpBatch/OpMap/OpStats/OpMetrics/OpFail/OpRecover/OpHealth/OpShardStats).
// The protocol is auto-detected per connection from the first byte (the
// frame magic 0xFB is not a byte any text verb starts with); Options.Proto
// restricts the server to one protocol. Both handlers share a single
// dispatch core — admission accounting, metrics rendering and admin logic
// are the same code — so text and binary connections can interleave freely
// against one server. See DESIGN.md §11 for the frame layout.
package qosnet

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flashqos/internal/admission"
	"flashqos/internal/core"
	"flashqos/internal/health"
	"flashqos/internal/shard"
	"flashqos/internal/wire"
)

// Default robustness limits (see Options).
const (
	DefaultMaxLineBytes = 4096
)

// ErrForcedClose is returned by Shutdown when the drain timeout expired
// and remaining connections were force-closed.
var ErrForcedClose = errors.New("qosnet: drain timeout expired, connections force-closed")

// Proto selects which wire protocols a server accepts. The protocol of
// each connection is detected from its first byte: wire.Magic (0xFB)
// opens a binary connection, anything else a text one.
type Proto int

const (
	// ProtoBoth auto-detects text or binary per connection (default).
	ProtoBoth Proto = iota
	// ProtoText serves only the line protocol; a binary connection is
	// answered with "ERR binary protocol disabled" and closed.
	ProtoText
	// ProtoBinary serves only framed connections; a text connection is
	// answered with an error frame and closed.
	ProtoBinary
)

// Options configures the server's backpressure and robustness controls.
// The zero value means: unlimited connections, no read deadline,
// DefaultMaxLineBytes per request line, wire.DefaultMaxPayload per binary
// frame, and both protocols enabled.
type Options struct {
	// MaxConns caps concurrent connections; excess connections are sent
	// "ERR server busy" and closed. 0 means unlimited.
	MaxConns int
	// ReadTimeout is the per-line (text) or per-frame (binary) read
	// deadline; a connection idle longer than this is closed. 0 means no
	// deadline.
	ReadTimeout time.Duration
	// MaxLineBytes caps the text request-line length, counted over the
	// line's content excluding its terminator: a line whose content is
	// exactly MaxLineBytes bytes is served, one byte more is discarded and
	// answered with "ERR line too long". Both "\n" and "\r\n" terminators
	// are excluded from the count, and the limit applies even when the
	// line spans multiple bufio fills (bufio.ErrBufferFull). 0 means
	// DefaultMaxLineBytes.
	MaxLineBytes int
	// MaxPayloadBytes caps a binary frame's payload length. A frame
	// announcing more is a protocol violation: the stream cannot be
	// resynchronized, so the connection is closed after an error frame.
	// 0 means wire.DefaultMaxPayload.
	MaxPayloadBytes int
	// Proto restricts the accepted protocols (default ProtoBoth).
	Proto Proto
	// Store attaches a payload engine (internal/pack) behind the QoS
	// layer: the binary OpGet/OpPut verbs serve real bytes through it with
	// admission in front, and its read/write faults feed the health
	// monitors. nil disables the data path — OpGet/OpPut answer an error
	// frame and everything else is unchanged.
	Store BlockStore
}

// stripe is one slice of the server's request counters. Each connection
// owns a stripe exclusively for its lifetime (acquireStripe /
// releaseStripe), which makes every counter single-writer: increments are
// a plain load + atomic store instead of a LOCK-prefixed read-modify-write,
// and the delay sum needs no CAS loop. Readers (STATS, METRICS) sum the
// registry of all stripes ever issued; released stripes keep their counts
// and are handed to later connections, so totals stay monotone and the
// registry stays bounded by the peak connection count.
type stripe struct {
	delayed  atomic.Int64
	rejected atomic.Int64
	delaySum atomic.Uint64 // float64 bits; single-writer accumulated
	// shard counts requests per shard; the grand request total is the sum
	// over all shards, so the hot path pays one counter, not two.
	shard []atomic.Int64
	_     [2]uint64
}

// bump increments a single-writer counter. Only the owning connection
// goroutine writes it, so load + store (no LOCK RMW) is race-free while
// the atomic store keeps reader snapshots tear-free.
func bump(c *atomic.Int64) { c.Store(c.Load() + 1) }

// addDelay accumulates a delay into the stripe's float64 sum. Single
// writer, so read-add-store suffices.
func (st *stripe) addDelay(d float64) {
	v := math.Float64frombits(st.delaySum.Load()) + d
	st.delaySum.Store(math.Float64bits(v))
}

// Server serves a shard.Array — one or more QoS engines with the block
// space partitioned across them — over TCP. Create with NewServer (single
// array), NewServerOpts, or NewServerSharded, then Serve.
type Server struct {
	arr   *shard.Array
	start time.Time
	opts  Options

	lastT atomic.Uint64 // float64 bits: virtual-clock watermark
	busy  atomic.Int64  // connections rejected by the MaxConns cap

	stripeMu    sync.Mutex
	stripes     []*stripe // registry of every stripe ever issued
	freeStripes []*stripe // stripes of closed connections, ready for reuse

	lis      net.Listener
	closed   chan struct{}
	connWG   sync.WaitGroup
	closeOne sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	sem    chan struct{} // MaxConns semaphore (nil = unlimited)
}

// NewServer wraps a QoS system with default Options. The system must not
// be used concurrently elsewhere.
func NewServer(sys *core.System) *Server {
	return NewServerOpts(sys, Options{})
}

// NewServerOpts wraps a QoS system with explicit robustness options. The
// system is served as a one-shard array.
func NewServerOpts(sys *core.System, opts Options) *Server {
	arr, err := shard.FromSystems(sys)
	if err != nil {
		panic("qosnet: " + err.Error()) // unreachable: one valid system
	}
	return NewServerSharded(arr, opts)
}

// NewServerSharded serves a pre-built sharded array. The array (and its
// shards' systems) must not be used concurrently elsewhere.
func NewServerSharded(arr *shard.Array, opts Options) *Server {
	if opts.MaxLineBytes <= 0 {
		opts.MaxLineBytes = DefaultMaxLineBytes
	}
	s := &Server{
		arr:    arr,
		start:  time.Now(),
		opts:   opts,
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	if opts.MaxConns > 0 {
		s.sem = make(chan struct{}, opts.MaxConns)
	}
	return s
}

// System returns shard 0's concurrent admission front-end (for inspection
// and tests; identical to the whole served system when unsharded).
func (s *Server) System() *core.ConcurrentSystem { return s.arr.System(0) }

// Array returns the served sharded array.
func (s *Server) Array() *shard.Array { return s.arr }

// anyHealth reports whether at least one shard has a health monitor.
func (s *Server) anyHealth() bool {
	for i := 0; i < s.arr.Shards(); i++ {
		if s.arr.Monitor(i) != nil {
			return true
		}
	}
	return false
}

// monitorFor resolves a global device id to its shard's monitor and local
// device id (mon is nil when the shard has none or the id is out of range).
func (s *Server) monitorFor(globalDev int) (mon *health.Monitor, local int) {
	sh, local, ok := s.arr.DeviceShard(globalDev)
	if !ok {
		return nil, 0
	}
	return s.arr.Monitor(sh), local
}

// Listen starts listening on addr (e.g. "127.0.0.1:0") and returns the
// bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.lis = lis
	return lis.Addr(), nil
}

// healthPumpInterval is how often Serve ticks the health monitor's
// background work (token-bucket rebuild copies, drained-device promotion).
const healthPumpInterval = 2 * time.Millisecond

// Serve accepts connections until Close/Shutdown. Call after Listen.
// When the served shards have health monitors attached, Serve also pumps
// their rebuild schedulers until shutdown.
func (s *Server) Serve() error {
	if s.lis == nil {
		return errors.New("qosnet: Serve before Listen")
	}
	if s.anyHealth() {
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			tick := time.NewTicker(healthPumpInterval)
			defer tick.Stop()
			for {
				select {
				case <-s.closed:
					return
				case <-tick.C:
					for i := 0; i < s.arr.Shards(); i++ {
						if mon := s.arr.Monitor(i); mon != nil {
							mon.Step()
						}
					}
				}
			}
		}()
	}
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.closed:
				s.connWG.Wait()
				return nil
			default:
				return err
			}
		}
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
			default:
				// Over the connection cap: refuse quickly instead of
				// queueing unbounded work.
				s.busy.Add(1)
				conn.SetWriteDeadline(time.Now().Add(time.Second))
				io.WriteString(conn, "ERR server busy\n")
				conn.Close()
				continue
			}
		}
		s.track(conn, true)
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer s.track(conn, false)
			if s.sem != nil {
				defer func() { <-s.sem }()
			}
			s.handle(conn)
		}()
	}
}

func (s *Server) track(conn net.Conn, add bool) {
	s.connMu.Lock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
	s.connMu.Unlock()
}

// Close stops the listener. In-flight connections keep being served; use
// Shutdown to wait for them (with an optional drain timeout).
func (s *Server) Close() {
	s.closeOne.Do(func() {
		close(s.closed)
		if s.lis != nil {
			s.lis.Close()
		}
	})
}

// Shutdown stops the listener and waits for in-flight connections to
// finish. If drain > 0 and connections are still open when it expires,
// they are force-closed and ErrForcedClose is returned. drain <= 0 waits
// indefinitely.
func (s *Server) Shutdown(drain time.Duration) error {
	s.Close()
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	if drain <= 0 {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-time.After(drain):
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		<-done
		return ErrForcedClose
	}
}

// now returns the virtual arrival time in ms, forced non-decreasing across
// all connections with a CAS loop on the watermark — safe to call from any
// goroutine.
func (s *Server) now() float64 {
	t := float64(time.Since(s.start)) / float64(time.Millisecond)
	for {
		old := s.lastT.Load()
		if last := math.Float64frombits(old); t <= last {
			return last
		}
		if s.lastT.CompareAndSwap(old, math.Float64bits(t)) {
			return t
		}
	}
}

// totals sums the striped request counters — the STATS/METRICS read side.
// The request total is derived from the per-shard counters.
func (s *Server) totals() (requests, delayed, rejected int64, delaySumMS float64) {
	s.stripeMu.Lock()
	defer s.stripeMu.Unlock()
	for _, st := range s.stripes {
		for j := range st.shard {
			requests += st.shard[j].Load()
		}
		delayed += st.delayed.Load()
		rejected += st.rejected.Load()
		delaySumMS += math.Float64frombits(st.delaySum.Load())
	}
	return
}

// shardRequests sums one shard's striped request counter.
func (s *Server) shardRequests(shard int) int64 {
	s.stripeMu.Lock()
	defer s.stripeMu.Unlock()
	var n int64
	for _, st := range s.stripes {
		n += st.shard[shard].Load()
	}
	return n
}

// acquireStripe hands a counter stripe to a new connection — a reused one
// from a closed connection when available (its counts carry over into the
// server totals), otherwise a fresh one added to the registry.
func (s *Server) acquireStripe() *stripe {
	s.stripeMu.Lock()
	defer s.stripeMu.Unlock()
	if n := len(s.freeStripes); n > 0 {
		st := s.freeStripes[n-1]
		s.freeStripes = s.freeStripes[:n-1]
		return st
	}
	st := &stripe{shard: make([]atomic.Int64, s.arr.Shards())}
	s.stripes = append(s.stripes, st)
	return st
}

// releaseStripe returns a connection's stripe for reuse. The counts are
// kept — they are part of the server's running totals.
func (s *Server) releaseStripe(st *stripe) {
	s.stripeMu.Lock()
	s.freeStripes = append(s.freeStripes, st)
	s.stripeMu.Unlock()
}

// readLine reads one newline-terminated line of at most max bytes. An
// over-long line is discarded through the next newline and reported via
// tooLong. A final unterminated line before EOF is returned as a line; the
// next call then reports io.EOF.
func readLine(r *bufio.Reader, max int) (line []byte, tooLong bool, err error) {
	var buf []byte
	for {
		frag, err := r.ReadSlice('\n')
		buf = append(buf, frag...)
		if err == nil {
			break
		}
		if err != bufio.ErrBufferFull {
			if err == io.EOF && len(buf) > 0 && !tooLongLen(buf, max) {
				return buf, false, nil
			}
			return nil, tooLongLen(buf, max), err
		}
		if tooLongLen(buf, max) {
			// Discard the remainder of the oversized line.
			for {
				_, err := r.ReadSlice('\n')
				if err == nil || err != bufio.ErrBufferFull {
					return nil, true, err
				}
			}
		}
	}
	if tooLongLen(buf, max) {
		return nil, true, nil
	}
	return buf, false, nil
}

func tooLongLen(buf []byte, max int) bool {
	n := len(buf)
	if n > 0 && buf[n-1] == '\n' {
		n--
		if n > 0 && buf[n-1] == '\r' {
			n--
		}
	}
	return n > max
}

// connReadBuf is the per-connection read-buffer size. Large enough that a
// binary frame's header+payload usually sits in one fill (the zero-copy
// path) and a pipelined burst of text lines batches into few reads.
const connReadBuf = 32768

// handle serves one connection: it sniffs the protocol from the first
// byte (without consuming it) and hands off to the text or binary loop.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	st := s.acquireStripe()
	defer s.releaseStripe(st)
	r := bufio.NewReaderSize(conn, connReadBuf)
	if s.opts.ReadTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
	}
	first, err := r.Peek(1)
	if err != nil {
		return
	}
	if first[0] == wire.Magic {
		if s.opts.Proto == ProtoText {
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			io.WriteString(conn, "ERR binary protocol disabled\n")
			return
		}
		s.handleBinary(conn, r, st)
		return
	}
	if s.opts.Proto == ProtoBinary {
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		wr := wire.NewWriter(bufio.NewWriter(conn))
		wr.WriteError(wire.Header{}, "text protocol disabled")
		wr.Flush()
		return
	}
	s.handleText(conn, r, st)
}

// submit runs one READ/WRITE through the shared dispatch core: virtual
// arrival, shard routing, striped accounting, and the health monitor's
// latency feed. Both protocol handlers call it. tenant is the 1-based
// tenant index (0 = untenanted, the byte-identical legacy path).
func (s *Server) submit(st *stripe, write bool, block int64, tenant int32, hasHealth bool) core.Outcome {
	return s.submitAt(st, write, block, tenant, hasHealth, s.now())
}

// submitAt is submit with the caller supplying the arrival time. The
// binary handler stamps one arrival per socket fill — frames drained from
// a single read genuinely arrived together — which keeps the virtual clock
// off the per-frame path.
func (s *Server) submitAt(st *stripe, write bool, block int64, tenant int32, hasHealth bool, arrival float64) core.Outcome {
	var out core.Outcome
	switch {
	case tenant != 0 && write:
		out = s.arr.SubmitWriteTenant(arrival, block, tenant)
	case tenant != 0:
		out = s.arr.SubmitTenant(arrival, block, tenant)
	case write:
		out = s.arr.SubmitWrite(arrival, block)
	default:
		out = s.arr.Submit(arrival, block)
	}
	bump(&st.shard[s.arr.ShardOf(block)])
	if out.Rejected {
		bump(&st.rejected)
	} else {
		if out.Delayed {
			bump(&st.delayed)
			st.addDelay(out.Delay)
		}
		if hasHealth {
			// Feed the latency detector: the simulated array served the
			// request in Response() ms on this device.
			if m, local := s.monitorFor(out.Device); m != nil {
				m.ReportSuccess(local, out.Response())
			}
		}
	}
	return out
}

// submitBatch admits simultaneous requests jointly (shard.Array.SubmitBatch
// semantics) with the same accounting as submit. The scratch belongs to the
// calling connection; nil allocates.
func (s *Server) submitBatch(st *stripe, blocks []int64, sc *shard.BatchScratch, hasHealth bool) []core.Outcome {
	outs := s.arr.SubmitBatch(s.now(), blocks, sc)
	for i, out := range outs {
		bump(&st.shard[s.arr.ShardOf(blocks[i])])
		if out.Rejected {
			bump(&st.rejected)
			continue
		}
		if out.Delayed {
			bump(&st.delayed)
			st.addDelay(out.Delay)
		}
		if hasHealth {
			if m, local := s.monitorFor(out.Device); m != nil {
				m.ReportSuccess(local, out.Response())
			}
		}
	}
	return outs
}

// submitBurstShard admits one shard's slice of a drained burst of
// pipelined READ/WRITE frames sharing one arrival stamp (core.BurstReq
// semantics: outcomes bit-identical to per-frame submitAt calls in input
// order — per-shard admission state is independent, so shard-bucketed
// submission preserves each shard's arrival order). The shard's request
// counter is bumped once per (shard, burst) — the binary handler already
// routed every block while decoding it; the rest of the accounting
// matches submitAt. The scratch belongs to the calling connection.
func (s *Server) submitBurstShard(st *stripe, sh int, reqs []core.BurstReq, sc *core.BurstScratch, hasHealth bool, arrival float64) []core.Outcome {
	outs := s.arr.SubmitBurstShard(sh, arrival, reqs, sc)
	c := &st.shard[sh]
	c.Store(c.Load() + int64(len(reqs))) // single-writer, like bump
	for _, out := range outs {
		if out.Rejected {
			bump(&st.rejected)
			continue
		}
		if out.Delayed {
			bump(&st.delayed)
			st.addDelay(out.Delay)
		}
		if hasHealth {
			if m, local := s.monitorFor(out.Device); m != nil {
				m.ReportSuccess(local, out.Response())
			}
		}
	}
	return outs
}

// adminFailRecover applies a FAIL/RECOVER admin verb to a valid global
// device id and reports the device's new state plus the aggregate S'.
// Callers validate the id range and health availability first.
func (s *Server) adminFailRecover(fail bool, dev int) (state string, effectiveS int, err error) {
	mon, local := s.monitorFor(dev)
	if mon == nil {
		return "", 0, fmt.Errorf("no health monitor for device %d", dev)
	}
	if fail {
		err = mon.Fail(local)
	} else {
		err = mon.Recover(local)
	}
	if err != nil {
		return "", 0, err
	}
	return fmt.Sprint(mon.State(local)), s.arr.EffectiveS(), nil
}

// healthTotals aggregates per-shard health counters (shards without a
// monitor count as fully alive).
func (s *Server) healthTotals() (alive, pending int, done int64) {
	for i := 0; i < s.arr.Shards(); i++ {
		mon := s.arr.Monitor(i)
		if mon == nil {
			alive += s.arr.DevicesPerShard()
			continue
		}
		alive += mon.Mask().Alive
		p, d := mon.RebuildProgress()
		pending += p
		done += d
	}
	return
}

// shardGauges snapshots the per-shard admission gauges (the binary form of
// the METRICS shard series).
func (s *Server) shardGauges(gs []wire.ShardGauge) []wire.ShardGauge {
	gs = gs[:0]
	for i := 0; i < s.arr.Shards(); i++ {
		sys := s.arr.System(i)
		alive := s.arr.DevicesPerShard()
		if mon := s.arr.Monitor(i); mon != nil {
			alive = mon.Mask().Alive
		}
		gs = append(gs, wire.ShardGauge{
			S:          int32(sys.S()),
			EffectiveS: int32(sys.EffectiveS()),
			Alive:      int32(alive),
			Requests:   s.shardRequests(i),
			Q:          sys.Q(),
		})
	}
	return gs
}

// appendMetrics renders the Prometheus-style exposition page into buf with
// strconv appends — one buffer build, one write, no fmt on the scrape
// path. The page excludes the blank-line terminator (the text handler
// appends it; the binary handler frames the page as-is).
func (s *Server) appendMetrics(buf []byte, hasHealth bool) []byte {
	requests, delayed, rejected, delaySum := s.totals()
	appendGaugeInt := func(buf []byte, name string, kind string, v int64) []byte {
		buf = append(buf, "# TYPE "...)
		buf = append(buf, name...)
		buf = append(buf, ' ')
		buf = append(buf, kind...)
		buf = append(buf, '\n')
		buf = append(buf, name...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, v, 10)
		return append(buf, '\n')
	}
	buf = appendGaugeInt(buf, "flashqos_requests_total", "counter", requests)
	buf = appendGaugeInt(buf, "flashqos_delayed_total", "counter", delayed)
	buf = appendGaugeInt(buf, "flashqos_rejected_total", "counter", rejected)
	buf = append(buf, "# TYPE flashqos_delay_ms_sum counter\nflashqos_delay_ms_sum "...)
	buf = strconv.AppendFloat(buf, delaySum, 'f', 6, 64)
	buf = append(buf, '\n')
	buf = appendGaugeInt(buf, "flashqos_busy_rejected_total", "counter", s.busy.Load())
	buf = appendGaugeInt(buf, "flashqos_admission_limit", "gauge", int64(s.arr.S()))
	buf = appendGaugeInt(buf, "flashqos_admission_limit_effective", "gauge", int64(s.arr.EffectiveS()))
	buf = append(buf, "# TYPE flashqos_q_estimate gauge\nflashqos_q_estimate "...)
	buf = strconv.AppendFloat(buf, s.arr.Q(), 'f', 6, 64)
	buf = append(buf, '\n')
	buf = append(buf, "# TYPE flashqos_shard_q_estimate gauge\n"...)
	for i := 0; i < s.arr.Shards(); i++ {
		buf = append(buf, `flashqos_shard_q_estimate{shard="`...)
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, `"} `...)
		buf = strconv.AppendFloat(buf, s.arr.System(i).Q(), 'f', 6, 64)
		buf = append(buf, '\n')
	}
	buf = appendGaugeInt(buf, "flashqos_shards", "gauge", int64(s.arr.Shards()))
	buf = append(buf, "# TYPE flashqos_shard_requests_total counter\n"...)
	for i := 0; i < s.arr.Shards(); i++ {
		buf = append(buf, `flashqos_shard_requests_total{shard="`...)
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, `"} `...)
		buf = strconv.AppendInt(buf, s.shardRequests(i), 10)
		buf = append(buf, '\n')
	}
	buf = append(buf, "# TYPE flashqos_shard_admission_limit_effective gauge\n"...)
	for i := 0; i < s.arr.Shards(); i++ {
		buf = append(buf, `flashqos_shard_admission_limit_effective{shard="`...)
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, `"} `...)
		buf = strconv.AppendInt(buf, int64(s.arr.System(i).EffectiveS()), 10)
		buf = append(buf, '\n')
	}
	if tenants := s.arr.TenantStats(); len(tenants) > 0 {
		appendTenantSeries := func(buf []byte, name string, value func(tc shard.TenantCounters) int64) []byte {
			buf = append(buf, "# TYPE "...)
			buf = append(buf, name...)
			buf = append(buf, " counter\n"...)
			for _, tc := range tenants {
				buf = append(buf, name...)
				buf = append(buf, `{tenant="`...)
				buf = append(buf, tc.Spec.Name...)
				buf = append(buf, `"} `...)
				buf = strconv.AppendInt(buf, value(tc), 10)
				buf = append(buf, '\n')
			}
			return buf
		}
		buf = appendTenantSeries(buf, "flashqos_tenant_admitted_total",
			func(tc shard.TenantCounters) int64 { return tc.Admitted })
		buf = appendTenantSeries(buf, "flashqos_tenant_rejected_total",
			func(tc shard.TenantCounters) int64 { return tc.Rejected })
		buf = appendTenantSeries(buf, "flashqos_tenant_over_limit_total",
			func(tc shard.TenantCounters) int64 { return tc.OverLimit })
		buf = appendTenantSeries(buf, "flashqos_tenant_reservation_deficit_total",
			func(tc shard.TenantCounters) int64 { return tc.Deficit })
	}
	if hasHealth {
		alive, pending, done := s.healthTotals()
		unavail, transitions := 0, int64(0)
		for i := 0; i < s.arr.Shards(); i++ {
			if mon := s.arr.Monitor(i); mon != nil {
				unavail += mon.Mask().Unavailable()
				transitions += mon.Transitions()
			}
		}
		buf = appendGaugeInt(buf, "flashqos_devices_alive", "gauge", int64(alive))
		buf = appendGaugeInt(buf, "flashqos_devices_unavailable", "gauge", int64(unavail))
		buf = appendGaugeInt(buf, "flashqos_rebuild_pending", "gauge", int64(pending))
		buf = appendGaugeInt(buf, "flashqos_rebuild_done_total", "counter", done)
		buf = appendGaugeInt(buf, "flashqos_health_transitions_total", "counter", transitions)
		buf = append(buf, "# TYPE flashqos_shard_devices_alive gauge\n"...)
		for i := 0; i < s.arr.Shards(); i++ {
			a := s.arr.DevicesPerShard()
			if mon := s.arr.Monitor(i); mon != nil {
				a = mon.Mask().Alive
			}
			buf = append(buf, `flashqos_shard_devices_alive{shard="`...)
			buf = strconv.AppendInt(buf, int64(i), 10)
			buf = append(buf, `"} `...)
			buf = strconv.AppendInt(buf, int64(a), 10)
			buf = append(buf, '\n')
		}
	}
	return buf
}

func (s *Server) handleText(conn net.Conn, r *bufio.Reader, st *stripe) {
	w := bufio.NewWriterSize(conn, connReadBuf)
	scratch := make([]byte, 0, 128) // per-connection response buffer
	hasHealth := s.anyHealth()      // monitors attach before serving
	for {
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		raw, tooLong, err := readLine(r, s.opts.MaxLineBytes)
		if tooLong {
			fmt.Fprintln(w, "ERR line too long")
			if w.Flush() != nil || err != nil {
				return
			}
			continue
		}
		if err != nil {
			return
		}
		line := strings.TrimSpace(string(raw))
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "READ", "WRITE":
			if len(fields) != 2 && len(fields) != 3 {
				fmt.Fprintf(w, "ERR usage: %s <block> [tenant]\n", strings.ToUpper(fields[0]))
				break
			}
			block, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR bad block: %v\n", err)
				break
			}
			var tenant int32
			if len(fields) == 3 {
				// Text clients tag by name; resolution is a cold-path
				// registry lookup. An unknown name is the same uniform
				// refusal the binary protocol gives an unknown index.
				if tenant = s.arr.TenantIndex(fields[2]); tenant == 0 {
					fmt.Fprintf(w, "ERR %s\n", errUnknownTenant)
					break
				}
			}
			out := s.submit(st, strings.ToUpper(fields[0]) == "WRITE", block, tenant, hasHealth)
			if out.Rejected {
				fmt.Fprintln(w, "REJECTED")
			} else {
				scratch = appendOutcome(scratch[:0], out)
				w.Write(scratch)
			}
		case "MAP":
			if len(fields) != 2 {
				fmt.Fprintln(w, "ERR usage: MAP <block>")
				break
			}
			block, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR bad block: %v\n", err)
				break
			}
			i := s.arr.ShardOf(block)
			sys := s.arr.System(i)
			db := sys.DesignBlock(block)
			reps := sys.Replicas(block)
			base := i * s.arr.DevicesPerShard()
			scratch = append(scratch[:0], "MAP "...)
			scratch = strconv.AppendInt(scratch, int64(db), 10)
			for _, d := range reps {
				scratch = append(scratch, ' ')
				scratch = strconv.AppendInt(scratch, int64(base+d), 10)
			}
			scratch = append(scratch, '\n')
			w.Write(scratch)
		case "STATS":
			req, del, rej, sum := s.totals()
			avg := 0.0
			if del > 0 {
				avg = sum / float64(del)
			}
			fmt.Fprintf(w, "STATS %d %d %d %.6f\n", req, del, rej, avg)
		case "METRICS":
			// One scratch build, one write: the scrape path stays off fmt
			// and allocates nothing once the scratch has grown to the page
			// size.
			scratch = s.appendMetrics(scratch[:0], hasHealth)
			scratch = append(scratch, '\n') // blank-line terminator
			w.Write(scratch)
		case "FAIL", "RECOVER":
			verb := strings.ToUpper(fields[0])
			if len(fields) != 2 {
				fmt.Fprintf(w, "ERR usage: %s <device>\n", verb)
				break
			}
			if !hasHealth {
				fmt.Fprintln(w, "ERR no health monitor")
				break
			}
			dev, err := strconv.Atoi(fields[1])
			if err != nil || dev < 0 || dev >= s.arr.Devices() {
				fmt.Fprintf(w, "ERR bad device %q\n", fields[1])
				break
			}
			state, effS, aerr := s.adminFailRecover(verb == "FAIL", dev)
			if aerr != nil {
				fmt.Fprintf(w, "ERR %v\n", aerr)
				break
			}
			fmt.Fprintf(w, "OK %s %d\n", state, effS)
		case "HEALTH":
			if !hasHealth {
				fmt.Fprintln(w, "ERR no health monitor")
				break
			}
			alive, pending, done := s.healthTotals()
			fmt.Fprintf(w, "HEALTH devices=%d alive=%d s=%d s_full=%d rebuild_pending=%d rebuild_done=%d\n",
				s.arr.Devices(), alive, s.arr.EffectiveS(), s.arr.S(), pending, done)
			for g := 0; g < s.arr.Devices(); g++ {
				mon, local := s.monitorFor(g)
				if mon == nil {
					fmt.Fprintf(w, "DEV %d unmonitored 0.000000\n", g)
					continue
				}
				fmt.Fprintf(w, "DEV %d %s %.6f\n", g, mon.State(local), mon.EWMA(local))
			}
			fmt.Fprintln(w)
		case "TENANT":
			s.handleTenantText(w, fields)
		case "QUIT":
			w.Flush()
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
		// Batch responses to pipelined clients: only pay the write
		// syscall when the read buffer holds no further complete request,
		// so a deep pipeline costs one flush per burst instead of one per
		// request.
		if !moreRequestsBuffered(r) {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// handleTenantText serves the TENANT admin verb: SET installs or updates
// one tenant with no engine pause (the gate swaps an atomic snapshot), GET
// reports the spec plus cross-shard aggregated gauges, DEL deactivates the
// slot. Reconfiguration is a cold path; fmt is fine here.
func (s *Server) handleTenantText(w io.Writer, fields []string) {
	if len(fields) < 3 {
		fmt.Fprintln(w, "ERR usage: TENANT SET <name> <reserve> <limit> <weight> | GET <name> | DEL <name>")
		return
	}
	name := fields[2]
	switch strings.ToUpper(fields[1]) {
	case "SET":
		if len(fields) != 6 {
			fmt.Fprintln(w, "ERR usage: TENANT SET <name> <reserve> <limit> <weight>")
			return
		}
		reserve, err1 := strconv.Atoi(fields[3])
		limit, err2 := strconv.Atoi(fields[4])
		weight, err3 := strconv.ParseFloat(fields[5], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			fmt.Fprintln(w, "ERR bad TENANT SET arguments")
			return
		}
		idx, err := s.arr.TenantSet(admission.TenantSpec{
			Name: name, Reserve: reserve, Limit: limit, Weight: weight,
		})
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintf(w, "OK %d\n", idx)
	case "GET":
		if len(fields) != 3 {
			fmt.Fprintln(w, "ERR usage: TENANT GET <name>")
			return
		}
		tc, ok := s.arr.TenantGet(name)
		if !ok {
			fmt.Fprintf(w, "ERR %s\n", errUnknownTenant)
			return
		}
		fmt.Fprintf(w, "TENANT %s index=%d reserve=%d limit=%d weight=%g admitted=%d rejected=%d overlimit=%d deficit=%d\n",
			tc.Spec.Name, tc.Index, tc.Spec.Reserve, tc.Spec.Limit, tc.Spec.Weight,
			tc.Admitted, tc.Rejected, tc.OverLimit, tc.Deficit)
	case "DEL":
		if len(fields) != 3 {
			fmt.Fprintln(w, "ERR usage: TENANT DEL <name>")
			return
		}
		if err := s.arr.TenantDel(name); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintln(w, "OK deleted")
	default:
		fmt.Fprintf(w, "ERR unknown TENANT subcommand %q\n", fields[1])
	}
}

// moreRequestsBuffered reports whether the reader already holds another
// complete (newline-terminated) request. A buffered partial line does not
// count: the next readLine could block on the network, and responses must
// be flushed before that.
func moreRequestsBuffered(r *bufio.Reader) bool {
	n := r.Buffered()
	if n == 0 {
		return false
	}
	b, err := r.Peek(n)
	if err != nil {
		return false
	}
	return bytes.IndexByte(b, '\n') >= 0
}

// appendOutcome formats the OK response without fmt (the hot path).
func appendOutcome(buf []byte, out core.Outcome) []byte {
	buf = append(buf, "OK "...)
	buf = strconv.AppendInt(buf, int64(out.Device), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, out.Delay, 'f', 6, 64)
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, out.Response(), 'f', 6, 64)
	buf = append(buf, ' ')
	buf = strconv.AppendBool(buf, out.Delayed)
	return append(buf, '\n')
}

// Client is a minimal client for the protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a qosnet server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	fmt.Fprintln(c.conn, "QUIT")
	return c.conn.Close()
}

// ReadResult is the outcome of a READ request.
type ReadResult struct {
	Device   int
	DelayMS  float64
	RespMS   float64
	Delayed  bool
	Rejected bool
	// OverLimit marks a rejection by the tenant gate's per-window arrival
	// limit (carried by the binary protocol's status bits; the text
	// REJECTED line does not distinguish it).
	OverLimit bool
}

func (c *Client) roundTrip(req string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, req); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR") {
		return "", errors.New(line)
	}
	return line, nil
}

// Read submits a block read.
func (c *Client) Read(block int64) (ReadResult, error) {
	return c.submitVerb(fmt.Sprintf("READ %d", block))
}

// ReadTenant submits a block read under a named tenant's QoS policy. An
// unknown tenant name is an error, not a silent untenanted read.
func (c *Client) ReadTenant(block int64, tenant string) (ReadResult, error) {
	return c.submitVerb(fmt.Sprintf("READ %d %s", block, tenant))
}

// WriteTenant submits a block write under a named tenant's QoS policy.
func (c *Client) WriteTenant(block int64, tenant string) (ReadResult, error) {
	return c.submitVerb(fmt.Sprintf("WRITE %d %s", block, tenant))
}

func (c *Client) submitVerb(req string) (ReadResult, error) {
	line, err := c.roundTrip(req)
	if err != nil {
		return ReadResult{}, err
	}
	if line == "REJECTED" {
		return ReadResult{Rejected: true}, nil
	}
	var r ReadResult
	var delayed string
	if _, err := fmt.Sscanf(line, "OK %d %f %f %s", &r.Device, &r.DelayMS, &r.RespMS, &delayed); err != nil {
		return ReadResult{}, fmt.Errorf("qosnet: bad response %q: %w", line, err)
	}
	r.Delayed = delayed == "true"
	return r, nil
}

// TenantInfo is a parsed TENANT GET response: one tenant's policy plus
// its admission gauges aggregated across every shard.
type TenantInfo struct {
	Name      string
	Index     int
	Reserve   int
	Limit     int
	Weight    float64
	Admitted  int64
	Rejected  int64
	OverLimit int64
	Deficit   int64
}

// TenantSet installs or updates one tenant's QoS policy live (admin) and
// returns its stable 1-based index.
func (c *Client) TenantSet(name string, reserve, limit int, weight float64) (int, error) {
	line, err := c.roundTrip(fmt.Sprintf("TENANT SET %s %d %d %g", name, reserve, limit, weight))
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(line)
	if len(fields) != 2 || fields[0] != "OK" {
		return 0, fmt.Errorf("qosnet: bad TENANT SET response %q", line)
	}
	idx, err := strconv.Atoi(fields[1])
	if err != nil || idx < 1 {
		return 0, fmt.Errorf("qosnet: bad TENANT SET response %q", line)
	}
	return idx, nil
}

// TenantGet fetches one tenant's policy and aggregated gauges (admin).
func (c *Client) TenantGet(name string) (TenantInfo, error) {
	line, err := c.roundTrip(fmt.Sprintf("TENANT GET %s", name))
	if err != nil {
		return TenantInfo{}, err
	}
	fields := strings.Fields(line)
	if len(fields) != 10 || fields[0] != "TENANT" {
		return TenantInfo{}, fmt.Errorf("qosnet: bad TENANT GET response %q", line)
	}
	ti := TenantInfo{Name: fields[1]}
	for _, f := range fields[2:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return TenantInfo{}, fmt.Errorf("qosnet: bad TENANT GET field %q", f)
		}
		var perr error
		switch k {
		case "weight":
			ti.Weight, perr = strconv.ParseFloat(v, 64)
		case "index", "reserve", "limit":
			var n int
			if n, perr = strconv.Atoi(v); perr == nil {
				switch k {
				case "index":
					ti.Index = n
				case "reserve":
					ti.Reserve = n
				case "limit":
					ti.Limit = n
				}
			}
		default:
			var n int64
			if n, perr = strconv.ParseInt(v, 10, 64); perr == nil {
				switch k {
				case "admitted":
					ti.Admitted = n
				case "rejected":
					ti.Rejected = n
				case "overlimit":
					ti.OverLimit = n
				case "deficit":
					ti.Deficit = n
				default:
					perr = fmt.Errorf("unknown field")
				}
			}
		}
		if perr != nil {
			return TenantInfo{}, fmt.Errorf("qosnet: bad TENANT GET field %q", f)
		}
	}
	return ti, nil
}

// TenantDel deactivates a tenant (admin); its index stays reserved.
func (c *Client) TenantDel(name string) error {
	line, err := c.roundTrip(fmt.Sprintf("TENANT DEL %s", name))
	if err != nil {
		return err
	}
	if line != "OK deleted" {
		return fmt.Errorf("qosnet: bad TENANT DEL response %q", line)
	}
	return nil
}

// Map asks where a data block lives.
func (c *Client) Map(block int64) (designBlock int, devices []int, err error) {
	line, err := c.roundTrip(fmt.Sprintf("MAP %d", block))
	if err != nil {
		return 0, nil, err
	}
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "MAP" {
		return 0, nil, fmt.Errorf("qosnet: bad MAP response %q", line)
	}
	db, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, nil, err
	}
	for _, f := range fields[2:] {
		d, err := strconv.Atoi(f)
		if err != nil {
			return 0, nil, err
		}
		devices = append(devices, d)
	}
	return db, devices, nil
}

// Metrics fetches the Prometheus-style exposition text.
func (c *Client) Metrics() (string, error) {
	if _, err := fmt.Fprintln(c.conn, "METRICS"); err != nil {
		return "", err
	}
	var b strings.Builder
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return "", err
		}
		if strings.TrimSpace(line) == "" {
			return b.String(), nil
		}
		b.WriteString(line)
	}
}

// ShardQ fetches the per-shard statistical violation-probability estimates
// (the flashqos_shard_q_estimate gauge). The slice is indexed by shard;
// every value is 0 on a deterministic (ε = 0) server. Each shard's gauge
// reads the same published Q snapshot its admissions decide against, so
// this is a lock-free observation of live controllers, not a stale cache.
func (c *Client) ShardQ() ([]float64, error) {
	metrics, err := c.Metrics()
	if err != nil {
		return nil, err
	}
	return parseShardQ(metrics)
}

// parseShardQ extracts flashqos_shard_q_estimate{shard="i"} series from
// exposition text. Parsed strictly: every series must carry a well-formed
// shard label and a probability value, shard indices must tile 0..n-1
// exactly once, and a metrics page with no such series is an error (old
// server), so callers cannot mistake "not exported" for "Q is zero".
func parseShardQ(metrics string) ([]float64, error) {
	const prefix = `flashqos_shard_q_estimate{shard="`
	byShard := map[int]float64{}
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		quote := strings.Index(rest, `"`)
		if quote < 0 || !strings.HasPrefix(rest[quote:], `"} `) {
			return nil, fmt.Errorf("qosnet: bad shard Q series %q", line)
		}
		shard, err := strconv.Atoi(rest[:quote])
		if err != nil || shard < 0 {
			return nil, fmt.Errorf("qosnet: bad shard index in %q", line)
		}
		val := rest[quote+len(`"} `):]
		q, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || !(q >= 0 && q <= 1) || len(strings.Fields(val)) != 1 { // !(…) also rejects NaN
			return nil, fmt.Errorf("qosnet: bad shard Q value in %q", line)
		}
		if _, dup := byShard[shard]; dup {
			return nil, fmt.Errorf("qosnet: duplicate shard Q series for shard %d", shard)
		}
		byShard[shard] = q
	}
	if len(byShard) == 0 {
		return nil, fmt.Errorf("qosnet: no flashqos_shard_q_estimate series in metrics")
	}
	qs := make([]float64, len(byShard))
	for shard, q := range byShard {
		if shard >= len(qs) {
			return nil, fmt.Errorf("qosnet: shard Q indices not contiguous (saw shard %d among %d series)", shard, len(byShard))
		}
		qs[shard] = q
	}
	return qs, nil
}

// Stats fetches server counters. The response is parsed strictly: exactly
// four fields after the STATS tag, nothing trailing (fmt.Sscanf would
// silently accept garbage after the last number).
func (c *Client) Stats() (requests, delayed, rejected int64, avgDelayMS float64, err error) {
	line, err := c.roundTrip("STATS")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	bad := func() (int64, int64, int64, float64, error) {
		return 0, 0, 0, 0, fmt.Errorf("qosnet: bad STATS response %q", line)
	}
	fields := strings.Fields(line)
	if len(fields) != 5 || fields[0] != "STATS" {
		return bad()
	}
	ints := [3]int64{}
	for i := range ints {
		v, err := strconv.ParseInt(fields[i+1], 10, 64)
		if err != nil {
			return bad()
		}
		ints[i] = v
	}
	avg, err := strconv.ParseFloat(fields[4], 64)
	if err != nil {
		return bad()
	}
	return ints[0], ints[1], ints[2], avg, nil
}

// Fail takes a device out of service (admin). Returns the device's new
// state ("failed") and the server's effective admission limit S'.
func (c *Client) Fail(device int) (state string, effectiveS int, err error) {
	return c.adminVerb(fmt.Sprintf("FAIL %d", device))
}

// Recover brings a failed device back (admin). The returned state is
// "rebuilding" when a resilver is scheduled, "healthy" otherwise.
func (c *Client) Recover(device int) (state string, effectiveS int, err error) {
	return c.adminVerb(fmt.Sprintf("RECOVER %d", device))
}

func (c *Client) adminVerb(req string) (state string, effectiveS int, err error) {
	line, err := c.roundTrip(req)
	if err != nil {
		return "", 0, err
	}
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "OK" {
		return "", 0, fmt.Errorf("qosnet: bad response %q", line)
	}
	s, err := strconv.Atoi(fields[2])
	if err != nil {
		return "", 0, fmt.Errorf("qosnet: bad response %q", line)
	}
	return fields[1], s, nil
}

// DeviceHealth is one device's line of a HEALTH report.
type DeviceHealth struct {
	Device int
	State  string
	EWMAMS float64
}

// HealthStatus is a parsed HEALTH report.
type HealthStatus struct {
	Devices        int
	Alive          int
	EffectiveS     int
	FullS          int
	RebuildPending int
	RebuildDone    int64
	States         []DeviceHealth
}

// Health fetches the device-health report.
func (c *Client) Health() (HealthStatus, error) {
	line, err := c.roundTrip("HEALTH")
	if err != nil {
		return HealthStatus{}, err
	}
	var h HealthStatus
	fields := strings.Fields(line)
	if len(fields) != 7 || fields[0] != "HEALTH" {
		return HealthStatus{}, fmt.Errorf("qosnet: bad HEALTH response %q", line)
	}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return HealthStatus{}, fmt.Errorf("qosnet: bad HEALTH field %q", f)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return HealthStatus{}, fmt.Errorf("qosnet: bad HEALTH field %q", f)
		}
		switch k {
		case "devices":
			h.Devices = int(n)
		case "alive":
			h.Alive = int(n)
		case "s":
			h.EffectiveS = int(n)
		case "s_full":
			h.FullS = int(n)
		case "rebuild_pending":
			h.RebuildPending = int(n)
		case "rebuild_done":
			h.RebuildDone = n
		default:
			return HealthStatus{}, fmt.Errorf("qosnet: unknown HEALTH field %q", f)
		}
	}
	for {
		raw, err := c.r.ReadString('\n')
		if err != nil {
			return HealthStatus{}, err
		}
		raw = strings.TrimSpace(raw)
		if raw == "" {
			return h, nil
		}
		df := strings.Fields(raw)
		if len(df) != 4 || df[0] != "DEV" {
			return HealthStatus{}, fmt.Errorf("qosnet: bad DEV line %q", raw)
		}
		dev, err1 := strconv.Atoi(df[1])
		ewma, err2 := strconv.ParseFloat(df[3], 64)
		if err1 != nil || err2 != nil {
			return HealthStatus{}, fmt.Errorf("qosnet: bad DEV line %q", raw)
		}
		h.States = append(h.States, DeviceHealth{Device: dev, State: df[2], EWMAMS: ewma})
	}
}
