// Package qosnet exposes a QoS system over TCP with a line-based text
// protocol, modelling the storage-cloud deployment the paper motivates
// (§I): tenants submit block reads to a shared flash array and receive the
// admission outcome and guaranteed response time.
//
// Protocol (one request per line, space-separated):
//
//	READ <block>        → OK <device> <delay-ms> <response-ms> <delayed>
//	                    | REJECTED
//	WRITE <block>       → same responses; updates all replicas
//	MAP <block>         → MAP <designBlock> <dev0> <dev1> ...
//	STATS               → STATS <requests> <delayed> <rejected> <avgDelay-ms>
//	METRICS             → Prometheus-style text exposition, blank-line terminated
//	QUIT                → connection closes
//
// Arrival times are virtual: milliseconds since the server started, read
// from a monotonic clock, so the simulated array timeline matches real
// request interleaving.
//
// # Concurrency model
//
// Connections are handled by one goroutine each and requests flow through a
// concurrent pipeline with no global serialization:
//
//   - Admission runs through core.ConcurrentSystem: per-interval window
//     counts are sharded atomic counters reserved with a CAS loop, so
//     submissions only touch shared memory for the window they land in,
//     and the per-window count never exceeds S. Only the device scheduler
//     (picking the earliest-finishing replica and marking it busy) sits
//     behind a short mutex, because device next-free times are one global
//     resource; see the core.ConcurrentSystem docs for why statistical
//     mode (ε > 0) additionally serializes admission itself.
//   - Server counters (requests/delayed/rejected/delay-sum) and the
//     virtual clock watermark are lock-free atomics; STATS and METRICS
//     read them without blocking request handlers.
//   - Each connection owns its bufio reader/writer and response scratch
//     buffer, so connections never contend on I/O state.
//
// Robustness controls (Options): a cap on concurrent connections (excess
// connections receive "ERR server busy" and are closed), a per-line read
// deadline, and a maximum request-line length (longer lines are discarded
// and answered with "ERR line too long"). Shutdown drains in-flight
// connections for a configurable timeout before force-closing them.
package qosnet

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flashqos/internal/core"
)

// Default robustness limits (see Options).
const (
	DefaultMaxLineBytes = 4096
)

// ErrForcedClose is returned by Shutdown when the drain timeout expired
// and remaining connections were force-closed.
var ErrForcedClose = errors.New("qosnet: drain timeout expired, connections force-closed")

// Options configures the server's backpressure and robustness controls.
// The zero value means: unlimited connections, no read deadline, and
// DefaultMaxLineBytes per request line.
type Options struct {
	// MaxConns caps concurrent connections; excess connections are sent
	// "ERR server busy" and closed. 0 means unlimited.
	MaxConns int
	// ReadTimeout is the per-line read deadline; a connection idle longer
	// than this is closed. 0 means no deadline.
	ReadTimeout time.Duration
	// MaxLineBytes caps the request line length; longer lines are
	// discarded and answered with "ERR line too long". 0 means
	// DefaultMaxLineBytes.
	MaxLineBytes int
}

// Server serves a core.System over TCP. Create with NewServer (or
// NewServerOpts), then Serve.
type Server struct {
	sys   *core.ConcurrentSystem
	start time.Time
	opts  Options

	lastT    atomic.Uint64 // float64 bits: virtual-clock watermark
	requests atomic.Int64
	delayed  atomic.Int64
	rejected atomic.Int64
	delaySum atomic.Uint64 // float64 bits, CAS-accumulated
	busy     atomic.Int64  // connections rejected by the MaxConns cap

	lis      net.Listener
	closed   chan struct{}
	connWG   sync.WaitGroup
	closeOne sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	sem    chan struct{} // MaxConns semaphore (nil = unlimited)
}

// NewServer wraps a QoS system with default Options. The system must not
// be used concurrently elsewhere.
func NewServer(sys *core.System) *Server {
	return NewServerOpts(sys, Options{})
}

// NewServerOpts wraps a QoS system with explicit robustness options.
func NewServerOpts(sys *core.System, opts Options) *Server {
	if opts.MaxLineBytes <= 0 {
		opts.MaxLineBytes = DefaultMaxLineBytes
	}
	s := &Server{
		sys:    core.NewConcurrent(sys),
		start:  time.Now(),
		opts:   opts,
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	if opts.MaxConns > 0 {
		s.sem = make(chan struct{}, opts.MaxConns)
	}
	return s
}

// System returns the concurrent admission front-end (for inspection and
// tests).
func (s *Server) System() *core.ConcurrentSystem { return s.sys }

// Listen starts listening on addr (e.g. "127.0.0.1:0") and returns the
// bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.lis = lis
	return lis.Addr(), nil
}

// Serve accepts connections until Close/Shutdown. Call after Listen.
func (s *Server) Serve() error {
	if s.lis == nil {
		return errors.New("qosnet: Serve before Listen")
	}
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.closed:
				s.connWG.Wait()
				return nil
			default:
				return err
			}
		}
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
			default:
				// Over the connection cap: refuse quickly instead of
				// queueing unbounded work.
				s.busy.Add(1)
				conn.SetWriteDeadline(time.Now().Add(time.Second))
				io.WriteString(conn, "ERR server busy\n")
				conn.Close()
				continue
			}
		}
		s.track(conn, true)
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer s.track(conn, false)
			if s.sem != nil {
				defer func() { <-s.sem }()
			}
			s.handle(conn)
		}()
	}
}

func (s *Server) track(conn net.Conn, add bool) {
	s.connMu.Lock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
	s.connMu.Unlock()
}

// Close stops the listener. In-flight connections keep being served; use
// Shutdown to wait for them (with an optional drain timeout).
func (s *Server) Close() {
	s.closeOne.Do(func() {
		close(s.closed)
		if s.lis != nil {
			s.lis.Close()
		}
	})
}

// Shutdown stops the listener and waits for in-flight connections to
// finish. If drain > 0 and connections are still open when it expires,
// they are force-closed and ErrForcedClose is returned. drain <= 0 waits
// indefinitely.
func (s *Server) Shutdown(drain time.Duration) error {
	s.Close()
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	if drain <= 0 {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-time.After(drain):
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		<-done
		return ErrForcedClose
	}
}

// now returns the virtual arrival time in ms, forced non-decreasing across
// all connections with a CAS loop on the watermark — safe to call from any
// goroutine.
func (s *Server) now() float64 {
	t := float64(time.Since(s.start)) / float64(time.Millisecond)
	for {
		old := s.lastT.Load()
		if last := math.Float64frombits(old); t <= last {
			return last
		}
		if s.lastT.CompareAndSwap(old, math.Float64bits(t)) {
			return t
		}
	}
}

// addDelay accumulates a delay into the float64 sum with a CAS loop.
func (s *Server) addDelay(d float64) {
	for {
		old := s.delaySum.Load()
		v := math.Float64frombits(old) + d
		if s.delaySum.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (s *Server) delaySumMS() float64 { return math.Float64frombits(s.delaySum.Load()) }

// readLine reads one newline-terminated line of at most max bytes. An
// over-long line is discarded through the next newline and reported via
// tooLong. A final unterminated line before EOF is returned as a line; the
// next call then reports io.EOF.
func readLine(r *bufio.Reader, max int) (line []byte, tooLong bool, err error) {
	var buf []byte
	for {
		frag, err := r.ReadSlice('\n')
		buf = append(buf, frag...)
		if err == nil {
			break
		}
		if err != bufio.ErrBufferFull {
			if err == io.EOF && len(buf) > 0 && !tooLongLen(buf, max) {
				return buf, false, nil
			}
			return nil, tooLongLen(buf, max), err
		}
		if tooLongLen(buf, max) {
			// Discard the remainder of the oversized line.
			for {
				_, err := r.ReadSlice('\n')
				if err == nil || err != bufio.ErrBufferFull {
					return nil, true, err
				}
			}
		}
	}
	if tooLongLen(buf, max) {
		return nil, true, nil
	}
	return buf, false, nil
}

func tooLongLen(buf []byte, max int) bool {
	n := len(buf)
	if n > 0 && buf[n-1] == '\n' {
		n--
		if n > 0 && buf[n-1] == '\r' {
			n--
		}
	}
	return n > max
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 4096)
	w := bufio.NewWriter(conn)
	scratch := make([]byte, 0, 128) // per-connection response buffer
	for {
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		raw, tooLong, err := readLine(r, s.opts.MaxLineBytes)
		if tooLong {
			fmt.Fprintln(w, "ERR line too long")
			if w.Flush() != nil || err != nil {
				return
			}
			continue
		}
		if err != nil {
			return
		}
		line := strings.TrimSpace(string(raw))
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "READ", "WRITE":
			if len(fields) != 2 {
				fmt.Fprintf(w, "ERR usage: %s <block>\n", strings.ToUpper(fields[0]))
				break
			}
			block, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR bad block: %v\n", err)
				break
			}
			var out core.Outcome
			if strings.ToUpper(fields[0]) == "WRITE" {
				out = s.sys.SubmitWrite(s.now(), block)
			} else {
				out = s.sys.Submit(s.now(), block)
			}
			s.requests.Add(1)
			if out.Rejected {
				s.rejected.Add(1)
			} else if out.Delayed {
				s.delayed.Add(1)
				s.addDelay(out.Delay)
			}
			if out.Rejected {
				fmt.Fprintln(w, "REJECTED")
			} else {
				scratch = appendOutcome(scratch[:0], out)
				w.Write(scratch)
			}
		case "MAP":
			if len(fields) != 2 {
				fmt.Fprintln(w, "ERR usage: MAP <block>")
				break
			}
			block, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR bad block: %v\n", err)
				break
			}
			db := s.sys.DesignBlock(block)
			reps := s.sys.Replicas(block)
			scratch = append(scratch[:0], "MAP "...)
			scratch = strconv.AppendInt(scratch, int64(db), 10)
			for _, d := range reps {
				scratch = append(scratch, ' ')
				scratch = strconv.AppendInt(scratch, int64(d), 10)
			}
			scratch = append(scratch, '\n')
			w.Write(scratch)
		case "STATS":
			req, del, rej := s.requests.Load(), s.delayed.Load(), s.rejected.Load()
			avg := 0.0
			if del > 0 {
				avg = s.delaySumMS() / float64(del)
			}
			fmt.Fprintf(w, "STATS %d %d %d %.6f\n", req, del, rej, avg)
		case "METRICS":
			fmt.Fprintf(w, "# TYPE flashqos_requests_total counter\n")
			fmt.Fprintf(w, "flashqos_requests_total %d\n", s.requests.Load())
			fmt.Fprintf(w, "# TYPE flashqos_delayed_total counter\n")
			fmt.Fprintf(w, "flashqos_delayed_total %d\n", s.delayed.Load())
			fmt.Fprintf(w, "# TYPE flashqos_rejected_total counter\n")
			fmt.Fprintf(w, "flashqos_rejected_total %d\n", s.rejected.Load())
			fmt.Fprintf(w, "# TYPE flashqos_delay_ms_sum counter\n")
			fmt.Fprintf(w, "flashqos_delay_ms_sum %.6f\n", s.delaySumMS())
			fmt.Fprintf(w, "# TYPE flashqos_busy_rejected_total counter\n")
			fmt.Fprintf(w, "flashqos_busy_rejected_total %d\n", s.busy.Load())
			fmt.Fprintf(w, "# TYPE flashqos_admission_limit gauge\n")
			fmt.Fprintf(w, "flashqos_admission_limit %d\n", s.sys.S())
			fmt.Fprintf(w, "# TYPE flashqos_q_estimate gauge\n")
			fmt.Fprintf(w, "flashqos_q_estimate %.6f\n", s.sys.Q())
			fmt.Fprintln(w)
		case "QUIT":
			w.Flush()
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
		// Batch responses to pipelined clients: only pay the write
		// syscall when the read buffer holds no further complete request,
		// so a deep pipeline costs one flush per burst instead of one per
		// request.
		if !moreRequestsBuffered(r) {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// moreRequestsBuffered reports whether the reader already holds another
// complete (newline-terminated) request. A buffered partial line does not
// count: the next readLine could block on the network, and responses must
// be flushed before that.
func moreRequestsBuffered(r *bufio.Reader) bool {
	n := r.Buffered()
	if n == 0 {
		return false
	}
	b, err := r.Peek(n)
	if err != nil {
		return false
	}
	return bytes.IndexByte(b, '\n') >= 0
}

// appendOutcome formats the OK response without fmt (the hot path).
func appendOutcome(buf []byte, out core.Outcome) []byte {
	buf = append(buf, "OK "...)
	buf = strconv.AppendInt(buf, int64(out.Device), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, out.Delay, 'f', 6, 64)
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, out.Response(), 'f', 6, 64)
	buf = append(buf, ' ')
	buf = strconv.AppendBool(buf, out.Delayed)
	return append(buf, '\n')
}

// Client is a minimal client for the protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a qosnet server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	fmt.Fprintln(c.conn, "QUIT")
	return c.conn.Close()
}

// ReadResult is the outcome of a READ request.
type ReadResult struct {
	Device   int
	DelayMS  float64
	RespMS   float64
	Delayed  bool
	Rejected bool
}

func (c *Client) roundTrip(req string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, req); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR") {
		return "", errors.New(line)
	}
	return line, nil
}

// Read submits a block read.
func (c *Client) Read(block int64) (ReadResult, error) {
	line, err := c.roundTrip(fmt.Sprintf("READ %d", block))
	if err != nil {
		return ReadResult{}, err
	}
	if line == "REJECTED" {
		return ReadResult{Rejected: true}, nil
	}
	var r ReadResult
	var delayed string
	if _, err := fmt.Sscanf(line, "OK %d %f %f %s", &r.Device, &r.DelayMS, &r.RespMS, &delayed); err != nil {
		return ReadResult{}, fmt.Errorf("qosnet: bad response %q: %w", line, err)
	}
	r.Delayed = delayed == "true"
	return r, nil
}

// Map asks where a data block lives.
func (c *Client) Map(block int64) (designBlock int, devices []int, err error) {
	line, err := c.roundTrip(fmt.Sprintf("MAP %d", block))
	if err != nil {
		return 0, nil, err
	}
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "MAP" {
		return 0, nil, fmt.Errorf("qosnet: bad MAP response %q", line)
	}
	db, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, nil, err
	}
	for _, f := range fields[2:] {
		d, err := strconv.Atoi(f)
		if err != nil {
			return 0, nil, err
		}
		devices = append(devices, d)
	}
	return db, devices, nil
}

// Metrics fetches the Prometheus-style exposition text.
func (c *Client) Metrics() (string, error) {
	if _, err := fmt.Fprintln(c.conn, "METRICS"); err != nil {
		return "", err
	}
	var b strings.Builder
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return "", err
		}
		if strings.TrimSpace(line) == "" {
			return b.String(), nil
		}
		b.WriteString(line)
	}
}

// Stats fetches server counters.
func (c *Client) Stats() (requests, delayed, rejected int64, avgDelayMS float64, err error) {
	line, err := c.roundTrip("STATS")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if _, err := fmt.Sscanf(line, "STATS %d %d %d %f", &requests, &delayed, &rejected, &avgDelayMS); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("qosnet: bad STATS response %q: %w", line, err)
	}
	return requests, delayed, rejected, avgDelayMS, nil
}
