package qosnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"flashqos/internal/wire"
)

// SubmitResult is one asynchronous READ/WRITE completion delivered by a
// BinaryClient. ID is the request ID the completion answered — under deep
// pipelining (and behind a proxy) completions arrive out of order.
type SubmitResult struct {
	ReadResult
	ID  uint64
	Err error
}

// BinaryClient speaks the framed binary protocol over one connection with
// arbitrarily deep pipelining: SubmitAsync/WriteAsync enqueue a request
// and return a channel, a demultiplexer goroutine routes completions back
// by request ID, and a flusher goroutine batches the pending writes into
// few syscalls. All methods are safe for concurrent use; the synchronous
// verbs (Read, Stats, Health, ...) are thin wrappers that wait for their
// own completion and may interleave with async traffic.
type BinaryClient struct {
	conn net.Conn

	wmu  sync.Mutex
	bw   *bufio.Writer
	wr   *wire.Writer
	werr error

	nextID atomic.Uint64

	pmu     sync.Mutex
	pending map[uint64]func(h wire.Header, payload []byte, err error)
	failed  error // terminal demux error; set once under pmu

	kick chan struct{}
	done chan struct{}
	once sync.Once
}

// DialBinary connects to a qosnet server's binary protocol.
func DialBinary(addr string) (*BinaryClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewBinaryClient(conn), nil
}

// NewBinaryClient speaks the binary protocol over an established
// connection (which it takes ownership of).
func NewBinaryClient(conn net.Conn) *BinaryClient {
	c := &BinaryClient{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, connReadBuf),
		pending: make(map[uint64]func(wire.Header, []byte, error)),
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	c.wr = wire.NewWriter(c.bw)
	go c.demux()
	go c.flusher()
	return c
}

// demux routes response frames to their registered completion callbacks.
// Callbacks run on this goroutine with a payload that is only valid for
// the duration of the call.
func (c *BinaryClient) demux() {
	rd := wire.NewReader(bufio.NewReaderSize(c.conn, connReadBuf), 0)
	for {
		h, payload, err := rd.Next()
		if err != nil {
			c.fail(fmt.Errorf("qosnet: binary connection lost: %w", err))
			return
		}
		c.pmu.Lock()
		cb := c.pending[h.ID]
		delete(c.pending, h.ID)
		c.pmu.Unlock()
		if cb != nil {
			cb(h, payload, nil)
		}
		// A frame with no waiter (e.g. the registration raced a server
		// error frame with ID 0) is dropped.
	}
}

// fail marks the client dead and completes every pending request with err.
func (c *BinaryClient) fail(err error) {
	c.pmu.Lock()
	if c.failed == nil {
		c.failed = err
	}
	stranded := c.pending
	c.pending = nil
	c.pmu.Unlock()
	c.once.Do(func() { close(c.done) })
	for _, cb := range stranded {
		cb(wire.Header{}, nil, err)
	}
}

// Err reports the terminal connection error, nil while the client is live.
func (c *BinaryClient) Err() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.failed
}

// Done is closed when the connection dies or Close is called.
func (c *BinaryClient) Done() <-chan struct{} { return c.done }

// flusher drains buffered writes after each enqueue kick. Because the
// kick channel has capacity one, a burst of enqueues between wakeups
// coalesces into a single flush — pipelined submissions cost one write
// syscall per burst, not one per request.
func (c *BinaryClient) flusher() {
	for {
		select {
		case <-c.done:
			return
		case <-c.kick:
			c.wmu.Lock()
			if c.werr == nil {
				if err := c.bw.Flush(); err != nil {
					c.werr = err
				}
			}
			c.wmu.Unlock()
		}
	}
}

func (c *BinaryClient) kickFlush() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// register installs a completion callback for id unless the client has
// already failed, in which case the terminal error is returned.
func (c *BinaryClient) register(id uint64, cb func(wire.Header, []byte, error)) error {
	c.pmu.Lock()
	if c.failed != nil {
		err := c.failed
		c.pmu.Unlock()
		return err
	}
	c.pending[id] = cb
	c.pmu.Unlock()
	return nil
}

func (c *BinaryClient) unregister(id uint64) {
	c.pmu.Lock()
	if c.pending != nil {
		delete(c.pending, id)
	}
	c.pmu.Unlock()
}

// send frames one request. The payload bytes are copied into the write
// buffer before send returns.
func (c *BinaryClient) send(op uint8, id uint64, payload []byte) error {
	return c.sendFlags(op, 0, id, payload)
}

// sendFlags is send with explicit header flags (FlagTenant marks a
// tenant-tagged submission payload).
func (c *BinaryClient) sendFlags(op, flags uint8, id uint64, payload []byte) error {
	c.wmu.Lock()
	if c.werr != nil {
		err := c.werr
		c.wmu.Unlock()
		return err
	}
	err := c.wr.WriteFrame(wire.Header{Opcode: op, Flags: flags, ID: id}, payload)
	if err != nil {
		c.werr = err
	}
	c.wmu.Unlock()
	if err != nil {
		return err
	}
	c.kickFlush()
	return nil
}

// Close sends OpQuit and closes the connection. In-flight requests
// complete with a connection-lost error.
func (c *BinaryClient) Close() error {
	c.wmu.Lock()
	if c.werr == nil {
		c.wr.WriteFrame(wire.Header{Opcode: wire.OpQuit, ID: c.nextID.Add(1)}, nil)
		c.bw.Flush()
	}
	c.wmu.Unlock()
	c.once.Do(func() { close(c.done) })
	return c.conn.Close()
}

// errorFrame converts an error response payload into an error.
func errorFrame(payload []byte) error { return errors.New("qosnet: server error: " + string(payload)) }

func fromWireOutcome(o wire.Outcome) ReadResult {
	return ReadResult{
		Device:    int(o.Device),
		DelayMS:   o.DelayMS,
		RespMS:    o.RespMS,
		Delayed:   o.Delayed(),
		Rejected:  o.Rejected(),
		OverLimit: o.OverLimit(),
	}
}

// SubmitAsync enqueues a pipelined block read. The returned channel
// (capacity 1) delivers exactly one completion; it never blocks the
// demultiplexer.
func (c *BinaryClient) SubmitAsync(block int64) <-chan SubmitResult {
	return c.submitAsync(wire.OpSubmit, block)
}

// WriteAsync enqueues a pipelined block write.
func (c *BinaryClient) WriteAsync(block int64) <-chan SubmitResult {
	return c.submitAsync(wire.OpWrite, block)
}

func (c *BinaryClient) submitAsync(op uint8, block int64) <-chan SubmitResult {
	return c.submitTenantAsync(op, block, 0)
}

// SubmitTenantAsync enqueues a pipelined block read under a tenant index
// (1-based, negotiated via TenantHello). The server answers an unknown
// index with an error frame, never a silent untenanted admission.
func (c *BinaryClient) SubmitTenantAsync(block int64, tenant int32) <-chan SubmitResult {
	return c.submitTenantAsync(wire.OpSubmit, block, tenant)
}

// WriteTenantAsync enqueues a pipelined block write under a tenant index.
func (c *BinaryClient) WriteTenantAsync(block int64, tenant int32) <-chan SubmitResult {
	return c.submitTenantAsync(wire.OpWrite, block, tenant)
}

// ReadTenant submits a tenant-tagged block read and waits for the outcome.
func (c *BinaryClient) ReadTenant(block int64, tenant int32) (ReadResult, error) {
	res := <-c.SubmitTenantAsync(block, tenant)
	return res.ReadResult, res.Err
}

// WriteTenant submits a tenant-tagged block write and waits for the outcome.
func (c *BinaryClient) WriteTenant(block int64, tenant int32) (ReadResult, error) {
	res := <-c.WriteTenantAsync(block, tenant)
	return res.ReadResult, res.Err
}

func (c *BinaryClient) submitTenantAsync(op uint8, block int64, tenant int32) <-chan SubmitResult {
	ch := make(chan SubmitResult, 1)
	id := c.nextID.Add(1)
	cb := func(h wire.Header, payload []byte, err error) {
		if err != nil {
			ch <- SubmitResult{ID: id, Err: err}
			return
		}
		if h.Flags&wire.FlagError != 0 {
			ch <- SubmitResult{ID: id, Err: errorFrame(payload)}
			return
		}
		o, _, perr := wire.ParseOutcome(payload)
		if perr != nil {
			ch <- SubmitResult{ID: id, Err: perr}
			return
		}
		ch <- SubmitResult{ID: id, ReadResult: fromWireOutcome(o)}
	}
	if err := c.register(id, cb); err != nil {
		ch <- SubmitResult{ID: id, Err: err}
		return ch
	}
	// The tenant tag adds a flag bit and a trailing uvarint; untenanted
	// requests keep the exact 8-byte payload and zero flags.
	var payload [13]byte
	var p []byte
	var flags uint8
	if tenant != 0 {
		p = wire.AppendTenantBlock(payload[:0], block, tenant)
		flags = wire.FlagTenant
	} else {
		p = wire.AppendBlock(payload[:0], block)
	}
	if err := c.sendFlags(op, flags, id, p); err != nil {
		c.unregister(id)
		ch <- SubmitResult{ID: id, Err: err}
	}
	return ch
}

// Call enqueues one framed request and invokes cb exactly once with the
// response header and payload (the payload is valid only for the duration
// of the call) or a terminal error. cb normally runs on the demultiplexer
// goroutine; on enqueue failure it runs on the caller's. This is the
// building block the proxy tier forwards frames with — no per-request
// round-trip serialization.
func (c *BinaryClient) Call(op uint8, payload []byte, cb func(h wire.Header, payload []byte, err error)) {
	c.CallFlags(op, 0, payload, cb)
}

// CallFlags is Call with explicit request header flags — the proxy uses it
// to forward tenant-tagged frames (FlagTenant) without re-encoding them.
func (c *BinaryClient) CallFlags(op, flags uint8, payload []byte, cb func(h wire.Header, payload []byte, err error)) {
	id := c.nextID.Add(1)
	if err := c.register(id, cb); err != nil {
		cb(wire.Header{}, nil, err)
		return
	}
	if err := c.sendFlags(op, flags, id, payload); err != nil {
		c.unregister(id)
		cb(wire.Header{}, nil, err)
	}
}

// do frames one synchronous request and waits for its completion,
// returning a copy of the response payload.
func (c *BinaryClient) do(op uint8, payload []byte) (wire.Header, []byte, error) {
	type result struct {
		h       wire.Header
		payload []byte
		err     error
	}
	ch := make(chan result, 1)
	id := c.nextID.Add(1)
	cb := func(h wire.Header, p []byte, err error) {
		if err != nil {
			ch <- result{err: err}
			return
		}
		cp := make([]byte, len(p))
		copy(cp, p)
		ch <- result{h: h, payload: cp}
	}
	if err := c.register(id, cb); err != nil {
		return wire.Header{}, nil, err
	}
	if err := c.send(op, id, payload); err != nil {
		c.unregister(id)
		return wire.Header{}, nil, err
	}
	res := <-ch
	if res.err != nil {
		return wire.Header{}, nil, res.err
	}
	if res.h.Flags&wire.FlagError != 0 {
		return res.h, nil, errorFrame(res.payload)
	}
	return res.h, res.payload, nil
}

// Put stores payload bytes under block and waits for the outcome: QoS
// admission prices the write and, when it admits, the server lands the
// bytes durably (group-commit fsynced) on every available replica before
// answering. Admission may reject the write instead — that comes back as
// a nil error with r.Rejected set and nothing stored, so callers must
// check r.Rejected before treating the payload as durable. Requires a
// server running with a data store (-backend pack).
func (c *BinaryClient) Put(block int64, payload []byte) (ReadResult, error) {
	buf := wire.GetBuffer()
	p := wire.AppendPutReq((*buf)[:0], block, payload)
	*buf = p[:0]
	_, resp, err := c.do(wire.OpPut, p)
	wire.PutBuffer(buf)
	if err != nil {
		return ReadResult{}, err
	}
	o, _, perr := wire.ParseOutcome(resp)
	if perr != nil {
		return ReadResult{}, perr
	}
	return fromWireOutcome(o), nil
}

// PutAsync enqueues a pipelined payload write; the returned channel
// (capacity 1) delivers exactly one completion. A completion with a nil
// Err and Rejected unset means the payload is durable per the Put
// contract; a rejected admission also completes with a nil Err, so check
// Rejected before counting the write as stored.
func (c *BinaryClient) PutAsync(block int64, payload []byte) <-chan SubmitResult {
	ch := make(chan SubmitResult, 1)
	id := c.nextID.Add(1)
	cb := func(h wire.Header, p []byte, err error) {
		if err != nil {
			ch <- SubmitResult{ID: id, Err: err}
			return
		}
		if h.Flags&wire.FlagError != 0 {
			ch <- SubmitResult{ID: id, Err: errorFrame(p)}
			return
		}
		o, _, perr := wire.ParseOutcome(p)
		if perr != nil {
			ch <- SubmitResult{ID: id, Err: perr}
			return
		}
		ch <- SubmitResult{ID: id, ReadResult: fromWireOutcome(o)}
	}
	if err := c.register(id, cb); err != nil {
		ch <- SubmitResult{ID: id, Err: err}
		return ch
	}
	buf := wire.GetBuffer()
	p := wire.AppendPutReq((*buf)[:0], block, payload)
	*buf = p[:0]
	err := c.send(wire.OpPut, id, p)
	wire.PutBuffer(buf)
	if err != nil {
		c.unregister(id)
		ch <- SubmitResult{ID: id, Err: err}
	}
	return ch
}

// Get fetches block's payload bytes and waits for the outcome. data is
// nil when admission rejected the request (r.Rejected); a missing block
// or an all-replicas-faulted read comes back as an error.
func (c *BinaryClient) Get(block int64) (r ReadResult, data []byte, err error) {
	_, resp, err := c.do(wire.OpGet, wire.AppendBlock(nil, block))
	if err != nil {
		return ReadResult{}, nil, err
	}
	o, data, perr := wire.ParseGetResp(resp)
	if perr != nil {
		return ReadResult{}, nil, perr
	}
	r = fromWireOutcome(o)
	if r.Rejected {
		return r, nil, nil
	}
	// data aliases the response copy `do` made for us — safe to hand out.
	return r, data, nil
}

// Read submits a block read and waits for the outcome.
func (c *BinaryClient) Read(block int64) (ReadResult, error) {
	res := <-c.SubmitAsync(block)
	return res.ReadResult, res.Err
}

// Write submits a block write and waits for the outcome.
func (c *BinaryClient) Write(block int64) (ReadResult, error) {
	res := <-c.WriteAsync(block)
	return res.ReadResult, res.Err
}

// Batch submits simultaneous reads for joint admission and returns the
// outcomes in input order.
func (c *BinaryClient) Batch(blocks []int64) ([]ReadResult, error) {
	_, payload, err := c.do(wire.OpBatch, wire.AppendBatchReq(nil, blocks))
	if err != nil {
		return nil, err
	}
	outs, err := wire.ParseBatchResp(payload, nil)
	if err != nil {
		return nil, err
	}
	rs := make([]ReadResult, len(outs))
	for i, o := range outs {
		rs[i] = fromWireOutcome(o)
	}
	return rs, nil
}

// Map asks where a data block lives.
func (c *BinaryClient) Map(block int64) (designBlock int, devices []int, err error) {
	_, payload, err := c.do(wire.OpMap, wire.AppendBlock(nil, block))
	if err != nil {
		return 0, nil, err
	}
	m, err := wire.ParseMapResp(payload)
	if err != nil {
		return 0, nil, err
	}
	devices = make([]int, len(m.Devices))
	for i, d := range m.Devices {
		devices[i] = int(d)
	}
	return int(m.DesignBlock), devices, nil
}

// Stats fetches the server counters.
func (c *BinaryClient) Stats() (requests, delayed, rejected int64, avgDelayMS float64, err error) {
	_, payload, err := c.do(wire.OpStats, nil)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	st, err := wire.ParseStats(payload)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return st.Requests, st.Delayed, st.Rejected, st.AvgDelayMS, nil
}

// Metrics fetches the Prometheus-style exposition text.
func (c *BinaryClient) Metrics() (string, error) {
	_, payload, err := c.do(wire.OpMetrics, nil)
	if err != nil {
		return "", err
	}
	return string(payload), nil
}

// Fail takes a device out of service (admin).
func (c *BinaryClient) Fail(device int) (state string, effectiveS int, err error) {
	return c.admin(wire.OpFail, device)
}

// Recover brings a failed device back (admin).
func (c *BinaryClient) Recover(device int) (state string, effectiveS int, err error) {
	return c.admin(wire.OpRecover, device)
}

func (c *BinaryClient) admin(op uint8, device int) (string, int, error) {
	if device < 0 {
		return "", 0, fmt.Errorf("qosnet: bad device %d", device)
	}
	_, payload, err := c.do(op, wire.AppendDevice(nil, uint32(device)))
	if err != nil {
		return "", 0, err
	}
	a, err := wire.ParseAdminResp(payload)
	if err != nil {
		return "", 0, err
	}
	return a.State, int(a.EffectiveS), nil
}

// Health fetches the device-health report.
func (c *BinaryClient) Health() (HealthStatus, error) {
	_, payload, err := c.do(wire.OpHealth, nil)
	if err != nil {
		return HealthStatus{}, err
	}
	h, err := wire.ParseHealth(payload)
	if err != nil {
		return HealthStatus{}, err
	}
	hs := HealthStatus{
		Devices:        int(h.Devices),
		Alive:          int(h.Alive),
		EffectiveS:     int(h.EffectiveS),
		FullS:          int(h.FullS),
		RebuildPending: int(h.RebuildPending),
		RebuildDone:    h.RebuildDone,
	}
	for _, d := range h.States {
		hs.States = append(hs.States, DeviceHealth{
			Device: int(d.Device),
			State:  d.State,
			EWMAMS: d.EWMAMS,
		})
	}
	return hs, nil
}

// ShardStats fetches the per-shard admission gauges.
func (c *BinaryClient) ShardStats() ([]wire.ShardGauge, error) {
	_, payload, err := c.do(wire.OpShardStats, nil)
	if err != nil {
		return nil, err
	}
	return wire.ParseShardStats(payload)
}

// TenantHello resolves tenant names to their stable 1-based indices, in
// request order; an unknown name resolves to 0. Indices — not names — tag
// the per-request hot path (SubmitTenantAsync), so clients hello once per
// connection and cache the mapping.
func (c *BinaryClient) TenantHello(names []string) ([]int32, error) {
	_, payload, err := c.do(wire.OpTenantHello, wire.AppendTenantHelloReq(nil, names))
	if err != nil {
		return nil, err
	}
	idx, perr := wire.ParseTenantHelloResp(payload)
	if perr != nil {
		return nil, perr
	}
	if len(idx) != len(names) {
		return nil, fmt.Errorf("qosnet: tenant hello answered %d of %d names", len(idx), len(names))
	}
	return idx, nil
}

// TenantSet installs or updates one tenant's QoS policy live (admin) and
// returns its stable 1-based index.
func (c *BinaryClient) TenantSet(spec wire.TenantSpec) (int32, error) {
	_, payload, err := c.do(wire.OpTenant, wire.AppendTenantReq(nil, wire.TenantCmdSet, spec))
	if err != nil {
		return 0, err
	}
	if len(payload) != 4 {
		return 0, fmt.Errorf("qosnet: bad TENANT SET response (%d bytes)", len(payload))
	}
	idx := int32(binary.LittleEndian.Uint32(payload))
	if idx < 1 {
		return 0, fmt.Errorf("qosnet: bad TENANT SET index %d", idx)
	}
	return idx, nil
}

// TenantGet fetches one tenant's policy and cross-shard gauges (admin).
func (c *BinaryClient) TenantGet(name string) (wire.TenantEntry, error) {
	_, payload, err := c.do(wire.OpTenant, wire.AppendTenantReq(nil, wire.TenantCmdGet, wire.TenantSpec{Name: name}))
	if err != nil {
		return wire.TenantEntry{}, err
	}
	entries, perr := wire.ParseTenantStats(payload)
	if perr != nil {
		return wire.TenantEntry{}, perr
	}
	if len(entries) != 1 {
		return wire.TenantEntry{}, fmt.Errorf("qosnet: TENANT GET answered %d entries", len(entries))
	}
	return entries[0], nil
}

// TenantDel deactivates a tenant (admin); its index stays reserved.
func (c *BinaryClient) TenantDel(name string) error {
	_, _, err := c.do(wire.OpTenant, wire.AppendTenantReq(nil, wire.TenantCmdDel, wire.TenantSpec{Name: name}))
	return err
}

// TenantStats fetches every active tenant's policy and gauges.
func (c *BinaryClient) TenantStats() ([]wire.TenantEntry, error) {
	_, payload, err := c.do(wire.OpTenantStats, nil)
	if err != nil {
		return nil, err
	}
	return wire.ParseTenantStats(payload)
}
