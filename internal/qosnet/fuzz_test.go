package qosnet

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"flashqos/internal/admission"
	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/health"
	"flashqos/internal/sampling"
	"flashqos/internal/wire"
)

// validResponseLine reports whether a server output line is one the
// protocol documents. METRICS bodies contribute '#'-comments,
// flashqos_-prefixed samples, and the blank terminator (skipped by the
// caller).
func validResponseLine(line string) bool {
	for _, p := range []string{"OK ", "REJECTED", "MAP ", "STATS ", "ERR ", "# ", "flashqos_", "HEALTH ", "DEV ", "TENANT "} {
		if strings.HasPrefix(line, p) {
			return true
		}
	}
	return false
}

// FuzzHandle feeds arbitrary bytes through a net.Pipe-backed connection
// straight into the request handler: whatever the input — garbage
// commands, huge tokens, empty fields, binary noise — the server must not
// panic, must answer every complete line with a documented response, and
// must terminate once QUIT arrives.
func FuzzHandle(f *testing.F) {
	seeds := []string{
		"READ 42\n",
		"WRITE 1\nSTATS\n",
		"read 7\n", // lower-case commands are valid
		"READ\n",
		"READ abc\n",
		"READ 1 2 3\n",
		"READ 999999999999999999999999\n",
		"READ -5\nMAP -5\n",
		"MAP 7\nMETRICS\n",
		"BOGUS 1\n",
		"\n\n\n",
		"   \t  \n",
		"QUIT\nREAD 1\n",
		"HEALTH\n",
		"FAIL 0\nHEALTH\nRECOVER 0\n",
		"FAIL 0\nFAIL 1\nFAIL 2\n", // third must hit the MaxUnavailable guard
		"FAIL abc\nRECOVER -1\nFAIL 99\n",
		"RECOVER 3\nMETRICS\n", // recovering a healthy device errors
		"FAIL\nRECOVER\n",
		strings.Repeat("A", 9000) + "\n",
		"READ " + strings.Repeat("9", 2000) + "\n",
		"\x00\xff\xfe garbage \x01\n",
		"READ 5", // no trailing newline
		"TENANT SET alpha 3 0 2\nREAD 5 alpha\nTENANT GET alpha\nTENANT DEL alpha\n",
		"READ 5 ghost\nWRITE 5 ghost\n",
		"TENANT\nTENANT SET\nTENANT SET a x y z\nTENANT GET ghost\nTENANT DEL ghost\nTENANT BOGUS a\n",
		"TENANT SET big 99 0 1\nTENANT SET a 2 -1 0\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := core.New(core.Config{Design: design.Paper931()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.NewHealthMonitor(1000, health.Config{}); err != nil {
			t.Fatal(err)
		}
		// ProtoText keeps the response stream line-oriented even when the
		// fuzzer discovers inputs starting with the binary magic byte.
		srv := NewServerOpts(sys, Options{ReadTimeout: 2 * time.Second, MaxLineBytes: 512, Proto: ProtoText})
		client, server := net.Pipe()
		defer client.Close()

		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.handle(server)
		}()
		respDone := make(chan struct{})
		go func() {
			defer close(respDone)
			r := bufio.NewReader(client)
			for {
				line, err := r.ReadString('\n')
				if err != nil {
					return
				}
				line = strings.TrimRight(line, "\r\n")
				if line == "" {
					continue // METRICS terminator
				}
				if !validResponseLine(line) {
					t.Errorf("undocumented response line %q", line)
				}
			}
		}()

		client.SetWriteDeadline(time.Now().Add(3 * time.Second))
		client.Write(data) // error tolerated: handler may QUIT mid-payload
		client.Write([]byte("\nQUIT\n"))

		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("handler did not terminate")
		}
		client.Close()
		<-respDone
	})
}

// statFuzzTable is the P_k table shared by every FuzzHandleStat execution.
// The Monte-Carlo estimate is deterministic (fixed seed/trials/workers) and
// costs real CPU, so it runs once at process start instead of per input.
var statFuzzTable = func() *sampling.Table {
	base, err := core.New(core.Config{Design: design.Paper931()})
	if err != nil {
		panic(err)
	}
	tab, err := sampling.Estimate(base.Allocator(), sampling.Options{MaxK: 25, Trials: 500, Seed: 3, Workers: 4})
	if err != nil {
		panic(err)
	}
	return tab
}()

// FuzzHandleStat is FuzzHandle against a statistical (ε > 0) server: the
// same no-panic/documented-response contract, but every READ/WRITE now runs
// the lock-free snapshot admission path, window merges fold into the
// estimator mid-connection, and METRICS renders the live Q gauges. The
// seeds aim at that machinery — bursts that overflow S into over-admission,
// METRICS interleaved with load, admin verbs flipping S' under a
// statistical controller.
func FuzzHandleStat(f *testing.F) {
	seeds := []string{
		"READ 42\nMETRICS\n",
		strings.Repeat("READ 7\n", 12) + "METRICS\n", // past S: over-admission path
		"WRITE 1\nWRITE 2\nWRITE 3\nMETRICS\n",
		"READ 1\nSTATS\nREAD 2\nMETRICS\nSTATS\n",
		"FAIL 0\nREAD 5\nMETRICS\nRECOVER 0\n", // degraded S' under ε > 0
		"READ -5\nREAD abc\nMETRICS\n",
		"METRICS\nMETRICS\nMETRICS\n",
		"BOGUS\n\x00\xff METRICS\n",
		"READ " + strings.Repeat("9", 400) + "\nMETRICS\n",
		"QUIT\nMETRICS\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := core.New(core.Config{Design: design.Paper931(), Epsilon: 0.05, Table: statFuzzTable})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.NewHealthMonitor(1000, health.Config{}); err != nil {
			t.Fatal(err)
		}
		srv := NewServerOpts(sys, Options{ReadTimeout: 2 * time.Second, MaxLineBytes: 512, Proto: ProtoText})
		client, server := net.Pipe()
		defer client.Close()

		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.handle(server)
		}()
		respDone := make(chan struct{})
		go func() {
			defer close(respDone)
			r := bufio.NewReader(client)
			for {
				line, err := r.ReadString('\n')
				if err != nil {
					return
				}
				line = strings.TrimRight(line, "\r\n")
				if line == "" {
					continue // METRICS terminator
				}
				if !validResponseLine(line) {
					t.Errorf("undocumented response line %q", line)
				}
			}
		}()

		client.SetWriteDeadline(time.Now().Add(3 * time.Second))
		client.Write(data)
		client.Write([]byte("\nQUIT\n"))

		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("handler did not terminate")
		}
		client.Close()
		<-respDone
	})
}

// FuzzHandleBinary feeds arbitrary byte streams into the framed-protocol
// handler: malformed headers, truncated payloads, oversized lengths, reused
// request IDs, and valid frames with garbage payloads. The server must not
// panic, must echo the request ID on every well-formed response frame, and
// must terminate once the stream ends (framing errors close the
// connection; a trailing OpQuit ends clean runs).
func FuzzHandleBinary(f *testing.F) {
	frame := func(prev []byte, op uint8, id uint64, payload []byte) []byte {
		return wire.AppendFrame(prev, wire.Header{Opcode: op, ID: id}, payload)
	}
	// Well-formed exchanges across the verb set.
	f.Add(frame(nil, wire.OpSubmit, 1, wire.AppendBlock(nil, 42)))
	f.Add(frame(frame(nil, wire.OpWrite, 2, wire.AppendBlock(nil, 7)), wire.OpStats, 3, nil))
	f.Add(frame(nil, wire.OpBatch, 4, wire.AppendBatchReq(nil, []int64{1, 2, 3})))
	f.Add(frame(nil, wire.OpMap, 5, wire.AppendBlock(nil, -9)))
	f.Add(frame(nil, wire.OpMetrics, 6, nil))
	f.Add(frame(frame(nil, wire.OpFail, 7, wire.AppendDevice(nil, 0)), wire.OpHealth, 8, nil))
	f.Add(frame(nil, wire.OpRecover, 9, wire.AppendDevice(nil, 99)))
	f.Add(frame(nil, wire.OpShardStats, 10, nil))
	f.Add(frame(nil, 0xEE, 11, nil)) // unknown opcode
	// ID reuse back to back.
	f.Add(frame(frame(nil, wire.OpSubmit, 12, wire.AppendBlock(nil, 1)), wire.OpSubmit, 12, wire.AppendBlock(nil, 2)))
	// Garbage payloads on every opcode that parses one.
	f.Add(frame(nil, wire.OpSubmit, 13, []byte{1, 2, 3}))
	f.Add(frame(nil, wire.OpBatch, 14, wire.AppendUint32(nil, 1<<30)))
	f.Add(frame(nil, wire.OpFail, 15, []byte("x")))
	// Framing violations: bad magic, bad version, truncated, oversized.
	f.Add([]byte{wire.Magic, wire.Version + 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(wire.AppendHeader(nil, wire.Header{Opcode: wire.OpSubmit, ID: 16, Len: 1 << 30}))
	f.Add(frame(nil, wire.OpSubmit, 17, wire.AppendBlock(nil, 5))[:18])
	f.Add([]byte{wire.Magic})

	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := core.New(core.Config{Design: design.Paper931()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.NewHealthMonitor(1000, health.Config{}); err != nil {
			t.Fatal(err)
		}
		srv := NewServerOpts(sys, Options{
			ReadTimeout:     2 * time.Second,
			MaxPayloadBytes: 1 << 16,
			Proto:           ProtoBinary,
		})
		client, server := net.Pipe()
		defer client.Close()

		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.handle(server)
		}()
		respDone := make(chan struct{})
		go func() {
			defer close(respDone)
			rd := wire.NewReader(bufio.NewReader(client), 1<<20)
			for {
				h, payload, err := rd.Next()
				if err != nil {
					return
				}
				if int(h.Len) != len(payload) {
					t.Errorf("response frame Len %d != payload %d", h.Len, len(payload))
				}
			}
		}()

		client.SetWriteDeadline(time.Now().Add(3 * time.Second))
		client.Write(data) // error tolerated: handler may close mid-payload
		client.Write(wire.AppendFrame(nil, wire.Header{Opcode: wire.OpQuit, ID: 1 << 62}, nil))

		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("binary handler did not terminate")
		}
		client.Close()
		<-respDone
	})
}

// FuzzHandleTenant is FuzzHandleBinary against a server with a live tenant
// policy: tenant-tagged submissions (valid, inactive, and malformed
// indices), the tenant admin opcodes, and plain frames interleave on one
// connection. The handler must not panic, every response frame must be
// well-formed, and — because the seeds include TENANT SET/DEL — the
// registry gets reconfigured mid-stream under whatever ordering the fuzzer
// finds.
func FuzzHandleTenant(f *testing.F) {
	frame := func(prev []byte, op, flags uint8, id uint64, payload []byte) []byte {
		return wire.AppendFrame(prev, wire.Header{Opcode: op, Flags: flags, ID: id}, payload)
	}
	// Tenant-tagged submissions: index 1 is configured, 2 is inactive.
	f.Add(frame(nil, wire.OpSubmit, wire.FlagTenant, 1, wire.AppendTenantBlock(nil, 42, 1)))
	f.Add(frame(nil, wire.OpWrite, wire.FlagTenant, 2, wire.AppendTenantBlock(nil, 7, 1)))
	f.Add(frame(nil, wire.OpSubmit, wire.FlagTenant, 3, wire.AppendTenantBlock(nil, 42, 2)))
	// Malformed tenant payloads: zero index, truncated varint, trailing.
	f.Add(frame(nil, wire.OpSubmit, wire.FlagTenant, 4, append(wire.AppendBlock(nil, 1), 0)))
	f.Add(frame(nil, wire.OpSubmit, wire.FlagTenant, 5, append(wire.AppendBlock(nil, 1), 0x80)))
	f.Add(frame(nil, wire.OpSubmit, wire.FlagTenant, 6, append(wire.AppendTenantBlock(nil, 1, 1), 9)))
	// FlagTenant on a plain 8-byte payload, and a tagged payload without it.
	f.Add(frame(nil, wire.OpSubmit, wire.FlagTenant, 7, wire.AppendBlock(nil, 1)))
	f.Add(frame(nil, wire.OpSubmit, 0, 8, wire.AppendTenantBlock(nil, 1, 1)))
	// Admin opcodes, including mid-stream reconfiguration.
	f.Add(frame(nil, wire.OpTenantHello, 0, 9, wire.AppendTenantHelloReq(nil, []string{"alpha", "ghost"})))
	f.Add(frame(nil, wire.OpTenant, 0, 10, wire.AppendTenantReq(nil, wire.TenantCmdSet,
		wire.TenantSpec{Name: "beta", Reserve: 2, Limit: 6, Weight: 1})))
	f.Add(frame(
		frame(nil, wire.OpTenant, 0, 11, wire.AppendTenantReq(nil, wire.TenantCmdDel, wire.TenantSpec{Name: "alpha"})),
		wire.OpSubmit, wire.FlagTenant, 12, wire.AppendTenantBlock(nil, 3, 1)))
	f.Add(frame(nil, wire.OpTenant, 0, 13, wire.AppendTenantReq(nil, wire.TenantCmdGet, wire.TenantSpec{Name: "alpha"})))
	f.Add(frame(nil, wire.OpTenant, 0, 14, []byte{9, 1, 'x'}))
	f.Add(frame(nil, wire.OpTenantStats, 0, 15, nil))
	f.Add(frame(nil, wire.OpTenant, 0, 16, wire.AppendTenantReq(nil, wire.TenantCmdSet,
		wire.TenantSpec{Name: "huge", Reserve: 99, Limit: 0, Weight: 1}))) // reserve beyond S

	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := core.New(core.Config{Design: design.Paper931()})
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServerOpts(sys, Options{
			ReadTimeout:     2 * time.Second,
			MaxPayloadBytes: 1 << 16,
			Proto:           ProtoBinary,
		})
		if _, err := srv.Array().TenantSet(admission.TenantSpec{Name: "alpha", Reserve: 3, Limit: 8, Weight: 1}); err != nil {
			t.Fatal(err)
		}
		client, server := net.Pipe()
		defer client.Close()

		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.handle(server)
		}()
		respDone := make(chan struct{})
		go func() {
			defer close(respDone)
			rd := wire.NewReader(bufio.NewReader(client), 1<<20)
			for {
				h, payload, err := rd.Next()
				if err != nil {
					return
				}
				if int(h.Len) != len(payload) {
					t.Errorf("response frame Len %d != payload %d", h.Len, len(payload))
				}
			}
		}()

		client.SetWriteDeadline(time.Now().Add(3 * time.Second))
		client.Write(data) // error tolerated: handler may close mid-payload
		client.Write(wire.AppendFrame(nil, wire.Header{Opcode: wire.OpQuit, ID: 1 << 62}, nil))

		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("tenant binary handler did not terminate")
		}
		client.Close()
		<-respDone
	})
}

// FuzzParseShardQ throws arbitrary exposition text at the strict per-shard
// Q parser: it must never panic, and anything it accepts must be internally
// consistent — shard-indexed probabilities with no gaps or duplicates.
func FuzzParseShardQ(f *testing.F) {
	seeds := []string{
		"flashqos_shard_q_estimate{shard=\"0\"} 0.001\n",
		"flashqos_shard_q_estimate{shard=\"0\"} 0\nflashqos_shard_q_estimate{shard=\"1\"} 1\n",
		"# TYPE flashqos_shard_q_estimate gauge\nflashqos_shard_q_estimate{shard=\"1\"} 0.5\nflashqos_shard_q_estimate{shard=\"0\"} 0.25\n",
		"flashqos_shard_q_estimate{shard=\"0\"} 0.1\nflashqos_shard_q_estimate{shard=\"0\"} 0.2\n",
		"flashqos_shard_q_estimate{shard=\"2\"} 0.1\n",
		"flashqos_shard_q_estimate{shard=\"-1\"} 0.1\n",
		"flashqos_shard_q_estimate{shard=\"x\"} 0.1\n",
		"flashqos_shard_q_estimate{shard=\"0\"} NaN\n",
		"flashqos_shard_q_estimate{shard=\"0\"} 2e308\n",
		"flashqos_shard_q_estimate{shard=\"0\"} 0.1 trailing\n",
		"flashqos_shard_q_estimate{shard=\"00000000000000000000\"} 0.1\n",
		"flashqos_q_estimate 0.5\nflashqos_shards 4\n",
		"",
		"\x00\xff{shard=\"0\"}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, metrics string) {
		qs, err := parseShardQ(metrics)
		if err != nil {
			return
		}
		if len(qs) == 0 {
			t.Error("accepted a page with zero shard series")
		}
		for i, q := range qs {
			if q < 0 || q > 1 || q != q {
				t.Errorf("accepted out-of-range Q[%d] = %g from %q", i, q, metrics)
			}
		}
	})
}
