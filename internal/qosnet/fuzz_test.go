package qosnet

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/health"
)

// validResponseLine reports whether a server output line is one the
// protocol documents. METRICS bodies contribute '#'-comments,
// flashqos_-prefixed samples, and the blank terminator (skipped by the
// caller).
func validResponseLine(line string) bool {
	for _, p := range []string{"OK ", "REJECTED", "MAP ", "STATS ", "ERR ", "# ", "flashqos_", "HEALTH ", "DEV "} {
		if strings.HasPrefix(line, p) {
			return true
		}
	}
	return false
}

// FuzzHandle feeds arbitrary bytes through a net.Pipe-backed connection
// straight into the request handler: whatever the input — garbage
// commands, huge tokens, empty fields, binary noise — the server must not
// panic, must answer every complete line with a documented response, and
// must terminate once QUIT arrives.
func FuzzHandle(f *testing.F) {
	seeds := []string{
		"READ 42\n",
		"WRITE 1\nSTATS\n",
		"read 7\n", // lower-case commands are valid
		"READ\n",
		"READ abc\n",
		"READ 1 2 3\n",
		"READ 999999999999999999999999\n",
		"READ -5\nMAP -5\n",
		"MAP 7\nMETRICS\n",
		"BOGUS 1\n",
		"\n\n\n",
		"   \t  \n",
		"QUIT\nREAD 1\n",
		"HEALTH\n",
		"FAIL 0\nHEALTH\nRECOVER 0\n",
		"FAIL 0\nFAIL 1\nFAIL 2\n", // third must hit the MaxUnavailable guard
		"FAIL abc\nRECOVER -1\nFAIL 99\n",
		"RECOVER 3\nMETRICS\n", // recovering a healthy device errors
		"FAIL\nRECOVER\n",
		strings.Repeat("A", 9000) + "\n",
		"READ " + strings.Repeat("9", 2000) + "\n",
		"\x00\xff\xfe garbage \x01\n",
		"READ 5", // no trailing newline
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := core.New(core.Config{Design: design.Paper931()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.NewHealthMonitor(1000, health.Config{}); err != nil {
			t.Fatal(err)
		}
		srv := NewServerOpts(sys, Options{ReadTimeout: 2 * time.Second, MaxLineBytes: 512})
		client, server := net.Pipe()
		defer client.Close()

		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.handle(server)
		}()
		respDone := make(chan struct{})
		go func() {
			defer close(respDone)
			r := bufio.NewReader(client)
			for {
				line, err := r.ReadString('\n')
				if err != nil {
					return
				}
				line = strings.TrimRight(line, "\r\n")
				if line == "" {
					continue // METRICS terminator
				}
				if !validResponseLine(line) {
					t.Errorf("undocumented response line %q", line)
				}
			}
		}()

		client.SetWriteDeadline(time.Now().Add(3 * time.Second))
		client.Write(data) // error tolerated: handler may QUIT mid-payload
		client.Write([]byte("\nQUIT\n"))

		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("handler did not terminate")
		}
		client.Close()
		<-respDone
	})
}
