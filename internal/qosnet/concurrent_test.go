package qosnet

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"flashqos/internal/core"
	"flashqos/internal/design"
)

func startServerOpts(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	sys, err := core.New(core.Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerOpts(sys, opts)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, addr.String()
}

// TestConcurrentClientsStress is the satellite invariant test: N client
// goroutines × M requests each against one Server. STATS totals must be
// exactly N×M, nothing may be rejected under the Delay policy, and the
// per-interval admission count recorded by the concurrent pipeline must
// never exceed S. Run under -race this exercises every concurrent path in
// the server (virtual clock, sharded admission, atomic stats).
func TestConcurrentClientsStress(t *testing.T) {
	srv, addr := startServerOpts(t, Options{MaxConns: 64})
	const (
		clients    = 12
		perClient  = 50
		totalReads = clients * perClient
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := int64(0); j < perClient; j++ {
				res, err := c.Read(base*1_000_000 + j)
				if err != nil {
					errs <- fmt.Errorf("client %d read %d: %w", base, j, err)
					return
				}
				if res.Rejected {
					errs <- fmt.Errorf("client %d read %d rejected under Delay policy", base, j)
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reqs, delayed, rejected, avg, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if reqs != totalReads {
		t.Errorf("STATS requests = %d, want %d", reqs, totalReads)
	}
	if rejected != 0 {
		t.Errorf("STATS rejected = %d, want 0", rejected)
	}
	if delayed > 0 && avg <= 0 {
		t.Errorf("delayed %d requests but avg delay %.6f", delayed, avg)
	}
	if max, s := srv.System().MaxWindowCount(), srv.System().S(); max > s {
		t.Errorf("a window admitted %d requests, limit S=%d", max, s)
	}
}

// TestNowMonotonicUnderRace hammers the virtual clock from many
// goroutines: every goroutine must observe a non-decreasing sequence, and
// -race must stay silent (the satellite fix: now() used to mutate lastT
// unsynchronized, which was only safe under the old global mutex).
func TestNowMonotonicUnderRace(t *testing.T) {
	sys, err := core.New(core.Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys)
	const goroutines, calls = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := -1.0
			for i := 0; i < calls; i++ {
				now := srv.now()
				if now < prev {
					t.Errorf("clock went backwards: %.9f after %.9f", now, prev)
					return
				}
				prev = now
			}
		}()
	}
	wg.Wait()
}

// TestOversizedLine checks the robustness control: a request line over
// MaxLineBytes is rejected with ERR and discarded, and the connection
// stays usable for well-formed requests.
func TestOversizedLine(t *testing.T) {
	_, addr := startServerOpts(t, Options{MaxLineBytes: 64})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	// Far longer than both MaxLineBytes and the reader's internal buffer.
	fmt.Fprintf(conn, "READ %s\n", strings.Repeat("9", 20000))
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "ERR line too long") {
		t.Errorf("oversized line answered %q", line)
	}

	fmt.Fprintln(conn, "READ 42")
	line, err = r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK") {
		t.Errorf("connection unusable after oversized line: %q", line)
	}
}

// TestReadTimeout checks an idle connection is closed once the per-line
// read deadline passes.
func TestReadTimeout(t *testing.T) {
	_, addr := startServerOpts(t, Options{ReadTimeout: 100 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("idle connection still open past the read deadline")
	}
}

// TestMaxConns checks the backpressure path: with MaxConns=1 a second
// connection is refused with "ERR server busy", and capacity frees up
// once the first connection closes.
func TestMaxConns(t *testing.T) {
	_, addr := startServerOpts(t, Options{MaxConns: 1})

	first, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Read(1); err != nil {
		t.Fatal(err)
	}

	second, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(second).ReadString('\n')
	if err != nil {
		t.Fatalf("refused connection: want ERR line, got %v", err)
	}
	if !strings.HasPrefix(line, "ERR server busy") {
		t.Errorf("over-capacity connection answered %q", line)
	}

	first.Close()
	// The slot frees asynchronously as the handler unwinds; retry briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := Dial(addr)
		if err == nil {
			if _, err := c.Read(2); err == nil {
				c.Close()
				return
			}
			c.Close()
		}
		if time.Now().After(deadline) {
			t.Fatal("capacity never freed after first connection closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownDrainClean checks Shutdown returns nil when connections
// finish within the drain window.
func TestShutdownDrainClean(t *testing.T) {
	srv, addr := startServerOpts(t, Options{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(7); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Errorf("Shutdown after clients left = %v, want nil", err)
	}
}

// TestShutdownDrainForced checks a connection that never leaves is
// force-closed after the drain timeout and Shutdown reports it.
func TestShutdownDrainForced(t *testing.T) {
	srv, addr := startServerOpts(t, Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Prove the handler is live, then go idle without closing.
	fmt.Fprintln(conn, "READ 1")
	if _, err := bufio.NewReader(conn).ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	err = srv.Shutdown(100 * time.Millisecond)
	if err != ErrForcedClose {
		t.Errorf("Shutdown = %v, want ErrForcedClose", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("forced shutdown took %v", took)
	}
	if _, err := net.Dial("tcp", addr); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
}

// TestPipelinedRequests checks many requests written before any response
// is read are all answered, in order, on one connection.
func TestPipelinedRequests(t *testing.T) {
	_, addr := startServerOpts(t, Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 200
	var req strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&req, "READ %d\n", i)
	}
	if _, err := conn.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	for i := 0; i < n; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if !strings.HasPrefix(line, "OK") && !strings.HasPrefix(line, "REJECTED") {
			t.Fatalf("response %d: %q", i, line)
		}
	}
}
