package qosnet

import (
	"bufio"
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"flashqos/internal/admission"
	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/health"
	"flashqos/internal/wire"
)

func dialBinT(t *testing.T, addr string) *BinaryClient {
	t.Helper()
	c, err := DialBinary(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestBinaryReadWriteRoundTrip checks the framed READ/WRITE path delivers
// the same admission semantics the text protocol documents: in-range
// device, the paper's response-time guarantee, nothing rejected under the
// Delay policy.
func TestBinaryReadWriteRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c := dialBinT(t, addr)

	res, err := c.Read(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected {
		t.Fatal("first read rejected")
	}
	if res.Device < 0 || res.Device > 8 {
		t.Errorf("device %d out of range", res.Device)
	}
	if res.RespMS < 0.132 || res.RespMS > 0.134 {
		t.Errorf("response %.6f, want ≈ 0.1325 (the guarantee)", res.RespMS)
	}
	wres, err := c.Write(43)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Rejected || wres.Device < 0 {
		t.Errorf("write outcome %+v", wres)
	}
}

// TestBinaryMatchesText runs the same verbs over a text and a binary
// connection to one sharded server and demands identical answers: MAP
// placement, STATS totals, and a byte-identical METRICS page.
func TestBinaryMatchesText(t *testing.T) {
	_, addr := startShardedServer(t, 4)
	tc := dialT(t, addr)
	bc := dialBinT(t, addr)

	for block := int64(-3); block < 40; block += 7 {
		tdb, tdevs, err := tc.Map(block)
		if err != nil {
			t.Fatal(err)
		}
		bdb, bdevs, err := bc.Map(block)
		if err != nil {
			t.Fatal(err)
		}
		if tdb != bdb {
			t.Errorf("MAP %d designBlock: text %d, binary %d", block, tdb, bdb)
		}
		if len(tdevs) != len(bdevs) {
			t.Fatalf("MAP %d devices: text %v, binary %v", block, tdevs, bdevs)
		}
		for i := range tdevs {
			if tdevs[i] != bdevs[i] {
				t.Errorf("MAP %d device[%d]: text %d, binary %d", block, i, tdevs[i], bdevs[i])
			}
		}
	}

	if _, err := bc.Read(7); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Read(8); err != nil {
		t.Fatal(err)
	}
	treq, tdel, trej, tavg, err := tc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	breq, bdel, brej, bavg, err := bc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if treq != breq || tdel != bdel || trej != brej || tavg != bavg {
		t.Errorf("STATS text (%d %d %d %g) != binary (%d %d %d %g)",
			treq, tdel, trej, tavg, breq, bdel, brej, bavg)
	}

	tpage, err := tc.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	bpage, err := bc.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if tpage != bpage {
		t.Errorf("METRICS pages differ:\ntext:\n%s\nbinary:\n%s", tpage, bpage)
	}

	gs, err := bc.ShardStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 4 {
		t.Fatalf("ShardStats returned %d shards, want 4", len(gs))
	}
	var total int64
	for i, g := range gs {
		if g.S != 5 || g.EffectiveS != 5 || g.Alive != 9 {
			t.Errorf("shard %d gauge %+v, want S=5 S'=5 alive=9", i, g)
		}
		total += g.Requests
	}
	if total != breq {
		t.Errorf("shard requests sum %d != STATS total %d", total, breq)
	}
}

// TestBinaryBatch joint-admits a burst and checks outcomes arrive in input
// order with the batch contract (same arrival instant, so delays ramp).
func TestBinaryBatch(t *testing.T) {
	_, addr := startServer(t)
	c := dialBinT(t, addr)

	blocks := make([]int64, 12)
	for i := range blocks {
		blocks[i] = int64(i)
	}
	rs, err := c.Batch(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(blocks) {
		t.Fatalf("batch returned %d outcomes, want %d", len(rs), len(blocks))
	}
	delayed := 0
	for i, r := range rs {
		if r.Rejected {
			t.Errorf("batch[%d] rejected under Delay policy", i)
		}
		if r.Delayed {
			delayed++
		}
	}
	if delayed == 0 {
		t.Error("12 simultaneous reads against S=5 produced no delays")
	}
}

// TestBinaryRejectedOutcome checks the wire form of a rejection: status
// bit set, device -1, zero timings — mirroring the text REJECTED line.
func TestBinaryRejectedOutcome(t *testing.T) {
	sys, err := core.New(core.Config{Design: design.Paper931(), Policy: admission.Reject})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)

	c := dialBinT(t, addr.String())
	blocks := make([]int64, 64)
	rs, err := c.Batch(blocks)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for _, r := range rs {
		if r.Rejected {
			rejected++
			if r.Device != -1 || r.DelayMS != 0 || r.RespMS != 0 {
				t.Errorf("rejected outcome %+v, want device -1 and zero timings", r)
			}
		}
	}
	if rejected == 0 {
		t.Error("64 simultaneous reads under Reject policy: nothing rejected")
	}
}

// TestBinaryFailRecoverHealth drives the admin verbs over frames and
// cross-checks the HEALTH report against the text protocol's.
func TestBinaryFailRecoverHealth(t *testing.T) {
	_, addr := startHealthServer(t, 0)
	c := dialBinT(t, addr)

	state, effS, err := c.Fail(2)
	if err != nil {
		t.Fatal(err)
	}
	if state != "failed" {
		t.Errorf("FAIL state %q, want failed", state)
	}
	if effS != 3 {
		t.Errorf("effective S after one failure = %d, want 3", effS)
	}
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Devices != 9 || h.Alive != 8 || h.EffectiveS != 3 || h.FullS != 5 {
		t.Errorf("HEALTH %+v, want devices=9 alive=8 s'=3 s=5", h)
	}
	if len(h.States) != 9 {
		t.Fatalf("HEALTH states %d, want 9", len(h.States))
	}
	if h.States[2].State != "failed" {
		t.Errorf("device 2 state %q, want failed", h.States[2].State)
	}
	th, err := dialT(t, addr).Health()
	if err != nil {
		t.Fatal(err)
	}
	if th.Alive != h.Alive || th.EffectiveS != h.EffectiveS || len(th.States) != len(h.States) {
		t.Errorf("text HEALTH %+v != binary %+v", th, h)
	}

	if state, effS, err = c.Recover(2); err != nil {
		t.Fatal(err)
	}
	if state != "healthy" || effS != 5 {
		t.Errorf("RECOVER -> %q S'=%d, want healthy 5", state, effS)
	}

	// Admin errors surface as error frames, not connection drops.
	if _, _, err := c.Fail(99); err == nil {
		t.Error("FAIL 99 (out of range) succeeded")
	}
	if _, _, err := c.Recover(3); err == nil {
		t.Error("RECOVER of a healthy device succeeded")
	}
	if _, err := c.Read(1); err != nil {
		t.Fatalf("connection unusable after admin errors: %v", err)
	}
}

// TestBinaryPipelinedOutOfOrder floods one connection with async submits
// and checks every request completes exactly once, whatever order the
// completions arrive in.
func TestBinaryPipelinedOutOfOrder(t *testing.T) {
	_, addr := startServer(t)
	c := dialBinT(t, addr)

	const n = 500
	chans := make([]<-chan SubmitResult, n)
	for i := 0; i < n; i++ {
		chans[i] = c.SubmitAsync(int64(i))
	}
	seen := make(map[uint64]bool, n)
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("submit %d: %v", i, res.Err)
		}
		if res.Rejected {
			t.Errorf("submit %d rejected under Delay policy", i)
		}
		if seen[res.ID] {
			t.Fatalf("request ID %d completed twice", res.ID)
		}
		seen[res.ID] = true
	}
	req, _, _, _, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if req != n {
		t.Errorf("STATS requests = %d, want %d", req, n)
	}
}

// TestBinaryErrorFrames speaks raw frames to check the server's error
// surface: FlagError set, request ID echoed, connection still usable for
// payload-level errors, closed for framing violations.
func TestBinaryErrorFrames(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	wr := wire.NewWriter(bw)
	rd := wire.NewReader(bufio.NewReader(conn), 0)

	send := func(op uint8, id uint64, payload []byte) wire.Header {
		t.Helper()
		if err := wr.WriteFrame(wire.Header{Opcode: op, ID: id}, payload); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		h, _, err := rd.Next()
		if err != nil {
			t.Fatalf("op 0x%02x: %v", op, err)
		}
		if h.ID != id {
			t.Errorf("op 0x%02x echoed ID %d, want %d", op, h.ID, id)
		}
		return h
	}

	if h := send(0xEE, 7, nil); h.Flags&wire.FlagError == 0 {
		t.Error("unknown opcode did not set FlagError")
	}
	if h := send(wire.OpSubmit, 8, []byte{1, 2}); h.Flags&wire.FlagError == 0 {
		t.Error("short READ payload did not set FlagError")
	}
	if h := send(wire.OpHealth, 9, nil); h.Flags&wire.FlagError == 0 {
		t.Error("HEALTH without a monitor did not set FlagError")
	}
	// Still alive after three error frames.
	if h := send(wire.OpSubmit, 10, wire.AppendBlock(nil, 5)); h.Flags&wire.FlagError != 0 {
		t.Error("valid READ after errors got an error frame")
	}

	// A framing violation kills the connection: error frame then EOF. The
	// reader waits for a whole header before judging it, so send 16 bytes.
	bw.Write(bytes.Repeat([]byte{0x00}, wire.HeaderSize))
	bw.Flush()
	h, payload, err := rd.Next()
	if err != nil {
		t.Fatalf("expected an error frame before close, got %v", err)
	}
	if h.Flags&wire.FlagError == 0 || len(payload) == 0 {
		t.Errorf("framing violation answer: flags 0x%02x payload %q", h.Flags, payload)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := rd.Next(); err == nil {
		t.Error("connection stayed open after a framing violation")
	}
}

// TestProtoGating checks -proto enforcement: a text-only server refuses
// the magic byte with a text error, a binary-only server refuses text
// verbs with an error frame, and both modes work when enabled.
func TestProtoGating(t *testing.T) {
	_, textAddr := startServerOpts(t, Options{Proto: ProtoText})
	conn, err := net.Dial("tcp", textAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(wire.AppendFrame(nil, wire.Header{Opcode: wire.OpStats, ID: 1}, nil))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if want := "ERR binary protocol disabled\n"; line != want {
		t.Errorf("text-only server answered %q, want %q", line, want)
	}

	_, binAddr := startServerOpts(t, Options{Proto: ProtoBinary})
	conn2, err := net.Dial("tcp", binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.Write([]byte("READ 1\n"))
	h, payload, err := wire.NewReader(bufio.NewReader(conn2), 0).Next()
	if err != nil {
		t.Fatal(err)
	}
	if h.Flags&wire.FlagError == 0 || !bytes.Contains(payload, []byte("text protocol disabled")) {
		t.Errorf("binary-only server answered flags 0x%02x %q", h.Flags, payload)
	}

	// Binary verbs work on the binary-only server.
	bc := dialBinT(t, binAddr)
	if _, err := bc.Read(1); err != nil {
		t.Fatal(err)
	}
	// Text verbs work on the text-only server.
	tc := dialT(t, textAddr)
	if _, err := tc.Read(1); err != nil {
		t.Fatal(err)
	}
}

// TestMixedProtocolStress interleaves text and binary clients against one
// server — the -race companion to the protocol-equivalence tests. STATS
// must account for every request exactly once across both front ends.
func TestMixedProtocolStress(t *testing.T) {
	_, addr := startShardedServer(t, 2)
	const (
		clients = 6 // per protocol
		each    = 120
	)
	var wg sync.WaitGroup
	errc := make(chan error, 2*clients)
	for i := 0; i < clients; i++ {
		wg.Add(2)
		go func(seed int64) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			for j := 0; j < each; j++ {
				if _, err := c.Read(seed*1000 + int64(j)); err != nil {
					errc <- err
					return
				}
			}
		}(int64(i))
		go func(seed int64) {
			defer wg.Done()
			c, err := DialBinary(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			chans := make([]<-chan SubmitResult, 0, each)
			for j := 0; j < each; j++ {
				chans = append(chans, c.SubmitAsync(seed*1000+int64(j)))
			}
			for _, ch := range chans {
				if res := <-ch; res.Err != nil {
					errc <- res.Err
					return
				}
			}
		}(int64(clients + i))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	c := dialBinT(t, addr)
	req, _, rej, _, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2 * clients * each); req != want {
		t.Errorf("STATS requests = %d, want %d", req, want)
	}
	if rej != 0 {
		t.Errorf("STATS rejected = %d, want 0 under Delay policy", rej)
	}
}

// TestAppendMetricsAllocs pins the METRICS scrape path: with a warm
// scratch buffer, rendering the full exposition page allocates nothing.
func TestAppendMetricsAllocs(t *testing.T) {
	sys, err := core.New(core.Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewHealthMonitor(0, health.Config{}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys)
	scratch := srv.appendMetrics(make([]byte, 0, 4096), true) // warm the buffer
	if len(scratch) == 0 {
		t.Fatal("empty metrics page")
	}
	allocs := testing.AllocsPerRun(100, func() {
		scratch = srv.appendMetrics(scratch[:0], true)
	})
	if allocs != 0 {
		t.Errorf("appendMetrics allocated %.1f objects/run, want 0", allocs)
	}
}

// TestReadLineLimits is the MaxLineBytes contract, table-driven at the
// exact boundary: content of max bytes is served, max+1 is rejected, the
// terminator (\n or \r\n) never counts, and the answer is identical when
// the line spans multiple bufio fills (forced by a tiny reader buffer).
func TestReadLineLimits(t *testing.T) {
	const max = 64
	long := func(n int, term string) string {
		return string(bytes.Repeat([]byte{'a'}, n)) + term
	}
	cases := []struct {
		name     string
		input    string
		bufSize  int // bufio reader size; 16 forces ErrBufferFull spans
		wantLine string
		tooLong  bool
	}{
		{"exactly max", long(max, "\n"), 4096, long(max, "\n"), false},
		{"one over max", long(max+1, "\n"), 4096, "", true},
		{"exactly max CRLF", long(max, "\r\n"), 4096, long(max, "\r\n"), false},
		{"one over max CRLF", long(max+1, "\r\n"), 4096, "", true},
		{"exactly max spanning fills", long(max, "\n"), 16, long(max, "\n"), false},
		{"one over max spanning fills", long(max+1, "\n"), 16, "", true},
		{"exactly max unterminated EOF", long(max, ""), 16, long(max, ""), false},
		{"over max unterminated EOF", long(max+1, ""), 16, "", true},
		{"empty line", "\n", 4096, "\n", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := bufio.NewReaderSize(bytes.NewReader([]byte(tc.input)), tc.bufSize)
			line, tooLong, err := readLine(r, max)
			if tc.tooLong {
				if !tooLong {
					t.Fatalf("readLine(%d bytes content) not flagged too long", len(tc.input))
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if tooLong {
				t.Fatal("readLine flagged a max-length line too long")
			}
			if string(line) != tc.wantLine {
				t.Errorf("readLine = %q, want %q", line, tc.wantLine)
			}
		})
	}

	// An oversized line must not poison the connection: the next line
	// still parses.
	r := bufio.NewReaderSize(bytes.NewReader([]byte(long(max*3, "\n")+"READ 1\n")), 16)
	if _, tooLong, err := readLine(r, max); err != nil || !tooLong {
		t.Fatalf("oversized line: tooLong=%v err=%v", tooLong, err)
	}
	line, tooLong, err := readLine(r, max)
	if err != nil || tooLong || string(line) != "READ 1\n" {
		t.Fatalf("line after oversized = %q tooLong=%v err=%v", line, tooLong, err)
	}
}
