package qosnet

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strconv"
	"time"

	"flashqos/internal/core"
	"flashqos/internal/wire"
)

// maxBatchBlocks caps one OpBatch request; larger batches get an error
// frame (and the payload cap usually refuses them first).
const maxBatchBlocks = 1 << 16

// toWireOutcome converts a core outcome to its wire form. Rejected
// outcomes carry device -1 and zeroed timings, matching the text
// protocol's bare REJECTED line.
func toWireOutcome(out core.Outcome) wire.Outcome {
	if out.Rejected {
		o := wire.Outcome{Device: -1, Status: wire.StatusRejected}
		if out.Unavailable {
			o.Status |= wire.StatusUnavailable
		}
		return o
	}
	o := wire.Outcome{Device: int32(out.Device), DelayMS: out.Delay, RespMS: out.Response()}
	if out.Delayed {
		o.Status |= wire.StatusDelayed
	}
	return o
}

// handleBinary serves one framed connection. Requests are processed in
// arrival order (admission is fast enough that per-connection concurrency
// would only buy reordering); the request ID is echoed on every response,
// so clients may pipeline arbitrarily deep and demultiplex completions.
// Responses are flushed once the read buffer holds no further complete
// frame, so a pipelined burst costs one write syscall.
func (s *Server) handleBinary(conn net.Conn, r *bufio.Reader, st *stripe) {
	rd := wire.NewReader(r, s.opts.MaxPayloadBytes)
	bw := bufio.NewWriterSize(conn, connReadBuf)
	wr := wire.NewWriter(bw)
	scratch := make([]byte, 0, 256)
	var blocks []int64         // OpBatch request scratch
	var outs []wire.Outcome    // OpBatch response scratch
	var gauges []wire.ShardGauge
	hasHealth := s.anyHealth()
	arrival := -1.0 // virtual arrival stamp, renewed per socket fill
	for {
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		h, payload, err := rd.Next()
		if err != nil {
			// A framing violation (bad magic/version, oversized length,
			// truncated frame) cannot be resynchronized: best-effort error
			// frame, then close. Clean EOF just closes.
			if !errors.Is(err, io.EOF) {
				conn.SetWriteDeadline(time.Now().Add(time.Second))
				wr.WriteError(wire.Header{}, err.Error())
				bw.Flush()
			}
			return
		}
		if arrival < 0 {
			arrival = s.now()
		}
		resp := wire.Header{Opcode: h.Opcode, ID: h.ID}
		switch h.Opcode {
		case wire.OpSubmit, wire.OpWrite:
			block, perr := wire.ParseBlock(payload)
			if perr != nil {
				err = wr.WriteError(resp, "bad block payload")
				break
			}
			out := s.submitAt(st, h.Opcode == wire.OpWrite, block, hasHealth, arrival)
			err = wr.WriteOutcome(resp, toWireOutcome(out))
		case wire.OpBatch:
			var perr error
			blocks, perr = wire.ParseBatchReq(payload, blocks)
			if perr != nil || len(blocks) > maxBatchBlocks {
				err = wr.WriteError(resp, "bad batch payload")
				break
			}
			if outs != nil {
				outs = outs[:0]
			}
			for _, out := range s.submitBatch(st, blocks, hasHealth) {
				outs = append(outs, toWireOutcome(out))
			}
			scratch = wire.AppendBatchResp(scratch[:0], outs)
			err = wr.WriteFrame(resp, scratch)
		case wire.OpMap:
			block, perr := wire.ParseBlock(payload)
			if perr != nil {
				err = wr.WriteError(resp, "bad block payload")
				break
			}
			i := s.arr.ShardOf(block)
			sys := s.arr.System(i)
			base := i * s.arr.DevicesPerShard()
			m := wire.MapResp{DesignBlock: int32(sys.DesignBlock(block))}
			for _, d := range sys.Replicas(block) {
				m.Devices = append(m.Devices, int32(base+d))
			}
			scratch = wire.AppendMapResp(scratch[:0], m)
			err = wr.WriteFrame(resp, scratch)
		case wire.OpStats:
			req, del, rej, sum := s.totals()
			avg := 0.0
			if del > 0 {
				avg = sum / float64(del)
			}
			scratch = wire.AppendStats(scratch[:0], wire.Stats{
				Requests: req, Delayed: del, Rejected: rej, AvgDelayMS: avg,
			})
			err = wr.WriteFrame(resp, scratch)
		case wire.OpMetrics:
			scratch = s.appendMetrics(scratch[:0], hasHealth)
			err = wr.WriteFrame(resp, scratch)
		case wire.OpFail, wire.OpRecover:
			dev, perr := wire.ParseDevice(payload)
			if perr != nil {
				err = wr.WriteError(resp, "bad device payload")
				break
			}
			if !hasHealth {
				err = wr.WriteError(resp, "no health monitor")
				break
			}
			if int(dev) >= s.arr.Devices() {
				err = wr.WriteError(resp, "bad device "+strconv.Itoa(int(dev)))
				break
			}
			state, effS, aerr := s.adminFailRecover(h.Opcode == wire.OpFail, int(dev))
			if aerr != nil {
				err = wr.WriteError(resp, aerr.Error())
				break
			}
			scratch = wire.AppendAdminResp(scratch[:0], wire.AdminResp{
				EffectiveS: int32(effS), State: state,
			})
			err = wr.WriteFrame(resp, scratch)
		case wire.OpHealth:
			if !hasHealth {
				err = wr.WriteError(resp, "no health monitor")
				break
			}
			alive, pending, done := s.healthTotals()
			hrep := wire.Health{
				Devices:        int32(s.arr.Devices()),
				Alive:          int32(alive),
				EffectiveS:     int32(s.arr.EffectiveS()),
				FullS:          int32(s.arr.S()),
				RebuildPending: int32(pending),
				RebuildDone:    done,
			}
			scratch = scratch[:0]
			scratch = wire.AppendInt32(scratch, hrep.Devices)
			scratch = wire.AppendInt32(scratch, hrep.Alive)
			scratch = wire.AppendInt32(scratch, hrep.EffectiveS)
			scratch = wire.AppendInt32(scratch, hrep.FullS)
			scratch = wire.AppendInt32(scratch, hrep.RebuildPending)
			scratch = wire.AppendInt64(scratch, hrep.RebuildDone)
			scratch = wire.AppendUint32(scratch, uint32(s.arr.Devices()))
			for g := 0; g < s.arr.Devices(); g++ {
				scratch = wire.AppendInt32(scratch, int32(g))
				mon, local := s.monitorFor(g)
				if mon == nil {
					scratch = wire.AppendFloat64(scratch, 0)
					scratch = append(scratch, byte(len("unmonitored")))
					scratch = append(scratch, "unmonitored"...)
					continue
				}
				scratch = wire.AppendFloat64(scratch, mon.EWMA(local))
				state := mon.State(local).String()
				scratch = append(scratch, byte(len(state)))
				scratch = append(scratch, state...)
			}
			err = wr.WriteFrame(resp, scratch)
		case wire.OpShardStats:
			gauges = s.shardGauges(gauges)
			scratch = wire.AppendShardStats(scratch[:0], gauges)
			err = wr.WriteFrame(resp, scratch)
		case wire.OpQuit:
			bw.Flush()
			return
		default:
			err = wr.WriteError(resp, "unknown opcode "+strconv.Itoa(int(h.Opcode)))
		}
		if err != nil {
			return
		}
		// Flush only when no further complete frame is buffered — i.e. when
		// the next Next call may block on the network. A pipelined burst
		// thus costs one write syscall. A buffered malformed header counts
		// as "more": Next fails on it without blocking and that error path
		// flushes.
		if !rd.More() {
			if bw.Flush() != nil {
				return
			}
			arrival = -1 // next frame comes off a fresh fill
		}
	}
}
