package qosnet

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strconv"
	"time"

	"flashqos/internal/admission"
	"flashqos/internal/core"
	"flashqos/internal/shard"
	"flashqos/internal/wire"
)

// errUnknownTenant is the uniform refusal for a submission tagged with an
// index (binary) or name (text) that no active tenant holds: both
// protocols answer with this exact message, never by silently running the
// request untenanted.
var errUnknownTenant = errors.New("unknown tenant")

// tenantEntry converts one tenant's aggregated shard counters to wire form.
func tenantEntry(tc shard.TenantCounters) wire.TenantEntry {
	return wire.TenantEntry{
		Index: tc.Index,
		Spec: wire.TenantSpec{
			Name:    tc.Spec.Name,
			Reserve: int32(tc.Spec.Reserve),
			Limit:   int32(tc.Spec.Limit),
			Weight:  tc.Spec.Weight,
		},
		Admitted:  tc.Admitted,
		Rejected:  tc.Rejected,
		OverLimit: tc.OverLimit,
		Deficit:   tc.Deficit,
	}
}

// maxBatchBlocks caps one OpBatch request; larger batches get an error
// frame (and the payload cap usually refuses them first).
const maxBatchBlocks = 1 << 16

// maxBurstFrames caps how many pipelined submit frames are drained into
// one burst before admission runs. Reader.More can stay true indefinitely
// under a continuous stream, so the cap bounds response latency and the
// per-connection burst scratch (one outcome frame per collected request).
const maxBurstFrames = 1024

// toWireOutcome converts a core outcome to its wire form. Rejected
// outcomes carry device -1 and zeroed timings, matching the text
// protocol's bare REJECTED line.
func toWireOutcome(out core.Outcome) wire.Outcome {
	if out.Rejected {
		o := wire.Outcome{Device: -1, Status: wire.StatusRejected}
		if out.Unavailable {
			o.Status |= wire.StatusUnavailable
		}
		if out.OverLimit {
			o.Status |= wire.StatusOverLimit
		}
		return o
	}
	o := wire.Outcome{Device: int32(out.Device), DelayMS: out.Delay, RespMS: out.Response()}
	if out.Delayed {
		o.Status |= wire.StatusDelayed
	}
	return o
}

// handleBinary serves one framed connection. Requests are processed in
// arrival order (admission is fast enough that per-connection concurrency
// would only buy reordering); the request ID is echoed on every response,
// so clients may pipeline arbitrarily deep and demultiplex completions.
//
// Pipelined READ/WRITE frames are drained into a burst before admitting:
// Reader.More tells, for free, whether the read buffer holds another
// complete frame, so every frame that arrived in one socket fill is
// collected and admitted burst-wise. Each request is routed to its owning
// shard while its frame is decoded (the bytes are already hot) into a
// per-shard bucket, so every shard admits one contiguous sub-burst with
// no scatter indirection and its ledger stripes are touched once per
// burst. Outcomes are bit-identical to per-frame submission; response
// frames encode append-style into one scratch buffer flushed with a
// single write, grouped by shard — request IDs are echoed on every
// response, so the protocol permits the reordering (BinaryClient demuxes
// by ID). Other opcodes settle the pending burst first.
func (s *Server) handleBinary(conn net.Conn, r *bufio.Reader, st *stripe) {
	rd := wire.NewReader(r, s.opts.MaxPayloadBytes)
	bw := bufio.NewWriterSize(conn, connReadBuf)
	wr := wire.NewWriter(bw)
	scratch := make([]byte, 0, 256)
	var blocks []int64      // OpBatch request scratch
	var outs []wire.Outcome // OpBatch response scratch
	var gauges []wire.ShardGauge
	nshards := s.arr.Shards()
	var (
		shIDs     = make([][]uint64, nshards)        // request IDs, bucketed by shard
		shReqs    = make([][]core.BurstReq, nshards) // the collected burst, bucketed by shard
		shSc      = make([]core.BurstScratch, nshards)
		collected int    // requests in the pending burst, all buckets
		burstResp []byte // encoded outcome frames for one burst
		batchSc   shard.BatchScratch
		dataBuf   []byte // OpGet payload scratch
	)
	hasHealth := s.anyHealth()
	arrival := -1.0 // virtual arrival stamp, renewed per socket fill

	// flushBurst admits the collected burst shard by shard and writes its
	// outcome frames: straight to the socket in one write when nothing
	// earlier sits in the bufio buffer (the common case — one syscall for
	// the whole burst), through the buffer otherwise so error responses
	// keep their place in the stream.
	flushBurst := func() error {
		if collected == 0 {
			return nil
		}
		collected = 0
		burstResp = burstResp[:0]
		for sh := 0; sh < nshards; sh++ {
			reqs := shReqs[sh]
			if len(reqs) == 0 {
				continue
			}
			bouts := s.submitBurstShard(st, sh, reqs, &shSc[sh], hasHealth, arrival)
			ids := shIDs[sh]
			for i := range bouts {
				op := uint8(wire.OpSubmit)
				if reqs[i].Write {
					op = wire.OpWrite
				}
				burstResp = wire.AppendOutcomeFrame(burstResp,
					wire.Header{Opcode: op, ID: ids[i]}, toWireOutcome(bouts[i]))
			}
			shIDs[sh], shReqs[sh] = ids[:0], reqs[:0]
		}
		if bw.Buffered() == 0 {
			_, err := conn.Write(burstResp)
			return err
		}
		_, err := bw.Write(burstResp)
		return err
	}

	for {
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		h, payload, err := rd.Next()
		if err != nil {
			// A burst can be pending here — More counts a buffered
			// malformed header as a frame — and its requests were already
			// well-formed: answer them before reporting the error.
			if flushBurst() != nil {
				return
			}
			// A framing violation (bad magic/version, oversized length,
			// truncated frame) cannot be resynchronized: best-effort error
			// frame, then close. Clean EOF just closes.
			if !errors.Is(err, io.EOF) {
				conn.SetWriteDeadline(time.Now().Add(time.Second))
				wr.WriteError(wire.Header{}, err.Error())
				bw.Flush()
			}
			return
		}
		if arrival < 0 {
			arrival = s.now()
		}
		resp := wire.Header{Opcode: h.Opcode, ID: h.ID}
		if h.Opcode == wire.OpSubmit || h.Opcode == wire.OpWrite {
			var (
				block  int64
				tenant int32
				perr   error
			)
			if h.Flags&wire.FlagTenant != 0 {
				// Tenant-tagged request: the payload carries a trailing
				// uvarint index, validated lock-free against the active-slot
				// table. An unknown index gets a uniform error frame — never
				// a silent fall back to the untenanted path.
				block, tenant, perr = wire.ParseTenantBlock(payload)
				if perr == nil && !s.arr.TenantActive(tenant) {
					perr = errUnknownTenant
				}
			} else {
				block, perr = wire.ParseBlock(payload)
			}
			if perr != nil {
				// The burst collected so far answers first so responses
				// stay in request order.
				if flushBurst() != nil {
					return
				}
				msg := "bad block payload"
				if perr == errUnknownTenant {
					msg = perr.Error()
				}
				if wr.WriteError(resp, msg) != nil {
					return
				}
			} else {
				sh := 0
				if nshards > 1 {
					sh = shard.Route(block, nshards)
				}
				shIDs[sh] = append(shIDs[sh], h.ID)
				shReqs[sh] = append(shReqs[sh], core.BurstReq{Block: block, Tenant: tenant, Write: h.Opcode == wire.OpWrite})
				collected++
				// Keep draining while the read buffer holds further
				// complete frames — they arrived together and admit as one
				// burst. The cap bounds latency and scratch growth under a
				// stream that never drains.
				if rd.More() && collected < maxBurstFrames {
					continue
				}
				if flushBurst() != nil {
					return
				}
			}
			if !rd.More() {
				if bw.Flush() != nil {
					return
				}
				arrival = -1 // next frame comes off a fresh fill
			}
			continue
		}
		// Every other opcode settles the pending burst first: its requests
		// arrived earlier and their responses go out earlier.
		if flushBurst() != nil {
			return
		}
		switch h.Opcode {
		case wire.OpBatch:
			var perr error
			blocks, perr = wire.ParseBatchReq(payload, blocks)
			if perr != nil || len(blocks) > maxBatchBlocks {
				err = wr.WriteError(resp, "bad batch payload")
				break
			}
			if outs != nil {
				outs = outs[:0]
			}
			for _, out := range s.submitBatch(st, blocks, &batchSc, hasHealth) {
				outs = append(outs, toWireOutcome(out))
			}
			scratch = wire.AppendBatchResp(scratch[:0], outs)
			err = wr.WriteFrame(resp, scratch)
		case wire.OpMap:
			block, perr := wire.ParseBlock(payload)
			if perr != nil {
				err = wr.WriteError(resp, "bad block payload")
				break
			}
			i := s.arr.ShardOf(block)
			sys := s.arr.System(i)
			base := i * s.arr.DevicesPerShard()
			m := wire.MapResp{DesignBlock: int32(sys.DesignBlock(block))}
			for _, d := range sys.Replicas(block) {
				m.Devices = append(m.Devices, int32(base+d))
			}
			scratch = wire.AppendMapResp(scratch[:0], m)
			err = wr.WriteFrame(resp, scratch)
		case wire.OpStats:
			req, del, rej, sum := s.totals()
			avg := 0.0
			if del > 0 {
				avg = sum / float64(del)
			}
			scratch = wire.AppendStats(scratch[:0], wire.Stats{
				Requests: req, Delayed: del, Rejected: rej, AvgDelayMS: avg,
			})
			err = wr.WriteFrame(resp, scratch)
		case wire.OpMetrics:
			scratch = s.appendMetrics(scratch[:0], hasHealth)
			err = wr.WriteFrame(resp, scratch)
		case wire.OpFail, wire.OpRecover:
			dev, perr := wire.ParseDevice(payload)
			if perr != nil {
				err = wr.WriteError(resp, "bad device payload")
				break
			}
			if !hasHealth {
				err = wr.WriteError(resp, "no health monitor")
				break
			}
			if int(dev) >= s.arr.Devices() {
				err = wr.WriteError(resp, "bad device "+strconv.Itoa(int(dev)))
				break
			}
			state, effS, aerr := s.adminFailRecover(h.Opcode == wire.OpFail, int(dev))
			if aerr != nil {
				err = wr.WriteError(resp, aerr.Error())
				break
			}
			scratch = wire.AppendAdminResp(scratch[:0], wire.AdminResp{
				EffectiveS: int32(effS), State: state,
			})
			err = wr.WriteFrame(resp, scratch)
		case wire.OpHealth:
			if !hasHealth {
				err = wr.WriteError(resp, "no health monitor")
				break
			}
			alive, pending, done := s.healthTotals()
			hrep := wire.Health{
				Devices:        int32(s.arr.Devices()),
				Alive:          int32(alive),
				EffectiveS:     int32(s.arr.EffectiveS()),
				FullS:          int32(s.arr.S()),
				RebuildPending: int32(pending),
				RebuildDone:    done,
			}
			scratch = scratch[:0]
			scratch = wire.AppendInt32(scratch, hrep.Devices)
			scratch = wire.AppendInt32(scratch, hrep.Alive)
			scratch = wire.AppendInt32(scratch, hrep.EffectiveS)
			scratch = wire.AppendInt32(scratch, hrep.FullS)
			scratch = wire.AppendInt32(scratch, hrep.RebuildPending)
			scratch = wire.AppendInt64(scratch, hrep.RebuildDone)
			scratch = wire.AppendUint32(scratch, uint32(s.arr.Devices()))
			for g := 0; g < s.arr.Devices(); g++ {
				scratch = wire.AppendInt32(scratch, int32(g))
				mon, local := s.monitorFor(g)
				if mon == nil {
					scratch = wire.AppendFloat64(scratch, 0)
					scratch = append(scratch, byte(len("unmonitored")))
					scratch = append(scratch, "unmonitored"...)
					continue
				}
				scratch = wire.AppendFloat64(scratch, mon.EWMA(local))
				state := mon.State(local).String()
				scratch = append(scratch, byte(len(state)))
				scratch = append(scratch, state...)
			}
			err = wr.WriteFrame(resp, scratch)
		case wire.OpShardStats:
			gauges = s.shardGauges(gauges)
			scratch = wire.AppendShardStats(scratch[:0], gauges)
			err = wr.WriteFrame(resp, scratch)
		case wire.OpGet:
			block, perr := wire.ParseBlock(payload)
			if perr != nil {
				err = wr.WriteError(resp, "bad block payload")
				break
			}
			if s.opts.Store == nil {
				err = wr.WriteError(resp, "no data store")
				break
			}
			out, b, gerr := s.dataGet(st, block, hasHealth, arrival, dataBuf[:0])
			if cap(b) > cap(dataBuf) {
				dataBuf = b // keep the grown buffer for the connection
			}
			if gerr != nil {
				err = wr.WriteError(resp, gerr.Error())
				break
			}
			scratch = wire.AppendGetResp(scratch[:0], toWireOutcome(out), b)
			err = wr.WriteFrame(resp, scratch)
		case wire.OpPut:
			block, data, perr := wire.ParsePutReq(payload)
			if perr != nil {
				err = wr.WriteError(resp, "bad put payload")
				break
			}
			if s.opts.Store == nil {
				err = wr.WriteError(resp, "no data store")
				break
			}
			out, werr := s.dataPut(st, block, data, hasHealth, arrival)
			if werr != nil {
				err = wr.WriteError(resp, werr.Error())
				break
			}
			err = wr.WriteOutcome(resp, toWireOutcome(out))
		case wire.OpTenantHello:
			names, perr := wire.ParseTenantHelloReq(payload)
			if perr != nil {
				err = wr.WriteError(resp, "bad tenant hello payload")
				break
			}
			idx := make([]int32, len(names))
			for i, n := range names {
				idx[i] = s.arr.TenantIndex(n)
			}
			scratch = wire.AppendTenantHelloResp(scratch[:0], idx)
			err = wr.WriteFrame(resp, scratch)
		case wire.OpTenant:
			cmd, spec, perr := wire.ParseTenantReq(payload)
			if perr != nil {
				err = wr.WriteError(resp, "bad tenant payload")
				break
			}
			switch cmd {
			case wire.TenantCmdSet:
				idx, terr := s.arr.TenantSet(admission.TenantSpec{
					Name:    spec.Name,
					Reserve: int(spec.Reserve),
					Limit:   int(spec.Limit),
					Weight:  spec.Weight,
				})
				if terr != nil {
					err = wr.WriteError(resp, terr.Error())
					break
				}
				scratch = wire.AppendInt32(scratch[:0], idx)
				err = wr.WriteFrame(resp, scratch)
			case wire.TenantCmdGet:
				tc, ok := s.arr.TenantGet(spec.Name)
				if !ok {
					err = wr.WriteError(resp, errUnknownTenant.Error())
					break
				}
				scratch = wire.AppendTenantStats(scratch[:0], []wire.TenantEntry{tenantEntry(tc)})
				err = wr.WriteFrame(resp, scratch)
			case wire.TenantCmdDel:
				if terr := s.arr.TenantDel(spec.Name); terr != nil {
					err = wr.WriteError(resp, terr.Error())
					break
				}
				err = wr.WriteFrame(resp, nil)
			}
		case wire.OpTenantStats:
			var entries []wire.TenantEntry
			for _, tc := range s.arr.TenantStats() {
				entries = append(entries, tenantEntry(tc))
			}
			scratch = wire.AppendTenantStats(scratch[:0], entries)
			err = wr.WriteFrame(resp, scratch)
		case wire.OpQuit:
			bw.Flush()
			return
		default:
			err = wr.WriteError(resp, "unknown opcode "+strconv.Itoa(int(h.Opcode)))
		}
		if err != nil {
			return
		}
		// Flush only when no further complete frame is buffered — i.e. when
		// the next Next call may block on the network. A pipelined burst
		// thus costs one write syscall. A buffered malformed header counts
		// as "more": Next fails on it without blocking and that error path
		// flushes.
		if !rd.More() {
			if bw.Flush() != nil {
				return
			}
			arrival = -1 // next frame comes off a fresh fill
		}
	}
}
