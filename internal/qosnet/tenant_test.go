package qosnet

import (
	"strings"
	"sync"
	"testing"

	"flashqos/internal/admission"
	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/wire"
)

// startTenantServer starts a server whose T-window is far longer than the
// test's wall-clock run, so every request lands in window 0 and tenant
// caps/limits apply deterministically regardless of round-trip timing.
func startTenantServer(t *testing.T) (*Server, string) {
	t.Helper()
	sys, err := core.New(core.Config{Design: design.Paper931(), IntervalMS: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, addr.String()
}

// TestTenantUnknownUniformAcrossProtocols pins the satellite contract: a
// submission tagged with a tenant the server does not know is refused with
// the same "unknown tenant" wire error on both protocols — never silently
// admitted on the untenanted path.
func TestTenantUnknownUniformAcrossProtocols(t *testing.T) {
	srv, addr := startTenantServer(t)
	if _, err := srv.Array().TenantSet(admission.TenantSpec{Name: "alpha", Reserve: 2, Weight: 1}); err != nil {
		t.Fatal(err)
	}

	tc, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	if _, err := tc.ReadTenant(5, "ghost"); err == nil || err.Error() != "ERR unknown tenant" {
		t.Fatalf("text unknown tenant: err = %v, want ERR unknown tenant", err)
	}
	if _, err := tc.WriteTenant(5, "ghost"); err == nil || !strings.Contains(err.Error(), "unknown tenant") {
		t.Fatalf("text unknown tenant write: err = %v", err)
	}

	bc := dialBinT(t, addr)
	for _, idx := range []int32{2, 99} { // inactive slot and out-of-table
		if _, err := bc.ReadTenant(5, idx); err == nil || !strings.Contains(err.Error(), "unknown tenant") {
			t.Fatalf("binary unknown tenant %d: err = %v", idx, err)
		}
		if _, err := bc.WriteTenant(5, idx); err == nil || !strings.Contains(err.Error(), "unknown tenant") {
			t.Fatalf("binary unknown tenant write %d: err = %v", idx, err)
		}
	}

	// A deleted tenant's index and name both turn unknown on the spot.
	if err := srv.Array().TenantDel("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := bc.ReadTenant(5, 1); err == nil || !strings.Contains(err.Error(), "unknown tenant") {
		t.Fatalf("binary deleted tenant: err = %v", err)
	}
	if _, err := tc.ReadTenant(5, "alpha"); err == nil || !strings.Contains(err.Error(), "unknown tenant") {
		t.Fatalf("text deleted tenant: err = %v", err)
	}

	// Counters saw none of the refused submissions, and untenanted traffic
	// was never touched.
	if stats := srv.Array().TenantStats(); len(stats) != 0 {
		t.Fatalf("refused submissions left counters: %+v", stats)
	}
	if res, err := tc.Read(5); err != nil || res.Rejected {
		t.Fatalf("untenanted read after refusals: %+v %v", res, err)
	}
}

// TestBinaryTenantEndToEnd drives the whole binary tenant surface against
// one server: live SET, hello negotiation, tagged submissions with the
// over-limit status bit, GET/STATS gauge aggregation, the METRICS series,
// and DEL turning the index unknown.
func TestBinaryTenantEndToEnd(t *testing.T) {
	_, addr := startTenantServer(t)
	c := dialBinT(t, addr)

	idx, err := c.TenantSet(wire.TenantSpec{Name: "alpha", Reserve: 2, Limit: 2, Weight: 1})
	if err != nil || idx != 1 {
		t.Fatalf("TenantSet alpha: %d %v", idx, err)
	}
	if idx, err = c.TenantSet(wire.TenantSpec{Name: "beta", Reserve: 2, Weight: 1}); err != nil || idx != 2 {
		t.Fatalf("TenantSet beta: %d %v", idx, err)
	}
	if _, err := c.TenantSet(wire.TenantSpec{Name: "big", Reserve: 99, Weight: 1}); err == nil {
		t.Fatal("TenantSet beyond S accepted")
	}

	hello, err := c.TenantHello([]string{"alpha", "beta", "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if hello[0] != 1 || hello[1] != 2 || hello[2] != 0 {
		t.Fatalf("hello = %v, want [1 2 0]", hello)
	}

	// Five tagged reads against Limit 2: two admitted, three rejected with
	// the over-limit status bit (everything lands in window 0).
	admitted, overLimit := 0, 0
	for b := int64(0); b < 5; b++ {
		res, err := c.ReadTenant(b, hello[0])
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case !res.Rejected:
			admitted++
		case res.OverLimit:
			overLimit++
		default:
			t.Fatalf("block %d: rejected without the over-limit bit: %+v", b, res)
		}
	}
	if admitted != 2 || overLimit != 3 {
		t.Fatalf("admitted %d overLimit %d, want 2 and 3", admitted, overLimit)
	}

	entry, err := c.TenantGet("alpha")
	if err != nil {
		t.Fatal(err)
	}
	want := wire.TenantEntry{
		Index:    1,
		Spec:     wire.TenantSpec{Name: "alpha", Reserve: 2, Limit: 2, Weight: 1},
		Admitted: 2, Rejected: 3, OverLimit: 3,
	}
	if entry != want {
		t.Fatalf("TenantGet = %+v, want %+v", entry, want)
	}
	if _, err := c.TenantGet("ghost"); err == nil || !strings.Contains(err.Error(), "unknown tenant") {
		t.Fatalf("TenantGet ghost: %v", err)
	}

	stats, err := c.TenantStats()
	if err != nil || len(stats) != 2 {
		t.Fatalf("TenantStats: %+v %v", stats, err)
	}
	if stats[0] != want || stats[1].Spec.Name != "beta" || stats[1].Index != 2 {
		t.Fatalf("TenantStats entries: %+v", stats)
	}

	metrics, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		`flashqos_tenant_admitted_total{tenant="alpha"} 2`,
		`flashqos_tenant_rejected_total{tenant="alpha"} 3`,
		`flashqos_tenant_over_limit_total{tenant="alpha"} 3`,
		`flashqos_tenant_reservation_deficit_total{tenant="alpha"} 0`,
		`flashqos_tenant_admitted_total{tenant="beta"} 0`,
	} {
		if !strings.Contains(metrics, series+"\n") {
			t.Errorf("metrics page missing %q", series)
		}
	}

	if err := c.TenantDel("beta"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadTenant(1, 2); err == nil || !strings.Contains(err.Error(), "unknown tenant") {
		t.Fatalf("deleted tenant index still submits: %v", err)
	}
	// Untenanted traffic rode along untouched the whole time.
	if res, err := c.Read(9); err != nil || res.Rejected {
		t.Fatalf("untenanted read: %+v %v", res, err)
	}
}

// TestTextTenantVerbs covers the TENANT SET/GET/DEL line verbs and
// name-tagged READ/WRITE on the text protocol.
func TestTextTenantVerbs(t *testing.T) {
	_, addr := startTenantServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	idx, err := c.TenantSet("alpha", 2, 4, 1.5)
	if err != nil || idx != 1 {
		t.Fatalf("TENANT SET: %d %v", idx, err)
	}
	if _, err := c.TenantSet("big", 99, 0, 1); err == nil {
		t.Fatal("TENANT SET beyond S accepted")
	}
	if res, err := c.ReadTenant(3, "alpha"); err != nil || res.Rejected {
		t.Fatalf("tagged read: %+v %v", res, err)
	}
	if res, err := c.WriteTenant(4, "alpha"); err != nil || res.Rejected {
		t.Fatalf("tagged write: %+v %v", res, err)
	}
	ti, err := c.TenantGet("alpha")
	if err != nil {
		t.Fatal(err)
	}
	want := TenantInfo{Name: "alpha", Index: 1, Reserve: 2, Limit: 4, Weight: 1.5, Admitted: 2}
	if ti != want {
		t.Fatalf("TENANT GET = %+v, want %+v", ti, want)
	}
	if err := c.TenantDel("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TenantGet("alpha"); err == nil {
		t.Fatal("TENANT GET after DEL succeeded")
	}
	if _, err := c.ReadTenant(3, "alpha"); err == nil {
		t.Fatal("tagged read after DEL succeeded")
	}
}

// TestTenantReconfigOverWire hammers tenant-tagged submissions over the
// binary protocol while the policy is live-reconfigured through TENANT SET
// on another connection: no submission may fail (SET keeps indices active),
// no engine pause, and the registry stays consistent. Run with -race this
// doubles as the reconfiguration stress for the network layer.
func TestTenantReconfigOverWire(t *testing.T) {
	srv, addr := startServer(t) // real 0.133ms windows: reconfig races window turnover
	if _, err := srv.Array().TenantSet(admission.TenantSpec{Name: "alpha", Reserve: 2, Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Array().TenantSet(admission.TenantSpec{Name: "beta", Reserve: 2, Weight: 1}); err != nil {
		t.Fatal(err)
	}

	const perWorker = 400
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for w, tenant := range []int32{1, 2} {
		wg.Add(1)
		go func(w int, tenant int32) {
			defer wg.Done()
			c, err := DialBinary(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perWorker; i++ {
				if _, err := c.ReadTenant(int64(w*perWorker+i), tenant); err != nil {
					errs <- err
					return
				}
			}
		}(w, tenant)
	}

	admin := dialBinT(t, addr)
	for i := 0; i < 60; i++ {
		wa, wb := float64(3), float64(1)
		if i%2 == 1 {
			wa, wb = 1, 3
		}
		if _, err := admin.TenantSet(wire.TenantSpec{Name: "alpha", Reserve: 2, Weight: wa}); err != nil {
			t.Fatal(err)
		}
		if _, err := admin.TenantSet(wire.TenantSpec{Name: "beta", Reserve: 2, Weight: wb}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats, err := admin.TenantStats()
	if err != nil || len(stats) != 2 {
		t.Fatalf("TenantStats: %+v %v", stats, err)
	}
	for _, e := range stats {
		if e.Admitted+e.Rejected+e.OverLimit != perWorker {
			t.Fatalf("tenant %s lost submissions: %+v", e.Spec.Name, e)
		}
		if e.Admitted == 0 {
			t.Fatalf("tenant %s starved across reconfigs: %+v", e.Spec.Name, e)
		}
	}
}
