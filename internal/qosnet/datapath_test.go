package qosnet

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"flashqos/internal/admission"
	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/health"
	"flashqos/internal/pack"
	"flashqos/internal/shard"
)

// startDataServer runs a sharded server with a pack store attached (and,
// when monitors is true, per-shard health monitors whose rebuild pass
// copies real payloads through the store).
func startDataServer(t *testing.T, shards int, monitors bool) (*Server, *pack.Store, string) {
	t.Helper()
	arr, err := shard.New(shards, core.Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	store, err := pack.Open(t.TempDir(), arr.Devices(), pack.Options{SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	if monitors {
		cfg := health.Config{SuspectAfter: 1, FailAfter: 2}
		if err := arr.NewHealthMonitorsWithCopy(10_000, cfg, RebuildCopy(arr, store)); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServerSharded(arr, Options{Store: store})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, store, addr.String()
}

func blockPayload(block int64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int64(i)*11 + block*29 + 3)
	}
	return b
}

// TestDataPathRoundTrip is the core acceptance path in-process: PUT then
// GET of real bytes over the binary protocol with QoS admission in front,
// across a 2-shard array so global↔local device translation is exercised.
func TestDataPathRoundTrip(t *testing.T) {
	_, store, addr := startDataServer(t, 2, false)
	c := dialBinT(t, addr)

	const n = 64
	for b := int64(0); b < n; b++ {
		r, err := c.Put(b*7, blockPayload(b, 100+int(b)))
		if err != nil {
			t.Fatalf("put %d: %v", b, err)
		}
		if r.Rejected {
			t.Fatalf("put %d rejected under light load", b)
		}
	}
	for b := int64(0); b < n; b++ {
		r, data, err := c.Get(b * 7)
		if err != nil {
			t.Fatalf("get %d: %v", b, err)
		}
		if r.Rejected {
			t.Fatalf("get %d rejected under light load", b)
		}
		if !bytes.Equal(data, blockPayload(b, 100+int(b))) {
			t.Fatalf("block %d: payload mismatch (%d bytes)", b, len(data))
		}
		if r.RespMS <= 0 {
			t.Fatalf("get %d: outcome carries no response time", b)
		}
	}
	// Every replica of a written block must hold the bytes (full-stripe
	// write), checked through the MAP verb's device list.
	_, devs, err := c.Map(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range devs {
		if !store.Has(g, 0) {
			t.Fatalf("replica device %d missing block 0 after PUT", g)
		}
	}
	// A block never written is an error, not garbage bytes.
	if _, _, err := c.Get(999_999); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("missing block: err = %v, want not-found", err)
	}
	// Overwrite supersedes.
	if _, err := c.Put(0, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, data, err := c.Get(0); err != nil || string(data) != "v2" {
		t.Fatalf("overwrite: %q, %v", data, err)
	}
}

// TestDataPathWithoutStore pins the compatibility contract: a server with
// no store answers the data verbs with an error frame and everything else
// is untouched.
func TestDataPathWithoutStore(t *testing.T) {
	arr, err := shard.New(1, core.Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerSharded(arr, Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	c := dialBinT(t, addr.String())
	if _, err := c.Put(1, []byte("x")); err == nil || !strings.Contains(err.Error(), "no data store") {
		t.Fatalf("put without store: err = %v", err)
	}
	if _, _, err := c.Get(1); err == nil || !strings.Contains(err.Error(), "no data store") {
		t.Fatalf("get without store: err = %v", err)
	}
	// Timing-only verbs still work on the same connection.
	if _, err := c.Read(1); err != nil {
		t.Fatalf("read after data-verb errors: %v", err)
	}
}

// faultStore wraps a BlockStore and fails reads/writes on selected global
// devices with a media error.
type faultStore struct {
	BlockStore
	mu      sync.Mutex
	badRead map[int]bool
}

func (f *faultStore) setBadRead(dev int, bad bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.badRead == nil {
		f.badRead = make(map[int]bool)
	}
	f.badRead[dev] = bad
}

func (f *faultStore) Get(dev int, block int64, dst []byte) ([]byte, error) {
	f.mu.Lock()
	bad := f.badRead[dev]
	f.mu.Unlock()
	if bad {
		return dst, fmt.Errorf("injected media fault on device %d", dev)
	}
	return f.BlockStore.Get(dev, block, dst)
}

// TestMediaFaultsDriveHealth is the tentpole's health integration: real
// read errors from the store — not synthetic admin commands — must walk a
// device through Suspect into Failed, while GETs keep succeeding off the
// block's other replicas.
func TestMediaFaultsDriveHealth(t *testing.T) {
	arr, err := shard.New(1, core.Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	store, err := pack.Open(t.TempDir(), arr.Devices(), pack.Options{SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	fs := &faultStore{BlockStore: store}
	if err := arr.NewHealthMonitors(0, health.Config{SuspectAfter: 1, FailAfter: 2}); err != nil {
		t.Fatal(err)
	}
	srv := NewServerSharded(arr, Options{Store: fs})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	c := dialBinT(t, addr.String())

	const block = 5
	if _, err := c.Put(block, blockPayload(block, 64)); err != nil {
		t.Fatal(err)
	}
	_, devs, err := c.Map(block)
	if err != nil {
		t.Fatal(err)
	}
	target := devs[0]
	fs.setBadRead(target, true)

	mon := arr.Monitor(0)
	deadline := time.Now().Add(5 * time.Second)
	for mon.State(target) != health.Failed {
		if time.Now().After(deadline) {
			t.Fatalf("device %d state %v after sustained media faults, want Failed", target, mon.State(target))
		}
		// Reads keep being admitted; whenever admission picks the faulted
		// device, the data path reports the error and serves the fallback.
		r, data, err := c.Get(block)
		if err != nil {
			t.Fatalf("get during faults: %v", err)
		}
		if !r.Rejected && !bytes.Equal(data, blockPayload(block, 64)) {
			t.Fatal("fallback read returned wrong bytes")
		}
	}
	// Once failed, the device leaves the mask: GETs still succeed.
	if _, data, err := c.Get(block); err != nil || !bytes.Equal(data, blockPayload(block, 64)) {
		t.Fatalf("get after device failed: %v", err)
	}
}

// TestRebuildMovesPayloads drives the full repair cycle with real bytes:
// fail a device (its replicas reprotect onto survivors), write new blocks
// degraded (the dead device misses them), recover it (resilver copies the
// diff back), and assert the recovered device holds every block it owns a
// replica of.
func TestRebuildMovesPayloads(t *testing.T) {
	_, store, addr := startDataServer(t, 1, true)
	c := dialBinT(t, addr)

	blocks := make([]int64, 40)
	for i := range blocks {
		blocks[i] = int64(i)
		if _, err := c.Put(int64(i), blockPayload(int64(i), 128)); err != nil {
			t.Fatal(err)
		}
	}
	// Pick the device with the most replicas to make the diff meaningful.
	target := 0
	if _, _, err := c.Fail(target); err != nil {
		t.Fatal(err)
	}
	// Degraded writes: the failed device is skipped.
	for i := 40; i < 60; i++ {
		blocks = append(blocks, int64(i))
		if _, err := c.Put(int64(i), blockPayload(int64(i), 128)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Recover(target); err != nil {
		t.Fatal(err)
	}
	// The serve loop pumps Monitor.Step; the resilver must repopulate the
	// device with every block it is a replica holder of — byte-for-byte.
	deadline := time.Now().Add(5 * time.Second)
	for {
		missing := 0
		for _, b := range blocks {
			if holdsReplica(c, t, b, target) && !store.Has(target, b) {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d blocks still missing on recovered device %d", missing, target)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var buf []byte
	for _, b := range blocks {
		if !holdsReplica(c, t, b, target) {
			continue
		}
		got, err := store.Get(target, b, buf[:0])
		buf = got
		if err != nil || !bytes.Equal(got, blockPayload(b, 128)) {
			t.Fatalf("resilvered block %d wrong on device %d: %v", b, target, err)
		}
	}
}

func holdsReplica(c *BinaryClient, t *testing.T, block int64, dev int) bool {
	t.Helper()
	_, devs, err := c.Map(block)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		if d == dev {
			return true
		}
	}
	return false
}

// TestPutRejectedCarriesNoWrite pins that a rejected PUT stores nothing:
// admission stays in charge of the data path.
func TestPutRejectedCarriesNoWrite(t *testing.T) {
	arr, err := shard.New(1, core.Config{Design: design.Paper931(), Policy: admission.Reject})
	if err != nil {
		t.Fatal(err)
	}
	store, err := pack.Open(t.TempDir(), arr.Devices(), pack.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := NewServerSharded(arr, Options{Store: store})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	c := dialBinT(t, addr.String())

	// Flood one virtual instant with pipelined writes until some reject.
	const n = 4096
	chans := make([]<-chan SubmitResult, 0, n)
	for i := 0; i < n; i++ {
		chans = append(chans, c.PutAsync(int64(i), []byte{byte(i)}))
	}
	rejected := 0
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("put %d: %v", i, res.Err)
		}
		if res.Rejected {
			rejected++
			for d := 0; d < store.Devices(); d++ {
				if store.Has(d, int64(i)) {
					t.Fatalf("rejected put %d left bytes on device %d", i, d)
				}
			}
		}
	}
	if rejected == 0 {
		t.Skip("no rejections under this flood; admission kept up")
	}
}
