package qosnet

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"flashqos/internal/core"
	"flashqos/internal/design"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	sys, err := core.New(core.Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sys)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, addr.String()
}

func TestReadRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Read(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected {
		t.Fatal("first read rejected")
	}
	if res.Device < 0 || res.Device > 8 {
		t.Errorf("device %d out of range", res.Device)
	}
	if res.RespMS < 0.132 || res.RespMS > 0.134 {
		t.Errorf("response %.6f, want ≈ 0.1325 (the guarantee)", res.RespMS)
	}
}

func TestMap(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db, devs, err := c.Map(100)
	if err != nil {
		t.Fatal(err)
	}
	if db != 100%36 {
		t.Errorf("design block %d, want modulo fallback %d", db, 100%36)
	}
	if len(devs) != 3 {
		t.Errorf("got %d replica devices, want 3", len(devs))
	}
	seen := map[int]bool{}
	for _, d := range devs {
		if d < 0 || d > 8 || seen[d] {
			t.Errorf("bad replica set %v", devs)
		}
		seen[d] = true
	}
}

func TestStatsAndConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	const clients = 8
	const perClient = 25
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := int64(0); j < perClient; j++ {
				if _, err := c.Read(base*1000 + j); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reqs, delayed, rejected, avg, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if reqs != clients*perClient {
		t.Errorf("requests = %d, want %d", reqs, clients*perClient)
	}
	if rejected != 0 {
		t.Errorf("rejected = %d, want 0 (delay policy)", rejected)
	}
	if delayed > 0 && avg <= 0 {
		t.Error("delayed requests with zero average delay")
	}
}

func TestProtocolErrors(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(line string) string {
		fmt.Fprintln(conn, line)
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read after %q: %v", line, err)
		}
		return strings.TrimSpace(resp)
	}
	if got := send("READ"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("READ without arg: %q", got)
	}
	if got := send("READ abc"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("READ abc: %q", got)
	}
	if got := send("BOGUS 1"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("unknown command: %q", got)
	}
	if got := send("MAP 5"); !strings.HasPrefix(got, "MAP 5") {
		t.Errorf("MAP 5: %q", got)
	}
}

func TestServeBeforeListen(t *testing.T) {
	sys, _ := core.New(core.Config{Design: design.Paper931()})
	srv := NewServer(sys)
	if err := srv.Serve(); err == nil {
		t.Error("Serve before Listen should fail")
	}
}

func TestCloseUnblocksServe(t *testing.T) {
	_, addr := startServer(t) // Cleanup closes it
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestMetrics(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintln(conn, "READ 1")
	r := bufio.NewReader(conn)
	if _, err := r.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(conn, "METRICS")
	var lines []string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		lines = append(lines, line)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"flashqos_requests_total 1",
		"flashqos_rejected_total 0",
		"flashqos_admission_limit 5",
		"flashqos_q_estimate 0",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("metrics missing %q in:\n%s", want, joined)
		}
	}
}

func TestWriteCommand(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	fmt.Fprintln(conn, "WRITE 5")
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK") {
		t.Fatalf("WRITE response: %q", line)
	}
	// Write response spans the program time, longer than a read.
	var dev int
	var delay, resp float64
	var delayed string
	if _, err := fmt.Sscanf(strings.TrimSpace(line), "OK %d %f %f %s", &dev, &delay, &resp, &delayed); err != nil {
		t.Fatal(err)
	}
	if resp < 0.3 {
		t.Errorf("write response %.4f, want >= program time 0.35", resp)
	}
}

func TestClientMetrics(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Read(3); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "flashqos_requests_total 1") {
		t.Errorf("metrics text missing counters:\n%s", m)
	}
}
