package qosnet

import (
	"errors"
	"fmt"

	"flashqos/internal/core"
	"flashqos/internal/health"
	"flashqos/internal/pack"
	"flashqos/internal/shard"
)

// BlockStore is the per-device payload engine behind the binary GET/PUT
// data verbs — the surface pack.Store implements. Device ids are global
// (shard·N + local), matching the outcome's Device field. Get appends the
// payload to dst and returns the extended slice; on error dst comes back
// with its length unchanged. A missing block is pack.ErrNotFound (or an
// error wrapping it); any other Get/Put error is treated as a media fault
// and fed to the device's health monitor.
type BlockStore interface {
	Get(dev int, block int64, dst []byte) ([]byte, error)
	Put(dev int, block int64, payload []byte) error
	Has(dev int, block int64) bool
	Blocks(dev int, dst []int64) []int64
	Copy(from, to int, block int64) error
}

// errNoReplica answers a GET for a block no available replica holds.
var errNoReplica = errors.New("block not found")

// dataGet runs one payload read: QoS admission decides the device and the
// timing outcome exactly as a timing-only READ would, then the payload is
// served from the store — from the chosen device when it holds the block,
// falling back to the block's other available replicas (a replica can
// legitimately lag behind during rebuild). The health feed is driven by
// the real I/O: the serving device reports the outcome's response latency
// as its success sample, a device whose read faulted reports an error —
// which is what lets media corruption walk a device to Suspect/Failed.
//
// The payload is appended to dst; the returned slice replaces it. A
// rejected outcome reads nothing. A non-nil error means no bytes could be
// served (every replica missed or faulted).
func (s *Server) dataGet(st *stripe, block int64, hasHealth bool, arrival float64, dst []byte) (core.Outcome, []byte, error) {
	out := s.submitData(st, false, block, arrival)
	if out.Rejected {
		return out, dst, nil
	}
	sh := s.arr.ShardOf(block)
	base := sh * s.arr.DevicesPerShard()
	var mask *health.Mask
	if mon := s.arr.Monitor(sh); mon != nil {
		mask = mon.Mask()
	}
	var lastErr error
	tryDev := func(g int) ([]byte, bool) {
		b, err := s.opts.Store.Get(g, block, dst)
		if err == nil {
			if hasHealth {
				if m, local := s.monitorFor(g); m != nil {
					m.ReportSuccess(local, out.Response())
				}
			}
			return b, true
		}
		if !errors.Is(err, pack.ErrNotFound) {
			// Real media fault: feed the detector and remember the cause.
			if hasHealth {
				if m, local := s.monitorFor(g); m != nil {
					m.ReportError(local)
				}
			}
			lastErr = err
		}
		return nil, false
	}
	if b, ok := tryDev(out.Device); ok {
		return out, b, nil
	}
	for _, d := range s.arr.System(sh).Replicas(block) {
		g := base + d
		if g == out.Device {
			continue
		}
		// Fallbacks stay within the mask: an unavailable replica is being
		// rebuilt and may hold stale bytes.
		if mask != nil && !mask.Has(d) {
			continue
		}
		if b, ok := tryDev(g); ok {
			return out, b, nil
		}
	}
	if lastErr != nil {
		return out, dst, lastErr
	}
	return out, dst, errNoReplica
}

// dataPut runs one payload write: QoS admission prices it like a
// timing-only WRITE (all replicas touched), then the payload is stored
// durably on every available replica of the block. Unavailable replicas
// are skipped — that is the degraded write the resilver pass catches up —
// and a replica whose write faults reports a health error. The ack
// contract: a nil error means the payload is group-commit fsynced on at
// least one replica and every available replica was attempted.
func (s *Server) dataPut(st *stripe, block int64, data []byte, hasHealth bool, arrival float64) (core.Outcome, error) {
	out := s.submitData(st, true, block, arrival)
	if out.Rejected {
		return out, nil
	}
	sh := s.arr.ShardOf(block)
	base := sh * s.arr.DevicesPerShard()
	var mask *health.Mask
	if mon := s.arr.Monitor(sh); mon != nil {
		mask = mon.Mask()
	}
	wrote := 0
	var lastErr error
	for _, d := range s.arr.System(sh).Replicas(block) {
		if mask != nil && !mask.Has(d) {
			continue
		}
		g := base + d
		if err := s.opts.Store.Put(g, block, data); err != nil {
			lastErr = err
			if hasHealth {
				if m, local := s.monitorFor(g); m != nil {
					m.ReportError(local)
				}
			}
			continue
		}
		wrote++
		if hasHealth {
			if m, local := s.monitorFor(g); m != nil {
				m.ReportSuccess(local, out.Response())
			}
		}
	}
	if wrote == 0 {
		if lastErr == nil {
			lastErr = fmt.Errorf("no available replica for block %d", block)
		}
		return out, lastErr
	}
	return out, nil
}

// submitData is the admission + accounting half of submitAt without its
// health success feed: on the data path the success sample belongs to the
// device that actually served bytes, which dataGet/dataPut only know
// after the real I/O lands.
func (s *Server) submitData(st *stripe, write bool, block int64, arrival float64) core.Outcome {
	var out core.Outcome
	if write {
		out = s.arr.SubmitWrite(arrival, block)
	} else {
		out = s.arr.Submit(arrival, block)
	}
	bump(&st.shard[s.arr.ShardOf(block)])
	if out.Rejected {
		bump(&st.rejected)
	} else if out.Delayed {
		bump(&st.delayed)
		st.addDelay(out.Delay)
	}
	return out
}

// RebuildCopy returns the rebuild callback that moves real payloads when
// the health state machine schedules repair work — pass it to
// shard.Array.NewHealthMonitorsWithCopy alongside Options.Store. For each
// repair unit (one design bucket on one device):
//
//   - resilver: the recovered device is repopulated — every block of the
//     bucket held by a surviving replica is copied onto it (blocks it
//     already holds are skipped, so a short outage diffs cheaply);
//   - reprotect: the failed device's redundancy is restored within the
//     bucket's remaining replica set — every available replica ends up
//     holding every block of the bucket that any of them holds.
//
// Copies run at the rebuilder's token rate with the monitor's transition
// lock released (Monitor.Step dequeues under the lock, copies outside
// it), so the group-commit fsyncs here never stall health reporting on
// the GET/PUT path. They are best-effort: a faulted source just means the
// next replica (or the next scheduled pass after re-fail) supplies the
// block.
func RebuildCopy(arr *shard.Array, store BlockStore) func(sh, dev, bucket int, kind health.RebuildKind) {
	return func(sh, dev, bucket int, kind health.RebuildKind) {
		sys := arr.System(sh)
		base := sh * arr.DevicesPerShard()
		reps := sys.System().Allocator().Replicas(bucket)
		var mask *health.Mask
		if mon := arr.Monitor(sh); mon != nil {
			mask = mon.Mask()
		}
		avail := func(d int) bool { return mask == nil || mask.Has(d) }
		var targets []int
		switch kind {
		case health.Resilver:
			targets = []int{dev}
		case health.Reprotect:
			for _, d := range reps {
				if d != dev && avail(d) {
					targets = append(targets, d)
				}
			}
		}
		if len(targets) == 0 {
			return
		}
		var blocks []int64
		for _, src := range reps {
			// The device under repair is outside the mask, so it is never a
			// source; a reprotect target can be, for blocks the others miss.
			if !avail(src) {
				continue
			}
			blocks = store.Blocks(base+src, blocks[:0])
			for _, b := range blocks {
				if sys.DesignBlock(b) != bucket {
					continue
				}
				for _, t := range targets {
					if t == src || store.Has(base+t, b) {
						continue
					}
					store.Copy(base+src, base+t, b)
				}
			}
		}
	}
}
