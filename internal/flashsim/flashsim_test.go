package flashsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newArray(t testing.TB, cfg Config) *Array {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSingleRead(t *testing.T) {
	a := newArray(t, Config{Modules: 9})
	a.Submit(Request{ID: 1, Arrival: 0, Module: 3})
	cs := a.Run()
	if len(cs) != 1 {
		t.Fatalf("got %d completions, want 1", len(cs))
	}
	c := cs[0]
	if c.Start != 0 || math.Abs(c.Finish-DefaultReadLatency) > 1e-12 {
		t.Errorf("start/finish = %g/%g", c.Start, c.Finish)
	}
	if math.Abs(c.Response()-DefaultReadLatency) > 1e-12 {
		t.Errorf("response = %g, want %g", c.Response(), DefaultReadLatency)
	}
	if c.Wait() != 0 {
		t.Errorf("wait = %g, want 0", c.Wait())
	}
}

func TestFIFOQueueing(t *testing.T) {
	a := newArray(t, Config{Modules: 1, ReadLatency: 1.0})
	for i := 0; i < 3; i++ {
		a.Submit(Request{ID: int64(i), Arrival: 0, Module: 0})
	}
	cs := a.Run()
	if len(cs) != 3 {
		t.Fatalf("got %d completions", len(cs))
	}
	// FIFO: IDs complete in submission order, at 1, 2, 3.
	for i, c := range cs {
		if c.ID != int64(i) {
			t.Errorf("completion %d is request %d; FIFO violated", i, c.ID)
		}
		if math.Abs(c.Finish-float64(i+1)) > 1e-12 {
			t.Errorf("request %d finished at %g, want %d", c.ID, c.Finish, i+1)
		}
	}
}

func TestParallelModules(t *testing.T) {
	a := newArray(t, Config{Modules: 4, ReadLatency: 1.0})
	for i := 0; i < 4; i++ {
		a.Submit(Request{ID: int64(i), Arrival: 0, Module: i})
	}
	cs := a.Run()
	for _, c := range cs {
		if math.Abs(c.Finish-1.0) > 1e-12 {
			t.Errorf("module %d finished at %g, want 1 (parallel)", c.Module, c.Finish)
		}
	}
}

func TestWaysParallelism(t *testing.T) {
	// 2 ways: two requests on the same module serve concurrently.
	a := newArray(t, Config{Modules: 1, Ways: 2, ReadLatency: 1.0})
	for i := 0; i < 4; i++ {
		a.Submit(Request{ID: int64(i), Arrival: 0, Module: 0})
	}
	cs := a.Run()
	var atOne, atTwo int
	for _, c := range cs {
		switch {
		case math.Abs(c.Finish-1.0) < 1e-12:
			atOne++
		case math.Abs(c.Finish-2.0) < 1e-12:
			atTwo++
		default:
			t.Errorf("unexpected finish %g", c.Finish)
		}
	}
	if atOne != 2 || atTwo != 2 {
		t.Errorf("finishes: %d@1ms %d@2ms, want 2/2", atOne, atTwo)
	}
}

func TestArrivalDuringService(t *testing.T) {
	a := newArray(t, Config{Modules: 1, ReadLatency: 1.0})
	a.Submit(Request{ID: 0, Arrival: 0, Module: 0})
	a.Submit(Request{ID: 1, Arrival: 0.5, Module: 0})
	cs := a.Run()
	if math.Abs(cs[1].Start-1.0) > 1e-12 {
		t.Errorf("second request started at %g, want 1.0 (after first)", cs[1].Start)
	}
	if math.Abs(cs[1].Response()-1.5) > 1e-12 {
		t.Errorf("second response = %g, want 1.5", cs[1].Response())
	}
}

func TestIdleGap(t *testing.T) {
	a := newArray(t, Config{Modules: 1, ReadLatency: 1.0})
	a.Submit(Request{ID: 0, Arrival: 0, Module: 0})
	a.Submit(Request{ID: 1, Arrival: 5, Module: 0})
	cs := a.Run()
	if cs[1].Start != 5 {
		t.Errorf("request after idle gap started at %g, want 5", cs[1].Start)
	}
	if got := a.BusyTime(0); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("busy time = %g, want 2", got)
	}
	if got := a.Utilization(0); math.Abs(got-2.0/6.0) > 1e-12 {
		t.Errorf("utilization = %g, want 1/3", got)
	}
}

func TestWriteLatency(t *testing.T) {
	a := newArray(t, Config{Modules: 1})
	a.Submit(Request{ID: 0, Arrival: 0, Module: 0, Op: Write})
	cs := a.Run()
	if math.Abs(cs[0].Finish-DefaultWriteLatency) > 1e-12 {
		t.Errorf("write finished at %g, want %g", cs[0].Finish, DefaultWriteLatency)
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	mk := func(seed int64) []Completion {
		a := newArray(t, Config{Modules: 1, ReadLatency: 1.0, JitterFrac: 0.2, Seed: seed})
		for i := 0; i < 50; i++ {
			a.Submit(Request{ID: int64(i), Arrival: float64(i) * 10, Module: 0})
		}
		return a.Run()
	}
	c1, c2 := mk(9), mk(9)
	for i := range c1 {
		lat := c1[i].Finish - c1[i].Start
		if lat < 0.8-1e-9 || lat > 1.2+1e-9 {
			t.Errorf("jittered latency %g outside [0.8, 1.2]", lat)
		}
		if c1[i].Finish != c2[i].Finish {
			t.Error("same seed must reproduce exactly")
		}
	}
	c3 := mk(10)
	same := true
	for i := range c1 {
		if c1[i].Finish != c3[i].Finish {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestIncrementalRuns(t *testing.T) {
	a := newArray(t, Config{Modules: 1, ReadLatency: 1.0})
	a.Submit(Request{ID: 0, Arrival: 0, Module: 0})
	cs := a.Run()
	if len(cs) != 1 {
		t.Fatal("first run")
	}
	a.Submit(Request{ID: 1, Arrival: 2, Module: 0})
	cs = a.Run()
	if len(cs) != 1 || cs[0].ID != 1 {
		t.Fatalf("second run should return only new completions: %+v", cs)
	}
	if a.Served(0) != 2 {
		t.Errorf("served = %d, want 2", a.Served(0))
	}
}

func TestSubmitValidation(t *testing.T) {
	a := newArray(t, Config{Modules: 2})
	for _, f := range []func(){
		func() { a.Submit(Request{Module: 2}) },
		func() { a.Submit(Request{Module: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	// Arrival before current time panics after Run advances the clock.
	a.Submit(Request{ID: 1, Arrival: 5, Module: 0})
	a.Run()
	defer func() {
		if recover() == nil {
			t.Error("late arrival should panic")
		}
	}()
	a.Submit(Request{ID: 2, Arrival: 1, Module: 0})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Modules: 0},
		{Modules: 1, Ways: -1},
		{Modules: 1, ReadLatency: -1},
		{Modules: 1, WriteLatency: -0.5},
		{Modules: 1, JitterFrac: 1.0},
		{Modules: 1, JitterFrac: -0.1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
}

func TestSortByArrival(t *testing.T) {
	cs := []Completion{
		{Request: Request{ID: 2, Arrival: 5}},
		{Request: Request{ID: 1, Arrival: 1}},
		{Request: Request{ID: 3, Arrival: 3}},
	}
	SortByArrival(cs)
	if cs[0].ID != 1 || cs[1].ID != 3 || cs[2].ID != 2 {
		t.Errorf("sort order wrong: %+v", cs)
	}
}

// Property: conservation and sanity — every submitted request completes
// exactly once, responses >= service latency, per-module busy time equals
// served × latency (no jitter), and per-module FIFO start order follows
// arrival order.
func TestQuickSimulatorInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		lat := 0.5 + rng.Float64()
		a, err := New(Config{Modules: n, ReadLatency: lat, WriteLatency: lat})
		if err != nil {
			return false
		}
		count := 30 + rng.Intn(50)
		tNow := 0.0
		type key struct{ id int64 }
		submitted := map[key]bool{}
		for i := 0; i < count; i++ {
			tNow += rng.Float64() * lat
			r := Request{ID: int64(i), Arrival: tNow, Module: rng.Intn(n)}
			a.Submit(r)
			submitted[key{r.ID}] = true
		}
		cs := a.Run()
		if len(cs) != count {
			return false
		}
		perModule := make(map[int][]Completion)
		for _, c := range cs {
			if !submitted[key{c.ID}] {
				return false
			}
			delete(submitted, key{c.ID})
			if c.Response() < lat-1e-9 || c.Start < c.Arrival-1e-9 {
				return false
			}
			perModule[c.Module] = append(perModule[c.Module], c)
		}
		for d, list := range perModule {
			// busy time = served * lat
			if math.Abs(a.BusyTime(d)-float64(len(list))*lat) > 1e-6 {
				return false
			}
			// no overlapping service; starts ordered by arrival
			byStart := append([]Completion(nil), list...)
			for i := range byStart {
				for j := i + 1; j < len(byStart); j++ {
					if byStart[j].Start < byStart[i].Start {
						byStart[i], byStart[j] = byStart[j], byStart[i]
					}
				}
			}
			for i := 1; i < len(byStart); i++ {
				if byStart[i].Start < byStart[i-1].Finish-1e-9 {
					return false
				}
				if byStart[i].Arrival < byStart[i-1].Arrival-1e-9 {
					return false // FIFO violated
				}
			}
		}
		return len(submitted) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimulate10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, _ := New(Config{Modules: 9})
		for j := 0; j < 10000; j++ {
			a.Submit(Request{ID: int64(j), Arrival: float64(j) * 0.05, Module: j % 9})
		}
		a.Run()
	}
}
