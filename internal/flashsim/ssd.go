package flashsim

import (
	"fmt"
	"sort"
)

// This file models the inside of one flash module the way the MSR SSD
// extension does (paper §II-A, Fig 1): channels of packages of planes, a
// page-mapping FTL with log-structured writes, and greedy garbage
// collection. The array-level simulator treats a module as a fixed-latency
// server, which is accurate for read-only workloads (the paper's traces);
// the SSD model quantifies when that abstraction holds — reads are
// perfectly predictable until programs and erases contend for planes.

// SSDConfig describes one flash module's geometry and timing. Times are in
// milliseconds to match the rest of the simulator (typical values: read
// 0.025, program 0.2, erase 1.5, transfer 0.1).
type SSDConfig struct {
	Channels       int // independent buses
	PlanesPerChan  int // planes (concurrent flash operations) per channel
	BlocksPerPlane int
	PagesPerBlock  int
	ReadMS         float64 // flash array read (cell → register)
	ProgramMS      float64 // register → cell program
	EraseMS        float64 // block erase
	TransferMS     float64 // page transfer over the channel
	// GCLowWater triggers garbage collection when a plane's free blocks
	// drop to this count (default 2).
	GCLowWater int
}

func (c *SSDConfig) applyDefaults() {
	if c.Channels == 0 {
		c.Channels = 4
	}
	if c.PlanesPerChan == 0 {
		c.PlanesPerChan = 2
	}
	if c.BlocksPerPlane == 0 {
		c.BlocksPerPlane = 64
	}
	if c.PagesPerBlock == 0 {
		c.PagesPerBlock = 64
	}
	if c.ReadMS == 0 {
		c.ReadMS = 0.025
	}
	if c.ProgramMS == 0 {
		c.ProgramMS = 0.2
	}
	if c.EraseMS == 0 {
		c.EraseMS = 1.5
	}
	if c.TransferMS == 0 {
		c.TransferMS = 0.1075 // read+transfer ≈ DefaultReadLatency
	}
	if c.GCLowWater == 0 {
		c.GCLowWater = 2
	}
}

func (c *SSDConfig) validate() error {
	if c.Channels < 1 || c.PlanesPerChan < 1 || c.BlocksPerPlane < 4 || c.PagesPerBlock < 1 {
		return fmt.Errorf("flashsim: bad SSD geometry %+v", *c)
	}
	if c.ReadMS <= 0 || c.ProgramMS <= 0 || c.EraseMS <= 0 || c.TransferMS < 0 {
		return fmt.Errorf("flashsim: bad SSD timing %+v", *c)
	}
	if c.GCLowWater < 1 || c.GCLowWater >= c.BlocksPerPlane/2 {
		return fmt.Errorf("flashsim: GC low-water %d out of range", c.GCLowWater)
	}
	return nil
}

// ppn is a physical page number: plane, block and page are packed.
type ppn struct {
	plane, block, page int
}

// planeState tracks one plane's log-structured allocation.
type planeState struct {
	nextFree   float64  // time the plane becomes idle
	frontier   int      // block currently being filled
	frontierPg int      // next page within the frontier block
	freeBlocks []int    // fully erased blocks
	valid      [][]bool // [block][page] holds live data
	liveCount  []int    // live pages per block
	erases     int64    // wear accounting
}

// SSD is a single flash module with an FTL. It is not safe for concurrent
// use; wrap externally if shared.
type SSD struct {
	cfg       SSDConfig
	chanFree  []float64 // per-channel bus availability
	planes    []planeState
	l2p       map[int64]ppn           // logical page → physical page
	p2l       []map[int]map[int]int64 // plane → block → page → lpn (for GC moves)
	nextPlane int                     // round-robin write allocation
	gcRuns    int64
	moved     int64 // pages moved by GC
}

// NewSSD builds a flash module.
func NewSSD(cfg SSDConfig) (*SSD, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nPlanes := cfg.Channels * cfg.PlanesPerChan
	s := &SSD{
		cfg:      cfg,
		chanFree: make([]float64, cfg.Channels),
		planes:   make([]planeState, nPlanes),
		l2p:      make(map[int64]ppn),
		p2l:      make([]map[int]map[int]int64, nPlanes),
	}
	for p := range s.planes {
		ps := &s.planes[p]
		ps.valid = make([][]bool, cfg.BlocksPerPlane)
		ps.liveCount = make([]int, cfg.BlocksPerPlane)
		for b := range ps.valid {
			ps.valid[b] = make([]bool, cfg.PagesPerBlock)
			if b > 0 {
				ps.freeBlocks = append(ps.freeBlocks, b)
			}
		}
		ps.frontier = 0
		s.p2l[p] = make(map[int]map[int]int64)
	}
	return s, nil
}

// Capacity returns the number of logical pages the module can hold while
// keeping GC functional (geometry minus one block per plane of slack).
func (s *SSD) Capacity() int64 {
	perPlane := (s.cfg.BlocksPerPlane - s.cfg.GCLowWater - 1) * s.cfg.PagesPerBlock
	return int64(perPlane * len(s.planes))
}

// GCRuns returns how many garbage collections have executed.
func (s *SSD) GCRuns() int64 { return s.gcRuns }

// MovedPages returns how many live pages GC has relocated.
func (s *SSD) MovedPages() int64 { return s.moved }

// Erases returns total block erases (wear).
func (s *SSD) Erases() int64 {
	var total int64
	for i := range s.planes {
		total += s.planes[i].erases
	}
	return total
}

// channelOf maps a plane to its channel.
func (s *SSD) channelOf(plane int) int { return plane / s.cfg.PlanesPerChan }

// busy reserves the plane and its channel from t for d and returns the
// operation's start time (after both are free).
func (s *SSD) busy(plane int, t, planeD, chanD float64) (start float64) {
	ch := s.channelOf(plane)
	start = t
	if s.planes[plane].nextFree > start {
		start = s.planes[plane].nextFree
	}
	if s.chanFree[ch] > start {
		start = s.chanFree[ch]
	}
	s.planes[plane].nextFree = start + planeD
	s.chanFree[ch] = start + chanD
	return start
}

// Read services a logical-page read arriving at time t and returns its
// completion time. Reading an unwritten page still costs a full read (the
// FTL returns zeros after the array access).
func (s *SSD) Read(t float64, lpn int64) float64 {
	loc, ok := s.l2p[lpn]
	plane := int(lpn) % len(s.planes)
	if ok {
		plane = loc.plane
	}
	// Plane busy for read, channel busy for the transfer that follows.
	start := s.busy(plane, t, s.cfg.ReadMS+s.cfg.TransferMS, s.cfg.ReadMS+s.cfg.TransferMS)
	return start + s.cfg.ReadMS + s.cfg.TransferMS
}

// Write services a logical-page write arriving at time t, allocating a new
// physical page log-structured and invalidating the old copy. Returns the
// completion time. May trigger garbage collection on the target plane,
// which stalls subsequent operations there.
func (s *SSD) Write(t float64, lpn int64) float64 {
	// Invalidate previous location.
	if old, ok := s.l2p[lpn]; ok {
		ps := &s.planes[old.plane]
		if ps.valid[old.block][old.page] {
			ps.valid[old.block][old.page] = false
			ps.liveCount[old.block]--
			delete(s.p2l[old.plane][old.block], old.page)
		}
	}
	plane := s.nextPlane
	s.nextPlane = (s.nextPlane + 1) % len(s.planes)
	finish := s.program(plane, t, lpn)
	s.maybeGC(plane, finish)
	return finish
}

// program appends lpn to the plane's frontier block at time t.
func (s *SSD) program(plane int, t float64, lpn int64) float64 {
	ps := &s.planes[plane]
	if ps.frontierPg >= s.cfg.PagesPerBlock {
		if len(ps.freeBlocks) == 0 {
			// Forced synchronous GC: no room at all.
			s.collect(plane, ps.nextFree)
			if len(ps.freeBlocks) == 0 {
				panic("flashsim: SSD overfilled — write working set exceeds Capacity()")
			}
		}
		ps.frontier = ps.freeBlocks[0]
		ps.freeBlocks = ps.freeBlocks[1:]
		ps.frontierPg = 0
	}
	start := s.busy(plane, t, s.cfg.ProgramMS+s.cfg.TransferMS, s.cfg.TransferMS)
	loc := ppn{plane: plane, block: ps.frontier, page: ps.frontierPg}
	ps.frontierPg++
	ps.valid[loc.block][loc.page] = true
	ps.liveCount[loc.block]++
	if s.p2l[plane][loc.block] == nil {
		s.p2l[plane][loc.block] = make(map[int]int64)
	}
	s.p2l[plane][loc.block][loc.page] = lpn
	s.l2p[lpn] = loc
	return start + s.cfg.ProgramMS + s.cfg.TransferMS
}

// maybeGC runs garbage collection if the plane is at or below low water.
func (s *SSD) maybeGC(plane int, t float64) {
	if len(s.planes[plane].freeBlocks) <= s.cfg.GCLowWater {
		s.collect(plane, t)
	}
}

// collect performs one greedy GC cycle on a plane at time t: pick the
// non-frontier block with the fewest live pages, relocate them, erase it.
func (s *SSD) collect(plane int, t float64) {
	ps := &s.planes[plane]
	victim := -1
	for b := 0; b < s.cfg.BlocksPerPlane; b++ {
		if b == ps.frontier {
			continue
		}
		free := false
		for _, fb := range ps.freeBlocks {
			if fb == b {
				free = true
				break
			}
		}
		if free {
			continue
		}
		if victim < 0 || ps.liveCount[b] < ps.liveCount[victim] {
			victim = b
		}
	}
	if victim < 0 {
		return
	}
	s.gcRuns++
	// Read the victim's live pages into the controller buffer and
	// invalidate them, charging one flash read each.
	lpns := make([]int64, 0, ps.liveCount[victim])
	pages := make([]int, 0, ps.liveCount[victim])
	for pg, live := range ps.valid[victim] {
		if live {
			pages = append(pages, pg)
		}
	}
	sort.Ints(pages)
	for _, pg := range pages {
		lpns = append(lpns, s.p2l[plane][victim][pg])
		ps.valid[victim][pg] = false
		ps.liveCount[victim]--
		delete(s.p2l[plane][victim], pg)
		s.busy(plane, ps.nextFree, s.cfg.ReadMS, 0)
	}
	if ps.liveCount[victim] != 0 {
		panic("flashsim: GC accounting broken — live pages remain after relocation")
	}
	// Erase the (now fully invalid) victim BEFORE re-programming, so the
	// relocated pages are guaranteed a destination and the erase can never
	// destroy freshly moved data.
	s.busy(plane, ps.nextFree, s.cfg.EraseMS, 0)
	ps.erases++
	ps.freeBlocks = append(ps.freeBlocks, victim)
	for _, lpn := range lpns {
		s.program(plane, ps.nextFree, lpn)
		s.moved++
	}
	_ = t
}
