// Package flashsim is a discrete-event simulator for flash storage arrays,
// standing in for the DiskSim + Microsoft Research SSD extension the paper
// uses (§V-A). The model matches what the paper actually relies on: an
// array of N independent flash modules, each serving requests from a FIFO
// queue with a fixed per-block service time (one 8 KB read = 0.132507 ms in
// the MSR parameter set). Beyond that baseline the simulator supports
// optional per-module internal parallelism (ways — channels/planes serving
// requests concurrently), distinct read/write latencies, and bounded
// deterministic latency jitter for robustness experiments.
//
// Time is in milliseconds throughout, matching the paper's tables.
package flashsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// DefaultReadLatency is the MSR SSD-extension time for one 8 KB read, ms.
const DefaultReadLatency = 0.132507

// DefaultWriteLatency is a representative 8 KB flash program time, ms.
const DefaultWriteLatency = 0.350

// Op is the request operation type.
type Op int

const (
	// Read is a block read (the only operation the paper's traces issue).
	Read Op = iota
	// Write is a block program.
	Write
)

// Config describes a flash array.
type Config struct {
	Modules      int     // number of flash modules (devices), required
	Ways         int     // concurrent operations per module (default 1)
	ReadLatency  float64 // ms per block read (default DefaultReadLatency)
	WriteLatency float64 // ms per block write (default DefaultWriteLatency)
	JitterFrac   float64 // uniform latency jitter fraction in [0, 1)
	Seed         int64   // jitter RNG seed
}

func (c *Config) applyDefaults() {
	if c.Ways == 0 {
		c.Ways = 1
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = DefaultReadLatency
	}
	if c.WriteLatency == 0 {
		c.WriteLatency = DefaultWriteLatency
	}
}

func (c *Config) validate() error {
	if c.Modules < 1 {
		return fmt.Errorf("flashsim: need >= 1 module, got %d", c.Modules)
	}
	if c.Ways < 1 {
		return fmt.Errorf("flashsim: ways must be >= 1, got %d", c.Ways)
	}
	if c.ReadLatency <= 0 || c.WriteLatency <= 0 {
		return fmt.Errorf("flashsim: latencies must be positive")
	}
	if c.JitterFrac < 0 || c.JitterFrac >= 1 {
		return fmt.Errorf("flashsim: jitter fraction must be in [0,1), got %g", c.JitterFrac)
	}
	return nil
}

// Fault injects device-level misbehavior into one module — the hooks the
// health subsystem's end-to-end tests drive to provoke Suspect/Failed
// transitions without a real dying drive. All fields compose: a request
// first rolls for an outright error, then its service time is scaled by
// LatencyFactor and possibly a spike.
type Fault struct {
	ErrorProb     float64 // probability in [0,1] a request completes with Failed set
	SpikeProb     float64 // probability in [0,1] the service time is multiplied by SpikeFactor
	SpikeFactor   float64 // latency multiplier for spikes (default 8, must be >= 1)
	LatencyFactor float64 // steady multiplier on every service time (default 1, must be > 0)
}

func (f *Fault) applyDefaults() {
	if f.SpikeFactor == 0 {
		f.SpikeFactor = 8
	}
	if f.LatencyFactor == 0 {
		f.LatencyFactor = 1
	}
}

func (f *Fault) validate() error {
	if f.ErrorProb < 0 || f.ErrorProb > 1 {
		return fmt.Errorf("flashsim: error probability must be in [0,1], got %g", f.ErrorProb)
	}
	if f.SpikeProb < 0 || f.SpikeProb > 1 {
		return fmt.Errorf("flashsim: spike probability must be in [0,1], got %g", f.SpikeProb)
	}
	if f.SpikeFactor < 1 {
		return fmt.Errorf("flashsim: spike factor must be >= 1, got %g", f.SpikeFactor)
	}
	if f.LatencyFactor <= 0 {
		return fmt.Errorf("flashsim: latency factor must be positive, got %g", f.LatencyFactor)
	}
	return nil
}

// Request is one block I/O destined for a specific module. The controller
// (declustering + retrieval policy) decides the module before submission.
type Request struct {
	ID      int64
	Arrival float64 // ms
	Module  int
	Block   int64 // logical block number (bookkeeping only)
	Op      Op
}

// Completion reports a finished request.
type Completion struct {
	Request
	Start  float64 // service start, ms
	Finish float64 // service completion, ms
	Failed bool    // the module's injected fault errored this request
}

// Response returns the I/O driver response time: completion minus arrival
// (the metric of the paper's Table III).
func (c Completion) Response() float64 { return c.Finish - c.Arrival }

// Wait returns the queueing delay before service started.
func (c Completion) Wait() float64 { return c.Start - c.Arrival }

// event is a simulator event.
type event struct {
	time float64
	kind eventKind
	seq  int64 // tie-break: FIFO within equal timestamps
	req  Request
}

type eventKind int

const (
	evArrival eventKind = iota
	evComplete
)

// eventHeap orders by (time, kind: arrivals before completions at equal
// time are NOT required; use seq for stability), then seq.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// module is the per-device state.
type module struct {
	queue []Request // FIFO backlog
	busy  int       // operations in flight (<= ways)
	// fault injection
	faulty bool
	fault  Fault
	// accounting
	served   int64
	failed   int64
	busyTime float64
}

// Array is the simulated flash array. Submit requests (arrival times may be
// in any order before Run), then Run to completion.
type Array struct {
	cfg     Config
	modules []module
	events  eventHeap
	seq     int64
	now     float64
	rng     *rand.Rand
	done    []Completion
	pending []Completion // scheduled completions for in-flight requests
}

// New creates an array from the config (defaults applied).
func New(cfg Config) (*Array, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Array{
		cfg:     cfg,
		modules: make([]module, cfg.Modules),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Config returns the array configuration (with defaults applied).
func (a *Array) Config() Config { return a.cfg }

// Submit enqueues a request for simulation. It panics on an invalid module
// or an arrival before the current simulation time (Run processes events in
// order; late submission would rewrite history).
func (a *Array) Submit(r Request) {
	if r.Module < 0 || r.Module >= a.cfg.Modules {
		panic(fmt.Sprintf("flashsim: module %d out of range [0,%d)", r.Module, a.cfg.Modules))
	}
	if r.Arrival < a.now {
		panic(fmt.Sprintf("flashsim: arrival %g before current time %g", r.Arrival, a.now))
	}
	a.seq++
	heap.Push(&a.events, event{time: r.Arrival, kind: evArrival, seq: a.seq, req: r})
}

// SetFault installs a fault profile on one module (defaults applied).
// Requests already in flight are unaffected; requests served from then on
// roll against the profile. Returns an error for an invalid module or
// profile.
func (a *Array) SetFault(module int, f Fault) error {
	if module < 0 || module >= a.cfg.Modules {
		return fmt.Errorf("flashsim: module %d out of range [0,%d)", module, a.cfg.Modules)
	}
	f.applyDefaults()
	if err := f.validate(); err != nil {
		return err
	}
	a.modules[module].faulty = true
	a.modules[module].fault = f
	return nil
}

// ClearFault removes module's fault profile (no-op when none is set).
func (a *Array) ClearFault(module int) {
	if module >= 0 && module < a.cfg.Modules {
		a.modules[module].faulty = false
		a.modules[module].fault = Fault{}
	}
}

// FailedCount returns the number of requests module d errored.
func (a *Array) FailedCount(d int) int64 { return a.modules[d].failed }

// latency returns the (possibly jittered and fault-shaped) service time
// for a request on module m.
func (a *Array) latency(m *module, op Op) float64 {
	base := a.cfg.ReadLatency
	if op == Write {
		base = a.cfg.WriteLatency
	}
	if a.cfg.JitterFrac > 0 {
		base *= 1 + a.cfg.JitterFrac*(2*a.rng.Float64()-1)
	}
	if m.faulty {
		base *= m.fault.LatencyFactor
		if m.fault.SpikeProb > 0 && a.rng.Float64() < m.fault.SpikeProb {
			base *= m.fault.SpikeFactor
		}
	}
	return base
}

// startService begins serving a request on its module at time t.
func (a *Array) startService(t float64, r Request) {
	m := &a.modules[r.Module]
	m.busy++
	lat := a.latency(m, r.Op)
	m.busyTime += lat
	failed := m.faulty && m.fault.ErrorProb > 0 && a.rng.Float64() < m.fault.ErrorProb
	if failed {
		m.failed++
	}
	a.seq++
	heap.Push(&a.events, event{time: t + lat, kind: evComplete, seq: a.seq, req: r})
	a.pending = append(a.pending, Completion{Request: r, Start: t, Finish: t + lat, Failed: failed})
}

// Run processes all queued events and returns the completions in finish
// order. The array can keep being used afterwards (time keeps advancing).
func (a *Array) Run() []Completion {
	start := len(a.done)
	for a.events.Len() > 0 {
		ev := heap.Pop(&a.events).(event)
		a.now = ev.time
		switch ev.kind {
		case evArrival:
			m := &a.modules[ev.req.Module]
			if m.busy < a.cfg.Ways {
				a.startService(a.now, ev.req)
			} else {
				m.queue = append(m.queue, ev.req)
			}
		case evComplete:
			m := &a.modules[ev.req.Module]
			m.busy--
			m.served++
			a.recordCompletion(ev)
			if len(m.queue) > 0 && m.busy < a.cfg.Ways {
				next := m.queue[0]
				m.queue = m.queue[1:]
				a.startService(a.now, next)
			}
		}
	}
	out := make([]Completion, len(a.done)-start)
	copy(out, a.done[start:])
	return out
}

// recordCompletion moves the matching pending completion into done. Linear
// search is fine: at most Modules×Ways operations are in flight.
func (a *Array) recordCompletion(ev event) {
	for i := range a.pending {
		p := a.pending[i]
		if p.Request.ID == ev.req.ID && p.Request.Module == ev.req.Module && p.Finish == ev.time {
			a.done = append(a.done, p)
			a.pending = append(a.pending[:i], a.pending[i+1:]...)
			return
		}
	}
	panic("flashsim: completion event without pending record")
}

// Now returns the current simulation time.
func (a *Array) Now() float64 { return a.now }

// Served returns the number of requests module d has completed.
func (a *Array) Served(d int) int64 { return a.modules[d].served }

// BusyTime returns the cumulative service time of module d.
func (a *Array) BusyTime(d int) float64 { return a.modules[d].busyTime }

// Utilization returns module d's busy fraction of the simulated time span.
func (a *Array) Utilization(d int) float64 {
	if a.now == 0 {
		return 0
	}
	return a.modules[d].busyTime / a.now
}

// SortByArrival orders completions by request arrival time (stable), the
// order the paper's per-request figures use.
func SortByArrival(cs []Completion) {
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Arrival < cs[j].Arrival })
}
