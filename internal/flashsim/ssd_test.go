package flashsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newSSD(t testing.TB, cfg SSDConfig) *SSD {
	t.Helper()
	s, err := NewSSD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func tinySSD(t testing.TB) *SSD {
	return newSSD(t, SSDConfig{
		Channels: 2, PlanesPerChan: 2, BlocksPerPlane: 8, PagesPerBlock: 4,
		ReadMS: 0.025, ProgramMS: 0.2, EraseMS: 1.5, TransferMS: 0.1, GCLowWater: 2,
	})
}

func TestSSDConfigValidation(t *testing.T) {
	bad := []SSDConfig{
		{Channels: -1},
		{Channels: 1, PlanesPerChan: 1, BlocksPerPlane: 2, PagesPerBlock: 4},
		{Channels: 1, PlanesPerChan: 1, BlocksPerPlane: 8, PagesPerBlock: 4, ReadMS: -1},
		{Channels: 1, PlanesPerChan: 1, BlocksPerPlane: 8, PagesPerBlock: 4, GCLowWater: 7},
	}
	for i, cfg := range bad {
		if _, err := NewSSD(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
	if _, err := NewSSD(SSDConfig{}); err != nil {
		t.Errorf("defaults should be valid: %v", err)
	}
}

func TestSSDReadLatencyIdle(t *testing.T) {
	s := tinySSD(t)
	fin := s.Read(0, 42)
	want := 0.025 + 0.1
	if math.Abs(fin-want) > 1e-12 {
		t.Errorf("idle read finished at %g, want %g", fin, want)
	}
	// Default geometry approximates the paper's one-block read time.
	d := newSSD(t, SSDConfig{})
	fin = d.Read(0, 1)
	if math.Abs(fin-DefaultReadLatency) > 0.01 {
		t.Errorf("default SSD read %g, want ≈ %g", fin, DefaultReadLatency)
	}
}

func TestSSDWriteReadRoundTrip(t *testing.T) {
	s := tinySSD(t)
	fin := s.Write(0, 7)
	if fin <= 0 {
		t.Fatal("write did not advance time")
	}
	// The read must go to the plane the FTL placed the page on, costing a
	// normal read after the write completes.
	rfin := s.Read(fin, 7)
	if rfin < fin+0.125-1e-12 {
		t.Errorf("read after write finished at %g, want >= %g", rfin, fin+0.125)
	}
}

func TestSSDReadsAreDeterministicWithoutWrites(t *testing.T) {
	// The paper's premise: a read-only flash module has a fixed response
	// time when idle. Reads spread over planes with gaps never queue.
	s := tinySSD(t)
	tNow := 0.0
	for i := int64(0); i < 100; i++ {
		fin := s.Read(tNow, i)
		if math.Abs(fin-tNow-0.125) > 1e-9 {
			t.Fatalf("read %d latency %g, want 0.125", i, fin-tNow)
		}
		tNow = fin + 0.2 // leave the module idle before the next read
	}
}

func TestSSDGCTriggersUnderWrites(t *testing.T) {
	s := tinySSD(t)
	cap := s.Capacity()
	if cap <= 0 {
		t.Fatal("capacity must be positive")
	}
	// Overwrite a small working set far more times than the geometry holds:
	// GC must run and erase blocks.
	tNow := 0.0
	for i := 0; i < int(cap)*4; i++ {
		tNow = s.Write(tNow, int64(i%10))
	}
	if s.GCRuns() == 0 {
		t.Error("GC never ran under sustained overwrites")
	}
	if s.Erases() == 0 {
		t.Error("no blocks erased")
	}
}

func TestSSDGCDisturbsReadLatency(t *testing.T) {
	// The motivation quantified: with concurrent writes triggering GC,
	// read tail latency exceeds the idle read time.
	s := tinySSD(t)
	rng := rand.New(rand.NewSource(1))
	tNow := 0.0
	worst := 0.0
	for i := 0; i < 2000; i++ {
		tNow += 0.05
		if rng.Intn(3) == 0 {
			s.Write(tNow, int64(rng.Intn(40)))
		} else {
			fin := s.Read(tNow, int64(rng.Intn(40)))
			if lat := fin - tNow; lat > worst {
				worst = lat
			}
		}
	}
	if worst <= 0.125+1e-9 {
		t.Errorf("read tail %g never exceeded the idle latency — GC interference missing", worst)
	}
}

func TestSSDLiveDataConsistency(t *testing.T) {
	// After arbitrary writes, every logical page maps to exactly one valid
	// physical page and the per-block live counts agree with the bitmap.
	s := tinySSD(t)
	rng := rand.New(rand.NewSource(2))
	tNow := 0.0
	for i := 0; i < 500; i++ {
		tNow = s.Write(tNow, int64(rng.Intn(30)))
	}
	seen := map[ppn]bool{}
	for lpn, loc := range s.l2p {
		if !s.planes[loc.plane].valid[loc.block][loc.page] {
			t.Fatalf("lpn %d maps to invalid page %+v", lpn, loc)
		}
		if seen[loc] {
			t.Fatalf("physical page %+v mapped twice", loc)
		}
		seen[loc] = true
		if got := s.p2l[loc.plane][loc.block][loc.page]; got != lpn {
			t.Fatalf("reverse map wrong: %+v -> %d, want %d", loc, got, lpn)
		}
	}
	for p := range s.planes {
		ps := &s.planes[p]
		for b := range ps.valid {
			count := 0
			for _, v := range ps.valid[b] {
				if v {
					count++
				}
			}
			if count != ps.liveCount[b] {
				t.Fatalf("plane %d block %d live count %d, bitmap %d", p, b, ps.liveCount[b], count)
			}
		}
	}
}

func TestSSDOverfillPanics(t *testing.T) {
	s := newSSD(t, SSDConfig{
		Channels: 1, PlanesPerChan: 1, BlocksPerPlane: 4, PagesPerBlock: 2,
		ReadMS: 0.025, ProgramMS: 0.2, EraseMS: 1.5, GCLowWater: 1,
	})
	defer func() {
		if recover() == nil {
			t.Error("writing far beyond capacity should panic")
		}
	}()
	tNow := 0.0
	for i := int64(0); i < 1000; i++ {
		tNow = s.Write(tNow, i) // all-distinct pages: working set grows unbounded
	}
}

// Property: time never goes backwards and GC conserves data — every
// previously written lpn stays mapped after arbitrary overwrite sequences.
func TestQuickSSDConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewSSD(SSDConfig{
			Channels: 1 + rng.Intn(2), PlanesPerChan: 1 + rng.Intn(2),
			BlocksPerPlane: 8, PagesPerBlock: 4,
			ReadMS: 0.025, ProgramMS: 0.2, EraseMS: 1.5, TransferMS: 0.1, GCLowWater: 2,
		})
		if err != nil {
			return false
		}
		written := map[int64]bool{}
		tNow := 0.0
		universe := int64(s.Capacity() / 2)
		if universe < 1 {
			universe = 1
		}
		for i := 0; i < 300; i++ {
			lpn := rng.Int63n(universe)
			fin := s.Write(tNow, lpn)
			if fin < tNow {
				return false
			}
			tNow = fin
			written[lpn] = true
		}
		for lpn := range written {
			loc, ok := s.l2p[lpn]
			if !ok || !s.planes[loc.plane].valid[loc.block][loc.page] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSSDWrite(b *testing.B) {
	s, _ := NewSSD(SSDConfig{})
	cap := s.Capacity()
	tNow := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tNow = s.Write(tNow, int64(i)%(cap/2))
	}
}

func BenchmarkSSDRead(b *testing.B) {
	s, _ := NewSSD(SSDConfig{})
	tNow := 0.0
	for i := int64(0); i < 1000; i++ {
		tNow = s.Write(tNow, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tNow = s.Read(tNow, int64(i%1000))
	}
}

func TestSSDArrayBasics(t *testing.T) {
	arr, err := NewSSDArray(3, SSDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if arr.Modules() != 3 {
		t.Errorf("modules = %d", arr.Modules())
	}
	fin := arr.Read(0, 0, 42)
	if math.Abs(fin-DefaultReadLatency) > 0.01 {
		t.Errorf("idle array read %g", fin)
	}
	wfin := arr.Write(1, 0, 42)
	if wfin <= 0 {
		t.Error("write did not advance time")
	}
	if arr.Module(1).Capacity() <= 0 {
		t.Error("module accessor broken")
	}
	if arr.TotalGCRuns() != 0 {
		t.Error("fresh array should have no GC")
	}
}

func TestSSDArrayPanics(t *testing.T) {
	if _, err := NewSSDArray(0, SSDConfig{}); err == nil {
		t.Error("zero modules should fail")
	}
	if _, err := NewSSDArray(2, SSDConfig{Channels: -1}); err == nil {
		t.Error("bad module config should fail")
	}
	arr, _ := NewSSDArray(2, SSDConfig{})
	for _, f := range []func(){
		func() { arr.Read(5, 0, 1) },
		func() { arr.Read(-1, 0, 1) },
		func() { arr.Read(0, 10, 1); arr.Read(0, 5, 1) }, // time backwards
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
