package flashsim

import "fmt"

// SSDArray is an array of FTL-backed SSD modules — the execution substrate
// for experiments that ask what happens to the QoS guarantees when the
// fixed-service abstraction leaks (mixed read/write traffic, GC). The
// controller still decides which module serves each request; the array
// returns the realized completion time including any FTL interference.
type SSDArray struct {
	modules []*SSD
	lastT   []float64
}

// NewSSDArray builds n identical SSD modules.
func NewSSDArray(n int, cfg SSDConfig) (*SSDArray, error) {
	if n < 1 {
		return nil, fmt.Errorf("flashsim: need >= 1 module")
	}
	arr := &SSDArray{modules: make([]*SSD, n), lastT: make([]float64, n)}
	for i := range arr.modules {
		ssd, err := NewSSD(cfg)
		if err != nil {
			return nil, err
		}
		arr.modules[i] = ssd
	}
	return arr, nil
}

// Modules returns the module count.
func (a *SSDArray) Modules() int { return len(a.modules) }

// Module exposes one SSD for statistics.
func (a *SSDArray) Module(i int) *SSD { return a.modules[i] }

func (a *SSDArray) check(module int, t float64) {
	if module < 0 || module >= len(a.modules) {
		panic(fmt.Sprintf("flashsim: module %d out of range [0,%d)", module, len(a.modules)))
	}
	if t < a.lastT[module] {
		panic(fmt.Sprintf("flashsim: time went backwards on module %d: %g < %g", module, t, a.lastT[module]))
	}
}

// Read submits a block read to a module at time t, returning its
// completion time.
func (a *SSDArray) Read(module int, t float64, block int64) float64 {
	a.check(module, t)
	a.lastT[module] = t
	return a.modules[module].Read(t, block)
}

// Write submits a block write to a module at time t, returning its
// completion time.
func (a *SSDArray) Write(module int, t float64, block int64) float64 {
	a.check(module, t)
	a.lastT[module] = t
	return a.modules[module].Write(t, block)
}

// TotalGCRuns sums garbage collections across modules.
func (a *SSDArray) TotalGCRuns() int64 {
	var total int64
	for _, m := range a.modules {
		total += m.GCRuns()
	}
	return total
}
