package flashsim

import (
	"math"
	"testing"
)

func faultArray(t *testing.T, modules int) *Array {
	t.Helper()
	a, err := New(Config{Modules: modules, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSetFaultValidation(t *testing.T) {
	a := faultArray(t, 4)
	for _, f := range []Fault{
		{ErrorProb: -0.1},
		{ErrorProb: 1.1},
		{SpikeProb: 2},
		{SpikeFactor: 0.5},
		{LatencyFactor: -1},
	} {
		if err := a.SetFault(0, f); err == nil {
			t.Errorf("SetFault(%+v) succeeded, want error", f)
		}
	}
	if err := a.SetFault(4, Fault{}); err == nil {
		t.Error("SetFault on out-of-range module succeeded")
	}
	if err := a.SetFault(0, Fault{ErrorProb: 0.5}); err != nil {
		t.Errorf("valid fault rejected: %v", err)
	}
}

func TestFaultErrorProb(t *testing.T) {
	a := faultArray(t, 2)
	if err := a.SetFault(0, Fault{ErrorProb: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a.Submit(Request{ID: int64(i), Arrival: float64(i), Module: i % 2})
	}
	for _, c := range a.Run() {
		if want := c.Module == 0; c.Failed != want {
			t.Errorf("request %d on module %d: Failed = %v, want %v", c.ID, c.Module, c.Failed, want)
		}
	}
	if got := a.FailedCount(0); got != 10 {
		t.Errorf("FailedCount(0) = %d, want 10", got)
	}
	if got := a.FailedCount(1); got != 0 {
		t.Errorf("FailedCount(1) = %d, want 0", got)
	}
}

func TestFaultLatencyShaping(t *testing.T) {
	a := faultArray(t, 3)
	// Module 0: steady 2x slowdown. Module 1: every request spikes 4x.
	if err := a.SetFault(0, Fault{LatencyFactor: 2}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetFault(1, Fault{SpikeProb: 1, SpikeFactor: 4}); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 3; m++ {
		a.Submit(Request{ID: int64(m), Arrival: 0, Module: m})
	}
	want := map[int]float64{0: 2 * DefaultReadLatency, 1: 4 * DefaultReadLatency, 2: DefaultReadLatency}
	for _, c := range a.Run() {
		if got := c.Finish - c.Start; math.Abs(got-want[c.Module]) > 1e-12 {
			t.Errorf("module %d service time %g, want %g", c.Module, got, want[c.Module])
		}
		if c.Failed {
			t.Errorf("module %d request marked Failed with ErrorProb 0", c.Module)
		}
	}
}

func TestClearFault(t *testing.T) {
	a := faultArray(t, 1)
	if err := a.SetFault(0, Fault{ErrorProb: 1, LatencyFactor: 3}); err != nil {
		t.Fatal(err)
	}
	a.ClearFault(0)
	a.Submit(Request{ID: 1, Arrival: 0, Module: 0})
	cs := a.Run()
	if cs[0].Failed {
		t.Error("request failed after ClearFault")
	}
	if got := cs[0].Finish - cs[0].Start; math.Abs(got-DefaultReadLatency) > 1e-12 {
		t.Errorf("service time %g after ClearFault, want %g", got, DefaultReadLatency)
	}
}

// TestFaultDefaults: a zero-valued profile is a valid no-op latency shape
// (factor 1, spike 8x but probability 0).
func TestFaultDefaults(t *testing.T) {
	a := faultArray(t, 1)
	if err := a.SetFault(0, Fault{}); err != nil {
		t.Fatal(err)
	}
	a.Submit(Request{ID: 1, Arrival: 0, Module: 0})
	cs := a.Run()
	if got := cs[0].Finish - cs[0].Start; math.Abs(got-DefaultReadLatency) > 1e-12 {
		t.Errorf("service time %g with default fault, want %g", got, DefaultReadLatency)
	}
}
