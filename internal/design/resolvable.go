package design

import (
	"fmt"

	"flashqos/internal/gf"
)

// Resolvability: a design is resolvable when its blocks partition into
// parallel classes, each class covering every point exactly once. For QoS
// scheduling a parallel class is a perfect stripe — one access round that
// touches every device once — so resolvable designs (affine planes,
// Kirkman systems) give particularly regular layouts.

// ParallelClasses partitions the design's blocks into parallel classes by
// backtracking exact cover. It returns the classes as slices of block
// indices, or an error if the design is not resolvable. Practical for the
// design sizes used here (tens of blocks).
func ParallelClasses(d *Design) ([][]int, error) {
	if d.N%d.C != 0 {
		return nil, fmt.Errorf("design: (%d,%d) cannot be resolvable: block size does not divide points", d.N, d.C)
	}
	blocksPerClass := d.N / d.C
	numClasses := len(d.Blocks) / blocksPerClass
	if numClasses*blocksPerClass != len(d.Blocks) {
		return nil, fmt.Errorf("design: %d blocks do not fill classes of %d", len(d.Blocks), blocksPerClass)
	}
	used := make([]bool, len(d.Blocks))
	var classes [][]int

	// buildClass extends the current class (blocks covering `covered`).
	var buildClass func(class []int, covered uint64, minBlock int) bool
	var solve func() bool
	solve = func() bool {
		if len(classes) == numClasses {
			return true
		}
		// Anchor each class on the lowest-indexed unused block to avoid
		// permutation blowup.
		anchor := -1
		for i, u := range used {
			if !u {
				anchor = i
				break
			}
		}
		if anchor < 0 {
			return false
		}
		used[anchor] = true
		var cov uint64
		for _, p := range d.Blocks[anchor] {
			cov |= 1 << uint(p)
		}
		if buildClass([]int{anchor}, cov, anchor+1) {
			return true
		}
		used[anchor] = false
		return false
	}
	buildClass = func(class []int, covered uint64, minBlock int) bool {
		if len(class) == blocksPerClass {
			cp := make([]int, len(class))
			copy(cp, class)
			classes = append(classes, cp)
			if solve() {
				return true
			}
			classes = classes[:len(classes)-1]
			return false
		}
		for i := minBlock; i < len(d.Blocks); i++ {
			if used[i] {
				continue
			}
			var mask uint64
			ok := true
			for _, p := range d.Blocks[i] {
				b := uint64(1) << uint(p)
				if covered&b != 0 {
					ok = false
					break
				}
				mask |= b
			}
			if !ok {
				continue
			}
			used[i] = true
			if buildClass(append(class, i), covered|mask, i+1) {
				return true
			}
			used[i] = false
		}
		return false
	}
	if d.N > 63 {
		return nil, fmt.Errorf("design: resolvability search supports up to 63 points, got %d", d.N)
	}
	if !solve() {
		return nil, fmt.Errorf("design: %s is not resolvable", d)
	}
	return classes, nil
}

// VerifyResolution checks that the given classes form a resolution of the
// design: every block used exactly once, every class covering each point
// exactly once.
func VerifyResolution(d *Design, classes [][]int) error {
	seen := make([]bool, len(d.Blocks))
	for ci, class := range classes {
		cover := make([]int, d.N)
		for _, bi := range class {
			if bi < 0 || bi >= len(d.Blocks) {
				return fmt.Errorf("design: class %d references block %d", ci, bi)
			}
			if seen[bi] {
				return fmt.Errorf("design: block %d in two classes", bi)
			}
			seen[bi] = true
			for _, p := range d.Blocks[bi] {
				cover[p]++
			}
		}
		for p, c := range cover {
			if c != 1 {
				return fmt.Errorf("design: class %d covers point %d %d times", ci, p, c)
			}
		}
	}
	for bi, s := range seen {
		if !s {
			return fmt.Errorf("design: block %d in no class", bi)
		}
	}
	return nil
}

// MOLS returns a complete set of n-1 mutually orthogonal Latin squares of
// order n for a prime power n, built from the field: L_a(i,j) = a·i + j
// for each nonzero a. Squares are indexed [square][row][col].
func MOLS(n int) ([][][]int, error) {
	f, err := gf.NewOrder(n)
	if err != nil {
		return nil, fmt.Errorf("design: MOLS needs prime-power order: %w", err)
	}
	out := make([][][]int, 0, n-1)
	for a := 1; a < n; a++ {
		sq := make([][]int, n)
		for i := 0; i < n; i++ {
			sq[i] = make([]int, n)
			for j := 0; j < n; j++ {
				sq[i][j] = f.Add(f.Mul(a, i), j)
			}
		}
		out = append(out, sq)
	}
	return out, nil
}

// VerifyMOLS checks that every square is Latin and every pair of squares is
// orthogonal (superimposing them yields each ordered pair exactly once).
func VerifyMOLS(squares [][][]int) error {
	if len(squares) == 0 {
		return fmt.Errorf("design: no squares")
	}
	n := len(squares[0])
	for si, sq := range squares {
		if len(sq) != n {
			return fmt.Errorf("design: square %d wrong size", si)
		}
		for i := 0; i < n; i++ {
			rowSeen := make([]bool, n)
			colSeen := make([]bool, n)
			for j := 0; j < n; j++ {
				r, c := sq[i][j], sq[j][i]
				if r < 0 || r >= n || rowSeen[r] {
					return fmt.Errorf("design: square %d row %d not Latin", si, i)
				}
				if c < 0 || c >= n || colSeen[c] {
					return fmt.Errorf("design: square %d col %d not Latin", si, i)
				}
				rowSeen[r] = true
				colSeen[c] = true
			}
		}
	}
	for a := 0; a < len(squares); a++ {
		for b := a + 1; b < len(squares); b++ {
			seen := make(map[[2]int]bool, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					key := [2]int{squares[a][i][j], squares[b][i][j]}
					if seen[key] {
						return fmt.Errorf("design: squares %d,%d not orthogonal (pair %v repeats)", a, b, key)
					}
					seen[key] = true
				}
			}
		}
	}
	return nil
}

// Kirkman15 returns a resolvable (15,3,1) design — a solution to Kirkman's
// schoolgirl problem — with its seven parallel classes (days). Useful as a
// 15-device layout whose access rounds stripe perfectly.
func Kirkman15() (*Design, [][]int) {
	// Classic solution; girls 0..14, 7 days x 5 triples.
	days := [][][]int{
		{{0, 5, 10}, {1, 6, 11}, {2, 7, 12}, {3, 8, 13}, {4, 9, 14}},
		{{0, 1, 4}, {2, 3, 6}, {7, 8, 11}, {9, 10, 13}, {12, 14, 5}},
		{{1, 2, 5}, {3, 4, 7}, {8, 9, 12}, {10, 11, 14}, {13, 0, 6}},
		{{4, 5, 8}, {6, 7, 10}, {11, 12, 0}, {13, 14, 2}, {1, 3, 9}},
		{{2, 4, 10}, {3, 5, 11}, {6, 8, 14}, {7, 9, 0}, {12, 13, 1}},
		{{4, 6, 12}, {5, 7, 13}, {8, 10, 1}, {9, 11, 2}, {14, 0, 3}},
		{{10, 12, 3}, {11, 13, 4}, {14, 1, 7}, {0, 2, 8}, {5, 6, 9}},
	}
	var blocks [][]int
	var classes [][]int
	idx := 0
	for _, day := range days {
		var class []int
		for _, triple := range day {
			blocks = append(blocks, triple)
			class = append(class, idx)
			idx++
		}
		classes = append(classes, class)
	}
	d := &Design{N: 15, C: 3, Lambda: 1, Blocks: blocks, Name: "Kirkman KTS(15)"}
	return d, classes
}
