package design_test

import (
	"fmt"

	"flashqos/internal/design"
)

// Building the paper's (9,3,1) design and reading off its guarantees.
func ExamplePaper931() {
	d := design.Paper931()
	fmt.Println(d)
	fmt.Printf("S(1)=%d S(2)=%d S(3)=%d buckets=%d\n", d.S(1), d.S(2), d.S(3), d.MaxBuckets())
	fmt.Println("valid:", d.Verify() == nil)
	// Output:
	// (9,3,1) design [paper (9,3,1)], 12 blocks
	// S(1)=5 S(2)=14 S(3)=27 buckets=36
	// valid: true
}

// Choosing a design for a device/copy count.
func ExampleForParams() {
	d, err := design.ForParams(13, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("(%d,%d,%d) with %d blocks\n", d.N, d.C, d.Lambda, len(d.Blocks))
	// Output:
	// (13,3,1) with 26 blocks
}

// Expanding a design into replica placements via rotations.
func ExampleDesign_Rotations() {
	d := design.Paper931()
	rows := d.Rotations()
	fmt.Println("bucket 0 replicas:", rows[0])
	fmt.Println("bucket 1 replicas:", rows[1])
	fmt.Println("bucket 12 replicas:", rows[12], "(block 0 rotated)")
	fmt.Println("total buckets:", len(rows))
	// Output:
	// bucket 0 replicas: [0 1 2]
	// bucket 1 replicas: [0 3 6]
	// bucket 12 replicas: [1 2 0] (block 0 rotated)
	// total buckets: 36
}
