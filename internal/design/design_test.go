package design

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustVerify(t *testing.T, d *Design, err error) *Design {
	t.Helper()
	if err != nil {
		t.Fatalf("construction failed: %v", err)
	}
	if verr := d.Verify(); verr != nil {
		t.Fatalf("%s fails verification: %v", d, verr)
	}
	return d
}

func TestPaper931Valid(t *testing.T) {
	d := Paper931()
	if err := d.Verify(); err != nil {
		t.Fatalf("paper (9,3,1) design invalid: %v", err)
	}
	if len(d.Blocks) != 12 {
		t.Errorf("paper design has %d blocks, want 12", len(d.Blocks))
	}
	if d.MaxBuckets() != 36 {
		t.Errorf("MaxBuckets = %d, want 36 (paper §II-B4)", d.MaxBuckets())
	}
}

func TestPaper931MatchesFig2(t *testing.T) {
	// Fig 2 columns, exactly as printed in the paper.
	fig2 := [][]int{
		{0, 1, 2}, {0, 3, 6}, {0, 4, 8}, {0, 5, 7},
		{1, 3, 8}, {1, 4, 7}, {1, 5, 6},
		{2, 3, 7}, {2, 4, 6}, {2, 5, 8},
		{3, 4, 5}, {6, 7, 8},
	}
	d := Paper931()
	other := &Design{N: 9, C: 3, Lambda: 1, Blocks: fig2}
	if !Equivalent(d, other) {
		t.Error("Paper931 does not match Fig 2 blocks")
	}
}

func TestPaper1331Valid(t *testing.T) {
	d := Paper1331()
	if err := d.Verify(); err != nil {
		t.Fatalf("(13,3,1) design invalid: %v", err)
	}
	if len(d.Blocks) != 26 {
		t.Errorf("(13,3,1) has %d blocks, want 26", len(d.Blocks))
	}
	if d.MaxBuckets() != 78 {
		t.Errorf("MaxBuckets = %d, want 13*12/2 = 78", d.MaxBuckets())
	}
}

func TestGuaranteeS(t *testing.T) {
	d := Paper931()
	// Paper §III-A and §V-C: S(1)=5, S(2)=14, S(3)=27 for c=3.
	cases := map[int]int{0: 0, 1: 5, 2: 14, 3: 27}
	for m, want := range cases {
		if got := d.S(m); got != want {
			t.Errorf("S(%d) = %d, want %d", m, got, want)
		}
	}
	// §II-B3: for c=2 design-theoretic retrieves 3 in 1, 8 in 2, 15 in 3.
	d2 := &Design{N: 7, C: 2, Lambda: 1}
	for m, want := range map[int]int{1: 3, 2: 8, 3: 15} {
		if got := d2.S(m); got != want {
			t.Errorf("c=2: S(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestAccessesFor(t *testing.T) {
	d := Paper931()
	cases := map[int]int{0: 0, 1: 1, 5: 1, 6: 2, 14: 2, 15: 3, 27: 3, 28: 4}
	for b, want := range cases {
		if got := d.AccessesFor(b); got != want {
			t.Errorf("AccessesFor(%d) = %d, want %d", b, got, want)
		}
	}
}

func TestBoseSTS(t *testing.T) {
	for _, v := range []int{3, 9, 15, 21, 27, 33, 45} {
		d, err := BoseSTS(v)
		mustVerify(t, d, err)
		if len(d.Blocks) != v*(v-1)/6 {
			t.Errorf("STS(%d): %d blocks, want %d", v, len(d.Blocks), v*(v-1)/6)
		}
	}
}

func TestBoseSTSRejects(t *testing.T) {
	for _, v := range []int{7, 13, 5, 6, 12, 0, -3} {
		if _, err := BoseSTS(v); err == nil {
			t.Errorf("BoseSTS(%d) should fail", v)
		}
	}
}

func TestHeffterSTS(t *testing.T) {
	for _, v := range []int{7, 13, 19, 25, 31, 37} {
		d, err := HeffterSTS(v)
		mustVerify(t, d, err)
		if len(d.Blocks) != v*(v-1)/6 {
			t.Errorf("STS(%d): %d blocks, want %d", v, len(d.Blocks), v*(v-1)/6)
		}
	}
}

func TestHeffterSTSRejects(t *testing.T) {
	for _, v := range []int{9, 15, 8, 1, 3} {
		if _, err := HeffterSTS(v); err == nil {
			t.Errorf("HeffterSTS(%d) should fail", v)
		}
	}
}

func TestSTSDispatch(t *testing.T) {
	for _, v := range []int{7, 9, 13, 15, 19, 21, 25, 27} {
		d, err := STS(v)
		mustVerify(t, d, err)
		_ = d
	}
	for _, v := range []int{2, 4, 5, 6, 8, 10, 11, 12, 14} {
		if _, err := STS(v); err == nil {
			t.Errorf("STS(%d) should fail (inadmissible v)", v)
		}
	}
}

func TestAffinePlane(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9} {
		d, err := AffinePlane(q)
		mustVerify(t, d, err)
		if d.N != q*q || d.C != q {
			t.Errorf("AG(2,%d): got (%d,%d), want (%d,%d)", q, d.N, d.C, q*q, q)
		}
		if len(d.Blocks) != q*q+q {
			t.Errorf("AG(2,%d): %d lines, want %d", q, len(d.Blocks), q*q+q)
		}
	}
	if _, err := AffinePlane(6); err == nil {
		t.Error("AffinePlane(6) should fail: 6 not a prime power")
	}
}

func TestAffinePlane3IsPaperDesign(t *testing.T) {
	// AG(2,3) and the paper's (9,3,1) are both STS(9); STS(9) is unique up
	// to isomorphism, but the labelings differ. Check equal parameters and
	// that both verify; also check they cover the same pair structure.
	ag, err := AffinePlane(3)
	if err != nil {
		t.Fatal(err)
	}
	p := Paper931()
	if ag.N != p.N || ag.C != p.C || len(ag.Blocks) != len(p.Blocks) {
		t.Errorf("AG(2,3) parameters differ from paper design")
	}
}

func TestProjectivePlane(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8} {
		d, err := ProjectivePlane(q)
		mustVerify(t, d, err)
		if d.N != q*q+q+1 || d.C != q+1 {
			t.Errorf("PG(2,%d): got (%d,%d), want (%d,%d)", q, d.N, d.C, q*q+q+1, q+1)
		}
		// In a projective plane, #lines == #points.
		if len(d.Blocks) != d.N {
			t.Errorf("PG(2,%d): %d lines, want %d", q, len(d.Blocks), d.N)
		}
	}
	if _, err := ProjectivePlane(6); err == nil {
		t.Error("ProjectivePlane(6) should fail")
	}
}

func TestFanoPlane(t *testing.T) {
	d, err := ProjectivePlane(2)
	mustVerify(t, d, err)
	if d.N != 7 || d.C != 3 || len(d.Blocks) != 7 {
		t.Errorf("Fano plane wrong shape: %s", d)
	}
}

func TestRotations(t *testing.T) {
	d := Paper931()
	rows := d.Rotations()
	if len(rows) != 36 {
		t.Fatalf("Rotations: %d rows, want 36", len(rows))
	}
	// Every row must have 3 distinct devices; the multiset of device sets
	// must contain each design block exactly 3 times.
	setCount := make(map[string]int)
	for _, row := range rows {
		if len(row) != 3 {
			t.Fatalf("row size %d, want 3", len(row))
		}
		if row[0] == row[1] || row[1] == row[2] || row[0] == row[2] {
			t.Fatalf("row %v has duplicate devices", row)
		}
		setCount[canonBlock(row)]++
	}
	for set, n := range setCount {
		if n != 3 {
			t.Errorf("device set %s appears %d times, want 3", set, n)
		}
	}
	// Rotation-major order (Fig 7): the first 12 rows are the design blocks
	// themselves; row 12 is block 0's first rotation.
	if rows[0][0] != d.Blocks[0][0] || rows[1][0] != d.Blocks[1][0] {
		t.Error("rotation order wrong: first rows must be the design blocks")
	}
	if rows[12][0] != d.Blocks[0][1] {
		t.Error("row 12 should be block 0 rotated once")
	}
}

func TestForParams(t *testing.T) {
	good := [][2]int{{9, 3}, {13, 3}, {7, 3}, {15, 3}, {19, 3}, {16, 4}, {25, 5}, {13, 4}, {21, 5}, {37, 4}, {41, 5}}
	for _, g := range good {
		d, err := ForParams(g[0], g[1])
		if err != nil {
			t.Errorf("ForParams(%d,%d): %v", g[0], g[1], err)
			continue
		}
		mustVerify(t, d, nil)
		if d.N != g[0] || d.C != g[1] {
			t.Errorf("ForParams(%d,%d) returned %s", g[0], g[1], d)
		}
	}
	bad := [][2]int{{8, 3}, {10, 3}, {12, 4}, {36, 6}, {5, 5}}
	for _, b := range bad {
		if _, err := ForParams(b[0], b[1]); err == nil {
			t.Errorf("ForParams(%d,%d) should fail", b[0], b[1])
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	d := Paper931()
	// Duplicate point in a block.
	bad := *d
	bad.Blocks = append([][]int{}, d.Blocks...)
	bad.Blocks[0] = []int{0, 0, 2}
	if bad.Verify() == nil {
		t.Error("Verify accepted a block with duplicate points")
	}
	// Out-of-range point.
	bad.Blocks[0] = []int{0, 1, 9}
	if bad.Verify() == nil {
		t.Error("Verify accepted an out-of-range point")
	}
	// Pair appearing twice.
	bad.Blocks[0] = []int{0, 1, 2}
	bad.Blocks[1] = []int{0, 1, 3}
	if bad.Verify() == nil {
		t.Error("Verify accepted a repeated pair")
	}
	// Wrong block size.
	bad.Blocks[1] = []int{0, 3}
	if bad.Verify() == nil {
		t.Error("Verify accepted a short block")
	}
}

func TestEquivalent(t *testing.T) {
	a := Paper931()
	b := Paper931()
	// Shuffle block order and rotate points inside blocks.
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(b.Blocks), func(i, j int) { b.Blocks[i], b.Blocks[j] = b.Blocks[j], b.Blocks[i] })
	for i, blk := range b.Blocks {
		b.Blocks[i] = []int{blk[2], blk[0], blk[1]}
	}
	if !Equivalent(a, b) {
		t.Error("Equivalent should ignore block and point order")
	}
	c := Paper1331()
	if Equivalent(a, c) {
		t.Error("different designs reported equivalent")
	}
}

// Property: for every STS produced, S(M) grows quadratically and
// AccessesFor inverts it.
func TestQuickSInversion(t *testing.T) {
	d := Paper931()
	prop := func(bu uint8) bool {
		b := int(bu)%100 + 1
		m := d.AccessesFor(b)
		return d.S(m) >= b && (m == 0 || d.S(m-1) < b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: every pair of devices appears in exactly one block for randomly
// selected STS sizes (spot-check of construction validity beyond the fixed
// list above).
func TestQuickSTSPairProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, v := range []int{39, 43, 49, 51} {
		d, err := STS(v)
		mustVerify(t, d, err)
		_ = d
	}
}

func BenchmarkBoseSTS27(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BoseSTS(27); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeffterSTS37(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := HeffterSTS(37); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify931(b *testing.B) {
	d := Paper931()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDifferenceFamily(t *testing.T) {
	cases := [][2]int{{7, 3}, {13, 3}, {13, 4}, {37, 4}, {21, 5}, {41, 5}}
	for _, c := range cases {
		v, k := c[0], c[1]
		bases, err := DifferenceFamily(v, k)
		if err != nil {
			t.Errorf("(%d,%d): %v", v, k, err)
			continue
		}
		if len(bases) != (v-1)/(k*(k-1)) {
			t.Errorf("(%d,%d): %d base blocks, want %d", v, k, len(bases), (v-1)/(k*(k-1)))
		}
		// Differences cover 1..v/2 exactly once.
		seen := make([]bool, v/2+1)
		for _, blk := range bases {
			for i := 0; i < len(blk); i++ {
				for j := i + 1; j < len(blk); j++ {
					d := blk[j] - blk[i]
					if d < 0 {
						d += v
					}
					if d > v/2 {
						d = v - d
					}
					if seen[d] {
						t.Fatalf("(%d,%d): difference %d covered twice", v, k, d)
					}
					seen[d] = true
				}
			}
		}
		for d := 1; d <= v/2; d++ {
			if !seen[d] {
				t.Fatalf("(%d,%d): difference %d not covered", v, k, d)
			}
		}
	}
}

func TestDifferenceFamilyRejects(t *testing.T) {
	// Inadmissible residues plus v=25, a classical exception: the residue
	// is admissible but no cyclic (25,4,1) design exists.
	for _, c := range [][2]int{{8, 3}, {12, 4}, {10, 1}, {14, 3}, {25, 4}} {
		if _, err := DifferenceFamily(c[0], c[1]); err == nil {
			t.Errorf("(%d,%d) should fail", c[0], c[1])
		}
	}
}

func TestCyclicDesign(t *testing.T) {
	for _, c := range [][2]int{{13, 4}, {37, 4}, {21, 5}} {
		d, err := CyclicDesign(c[0], c[1])
		mustVerify(t, d, err)
		if d.N != c[0] || d.C != c[1] {
			t.Errorf("wrong parameters: %s", d)
		}
	}
	if _, err := CyclicDesign(12, 4); err == nil {
		t.Error("inadmissible parameters should fail")
	}
}

func TestKnownDesigns(t *testing.T) {
	known := KnownDesigns(25)
	if len(known) < 8 {
		t.Fatalf("only %d known designs up to N=25", len(known))
	}
	seen := map[[2]int]bool{}
	for _, k := range known {
		if seen[[2]int{k.N, k.C}] {
			t.Errorf("(%d,%d) listed twice", k.N, k.C)
		}
		seen[[2]int{k.N, k.C}] = true
		// Every listed design must actually construct and verify.
		d, err := ForParams(k.N, k.C)
		if err != nil {
			t.Errorf("(%d,%d) listed but not constructible: %v", k.N, k.C, err)
			continue
		}
		if err := d.Verify(); err != nil {
			t.Errorf("(%d,%d): %v", k.N, k.C, err)
		}
		if k.S1 != d.S(1) {
			t.Errorf("(%d,%d): S1 %d vs %d", k.N, k.C, k.S1, d.S(1))
		}
	}
	// The paper's two designs must be present.
	if !seen[[2]int{9, 3}] || !seen[[2]int{13, 3}] {
		t.Error("paper designs missing from catalog")
	}
}
