package design

import (
	"fmt"

	"flashqos/internal/gf"
)

// AffinePlane constructs AG(2, q), a (q², q, 1) design, for a prime power
// q: points are the q² pairs (x, y) over GF(q); blocks are the q²+q lines
// y = m·x + b and x = c. AG(2,3) is the paper's (9,3,1) design (up to
// isomorphism). Affine planes are resolvable: the lines partition into q+1
// parallel classes.
func AffinePlane(q int) (*Design, error) {
	f, err := gf.NewOrder(q)
	if err != nil {
		return nil, fmt.Errorf("%w: AffinePlane needs prime-power order: %v", ErrNoConstruction, err)
	}
	point := func(x, y int) int { return x*q + y }
	var blocks [][]int
	// Sloped lines y = m x + b.
	for m := 0; m < q; m++ {
		for b := 0; b < q; b++ {
			line := make([]int, 0, q)
			for x := 0; x < q; x++ {
				y := f.Add(f.Mul(m, x), b)
				line = append(line, point(x, y))
			}
			blocks = append(blocks, line)
		}
	}
	// Vertical lines x = c.
	for c := 0; c < q; c++ {
		line := make([]int, 0, q)
		for y := 0; y < q; y++ {
			line = append(line, point(c, y))
		}
		blocks = append(blocks, line)
	}
	return &Design{N: q * q, C: q, Lambda: 1, Blocks: blocks, Name: fmt.Sprintf("AG(2,%d)", q)}, nil
}

// ProjectivePlane constructs PG(2, q), a (q²+q+1, q+1, 1) design, for a
// prime power q. Points are the 1-dimensional subspaces of GF(q)³,
// represented by normalized homogeneous coordinates; lines are the
// 2-dimensional subspaces. PG(2,3) yields the (13,4,1) design; PG(2,2) the
// Fano plane (7,3,1).
func ProjectivePlane(q int) (*Design, error) {
	f, err := gf.NewOrder(q)
	if err != nil {
		return nil, fmt.Errorf("%w: ProjectivePlane needs prime-power order: %v", ErrNoConstruction, err)
	}
	// Normalized point representatives: (1, a, b), (0, 1, a), (0, 0, 1).
	type vec [3]int
	var pts []vec
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			pts = append(pts, vec{1, a, b})
		}
	}
	for a := 0; a < q; a++ {
		pts = append(pts, vec{0, 1, a})
	}
	pts = append(pts, vec{0, 0, 1})
	index := make(map[vec]int, len(pts))
	for i, p := range pts {
		index[p] = i
	}
	dot := func(u, v vec) int {
		s := 0
		for i := 0; i < 3; i++ {
			s = f.Add(s, f.Mul(u[i], v[i]))
		}
		return s
	}
	// Lines are indexed by the same normalized representatives (duality):
	// line L consists of points P with <L, P> = 0.
	var blocks [][]int
	for _, l := range pts {
		var line []int
		for _, p := range pts {
			if dot(l, p) == 0 {
				line = append(line, index[p])
			}
		}
		blocks = append(blocks, line)
	}
	return &Design{N: q*q + q + 1, C: q + 1, Lambda: 1, Blocks: blocks, Name: fmt.Sprintf("PG(2,%d)", q)}, nil
}
