package design

import "fmt"

// BoseSTS constructs a Steiner triple system STS(v) — a (v, 3, 1) design —
// for v ≡ 3 (mod 6) using the Bose construction: points are pairs (x, j)
// with x in Z_q (q = v/3, odd) and j in {0,1,2}; the blocks are the
// "vertical" triples {(x,0),(x,1),(x,2)} and, for every unordered pair
// x ≠ y, the triple {(x,j),(y,j),((x+y)/2, j+1)}.
func BoseSTS(v int) (*Design, error) {
	if v%6 != 3 || v < 3 {
		return nil, fmt.Errorf("%w: BoseSTS requires v ≡ 3 (mod 6), got %d", ErrNoConstruction, v)
	}
	q := v / 3 // odd, so 2 is invertible mod q
	half := (q + 1) / 2
	point := func(x, j int) int { return j*q + x }

	var blocks [][]int
	for x := 0; x < q; x++ {
		blocks = append(blocks, []int{point(x, 0), point(x, 1), point(x, 2)})
	}
	for x := 0; x < q; x++ {
		for y := x + 1; y < q; y++ {
			mid := (x + y) * half % q // (x+y)/2 in Z_q
			for j := 0; j < 3; j++ {
				blocks = append(blocks, []int{point(x, j), point(y, j), point(mid, (j+1)%3)})
			}
		}
	}
	return &Design{N: v, C: 3, Lambda: 1, Blocks: blocks, Name: fmt.Sprintf("Bose STS(%d)", v)}, nil
}

// heffterTriples partitions {1, ..., 3t} into t triples {x, y, z} such that
// x + y = z or x + y + z = v (v = 6t+1). These "Heffter difference triples"
// yield base blocks of a cyclic STS(v). Returns nil if no partition exists
// (none is known to be missing for v ≡ 1 mod 6, v >= 7).
func heffterTriples(v int) [][3]int {
	t := (v - 1) / 6
	n := 3 * t
	used := make([]bool, n+1)
	triples := make([][3]int, 0, t)

	var solve func() bool
	solve = func() bool {
		if len(triples) == t {
			return true
		}
		// Smallest unused element anchors the next triple.
		x := 0
		for i := 1; i <= n; i++ {
			if !used[i] {
				x = i
				break
			}
		}
		used[x] = true
		for y := x + 1; y <= n; y++ {
			if used[y] {
				continue
			}
			for _, z := range [2]int{x + y, v - x - y} {
				if z <= y || z > n || used[z] {
					continue
				}
				used[y], used[z] = true, true
				triples = append(triples, [3]int{x, y, z})
				if solve() {
					return true
				}
				triples = triples[:len(triples)-1]
				used[y], used[z] = false, false
			}
		}
		used[x] = false
		return false
	}
	if !solve() {
		return nil
	}
	return triples
}

// HeffterSTS constructs a cyclic Steiner triple system STS(v) for
// v ≡ 1 (mod 6) from a difference family derived from Heffter difference
// triples: each triple (x, y, z) gives the base block {0, x, x+y}, and the
// v translates of the base blocks modulo v form the design. The (13,3,1)
// design the paper uses for the TPC-E experiments is produced this way.
func HeffterSTS(v int) (*Design, error) {
	if v%6 != 1 || v < 7 {
		return nil, fmt.Errorf("%w: HeffterSTS requires v ≡ 1 (mod 6), v >= 7, got %d", ErrNoConstruction, v)
	}
	triples := heffterTriples(v)
	if triples == nil {
		return nil, fmt.Errorf("%w: no Heffter triple partition for v=%d", ErrNoConstruction, v)
	}
	var blocks [][]int
	for _, tr := range triples {
		base := [3]int{0, tr[0], tr[0] + tr[1]}
		for s := 0; s < v; s++ {
			blocks = append(blocks, []int{(base[0] + s) % v, (base[1] + s) % v, (base[2] + s) % v})
		}
	}
	return &Design{N: v, C: 3, Lambda: 1, Blocks: blocks, Name: fmt.Sprintf("cyclic STS(%d)", v)}, nil
}

// STS constructs a Steiner triple system on v points for any admissible
// v ≡ 1 or 3 (mod 6), choosing the appropriate construction.
func STS(v int) (*Design, error) {
	switch {
	case v%6 == 3:
		return BoseSTS(v)
	case v%6 == 1:
		return HeffterSTS(v)
	default:
		return nil, fmt.Errorf("%w: STS(v) exists only for v ≡ 1,3 (mod 6), got %d", ErrNoConstruction, v)
	}
}
