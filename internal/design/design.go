// Package design constructs and verifies (N, c, λ) combinatorial block
// designs used for replicated declustering (Altiparmak & Tosun, CLUSTER
// 2012, §II-B). A design on N points with block size c and index λ=1 has the
// property that every unordered pair of points appears together in exactly
// one block. Storing the c replicas of a bucket on the devices named by a
// design block guarantees that any S(M) = (c-1)M² + cM buckets can be
// retrieved in M parallel accesses.
//
// Provided constructions:
//
//   - Paper931: the explicit (9,3,1) design printed in the paper (Fig 2),
//     which is the affine plane AG(2,3).
//   - BoseSTS: Steiner triple systems STS(v) for v ≡ 3 (mod 6).
//   - HeffterSTS: cyclic Steiner triple systems for v ≡ 1 (mod 6) via
//     difference families found by Heffter-triple backtracking.
//   - AffinePlane: (q², q, 1) designs for prime powers q.
//   - ProjectivePlane: (q²+q+1, q+1, 1) designs for prime powers q.
//
// Rotations of the design blocks expand a design with b blocks into
// b·c = N(N-1)/(c-1) distinct replica placements ("allocation rows"), the
// bucket capacity the paper quotes for (9,3,1): 9·8/2 = 36.
package design

import (
	"errors"
	"fmt"
	"sort"
)

// Design is an (N, c, λ) block design: N points (devices), blocks of size C,
// every pair of points in exactly Lambda blocks. The paper uses λ = 1
// exclusively; constructions in this package produce λ = 1 designs.
type Design struct {
	N      int     // number of points (devices)
	C      int     // block size (replica count)
	Lambda int     // pair multiplicity
	Blocks [][]int // each block lists C distinct points in [0, N)
	Name   string  // human-readable construction name
}

// ErrNoConstruction is returned when no supported construction exists for
// the requested parameters.
var ErrNoConstruction = errors.New("design: no known construction for parameters")

// String implements fmt.Stringer.
func (d *Design) String() string {
	return fmt.Sprintf("(%d,%d,%d) design [%s], %d blocks", d.N, d.C, d.Lambda, d.Name, len(d.Blocks))
}

// Verify checks the design axioms: every block has C distinct in-range
// points, and every unordered pair of points appears in exactly Lambda
// blocks. It returns a descriptive error on the first violation.
func (d *Design) Verify() error {
	if d.N < 2 || d.C < 2 || d.C > d.N || d.Lambda < 1 {
		return fmt.Errorf("design: invalid parameters (%d,%d,%d)", d.N, d.C, d.Lambda)
	}
	pairCount := make(map[[2]int]int)
	for bi, blk := range d.Blocks {
		if len(blk) != d.C {
			return fmt.Errorf("design: block %d has size %d, want %d", bi, len(blk), d.C)
		}
		seen := make(map[int]bool, d.C)
		for _, p := range blk {
			if p < 0 || p >= d.N {
				return fmt.Errorf("design: block %d contains out-of-range point %d", bi, p)
			}
			if seen[p] {
				return fmt.Errorf("design: block %d repeats point %d", bi, p)
			}
			seen[p] = true
		}
		for i := 0; i < len(blk); i++ {
			for j := i + 1; j < len(blk); j++ {
				a, b := blk[i], blk[j]
				if a > b {
					a, b = b, a
				}
				pairCount[[2]int{a, b}]++
			}
		}
	}
	for a := 0; a < d.N; a++ {
		for b := a + 1; b < d.N; b++ {
			if got := pairCount[[2]int{a, b}]; got != d.Lambda {
				return fmt.Errorf("design: pair (%d,%d) appears %d times, want %d", a, b, got, d.Lambda)
			}
		}
	}
	// Block-count sanity: b = λ·N(N-1) / (c(c-1)).
	want := d.Lambda * d.N * (d.N - 1) / (d.C * (d.C - 1))
	if len(d.Blocks) != want {
		return fmt.Errorf("design: %d blocks, want %d", len(d.Blocks), want)
	}
	return nil
}

// S returns the number of buckets guaranteed retrievable in M parallel
// accesses under design-theoretic allocation: S(M) = (c-1)·M² + c·M
// (paper §II-B2).
func (d *Design) S(M int) int {
	return SFor(d.C, M)
}

// SFor evaluates the guarantee polynomial S(M) = (c-1)·M² + c·M for an
// arbitrary replica count c. Beyond the design's own c it also prices the
// degraded guarantee: with f failed devices every bucket keeps at least
// c-f replicas and any pair of devices still shares at most λ buckets, so
// the same counting argument bounds the retrievable set by SFor(c-f, M).
// c <= 0 or M < 0 yields 0 (no guarantee can be made).
func SFor(c, M int) int {
	if c <= 0 || M < 0 {
		return 0
	}
	return (c-1)*M*M + c*M
}

// AccessesFor returns the smallest M such that S(M) >= b, i.e. the
// guaranteed worst-case number of parallel accesses for b buckets. b <= 0
// yields 0.
func (d *Design) AccessesFor(b int) int {
	if b <= 0 {
		return 0
	}
	m := 0
	for d.S(m) < b {
		m++
	}
	return m
}

// MaxBuckets returns the number of distinct buckets supported when rotations
// of the design blocks are used: N(N-1)/(c-1) for λ=1 (paper §II-B4).
func (d *Design) MaxBuckets() int {
	return d.Lambda * d.N * (d.N - 1) / (d.C - 1)
}

// Rotations expands the design blocks into allocation rows. Row r of the
// result lists, in copy order, the devices storing bucket r: the first copy
// of bucket r lives on row[0], the second on row[1], and so on. Each design
// block (d0, d1, ..., d_{c-1}) yields c rows — the block itself and its
// cyclic rotations — so the result has len(Blocks)·C == MaxBuckets() rows.
//
// Rows are ordered rotation-major, matching the paper's Fig 7: buckets
// 0..b-1 are the b design blocks themselves (all with distinct device
// sets), buckets b..2b-1 their first rotations, and so on. Consecutive
// small bucket pools therefore spread over distinct device sets.
func (d *Design) Rotations() [][]int {
	rows := make([][]int, 0, len(d.Blocks)*d.C)
	for r := 0; r < d.C; r++ {
		for _, blk := range d.Blocks {
			row := make([]int, d.C)
			for i := 0; i < d.C; i++ {
				row[i] = blk[(i+r)%d.C]
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// canonBlock returns a sorted copy of a block, for set comparisons.
func canonBlock(blk []int) string {
	c := make([]int, len(blk))
	copy(c, blk)
	sort.Ints(c)
	return fmt.Sprint(c)
}

// Equivalent reports whether two designs have the same block multiset
// (ignoring the order of points inside a block and the order of blocks).
func Equivalent(a, b *Design) bool {
	if a.N != b.N || a.C != b.C || len(a.Blocks) != len(b.Blocks) {
		return false
	}
	count := make(map[string]int, len(a.Blocks))
	for _, blk := range a.Blocks {
		count[canonBlock(blk)]++
	}
	for _, blk := range b.Blocks {
		count[canonBlock(blk)]--
		if count[canonBlock(blk)] < 0 {
			return false
		}
	}
	return true
}
