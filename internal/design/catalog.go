package design

import "fmt"

// Paper931 returns the exact (9,3,1) design printed in Fig 2 of the paper.
// Each block lists the devices storing the three copies of the buckets
// assigned to it. The design is (an isomorph of) the affine plane AG(2,3).
func Paper931() *Design {
	blocks := [][]int{
		{0, 1, 2}, {0, 3, 6}, {0, 4, 8}, {0, 5, 7},
		{1, 3, 8}, {1, 4, 7}, {1, 5, 6},
		{2, 3, 7}, {2, 4, 6}, {2, 5, 8},
		{3, 4, 5}, {6, 7, 8},
	}
	return &Design{N: 9, C: 3, Lambda: 1, Blocks: blocks, Name: "paper (9,3,1)"}
}

// Paper1331 returns a (13,3,1) design — the design the paper uses for the
// 13-volume TPC-E experiments — built from the classical difference family
// {0,1,4}, {0,2,7} over Z13.
func Paper1331() *Design {
	bases := [][3]int{{0, 1, 4}, {0, 2, 7}}
	var blocks [][]int
	for _, b := range bases {
		for s := 0; s < 13; s++ {
			blocks = append(blocks, []int{(b[0] + s) % 13, (b[1] + s) % 13, (b[2] + s) % 13})
		}
	}
	return &Design{N: 13, C: 3, Lambda: 1, Blocks: blocks, Name: "difference family (13,3,1)"}
}

// ForParams returns an (N, c, 1) design for the requested device count N and
// copy count c, choosing among the supported constructions:
//
//   - c == 3: Steiner triple systems (N ≡ 1 or 3 mod 6).
//   - N == c²: affine plane AG(2, c) for prime-power c.
//   - N == c²-c+1 with c-1 a prime power: projective plane PG(2, c-1).
//
// It returns ErrNoConstruction when no supported construction matches.
func ForParams(n, c int) (*Design, error) {
	if c == 3 {
		if n == 9 {
			return Paper931(), nil
		}
		if n == 13 {
			return Paper1331(), nil
		}
		if d, err := STS(n); err == nil {
			return d, nil
		}
	}
	if n == c*c {
		if d, err := AffinePlane(c); err == nil {
			return d, nil
		}
	}
	if q := c - 1; q >= 2 && n == q*q+q+1 {
		if d, err := ProjectivePlane(q); err == nil {
			return d, nil
		}
	}
	// General fallback: cyclic designs from difference families (covers
	// e.g. (37,4,1), (41,5,1) that no plane provides).
	if c >= 3 && (n-1)%(c*(c-1)) == 0 {
		if d, err := CyclicDesign(n, c); err == nil {
			return d, nil
		}
	}
	return nil, fmt.Errorf("%w: N=%d c=%d", ErrNoConstruction, n, c)
}

// Known describes one constructible design parameter set.
type Known struct {
	N, C    int
	Name    string
	S1      int // guarantee S(1)
	Buckets int // rotation capacity
}

// KnownDesigns enumerates every (N, c, 1) design this package can
// construct with N <= maxN, by probing the constructions. Useful for
// sizing an array: pick the smallest design whose S(M) covers the target
// load.
func KnownDesigns(maxN int) []Known {
	var out []Known
	for n := 3; n <= maxN; n++ {
		for c := 3; c <= 5 && c < n; c++ {
			d, err := ForParams(n, c)
			if err != nil {
				continue
			}
			out = append(out, Known{N: d.N, C: d.C, Name: d.Name, S1: d.S(1), Buckets: d.MaxBuckets()})
		}
	}
	return out
}
