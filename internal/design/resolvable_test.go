package design

import "testing"

func TestAffinePlaneIsResolvable(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5} {
		d, err := AffinePlane(q)
		if err != nil {
			t.Fatal(err)
		}
		classes, err := ParallelClasses(d)
		if err != nil {
			t.Fatalf("AG(2,%d): %v", q, err)
		}
		if len(classes) != q+1 {
			t.Errorf("AG(2,%d): %d classes, want %d", q, len(classes), q+1)
		}
		if err := VerifyResolution(d, classes); err != nil {
			t.Errorf("AG(2,%d): %v", q, err)
		}
	}
}

func TestPaper931Resolvable(t *testing.T) {
	// The paper's (9,3,1) is AG(2,3), hence resolvable into 4 classes.
	d := Paper931()
	classes, err := ParallelClasses(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 4 {
		t.Errorf("got %d classes, want 4", len(classes))
	}
	if err := VerifyResolution(d, classes); err != nil {
		t.Error(err)
	}
}

func TestFanoNotResolvable(t *testing.T) {
	// PG(2,2) has 7 points, block size 3: 3 does not divide 7.
	d, err := ProjectivePlane(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParallelClasses(d); err == nil {
		t.Error("Fano plane should not be resolvable")
	}
}

func TestParallelClassesRejectsLargeN(t *testing.T) {
	d := &Design{N: 64, C: 8, Lambda: 1}
	if _, err := ParallelClasses(d); err == nil {
		t.Error("N > 63 should be rejected")
	}
}

func TestVerifyResolutionCatchesErrors(t *testing.T) {
	d := Paper931()
	classes, err := ParallelClasses(d)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate block across classes.
	bad := make([][]int, len(classes))
	for i := range classes {
		bad[i] = append([]int{}, classes[i]...)
	}
	bad[1][0] = bad[0][0]
	if VerifyResolution(d, bad) == nil {
		t.Error("duplicated block not caught")
	}
	// Out-of-range block.
	bad[1][0] = 99
	if VerifyResolution(d, bad) == nil {
		t.Error("out-of-range block not caught")
	}
}

func TestMOLS(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 7, 8, 9} {
		squares, err := MOLS(n)
		if err != nil {
			t.Fatalf("MOLS(%d): %v", n, err)
		}
		if len(squares) != n-1 {
			t.Errorf("MOLS(%d): %d squares, want %d (complete set)", n, len(squares), n-1)
		}
		if err := VerifyMOLS(squares); err != nil {
			t.Errorf("MOLS(%d): %v", n, err)
		}
	}
	if _, err := MOLS(6); err == nil {
		t.Error("MOLS(6) should fail (not a prime power; famously none of order 6)")
	}
}

func TestVerifyMOLSCatchesBadSquares(t *testing.T) {
	if VerifyMOLS(nil) == nil {
		t.Error("empty set should fail")
	}
	// Non-Latin square.
	bad := [][][]int{{{0, 0}, {1, 1}}}
	if VerifyMOLS(bad) == nil {
		t.Error("non-Latin square not caught")
	}
	// Two identical squares are not orthogonal.
	sq := [][]int{{0, 1}, {1, 0}}
	if VerifyMOLS([][][]int{sq, sq}) == nil {
		t.Error("non-orthogonal pair not caught")
	}
}

func TestKirkman15(t *testing.T) {
	d, classes := Kirkman15()
	if err := d.Verify(); err != nil {
		t.Fatalf("KTS(15) invalid as a (15,3,1) design: %v", err)
	}
	if len(classes) != 7 {
		t.Errorf("got %d days, want 7", len(classes))
	}
	if err := VerifyResolution(d, classes); err != nil {
		t.Errorf("KTS(15) resolution invalid: %v", err)
	}
	if d.S(1) != 5 || d.MaxBuckets() != 105 {
		t.Errorf("KTS(15) parameters: S(1)=%d buckets=%d", d.S(1), d.MaxBuckets())
	}
}

func BenchmarkParallelClasses931(b *testing.B) {
	d := Paper931()
	for i := 0; i < b.N; i++ {
		if _, err := ParallelClasses(d); err != nil {
			b.Fatal(err)
		}
	}
}
