package design

import "fmt"

// DifferenceFamily searches for a cyclic (v, k, 1) difference family over
// Z_v: a set of base blocks of size k whose pairwise differences cover
// every nonzero residue exactly once. Translating each base block through
// Z_v yields a (v, k, 1) design. Existence requires v ≡ 1 (mod k(k-1));
// the backtracking search is practical for the small parameters used for
// storage arrays (v up to ~50 for k = 4, 5).
//
// The k = 3 case is served by the specialised Heffter construction in
// HeffterSTS; this general search also covers k = 4 (e.g. (25,4,1),
// (37,4,1)) and k = 5 (e.g. (41,5,1)).
func DifferenceFamily(v, k int) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("%w: difference family needs k >= 2", ErrNoConstruction)
	}
	if (v-1)%(k*(k-1)) != 0 {
		return nil, fmt.Errorf("%w: (%d,%d,1) difference family needs v ≡ 1 mod k(k-1)", ErrNoConstruction, v, k)
	}
	numBlocks := (v - 1) / (k * (k - 1))
	usedDiff := make([]bool, v) // usedDiff[d] for d and v-d set together
	blocks := make([][]int, 0, numBlocks)

	markBlock := func(blk []int, on bool) bool {
		// Mark (or unmark) all pairwise differences; fail on collision.
		var touched []int
		for i := 0; i < len(blk); i++ {
			for j := i + 1; j < len(blk); j++ {
				d := blk[j] - blk[i]
				if d < 0 {
					d += v
				}
				if d > v/2 {
					d = v - d
				}
				if on {
					if usedDiff[d] {
						for _, t := range touched {
							usedDiff[t] = false
						}
						return false
					}
					usedDiff[d] = true
					touched = append(touched, d)
				} else {
					usedDiff[d] = false
				}
			}
		}
		return true
	}

	var extend func(blk []int, minNext int) bool
	var solve func() bool
	solve = func() bool {
		if len(blocks) == numBlocks {
			return true
		}
		// Anchor each base block at 0 with its second element the smallest
		// unused difference (canonical form prunes symmetric branches).
		small := 0
		for d := 1; d <= v/2; d++ {
			if !usedDiff[d] {
				small = d
				break
			}
		}
		if small == 0 {
			return false
		}
		return extend([]int{0, small}, small+1)
	}
	extend = func(blk []int, minNext int) bool {
		if len(blk) == k {
			if !markBlock(blk, true) {
				return false
			}
			cp := make([]int, k)
			copy(cp, blk)
			blocks = append(blocks, cp)
			if solve() {
				return true
			}
			blocks = blocks[:len(blocks)-1]
			markBlock(blk, false)
			return false
		}
		for x := minNext; x < v; x++ {
			// Quick pairwise-difference pre-check against current block.
			ok := true
			for _, y := range blk {
				d := x - y
				if d < 0 {
					d += v
				}
				if d > v/2 {
					d = v - d
				}
				if d == 0 || usedDiff[d] {
					ok = false
					break
				}
			}
			// Also check differences within the candidate prefix.
			if ok {
				seen := map[int]bool{}
				cand := append(append([]int{}, blk...), x)
				for i := 0; i < len(cand) && ok; i++ {
					for j := i + 1; j < len(cand); j++ {
						d := cand[j] - cand[i]
						if d < 0 {
							d += v
						}
						if d > v/2 {
							d = v - d
						}
						if seen[d] {
							ok = false
							break
						}
						seen[d] = true
					}
				}
			}
			if !ok {
				continue
			}
			if extend(append(blk, x), x+1) {
				return true
			}
		}
		return false
	}
	if !solve() {
		return nil, fmt.Errorf("%w: no (%d,%d,1) difference family found", ErrNoConstruction, v, k)
	}
	return blocks, nil
}

// CyclicDesign builds a (v, k, 1) design from a difference family by
// translating every base block through Z_v.
func CyclicDesign(v, k int) (*Design, error) {
	bases, err := DifferenceFamily(v, k)
	if err != nil {
		return nil, err
	}
	var blocks [][]int
	for _, base := range bases {
		for s := 0; s < v; s++ {
			blk := make([]int, k)
			for i, x := range base {
				blk[i] = (x + s) % v
			}
			blocks = append(blocks, blk)
		}
	}
	return &Design{N: v, C: k, Lambda: 1, Blocks: blocks, Name: fmt.Sprintf("cyclic difference family (%d,%d,1)", v, k)}, nil
}
