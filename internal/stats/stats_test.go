package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummaryBasic(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Errorf("N = %d, want 5", s.N())
	}
	if !almostEqual(s.Mean(), 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", s.Mean())
	}
	if !almostEqual(s.Var(), 2, 1e-12) {
		t.Errorf("Var = %v, want 2 (population)", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Error("empty summary should be all zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(-7.5)
	if s.Mean() != -7.5 || s.Min() != -7.5 || s.Max() != -7.5 || s.Var() != 0 {
		t.Error("single-sample summary wrong")
	}
}

func TestSummaryNegatives(t *testing.T) {
	var s Summary
	s.Add(-3)
	s.Add(-1)
	if s.Max() != -1 {
		t.Errorf("Max = %v, want -1 (max must track negative values)", s.Max())
	}
	if s.Min() != -3 {
		t.Errorf("Min = %v, want -3", s.Min())
	}
}

func TestMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var all, a, b Summary
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*10 + 5
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged Mean = %v, want %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Var(), all.Var(), 1e-9) {
		t.Errorf("merged Var = %v, want %v", a.Var(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merged extrema wrong")
	}
}

func TestMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(1)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 {
		t.Error("merge with empty changed N")
	}
	var c Summary
	c.Merge(&a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 1 {
		t.Error("merge into empty wrong")
	}
}

func TestPercentile(t *testing.T) {
	data := []float64{5, 1, 4, 2, 3}
	if got := Percentile(data, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(data, 100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := Percentile(data, 50); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	if got := Percentile(data, 25); got != 2 {
		t.Errorf("P25 = %v, want 2", got)
	}
	// Interpolation: P10 of [1..5] = 1.4
	if got := Percentile(data, 10); !almostEqual(got, 1.4, 1e-12) {
		t.Errorf("P10 = %v, want 1.4", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Error("empty percentile should be 0")
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Error("single-element percentile should be the element")
	}
	// Out-of-range p clamps.
	if Percentile(data, -5) != 1 || Percentile(data, 150) != 5 {
		t.Error("percentile clamping wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for x := 0.5; x < 10; x++ {
		h.Add(x)
	}
	if h.Total() != 10 {
		t.Errorf("Total = %d, want 10", h.Total())
	}
	for i := 0; i < 5; i++ {
		if h.Counts[i] != 2 {
			t.Errorf("bin %d = %d, want 2", i, h.Counts[i])
		}
		if !almostEqual(h.Fraction(i), 0.2, 1e-12) {
			t.Errorf("Fraction(%d) = %v, want 0.2", i, h.Fraction(i))
		}
	}
	// Clamping.
	h.Add(-1)
	h.Add(100)
	if h.Counts[0] != 3 || h.Counts[4] != 3 {
		t.Error("out-of-range samples should clamp to edge bins")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(3)
	s.Add(0, 1)
	s.Add(0, 3)
	s.Add(2, 10)
	s.Add(5, 7) // grows
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	means := s.Means()
	if means[0] != 2 || means[2] != 10 || means[5] != 7 || means[1] != 0 {
		t.Errorf("Means = %v", means)
	}
	maxes := s.Maxes()
	if maxes[0] != 3 {
		t.Errorf("Maxes[0] = %v, want 3", maxes[0])
	}
	all := s.Overall()
	if all.N() != 4 {
		t.Errorf("Overall N = %d, want 4", all.N())
	}
	if !almostEqual(all.Mean(), 21.0/4, 1e-12) {
		t.Errorf("Overall mean = %v, want 5.25", all.Mean())
	}
}

func TestMeanMaxOf(t *testing.T) {
	if MeanOf(nil) != 0 || MaxOf(nil) != 0 {
		t.Error("empty helpers should return 0")
	}
	if MeanOf([]float64{2, 4}) != 3 {
		t.Error("MeanOf wrong")
	}
	if MaxOf([]float64{-2, -4}) != -2 {
		t.Error("MaxOf wrong on negatives")
	}
}

// Property: Welford mean/var match the two-pass formulas.
func TestQuickWelford(t *testing.T) {
	prop := func(xs []float64) bool {
		// Filter out NaN/Inf inputs that quick may generate.
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var s Summary
		for _, x := range clean {
			s.Add(x)
		}
		mean := MeanOf(clean)
		var v float64
		for _, x := range clean {
			v += (x - mean) * (x - mean)
		}
		v /= float64(len(clean))
		scale := math.Max(1, math.Abs(mean))
		return almostEqual(s.Mean(), mean, 1e-6*scale) && almostEqual(s.Var(), v, 1e-4*math.Max(1, v))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 1000))
	}
}
