// Package stats provides the summary statistics used throughout the
// evaluation harness: streaming mean/variance/extrema (Welford's algorithm),
// percentiles, histograms, and per-interval time series matching the way the
// paper reports results (avg/std/max response times per table row, per-
// interval series per figure).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming summary statistics without storing samples.
// The zero value is ready to use.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasSamples bool
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasSamples || x < s.min {
		s.min = x
	}
	if !s.hasSamples || x > s.max {
		s.max = x
	}
	s.hasSamples = true
}

// Merge folds another summary into s (parallel reduction).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n1, n2 := float64(s.n), float64(o.n)
	delta := o.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += o.m2 + delta*delta*n1*n2/total
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// N returns the sample count.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the population variance (0 for n < 2).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// String formats the summary the way the paper's tables do: avg, std, max.
func (s *Summary) String() string {
	return fmt.Sprintf("avg=%.4f std=%.4f max=%.4f (n=%d)", s.Mean(), s.Std(), s.Max(), s.n)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the data using
// linear interpolation between closest ranks. The input is sorted in place.
func Percentile(data []float64, p float64) float64 {
	if len(data) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sort.Float64s(data)
	if len(data) == 1 {
		return data[0]
	}
	rank := p / 100 * float64(len(data)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return data[lo]
	}
	frac := rank - float64(lo)
	return data[lo]*(1-frac) + data[hi]*frac
}

// Histogram counts samples into uniform bins over [lo, hi). Samples outside
// the range are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least 1 bin")
	}
	if hi <= lo {
		panic("stats: histogram range empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(bins))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Series is a per-interval sequence of summaries, as used for the paper's
// per-interval figures (Fig 6, 8, 9, 10, 11, 12).
type Series struct {
	Intervals []Summary
}

// NewSeries creates a series with n intervals.
func NewSeries(n int) *Series {
	return &Series{Intervals: make([]Summary, n)}
}

// Add records sample x in interval i, growing the series if needed.
func (s *Series) Add(i int, x float64) {
	for len(s.Intervals) <= i {
		s.Intervals = append(s.Intervals, Summary{})
	}
	s.Intervals[i].Add(x)
}

// Len returns the number of intervals.
func (s *Series) Len() int { return len(s.Intervals) }

// Means returns the per-interval means.
func (s *Series) Means() []float64 {
	out := make([]float64, len(s.Intervals))
	for i := range s.Intervals {
		out[i] = s.Intervals[i].Mean()
	}
	return out
}

// Maxes returns the per-interval maxima.
func (s *Series) Maxes() []float64 {
	out := make([]float64, len(s.Intervals))
	for i := range s.Intervals {
		out[i] = s.Intervals[i].Max()
	}
	return out
}

// Overall merges all intervals into one summary.
func (s *Series) Overall() Summary {
	var total Summary
	for i := range s.Intervals {
		total.Merge(&s.Intervals[i])
	}
	return total
}

// MeanOf returns the mean of a float slice (0 for empty input).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MaxOf returns the maximum of a float slice (0 for empty input).
func MaxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
