package retrieval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flashqos/internal/decluster"
	"flashqos/internal/design"
	"flashqos/internal/maxflow"
)

const service = 0.132507 // ms, one 8KB flash read (paper §V-A)

func dt931(t testing.TB) *decluster.DesignTheoretic {
	t.Helper()
	a, err := decluster.NewDesignTheoretic(design.Paper931())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGreedyEmpty(t *testing.T) {
	r := Greedy(nil, 9)
	if r.Accesses != 0 || len(r.Assignment) != 0 {
		t.Error("empty request should cost 0")
	}
}

func TestGreedySingle(t *testing.T) {
	r := Greedy([][]int{{3, 4, 5}}, 9)
	if r.Accesses != 1 || r.Assignment[0] != 3 {
		t.Errorf("single block should stay on first copy: %+v", r)
	}
}

func TestGreedyRemaps(t *testing.T) {
	// Three blocks whose first copies collide on device 0 but have disjoint
	// alternates — greedy must spread them into one access.
	replicas := [][]int{{0, 1, 2}, {0, 3, 6}, {0, 4, 8}}
	r := Greedy(replicas, 9)
	if r.Accesses != 1 {
		t.Errorf("greedy did not remap: %d accesses, want 1", r.Accesses)
	}
	seen := map[int]bool{}
	for i, d := range r.Assignment {
		ok := false
		for _, rd := range replicas[i] {
			if rd == d {
				ok = true
			}
		}
		if !ok {
			t.Errorf("block %d assigned off-replica device %d", i, d)
		}
		if seen[d] {
			t.Errorf("device %d reused within one access", d)
		}
		seen[d] = true
	}
}

func TestGreedyPaperT3(t *testing.T) {
	// Paper Fig 5, period T3: blocks (1,4,7), (1,3,8), (0,5,7), (0,1,2) —
	// 4 blocks, initial mapping needs 2 accesses (two blocks start on 1,
	// two on 0), remapping reaches 1 access.
	replicas := [][]int{{1, 4, 7}, {1, 3, 8}, {0, 5, 7}, {0, 1, 2}}
	r := Greedy(replicas, 9)
	if r.Accesses != 1 {
		t.Errorf("T3 request should remap to 1 access, got %d", r.Accesses)
	}
}

func TestOptimalMatchesMaxflow(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dt := dt931(t)
	for trial := 0; trial < 1000; trial++ {
		b := 1 + rng.Intn(30)
		replicas := make([][]int, b)
		for i := range replicas {
			replicas[i] = dt.Replicas(rng.Intn(36))
		}
		opt := Optimal(replicas, 9)
		want, _ := maxflow.MinAccesses(replicas, 9)
		if opt.Accesses != want {
			t.Fatalf("Optimal = %d, maxflow = %d (b=%d)", opt.Accesses, want, b)
		}
		// Assignment must respect loads.
		load := make([]int, 9)
		for i, d := range opt.Assignment {
			ok := false
			for _, rd := range replicas[i] {
				if rd == d {
					ok = true
				}
			}
			if !ok {
				t.Fatal("off-replica assignment")
			}
			load[d]++
		}
		for _, l := range load {
			if l > opt.Accesses {
				t.Fatal("assignment exceeds claimed access count")
			}
		}
	}
}

// TestTableII reproduces the structure of paper Table II for the (9,3,1)
// design: DTR(S)=1 for S=1..5, DTR(6)=2; OLR matches except sizes 4 and 5,
// where sequential assignment may need 2 accesses ("1 or 2").
func TestTableII(t *testing.T) {
	dt := dt931(t)
	rng := rand.New(rand.NewSource(17))
	sawTwo := map[int]bool{}
	for trial := 0; trial < 5000; trial++ {
		for s := 1; s <= 6; s++ {
			perm := rng.Perm(36)
			replicas := make([][]int, s)
			for i := range replicas {
				replicas[i] = dt.Replicas(perm[i])
			}
			dtr := Optimal(replicas, 9).Accesses
			olr := SequentialAccesses(replicas, 9)
			switch {
			case s <= 5 && dtr != 1:
				t.Fatalf("DTR(%d) = %d, want 1", s, dtr)
			case s == 6 && dtr > 2:
				t.Fatalf("DTR(6) = %d, want <= 2", dtr)
			}
			switch {
			case s <= 3 && olr != 1:
				t.Fatalf("OLR(%d) = %d, want 1", s, olr)
			case (s == 4 || s == 5) && olr > 2:
				t.Fatalf("OLR(%d) = %d, want 1 or 2", s, olr)
			case s == 6 && olr > 2:
				t.Fatalf("OLR(6) = %d, want 2", olr)
			}
			if olr == 2 && s <= 5 {
				sawTwo[s] = true
			}
		}
	}
	// Table II says OLR(4) and OLR(5) are "1 or 2": both outcomes occur.
	if !sawTwo[4] || !sawTwo[5] {
		t.Errorf("expected OLR in {1,2} to actually hit 2 for sizes 4,5; saw %v", sawTwo)
	}
	if sawTwo[1] || sawTwo[2] || sawTwo[3] {
		t.Errorf("OLR should always be 1 for sizes 1-3; saw %v", sawTwo)
	}
}

func TestUsedFallback(t *testing.T) {
	if UsedFallback(nil, 9) {
		t.Error("empty request never needs fallback")
	}
	// A single block can never need fallback.
	if UsedFallback([][]int{{0, 1, 2}}, 9) {
		t.Error("single block never needs fallback")
	}
}

func TestOnlineIdlePreferred(t *testing.T) {
	o := NewOnline(9, service)
	c1 := o.Submit(0, []int{0, 1, 2})
	if c1.Device != 0 || c1.Start != 0 || c1.Finish != service {
		t.Errorf("first request: %+v", c1)
	}
	// Second request sharing replica 0 must pick an idle device.
	c2 := o.Submit(0, []int{0, 3, 6})
	if c2.Device == 0 {
		t.Error("online picked busy device over idle one")
	}
	if c2.Start != 0 {
		t.Errorf("second request should start immediately, got %g", c2.Start)
	}
}

func TestOnlineEarliestFinish(t *testing.T) {
	o := NewOnline(3, 1.0)
	o.Submit(0, []int{0}) // dev0 busy till 1
	o.Submit(0, []int{1}) // dev1 busy till 1
	o.Submit(0, []int{1}) // dev1 busy till 2
	o.Submit(0, []int{2}) // dev2 busy till 1
	o.Submit(0, []int{2}) // dev2 busy till 2
	o.Submit(0, []int{2}) // dev2 busy till 3
	// Now replicas {1,2}: dev1 free at 2, dev2 free at 3 → choose dev1.
	c := o.Submit(0.5, []int{2, 1})
	if c.Device != 1 {
		t.Errorf("expected earliest-finish device 1, got %d", c.Device)
	}
	if c.Start != 2 || c.Finish != 3 {
		t.Errorf("start/finish = %g/%g, want 2/3", c.Start, c.Finish)
	}
	if got := c.Response(0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("response = %g, want 2.5", got)
	}
}

func TestOnlineFCFSWithinDevice(t *testing.T) {
	o := NewOnline(2, 1.0)
	var last float64
	for i := 0; i < 5; i++ {
		c := o.Submit(0, []int{0, 1})
		if c.Start < last {
			t.Error("service starts must be non-decreasing per submission order")
		}
		last = c.Start
	}
}

func TestSubmitBatchOptimal(t *testing.T) {
	o := NewOnline(9, service)
	// 5 blocks, all first copies on device 0 — batch must remap to 1 access.
	replicas := [][]int{{0, 1, 2}, {0, 3, 6}, {0, 4, 8}, {0, 5, 7}, {0, 2, 1}}
	cs := o.SubmitBatch(0, replicas)
	for i, c := range cs {
		if c.Finish > service+1e-12 {
			t.Errorf("request %d finished at %g, want <= %g (one access)", i, c.Finish, service)
		}
	}
}

func TestSubmitBatchEmptyAndSingle(t *testing.T) {
	o := NewOnline(9, service)
	if cs := o.SubmitBatch(0, nil); cs != nil {
		t.Error("empty batch should return nil")
	}
	cs := o.SubmitBatch(1.5, [][]int{{4, 5, 6}})
	if len(cs) != 1 || cs[0].Device != 4 || cs[0].Start != 1.5 {
		t.Errorf("single batch: %+v", cs)
	}
}

func TestOnlineReset(t *testing.T) {
	o := NewOnline(3, 1.0)
	o.Submit(0, []int{0})
	o.Reset()
	if o.NextFree(0) != 0 {
		t.Error("Reset did not clear device state")
	}
}

func TestNewOnlinePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewOnline(0, 1) },
		func() { NewOnline(3, 0) },
		func() { NewOnline(3, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestTheorem1 verifies the paper's Theorem 1: with no backlog, if
// OLR(k) == DTR(k) then the online retrieval time TOLR(k) <= TDTR(k),
// where the interval approach aligns requests to the next interval start.
func TestTheorem1(t *testing.T) {
	dt := dt931(t)
	rng := rand.New(rand.NewSource(33))
	interval := 0.4 // ms, longer than max batch service here
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(5)
		perm := rng.Perm(36)
		replicas := make([][]int, k)
		arrivals := make([]float64, k)
		for i := range replicas {
			replicas[i] = dt.Replicas(perm[i])
			arrivals[i] = rng.Float64() * interval // within interval [0, T)
		}
		// Online: serve on arrival.
		ol := NewOnline(9, service)
		olAccesses := SequentialAccesses(replicas, 9)
		var tolr float64
		// Sort by arrival for FCFS.
		idx := rng.Perm(k) // submission order will be sorted below
		_ = idx
		order := make([]int, k)
		for i := range order {
			order[i] = i
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if arrivals[order[j]] < arrivals[order[i]] {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		for _, i := range order {
			c := ol.Submit(arrivals[i], replicas[i])
			if c.Finish > tolr {
				tolr = c.Finish
			}
		}
		// Interval-based: align all to interval start T.
		dtSched := NewOnline(9, service)
		cs := dtSched.IntervalBatch(interval, replicas)
		var tdtr float64
		dtrAccesses := 0
		load := map[int]int{}
		for _, c := range cs {
			if c.Finish > tdtr {
				tdtr = c.Finish
			}
			load[c.Device]++
			if load[c.Device] > dtrAccesses {
				dtrAccesses = load[c.Device]
			}
		}
		if olAccesses == dtrAccesses && tolr > tdtr+1e-9 {
			t.Fatalf("Theorem 1 violated: OLR=DTR=%d but TOLR %g > TDTR %g", olAccesses, tolr, tdtr)
		}
	}
}

// Property: Greedy never does worse than the no-remap initial mapping and
// never better than the max-flow optimum.
func TestQuickGreedyBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		b := 1 + rng.Intn(30)
		c := 2 + rng.Intn(2)
		replicas := make([][]int, b)
		initial := make([]int, n)
		for i := range replicas {
			perm := rng.Perm(n)
			replicas[i] = perm[:c]
			initial[perm[0]]++
		}
		maxInitial := 0
		for _, l := range initial {
			if l > maxInitial {
				maxInitial = l
			}
		}
		g := Greedy(replicas, n)
		opt, _ := maxflow.MinAccesses(replicas, n)
		return g.Accesses >= opt && g.Accesses <= maxInitial
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: online completions never overlap on a device and response
// times are >= service time.
func TestQuickOnlineNoOverlap(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		o := NewOnline(n, 1.0)
		type span struct{ s, f float64 }
		byDev := make([][]span, n)
		tNow := 0.0
		for i := 0; i < 50; i++ {
			tNow += rng.Float64()
			c := 1 + rng.Intn(n)
			perm := rng.Perm(n)
			comp := o.Submit(tNow, perm[:c])
			if math.Abs(comp.Finish-comp.Start-1.0) > 1e-9 || comp.Start < tNow {
				return false
			}
			byDev[comp.Device] = append(byDev[comp.Device], span{comp.Start, comp.Finish})
		}
		for _, spans := range byDev {
			for i := 1; i < len(spans); i++ {
				if spans[i].s < spans[i-1].f-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGreedy27(b *testing.B) {
	dt := dt931(b)
	rng := rand.New(rand.NewSource(4))
	replicas := make([][]int, 27)
	for i := range replicas {
		replicas[i] = dt.Replicas(rng.Intn(36))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(replicas, 9)
	}
}

// BenchmarkOptimal27 measures the steady-state engine path: one Scheduler
// reused across decisions, as Online.SubmitBatch/IntervalBatch and the
// experiment harnesses do.
func BenchmarkOptimal27(b *testing.B) {
	dt := dt931(b)
	rng := rand.New(rand.NewSource(4))
	replicas := make([][]int, 27)
	for i := range replicas {
		replicas[i] = dt.Replicas(rng.Intn(36))
	}
	s := NewScheduler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Optimal(replicas, 9)
	}
}

// BenchmarkOptimal27PerCall measures the compatibility wrapper, which pays
// a fresh Scheduler per call.
func BenchmarkOptimal27PerCall(b *testing.B) {
	dt := dt931(b)
	rng := rand.New(rand.NewSource(4))
	replicas := make([][]int, 27)
	for i := range replicas {
		replicas[i] = dt.Replicas(rng.Intn(36))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimal(replicas, 9)
	}
}

func BenchmarkOnlineSubmit(b *testing.B) {
	dt := dt931(b)
	o := NewOnline(9, service)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Submit(float64(i)*0.01, dt.Replicas(i%36))
	}
}
