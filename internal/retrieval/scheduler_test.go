package retrieval

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"flashqos/internal/maxflow"
)

// --- From-scratch reference implementations ---
//
// referenceGreedy is a verbatim copy of the pre-engine Greedy (fresh
// buffers, full maxLoad rescan after every pass). The incremental-maxLoad
// rewrite must reproduce it bit-for-bit.
func referenceGreedy(replicas [][]int, n int) Result {
	b := len(replicas)
	assign := make([]int, b)
	load := make([]int, n)
	for i, devs := range replicas {
		assign[i] = devs[0]
		load[devs[0]]++
	}
	maxLoad := 0
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	for m := lowerBound(b, n); m < maxLoad; {
		moved := false
		for i, devs := range replicas {
			cur := assign[i]
			if load[cur] <= m {
				continue
			}
			best := cur
			for _, d := range devs {
				if load[d] < load[best] {
					best = d
				}
			}
			if best != cur && load[best] < m {
				load[cur]--
				load[best]++
				assign[i] = best
				moved = true
			}
		}
		maxLoad = 0
		for _, l := range load {
			if l > maxLoad {
				maxLoad = l
			}
		}
		if !moved {
			m++
		}
	}
	return Result{Accesses: maxLoad, Assignment: assign}
}

// referenceHeteroFeasible is a copy of the pre-engine feasibleWithCaps
// (fresh graph per probe), used to rebuild the pre-engine MinResponseTime.
func referenceHeteroFeasible(replicas [][]int, caps []int) (maxflow.Assignment, bool) {
	b := len(replicas)
	n := len(caps)
	src, sink := 0, b+n+1
	g := maxflow.NewGraph(b + n + 2)
	type be struct{ block, device, idx int }
	var edges []be
	idx := 0
	for i := range replicas {
		g.AddEdge(src, 1+i, 1)
		idx++
	}
	for i, devs := range replicas {
		for _, d := range devs {
			g.AddEdge(1+i, 1+b+d, 1)
			edges = append(edges, be{i, d, idx})
			idx++
		}
	}
	for d := 0; d < n; d++ {
		g.AddEdge(1+b+d, sink, caps[d])
		idx++
	}
	if g.MaxFlow(src, sink) != b {
		return nil, false
	}
	assign := make(maxflow.Assignment, b)
	for i := range assign {
		assign[i] = -1
	}
	for _, e := range edges {
		if g.Flow(e.idx) > 0 {
			assign[e.block] = e.device
		}
	}
	return assign, true
}

func referenceMinResponseTime(replicas [][]int, svc []float64) HeteroResult {
	n := len(svc)
	b := len(replicas)
	if b == 0 {
		return HeteroResult{}
	}
	cands := make([]float64, 0, b*n)
	for _, s := range svc {
		for k := 1; k <= b; k++ {
			cands = append(cands, float64(k)*s)
		}
	}
	sort.Float64s(cands)
	cands = dedupFloats(cands)
	feasible := func(T float64) (maxflow.Assignment, bool) {
		caps := make([]int, n)
		for d, s := range svc {
			caps[d] = int(T / s * (1 + 1e-12))
		}
		return referenceHeteroFeasible(replicas, caps)
	}
	lo, hi := 0, len(cands)-1
	if _, ok := feasible(cands[hi]); !ok {
		panic("reference: largest makespan infeasible")
	}
	var best maxflow.Assignment
	for lo < hi {
		mid := (lo + hi) / 2
		if a, ok := feasible(cands[mid]); ok {
			best = a
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if best == nil {
		a, ok := feasible(cands[lo])
		if !ok {
			panic("reference: converged on infeasible makespan")
		}
		best = a
	}
	return HeteroResult{Makespan: cands[lo], Assignment: best}
}

func randReplicaSet(r *rand.Rand, maxB, maxN int) ([][]int, int) {
	n := 2 + r.Intn(maxN-1)
	b := 1 + r.Intn(maxB)
	replicas := make([][]int, b)
	for i := range replicas {
		c := 1 + r.Intn(minI(n, 4))
		perm := r.Perm(n)
		replicas[i] = perm[:c]
	}
	return replicas, n
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestGreedyMatchesReference: the incremental-maxLoad greedy must be
// bit-identical to the rescan-per-pass reference — same access count AND
// same assignment — across random instances.
func TestGreedyMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	for trial := 0; trial < 5000; trial++ {
		replicas, n := randReplicaSet(r, 40, 12)
		want := referenceGreedy(replicas, n)
		got := Greedy(replicas, n)
		if got.Accesses != want.Accesses || !reflect.DeepEqual(got.Assignment, want.Assignment) {
			t.Fatalf("trial %d: Greedy = %+v, reference %+v (b=%d n=%d)", trial, got, want, len(replicas), n)
		}
	}
}

// TestSchedulerMatchesPureFunctions reuses one Scheduler across random
// instances and checks every method against its pure per-call counterpart.
func TestSchedulerMatchesPureFunctions(t *testing.T) {
	r := rand.New(rand.NewSource(654))
	s := NewScheduler()
	for trial := 0; trial < 3000; trial++ {
		replicas, n := randReplicaSet(r, 30, 10)
		wantG := Greedy(replicas, n)
		gotG := s.Greedy(replicas, n)
		if gotG.Accesses != wantG.Accesses || !reflect.DeepEqual(append([]int{}, gotG.Assignment...), wantG.Assignment) {
			t.Fatalf("trial %d: Scheduler.Greedy = %+v, want %+v", trial, gotG, wantG)
		}
		wantO := Optimal(replicas, n)
		gotO := s.Optimal(replicas, n)
		if gotO.Accesses != wantO.Accesses || !reflect.DeepEqual(append([]int{}, gotO.Assignment...), wantO.Assignment) {
			t.Fatalf("trial %d: Scheduler.Optimal = %+v, want %+v", trial, gotO, wantO)
		}
	}
}

// TestSchedulerMinResponseTimeMatchesReference: the engine-backed makespan
// scheduler must reproduce the fresh-graph binary search bit-for-bit.
func TestSchedulerMinResponseTimeMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(987))
	s := NewScheduler()
	for trial := 0; trial < 400; trial++ {
		replicas, n := randReplicaSet(r, 15, 8)
		svc := make([]float64, n)
		for d := range svc {
			svc[d] = 0.1 + r.Float64()
			if r.Intn(3) == 0 {
				svc[d] *= 3 // degraded module
			}
		}
		want := referenceMinResponseTime(replicas, svc)
		got := s.MinResponseTime(replicas, svc)
		if got.Makespan != want.Makespan || !reflect.DeepEqual(append([]int{}, got.Assignment...), []int(want.Assignment)) {
			t.Fatalf("trial %d: MinResponseTime = %+v, reference %+v", trial, got, want)
		}
		// The wrapper must agree too.
		pure := MinResponseTime(replicas, svc)
		if pure.Makespan != want.Makespan {
			t.Fatalf("trial %d: wrapper makespan %g, reference %g", trial, pure.Makespan, want.Makespan)
		}
	}
}

// TestSchedulerOptimalAllocs pins the combined greedy+maxflow decision at
// zero steady-state allocations, including instances that take the exact
// fallback.
func TestSchedulerOptimalAllocs(t *testing.T) {
	// Skewed on device 0: lower bound is 1 but M* is 4, so every call must
	// take the exact max-flow fallback (greedy alone cannot certify).
	replicas := [][]int{{0}, {0}, {0}, {0}, {0, 1}, {0, 1}, {1, 2}, {2, 3}}
	s := NewScheduler()
	r := s.Optimal(replicas, 9) // warm up buffers
	if r.Accesses <= lowerBound(len(replicas), 9) {
		t.Fatalf("instance too easy (accesses=%d): fallback path not exercised", r.Accesses)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		s.Optimal(replicas, 9)
	}); allocs != 0 {
		t.Errorf("Scheduler.Optimal allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

// TestOnlineSubmitAllocs pins the single-request online path at zero
// allocations.
func TestOnlineSubmitAllocs(t *testing.T) {
	dt := dt931(t)
	o := NewOnline(9, service)
	i := 0
	if allocs := testing.AllocsPerRun(200, func() {
		o.Submit(float64(i)*0.01, dt.Replicas(i%36))
		i++
	}); allocs != 0 {
		t.Errorf("Online.Submit allocates %.1f objects/op, want 0", allocs)
	}
}

// TestOnlineBatchEngineMatchesWrapper: batches scheduled through the
// per-Online engine must land exactly where the pure-function path puts
// them.
func TestOnlineBatchEngineMatchesWrapper(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	dt := dt931(t)
	a := NewOnline(9, service)
	b := NewOnline(9, service)
	for round := 0; round < 50; round++ {
		k := 2 + r.Intn(8) // k >= 2: single-request batches take the Submit path
		replicas := make([][]int, k)
		for i := range replicas {
			replicas[i] = dt.Replicas(r.Intn(36))
		}
		at := float64(round) * 0.2
		ca := a.SubmitBatch(at, replicas)
		// Reference: identical scheduling decisions computed via the pure
		// Optimal on a second, independent Online instance.
		res := Optimal(replicas, 9)
		cb := make([]Completion, len(replicas))
		for i, d := range res.Assignment {
			start := at
			if nf := b.NextFree(d); nf > start {
				start = nf
			}
			finish := start + service
			b.dev[d].nextFree = finish
			b.dev[d].busy += service
			cb[i] = Completion{Device: d, Start: start, Finish: finish}
		}
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("round %d: engine batch %v, reference %v", round, ca, cb)
		}
	}
}
