// Package retrieval implements the paper's three retrieval strategies for
// replicated buckets (§III-C, §IV-B):
//
//   - Greedy: the design-theoretic retrieval algorithm — map every block to
//     its first copy, then remap blocks off overloaded devices onto less
//     loaded replicas. O(b) per pass; optimal for request sizes within the
//     design guarantee.
//   - Optimal: the paper's combined algorithm — run Greedy, and if its cost
//     exceeds the ⌈b/N⌉ lower bound, solve the max-flow problem for the
//     exact optimum.
//   - Online: the time-based scheduler of §IV-B — retrieve each request as
//     it arrives, FCFS, choosing the replica device with the earliest
//     finish time; simultaneous arrivals are scheduled together with
//     remapping.
package retrieval

import "fmt"

// Result describes a retrieval schedule for one batch of block requests.
type Result struct {
	Accesses   int   // parallel access rounds used (max per-device load)
	Assignment []int // Assignment[i] = device retrieving block i
}

// lowerBound is the parallel I/O optimum ⌈b/n⌉.
func lowerBound(b, n int) int {
	if b <= 0 {
		return 0
	}
	return (b + n - 1) / n
}

// Greedy runs the design-theoretic retrieval algorithm. replicas[i] lists
// the devices storing block i in copy order; n is the device count. Every
// block starts on its first copy; while some device exceeds the current
// target load, blocks are moved to a strictly less loaded replica device.
// When no single move helps, the target is raised. The result is optimal
// whenever a sequence of single-block moves reaches the optimum — in
// particular for request sizes within the design guarantee — but is not
// guaranteed optimal in general (use Optimal for that).
func Greedy(replicas [][]int, n int) Result {
	b := len(replicas)
	assign := make([]int, b)
	acc := greedyRun(replicas, n, assign, make([]int, n), make([]int, b+1))
	return Result{Accesses: acc, Assignment: assign}
}

// greedyRun is the greedy move loop over caller-provided scratch: assign
// (len b) receives the block→device mapping, load (len n, zeroed) the
// per-device block counts, and cnt (len b+1, zeroed) a histogram of loads
// used to maintain the running maximum incrementally — a move shifts one
// block between two devices, so the maximum drops by exactly one precisely
// when the source device was the last one at the old maximum. Returns the
// final maximum load (the access count).
func greedyRun(replicas [][]int, n int, assign, load, cnt []int) int {
	b := len(replicas)
	for i, devs := range replicas {
		if len(devs) == 0 {
			panic(fmt.Sprintf("retrieval: block %d has no replicas", i))
		}
		assign[i] = devs[0]
		load[devs[0]]++
	}
	maxLoad := 0
	for _, l := range load {
		cnt[l]++
		if l > maxLoad {
			maxLoad = l
		}
	}
	for m := lowerBound(b, n); m < maxLoad; {
		moved := false
		for i, devs := range replicas {
			cur := assign[i]
			if load[cur] <= m {
				continue
			}
			// Move block i to its least-loaded replica if strictly better.
			best := cur
			for _, d := range devs {
				if load[d] < load[best] {
					best = d
				}
			}
			if best != cur && load[best] < m {
				cnt[load[cur]]--
				if load[cur] == maxLoad && cnt[maxLoad] == 0 {
					maxLoad--
				}
				load[cur]--
				cnt[load[cur]]++
				cnt[load[best]]--
				load[best]++
				cnt[load[best]]++
				assign[i] = best
				moved = true
			}
		}
		if !moved {
			m++
		}
	}
	return maxLoad
}

// Optimal implements the paper's combined retrieval: design-theoretic
// greedy first (O(b)); if its access count exceeds the ⌈b/N⌉ optimum, fall
// back to the max-flow solver for the exact minimum (O(b³) worst case).
// The returned schedule always uses the true minimal number of accesses.
//
// This is a convenience wrapper that builds a throwaway Scheduler per
// call; hot paths should hold a Scheduler (one per goroutine) and call
// Scheduler.Optimal to avoid the per-call allocations.
func Optimal(replicas [][]int, n int) Result {
	return NewScheduler().Optimal(replicas, n)
}

// UsedFallback reports whether Optimal would have needed the max-flow
// fallback for this request (i.e. Greedy was above the lower bound). Used
// by the ablation experiments.
func UsedFallback(replicas [][]int, n int) bool {
	if len(replicas) == 0 {
		return false
	}
	return Greedy(replicas, n).Accesses > lowerBound(len(replicas), n)
}

// SequentialAccesses returns the access count produced by assigning each
// block, in arrival order, to its currently least-loaded replica device —
// the load shape of the online algorithm when requests arrive one by one
// with no lookahead. Used for the Table II DTR/OLR comparison.
func SequentialAccesses(replicas [][]int, n int) int {
	load := make([]int, n)
	maxLoad := 0
	for _, devs := range replicas {
		best := devs[0]
		for _, d := range devs {
			if load[d] < load[best] {
				best = d
			}
		}
		load[best]++
		if load[best] > maxLoad {
			maxLoad = load[best]
		}
	}
	return maxLoad
}

// Completion describes the scheduled execution of one request by the online
// scheduler.
type Completion struct {
	Device int
	Start  float64 // service start time
	Finish float64 // service completion time
}

// Response returns the request's response time given its arrival time.
func (c Completion) Response(arrival float64) float64 { return c.Finish - arrival }

// Online is the time-based online retrieval scheduler (paper §IV-B):
// requests are served FCFS as they arrive; a request is placed on an idle
// replica device if one exists, otherwise on the replica device with the
// earliest finish time. Requests arriving at exactly the same instant
// should be submitted together via SubmitBatch, which computes an optimal
// joint assignment (with remapping) before scheduling.
type Online struct {
	service float64 // per-block service time (e.g. 0.132507 ms)
	n       int
	dev     []onlineDev // interleaved per-device state: one cache line per submit
	engine  *Scheduler  // reusable batch-assignment engine
}

// onlineDev keeps a device's scheduling state on one cache line so the
// submit hot path (read next-free, write next-free + busy) touches a
// single line per device instead of one per parallel slice.
type onlineDev struct {
	nextFree float64
	busy     float64 // cumulative service time
}

// NewOnline creates an online scheduler for n devices with the given
// per-block service time.
func NewOnline(n int, service float64) *Online {
	if n < 1 || service <= 0 {
		panic(fmt.Sprintf("retrieval: invalid online scheduler (n=%d, service=%g)", n, service))
	}
	return &Online{service: service, n: n, dev: make([]onlineDev, n), engine: NewScheduler()}
}

// Devices returns the device count.
func (o *Online) Devices() int { return o.n }

// Service returns the per-block service time.
func (o *Online) Service() float64 { return o.service }

// NextFree returns the time device d becomes idle.
func (o *Online) NextFree(d int) float64 { return o.dev[d].nextFree }

// Reset clears all device state.
func (o *Online) Reset() {
	for i := range o.dev {
		o.dev[i] = onlineDev{}
	}
}

// BusyTime returns the cumulative service time scheduled on device d.
func (o *Online) BusyTime(d int) float64 { return o.dev[d].busy }

// Utilization returns the mean busy fraction of all devices over [0, until].
func (o *Online) Utilization(until float64) float64 {
	if until <= 0 {
		return 0
	}
	var total float64
	for i := range o.dev {
		total += o.dev[i].busy
	}
	return total / (float64(o.n) * until)
}

// Submit schedules a single request arriving at time t with the given
// replica devices. An idle device is preferred; otherwise the device with
// the earliest finish time is used.
func (o *Online) Submit(t float64, replicas []int) Completion {
	return o.SubmitFor(t, replicas, o.service)
}

// SubmitFor schedules like Submit with an explicit service duration —
// used for operations other than the standard block read (e.g. writes).
func (o *Online) SubmitFor(t float64, replicas []int, service float64) Completion {
	if len(replicas) == 0 {
		panic("retrieval: request with no replicas")
	}
	if service <= 0 {
		panic(fmt.Sprintf("retrieval: non-positive service %g", service))
	}
	best := replicas[0]
	bestStart := o.startTime(t, best)
	for _, d := range replicas[1:] {
		if s := o.startTime(t, d); s < bestStart {
			best, bestStart = d, s
		}
	}
	finish := bestStart + service
	o.dev[best].nextFree = finish
	o.dev[best].busy += service
	return Completion{Device: best, Start: bestStart, Finish: finish}
}

// NextFreeMasked returns the earliest instant any replica device inside
// the availability mask becomes idle (bit d of mask set = device d may
// serve). ok is false when no replica survives the mask. Allocation-free.
func (o *Online) NextFreeMasked(replicas []int, mask uint64) (t float64, ok bool) {
	for _, d := range replicas {
		if mask&(1<<uint(d)) == 0 {
			continue
		}
		if nf := o.dev[d].nextFree; !ok || nf < t {
			t, ok = nf, true
		}
	}
	return t, ok
}

// SubmitMasked schedules a request on the best replica inside the
// availability mask — the degraded-mode twin of Submit, used when the
// health subsystem has removed devices from service. ok is false (and
// nothing is scheduled) when every replica is masked out. Allocation-free.
func (o *Online) SubmitMasked(t float64, replicas []int, mask uint64) (Completion, bool) {
	return o.SubmitMaskedFor(t, replicas, mask, o.service)
}

// SubmitMaskedFor is SubmitMasked with an explicit service duration.
func (o *Online) SubmitMaskedFor(t float64, replicas []int, mask uint64, service float64) (Completion, bool) {
	if service <= 0 {
		panic(fmt.Sprintf("retrieval: non-positive service %g", service))
	}
	best := -1
	var bestStart float64
	for _, d := range replicas {
		if mask&(1<<uint(d)) == 0 {
			continue
		}
		if s := o.startTime(t, d); best < 0 || s < bestStart {
			best, bestStart = d, s
		}
	}
	if best < 0 {
		return Completion{}, false
	}
	finish := bestStart + service
	o.dev[best].nextFree = finish
	o.dev[best].busy += service
	return Completion{Device: best, Start: bestStart, Finish: finish}, true
}

func (o *Online) startTime(t float64, d int) float64 {
	if nf := o.dev[d].nextFree; nf > t {
		return nf
	}
	return t
}

// SubmitBatch schedules requests that arrive at exactly the same time t.
// The joint assignment is computed with the combined optimal retrieval
// (greedy + max-flow remapping), then each request is placed on its
// assigned device behind that device's current queue.
func (o *Online) SubmitBatch(t float64, replicas [][]int) []Completion {
	if len(replicas) == 0 {
		return nil
	}
	return o.SubmitBatchInto(t, replicas, make([]Completion, len(replicas)))
}

// SubmitBatchInto is SubmitBatch writing into caller-provided scratch: out
// is grown as needed and returned re-sliced to len(replicas), so steady-
// state reuse is allocation-free. Schedules and results are identical to
// SubmitBatch.
func (o *Online) SubmitBatchInto(t float64, replicas [][]int, out []Completion) []Completion {
	if cap(out) < len(replicas) {
		out = make([]Completion, len(replicas))
	}
	out = out[:len(replicas)]
	if len(replicas) == 0 {
		return out
	}
	if len(replicas) == 1 {
		out[0] = o.Submit(t, replicas[0])
		return out
	}
	res := o.engine.Optimal(replicas, o.n)
	for i, d := range res.Assignment {
		start := o.startTime(t, d)
		finish := start + o.service
		o.dev[d].nextFree = finish
		o.dev[d].busy += o.service
		out[i] = Completion{Device: d, Start: start, Finish: finish}
	}
	return out
}

// IntervalBatch schedules a batch the way the interval-based design-
// theoretic retrieval does (§IV-B theoretical comparison): requests
// received during interval [t0, t0+T) are aligned to the start of the next
// interval t0+T and retrieved there with the optimal joint assignment.
// Returns the completions relative to the aligned start time.
func (o *Online) IntervalBatch(alignedStart float64, replicas [][]int) []Completion {
	if len(replicas) == 0 {
		return nil
	}
	res := o.engine.Optimal(replicas, o.n)
	out := make([]Completion, len(replicas))
	for i, d := range res.Assignment {
		start := o.startTime(alignedStart, d)
		finish := start + o.service
		o.dev[d].nextFree = finish
		o.dev[d].busy += o.service
		out[i] = Completion{Device: d, Start: start, Finish: finish}
	}
	return out
}
