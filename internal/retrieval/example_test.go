package retrieval_test

import (
	"fmt"

	"flashqos/internal/retrieval"
)

// Design-theoretic retrieval: initial mapping conflicts on device 0 are
// remapped onto alternate replicas.
func ExampleGreedy() {
	replicas := [][]int{{0, 1, 2}, {0, 3, 6}, {0, 4, 8}}
	r := retrieval.Greedy(replicas, 9)
	fmt.Println("accesses:", r.Accesses)
	// Output:
	// accesses: 1
}

// The combined algorithm of §III-C: greedy first, max-flow when greedy is
// above the ⌈b/N⌉ bound.
func ExampleOptimal() {
	replicas := [][]int{{0, 1}, {0, 1}, {0, 1}, {0, 1}}
	r := retrieval.Optimal(replicas, 2)
	fmt.Println("accesses:", r.Accesses) // 4 blocks, 2 devices → 2 each
	// Output:
	// accesses: 2
}

// Online retrieval serves requests as they arrive on the earliest-free
// replica.
func ExampleOnline() {
	o := retrieval.NewOnline(9, 0.132507)
	c1 := o.Submit(0, []int{0, 1, 2})
	c2 := o.Submit(0, []int{0, 3, 6}) // device 0 busy: picks an idle one
	fmt.Println(c1.Device == c2.Device)
	fmt.Printf("%.6f %.6f\n", c1.Response(0), c2.Response(0))
	// Output:
	// false
	// 0.132507 0.132507
}
