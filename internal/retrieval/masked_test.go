package retrieval

import (
	"math/rand"
	"testing"
)

// fullMask9 has bits 0..8 set — all nine devices of the (9,3,1) array alive.
const fullMask9 = uint64(1)<<9 - 1

// TestSubmitMaskedFullMatchesSubmit: with every device alive the masked
// path must schedule exactly like the unmasked one.
func TestSubmitMaskedFullMatchesSubmit(t *testing.T) {
	dt := dt931(t)
	a := NewOnline(9, service)
	b := NewOnline(9, service)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		at := float64(i) * 0.03 * r.Float64()
		replicas := dt.Replicas(r.Intn(36))
		want := a.Submit(at, replicas)
		got, ok := b.SubmitMasked(at, replicas, fullMask9)
		if !ok || got != want {
			t.Fatalf("request %d: SubmitMasked = %+v (ok=%v), Submit = %+v", i, got, ok, want)
		}
	}
}

// TestSubmitMaskedSkipsDeadDevices: a masked-out replica must never serve,
// even when it is the idle one.
func TestSubmitMaskedSkipsDeadDevices(t *testing.T) {
	o := NewOnline(9, service)
	replicas := []int{0, 1, 2}
	mask := fullMask9 &^ (1 << 0) // device 0 failed
	for i := 0; i < 50; i++ {
		c, ok := o.SubmitMasked(0, replicas, mask)
		if !ok {
			t.Fatal("live replicas remain, want ok")
		}
		if c.Device == 0 {
			t.Fatalf("request %d scheduled on masked-out device 0", i)
		}
	}
	// All replicas dead: nothing may be scheduled.
	before := o.NextFree(1)
	if _, ok := o.SubmitMasked(0, replicas, 0); ok {
		t.Error("all replicas masked out, want ok=false")
	}
	if o.NextFree(1) != before {
		t.Error("failed SubmitMasked mutated device state")
	}
}

// TestNextFreeMasked: the earliest idle instant must come from live
// replicas only.
func TestNextFreeMasked(t *testing.T) {
	o := NewOnline(9, service)
	o.Submit(0, []int{1}) // device 1 busy until `service`
	replicas := []int{0, 1, 2}
	if nf, ok := o.NextFreeMasked(replicas, fullMask9); !ok || nf != 0 {
		t.Errorf("full mask: NextFreeMasked = %g, %v; want 0, true", nf, ok)
	}
	mask := uint64(1 << 1) // only busy device 1 alive
	if nf, ok := o.NextFreeMasked(replicas, mask); !ok || nf != service {
		t.Errorf("only device 1 alive: NextFreeMasked = %g, %v; want %g, true", nf, ok, service)
	}
	if _, ok := o.NextFreeMasked(replicas, 0); ok {
		t.Error("empty mask: want ok=false")
	}
}

// TestOnlineSubmitMaskedAllocs pins the degraded hot path at zero
// allocations: reading the availability mask is an inline bit test per
// replica, no filtering buffers (ISSUE 4 satellite).
func TestOnlineSubmitMaskedAllocs(t *testing.T) {
	dt := dt931(t)
	o := NewOnline(9, service)
	mask := fullMask9 &^ (1 << 4) // one device failed
	i := 0
	if allocs := testing.AllocsPerRun(200, func() {
		o.SubmitMasked(float64(i)*0.01, dt.Replicas(i%36), mask)
		i++
	}); allocs != 0 {
		t.Errorf("Online.SubmitMasked allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		o.NextFreeMasked(dt.Replicas(i%36), mask)
		i++
	}); allocs != 0 {
		t.Errorf("Online.NextFreeMasked allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkOnlineSubmitDegraded measures the masked submit path with one
// and two failed devices — the degraded-mode twin of BenchmarkOnlineSubmit
// (run with -benchmem; the CI benchmark smoke records it).
func BenchmarkOnlineSubmitDegraded(b *testing.B) {
	for _, bc := range []struct {
		name string
		mask uint64
	}{
		{"failed=1", fullMask9 &^ (1 << 4)},
		{"failed=2", fullMask9 &^ (1<<4 | 1<<7)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			dt := dt931(b)
			o := NewOnline(9, service)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.SubmitMasked(float64(i)*0.01, dt.Replicas(i%36), bc.mask)
			}
		})
	}
}
