package retrieval

import (
	"fmt"
	"sort"

	"flashqos/internal/maxflow"
)

// Scheduler is a reusable retrieval engine: it owns the scratch buffers of
// the greedy algorithm (assignment, per-device loads, load histogram) and a
// maxflow.Solver for the exact fallback, so repeated scheduling decisions
// perform zero heap allocations in the steady state. Results are
// bit-identical to the pure Greedy/Optimal/MinResponseTime functions, which
// are thin per-call wrappers over a throwaway Scheduler.
//
// A Scheduler is NOT safe for concurrent use, and the Assignment slices it
// returns are backed by internal buffers that the next call overwrites.
// Use one Scheduler per goroutine and copy results that must be retained.
type Scheduler struct {
	solver *maxflow.Solver
	assign []int
	load   []int
	cnt    []int // cnt[l] = number of devices currently at load l
	// heterogeneous (makespan) scratch
	cands []float64
	caps  []int
}

// NewScheduler returns an empty Scheduler; buffers grow to the working
// set's high-water mark over the first few calls and are then reused.
func NewScheduler() *Scheduler {
	return &Scheduler{solver: maxflow.NewSolver(0, 0)}
}

// grow returns buf resized to n, reusing its backing array when possible.
func grow(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// Greedy runs the design-theoretic retrieval algorithm using the
// Scheduler's scratch buffers. Semantics match the package-level Greedy;
// the returned assignment is valid only until the next call.
func (s *Scheduler) Greedy(replicas [][]int, n int) Result {
	b := len(replicas)
	s.assign = grow(s.assign, b)
	s.load = grow(s.load, n)
	s.cnt = grow(s.cnt, b+1)
	for i := range s.load {
		s.load[i] = 0
	}
	for i := range s.cnt {
		s.cnt[i] = 0
	}
	acc := greedyRun(replicas, n, s.assign, s.load, s.cnt)
	return Result{Accesses: acc, Assignment: s.assign}
}

// Optimal runs the paper's combined retrieval (greedy, exact max-flow
// fallback when greedy misses the ⌈b/N⌉ bound) on reused buffers.
// Semantics match the package-level Optimal; the returned assignment is
// valid only until the next call.
func (s *Scheduler) Optimal(replicas [][]int, n int) Result {
	b := len(replicas)
	if b == 0 {
		return Result{}
	}
	g := s.Greedy(replicas, n)
	if g.Accesses == lowerBound(b, n) {
		return g
	}
	m, a := s.solver.Solve(replicas, n)
	return Result{Accesses: m, Assignment: a}
}

// MinAccesses exposes the engine's incremental exact solver directly (no
// greedy first pass). The returned assignment is valid only until the next
// call.
func (s *Scheduler) MinAccesses(replicas [][]int, n int) (int, []int) {
	m, a := s.solver.Solve(replicas, n)
	return m, a
}

// Feasible reports whether the blocks can be retrieved in at most m
// parallel accesses, reusing the engine's network.
func (s *Scheduler) Feasible(replicas [][]int, n, m int) bool {
	_, ok := s.solver.Feasible(replicas, n, m)
	return ok
}

// MinResponseTime computes the minimal-makespan retrieval on heterogeneous
// devices using the Scheduler's scratch and solver. Semantics match the
// package-level MinResponseTime; the returned assignment is valid only
// until the next call.
func (s *Scheduler) MinResponseTime(replicas [][]int, svc []float64) HeteroResult {
	n := len(svc)
	for d, sv := range svc {
		if sv <= 0 {
			panic(fmt.Sprintf("retrieval: device %d has non-positive service time %g", d, sv))
		}
	}
	b := len(replicas)
	if b == 0 {
		return HeteroResult{}
	}
	for i, devs := range replicas {
		if len(devs) == 0 {
			panic(fmt.Sprintf("retrieval: block %d has no replicas", i))
		}
		for _, d := range devs {
			if d < 0 || d >= n {
				panic(fmt.Sprintf("retrieval: block %d names device %d outside [0,%d)", i, d, n))
			}
		}
	}
	// Candidate makespans: k blocks on device d finish at k*svc[d].
	if cap(s.cands) < b*n {
		s.cands = make([]float64, 0, b*n)
	}
	s.cands = s.cands[:0]
	for _, sv := range svc {
		for k := 1; k <= b; k++ {
			s.cands = append(s.cands, float64(k)*sv)
		}
	}
	sort.Float64s(s.cands)
	cands := dedupFloats(s.cands)

	s.caps = grow(s.caps, n)
	feasible := func(T float64) (maxflow.Assignment, bool) {
		for d, sv := range svc {
			s.caps[d] = int(T / sv * (1 + 1e-12)) // tolerate float noise at exact multiples
		}
		return s.solver.FeasibleCaps(replicas, s.caps)
	}
	// Binary search the smallest feasible candidate.
	lo, hi := 0, len(cands)-1
	if _, ok := feasible(cands[hi]); !ok {
		panic("retrieval: even the largest makespan is infeasible") // unreachable: all blocks on one device fits
	}
	var best maxflow.Assignment
	for lo < hi {
		mid := (lo + hi) / 2
		if a, ok := feasible(cands[mid]); ok {
			best = a
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if best == nil {
		a, ok := feasible(cands[lo])
		if !ok {
			panic("retrieval: binary search converged on infeasible makespan")
		}
		best = a
	}
	return HeteroResult{Makespan: cands[lo], Assignment: best}
}
