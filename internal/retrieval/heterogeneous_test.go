package retrieval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeteroEmptyAndSingle(t *testing.T) {
	r := MinResponseTime(nil, []float64{1, 1})
	if r.Makespan != 0 || len(r.Assignment) != 0 {
		t.Error("empty request should have zero makespan")
	}
	r = MinResponseTime([][]int{{1}}, []float64{1, 2})
	if r.Makespan != 2 || r.Assignment[0] != 1 {
		t.Errorf("single block on device 1: %+v", r)
	}
}

func TestHeteroUniformMatchesHomogeneous(t *testing.T) {
	// With equal service times the makespan is Optimal accesses × svc.
	rng := rand.New(rand.NewSource(3))
	svc := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}
	for trial := 0; trial < 200; trial++ {
		b := 1 + rng.Intn(20)
		replicas := make([][]int, b)
		for i := range replicas {
			perm := rng.Perm(9)
			replicas[i] = perm[:3]
		}
		h := MinResponseTime(replicas, svc)
		o := Optimal(replicas, 9)
		if math.Abs(h.Makespan-float64(o.Accesses)) > 1e-9 {
			t.Fatalf("uniform: makespan %g != optimal accesses %d", h.Makespan, o.Accesses)
		}
	}
}

func TestHeteroPrefersFastDevice(t *testing.T) {
	// Device 0 is 4x slower; three blocks replicated on {0,1}: optimal puts
	// at most one block on the slow device (makespan 4 vs 2 if two go fast).
	replicas := [][]int{{0, 1}, {0, 1}, {0, 1}}
	svc := []float64{4, 1}
	r := MinResponseTime(replicas, svc)
	// Best: all three on device 1 → 3; or split 1 slow + 2 fast → max(4,2)=4.
	if r.Makespan != 3 {
		t.Errorf("makespan %g, want 3 (all on the fast device)", r.Makespan)
	}
	for i, d := range r.Assignment {
		if d != 1 {
			t.Errorf("block %d on slow device %d", i, d)
		}
	}
}

func TestHeteroDegradedModule(t *testing.T) {
	// A module degraded by GC (2x service) shifts load to its partners.
	svc := []float64{1, 1, 2}
	replicas := [][]int{{0, 2}, {1, 2}, {2, 0}, {2, 1}}
	r := MinResponseTime(replicas, svc)
	// Feasible at makespan 2: devices 0,1 take two blocks each... blocks:
	// {0,2},{1,2},{2,0},{2,1} → 0 gets blocks 0,2; 1 gets 1,3; dev2 idle →
	// makespan 2.
	if r.Makespan != 2 {
		t.Errorf("makespan %g, want 2", r.Makespan)
	}
}

func TestHeteroPanics(t *testing.T) {
	for _, f := range []func(){
		func() { MinResponseTime([][]int{{0}}, []float64{0}) },
		func() { MinResponseTime([][]int{{}}, []float64{1}) },
		func() { MinResponseTime([][]int{{3}}, []float64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: the result is feasible (per-device load × svc <= makespan,
// assignments respect replica sets) and no candidate makespan strictly
// smaller is feasible (checked by brute force on small instances).
func TestQuickHeteroOptimality(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		svc := make([]float64, n)
		for d := range svc {
			svc[d] = float64(1+rng.Intn(4)) * 0.5
		}
		b := 1 + rng.Intn(8)
		replicas := make([][]int, b)
		for i := range replicas {
			c := 1 + rng.Intn(n)
			perm := rng.Perm(n)
			replicas[i] = perm[:c]
		}
		r := MinResponseTime(replicas, svc)
		// Feasibility.
		load := make([]int, n)
		for i, d := range r.Assignment {
			ok := false
			for _, rd := range replicas[i] {
				if rd == d {
					ok = true
				}
			}
			if !ok {
				return false
			}
			load[d]++
		}
		for d, l := range load {
			if float64(l)*svc[d] > r.Makespan+1e-9 {
				return false
			}
		}
		// Optimality by brute force over all assignments (c^b small).
		best := math.Inf(1)
		var walk func(i int, load []float64)
		walk = func(i int, load []float64) {
			if i == b {
				worst := 0.0
				for _, l := range load {
					if l > worst {
						worst = l
					}
				}
				if worst < best {
					best = worst
				}
				return
			}
			for _, d := range replicas[i] {
				load[d] += svc[d]
				walk(i+1, load)
				load[d] -= svc[d]
			}
		}
		walk(0, make([]float64, n))
		return math.Abs(best-r.Makespan) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHetero27(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	svc := make([]float64, 9)
	for d := range svc {
		svc[d] = 0.1 + 0.05*float64(d%3)
	}
	replicas := make([][]int, 27)
	for i := range replicas {
		perm := rng.Perm(9)
		replicas[i] = perm[:3]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinResponseTime(replicas, svc)
	}
}
