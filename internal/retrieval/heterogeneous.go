package retrieval

import (
	"fmt"
	"sort"

	"flashqos/internal/maxflow"
)

// This file implements the generalized optimal response-time retrieval the
// paper builds on (Altiparmak & Tosun, ICPP 2012 [15] and the accompanying
// technical report [14]): when devices have different service times —
// mixed-generation flash modules, or modules degraded by background work —
// the optimal schedule minimizes the makespan max_d load(d)·svc(d) rather
// than the maximum access count.
//
// Feasibility for a target makespan T is a max-flow instance where device
// d can absorb floor(T / svc[d]) blocks; the optimum is found by searching
// over the O(b·N) candidate makespans k·svc[d].

// HeteroResult is an optimal schedule on heterogeneous devices.
type HeteroResult struct {
	Makespan   float64 // time until the last block is retrieved
	Assignment []int   // Assignment[i] = device retrieving block i
}

// MinResponseTime computes the minimal-makespan retrieval of the given
// blocks when device d takes svc[d] per block. replicas[i] lists the
// devices holding block i. Panics on invalid input (empty replica lists,
// non-positive service times).
func MinResponseTime(replicas [][]int, svc []float64) HeteroResult {
	n := len(svc)
	for d, s := range svc {
		if s <= 0 {
			panic(fmt.Sprintf("retrieval: device %d has non-positive service time %g", d, s))
		}
	}
	b := len(replicas)
	if b == 0 {
		return HeteroResult{}
	}
	for i, devs := range replicas {
		if len(devs) == 0 {
			panic(fmt.Sprintf("retrieval: block %d has no replicas", i))
		}
		for _, d := range devs {
			if d < 0 || d >= n {
				panic(fmt.Sprintf("retrieval: block %d names device %d outside [0,%d)", i, d, n))
			}
		}
	}
	// Candidate makespans: k blocks on device d finish at k*svc[d].
	cands := make([]float64, 0, b*n)
	for _, s := range svc {
		for k := 1; k <= b; k++ {
			cands = append(cands, float64(k)*s)
		}
	}
	sort.Float64s(cands)
	cands = dedupFloats(cands)

	feasible := func(T float64) (maxflow.Assignment, bool) {
		caps := make([]int, n)
		for d, s := range svc {
			caps[d] = int(T / s * (1 + 1e-12)) // tolerate float noise at exact multiples
		}
		return feasibleWithCaps(replicas, caps)
	}
	// Binary search the smallest feasible candidate.
	lo, hi := 0, len(cands)-1
	if _, ok := feasible(cands[hi]); !ok {
		panic("retrieval: even the largest makespan is infeasible") // unreachable: all blocks on one device fits
	}
	var best maxflow.Assignment
	for lo < hi {
		mid := (lo + hi) / 2
		if a, ok := feasible(cands[mid]); ok {
			best = a
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if best == nil {
		a, ok := feasible(cands[lo])
		if !ok {
			panic("retrieval: binary search converged on infeasible makespan")
		}
		best = a
	}
	return HeteroResult{Makespan: cands[lo], Assignment: best}
}

// feasibleWithCaps solves the bipartite feasibility problem with per-device
// capacities.
func feasibleWithCaps(replicas [][]int, caps []int) (maxflow.Assignment, bool) {
	b := len(replicas)
	n := len(caps)
	src, sink := 0, b+n+1
	g := maxflow.NewGraph(b + n + 2)
	type be struct{ block, device, idx int }
	var edges []be
	idx := 0
	for i := range replicas {
		g.AddEdge(src, 1+i, 1)
		idx++
	}
	for i, devs := range replicas {
		for _, d := range devs {
			g.AddEdge(1+i, 1+b+d, 1)
			edges = append(edges, be{i, d, idx})
			idx++
		}
	}
	for d := 0; d < n; d++ {
		g.AddEdge(1+b+d, sink, caps[d])
		idx++
	}
	if g.MaxFlow(src, sink) != b {
		return nil, false
	}
	assign := make(maxflow.Assignment, b)
	for i := range assign {
		assign[i] = -1
	}
	for _, e := range edges {
		if g.Flow(e.idx) > 0 {
			assign[e.block] = e.device
		}
	}
	return assign, true
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
