package retrieval

// This file implements the generalized optimal response-time retrieval the
// paper builds on (Altiparmak & Tosun, ICPP 2012 [15] and the accompanying
// technical report [14]): when devices have different service times —
// mixed-generation flash modules, or modules degraded by background work —
// the optimal schedule minimizes the makespan max_d load(d)·svc(d) rather
// than the maximum access count.
//
// Feasibility for a target makespan T is a max-flow instance where device
// d can absorb floor(T / svc[d]) blocks; the optimum is found by searching
// over the O(b·N) candidate makespans k·svc[d].

// HeteroResult is an optimal schedule on heterogeneous devices.
type HeteroResult struct {
	Makespan   float64 // time until the last block is retrieved
	Assignment []int   // Assignment[i] = device retrieving block i
}

// MinResponseTime computes the minimal-makespan retrieval of the given
// blocks when device d takes svc[d] per block. replicas[i] lists the
// devices holding block i. Panics on invalid input (empty replica lists,
// non-positive service times).
//
// This is a convenience wrapper that builds a throwaway Scheduler per
// call; hot paths should hold a Scheduler and call
// Scheduler.MinResponseTime to reuse the feasibility network across the
// makespan binary search and across requests.
func MinResponseTime(replicas [][]int, svc []float64) HeteroResult {
	return NewScheduler().MinResponseTime(replicas, svc)
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
