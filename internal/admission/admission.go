// Package admission implements the paper's two admission-control
// mechanisms (§III-A, §III-B):
//
//   - Deterministic: at most S = (c-1)M² + cM block requests are admitted
//     per interval; excess requests are rejected or delayed to the next
//     available interval. Every admitted set is guaranteed retrievable in M
//     accesses.
//   - Statistical: request sets larger than S are admitted as long as the
//     estimated probability Q that an interval's requests cannot be
//     retrieved optimally stays below a user threshold ε, where
//     Q = Σ_k (1 - P_k)·R_k with P_k the sampled optimal-retrieval
//     probabilities and R_k = N_k / N_t the observed frequency of
//     request-size-k intervals.
//
// An application-level registry mirrors the worked example in Table I:
// applications declare a per-period request size and are admitted while
// the total stays within S.
package admission

import (
	"fmt"

	"flashqos/internal/sampling"
)

// Policy selects what happens to requests that cannot be admitted.
type Policy int

const (
	// Delay moves excess requests to the next available interval (the
	// paper's choice: "canceling the requests may effect the running state
	// of applications, we choose the delay option").
	Delay Policy = iota
	// Reject drops excess requests.
	Reject
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Delay:
		return "delay"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Decision reports the outcome of admitting one interval's request set.
type Decision struct {
	Requested int // requests presented this interval (incl. carried backlog)
	Accepted  int // requests admitted for retrieval in this interval
	Overflow  int // requests delayed (Policy Delay) or dropped (Policy Reject)
}

// Deterministic is the deterministic admission controller: accept at most
// S requests per interval.
type Deterministic struct {
	S       int
	Policy  Policy
	backlog int // delayed requests carried to the next interval
	// Cumulative accounting.
	totalRequested, totalAccepted, totalOverflow int64
}

// NewDeterministic creates a deterministic controller with limit S.
func NewDeterministic(s int, p Policy) (*Deterministic, error) {
	if s < 1 {
		return nil, fmt.Errorf("admission: S must be >= 1, got %d", s)
	}
	return &Deterministic{S: s, Policy: p}, nil
}

// Backlog returns the number of delayed requests waiting for the next
// interval.
func (d *Deterministic) Backlog() int { return d.backlog }

// AdmitInterval presents k new requests for the current interval. Any
// backlog from earlier intervals is served first (FCFS). The decision
// reports how many requests retrieve now and how many are delayed/dropped.
func (d *Deterministic) AdmitInterval(k int) Decision {
	if k < 0 {
		panic(fmt.Sprintf("admission: negative request count %d", k))
	}
	total := k + d.backlog
	acc := total
	if acc > d.S {
		acc = d.S
	}
	over := total - acc
	if d.Policy == Delay {
		d.backlog = over
	} else {
		d.backlog = 0
	}
	d.totalRequested += int64(k)
	d.totalAccepted += int64(acc)
	d.totalOverflow += int64(over)
	return Decision{Requested: total, Accepted: acc, Overflow: over}
}

// Stats returns cumulative (requested, accepted, overflow) counts. With
// Policy Delay a request may be counted in overflow several times if it
// waits multiple intervals.
func (d *Deterministic) Stats() (requested, accepted, overflow int64) {
	return d.totalRequested, d.totalAccepted, d.totalOverflow
}

// Statistical is the statistical admission controller of §III-B2.
type Statistical struct {
	S       int
	Epsilon float64
	Policy  Policy
	table   *sampling.Table
	nk      []int64 // nk[k] = intervals observed with (admitted) size k
	nt      int64   // total intervals observed
	backlog int
}

// NewStatistical creates a statistical controller. table supplies the
// sampled P_k values; epsilon is the acceptable probability that an
// interval's admitted requests are not optimally retrievable. epsilon = 0
// reduces to deterministic behaviour.
func NewStatistical(s int, epsilon float64, table *sampling.Table, p Policy) (*Statistical, error) {
	if s < 1 {
		return nil, fmt.Errorf("admission: S must be >= 1, got %d", s)
	}
	if epsilon < 0 || epsilon >= 1 {
		return nil, fmt.Errorf("admission: epsilon must be in [0,1), got %g", epsilon)
	}
	if table == nil {
		return nil, fmt.Errorf("admission: nil probability table")
	}
	return &Statistical{S: s, Epsilon: epsilon, Policy: p, table: table, nk: make([]int64, table.MaxK()+1)}, nil
}

// Backlog returns the number of delayed requests waiting.
func (s *Statistical) Backlog() int { return s.backlog }

// Q returns the current estimate of the probability that an interval's
// requests cannot be retrieved optimally: Σ_k (1-P_k)·N_k/N_t.
func (s *Statistical) Q() float64 {
	return s.qWith(-1)
}

// qWith computes Q with a hypothetical extra interval of size k (k < 0
// means none).
func (s *Statistical) qWith(k int) float64 {
	return qOver(s.table, s.nk, s.nt, k)
}

// qOver computes Q over an (nk, nt) interval history with a hypothetical
// extra interval of size k (k < 0 means none). It is the one Q evaluation
// shared by the live controller and published Snapshots, so both produce
// bit-identical floats for the same history — the property the concurrent
// admission path's golden transcripts rest on.
func qOver(table *sampling.Table, nk []int64, nt int64, k int) float64 {
	if k >= 0 {
		nt++
	}
	if nt == 0 {
		return 0
	}
	maxK := table.MaxK()
	idx := k
	if idx > maxK {
		idx = maxK
	}
	q := 0.0
	for i, n := range nk {
		cnt := n
		if i == idx && k >= 0 {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		q += (1 - table.At(i)) * float64(cnt) / float64(nt)
	}
	// A hypothetical size beyond the table still contributes via At's
	// extrapolation when k exceeds MaxK.
	if k > maxK {
		q += (1 - table.At(k)) * 1 / float64(nt)
	}
	return q
}

// idx clamps an interval size to the counter range.
func (s *Statistical) idx(k int) int {
	if k < 0 {
		return -1
	}
	if k > s.table.MaxK() {
		return s.table.MaxK()
	}
	return k
}

// record notes that an interval retrieved k requests.
func (s *Statistical) record(k int) {
	s.nk[s.idx(k)]++
	s.nt++
}

// AdmitInterval presents k new requests. Sizes within S are always
// admitted; a larger size is admitted in full only if doing so keeps
// Q < ε, otherwise S requests are admitted and the rest delayed or
// rejected per policy.
func (s *Statistical) AdmitInterval(k int) Decision {
	if k < 0 {
		panic(fmt.Sprintf("admission: negative request count %d", k))
	}
	total := k + s.backlog
	var acc int
	switch {
	case total <= s.S:
		acc = total
	case s.qWith(total) < s.Epsilon:
		acc = total
	default:
		acc = s.S
	}
	over := total - acc
	if s.Policy == Delay {
		s.backlog = over
	} else {
		s.backlog = 0
	}
	s.record(acc)
	return Decision{Requested: total, Accepted: acc, Overflow: over}
}

// Intervals returns the number of intervals observed so far.
func (s *Statistical) Intervals() int64 { return s.nt }

// WouldAdmit reports whether an interval of size k would be admitted in
// full right now: k within S, or Q (including the hypothetical interval)
// below ε. It does not change controller state; pair with RecordInterval.
func (s *Statistical) WouldAdmit(k int) bool {
	if k <= s.S {
		return true
	}
	return s.qWith(k) < s.Epsilon
}

// RecordInterval notes that an interval completed with k admitted requests.
// Used by online replay, where interval sizes are known only once the
// interval's time window has passed.
func (s *Statistical) RecordInterval(k int) {
	if k < 0 {
		panic(fmt.Sprintf("admission: negative interval size %d", k))
	}
	s.record(k)
}

// SetTable installs a refreshed P_k table (e.g. a higher-precision
// background re-estimate). The interval history is kept; when the new
// table's MaxK differs, counts beyond the new range fold into the last
// bucket, matching the idx clamping that would have recorded them there.
func (s *Statistical) SetTable(table *sampling.Table) error {
	if table == nil {
		return fmt.Errorf("admission: nil probability table")
	}
	nk := make([]int64, table.MaxK()+1)
	for k, n := range s.nk {
		i := k
		if i > table.MaxK() {
			i = table.MaxK()
		}
		nk[i] += n
	}
	s.table = table
	s.nk = nk
	return nil
}

// Snapshot is an immutable copy of a Statistical controller's decision
// state — the interval histogram N_k, the interval count N_t, and the P_k
// table in force — safe to share across goroutines without locks. Its Q
// evaluation runs the same arithmetic as the live controller (qOver), so a
// Snapshot taken after every history mutation makes lock-free readers
// bit-identical to serialized ones.
type Snapshot struct {
	S       int
	Epsilon float64
	table   *sampling.Table
	nk      []int64
	nt      int64
}

// Snapshot copies the controller's current decision state. The caller must
// serialize it with other controller mutations (the controller itself is
// not thread-safe); the returned Snapshot is immutable and freely shared.
func (s *Statistical) Snapshot() *Snapshot {
	nk := make([]int64, len(s.nk))
	copy(nk, s.nk)
	return &Snapshot{S: s.S, Epsilon: s.Epsilon, table: s.table, nk: nk, nt: s.nt}
}

// Q returns the violation-probability estimate frozen in the snapshot.
func (sn *Snapshot) Q() float64 { return qOver(sn.table, sn.nk, sn.nt, -1) }

// QWith returns Q including a hypothetical extra interval of size k.
func (sn *Snapshot) QWith(k int) float64 { return qOver(sn.table, sn.nk, sn.nt, k) }

// WouldAdmit reports whether an interval of size k would be admitted in
// full against the frozen history: k within S, or Q (including the
// hypothetical interval) below ε.
func (sn *Snapshot) WouldAdmit(k int) bool {
	if k <= sn.S {
		return true
	}
	return sn.QWith(k) < sn.Epsilon
}

// Intervals returns the number of intervals frozen in the snapshot.
func (sn *Snapshot) Intervals() int64 { return sn.nt }

// MaxK returns the largest request size with its own P_k entry in the
// snapshot's table. QWith(k) is constant for all k > MaxK (the hypothetical
// interval clamps to the last bucket and extrapolates the last P), so
// WouldAdmit(MaxK+1) decides every size beyond the table at once.
func (sn *Snapshot) MaxK() int { return sn.table.MaxK() }

// --- Application registry (worked example of Table I) ---

// Registry tracks per-application per-period request-size reservations
// against the deterministic limit S.
type Registry struct {
	S     int
	apps  map[string]int
	total int
}

// NewRegistry creates a registry with limit S.
func NewRegistry(s int) (*Registry, error) {
	if s < 1 {
		return nil, fmt.Errorf("admission: S must be >= 1, got %d", s)
	}
	return &Registry{S: s, apps: make(map[string]int)}, nil
}

// Admit registers an application reserving `size` block requests per
// period. It fails if the application already exists, size is invalid, or
// the limit would be exceeded.
func (r *Registry) Admit(name string, size int) error {
	if size < 1 {
		return fmt.Errorf("admission: application %q request size must be >= 1", name)
	}
	if _, ok := r.apps[name]; ok {
		return fmt.Errorf("admission: application %q already admitted", name)
	}
	if r.total+size > r.S {
		return fmt.Errorf("admission: rejecting %q: %d + %d exceeds limit %d", name, r.total, size, r.S)
	}
	r.apps[name] = size
	r.total += size
	return nil
}

// Leave removes an application, releasing its reservation.
func (r *Registry) Leave(name string) {
	if size, ok := r.apps[name]; ok {
		delete(r.apps, name)
		r.total -= size
	}
}

// Total returns the current total reserved request size.
func (r *Registry) Total() int { return r.total }

// Size returns an application's reservation (0 if absent).
func (r *Registry) Size(name string) int { return r.apps[name] }
