package admission

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flashqos/internal/sampling"
)

func TestDeterministicBasic(t *testing.T) {
	d, err := NewDeterministic(5, Delay)
	if err != nil {
		t.Fatal(err)
	}
	dec := d.AdmitInterval(3)
	if dec.Accepted != 3 || dec.Overflow != 0 {
		t.Errorf("under limit: %+v", dec)
	}
	dec = d.AdmitInterval(7)
	if dec.Accepted != 5 || dec.Overflow != 2 {
		t.Errorf("over limit: %+v", dec)
	}
	if d.Backlog() != 2 {
		t.Errorf("backlog = %d, want 2", d.Backlog())
	}
	// Backlog served first next interval.
	dec = d.AdmitInterval(4)
	if dec.Requested != 6 || dec.Accepted != 5 || dec.Overflow != 1 {
		t.Errorf("backlog handling: %+v", dec)
	}
}

func TestDeterministicReject(t *testing.T) {
	d, _ := NewDeterministic(5, Reject)
	dec := d.AdmitInterval(9)
	if dec.Accepted != 5 || dec.Overflow != 4 {
		t.Errorf("reject: %+v", dec)
	}
	if d.Backlog() != 0 {
		t.Error("reject policy must not carry backlog")
	}
	req, acc, over := d.Stats()
	if req != 9 || acc != 5 || over != 4 {
		t.Errorf("stats = %d/%d/%d", req, acc, over)
	}
}

func TestDeterministicValidation(t *testing.T) {
	if _, err := NewDeterministic(0, Delay); err == nil {
		t.Error("S=0 should fail")
	}
	d, _ := NewDeterministic(1, Delay)
	defer func() {
		if recover() == nil {
			t.Error("negative k should panic")
		}
	}()
	d.AdmitInterval(-1)
}

// TestTableIScenario walks the paper's Table I example: S = 5 (M=1 on the
// (9,3,1) design). App1 size 2 at T0, App2 size 2 at T1, App3 size 1 at T2
// fills the system; a fourth application must be rejected.
func TestTableIScenario(t *testing.T) {
	r, err := NewRegistry(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Admit("app1", 2); err != nil {
		t.Fatalf("app1: %v", err)
	}
	if err := r.Admit("app2", 2); err != nil {
		t.Fatalf("app2: %v", err)
	}
	if r.Total() != 4 {
		t.Errorf("total = %d, want 4", r.Total())
	}
	if err := r.Admit("app3", 1); err != nil {
		t.Fatalf("app3: %v", err)
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5 (the limit)", r.Total())
	}
	if err := r.Admit("app4", 1); err == nil {
		t.Error("app4 should be rejected: system full")
	}
	// After an application leaves, capacity frees up.
	r.Leave("app1")
	if r.Total() != 3 {
		t.Errorf("total after leave = %d, want 3", r.Total())
	}
	if err := r.Admit("app4", 2); err != nil {
		t.Errorf("app4 after leave: %v", err)
	}
}

func TestRegistryEdgeCases(t *testing.T) {
	r, _ := NewRegistry(5)
	if err := r.Admit("a", 0); err == nil {
		t.Error("size 0 should fail")
	}
	if err := r.Admit("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Admit("a", 1); err == nil {
		t.Error("duplicate admit should fail")
	}
	if r.Size("a") != 2 || r.Size("zzz") != 0 {
		t.Error("Size lookup wrong")
	}
	r.Leave("nonexistent") // must not panic or corrupt
	if r.Total() != 2 {
		t.Error("Leave of unknown app changed total")
	}
}

func testTable() *sampling.Table {
	// Synthetic P_k resembling Fig 4 for (9,3,1).
	return &sampling.Table{N: 9, P: []float64{1, 1, 1, 1, 1, 1, 0.99, 0.98, 0.95, 0.75, 1, 1, 1}}
}

func TestStatisticalWithinSAlwaysAdmits(t *testing.T) {
	s, err := NewStatistical(5, 0.01, testTable(), Delay)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		dec := s.AdmitInterval(5)
		if dec.Accepted != 5 || dec.Overflow != 0 {
			t.Fatalf("interval %d: %+v", i, dec)
		}
	}
	if s.Q() != 0 {
		t.Errorf("Q = %g, want 0 when all intervals within S", s.Q())
	}
}

func TestStatisticalAdmitsBeyondS(t *testing.T) {
	// With a loose epsilon, sizes 6-8 should be admitted (P_k high).
	s, _ := NewStatistical(5, 0.10, testTable(), Delay)
	dec := s.AdmitInterval(7)
	if dec.Accepted != 7 {
		t.Errorf("epsilon=0.10 should admit size 7: %+v", dec)
	}
}

func TestStatisticalRejectsWhenQTooHigh(t *testing.T) {
	// Epsilon tighter than (1-P9)=0.25 of a size-9 interval: first size-9
	// interval would push Q to 0.25 > ε, so only S admitted.
	s, _ := NewStatistical(5, 0.05, testTable(), Delay)
	dec := s.AdmitInterval(9)
	if dec.Accepted != 5 || dec.Overflow != 4 {
		t.Errorf("should clamp to S: %+v", dec)
	}
	if s.Backlog() != 4 {
		t.Errorf("backlog = %d, want 4", s.Backlog())
	}
}

func TestStatisticalQAveragesOverHistory(t *testing.T) {
	// Many size-5 intervals dilute R_k, letting an occasional size-9
	// through under a moderate epsilon.
	s, _ := NewStatistical(5, 0.01, testTable(), Reject)
	for i := 0; i < 99; i++ {
		s.AdmitInterval(5)
	}
	// Hypothetical size-9 interval: Q = 0.25 * 1/100 = 0.0025 < 0.01.
	dec := s.AdmitInterval(9)
	if dec.Accepted != 9 {
		t.Errorf("diluted history should admit size 9: %+v (Q=%g)", dec, s.Q())
	}
	if s.Intervals() != 100 {
		t.Errorf("intervals = %d, want 100", s.Intervals())
	}
}

func TestStatisticalEpsilonZeroIsDeterministic(t *testing.T) {
	s, _ := NewStatistical(5, 0, testTable(), Reject)
	for _, k := range []int{6, 9, 12} {
		dec := s.AdmitInterval(k)
		if dec.Accepted != 5 {
			t.Errorf("epsilon=0 admitted %d of %d, want 5", dec.Accepted, k)
		}
	}
}

func TestStatisticalValidation(t *testing.T) {
	tb := testTable()
	if _, err := NewStatistical(0, 0.1, tb, Delay); err == nil {
		t.Error("S=0 should fail")
	}
	if _, err := NewStatistical(5, -0.1, tb, Delay); err == nil {
		t.Error("negative epsilon should fail")
	}
	if _, err := NewStatistical(5, 1.0, tb, Delay); err == nil {
		t.Error("epsilon=1 should fail")
	}
	if _, err := NewStatistical(5, 0.1, nil, Delay); err == nil {
		t.Error("nil table should fail")
	}
}

func TestStatisticalSizeBeyondTable(t *testing.T) {
	s, _ := NewStatistical(5, 0.5, testTable(), Reject)
	// Size way beyond the table uses the extrapolated last value (P=1),
	// so Q contribution is 0 and it should be admitted under loose epsilon.
	dec := s.AdmitInterval(50)
	if dec.Accepted != 50 {
		t.Errorf("size beyond table: %+v", dec)
	}
}

func TestPolicyString(t *testing.T) {
	if Delay.String() != "delay" || Reject.String() != "reject" {
		t.Error("Policy strings wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should still format")
	}
}

// Property: deterministic controller never admits more than S and
// conserves requests (accepted + overflow == requested).
func TestQuickDeterministicConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 1 + rng.Intn(20)
		d, _ := NewDeterministic(s, Policy(rng.Intn(2)))
		for i := 0; i < 50; i++ {
			k := rng.Intn(3 * s)
			dec := d.AdmitInterval(k)
			if dec.Accepted > s || dec.Accepted+dec.Overflow != dec.Requested {
				return false
			}
			if dec.Requested < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: statistical controller with epsilon e admits a superset of
// what the deterministic controller admits, and Q stays below max(e, Q of
// the same history clamped at S contributions).
func TestQuickStatisticalDominatesDeterministic(t *testing.T) {
	tb := testTable()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := rng.Float64() * 0.5
		st, _ := NewStatistical(5, e, tb, Reject)
		de, _ := NewDeterministic(5, Reject)
		for i := 0; i < 50; i++ {
			k := rng.Intn(12)
			ds := st.AdmitInterval(k)
			dd := de.AdmitInterval(k)
			if ds.Accepted < dd.Accepted {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotMatchesLiveExactly drives randomized interval histories and
// requires every Snapshot observable — Q, QWith, WouldAdmit, Intervals —
// to equal the live controller's bit-for-bit (==, not within tolerance).
// This is the exactness contract the concurrent engine's golden
// transcripts rest on: both sides must evaluate Q through the shared
// qOver loop over the same counts, so float non-associativity can never
// make a lock-free reader disagree with a serialized one.
func TestSnapshotMatchesLiveExactly(t *testing.T) {
	tb := testTable()
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewStatistical(5, rng.Float64()*0.3, tb, Delay)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 60; step++ {
			s.RecordInterval(rng.Intn(2 * tb.MaxK())) // sizes past MaxK exercise clamping
			sn := s.Snapshot()
			if got, want := sn.Q(), s.Q(); got != want {
				t.Fatalf("seed %d step %d: snapshot Q %v != live Q %v", seed, step, got, want)
			}
			if got, want := sn.Intervals(), s.Intervals(); got != want {
				t.Fatalf("seed %d step %d: snapshot intervals %d != live %d", seed, step, got, want)
			}
			for k := 0; k <= 2*tb.MaxK()+1; k++ {
				if got, want := sn.QWith(k), s.qWith(k); got != want {
					t.Fatalf("seed %d step %d: QWith(%d) snapshot %v != live %v", seed, step, k, got, want)
				}
				if got, want := sn.WouldAdmit(k), s.WouldAdmit(k); got != want {
					t.Fatalf("seed %d step %d: WouldAdmit(%d) snapshot %v != live %v", seed, step, k, got, want)
				}
			}
		}
	}
}

// TestSnapshotIsImmutable checks a snapshot keeps reporting the history it
// froze after the live controller moves on — the property that makes it
// safe to share across goroutines without locks.
func TestSnapshotIsImmutable(t *testing.T) {
	s, _ := NewStatistical(5, 0.1, testTable(), Delay)
	s.RecordInterval(9)
	sn := s.Snapshot()
	q0, n0 := sn.Q(), sn.Intervals()
	for i := 0; i < 50; i++ {
		s.RecordInterval(5) // P_5 = 1: dilutes Q, so the live estimate moves
	}
	if sn.Q() != q0 || sn.Intervals() != n0 {
		t.Errorf("snapshot drifted with live controller: Q %v -> %v, intervals %d -> %d",
			q0, sn.Q(), n0, sn.Intervals())
	}
	if s.Q() == q0 {
		t.Error("live controller should have moved (test is vacuous otherwise)")
	}
}

// TestSetTableFoldsTailCounts installs a smaller refreshed table and
// checks history beyond the new MaxK folds into the last bucket — the
// same clamping record() would have applied had the small table been in
// force all along — and that total interval count is conserved.
func TestSetTableFoldsTailCounts(t *testing.T) {
	s, _ := NewStatistical(5, 0.1, testTable(), Delay) // MaxK 12
	for _, k := range []int{3, 7, 10, 11, 12, 12} {
		s.RecordInterval(k)
	}
	small := &sampling.Table{N: 9, P: []float64{1, 1, 1, 1, 1, 1, 0.99, 0.98, 0.9}} // MaxK 8
	if err := s.SetTable(small); err != nil {
		t.Fatal(err)
	}
	if s.Intervals() != 6 {
		t.Errorf("intervals = %d, want 6 (conserved across SetTable)", s.Intervals())
	}
	if got := s.nk[8]; got != 4 {
		t.Errorf("last bucket holds %d intervals, want 4 (10,11,12,12 clamp to 8)", got)
	}
	if got := s.nk[7]; got != 1 {
		t.Errorf("nk[7] = %d, want 1 (7 fits the new range untouched)", got)
	}
	// Equivalent controller built on the small table from scratch must agree
	// exactly.
	ref, _ := NewStatistical(5, 0.1, small, Delay)
	for _, k := range []int{3, 7, 10, 11, 12, 12} {
		ref.RecordInterval(k)
	}
	if s.Q() != ref.Q() {
		t.Errorf("Q after SetTable %v != Q of fresh controller %v", s.Q(), ref.Q())
	}
	if err := s.SetTable(nil); err == nil {
		t.Error("nil table should fail")
	}
}

// TestSetTableGrowsRange checks a larger refreshed table keeps counts in
// place (no fold needed) and new sizes land in their own buckets.
func TestSetTableGrowsRange(t *testing.T) {
	small := &sampling.Table{N: 9, P: []float64{1, 1, 1, 0.9}} // MaxK 3
	s, _ := NewStatistical(2, 0.1, small, Delay)
	s.RecordInterval(9) // clamps to 3 under the small table
	big := testTable()  // MaxK 12
	if err := s.SetTable(big); err != nil {
		t.Fatal(err)
	}
	if got := s.nk[3]; got != 1 {
		t.Errorf("pre-refresh clamped count moved: nk[3] = %d, want 1", got)
	}
	s.RecordInterval(9)
	if got := s.nk[9]; got != 1 {
		t.Errorf("post-refresh size 9 should use its own bucket: nk[9] = %d", got)
	}
	if s.Intervals() != 2 {
		t.Errorf("intervals = %d, want 2", s.Intervals())
	}
}

func BenchmarkStatisticalAdmit(b *testing.B) {
	s, _ := NewStatistical(5, 0.05, testTable(), Delay)
	for i := 0; i < b.N; i++ {
		s.AdmitInterval(i % 12)
	}
}
