package admission

import (
	"fmt"
	"math"
)

// MClock is a proportional-share I/O scheduler in the style of mClock
// (Gulati et al., OSDI 2010) — the scheduler family that commodity storage
// QoS ships instead of the paper's admission-control approach. Each tenant
// has a reservation (minimum IOPS), a limit (maximum IOPS) and a weight
// (share of the surplus). Requests are tagged with virtual times and the
// scheduler dispatches, at each service opportunity, first any request
// needed to honour reservations, then the lowest weight-tag request whose
// tenant is under its limit.
//
// It is included as a baseline: mClock shapes *rates* but gives no
// per-request latency guarantee, which is exactly the gap the paper's
// design-theoretic admission fills. The comparison experiment
// (experiments.AblationMClock) makes that concrete.
type MClock struct {
	tenants map[string]*mcTenant
	// virtual service capacity, requests per ms
	capacity float64
}

type mcTenant struct {
	name        string
	reservation float64 // requests/ms guaranteed
	limit       float64 // requests/ms cap (0 = unlimited)
	weight      float64

	rTag, lTag, pTag float64 // next reservation/limit/proportional tags
	queue            []mcReq
	served           int64
}

type mcReq struct {
	id      int64
	arrival float64
}

// NewMClock creates a scheduler with the given aggregate service capacity
// in requests per millisecond.
func NewMClock(capacity float64) (*MClock, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("admission: mclock capacity must be positive")
	}
	return &MClock{tenants: make(map[string]*mcTenant), capacity: capacity}, nil
}

// AddTenant registers a tenant. reservation and limit are in requests/ms
// (limit 0 = unlimited); weight > 0.
func (m *MClock) AddTenant(name string, reservation, limit, weight float64) error {
	if _, ok := m.tenants[name]; ok {
		return fmt.Errorf("admission: tenant %q exists", name)
	}
	if reservation < 0 || limit < 0 || weight <= 0 {
		return fmt.Errorf("admission: bad tenant parameters")
	}
	if limit > 0 && limit < reservation {
		return fmt.Errorf("admission: limit below reservation")
	}
	total := reservation
	for _, t := range m.tenants {
		total += t.reservation
	}
	if total > m.capacity {
		return fmt.Errorf("admission: reservations %.3f exceed capacity %.3f", total, m.capacity)
	}
	m.tenants[name] = &mcTenant{name: name, reservation: reservation, limit: limit, weight: weight}
	return nil
}

// Submit enqueues a request from a tenant at the given time.
func (m *MClock) Submit(name string, id int64, at float64) error {
	t, ok := m.tenants[name]
	if !ok {
		return fmt.Errorf("admission: unknown tenant %q", name)
	}
	// Tag assignment (mClock): tags advance by 1/rate per request, reset
	// to now when the tenant was idle.
	if t.reservation > 0 {
		t.rTag = math.Max(t.rTag+1/t.reservation, at)
	}
	if t.limit > 0 {
		t.lTag = math.Max(t.lTag+1/t.limit, at)
	}
	t.pTag = math.Max(t.pTag+1/t.weight, at)
	t.queue = append(t.queue, mcReq{id: id, arrival: at})
	return nil
}

// Dispatch picks the next request to serve at time now, honouring
// reservations first, then proportional share among tenants under their
// limits. Returns the tenant, request id and true; or false when all
// queues are empty or every backlogged tenant is over its limit.
func (m *MClock) Dispatch(now float64) (string, int64, bool) {
	// Phase 1: any tenant behind on its reservation (rTag <= now).
	var bestR *mcTenant
	for _, t := range m.tenants {
		if len(t.queue) == 0 || t.reservation == 0 {
			continue
		}
		due := t.rTag - float64(len(t.queue)-1)/t.reservation // tag of HEAD request
		if due <= now && (bestR == nil || due < bestR.rTag-float64(len(bestR.queue)-1)/bestR.reservation) {
			bestR = t
		}
	}
	if bestR != nil {
		id := bestR.queue[0].id
		return m.serve(bestR), id, true
	}
	// Phase 2: lowest proportional tag among tenants under their limit.
	var bestP *mcTenant
	bestTag := math.Inf(1)
	for _, t := range m.tenants {
		if len(t.queue) == 0 {
			continue
		}
		if t.limit > 0 {
			headLimitTag := t.lTag - float64(len(t.queue)-1)/t.limit
			if headLimitTag > now {
				continue // over limit
			}
		}
		headPTag := t.pTag - float64(len(t.queue)-1)/t.weight
		if headPTag < bestTag {
			bestTag = headPTag
			bestP = t
		}
	}
	if bestP != nil {
		id := bestP.queue[0].id
		return m.serve(bestP), id, true
	}
	return "", 0, false
}

// serve pops the head request of a tenant.
func (m *MClock) serve(t *mcTenant) string {
	t.queue = t.queue[1:]
	t.served++
	return t.name
}

// Served returns the number of requests served for a tenant.
func (m *MClock) Served(name string) int64 {
	if t, ok := m.tenants[name]; ok {
		return t.served
	}
	return 0
}

// Backlogged returns the queued request count for a tenant.
func (m *MClock) Backlogged(name string) int {
	if t, ok := m.tenants[name]; ok {
		return len(t.queue)
	}
	return 0
}
