// Package admission implements per-tenant rate shaping composed in front
// of the paper's S-bound admission. The policy model is mClock's
// (Gulati et al., OSDI '10) — per-tenant reservations, limits, and
// proportional-share weights — but the mechanism is not a dispatch-queue
// simulator: it is an O(1) lock-free gate built for the zero-allocation
// submit hot path.
//
// The refactoring from tag queues to a gate works because the S-bound
// ledger already serializes admission into T-windows of exactly S slots.
// Instead of ordering a backlog by reservation/weight tags, the gate
// partitions each window up front: tenant i owns Reserve_i slots plus a
// weighted share of the surplus S − ΣReserve (apportioned by largest
// remainder so the per-tenant caps sum to exactly S). A submission is
// admitted against its tenant's cap for the window it lands in; because
// Σcaps = S, no tenant can displace another tenant's reserved slice as
// long as all traffic is tenant-tagged. Limits are enforced at arrival
// time: a tenant over Limit arrivals in its arrival window is rejected
// before the ledger is touched, so over-limit traffic consumes no credit.
//
// Policies are swapped atomically: Configure publishes an immutable
// MCSnap behind an atomic.Pointer, so live reconfiguration never pauses
// the engine. A reconfiguration opens fresh per-window accounting (the
// new snapshot's counters start empty); per-tenant gauges are carried
// across reconfiguration by tenant name. When no tenant is active the
// snapshot is nil and the gate costs one atomic load.
//
// Counter storage mirrors the core ledger's chunked design: counters for
// (tenant, window) keys live in 64-entry chunks behind a direct-mapped
// atomic cache, and chunks far behind the window frontier are pruned.
// A straggler touching a pruned window may observe a fresh counter; that
// can only over-admit into a window the global ledger has already
// filled, which the ledger refuses — the gate stays safe, merely not
// exact, for windows far behind the frontier.
package admission

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// TenantSpec declares one tenant's share of a capacity-S admission window.
type TenantSpec struct {
	// Name identifies the tenant. An empty name marks an inactive slot:
	// the slot keeps its index (so wire-negotiated tenant indices stay
	// stable across TENANT DEL) but gates nothing.
	Name string
	// Reserve is the number of admissions per T-window set aside for
	// this tenant. While every submission carries a tenant tag, the
	// reserved slice cannot be consumed by other tenants.
	Reserve int
	// Limit caps the tenant's arrivals per T-window (0 = unlimited).
	// Arrivals beyond the limit are rejected without consuming any
	// ledger credit.
	Limit int
	// Weight sets the tenant's proportional share of the surplus
	// capacity S − ΣReserve. Must be > 0 for active slots.
	Weight float64
}

// Verdict classifies a tenant arrival.
type Verdict uint8

const (
	// OK: under limit; proceed to Acquire and the S-bound ledger.
	OK Verdict = iota
	// Unknown: tenant index out of range, or the slot is inactive.
	Unknown
	// OverLimit: the tenant exceeded Limit arrivals in this arrival
	// window; reject without touching the ledger.
	OverLimit
)

// Counters is a point-in-time read of one tenant's gauges.
type Counters struct {
	Admitted  int64 // submissions admitted by the ledger
	Rejected  int64 // submissions rejected (over-limit or ledger refusal)
	OverLimit int64 // rejections caused by the per-window arrival limit
	Deficit   int64 // reserved acquisitions the global ledger could not honor
}

// tenantStats is the live, atomically-updated form of Counters. Stats
// are owned by the MClock and keyed by tenant name, so they survive
// Configure calls (successive snapshots share the same pointers).
type tenantStats struct {
	admitted  atomic.Int64
	rejected  atomic.Int64
	overLimit atomic.Int64
	deficit   atomic.Int64
}

func (s *tenantStats) read() Counters {
	return Counters{
		Admitted:  s.admitted.Load(),
		Rejected:  s.rejected.Load(),
		OverLimit: s.overLimit.Load(),
		Deficit:   s.deficit.Load(),
	}
}

// MClock is the tenant gate for one admission engine. The zero value is
// not usable; construct with NewMClock.
type MClock struct {
	capacity int
	mu       sync.Mutex // serializes Configure
	snap     atomic.Pointer[MCSnap]
	stats    map[string]*tenantStats
	specs    []TenantSpec // last configured slot table (copy), under mu
}

// NewMClock creates a gate partitioning windows of capacity slots
// (the engine's S). No tenants are active until Configure.
func NewMClock(capacity int) (*MClock, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("admission: capacity %d < 1", capacity)
	}
	return &MClock{capacity: capacity, stats: make(map[string]*tenantStats)}, nil
}

// Capacity reports the window capacity the gate partitions.
func (m *MClock) Capacity() int { return m.capacity }

// Configure validates and atomically publishes a new tenant policy.
// Slot i of specs corresponds to tenant index i+1 (index 0 means
// "no tenant" throughout the system). Inactive slots (empty Name) keep
// their position so existing wire-negotiated indices stay valid. The
// running engine is never paused: in-flight submissions finish against
// whichever snapshot they loaded, and the new snapshot opens fresh
// per-window accounting. Gauges are carried over by tenant name.
func (m *MClock) Configure(specs []TenantSpec) error {
	cp := make([]TenantSpec, len(specs))
	copy(cp, specs)
	seen := make(map[string]struct{}, len(cp))
	sumRes, active := 0, 0
	for i, s := range cp {
		if s.Name == "" {
			if s.Reserve != 0 || s.Limit != 0 || s.Weight != 0 {
				return fmt.Errorf("admission: slot %d: inactive slot must be zero", i)
			}
			continue
		}
		if _, dup := seen[s.Name]; dup {
			return fmt.Errorf("admission: duplicate tenant %q", s.Name)
		}
		seen[s.Name] = struct{}{}
		if s.Reserve < 0 {
			return fmt.Errorf("admission: tenant %q: negative reservation", s.Name)
		}
		if s.Limit < 0 {
			return fmt.Errorf("admission: tenant %q: negative limit", s.Name)
		}
		if s.Limit > 0 && s.Limit < s.Reserve {
			return fmt.Errorf("admission: tenant %q: limit %d < reservation %d", s.Name, s.Limit, s.Reserve)
		}
		if !(s.Weight > 0) {
			return fmt.Errorf("admission: tenant %q: weight must be > 0", s.Name)
		}
		sumRes += s.Reserve
		active++
	}
	if sumRes > m.capacity {
		return fmt.Errorf("admission: reservations total %d > capacity %d", sumRes, m.capacity)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.specs = cp
	if active == 0 {
		m.snap.Store(nil)
		return nil
	}
	snap := &MCSnap{
		specs: cp,
		caps:  partition(cp, m.capacity, sumRes),
		stats: make([]*tenantStats, len(cp)),
	}
	for i, s := range cp {
		if s.Name == "" {
			continue
		}
		st := m.stats[s.Name]
		if st == nil {
			st = &tenantStats{}
			m.stats[s.Name] = st
		}
		snap.stats[i] = st
	}
	snap.arrivals.init(len(cp))
	snap.usage.init(len(cp))
	m.snap.Store(snap)
	return nil
}

// partition splits capacity into per-slot window caps: Reserve_i plus a
// weight-proportional share of the surplus, apportioned by largest
// remainder so that Σcaps == capacity exactly.
func partition(specs []TenantSpec, capacity, sumRes int) []int32 {
	surplus := capacity - sumRes
	var wsum float64
	for _, s := range specs {
		if s.Name != "" {
			wsum += s.Weight
		}
	}
	caps := make([]int32, len(specs))
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, 0, len(specs))
	given := 0
	for i, s := range specs {
		if s.Name == "" {
			continue
		}
		exact := float64(surplus) * s.Weight / wsum
		q := int(exact)
		caps[i] = int32(s.Reserve + q)
		given += q
		rems = append(rems, rem{i, exact - float64(q)})
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; given < surplus; k++ {
		caps[rems[k%len(rems)].i]++
		given++
	}
	return caps
}

// Snapshot returns the current immutable policy, or nil when no tenant
// is active (the gate is off). The hot path loads this once per
// submission and uses it for the submission's whole lifetime.
func (m *MClock) Snapshot() *MCSnap { return m.snap.Load() }

// Specs returns a copy of the last configured slot table.
func (m *MClock) Specs() []TenantSpec {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make([]TenantSpec, len(m.specs))
	copy(cp, m.specs)
	return cp
}

// Counters reads a tenant's gauges by name. Gauges survive Configure.
func (m *MClock) Counters(name string) (Counters, bool) {
	m.mu.Lock()
	st := m.stats[name]
	m.mu.Unlock()
	if st == nil {
		return Counters{}, false
	}
	return st.read(), true
}

// MCSnap is an immutable published policy: per-slot specs, per-window
// caps, and the live counter spaces. All methods are safe for
// concurrent use and allocation-free on the fast path.
//
// Tenant indices are 1-based (slot i holds tenant index i+1); index 0
// and out-of-range or inactive indices answer Unknown/false.
type MCSnap struct {
	specs []TenantSpec
	caps  []int32
	stats []*tenantStats

	// arrivals counts submissions per (tenant, arrival window) for
	// Limit enforcement; usage counts ledger acquisitions per
	// (tenant, scan window) for Reserve/cap enforcement. The spaces are
	// separate because under Delay-policy backlog the scan frontier
	// runs arbitrarily ahead of arrivals — a shared pruned key space
	// would evict live arrival counters.
	arrivals winCounts
	usage    winCounts
}

// Slots reports the slot-table length (the max valid tenant index).
func (s *MCSnap) Slots() int { return len(s.specs) }

// slot maps a 1-based tenant index to a validated slot, or -1.
func (s *MCSnap) slot(t int32) int {
	i := int(t) - 1
	if i < 0 || i >= len(s.specs) || s.specs[i].Name == "" {
		return -1
	}
	return i
}

// Active reports whether tenant index t names an active slot.
func (s *MCSnap) Active(t int32) bool { return s.slot(t) >= 0 }

// Spec returns tenant t's spec.
func (s *MCSnap) Spec(t int32) (TenantSpec, bool) {
	i := s.slot(t)
	if i < 0 {
		return TenantSpec{}, false
	}
	return s.specs[i], true
}

// Cap returns tenant t's per-window cap (Reserve + surplus quota).
func (s *MCSnap) Cap(t int32) int {
	i := s.slot(t)
	if i < 0 {
		return 0
	}
	return int(s.caps[i])
}

// NoteArrival charges one arrival for tenant t in arrival window w and
// enforces Limit. OverLimit bumps the over-limit and rejected gauges
// (the caller rejects without calling NoteRejected again).
func (s *MCSnap) NoteArrival(t int32, w int64) Verdict {
	i := s.slot(t)
	if i < 0 {
		return Unknown
	}
	lim := s.specs[i].Limit
	if lim == 0 {
		return OK
	}
	if s.arrivals.counter(int64(i), w).Add(1) > int32(lim) {
		st := s.stats[i]
		st.overLimit.Add(1)
		st.rejected.Add(1)
		return OverLimit
	}
	return OK
}

// Acquire takes n usage slots for tenant t in scan window w. ok reports
// whether the tenant had n slots free below its per-window cap;
// reserved reports whether the entire acquisition landed inside the
// reserved slice (used for deficit accounting when the global ledger
// then refuses the window).
func (s *MCSnap) Acquire(t int32, w int64, n int32) (reserved, ok bool) {
	i := s.slot(t)
	if i < 0 {
		return false, false
	}
	capi := s.caps[i]
	if n > capi {
		return false, false
	}
	c := s.usage.counter(int64(i), w)
	for {
		cur := c.Load()
		if cur+n > capi {
			return false, false
		}
		if c.CompareAndSwap(cur, cur+n) {
			return cur+n <= int32(s.specs[i].Reserve), true
		}
	}
}

// Release returns n usage slots taken by Acquire for (t, w) — called
// when the global ledger refuses the window or the scheduler moves the
// request to a later window.
func (s *MCSnap) Release(t int32, w int64, n int32) {
	if i := s.slot(t); i >= 0 {
		s.usage.counter(int64(i), w).Add(-n)
	}
}

// NoteAdmitted bumps tenant t's admitted gauge.
func (s *MCSnap) NoteAdmitted(t int32) {
	if i := s.slot(t); i >= 0 {
		s.stats[i].admitted.Add(1)
	}
}

// NoteRejected bumps tenant t's rejected gauge (ledger refusal under a
// Reject policy; over-limit rejections are counted by NoteArrival).
func (s *MCSnap) NoteRejected(t int32) {
	if i := s.slot(t); i >= 0 {
		s.stats[i].rejected.Add(1)
	}
}

// NoteDeficit bumps tenant t's reservation-deficit gauge: an
// acquisition inside the reserved slice that the global ledger could
// not honor (untenanted traffic or degraded capacity consumed the
// window).
func (s *MCSnap) NoteDeficit(t int32) {
	if i := s.slot(t); i >= 0 {
		s.stats[i].deficit.Add(1)
	}
}

// Counter-space internals.

const (
	chunkShift = 6
	chunkLen   = 1 << chunkShift // counters per chunk
	cacheSlots = 64              // direct-mapped chunk cache
	keepChunks = 64              // trailing chunks retained before pruning
)

type counterChunk struct {
	id   int64
	vals [chunkLen]atomic.Int32
}

// winCounts is a sparse (tenant, window) → atomic counter space: a
// mutex-guarded map of 64-counter chunks fronted by a direct-mapped
// atomic cache, pruned by distance from the max-created chunk. The fast
// path is one atomic load and one comparison.
type winCounts struct {
	stride int64 // tenants per window (key = w*stride + slot)
	mu     sync.Mutex
	chunks map[int64]*counterChunk
	cache  [cacheSlots]atomic.Pointer[counterChunk]
	maxID  int64 // under mu
}

func (wc *winCounts) init(stride int) {
	wc.stride = int64(stride)
	wc.chunks = make(map[int64]*counterChunk)
	wc.maxID = -1 << 62
}

func (wc *winCounts) counter(slot, w int64) *atomic.Int32 {
	key := w*wc.stride + slot
	cid := key >> chunkShift
	ci := cid & (cacheSlots - 1)
	if ch := wc.cache[ci].Load(); ch != nil && ch.id == cid {
		return &ch.vals[key&(chunkLen-1)]
	}
	return wc.counterSlow(key, cid, ci)
}

func (wc *winCounts) counterSlow(key, cid, ci int64) *atomic.Int32 {
	wc.mu.Lock()
	ch := wc.chunks[cid]
	if ch == nil {
		ch = &counterChunk{id: cid}
		wc.chunks[cid] = ch
		if cid > wc.maxID {
			wc.maxID = cid
			if len(wc.chunks) > keepChunks {
				floor := cid - keepChunks
				for id := range wc.chunks {
					if id < floor {
						delete(wc.chunks, id)
					}
				}
			}
		}
	}
	wc.cache[ci].Store(ch)
	wc.mu.Unlock()
	return &ch.vals[key&(chunkLen-1)]
}
