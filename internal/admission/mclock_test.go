package admission

import "testing"

func TestMClockValidation(t *testing.T) {
	if _, err := NewMClock(0); err == nil {
		t.Error("zero capacity should fail")
	}
	m, _ := NewMClock(10)
	if err := m.AddTenant("a", 2, 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTenant("a", 1, 0, 1); err == nil {
		t.Error("duplicate tenant should fail")
	}
	if err := m.AddTenant("b", 1, 0.5, 1); err == nil {
		t.Error("limit below reservation should fail")
	}
	if err := m.AddTenant("c", 9, 0, 1); err == nil {
		t.Error("over-reserving should fail")
	}
	if err := m.AddTenant("d", 0, 0, 0); err == nil {
		t.Error("zero weight should fail")
	}
	if err := m.Submit("zzz", 1, 0); err == nil {
		t.Error("unknown tenant should fail")
	}
}

func TestMClockReservationHonored(t *testing.T) {
	// Tenant a reserves 1 req/ms; tenant b has huge weight but no
	// reservation. Under backlog, a must still receive ~its reserved rate.
	m, _ := NewMClock(2)
	m.AddTenant("a", 1, 0, 0.001)
	m.AddTenant("b", 0, 0, 100)
	id := int64(0)
	for i := 0; i < 50; i++ {
		at := float64(i) * 0.5
		m.Submit("a", id, at)
		id++
		m.Submit("b", id, at)
		id++
	}
	// Serve at capacity 2/ms for 25 ms => 50 dispatches.
	for i := 0; i < 50; i++ {
		now := float64(i) * 0.5
		if _, _, ok := m.Dispatch(now); !ok {
			t.Fatalf("dispatch %d failed with backlog", i)
		}
	}
	servedA := m.Served("a")
	// a's reservation is 1/ms over 25ms => ~25 of 50 dispatches.
	if servedA < 20 {
		t.Errorf("reserved tenant served only %d of 50", servedA)
	}
}

func TestMClockWeightsShareSurplus(t *testing.T) {
	// No reservations; weights 3:1 should split service ~3:1.
	m, _ := NewMClock(10)
	m.AddTenant("heavy", 0, 0, 3)
	m.AddTenant("light", 0, 0, 1)
	id := int64(0)
	for i := 0; i < 200; i++ {
		at := float64(i) * 0.01
		m.Submit("heavy", id, at)
		id++
		m.Submit("light", id, at)
		id++
	}
	for i := 0; i < 200; i++ {
		if _, _, ok := m.Dispatch(float64(i) * 0.02); !ok {
			t.Fatal("dispatch failed")
		}
	}
	h, l := m.Served("heavy"), m.Served("light")
	ratio := float64(h) / float64(l)
	if ratio < 2 || ratio > 4 {
		t.Errorf("service ratio %.2f (h=%d l=%d), want ~3", ratio, h, l)
	}
}

func TestMClockLimitCaps(t *testing.T) {
	// Tenant a limited to 1/ms; with only a backlogged, dispatch beyond
	// the limit must refuse.
	m, _ := NewMClock(10)
	m.AddTenant("a", 0, 1, 1)
	for i := int64(0); i < 10; i++ {
		m.Submit("a", i, 0)
	}
	served := 0
	for i := 0; i < 10; i++ {
		if _, _, ok := m.Dispatch(2.0); ok { // 2 ms in: limit allows ~2-3
			served++
		}
	}
	if served > 4 {
		t.Errorf("limit 1/ms allowed %d dispatches by t=2ms", served)
	}
	if m.Backlogged("a") != 10-served {
		t.Errorf("backlog accounting wrong: %d", m.Backlogged("a"))
	}
}

func TestMClockFIFOWithinTenant(t *testing.T) {
	m, _ := NewMClock(5)
	m.AddTenant("a", 0, 0, 1)
	for i := int64(0); i < 5; i++ {
		m.Submit("a", i, 0)
	}
	for want := int64(0); want < 5; want++ {
		_, id, ok := m.Dispatch(100)
		if !ok || id != want {
			t.Fatalf("dispatch order broken: got %d ok=%v, want %d", id, ok, want)
		}
	}
	if _, _, ok := m.Dispatch(100); ok {
		t.Error("empty queues should not dispatch")
	}
	if m.Served("zzz") != 0 || m.Backlogged("zzz") != 0 {
		t.Error("unknown tenant accessors should return 0")
	}
}
