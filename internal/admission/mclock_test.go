package admission

import (
	"strings"
	"sync"
	"testing"
)

func mustGate(t *testing.T, capacity int, specs ...TenantSpec) *MClock {
	t.Helper()
	m, err := NewMClock(capacity)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) > 0 {
		if err := m.Configure(specs); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestMClockValidation(t *testing.T) {
	if _, err := NewMClock(0); err == nil {
		t.Error("zero capacity should fail")
	}
	m, _ := NewMClock(10)
	cases := []struct {
		name  string
		specs []TenantSpec
		want  string
	}{
		{"duplicate", []TenantSpec{{Name: "a", Weight: 1}, {Name: "a", Weight: 1}}, "duplicate"},
		{"negative reserve", []TenantSpec{{Name: "a", Reserve: -1, Weight: 1}}, "negative reservation"},
		{"negative limit", []TenantSpec{{Name: "a", Limit: -1, Weight: 1}}, "negative limit"},
		{"limit below reserve", []TenantSpec{{Name: "a", Reserve: 5, Limit: 3, Weight: 1}}, "limit 3 < reservation 5"},
		{"zero weight", []TenantSpec{{Name: "a", Weight: 0}}, "weight"},
		{"over-reserved", []TenantSpec{{Name: "a", Reserve: 6, Weight: 1}, {Name: "b", Reserve: 5, Weight: 1}}, "> capacity"},
		{"dirty inactive slot", []TenantSpec{{Reserve: 1}}, "inactive slot"},
	}
	for _, c := range cases {
		err := m.Configure(c.specs)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
	// Invalid configurations must not disturb the published policy.
	if m.Snapshot() != nil {
		t.Error("failed Configure published a snapshot")
	}
}

func TestMClockSnapshotNilWhenInactive(t *testing.T) {
	m := mustGate(t, 9)
	if m.Snapshot() != nil {
		t.Fatal("fresh gate should have nil snapshot")
	}
	if err := m.Configure([]TenantSpec{{Name: "a", Reserve: 3, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if m.Snapshot() == nil {
		t.Fatal("configured gate should publish a snapshot")
	}
	// Deactivating every slot turns the gate back off.
	if err := m.Configure([]TenantSpec{{}}); err != nil {
		t.Fatal(err)
	}
	if m.Snapshot() != nil {
		t.Fatal("all-inactive policy should publish nil")
	}
}

func TestMClockCapsPartitionCapacity(t *testing.T) {
	// capacity 10, reserves 2+2, surplus 6 split 3:1 → quotas 5 and 1
	// (largest remainder: 4.5 and 1.5 floor to 4+1, leftover goes to
	// the larger fraction, ties broken by slot order).
	m := mustGate(t, 10,
		TenantSpec{Name: "a", Reserve: 2, Weight: 3},
		TenantSpec{Name: "b", Reserve: 2, Weight: 1},
	)
	s := m.Snapshot()
	if got := s.Cap(1); got != 7 {
		t.Errorf("tenant a cap = %d, want 7", got)
	}
	if got := s.Cap(2); got != 3 {
		t.Errorf("tenant b cap = %d, want 3", got)
	}
	if s.Cap(1)+s.Cap(2) != m.Capacity() {
		t.Errorf("caps %d+%d do not partition capacity %d", s.Cap(1), s.Cap(2), m.Capacity())
	}
}

func TestMClockUnknownTenant(t *testing.T) {
	m := mustGate(t, 9,
		TenantSpec{Name: "a", Weight: 1},
		TenantSpec{}, // deleted slot keeps its index
	)
	s := m.Snapshot()
	for _, tt := range []int32{0, 2, 3, -1} {
		if v := s.NoteArrival(tt, 0); v != Unknown {
			t.Errorf("NoteArrival(%d) = %v, want Unknown", tt, v)
		}
		if _, ok := s.Acquire(tt, 0, 1); ok {
			t.Errorf("Acquire(%d) should fail", tt)
		}
		if s.Active(tt) {
			t.Errorf("Active(%d) should be false", tt)
		}
	}
	if !s.Active(1) {
		t.Error("Active(1) should be true")
	}
}

func TestMClockLimit(t *testing.T) {
	m := mustGate(t, 9, TenantSpec{Name: "a", Limit: 3, Weight: 1})
	s := m.Snapshot()
	for i := 0; i < 3; i++ {
		if v := s.NoteArrival(1, 5); v != OK {
			t.Fatalf("arrival %d: %v, want OK", i, v)
		}
	}
	if v := s.NoteArrival(1, 5); v != OverLimit {
		t.Fatalf("4th arrival in window: %v, want OverLimit", v)
	}
	// A different arrival window has its own budget.
	if v := s.NoteArrival(1, 6); v != OK {
		t.Fatalf("fresh window: %v, want OK", v)
	}
	c, _ := m.Counters("a")
	if c.OverLimit != 1 || c.Rejected != 1 {
		t.Errorf("counters = %+v, want OverLimit=1 Rejected=1", c)
	}
}

func TestMClockAcquireReserveAndCap(t *testing.T) {
	// capacity 9, reserve 3, sole tenant → cap 9 (3 reserved + all surplus).
	m := mustGate(t, 9, TenantSpec{Name: "a", Reserve: 3, Weight: 1})
	s := m.Snapshot()
	for i := 0; i < 9; i++ {
		reserved, ok := s.Acquire(1, 0, 1)
		if !ok {
			t.Fatalf("acquire %d refused below cap", i)
		}
		if wantRes := i < 3; reserved != wantRes {
			t.Errorf("acquire %d: reserved = %v, want %v", i, reserved, wantRes)
		}
	}
	if _, ok := s.Acquire(1, 0, 1); ok {
		t.Fatal("acquire above cap should fail")
	}
	s.Release(1, 0, 1)
	if _, ok := s.Acquire(1, 0, 1); !ok {
		t.Fatal("release should free a slot")
	}
	// Multi-slot (write) acquisition is all-or-nothing.
	if _, ok := s.Acquire(1, 1, 10); ok {
		t.Fatal("n > cap should fail")
	}
	if _, ok := s.Acquire(1, 1, 9); !ok {
		t.Fatal("n == cap in a fresh window should succeed")
	}
	if _, ok := s.Acquire(1, 1, 1); ok {
		t.Fatal("window full after n == cap")
	}
}

func TestMClockTwoTenantsIsolated(t *testing.T) {
	m := mustGate(t, 10,
		TenantSpec{Name: "a", Reserve: 4, Weight: 1},
		TenantSpec{Name: "b", Reserve: 4, Weight: 1},
	)
	s := m.Snapshot()
	// Tenant a exhausts its cap (4 reserved + 1 surplus = 5)...
	for i := 0; i < 5; i++ {
		if _, ok := s.Acquire(1, 0, 1); !ok {
			t.Fatalf("a acquire %d refused", i)
		}
	}
	if _, ok := s.Acquire(1, 0, 1); ok {
		t.Fatal("a should be capped at 5")
	}
	// ...and tenant b's reserved slice is untouched.
	for i := 0; i < 5; i++ {
		if _, ok := s.Acquire(2, 0, 1); !ok {
			t.Fatalf("b acquire %d refused after a filled its cap", i)
		}
	}
}

func TestMClockCountersSurviveConfigure(t *testing.T) {
	m := mustGate(t, 9, TenantSpec{Name: "a", Weight: 1})
	m.Snapshot().NoteAdmitted(1)
	m.Snapshot().NoteDeficit(1)
	if err := m.Configure([]TenantSpec{
		{Name: "a", Reserve: 2, Weight: 2},
		{Name: "b", Weight: 1},
	}); err != nil {
		t.Fatal(err)
	}
	m.Snapshot().NoteAdmitted(1)
	c, ok := m.Counters("a")
	if !ok || c.Admitted != 2 || c.Deficit != 1 {
		t.Errorf("counters after reconfigure = %+v ok=%v, want Admitted=2 Deficit=1", c, ok)
	}
	if c, ok := m.Counters("b"); !ok || c.Admitted != 0 {
		t.Errorf("fresh tenant counters = %+v ok=%v", c, ok)
	}
	if _, ok := m.Counters("zzz"); ok {
		t.Error("unknown tenant should have no counters")
	}
}

func TestMClockManyWindows(t *testing.T) {
	// March the window frontier far past the pruning horizon; every
	// fresh window must start with a full budget.
	m := mustGate(t, 9, TenantSpec{Name: "a", Reserve: 2, Limit: 2, Weight: 1})
	s := m.Snapshot()
	for w := int64(0); w < int64(keepChunks*chunkLen*2); w += 97 {
		if v := s.NoteArrival(1, w); v != OK {
			t.Fatalf("window %d: arrival %v", w, v)
		}
		if _, ok := s.Acquire(1, w, 1); !ok {
			t.Fatalf("window %d: acquire refused", w)
		}
	}
}

func TestMClockConcurrentAcquire(t *testing.T) {
	const cap = 128
	m := mustGate(t, cap, TenantSpec{Name: "a", Reserve: 32, Weight: 1})
	s := m.Snapshot()
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for {
				if _, ok := s.Acquire(1, 7, 1); !ok {
					break
				}
				n++
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != cap {
		t.Fatalf("concurrent acquires took %d slots, want exactly %d", total, cap)
	}
}
