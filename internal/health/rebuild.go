package health

// The background rebuild scheduler. Two kinds of repair work flow through
// one queue and one token bucket:
//
//   - re-protect (device Failed): every bucket with a replica on the dead
//     module is copied from a surviving replica onto another survivor, so
//     the array regains c-way redundancy while degraded;
//   - resilver (device Rebuilding): the replacement module is repopulated
//     bucket by bucket before it rejoins the retrieval mask.
//
// The rate-limit invariant: in any interval of length t the scheduler
// performs at most Burst + RatePerSec·t/1000 bucket copies. Foreground QoS
// traffic therefore loses at most that much device time to repair I/O per
// interval, which keeps the degraded guarantee S' honest — rebuild can be
// made arbitrarily polite by lowering the rate, at the cost of a longer
// repair window (the classic MTTR-vs-interference trade-off).

// RebuildConfig configures the background re-replication scheduler.
type RebuildConfig struct {
	// RatePerSec is the sustained bucket-copy rate; 0 disables rebuild.
	RatePerSec float64
	// Burst is the token-bucket depth (max copies in one Step after an
	// idle stretch). Values < 1 are raised to 1 so progress is possible.
	Burst float64
	// BucketsOf returns the design buckets holding a replica on a device;
	// required when RatePerSec > 0. The slice is read once at enqueue.
	BucketsOf func(dev int) []int
	// Copy, if set, performs one bucket copy (e.g. issues the simulated
	// read+write, or moves real payloads). Called from Step with the
	// transition lock released, so it may perform blocking I/O without
	// stalling detector transitions or mask reads.
	Copy func(dev, bucket int, kind RebuildKind)
}

// RebuildKind distinguishes the two repair flows.
type RebuildKind int

const (
	// Reprotect copies a failed device's buckets onto survivors.
	Reprotect RebuildKind = iota
	// Resilver copies buckets back onto a recovered device.
	Resilver
)

// String implements fmt.Stringer.
func (k RebuildKind) String() string {
	if k == Reprotect {
		return "reprotect"
	}
	return "resilver"
}

type rebuildJob struct {
	dev    int
	bucket int
	kind   RebuildKind
}

// rebuilder is the token-bucket work queue. All methods are called with
// the Monitor's mutex held.
type rebuilder struct {
	cfg    RebuildConfig
	queue  []rebuildJob
	tokens float64
	lastMS float64
	seeded bool
	done   int64
}

func newRebuilder(cfg RebuildConfig) *rebuilder {
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	return &rebuilder{cfg: cfg, tokens: cfg.Burst}
}

// enqueue queues one repair flow for a device.
func (r *rebuilder) enqueue(dev int, kind RebuildKind) {
	if r.cfg.BucketsOf == nil {
		return
	}
	for _, b := range r.cfg.BucketsOf(dev) {
		r.queue = append(r.queue, rebuildJob{dev: dev, bucket: b, kind: kind})
	}
}

// cancel drops all queued work for a device (it failed again mid-resilver,
// or came back without needing repair).
func (r *rebuilder) cancel(dev int) {
	kept := r.queue[:0]
	for _, j := range r.queue {
		if j.dev != dev {
			kept = append(kept, j)
		}
	}
	r.queue = kept
}

// take refills tokens up to nowMS and dequeues whole-token jobs in FIFO
// order, returning them together with the devices whose resilver work
// drained. It does not invoke Copy — the Monitor runs the copies after
// releasing its mutex, so a slow copy (real payload I/O) cannot stall
// transitions.
func (r *rebuilder) take(nowMS float64) (jobs []rebuildJob, drained []int) {
	if !r.seeded {
		r.seeded = true
		r.lastMS = nowMS
	}
	if dt := nowMS - r.lastMS; dt > 0 {
		r.tokens += r.cfg.RatePerSec * dt / 1000
		if r.tokens > r.cfg.Burst {
			r.tokens = r.cfg.Burst
		}
	}
	r.lastMS = nowMS
	for len(r.queue) > 0 && r.tokens >= 1 {
		j := r.queue[0]
		copy(r.queue, r.queue[1:])
		r.queue = r.queue[:len(r.queue)-1]
		r.tokens--
		r.done++
		jobs = append(jobs, j)
		if j.kind == Resilver && !r.hasWork(j.dev) {
			drained = append(drained, j.dev)
		}
	}
	return jobs, drained
}

// hasWork reports whether any queued job remains for a device.
func (r *rebuilder) hasWork(dev int) bool {
	for _, j := range r.queue {
		if j.dev == dev {
			return true
		}
	}
	return false
}
