package health

import (
	"sync"
	"testing"
)

func mustMonitor(t testing.TB, cfg Config) *Monitor {
	t.Helper()
	m, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Devices: 0},
		{Devices: 65},
		{Devices: 9, SuspectAfter: 5, FailAfter: 2},
		{Devices: 9, MaxUnavailable: 9},
	} {
		if _, err := NewMonitor(cfg); err == nil {
			t.Errorf("NewMonitor(%+v) accepted invalid config", cfg)
		}
	}
}

func TestErrorStreakEscalation(t *testing.T) {
	m := mustMonitor(t, Config{Devices: 9, SuspectAfter: 3, FailAfter: 6, MaxUnavailable: 2})
	if got := m.State(4); got != Healthy {
		t.Fatalf("initial state = %v", got)
	}
	for i := 0; i < 2; i++ {
		m.ReportError(4)
	}
	if got := m.State(4); got != Healthy {
		t.Fatalf("after 2 errors state = %v, want healthy", got)
	}
	m.ReportError(4)
	if got := m.State(4); got != Suspect {
		t.Fatalf("after 3 errors state = %v, want suspect", got)
	}
	if !m.Mask().Has(4) {
		t.Fatal("suspect device must stay in the mask")
	}
	for i := 0; i < 3; i++ {
		m.ReportError(4)
	}
	if got := m.State(4); got != Failed {
		t.Fatalf("after 6 errors state = %v, want failed", got)
	}
	mask := m.Mask()
	if mask.Has(4) || mask.Alive != 8 || mask.Unavailable() != 1 {
		t.Fatalf("failed device still visible: %+v", mask)
	}
}

func TestSuccessStreakResetsErrors(t *testing.T) {
	m := mustMonitor(t, Config{Devices: 9, SuspectAfter: 3, FailAfter: 6})
	m.ReportError(1)
	m.ReportError(1)
	m.ReportSuccess(1, 0.1)
	m.ReportError(1)
	m.ReportError(1)
	if got := m.State(1); got != Healthy {
		t.Fatalf("interleaved errors escalated: %v", got)
	}
}

func TestLatencyDetectorSuspectAndRecover(t *testing.T) {
	m := mustMonitor(t, Config{
		Devices: 9, BaselineMS: 0.1, SuspectFactor: 4,
		EWMAAlpha: 0.5, RecoverAfter: 4,
	})
	// Sustained 10x latency spikes must trip the EWMA detector.
	for i := 0; i < 10 && m.State(2) == Healthy; i++ {
		m.ReportSuccess(2, 1.0)
	}
	if got := m.State(2); got != Suspect {
		t.Fatalf("latency spike did not suspect: %v (ewma %g)", got, m.EWMA(2))
	}
	// Back to baseline: needs both the EWMA to decay and a success streak.
	for i := 0; i < 40 && m.State(2) == Suspect; i++ {
		m.ReportSuccess(2, 0.1)
	}
	if got := m.State(2); got != Healthy {
		t.Fatalf("device did not recover from suspect: %v (ewma %g)", got, m.EWMA(2))
	}
}

func TestDetectorRespectsMaxUnavailable(t *testing.T) {
	m := mustMonitor(t, Config{Devices: 9, SuspectAfter: 1, FailAfter: 2, MaxUnavailable: 2})
	if err := m.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Fail(1); err != nil {
		t.Fatal(err)
	}
	// A third auto-failure would strand buckets: the detector must hold the
	// device at Suspect.
	for i := 0; i < 20; i++ {
		m.ReportError(2)
	}
	if got := m.State(2); got != Suspect {
		t.Fatalf("detector crossed MaxUnavailable: device 2 = %v", got)
	}
	// Manual Fail must refuse too.
	if err := m.Fail(2); err == nil {
		t.Fatal("Fail crossed MaxUnavailable")
	}
}

func TestManualFailRecoverWithoutRebuild(t *testing.T) {
	m := mustMonitor(t, Config{Devices: 9, MaxUnavailable: 2})
	if err := m.Fail(7); err != nil {
		t.Fatal(err)
	}
	if err := m.Fail(7); err == nil {
		t.Fatal("double Fail accepted")
	}
	if got := m.State(7); got != Failed {
		t.Fatalf("state = %v", got)
	}
	// Without a rebuilder, Recover promotes straight to Healthy.
	if err := m.Recover(7); err != nil {
		t.Fatal(err)
	}
	if got := m.State(7); got != Healthy {
		t.Fatalf("state after recover = %v", got)
	}
	if !m.Mask().Full() {
		t.Fatal("mask not restored")
	}
	if err := m.Recover(7); err == nil {
		t.Fatal("Recover of healthy device accepted")
	}
}

func TestRecoverClearsSuspect(t *testing.T) {
	m := mustMonitor(t, Config{Devices: 9, SuspectAfter: 1})
	m.ReportError(3)
	if got := m.State(3); got != Suspect {
		t.Fatalf("state = %v", got)
	}
	if err := m.Recover(3); err != nil {
		t.Fatal(err)
	}
	if got := m.State(3); got != Healthy {
		t.Fatalf("state = %v", got)
	}
}

// buckets931 mimics the (9,3,1) design: 12 base blocks × 3 rotations; each
// device appears in 12 buckets. The exact shape is irrelevant to the
// rebuilder — only the per-device bucket count matters.
func bucketsOf12(dev int) []int {
	out := make([]int, 12)
	for i := range out {
		out[i] = dev*12 + i
	}
	return out
}

func TestRebuildFlowAndRateCap(t *testing.T) {
	now := 0.0
	var copies []RebuildKind
	m := mustMonitor(t, Config{
		Devices: 9, MaxUnavailable: 2,
		NowMS: func() float64 { return now },
		Rebuild: RebuildConfig{
			RatePerSec: 1000, // 1 bucket per ms
			Burst:      2,
			BucketsOf:  bucketsOf12,
			Copy:       func(dev, bucket int, kind RebuildKind) { copies = append(copies, kind) },
		},
	})
	if err := m.Fail(5); err != nil {
		t.Fatal(err)
	}
	if pending, _ := m.RebuildProgress(); pending != 12 {
		t.Fatalf("re-protect queue = %d, want 12", pending)
	}
	// Rate cap: at t=0 only the burst is available.
	if n := m.Step(); n != 2 {
		t.Fatalf("burst step did %d copies, want 2", n)
	}
	if n := m.Step(); n != 0 {
		t.Fatalf("no-time step did %d copies, want 0", n)
	}
	// Fine-grained ticking realizes exactly the rate: 1 copy per ms.
	for i := 0; i < 3; i++ {
		now++
		if n := m.Step(); n != 1 {
			t.Fatalf("1ms step did %d copies, want 1", n)
		}
	}
	// A long idle stretch refills at most the burst — the invariant that
	// rebuild I/O can never dump more than Burst copies into one step.
	now = 1e6
	if n := m.Step(); n != 2 {
		t.Fatalf("post-idle step did %d copies, want burst=2", n)
	}
	for i := 0; i < 10; i++ {
		now += 5
		m.Step()
	}
	if pending, done := m.RebuildProgress(); pending != 0 || done != 12 {
		t.Fatalf("re-protect incomplete: pending=%d done=%d", pending, done)
	}
	for _, k := range copies {
		if k != Reprotect {
			t.Fatalf("unexpected copy kind %v during failed phase", k)
		}
	}
	if got := m.State(5); got != Failed {
		t.Fatalf("re-protect changed device state: %v", got)
	}

	// RECOVER starts the resilver; the device rejoins the mask only when
	// the copy-back queue drains.
	copies = copies[:0]
	if err := m.Recover(5); err != nil {
		t.Fatal(err)
	}
	if got := m.State(5); got != Rebuilding {
		t.Fatalf("state after recover = %v", got)
	}
	if m.Mask().Has(5) {
		t.Fatal("rebuilding device must stay out of the mask")
	}
	for i := 0; i < 20 && m.State(5) == Rebuilding; i++ {
		now += 5
		m.Step()
	}
	if got := m.State(5); got != Healthy {
		t.Fatalf("resilver did not promote: %v", got)
	}
	if !m.Mask().Full() {
		t.Fatal("mask not restored after resilver")
	}
	for _, k := range copies {
		if k != Resilver {
			t.Fatalf("unexpected copy kind %v during rebuilding phase", k)
		}
	}
}

// TestRebuildCopyRunsUnlocked pins the Step contract: the copy callback
// runs with the transition lock released, so it may feed the monitor —
// progress queries, detector reports — without self-deadlocking. The real
// data path's rebuild callback does exactly that (its store puts report
// health outcomes), and used to stall every transition for the duration
// of a bucket copy when Step held the lock across it.
func TestRebuildCopyRunsUnlocked(t *testing.T) {
	now := 0.0
	var m *Monitor
	m = mustMonitor(t, Config{
		Devices: 4, MaxUnavailable: 2,
		NowMS: func() float64 { return now },
		Rebuild: RebuildConfig{
			RatePerSec: 1000,
			Burst:      4,
			BucketsOf:  func(dev int) []int { return []int{0, 1} },
			Copy: func(dev, bucket int, kind RebuildKind) {
				// Both take the transition lock; with Step still holding it
				// this deadlocks.
				m.RebuildProgress()
				m.ReportSuccess(0, 1.0)
			},
		},
	})
	if err := m.Fail(3); err != nil {
		t.Fatal(err)
	}
	if n := m.Step(); n != 2 {
		t.Fatalf("step performed %d copies, want 2", n)
	}
	// The resilver path promotes only after the (unlocked) copies ran.
	if err := m.Recover(3); err != nil {
		t.Fatal(err)
	}
	now += 10
	if n := m.Step(); n != 2 {
		t.Fatalf("resilver step performed %d copies, want 2", n)
	}
	if got := m.State(3); got != Healthy {
		t.Fatalf("state after resilver = %v, want healthy", got)
	}
}

func TestFailDuringResilverCancelsWork(t *testing.T) {
	now := 0.0
	m := mustMonitor(t, Config{
		Devices: 9, MaxUnavailable: 2,
		NowMS:   func() float64 { return now },
		Rebuild: RebuildConfig{RatePerSec: 100, Burst: 1, BucketsOf: bucketsOf12},
	})
	if err := m.Fail(3); err != nil {
		t.Fatal(err)
	}
	if err := m.Recover(3); err != nil {
		t.Fatal(err)
	}
	if err := m.Fail(3); err != nil { // dies again mid-resilver
		t.Fatal(err)
	}
	// The queue holds only the fresh re-protect pass, not stale resilver jobs.
	if pending, _ := m.RebuildProgress(); pending != 12 {
		t.Fatalf("pending = %d, want 12", pending)
	}
	if got := m.State(3); got != Failed {
		t.Fatalf("state = %v", got)
	}
}

func TestMaskChangeCallbackAndTransitions(t *testing.T) {
	var maskChanges int
	var seq []State
	m := mustMonitor(t, Config{
		Devices: 9, MaxUnavailable: 2,
		OnMaskChange: func(*Mask) { maskChanges++ },
		OnTransition: func(dev int, from, to State) { seq = append(seq, to) },
	})
	m.ReportError(0)
	m.ReportError(0)
	m.ReportError(0) // → Suspect (no mask change)
	if err := m.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Recover(0); err != nil {
		t.Fatal(err)
	}
	if maskChanges != 2 {
		t.Fatalf("mask changes = %d, want 2 (fail + recover)", maskChanges)
	}
	want := []State{Suspect, Failed, Healthy}
	if len(seq) != len(want) {
		t.Fatalf("transitions = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", seq, want)
		}
	}
	if m.Transitions() != 3 {
		t.Fatalf("Transitions() = %d, want 3", m.Transitions())
	}
}

func TestMaskReadZeroAllocs(t *testing.T) {
	m := mustMonitor(t, Config{Devices: 9})
	if err := m.Fail(2); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		mask := m.Mask()
		if mask.Has(2) || !mask.Has(3) {
			t.Fatal("mask wrong")
		}
	})
	if allocs != 0 {
		t.Fatalf("Mask read allocates %v per op, want 0", allocs)
	}
}

// TestConcurrentReportsRace hammers the detectors from many goroutines
// while an admin goroutine fails and recovers devices; run with -race.
func TestConcurrentReportsRace(t *testing.T) {
	m := mustMonitor(t, Config{
		Devices: 9, SuspectAfter: 2, FailAfter: 4, MaxUnavailable: 2,
		BaselineMS: 0.1,
		Rebuild:    RebuildConfig{RatePerSec: 1e6, Burst: 64, BucketsOf: bucketsOf12},
	})
	stop := make(chan struct{})
	var reporters sync.WaitGroup
	for g := 0; g < 8; g++ {
		reporters.Add(1)
		go func(g int) {
			defer reporters.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d := (g + i) % 9
				if i%7 == 0 {
					m.ReportError(d)
				} else {
					m.ReportSuccess(d, 0.1)
				}
				_ = m.Mask().Alive
			}
		}(g)
	}
	var admins sync.WaitGroup
	admins.Add(2)
	go func() {
		defer admins.Done()
		for i := 0; i < 200; i++ {
			if err := m.Fail(i % 9); err == nil {
				m.Step()
				m.Recover(i % 9)
			}
			m.Step()
		}
	}()
	go func() {
		defer admins.Done()
		for i := 0; i < 500; i++ {
			m.Step()
			m.RebuildProgress()
		}
	}()
	admins.Wait()
	close(stop)
	reporters.Wait()

	// Drain outstanding resilvers so the array converges.
	for i := 0; i < 1000; i++ {
		if p, _ := m.RebuildProgress(); p == 0 {
			break
		}
		m.Step()
	}
	mask := m.Mask()
	if mask.N != 9 || mask.Alive > 9 || mask.Unavailable() > 2 {
		t.Fatalf("mask out of bounds: %+v", mask)
	}
	// The snapshot must agree with the per-device states.
	for d := 0; d < 9; d++ {
		if m.State(d).available() != mask.Has(d) {
			t.Fatalf("mask bit %d disagrees with state %v", d, m.State(d))
		}
	}
}
