// Package health is the live fault-tolerance subsystem: it watches every
// flash module for errors and latency anomalies, runs a per-device state
// machine (Healthy → Suspect → Failed → Rebuilding → Healthy), and
// publishes the set of devices currently safe to read from as an
// atomically-swapped mask snapshot.
//
// The paper's replication guarantee (§II-B1) is exactly a fault-time
// property: an (N, c, 1) design keeps every bucket retrievable through any
// c-1 module losses. This package is the runtime half of that claim — it
// decides *when* a module has been lost, tells admission control so the
// guarantee degrades predictably (core recomputes S' for the surviving
// replica count), and drives a token-bucket-limited background rebuild so
// repair I/O cannot starve foreground QoS traffic.
//
// # Concurrency model
//
// The retrieval hot path must stay lock-free and zero-alloc, so readers
// never take a lock: Mask() is a single atomic pointer load of an immutable
// snapshot. Detector inputs (ReportSuccess/ReportError) touch only
// per-device atomics — an EWMA CAS and two streak counters — and only when
// a detector threshold actually trips do they fall into the serialized
// transition path. State transitions, mask rebuilds, and the rebuild queue
// are serialized by one mutex; the new mask is published with an atomic
// pointer swap, so a reader sees either the old or the new snapshot, never
// a partial one.
package health

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// State is a device's position in the failure/repair lifecycle.
type State int32

const (
	// Healthy devices serve reads and writes normally.
	Healthy State = iota
	// Suspect devices have tripped a detector (error streak or EWMA
	// latency) but still serve traffic; more errors escalate to Failed,
	// a success streak de-escalates to Healthy.
	Suspect
	// Failed devices are removed from the retrieval mask; admission
	// degrades to S' and the rebuilder re-replicates their buckets onto
	// survivors.
	Failed
	// Rebuilding devices have been replaced (Recover) and are being
	// resilvered by the rebuilder; they rejoin the mask when the copy-back
	// queue drains.
	Rebuilding
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Failed:
		return "failed"
	case Rebuilding:
		return "rebuilding"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// available reports whether a device in this state may serve reads.
func (s State) available() bool { return s == Healthy || s == Suspect }

// Mask is an immutable snapshot of which devices may serve reads. Bit d of
// Bits is set iff device d is Healthy or Suspect. Snapshots are shared by
// pointer and must never be mutated.
type Mask struct {
	Bits  uint64
	Alive int // population count of Bits
	N     int // total devices
}

// Has reports whether device d may serve reads.
func (m *Mask) Has(d int) bool { return m.Bits&(1<<uint(d)) != 0 }

// Unavailable returns the number of devices out of the mask
// (Failed + Rebuilding).
func (m *Mask) Unavailable() int { return m.N - m.Alive }

// Full reports whether every device is available.
func (m *Mask) Full() bool { return m.Alive == m.N }

// Config configures a Monitor. The zero value of every optional field
// selects the documented default.
type Config struct {
	// Devices is the number of flash modules (required, 1..64 — the mask
	// is a single machine word so hot-path reads stay one atomic load).
	Devices int

	// SuspectAfter is the consecutive-error streak that moves a Healthy
	// device to Suspect. Default 3.
	SuspectAfter int
	// FailAfter is the consecutive-error streak that moves a Suspect
	// device to Failed. Must be >= SuspectAfter. Default 10.
	FailAfter int
	// RecoverAfter is the consecutive-success streak that moves a Suspect
	// device back to Healthy (provided its EWMA is below the latency
	// threshold). Default 16.
	RecoverAfter int

	// BaselineMS is the expected per-operation latency; 0 disables the
	// latency detector (error streaks still work).
	BaselineMS float64
	// SuspectFactor trips the latency detector when the EWMA exceeds
	// SuspectFactor × BaselineMS. Default 4.
	SuspectFactor float64
	// EWMAAlpha is the smoothing factor of the latency EWMA. Default 0.25.
	EWMAAlpha float64

	// MaxUnavailable caps how many devices may leave the mask at once —
	// both the detector and manual Fail refuse to cross it, because c-1 is
	// where the design's retrievability guarantee ends and data loss
	// begins. 0 means Devices-1 (only availability of the mask itself is
	// protected). Core attaches c-1 here.
	MaxUnavailable int

	// Rebuild configures the background re-replication scheduler; the
	// zero value disables it (Recover promotes straight to Healthy).
	Rebuild RebuildConfig

	// OnMaskChange, if set, is called (under the transition lock, new
	// snapshot already published) whenever the availability mask changes.
	OnMaskChange func(m *Mask)
	// OnTransition, if set, is called (under the transition lock) for
	// every state transition.
	OnTransition func(dev int, from, to State)

	// NowMS supplies the rebuild clock in milliseconds; nil uses the wall
	// clock. Tests inject a manual clock to verify the rate cap exactly.
	NowMS func() float64
}

func (c *Config) applyDefaults() {
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 3
	}
	if c.FailAfter == 0 {
		c.FailAfter = 10
	}
	if c.RecoverAfter == 0 {
		c.RecoverAfter = 16
	}
	if c.SuspectFactor == 0 {
		c.SuspectFactor = 4
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.25
	}
	if c.MaxUnavailable == 0 {
		c.MaxUnavailable = c.Devices - 1
	}
	if c.NowMS == nil {
		start := time.Now()
		c.NowMS = func() float64 {
			return float64(time.Since(start)) / float64(time.Millisecond)
		}
	}
}

// device is the per-module detector state. All fields are atomics so the
// report hot path never locks.
type device struct {
	state     atomic.Int32
	consecErr atomic.Int32
	consecOK  atomic.Int32
	ewma      atomic.Uint64 // float64 bits; 0 = no samples yet
}

// Monitor runs the per-device state machines and publishes the mask.
type Monitor struct {
	cfg  Config
	devs []device
	mask atomic.Pointer[Mask]

	mu  sync.Mutex // serializes transitions, mask rebuilds, rebuild queue
	reb *rebuilder // nil when rebuild is disabled

	transitions atomic.Int64
}

// NewMonitor creates a monitor with every device Healthy.
func NewMonitor(cfg Config) (*Monitor, error) {
	if cfg.Devices < 1 || cfg.Devices > 64 {
		return nil, fmt.Errorf("health: devices must be in [1,64], got %d", cfg.Devices)
	}
	cfg.applyDefaults()
	if cfg.FailAfter < cfg.SuspectAfter {
		return nil, fmt.Errorf("health: FailAfter %d < SuspectAfter %d", cfg.FailAfter, cfg.SuspectAfter)
	}
	if cfg.MaxUnavailable < 1 || cfg.MaxUnavailable >= cfg.Devices {
		return nil, fmt.Errorf("health: MaxUnavailable %d out of range [1,%d)", cfg.MaxUnavailable, cfg.Devices)
	}
	m := &Monitor{cfg: cfg, devs: make([]device, cfg.Devices)}
	if cfg.Rebuild.RatePerSec > 0 {
		m.reb = newRebuilder(cfg.Rebuild)
	}
	m.mask.Store(buildMask(m.devs))
	return m, nil
}

// buildMask computes a fresh snapshot from the device states.
func buildMask(devs []device) *Mask {
	m := &Mask{N: len(devs)}
	for d := range devs {
		if State(devs[d].state.Load()).available() {
			m.Bits |= 1 << uint(d)
			m.Alive++
		}
	}
	return m
}

// Mask returns the current availability snapshot. One atomic load; safe
// and allocation-free on any goroutine.
func (m *Monitor) Mask() *Mask { return m.mask.Load() }

// Devices returns the number of monitored devices.
func (m *Monitor) Devices() int { return m.cfg.Devices }

// State returns device d's current state.
func (m *Monitor) State(d int) State { return State(m.devs[d].state.Load()) }

// EWMA returns device d's smoothed latency estimate (0 before any sample).
func (m *Monitor) EWMA(d int) float64 {
	return math.Float64frombits(m.devs[d].ewma.Load())
}

// Transitions returns the total number of state transitions so far.
func (m *Monitor) Transitions() int64 { return m.transitions.Load() }

// ReportSuccess feeds one successful operation on device d with its
// observed latency. Lock-free except when a detector threshold trips.
func (m *Monitor) ReportSuccess(d int, latencyMS float64) {
	dev := &m.devs[d]
	dev.consecErr.Store(0)
	oks := dev.consecOK.Add(1)
	ew := m.updateEWMA(dev, latencyMS)

	switch State(dev.state.Load()) {
	case Healthy:
		if m.latencySuspect(ew) {
			m.transition(d, Healthy, Suspect)
		}
	case Suspect:
		if int(oks) >= m.cfg.RecoverAfter && !m.latencySuspect(ew) {
			m.transition(d, Suspect, Healthy)
		}
	}
}

// ReportError feeds one failed operation on device d. Lock-free except
// when a detector threshold trips.
func (m *Monitor) ReportError(d int) {
	dev := &m.devs[d]
	dev.consecOK.Store(0)
	errs := int(dev.consecErr.Add(1))

	switch State(dev.state.Load()) {
	case Healthy:
		if errs >= m.cfg.SuspectAfter {
			m.transition(d, Healthy, Suspect)
		}
	case Suspect:
		if errs >= m.cfg.FailAfter {
			m.transition(d, Suspect, Failed)
		}
	}
}

// updateEWMA folds one latency sample into the device EWMA with a CAS loop
// and returns the new value. The first sample seeds the average.
func (m *Monitor) updateEWMA(dev *device, x float64) float64 {
	for {
		old := dev.ewma.Load()
		prev := math.Float64frombits(old)
		next := x
		if old != 0 {
			next = m.cfg.EWMAAlpha*x + (1-m.cfg.EWMAAlpha)*prev
		}
		if dev.ewma.CompareAndSwap(old, math.Float64bits(next)) {
			return next
		}
	}
}

func (m *Monitor) latencySuspect(ewma float64) bool {
	return m.cfg.BaselineMS > 0 && ewma > m.cfg.SuspectFactor*m.cfg.BaselineMS
}

// Fail force-transitions device d to Failed (the FAIL admin command, or an
// external fault notification). It refuses to exceed MaxUnavailable — past
// c-1 losses the design can no longer guarantee every bucket a surviving
// replica.
func (m *Monitor) Fail(d int) error {
	if d < 0 || d >= m.cfg.Devices {
		return fmt.Errorf("health: device %d out of range [0,%d)", d, m.cfg.Devices)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	from := State(m.devs[d].state.Load())
	if from == Failed {
		return fmt.Errorf("health: device %d already failed", d)
	}
	if from.available() && m.mask.Load().Unavailable()+1 > m.cfg.MaxUnavailable {
		return fmt.Errorf("health: failing device %d would exceed %d unavailable devices (data would become unreachable)", d, m.cfg.MaxUnavailable)
	}
	m.transitionLocked(d, from, Failed)
	return nil
}

// Recover replaces/readmits device d (the RECOVER admin command): a Failed
// device enters Rebuilding and is resilvered by the rebuild scheduler
// before rejoining the mask (straight to Healthy when rebuild is
// disabled); a Suspect device is cleared back to Healthy.
func (m *Monitor) Recover(d int) error {
	if d < 0 || d >= m.cfg.Devices {
		return fmt.Errorf("health: device %d out of range [0,%d)", d, m.cfg.Devices)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch from := State(m.devs[d].state.Load()); from {
	case Failed:
		if m.reb == nil {
			m.transitionLocked(d, Failed, Healthy)
		} else {
			m.transitionLocked(d, Failed, Rebuilding)
		}
		return nil
	case Suspect:
		m.transitionLocked(d, Suspect, Healthy)
		return nil
	case Rebuilding:
		return fmt.Errorf("health: device %d is already rebuilding", d)
	default:
		return fmt.Errorf("health: device %d is healthy", d)
	}
}

// transition applies from→to if the device is still in from. Detector
// callers race benignly: whoever wins applies it, later observers see the
// new state.
func (m *Monitor) transition(d int, from, to State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if State(m.devs[d].state.Load()) != from {
		return
	}
	// The detector must respect the same availability guard as Fail: if
	// removing the device would strand buckets, hold it at Suspect and
	// leave the decision to the operator.
	if to == Failed && m.mask.Load().Unavailable()+1 > m.cfg.MaxUnavailable {
		return
	}
	m.transitionLocked(d, from, to)
}

// transitionLocked applies a transition, republishes the mask if
// availability changed, and drives the rebuild queue. Caller holds mu.
func (m *Monitor) transitionLocked(d int, from, to State) {
	m.devs[d].state.Store(int32(to))
	if to == Healthy {
		// Fresh start for a recovered device: clear the streaks and forget
		// the failure-era latency history so a replaced module is not
		// immediately re-suspected by its predecessor's EWMA. Entering
		// Suspect deliberately keeps the error streak — FailAfter counts
		// consecutive errors from the first one, not from the transition.
		m.devs[d].consecErr.Store(0)
		m.devs[d].consecOK.Store(0)
		m.devs[d].ewma.Store(0)
	}
	m.transitions.Add(1)
	if m.reb != nil {
		switch to {
		case Failed:
			// Re-protect: copy the device's buckets onto survivors so
			// redundancy is restored while the module is gone. A stale
			// resilver (device died again mid-rebuild) is dropped first.
			m.reb.cancel(d)
			m.reb.enqueue(d, Reprotect)
		case Rebuilding:
			// Resilver: copy the device's buckets back onto the
			// replacement before it rejoins the mask.
			m.reb.cancel(d)
			m.reb.enqueue(d, Resilver)
		case Healthy, Suspect:
			m.reb.cancel(d)
		}
	}
	if from.available() != to.available() {
		mask := buildMask(m.devs)
		m.mask.Store(mask)
		if m.cfg.OnMaskChange != nil {
			m.cfg.OnMaskChange(mask)
		}
	}
	if m.cfg.OnTransition != nil {
		m.cfg.OnTransition(d, from, to)
	}
}

// Step pumps the rebuild scheduler: it refills the token bucket from the
// monitor clock, dequeues as many bucket copies as the tokens allow, and
// performs them with the transition lock released — a copy may move real
// payload bytes and block on fsync, and must not stall detector
// transitions or mask rebuilds meanwhile. Devices whose resilver queue
// drains are promoted Rebuilding → Healthy after their copies complete
// (never before: a device must not rejoin the retrieval mask while its
// bytes are still in flight). Returns the number of bucket copies
// performed. Call periodically (the qosnet server ticks it from a
// background goroutine); a no-op when rebuild is disabled.
func (m *Monitor) Step() int {
	if m.reb == nil {
		return 0
	}
	m.mu.Lock()
	jobs, drained := m.reb.take(m.cfg.NowMS())
	m.mu.Unlock()
	if m.cfg.Rebuild.Copy != nil {
		for _, j := range jobs {
			m.cfg.Rebuild.Copy(j.dev, j.bucket, j.kind)
		}
	}
	if len(drained) > 0 {
		m.mu.Lock()
		for _, d := range drained {
			// Re-check under the lock: while the copies ran the device may
			// have failed again (and possibly re-entered Rebuilding with a
			// fresh work queue) — promote only a still-rebuilding device
			// with nothing left queued.
			if State(m.devs[d].state.Load()) == Rebuilding && !m.reb.hasWork(d) {
				m.transitionLocked(d, Rebuilding, Healthy)
			}
		}
		m.mu.Unlock()
	}
	return len(jobs)
}

// RebuildProgress reports the rebuild scheduler's queue depth and lifetime
// completed copies (both 0 when rebuild is disabled).
func (m *Monitor) RebuildProgress() (pending int, done int64) {
	if m.reb == nil {
		return 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.reb.queue), m.reb.done
}
