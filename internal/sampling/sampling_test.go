package sampling

import (
	"bytes"
	"strings"
	"testing"

	"flashqos/internal/decluster"
	"flashqos/internal/design"
)

func table931(t testing.TB, trials int) *Table {
	t.Helper()
	dt, err := decluster.NewDesignTheoretic(design.Paper931())
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Estimate(dt, Options{MaxK: 12, Trials: trials, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestFig4Probabilities checks the paper's Fig 4 numbers for the (9,3,1)
// design: P6 ≈ 0.99, P7 ≈ 0.98, P8 ≈ 0.95, P9 ≈ 0.75, P10 = 1 (since
// ⌈10/9⌉ = 2 accesses is easy), and P_k ≈ 1 for k ≤ 5 (the deterministic
// guarantee; with-replacement collisions are negligible).
func TestFig4Probabilities(t *testing.T) {
	tab := table931(t, 20000)
	approx := func(k int, want, tol float64) {
		t.Helper()
		if got := tab.At(k); got < want-tol || got > want+tol {
			t.Errorf("P%d = %.3f, paper says %.2f (tol %.2f)", k, got, want, tol)
		}
	}
	for k := 1; k <= 4; k++ {
		if tab.At(k) < 0.999 {
			t.Errorf("P%d = %.4f, want ~1 (deterministic guarantee)", k, tab.At(k))
		}
	}
	// At k=5, with-replacement sampling can draw 4+ requests from one
	// rotation class (3 devices) with probability ~0.26%, so P5 is just
	// under 1 — the guarantee itself is over distinct buckets.
	if tab.At(5) < 0.99 {
		t.Errorf("P5 = %.4f, want >= 0.99", tab.At(5))
	}
	approx(6, 0.99, 0.01)
	approx(7, 0.98, 0.015)
	approx(8, 0.95, 0.02)
	approx(9, 0.75, 0.04)
	if tab.At(10) < 0.9999 {
		t.Errorf("P10 = %.4f, want 1 (optimal becomes 2 accesses)", tab.At(10))
	}
}

func TestTableAt(t *testing.T) {
	tab := &Table{N: 9, P: []float64{1, 0.9, 0.8}}
	if tab.At(0) != 1 || tab.At(-3) != 1 {
		t.Error("At(k<=0) should be 1")
	}
	if tab.At(1) != 0.9 || tab.At(2) != 0.8 {
		t.Error("At lookup wrong")
	}
	if tab.At(10) != 0.8 {
		t.Error("At beyond table should extrapolate last value")
	}
	if tab.MaxK() != 2 {
		t.Errorf("MaxK = %d, want 2", tab.MaxK())
	}
}

func TestEstimateValidation(t *testing.T) {
	dt, _ := decluster.NewDesignTheoretic(design.Paper931())
	if _, err := Estimate(dt, Options{MaxK: 0}); err == nil {
		t.Error("MaxK=0 should fail")
	}
}

func TestEstimateDeterministicSeed(t *testing.T) {
	dt, _ := decluster.NewDesignTheoretic(design.Paper931())
	t1, _ := Estimate(dt, Options{MaxK: 6, Trials: 2000, Seed: 5, Workers: 4})
	t2, _ := Estimate(dt, Options{MaxK: 6, Trials: 2000, Seed: 5, Workers: 4})
	for k := range t1.P {
		if t1.P[k] != t2.P[k] {
			t.Fatal("same seed+workers should reproduce exactly")
		}
	}
}

func TestEstimateMonotoneTail(t *testing.T) {
	// Past k = N the optimum becomes >= 2 accesses and P_k jumps back to ~1
	// (paper: "The probability increases to 1 for k = 10").
	tab := table931(t, 5000)
	for k := 10; k <= 12; k++ {
		if tab.At(k) < 0.999 {
			t.Errorf("P%d = %.4f, want ~1 just past N", k, tab.At(k))
		}
	}
}

func BenchmarkEstimateFig4(b *testing.B) {
	dt, _ := decluster.NewDesignTheoretic(design.Paper931())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(dt, Options{MaxK: 12, Trials: 2000, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tab := &Table{N: 9, Trials: 100, P: []float64{1, 0.9, 0.75}}
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != tab.N || got.Trials != tab.Trials || len(got.P) != len(tab.P) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range tab.P {
		if got.P[i] != tab.P[i] {
			t.Fatalf("P[%d] = %g, want %g", i, got.P[i], tab.P[i])
		}
	}
}

func TestLoadRejectsBad(t *testing.T) {
	cases := []string{
		"not json",
		`{"N":0,"P":[1]}`,
		`{"N":9,"P":[]}`,
		`{"N":9,"P":[1.5]}`,
		`{"N":9,"P":[-0.1]}`,
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}
