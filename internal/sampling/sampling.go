// Package sampling estimates the optimal-retrieval probabilities P_k used
// by the statistical QoS admission controller (paper §III-B1, Fig 4). For a
// given allocation scheme, P_k is the probability that k blocks drawn
// uniformly at random from the bucket pool — with replacement, matching the
// paper's "the same design block is allowed to be chosen multiple times for
// fair results" — can be retrieved in the optimal ⌈k/N⌉ parallel accesses.
//
// Estimation is embarrassingly parallel; trials are sharded across worker
// goroutines with independent deterministic RNG streams.
package sampling

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"

	"flashqos/internal/decluster"
	"flashqos/internal/maxflow"
)

// Table holds estimated optimal-retrieval probabilities for request sizes
// 1..MaxK. P[0] is defined as 1 (an empty request is trivially optimal).
type Table struct {
	N      int       // device count of the sampled scheme
	Trials int       // trials per request size
	P      []float64 // P[k], k in [0, MaxK]
}

// MaxK returns the largest request size in the table.
func (t *Table) MaxK() int { return len(t.P) - 1 }

// At returns P_k, using 1.0 for k == 0 and extrapolating with the last
// known value for k beyond the table. (For k well beyond N the probability
// converges to 1; callers should size the table past the convergence
// point.)
func (t *Table) At(k int) float64 {
	if k <= 0 {
		return 1
	}
	if k < len(t.P) {
		return t.P[k]
	}
	return t.P[len(t.P)-1]
}

// Options configure the estimator.
type Options struct {
	MaxK    int   // largest request size to sample (required, >= 1)
	Trials  int   // Monte-Carlo trials per size (default 20000)
	Seed    int64 // base RNG seed (default 1)
	Workers int   // parallel workers (default GOMAXPROCS)
}

// Estimate computes the optimal-retrieval probability table for an
// allocation scheme.
func Estimate(a decluster.Allocator, opt Options) (*Table, error) {
	if opt.MaxK < 1 {
		return nil, fmt.Errorf("sampling: MaxK must be >= 1, got %d", opt.MaxK)
	}
	if opt.Trials <= 0 {
		opt.Trials = 20000
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	n := a.Devices()
	rows := a.Rows()

	counts := make([]int64, opt.MaxK+1) // optimal outcomes per k
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(worker)*7919))
			local := make([]int64, opt.MaxK+1)
			replicas := make([][]int, 0, opt.MaxK)
			// Each worker owns a Solver (single-goroutine reuse contract),
			// so the Monte-Carlo loop rewrites one preallocated feasibility
			// network per trial instead of building a fresh graph: zero
			// allocations per trial in the steady state.
			solver := maxflow.NewSolver(opt.MaxK, n)
			for k := 1; k <= opt.MaxK; k++ {
				// Shard trials across workers.
				for trial := worker; trial < opt.Trials; trial += opt.Workers {
					replicas = replicas[:0]
					for i := 0; i < k; i++ {
						replicas = append(replicas, a.Replicas(rng.Intn(rows)))
					}
					lb := (k + n - 1) / n
					if _, ok := solver.Feasible(replicas, n, lb); ok {
						local[k]++
					}
				}
			}
			mu.Lock()
			for k := range counts {
				counts[k] += local[k]
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	p := make([]float64, opt.MaxK+1)
	p[0] = 1
	for k := 1; k <= opt.MaxK; k++ {
		p[k] = float64(counts[k]) / float64(opt.Trials)
	}
	return &Table{N: n, Trials: opt.Trials, P: p}, nil
}

// Save serializes the table as JSON, so the offline Monte-Carlo pass can
// be cached across runs (the paper computes P_k once per design).
func (t *Table) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Load reads a table saved by Save.
func Load(r io.Reader) (*Table, error) {
	var t Table
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("sampling: %w", err)
	}
	if len(t.P) == 0 || t.N < 1 {
		return nil, fmt.Errorf("sampling: loaded table is empty or invalid")
	}
	for _, p := range t.P {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("sampling: loaded probability %g out of range", p)
		}
	}
	return &t, nil
}
