package shard_test

import (
	"fmt"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/shard"
)

// Example shards the paper's (9,3,1) framework across four independent
// arrays: 36 devices, 4·S guaranteed admissions per interval, with blocks
// hash-routed to their owning shard and devices numbered globally.
func Example() {
	arr, err := shard.New(4, core.Config{Design: design.Paper931()})
	if err != nil {
		panic(err)
	}
	fmt.Printf("shards=%d devices=%d S=%d\n", arr.Shards(), arr.Devices(), arr.S())

	out := arr.Submit(0, 42)
	sh, local, _ := arr.DeviceShard(out.Device)
	fmt.Printf("block 42 -> shard %d (device %d = shard %d local %d), response %.3f ms\n",
		arr.ShardOf(42), out.Device, sh, local, out.Response())
	// Output:
	// shards=4 devices=36 S=20
	// block 42 -> shard 2 (device 19 = shard 2 local 1), response 0.133 ms
}
