package shard

import (
	"fmt"
	"testing"

	"flashqos/internal/core"
	"flashqos/internal/design"
)

// BenchmarkArraySubmitBurst exercises the scatter fan-out (one mixed burst
// partitioned by index inside Array.SubmitBurst) with a reused scratch.
// The shards=1 vs shards=4 pair isolates the sharded fan-out cost from
// the network layer.
func BenchmarkArraySubmitBurst(b *testing.B) {
	for _, shards := range []int{1, 4} {
		for _, burst := range []int{16, 128} {
			b.Run(fmt.Sprintf("shards=%d/burst=%d", shards, burst), func(b *testing.B) {
				arr, err := New(shards, core.Config{Design: design.Paper931()})
				if err != nil {
					b.Fatal(err)
				}
				interval := arr.IntervalMS()
				var sc BurstScratch
				reqs := make([]core.BurstReq, burst)
				block := int64(0)
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; {
					for i := range reqs {
						reqs[i] = core.BurstReq{Block: block}
						block++
					}
					arrival := float64(n) * interval / 300 // ~300 reqs per wall window
					arr.SubmitBurst(arrival, reqs, &sc)
					n += burst
				}
			})
		}
	}
}

// BenchmarkArraySubmitBurstShard mimics the qosnet binary hot path without
// the socket: requests pre-bucketed by shard while "decoding" (as
// handleBinary does), each bucket admitted contiguously through
// SubmitBurstShard. This is the gather path the binary server runs.
func BenchmarkArraySubmitBurstShard(b *testing.B) {
	for _, shards := range []int{1, 4} {
		for _, burst := range []int{16, 128} {
			b.Run(fmt.Sprintf("shards=%d/burst=%d", shards, burst), func(b *testing.B) {
				arr, err := New(shards, core.Config{Design: design.Paper931()})
				if err != nil {
					b.Fatal(err)
				}
				interval := arr.IntervalMS()
				buckets := make([][]core.BurstReq, shards)
				scs := make([]core.BurstScratch, shards)
				block := int64(0)
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; {
					for i := range buckets {
						buckets[i] = buckets[i][:0]
					}
					for i := 0; i < burst; i++ {
						sh := 0
						if shards > 1 {
							sh = Route(block, shards)
						}
						buckets[sh] = append(buckets[sh], core.BurstReq{Block: block})
						block++
					}
					arrival := float64(n) * interval / 300 // ~300 reqs per wall window
					for sh := range buckets {
						if len(buckets[sh]) > 0 {
							arr.SubmitBurstShard(sh, arrival, buckets[sh], &scs[sh])
						}
					}
					n += burst
				}
			})
		}
	}
}
