package shard

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/health"
)

func newArray(t testing.TB, k int, cfg core.Config) *Array {
	t.Helper()
	if cfg.Design == nil && cfg.N == 0 {
		cfg.Design = design.Paper931()
	}
	a, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestShardRouting(t *testing.T) {
	a := newArray(t, 4, core.Config{})
	if a.Shards() != 4 || a.DevicesPerShard() != 9 || a.Devices() != 36 {
		t.Fatalf("geometry: shards=%d devsPer=%d devices=%d", a.Shards(), a.DevicesPerShard(), a.Devices())
	}
	if a.S() != 4*a.System(0).S() {
		t.Errorf("aggregate S = %d, want %d", a.S(), 4*a.System(0).S())
	}
	hit := make([]int, 4)
	at := 0.0
	for b := int64(0); b < 400; b++ {
		i := a.ShardOf(b)
		if i != a.ShardOf(b) {
			t.Fatalf("ShardOf(%d) not deterministic", b)
		}
		hit[i]++
		out := a.Submit(at, b)
		at += 0.05
		if out.Rejected {
			t.Fatalf("rejected under Delay policy: %+v", out)
		}
		if out.Device/a.DevicesPerShard() != i {
			t.Errorf("block %d owned by shard %d but served by global device %d", b, i, out.Device)
		}
		sh, local, ok := a.DeviceShard(out.Device)
		if !ok || sh != i || a.GlobalDevice(sh, local) != out.Device {
			t.Errorf("device translation roundtrip failed for global device %d", out.Device)
		}
	}
	for i, n := range hit {
		if n == 0 {
			t.Errorf("shard %d received no blocks out of 400 — hash not spreading", i)
		}
	}
	if _, _, ok := a.DeviceShard(-1); ok {
		t.Error("DeviceShard(-1) ok")
	}
	if _, _, ok := a.DeviceShard(36); ok {
		t.Error("DeviceShard(36) ok")
	}
}

// TestShardStress floods a 4-shard array from many goroutines at well past
// single-shard capacity and asserts the composed invariant: each shard's
// per-window admissions stay within its own S, every request is admitted
// (Delay policy) on a device owned by the block's shard, and the
// guaranteed path holds. Run under -race this is the memory-safety proof
// for cross-shard concurrent submission.
func TestShardStress(t *testing.T) {
	a := newArray(t, 4, core.Config{})
	const (
		goroutines = 8
		perG       = 400
		dt         = 0.004
	)
	var clock atomic.Int64
	outs := make([][]core.Outcome, goroutines)
	blocks := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				arrival := float64(clock.Add(1)) * dt
				b := int64(g*1_000_000 + i)
				blocks[g] = append(blocks[g], b)
				outs[g] = append(outs[g], a.Submit(arrival, b))
			}
		}(g)
	}
	wg.Wait()

	perShardS := a.System(0).S()
	for g := range outs {
		for j, out := range outs[g] {
			if out.Rejected {
				t.Fatalf("rejected under Delay policy: %+v", out)
			}
			if want := a.ShardOf(blocks[g][j]); out.Device/a.DevicesPerShard() != want {
				t.Fatalf("block %d served by device %d outside its shard %d", blocks[g][j], out.Device, want)
			}
			if math.Abs(out.Start-out.Admitted) > 1e-9 {
				t.Fatalf("guaranteed path violated: start %.9f != admitted %.9f", out.Start, out.Admitted)
			}
		}
	}
	for i := 0; i < a.Shards(); i++ {
		if max := a.System(i).MaxWindowCount(); max > perShardS {
			t.Errorf("shard %d MaxWindowCount = %d, limit S=%d", i, max, perShardS)
		}
	}
}

// TestShardSubmitAllocs pins the sharded read hot path at zero
// allocations: hashing, routing, admission and device translation all run
// without heap traffic.
func TestShardSubmitAllocs(t *testing.T) {
	a := newArray(t, 4, core.Config{Design: design.Paper931(), M: 50, IntervalMS: 1000})
	at := 0.0
	i := 0
	submit := func() {
		out := a.Submit(at, int64(i%144))
		if out.Rejected {
			t.Fatal("rejected in steady state")
		}
		at += 0.2
		i++
	}
	for j := 0; j < 40; j++ { // warm each shard's ledger and scheduler
		submit()
	}
	if avg := testing.AllocsPerRun(300, submit); avg != 0 {
		t.Errorf("sharded Submit allocates %.2f per op, want 0", avg)
	}
}

// TestShardBatchOrder checks SubmitBatch scatters per-shard results back
// into input order with global device ids.
func TestShardBatchOrder(t *testing.T) {
	a := newArray(t, 3, core.Config{})
	blocks := make([]int64, 12)
	for i := range blocks {
		blocks[i] = int64(i * 31)
	}
	outs := a.SubmitBatch(0, blocks, nil)
	if len(outs) != len(blocks) {
		t.Fatalf("got %d outcomes for %d blocks", len(outs), len(blocks))
	}
	for j, out := range outs {
		if out.Rejected {
			t.Fatalf("block %d rejected under Delay policy", blocks[j])
		}
		if want := a.ShardOf(blocks[j]); out.Device/a.DevicesPerShard() != want {
			t.Errorf("outcome %d on device %d, not in shard %d owning block %d", j, out.Device, want, blocks[j])
		}
	}
	if a.SubmitBatch(1, nil, nil) != nil {
		t.Error("empty batch should return nil")
	}
}

// TestShardHealthIsolation fails one global device and checks the
// degraded limit is confined to the owning shard: the aggregate drops by
// exactly S - S' of one shard while the others keep the full budget.
func TestShardHealthIsolation(t *testing.T) {
	a := newArray(t, 4, core.Config{})
	if a.HasHealth() {
		t.Fatal("monitors before NewHealthMonitors")
	}
	if err := a.NewHealthMonitors(0, health.Config{}); err != nil {
		t.Fatal(err)
	}
	if !a.HasHealth() {
		t.Fatal("monitors missing after NewHealthMonitors")
	}
	full := a.EffectiveS()
	if full != a.S() {
		t.Fatalf("healthy EffectiveS %d != S %d", full, a.S())
	}

	const global = 2*9 + 4 // shard 2, local device 4
	sh, local, ok := a.DeviceShard(global)
	if !ok || sh != 2 || local != 4 {
		t.Fatalf("DeviceShard(%d) = %d,%d,%v", global, sh, local, ok)
	}
	if err := a.Monitor(sh).Fail(local); err != nil {
		t.Fatal(err)
	}

	wantShard2 := a.System(2).EffectiveS()
	if wantShard2 >= a.System(0).S() {
		t.Fatalf("failed shard limit %d did not degrade below S=%d", wantShard2, a.System(0).S())
	}
	if got, want := a.EffectiveS(), 3*a.System(0).S()+wantShard2; got != want {
		t.Errorf("aggregate EffectiveS = %d, want %d (degradation confined to shard 2)", got, want)
	}
	st := a.Stats()
	if st.Shards != 4 || st.Devices != 36 {
		t.Errorf("stats geometry: %+v", st)
	}
	if st.Alive != 35 {
		t.Errorf("stats alive = %d, want 35", st.Alive)
	}
	if st.PerShard[2].Alive != 8 || st.PerShard[2].EffectiveS != wantShard2 {
		t.Errorf("shard 2 stats = %+v", st.PerShard[2])
	}
	for _, i := range []int{0, 1, 3} {
		if st.PerShard[i].EffectiveS != a.System(0).S() || st.PerShard[i].Alive != 9 {
			t.Errorf("healthy shard %d stats = %+v", i, st.PerShard[i])
		}
	}
}

func TestShardConstructors(t *testing.T) {
	if _, err := New(0, core.Config{Design: design.Paper931()}); err == nil {
		t.Error("New(0, ...) accepted")
	}
	if _, err := FromSystems(); err == nil {
		t.Error("FromSystems() with no systems accepted")
	}
	s9, err := core.New(core.Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	s7, err := core.New(core.Config{N: 7, C: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromSystems(s9, s7); err == nil {
		t.Error("mismatched device counts accepted")
	}

	one := newArray(t, 1, core.Config{})
	if one.ShardOf(12345) != 0 {
		t.Error("single-shard routing must be identity")
	}
	out := one.Submit(0, 7)
	if out.Rejected || out.Device < 0 || out.Device >= 9 {
		t.Errorf("single-shard submit: %+v", out)
	}
	if outs := one.SubmitBatch(1, []int64{1, 2, 3}, nil); len(outs) != 3 {
		t.Errorf("single-shard batch returned %d outcomes", len(outs))
	}
}

func TestShardWriteRouting(t *testing.T) {
	a := newArray(t, 2, core.Config{})
	at := 0.0
	for b := int64(0); b < 40; b++ {
		out := a.SubmitWrite(at, b)
		at += 1.0
		if out.Rejected {
			t.Fatalf("write rejected under Delay policy: %+v", out)
		}
		if want := a.ShardOf(b); out.Device/a.DevicesPerShard() != want {
			t.Errorf("write for block %d landed on device %d outside shard %d", b, out.Device, want)
		}
	}
}

func BenchmarkShardedSubmit(b *testing.B) {
	for _, k := range []int{1, 4} {
		b.Run(map[int]string{1: "k=1", 4: "k=4"}[k], func(b *testing.B) {
			a := newArray(b, k, core.Config{})
			var clock atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := int64(0)
				for pb.Next() {
					arrival := float64(clock.Add(1)) * 0.005
					a.Submit(arrival, i)
					i++
				}
			})
		})
	}
}
