package shard

import (
	"testing"

	"flashqos/internal/admission"
	"flashqos/internal/core"
)

func TestTenantRegistryStableIndices(t *testing.T) {
	a := newArray(t, 3, core.Config{M: 2})
	ia, err := a.TenantSet(admission.TenantSpec{Name: "a", Reserve: 2, Weight: 1})
	if err != nil || ia != 1 {
		t.Fatalf("set a: index=%d err=%v, want 1", ia, err)
	}
	ib, err := a.TenantSet(admission.TenantSpec{Name: "b", Reserve: 2, Weight: 1})
	if err != nil || ib != 2 {
		t.Fatalf("set b: index=%d err=%v, want 2", ib, err)
	}
	// Updating keeps the index; deleting reserves the slot; a new tenant
	// reuses the first inactive slot.
	if i, err := a.TenantSet(admission.TenantSpec{Name: "a", Reserve: 3, Weight: 2}); err != nil || i != 1 {
		t.Fatalf("update a: index=%d err=%v, want 1", i, err)
	}
	if err := a.TenantDel("a"); err != nil {
		t.Fatal(err)
	}
	if a.TenantActive(1) {
		t.Fatal("deleted slot 1 still active")
	}
	if !a.TenantActive(2) {
		t.Fatal("slot 2 should stay active")
	}
	if i, err := a.TenantSet(admission.TenantSpec{Name: "c", Weight: 1}); err != nil || i != 1 {
		t.Fatalf("set c: index=%d err=%v, want reused slot 1", i, err)
	}
	if got := a.TenantIndex("c"); got != 1 {
		t.Fatalf("TenantIndex(c) = %d, want 1", got)
	}
	if got := a.TenantIndex("a"); got != 0 {
		t.Fatalf("TenantIndex(a) = %d after delete, want 0", got)
	}
	if err := a.TenantDel("a"); err == nil {
		t.Fatal("deleting an unknown tenant should fail")
	}
}

func TestTenantSetValidation(t *testing.T) {
	a := newArray(t, 2, core.Config{M: 2}) // S = 14 per shard
	if _, err := a.TenantSet(admission.TenantSpec{Name: "", Weight: 1}); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := a.TenantSet(admission.TenantSpec{Name: "big", Reserve: 15, Weight: 1}); err == nil {
		t.Fatal("reserve beyond per-shard S should fail")
	}
	// A failed set must leave the registry untouched everywhere.
	if got := a.TenantIndex("big"); got != 0 {
		t.Fatalf("failed TenantSet registered index %d", got)
	}
	for i := 0; i < a.Shards(); i++ {
		if specs := a.System(i).TenantSpecs(); len(specs) != 0 {
			t.Fatalf("shard %d holds %d specs after failed set", i, len(specs))
		}
	}
}

func TestTenantFanOutAndAggregation(t *testing.T) {
	a := newArray(t, 3, core.Config{M: 2, Policy: admission.Reject, ServiceMS: 0.001})
	if _, err := a.TenantSet(admission.TenantSpec{Name: "a", Reserve: 2, Limit: 4, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	// Every shard carries the same spec.
	for i := 0; i < a.Shards(); i++ {
		specs := a.System(i).TenantSpecs()
		if len(specs) != 1 || specs[0].Name != "a" || specs[0].Reserve != 2 {
			t.Fatalf("shard %d specs = %+v", i, specs)
		}
	}
	// Submissions spread across shards; aggregated counters see them all.
	admitted := 0
	for b := int64(0); b < 60; b++ {
		if out := a.SubmitTenant(float64(b)*0.001, b, 1); !out.Rejected {
			admitted++
			if out.Tenant != 1 {
				t.Fatalf("block %d outcome tagged %d", b, out.Tenant)
			}
		}
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	tc, ok := a.TenantGet("a")
	if !ok || tc.Index != 1 {
		t.Fatalf("TenantGet = %+v ok=%v", tc, ok)
	}
	if tc.Admitted != int64(admitted) {
		t.Fatalf("aggregated Admitted = %d, observed %d", tc.Admitted, admitted)
	}
	// Per-shard counters must sum to the aggregate (traffic hit >1 shard).
	var perShard int64
	shardsHit := 0
	for i := 0; i < a.Shards(); i++ {
		if c, ok := a.System(i).TenantCounters("a"); ok && c.Admitted > 0 {
			perShard += c.Admitted
			shardsHit++
		}
	}
	if perShard != tc.Admitted || shardsHit < 2 {
		t.Fatalf("per-shard sum %d (across %d shards) != aggregate %d", perShard, shardsHit, tc.Admitted)
	}
	stats := a.TenantStats()
	if len(stats) != 1 || stats[0].Counters != tc.Counters {
		t.Fatalf("TenantStats = %+v, want one entry matching TenantGet %+v", stats, tc)
	}
	// Unknown tenant index rejects on every shard's path.
	if out := a.SubmitTenant(1.0, 7, 9); !out.Rejected {
		t.Fatalf("unknown tenant admitted: %+v", out)
	}
	// Writes carry the tenant too.
	if out := a.SubmitWriteTenant(2.0, 7, 1); out.Tenant != 1 {
		t.Fatalf("write outcome tagged %d", out.Tenant)
	}
}

func TestTenantBurstShard(t *testing.T) {
	a := newArray(t, 2, core.Config{M: 2, Policy: admission.Reject, ServiceMS: 0.001})
	if _, err := a.TenantSet(admission.TenantSpec{Name: "a", Reserve: 3, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	// Build a burst for shard 0 only, tagged with the tenant.
	var reqs []core.BurstReq
	for b := int64(0); len(reqs) < 6; b++ {
		if a.ShardOf(b) == 0 {
			reqs = append(reqs, core.BurstReq{Block: b, Tenant: 1})
		}
	}
	outs := a.SubmitBurstShard(0, 0, reqs, nil)
	for i, o := range outs {
		if o.Tenant != 1 {
			t.Fatalf("burst outcome %d tagged %d: %+v", i, o.Tenant, o)
		}
	}
	if c, ok := a.System(0).TenantCounters("a"); !ok || c.Admitted == 0 {
		t.Fatalf("shard 0 counters = %+v ok=%v", c, ok)
	}
}
