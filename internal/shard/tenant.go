package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flashqos/internal/admission"
	"flashqos/internal/core"
)

// Tenant policy across shards.
//
// The Array holds the canonical tenant slot table — name → stable 1-based
// index — and installs the SAME spec on every shard's admission gate: a
// tenant's Reserve/Limit/Weight apply per shard against that shard's own
// S(M), so the aggregate reservation across the array is K·Reserve (blocks
// hash-spread uniformly, so a tenant's traffic sees every shard). Indices
// are stable across deletion: TenantDel clears the slot in place and a
// later TenantSet reuses the first inactive slot, so in-flight requests
// tagged with an index never alias a different tenant.
//
// Reads of the policy by the submit paths are lock-free (each engine's
// atomic snapshot); tenantMu only serializes the reconfiguration sequence
// itself.

// TenantCounters is one tenant's spec plus its admission gauges summed
// across every shard's gate.
type TenantCounters struct {
	Index int32 // stable 1-based tenant index
	Spec  admission.TenantSpec
	admission.Counters
}

// tenantState is the Array's registry: the canonical slot table, guarded
// by a mutex that serializes reconfigurations (never taken on submit),
// plus an atomically published active-slot table for the per-request
// validation the wire layer runs on its hot path.
type tenantState struct {
	mu    sync.Mutex
	specs []admission.TenantSpec
	// active[i] reports slot i+1 currently names an active tenant. The
	// slice is immutable once published; reconfiguration swaps in a fresh
	// one, so readers never see a torn table.
	active atomic.Pointer[[]bool]
}

// validateTenants dry-runs a slot table against the tightest shard
// capacity, so installation below either fails atomically (nothing
// installed anywhere) or succeeds on every shard.
func (a *Array) validateTenants(specs []admission.TenantSpec) error {
	minS := a.systems[0].S()
	for _, cs := range a.systems[1:] {
		if s := cs.S(); s < minS {
			minS = s
		}
	}
	gate, err := admission.NewMClock(minS)
	if err != nil {
		return err
	}
	return gate.Configure(specs)
}

// install pushes a validated slot table to every shard and records it as
// the canonical table. Caller holds a.tenants.mu.
func (a *Array) installTenants(specs []admission.TenantSpec) error {
	for i, cs := range a.systems {
		if err := cs.SetTenants(specs); err != nil {
			// Unreachable after validateTenants (per-shard capacity is at
			// least the validation capacity); fail loudly if the invariant
			// ever breaks rather than leave shards half-configured silently.
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	a.tenants.specs = append(a.tenants.specs[:0], specs...)
	active := make([]bool, len(specs))
	for i := range specs {
		active[i] = specs[i].Name != ""
	}
	a.tenants.active.Store(&active)
	return nil
}

// SetTenants validates and installs a whole tenant slot table on every
// shard (the bulk path behind boot-time -tenant flags). Slot i of specs
// becomes tenant index i+1 on the wire.
func (a *Array) SetTenants(specs []admission.TenantSpec) error {
	a.tenants.mu.Lock()
	defer a.tenants.mu.Unlock()
	if err := a.validateTenants(specs); err != nil {
		return err
	}
	return a.installTenants(specs)
}

// TenantSet creates or updates one tenant by name with no engine pause:
// an existing tenant keeps its index, a new one takes the first inactive
// slot (or extends the table). The spec applies per shard against each
// shard's own S.
func (a *Array) TenantSet(spec admission.TenantSpec) (index int32, err error) {
	if spec.Name == "" {
		return 0, fmt.Errorf("shard: tenant name must be non-empty")
	}
	a.tenants.mu.Lock()
	defer a.tenants.mu.Unlock()
	specs := append([]admission.TenantSpec(nil), a.tenants.specs...)
	slot := -1
	for i := range specs {
		if specs[i].Name == spec.Name {
			slot = i
			break
		}
	}
	if slot < 0 {
		for i := range specs {
			if specs[i].Name == "" {
				slot = i
				break
			}
		}
	}
	if slot < 0 {
		slot = len(specs)
		specs = append(specs, admission.TenantSpec{})
	}
	specs[slot] = spec
	if err := a.validateTenants(specs); err != nil {
		return 0, err
	}
	if err := a.installTenants(specs); err != nil {
		return 0, err
	}
	return int32(slot) + 1, nil
}

// TenantDel deactivates a tenant by name. The slot is cleared in place —
// the index stays reserved so concurrent requests carrying it reject as
// unknown instead of aliasing a later tenant.
func (a *Array) TenantDel(name string) error {
	a.tenants.mu.Lock()
	defer a.tenants.mu.Unlock()
	slot := -1
	for i := range a.tenants.specs {
		if a.tenants.specs[i].Name == name {
			slot = i
			break
		}
	}
	if slot < 0 {
		return fmt.Errorf("shard: unknown tenant %q", name)
	}
	specs := append([]admission.TenantSpec(nil), a.tenants.specs...)
	specs[slot] = admission.TenantSpec{}
	// Clearing a slot can only relax the gate; validation cannot fail.
	if err := a.validateTenants(specs); err != nil {
		return err
	}
	return a.installTenants(specs)
}

// TenantGet returns one tenant's spec, stable index and cross-shard
// aggregated counters.
func (a *Array) TenantGet(name string) (TenantCounters, bool) {
	a.tenants.mu.Lock()
	defer a.tenants.mu.Unlock()
	for i := range a.tenants.specs {
		if a.tenants.specs[i].Name == name && a.tenants.specs[i].Name != "" {
			return TenantCounters{
				Index:    int32(i) + 1,
				Spec:     a.tenants.specs[i],
				Counters: a.sumCounters(name),
			}, true
		}
	}
	return TenantCounters{}, false
}

// TenantIndex returns the stable 1-based index for a tenant name (0 when
// unknown) — the wire layer's name → index resolution at hello time.
func (a *Array) TenantIndex(name string) int32 {
	a.tenants.mu.Lock()
	defer a.tenants.mu.Unlock()
	for i := range a.tenants.specs {
		if a.tenants.specs[i].Name == name && a.tenants.specs[i].Name != "" {
			return int32(i) + 1
		}
	}
	return 0
}

// TenantActive reports whether a 1-based tenant index currently names an
// active tenant — the wire layer's per-request validation (a deleted
// index stays reserved but inactive). Lock-free: one atomic load of the
// published active-slot table.
func (a *Array) TenantActive(index int32) bool {
	p := a.tenants.active.Load()
	if p == nil {
		return false
	}
	i := int(index) - 1
	return i >= 0 && i < len(*p) && (*p)[i]
}

// TenantSpecs returns a copy of the canonical slot table (slot i = tenant
// index i+1; inactive slots have an empty name).
func (a *Array) TenantSpecs() []admission.TenantSpec {
	a.tenants.mu.Lock()
	defer a.tenants.mu.Unlock()
	return append([]admission.TenantSpec(nil), a.tenants.specs...)
}

// TenantStats returns every active tenant's spec and cross-shard
// aggregated counters, in slot order (the METRICS exposition source).
func (a *Array) TenantStats() []TenantCounters {
	a.tenants.mu.Lock()
	defer a.tenants.mu.Unlock()
	var out []TenantCounters
	for i := range a.tenants.specs {
		if a.tenants.specs[i].Name == "" {
			continue
		}
		out = append(out, TenantCounters{
			Index:    int32(i) + 1,
			Spec:     a.tenants.specs[i],
			Counters: a.sumCounters(a.tenants.specs[i].Name),
		})
	}
	return out
}

// sumCounters adds one tenant's gauges across every shard's gate. Caller
// holds a.tenants.mu.
func (a *Array) sumCounters(name string) admission.Counters {
	var sum admission.Counters
	for _, cs := range a.systems {
		if c, ok := cs.TenantCounters(name); ok {
			sum.Admitted += c.Admitted
			sum.Rejected += c.Rejected
			sum.OverLimit += c.OverLimit
			sum.Deficit += c.Deficit
		}
	}
	return sum
}

// SubmitTenant routes one tenant-tagged block read to its owning shard
// (see core.ConcurrentSystem.SubmitTenant; tenant 0 behaves like Submit).
func (a *Array) SubmitTenant(arrival float64, block int64, tenant int32) core.Outcome {
	i := a.ShardOf(block)
	out := a.systems[i].SubmitTenant(arrival, block, tenant)
	if off := a.translate[i]; off != 0 && !out.Rejected {
		out.Device += off
	}
	return out
}

// SubmitWriteTenant routes one tenant-tagged block write to its owning
// shard.
func (a *Array) SubmitWriteTenant(arrival float64, block int64, tenant int32) core.Outcome {
	i := a.ShardOf(block)
	out := a.systems[i].SubmitWriteTenant(arrival, block, tenant)
	if off := a.translate[i]; off != 0 && !out.Rejected {
		out.Device += off
	}
	return out
}
