// Package shard scales the replication-based QoS framework past a single
// (N, c, 1) array: an Array hash-partitions the data-block space across K
// independent QoS engines, each with its own block design, interval
// ledger, device scheduler, and health tracker. The per-interval guarantee
// composes additively — every shard still admits at most its own S(M)
// requests per T-window onto its own N devices, so the aggregate array
// sustains K·S guaranteed requests per interval with K·N devices, and a
// device failure degrades only the shard that owns it (the other shards
// keep the full S).
//
// Devices are numbered globally: shard i's local device d is global device
// i·N + d. Submit outcomes, MAP responses, and health admin verbs all
// speak global ids; the translation is pure arithmetic, so the submit hot
// path stays zero-allocation.
package shard

import (
	"fmt"

	"flashqos/internal/core"
	"flashqos/internal/health"
)

// Array fans one Submit/SubmitWrite/SubmitBatch surface out across K
// independent concurrent QoS engines. All methods are safe for concurrent
// use (each shard is a core.ConcurrentSystem).
type Array struct {
	systems []*core.ConcurrentSystem
	mons    []*health.Monitor // non-nil entries after NewHealthMonitors
	devsPer int
	// translate[i] is the offset the Array must still add to shard i's
	// outcome devices: 0 when the system was built with DeviceBase i·N and
	// already emits global ids (the shard.New fast path), i·N when it
	// numbers from 0 (FromSystems over plain systems).
	translate []int
	// tenants is the canonical tenant slot table, mirrored onto every
	// shard's admission gate (see tenant.go).
	tenants tenantState
}

// New builds an Array of k independent engines, each configured from cfg.
// The shards share the configuration (and so the design, guarantee and
// sampled table) but no state: every shard owns its ledger, scheduler and
// mapper. Shard i is built with DeviceBase i·N (overriding any base in
// cfg), so outcomes carry global device ids straight out of the engine and
// the fan-out paths skip the per-outcome translation.
func New(k int, cfg core.Config) (*Array, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: need >= 1 shard, got %d", k)
	}
	systems := make([]*core.System, k)
	for i := range systems {
		cfg.DeviceBase = 0
		if i > 0 {
			// Later shards reuse shard 0's immutable allocator (one shared
			// replica table instead of k cache-competing copies) and number
			// their devices from their own global base.
			cfg.DeviceBase = i * systems[0].Design().N
			cfg.Allocator = systems[0].Allocator()
			cfg.Design = systems[0].Design()
		}
		sys, err := core.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		systems[i] = sys
	}
	return FromSystems(systems...)
}

// FromSystems builds an Array over already-constructed systems, wrapping
// each for concurrent submission (the systems must not be used directly
// afterwards; see core.NewConcurrent). All systems must span the same
// number of devices — the global device numbering depends on it. Each
// system must number its devices either from 0 (the Array translates its
// outcomes to the global numbering) or from its own global base i·N
// (core.Config.DeviceBase, the shard.New fast path — no translation).
func FromSystems(systems ...*core.System) (*Array, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("shard: need >= 1 system")
	}
	a := &Array{
		systems:   make([]*core.ConcurrentSystem, len(systems)),
		mons:      make([]*health.Monitor, len(systems)),
		devsPer:   systems[0].Design().N,
		translate: make([]int, len(systems)),
	}
	for i, sys := range systems {
		if n := sys.Design().N; n != a.devsPer {
			return nil, fmt.Errorf("shard: shard %d spans %d devices, shard 0 spans %d", i, n, a.devsPer)
		}
		switch base := sys.DeviceBase(); base {
		case i * a.devsPer:
			a.translate[i] = 0
		case 0:
			a.translate[i] = i * a.devsPer
		default:
			return nil, fmt.Errorf("shard: shard %d has DeviceBase %d, want 0 or %d", i, base, i*a.devsPer)
		}
		a.systems[i] = core.NewConcurrent(sys)
		a.mons[i] = sys.Health()
	}
	return a, nil
}

// NewHealthMonitors attaches one device-health monitor per shard (see
// core.System.NewHealthMonitor): detector thresholds and callbacks come
// from over, the device count, availability guard, latency baseline and
// rebuild work lists from each shard's design. Call before serving.
func (a *Array) NewHealthMonitors(rebuildRate float64, over health.Config) error {
	return a.NewHealthMonitorsWithCopy(rebuildRate, over, nil)
}

// NewHealthMonitorsWithCopy is NewHealthMonitors with a rebuild copy
// callback: each shard's rebuilder calls copy(shard, dev, bucket, kind)
// for every scheduled repair unit (dev and bucket in shard-local terms),
// which is how a storage engine moves real payloads during
// reprotect/resilver. copy runs from Monitor.Step with the shard
// monitor's transition lock released, so it may perform blocking payload
// I/O without stalling the health detectors. A nil copy matches
// NewHealthMonitors.
func (a *Array) NewHealthMonitorsWithCopy(rebuildRate float64, over health.Config, copy func(shard, dev, bucket int, kind health.RebuildKind)) error {
	for i, cs := range a.systems {
		o := over
		if copy != nil {
			sh := i
			o.Rebuild.Copy = func(dev, bucket int, kind health.RebuildKind) {
				copy(sh, dev, bucket, kind)
			}
		}
		mon, err := cs.System().NewHealthMonitor(rebuildRate, o)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		a.mons[i] = mon
	}
	return nil
}

// Shards returns the number of shards K.
func (a *Array) Shards() int { return len(a.systems) }

// DevicesPerShard returns N, the device count of each shard's design.
func (a *Array) DevicesPerShard() int { return a.devsPer }

// Devices returns the global device count K·N.
func (a *Array) Devices() int { return len(a.systems) * a.devsPer }

// System returns shard i's concurrent engine.
func (a *Array) System(i int) *core.ConcurrentSystem { return a.systems[i] }

// Monitor returns shard i's health monitor (nil when none is attached).
func (a *Array) Monitor(i int) *health.Monitor { return a.mons[i] }

// HasHealth reports whether every shard has a health monitor attached —
// the condition for serving global health admin operations.
func (a *Array) HasHealth() bool {
	for _, m := range a.mons {
		if m == nil {
			return false
		}
	}
	return true
}

// GlobalDevice translates shard i's local device to its global id.
func (a *Array) GlobalDevice(shard, local int) int { return shard*a.devsPer + local }

// DeviceShard translates a global device id to (shard, local device).
func (a *Array) DeviceShard(global int) (shard, local int, ok bool) {
	if global < 0 || global >= a.Devices() {
		return 0, 0, false
	}
	return global / a.devsPer, global % a.devsPer, true
}

// splitmix64's finalizer: a full-avalanche multiplicative hash, so block
// ids that arrive in arithmetic progressions (the common trace shape)
// still spread uniformly across shards.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Route returns the partition owning block among n equal partitions — the
// hash-partitioning rule shared by in-process sharding (ShardOf) and the
// qosproxy router tier, so any layer can predict block placement. The
// range reduction is a multiply-shift on the hash's high 32 bits
// (Lemire's fastrange) rather than a modulo: the hash is full-avalanche,
// so the high bits are as uniform as the low ones, and the hot submit
// partition loop avoids a hardware divide per request.
func Route(block int64, n int) int {
	if n <= 1 {
		return 0
	}
	return int((mix(uint64(block)) >> 32) * uint64(n) >> 32)
}

// ShardOf returns the shard owning a data block.
func (a *Array) ShardOf(block int64) int {
	return Route(block, len(a.systems))
}

// Submit routes one block read to its owning shard. The outcome's Device
// is in the global numbering. Zero allocations in steady state (the
// pinned sharded hot path).
func (a *Array) Submit(arrival float64, block int64) core.Outcome {
	i := a.ShardOf(block)
	out := a.systems[i].Submit(arrival, block)
	if off := a.translate[i]; off != 0 && !out.Rejected {
		out.Device += off
	}
	return out
}

// SubmitWrite routes one block write to its owning shard.
func (a *Array) SubmitWrite(arrival float64, block int64) core.Outcome {
	i := a.ShardOf(block)
	out := a.systems[i].SubmitWrite(arrival, block)
	if off := a.translate[i]; off != 0 && !out.Rejected {
		out.Device += off
	}
	return out
}

// BatchScratch is per-caller reusable state for Array.SubmitBatch: the
// per-shard partitions, the scatter buffer, and one core.BatchScratch per
// shard. The zero value is ready to use; a nil scratch makes SubmitBatch
// allocate. Outcomes returned against a scratch are valid until its next
// use. Not safe for concurrent use — hold one per caller.
type BatchScratch struct {
	perBlocks [][]int64
	perIdx    [][]int
	out       []core.Outcome
	core      []core.BatchScratch
}

func (sc *BatchScratch) ensure(k int) {
	if cap(sc.perBlocks) < k {
		sc.perBlocks = make([][]int64, k)
		sc.perIdx = make([][]int, k)
	}
	sc.perBlocks = sc.perBlocks[:k]
	sc.perIdx = sc.perIdx[:k]
	if len(sc.core) < k {
		sc.core = make([]core.BatchScratch, k)
	}
	for i := 0; i < k; i++ {
		sc.perBlocks[i] = sc.perBlocks[i][:0]
		sc.perIdx[i] = sc.perIdx[i][:0]
	}
}

func (sc *BatchScratch) outBuf(n int) []core.Outcome {
	if cap(sc.out) < n {
		sc.out = make([]core.Outcome, n)
	}
	return sc.out[:n]
}

// SubmitBatch groups simultaneous requests by owning shard, admits each
// group jointly (core.System.SubmitBatch semantics per shard), and
// scatters the outcomes back into input order with global device ids.
// With a non-nil scratch the steady state is allocation-free.
func (a *Array) SubmitBatch(arrival float64, blocks []int64, sc *BatchScratch) []core.Outcome {
	if len(blocks) == 0 {
		return nil
	}
	if sc == nil {
		sc = &BatchScratch{}
	}
	sc.ensure(len(a.systems))
	if len(a.systems) == 1 {
		return a.systems[0].SubmitBatch(arrival, blocks, &sc.core[0])
	}
	perBlocks, perIdx := sc.perBlocks, sc.perIdx
	for j, b := range blocks {
		i := a.ShardOf(b)
		perBlocks[i] = append(perBlocks[i], b)
		perIdx[i] = append(perIdx[i], j)
	}
	sc.perBlocks, sc.perIdx = perBlocks, perIdx // keep grown backing
	out := sc.outBuf(len(blocks))
	for i, bs := range perBlocks {
		if len(bs) == 0 {
			continue
		}
		off := a.translate[i]
		for k, o := range a.systems[i].SubmitBatch(arrival, bs, &sc.core[i]) {
			if off != 0 && !o.Rejected {
				o.Device += off
			}
			out[perIdx[i][k]] = o
		}
	}
	return out
}

// BurstScratch is per-caller reusable state for Array.SubmitBurst. The
// zero value is ready to use; a nil scratch makes SubmitBurst allocate.
// Outcomes returned against a scratch are valid until its next use. Not
// safe for concurrent use — hold one per caller (e.g. per connection).
type BurstScratch struct {
	perIdx [][]int32
	counts []int
	outs   []core.Outcome
	core   []core.BurstScratch // shard 0's scratch serves the K == 1 path
}

func (sc *BurstScratch) ensure(k int) {
	if cap(sc.perIdx) < k {
		sc.perIdx = make([][]int32, k)
	}
	sc.perIdx = sc.perIdx[:k]
	if cap(sc.counts) < k {
		sc.counts = make([]int, k)
	}
	sc.counts = sc.counts[:k]
	if len(sc.core) < 1 {
		sc.core = make([]core.BurstScratch, 1)
	}
	for i := 0; i < k; i++ {
		sc.perIdx[i] = sc.perIdx[i][:0]
		sc.counts[i] = 0
	}
}

func (sc *BurstScratch) outBuf(n int) []core.Outcome {
	if cap(sc.outs) < n {
		sc.outs = make([]core.Outcome, n)
	}
	return sc.outs[:n]
}

// PerShard returns how many of the last burst's requests were routed to
// each shard — the per-shard counters the server bumps once per burst
// instead of re-hashing every block. Valid until the scratch's next use.
func (sc *BurstScratch) PerShard() []int { return sc.counts }

// SubmitBurst routes a burst of simultaneous requests to their owning
// shards — each shard's ledger stripes are touched once per burst, not
// once per request — with outcomes in input order carrying global device
// ids. The partition is by index only and each shard writes its outcomes
// into the shared result slice in place (core.ConcurrentSystem.SubmitBurstScatter),
// so the fan-out copies no requests and no outcomes. Outcomes are
// bit-identical to routing each request through Submit/SubmitWrite in
// input order. With a non-nil scratch the steady state is allocation-free.
func (a *Array) SubmitBurst(arrival float64, reqs []core.BurstReq, sc *BurstScratch) []core.Outcome {
	if sc == nil {
		sc = &BurstScratch{}
	}
	sc.ensure(len(a.systems))
	if len(reqs) == 0 {
		return nil
	}
	if len(a.systems) == 1 {
		sc.counts[0] = len(reqs)
		return a.systems[0].SubmitBurst(arrival, reqs, &sc.core[0])
	}
	perIdx := sc.perIdx
	for j := range reqs {
		i := a.ShardOf(reqs[j].Block)
		perIdx[i] = append(perIdx[i], int32(j))
	}
	sc.perIdx = perIdx // keep grown backing
	out := sc.outBuf(len(reqs))
	for i, idx := range perIdx {
		sc.counts[i] = len(idx)
		if len(idx) == 0 {
			continue
		}
		a.systems[i].SubmitBurstScatter(arrival, reqs, idx, out)
		if off := a.translate[i]; off != 0 {
			for _, j := range idx {
				if !out[j].Rejected {
					out[j].Device += off
				}
			}
		}
	}
	return out
}

// SubmitBurstShard admits a burst whose requests all belong to shard sh
// (per Route/ShardOf) — the pre-partitioned entry point for callers that
// bucket requests by shard while decoding them, which keeps the engine's
// inner loop free of scatter indirection. Outcomes are in input order
// with global device ids, bit-identical to the same subsequence routed
// through SubmitBurst. The scratch belongs to the caller (one per
// (connection, shard)); nil allocates.
func (a *Array) SubmitBurstShard(sh int, arrival float64, reqs []core.BurstReq, sc *core.BurstScratch) []core.Outcome {
	outs := a.systems[sh].SubmitBurst(arrival, reqs, sc)
	if off := a.translate[sh]; off != 0 {
		for i := range outs {
			if !outs[i].Rejected {
				outs[i].Device += off
			}
		}
	}
	return outs
}

// S returns the aggregate admission limit: K·S(M) guaranteed requests per
// interval across the whole array.
func (a *Array) S() int {
	s := 0
	for _, cs := range a.systems {
		s += cs.S()
	}
	return s
}

// EffectiveS returns the aggregate current limit: each shard contributes
// S'(M) when degraded, S(M) otherwise — a failure only shrinks the budget
// of the shard owning the device.
func (a *Array) EffectiveS() int {
	s := 0
	for _, cs := range a.systems {
		s += cs.EffectiveS()
	}
	return s
}

// IntervalMS returns the QoS interval T (identical across shards).
func (a *Array) IntervalMS() float64 { return a.systems[0].IntervalMS() }

// Q returns the worst per-shard violation-probability estimate (0 for
// deterministic systems).
func (a *Array) Q() float64 {
	q := 0.0
	for _, cs := range a.systems {
		if v := cs.Q(); v > q {
			q = v
		}
	}
	return q
}

// ShardStats is one shard's slice of Stats.
type ShardStats struct {
	S          int     // full admission limit S(M)
	EffectiveS int     // current limit (S' when degraded)
	Alive      int     // devices in service (N when no monitor is attached)
	Q          float64 // statistical violation estimate
}

// Stats is an aggregated snapshot across all shards.
type Stats struct {
	Shards     int
	Devices    int
	S          int // ΣS per interval
	EffectiveS int // ΣS' per interval
	Alive      int // devices in service
	PerShard   []ShardStats
}

// Stats snapshots per-shard and aggregate admission state.
func (a *Array) Stats() Stats {
	st := Stats{
		Shards:   len(a.systems),
		Devices:  a.Devices(),
		PerShard: make([]ShardStats, len(a.systems)),
	}
	for i, cs := range a.systems {
		ss := ShardStats{S: cs.S(), EffectiveS: cs.EffectiveS(), Alive: a.devsPer, Q: cs.Q()}
		if m := a.mons[i]; m != nil {
			ss.Alive = m.Mask().Alive
		}
		st.S += ss.S
		st.EffectiveS += ss.EffectiveS
		st.Alive += ss.Alive
		st.PerShard[i] = ss
	}
	return st
}
