// Package shard scales the replication-based QoS framework past a single
// (N, c, 1) array: an Array hash-partitions the data-block space across K
// independent QoS engines, each with its own block design, interval
// ledger, device scheduler, and health tracker. The per-interval guarantee
// composes additively — every shard still admits at most its own S(M)
// requests per T-window onto its own N devices, so the aggregate array
// sustains K·S guaranteed requests per interval with K·N devices, and a
// device failure degrades only the shard that owns it (the other shards
// keep the full S).
//
// Devices are numbered globally: shard i's local device d is global device
// i·N + d. Submit outcomes, MAP responses, and health admin verbs all
// speak global ids; the translation is pure arithmetic, so the submit hot
// path stays zero-allocation.
package shard

import (
	"fmt"

	"flashqos/internal/core"
	"flashqos/internal/health"
)

// Array fans one Submit/SubmitWrite/SubmitBatch surface out across K
// independent concurrent QoS engines. All methods are safe for concurrent
// use (each shard is a core.ConcurrentSystem).
type Array struct {
	systems []*core.ConcurrentSystem
	mons    []*health.Monitor // non-nil entries after NewHealthMonitors
	devsPer int
}

// New builds an Array of k independent engines, each configured from cfg.
// The shards share the configuration (and so the design, guarantee and
// sampled table) but no state: every shard owns its ledger, scheduler and
// mapper.
func New(k int, cfg core.Config) (*Array, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: need >= 1 shard, got %d", k)
	}
	systems := make([]*core.System, k)
	for i := range systems {
		sys, err := core.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		systems[i] = sys
	}
	return FromSystems(systems...)
}

// FromSystems builds an Array over already-constructed systems, wrapping
// each for concurrent submission (the systems must not be used directly
// afterwards; see core.NewConcurrent). All systems must span the same
// number of devices — the global device numbering depends on it.
func FromSystems(systems ...*core.System) (*Array, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("shard: need >= 1 system")
	}
	a := &Array{
		systems: make([]*core.ConcurrentSystem, len(systems)),
		mons:    make([]*health.Monitor, len(systems)),
		devsPer: systems[0].Design().N,
	}
	for i, sys := range systems {
		if n := sys.Design().N; n != a.devsPer {
			return nil, fmt.Errorf("shard: shard %d spans %d devices, shard 0 spans %d", i, n, a.devsPer)
		}
		a.systems[i] = core.NewConcurrent(sys)
		a.mons[i] = sys.Health()
	}
	return a, nil
}

// NewHealthMonitors attaches one device-health monitor per shard (see
// core.System.NewHealthMonitor): detector thresholds and callbacks come
// from over, the device count, availability guard, latency baseline and
// rebuild work lists from each shard's design. Call before serving.
func (a *Array) NewHealthMonitors(rebuildRate float64, over health.Config) error {
	for i, cs := range a.systems {
		mon, err := cs.System().NewHealthMonitor(rebuildRate, over)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		a.mons[i] = mon
	}
	return nil
}

// Shards returns the number of shards K.
func (a *Array) Shards() int { return len(a.systems) }

// DevicesPerShard returns N, the device count of each shard's design.
func (a *Array) DevicesPerShard() int { return a.devsPer }

// Devices returns the global device count K·N.
func (a *Array) Devices() int { return len(a.systems) * a.devsPer }

// System returns shard i's concurrent engine.
func (a *Array) System(i int) *core.ConcurrentSystem { return a.systems[i] }

// Monitor returns shard i's health monitor (nil when none is attached).
func (a *Array) Monitor(i int) *health.Monitor { return a.mons[i] }

// HasHealth reports whether every shard has a health monitor attached —
// the condition for serving global health admin operations.
func (a *Array) HasHealth() bool {
	for _, m := range a.mons {
		if m == nil {
			return false
		}
	}
	return true
}

// GlobalDevice translates shard i's local device to its global id.
func (a *Array) GlobalDevice(shard, local int) int { return shard*a.devsPer + local }

// DeviceShard translates a global device id to (shard, local device).
func (a *Array) DeviceShard(global int) (shard, local int, ok bool) {
	if global < 0 || global >= a.Devices() {
		return 0, 0, false
	}
	return global / a.devsPer, global % a.devsPer, true
}

// splitmix64's finalizer: a full-avalanche multiplicative hash, so block
// ids that arrive in arithmetic progressions (the common trace shape)
// still spread uniformly across shards.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Route returns the partition owning block among n equal partitions — the
// hash-partitioning rule shared by in-process sharding (ShardOf) and the
// qosproxy router tier, so any layer can predict block placement.
func Route(block int64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(mix(uint64(block)) % uint64(n))
}

// ShardOf returns the shard owning a data block.
func (a *Array) ShardOf(block int64) int {
	return Route(block, len(a.systems))
}

// Submit routes one block read to its owning shard. The outcome's Device
// is translated to the global numbering. Zero allocations in steady state
// (the pinned sharded hot path).
func (a *Array) Submit(arrival float64, block int64) core.Outcome {
	i := a.ShardOf(block)
	out := a.systems[i].Submit(arrival, block)
	if !out.Rejected {
		out.Device += i * a.devsPer
	}
	return out
}

// SubmitWrite routes one block write to its owning shard.
func (a *Array) SubmitWrite(arrival float64, block int64) core.Outcome {
	i := a.ShardOf(block)
	out := a.systems[i].SubmitWrite(arrival, block)
	if !out.Rejected {
		out.Device += i * a.devsPer
	}
	return out
}

// SubmitBatch groups simultaneous requests by owning shard, admits each
// group jointly (core.System.SubmitBatch semantics per shard), and
// scatters the outcomes back into input order with global device ids.
func (a *Array) SubmitBatch(arrival float64, blocks []int64) []core.Outcome {
	if len(blocks) == 0 {
		return nil
	}
	if len(a.systems) == 1 {
		return a.systems[0].SubmitBatch(arrival, blocks)
	}
	perBlocks := make([][]int64, len(a.systems))
	perIdx := make([][]int, len(a.systems))
	for j, b := range blocks {
		i := a.ShardOf(b)
		perBlocks[i] = append(perBlocks[i], b)
		perIdx[i] = append(perIdx[i], j)
	}
	out := make([]core.Outcome, len(blocks))
	for i, bs := range perBlocks {
		if len(bs) == 0 {
			continue
		}
		for k, o := range a.systems[i].SubmitBatch(arrival, bs) {
			if !o.Rejected {
				o.Device += i * a.devsPer
			}
			out[perIdx[i][k]] = o
		}
	}
	return out
}

// S returns the aggregate admission limit: K·S(M) guaranteed requests per
// interval across the whole array.
func (a *Array) S() int {
	s := 0
	for _, cs := range a.systems {
		s += cs.S()
	}
	return s
}

// EffectiveS returns the aggregate current limit: each shard contributes
// S'(M) when degraded, S(M) otherwise — a failure only shrinks the budget
// of the shard owning the device.
func (a *Array) EffectiveS() int {
	s := 0
	for _, cs := range a.systems {
		s += cs.EffectiveS()
	}
	return s
}

// IntervalMS returns the QoS interval T (identical across shards).
func (a *Array) IntervalMS() float64 { return a.systems[0].IntervalMS() }

// Q returns the worst per-shard violation-probability estimate (0 for
// deterministic systems).
func (a *Array) Q() float64 {
	q := 0.0
	for _, cs := range a.systems {
		if v := cs.Q(); v > q {
			q = v
		}
	}
	return q
}

// ShardStats is one shard's slice of Stats.
type ShardStats struct {
	S          int     // full admission limit S(M)
	EffectiveS int     // current limit (S' when degraded)
	Alive      int     // devices in service (N when no monitor is attached)
	Q          float64 // statistical violation estimate
}

// Stats is an aggregated snapshot across all shards.
type Stats struct {
	Shards     int
	Devices    int
	S          int // ΣS per interval
	EffectiveS int // ΣS' per interval
	Alive      int // devices in service
	PerShard   []ShardStats
}

// Stats snapshots per-shard and aggregate admission state.
func (a *Array) Stats() Stats {
	st := Stats{
		Shards:   len(a.systems),
		Devices:  a.Devices(),
		PerShard: make([]ShardStats, len(a.systems)),
	}
	for i, cs := range a.systems {
		ss := ShardStats{S: cs.S(), EffectiveS: cs.EffectiveS(), Alive: a.devsPer, Q: cs.Q()}
		if m := a.mons[i]; m != nil {
			ss.Alive = m.Mask().Alive
		}
		st.S += ss.S
		st.EffectiveS += ss.EffectiveS
		st.Alive += ss.Alive
		st.PerShard[i] = ss
	}
	return st
}
