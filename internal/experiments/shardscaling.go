package experiments

import (
	"fmt"
	"math"
	"time"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/shard"
)

// ShardScalingRow is one shard count's slice of the scaling sweep.
type ShardScalingRow struct {
	Shards     int
	Devices    int
	AggregateS int // K·S(M) guaranteed admissions per interval

	Offered   int     // requests offered over the horizon
	HorizonMS float64 // virtual-time horizon driven

	// AdmittedInHorizon counts requests admitted inside the horizon. Under
	// saturating load the deterministic controller fills every T-window to
	// exactly its limit, so this is the array's in-guarantee capacity —
	// the deterministic throughput metric the >2x scaling claim rests on.
	AdmittedInHorizon int
	GuaranteedPerMS   float64 // AdmittedInHorizon / HorizonMS
	CapacityBound     int     // ceil(H/T) · K·S, the admission invariant's ceiling

	// WallOpsPerSec is the measured submit rate of the sweep loop itself
	// (host-dependent; reported for context, not asserted).
	WallOpsPerSec float64
}

// String renders a row for qosbench.
func (r ShardScalingRow) String() string {
	return fmt.Sprintf("K=%d devices=%2d S=%2d admitted=%6d/%d cap=%6d guaranteed=%8.1f req/ms wall=%.0f ops/s",
		r.Shards, r.Devices, r.AggregateS, r.AdmittedInHorizon, r.Offered,
		r.CapacityBound, r.GuaranteedPerMS, r.WallOpsPerSec)
}

// ShardScaling drives an open-loop overload — offered requests spread
// uniformly over a virtual-time horizon, far past one array's S/T
// capacity — at each shard count and measures the in-guarantee admission
// throughput. Each shard admits up to S per interval independently, so
// capacity composes additively: K shards sustain K·S per interval, and
// the admitted-in-horizon count scales ~linearly in K while the admission
// invariant (never above the per-window limit) holds per shard.
//
// Requests are submitted from one goroutine at deterministic virtual
// arrivals, so the admitted counts are exactly reproducible; wall-clock
// throughput is reported alongside but depends on the host.
func ShardScaling(shardCounts []int, horizonMS float64, offered int) ([]ShardScalingRow, error) {
	if horizonMS <= 0 || offered <= 0 {
		return nil, fmt.Errorf("shardscaling: need positive horizon and offered load")
	}
	rows := make([]ShardScalingRow, 0, len(shardCounts))
	for _, k := range shardCounts {
		arr, err := shard.New(k, core.Config{Design: design.Paper931()})
		if err != nil {
			return nil, err
		}
		dt := horizonMS / float64(offered)
		admitted := 0
		start := time.Now()
		for i := 0; i < offered; i++ {
			out := arr.Submit(float64(i)*dt, int64(i))
			if !out.Rejected && out.Admitted < horizonMS {
				admitted++
			}
		}
		wall := time.Since(start)
		windows := int(math.Ceil(horizonMS / arr.IntervalMS()))
		rows = append(rows, ShardScalingRow{
			Shards:            k,
			Devices:           arr.Devices(),
			AggregateS:        arr.S(),
			Offered:           offered,
			HorizonMS:         horizonMS,
			AdmittedInHorizon: admitted,
			GuaranteedPerMS:   float64(admitted) / horizonMS,
			CapacityBound:     windows * arr.S(),
			WallOpsPerSec:     float64(offered) / wall.Seconds(),
		})
	}
	return rows, nil
}
