package experiments

import (
	"container/heap"
	"math/rand"
	"sort"

	"flashqos/internal/admission"
	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/stats"
)

// MClockRow summarizes one scheduler's treatment of the victim tenant.
type MClockRow struct {
	System       string
	VictimAvgMS  float64 // arrival-to-completion latency
	VictimP99MS  float64
	VictimMaxMS  float64
	VictimFlatNs bool // post-admission response always one service time
}

// AblationMClock contrasts the paper's admission-control QoS with an
// mClock-style proportional-share scheduler under a bursty aggressor: a
// steady victim tenant shares the array with a tenant that emits intense
// bursts. mClock (with a reservation for the victim) shapes rates, so the
// victim keeps its throughput but individual requests queue behind
// in-flight work during bursts; the paper's QoS keeps every admitted
// request at exactly one service time but its FCFS admission makes the
// victim wait out full windows during bursts. The two systems protect
// different things — rate versus response time — which is the gap the
// paper positions itself in.
func AblationMClock(seed int64) ([]MClockRow, error) {
	const (
		service  = 0.132507
		duration = 50.0 // ms
	)
	rng := rand.New(rand.NewSource(seed))
	type req struct {
		at     float64
		victim bool
		block  int64
	}
	var reqs []req
	// Victim: steady Poisson at 2/ms.
	t := 0.0
	for {
		t += rng.ExpFloat64() / 2
		if t >= duration {
			break
		}
		reqs = append(reqs, req{at: t, victim: true, block: rng.Int63n(200)})
	}
	// Aggressor: 40/ms bursts of 2 ms every 10 ms.
	for burst := 5.0; burst < duration; burst += 10 {
		t = burst
		for {
			t += rng.ExpFloat64() / 40
			if t >= burst+2 {
				break
			}
			reqs = append(reqs, req{at: t, block: 1000 + rng.Int63n(200)})
		}
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].at < reqs[j].at })

	var rows []MClockRow

	// --- Paper QoS (deterministic, FCFS) ---
	{
		sys, err := core.New(core.Config{Design: design.Paper931(), DisableFIM: true})
		if err != nil {
			return nil, err
		}
		var lat stats.Summary
		var all []float64
		flat := true
		for _, r := range reqs {
			out := sys.Submit(r.at, r.block)
			if out.Response() > service+1e-9 {
				flat = false
			}
			if r.victim {
				l := out.Finish - r.at
				lat.Add(l)
				all = append(all, l)
			}
		}
		rows = append(rows, MClockRow{
			System:      "paper QoS (deterministic)",
			VictimAvgMS: lat.Mean(), VictimP99MS: stats.Percentile(all, 99), VictimMaxMS: lat.Max(),
			VictimFlatNs: flat,
		})
	}

	// --- mClock over 9 parallel servers ---
	{
		mc, err := admission.NewMClock(9 / service)
		if err != nil {
			return nil, err
		}
		if err := mc.AddTenant("victim", 2, 0, 1); err != nil {
			return nil, err
		}
		if err := mc.AddTenant("aggressor", 0, 0, 1); err != nil {
			return nil, err
		}
		servers := &floatHeap{}
		for i := 0; i < 9; i++ {
			heap.Push(servers, 0.0)
		}
		var lat stats.Summary
		var all []float64
		arrival := map[int64]float64{}
		victim := map[int64]bool{}
		ri := 0
		now := 0.0
		served := 0
		for served < len(reqs) {
			// Feed arrivals up to now.
			for ri < len(reqs) && reqs[ri].at <= now {
				name := "aggressor"
				if reqs[ri].victim {
					name = "victim"
				}
				id := int64(ri)
				arrival[id] = reqs[ri].at
				victim[id] = reqs[ri].victim
				if err := mc.Submit(name, id, reqs[ri].at); err != nil {
					return nil, err
				}
				ri++
			}
			_, id, ok := mc.Dispatch(now)
			if !ok {
				// Idle: advance to the next arrival.
				if ri < len(reqs) {
					now = reqs[ri].at
					continue
				}
				break
			}
			free := heap.Pop(servers).(float64)
			start := now
			if free > start {
				start = free
			}
			finish := start + service
			heap.Push(servers, finish)
			if victim[id] {
				l := finish - arrival[id]
				lat.Add(l)
				all = append(all, l)
			}
			served++
			// Next decision point: when the earliest server frees or a new
			// arrival lands, whichever first.
			next := (*servers)[0]
			if ri < len(reqs) && reqs[ri].at < next {
				next = reqs[ri].at
			}
			if next > now {
				now = next
			}
		}
		rows = append(rows, MClockRow{
			System:      "mClock (reservation 2/ms)",
			VictimAvgMS: lat.Mean(), VictimP99MS: stats.Percentile(all, 99), VictimMaxMS: lat.Max(),
			VictimFlatNs: false,
		})
	}
	return rows, nil
}

// floatHeap is a min-heap of times.
type floatHeap []float64

func (h floatHeap) Len() int            { return len(h) }
func (h floatHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h floatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *floatHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}
