package experiments

import (
	"math/rand"
	"sort"

	"flashqos/internal/admission"
	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/stats"
)

// MClockRow summarizes one configuration's treatment of the victim tenant.
type MClockRow struct {
	System       string
	VictimAvgMS  float64 // arrival-to-completion latency, admitted requests
	VictimP99MS  float64
	VictimMaxMS  float64
	VictimFlatNs bool // post-admission response always one service time
	// AggressorShaped counts aggressor requests the tenant gate refused
	// over-limit (0 when no gate is installed).
	AggressorShaped int
}

// AblationMClock contrasts the paper's tenant-blind admission with the same
// admission composed behind the mClock-style tenant gate, under a bursty
// aggressor: a steady victim tenant shares the array with a tenant that
// emits intense bursts. Tenant-blind FCFS admits the whole burst, so the
// victim's arrival-to-completion latency stretches while devices drain the
// aggressor's backlog. The gate gives the victim a reserved slice of every
// S-window and caps the aggressor's per-window arrivals, so the burst is
// clipped at admission and the victim's latency stays near one service
// time. The property the refactor preserves is the paper's headline: in
// both rows every admitted request still completes in exactly one service
// time after admission — the gate shapes who is admitted, never what
// admission guarantees.
func AblationMClock(seed int64) ([]MClockRow, error) {
	const (
		service  = 0.132507
		duration = 50.0 // ms
	)
	rng := rand.New(rand.NewSource(seed))
	type req struct {
		at     float64
		victim bool
		block  int64
	}
	var reqs []req
	// Victim: steady Poisson at 2/ms.
	t := 0.0
	for {
		t += rng.ExpFloat64() / 2
		if t >= duration {
			break
		}
		reqs = append(reqs, req{at: t, victim: true, block: rng.Int63n(200)})
	}
	// Aggressor: 80/ms bursts of 2 ms every 10 ms — past the array's
	// service rate, so unshaped bursts build a real backlog.
	for burst := 5.0; burst < duration; burst += 10 {
		t = burst
		for {
			t += rng.ExpFloat64() / 80
			if t >= burst+2 {
				break
			}
			reqs = append(reqs, req{at: t, block: 1000 + rng.Int63n(200)})
		}
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].at < reqs[j].at })

	run := func(system string, specs []admission.TenantSpec) (MClockRow, error) {
		sys, err := core.New(core.Config{Design: design.Paper931(), DisableFIM: true})
		if err != nil {
			return MClockRow{}, err
		}
		victimIdx, aggressorIdx := int32(0), int32(0)
		if specs != nil {
			if err := sys.SetTenants(specs); err != nil {
				return MClockRow{}, err
			}
			victimIdx, aggressorIdx = 1, 2
		}
		var lat stats.Summary
		var all []float64
		flat := true
		shaped := 0
		for _, r := range reqs {
			tenant := aggressorIdx
			if r.victim {
				tenant = victimIdx
			}
			out := sys.SubmitTenant(r.at, r.block, tenant)
			if out.OverLimit {
				shaped++
				continue
			}
			if out.Rejected {
				continue
			}
			if out.Response() > service+1e-9 {
				flat = false
			}
			if r.victim {
				l := out.Finish - r.at
				lat.Add(l)
				all = append(all, l)
			}
		}
		return MClockRow{
			System:      system,
			VictimAvgMS: lat.Mean(), VictimP99MS: stats.Percentile(all, 99), VictimMaxMS: lat.Max(),
			VictimFlatNs:    flat,
			AggressorShaped: shaped,
		}, nil
	}

	blind, err := run("paper QoS, tenant-blind", nil)
	if err != nil {
		return nil, err
	}
	// Victim reserves 2 of the S=5 slots per window and the aggressor is
	// limited to 1 arrival per window — exactly its weighted share of the
	// surplus. The limit matters as much as the reservation: over-limit
	// arrivals are rejected at the gate (no ledger credit, no device
	// time), whereas over-cap arrivals under the Delay policy spill into
	// future windows and stake the device timeline, which the FCFS
	// scheduler never back-fills. Clipping the burst at its share is what
	// keeps the victim's windows genuinely free.
	gated, err := run("paper QoS + tenant gate", []admission.TenantSpec{
		{Name: "victim", Reserve: 2, Weight: 3},
		{Name: "aggressor", Limit: 1, Weight: 1},
	})
	if err != nil {
		return nil, err
	}
	return []MClockRow{blind, gated}, nil
}
