package experiments

import (
	"math/rand"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/flashsim"
	"flashqos/internal/stats"
)

// ArrayGCRow reports end-to-end QoS behaviour when the fixed-service
// abstraction leaks: the QoS controller steers requests assuming the
// constant read time, but the FTL-backed array realizes them with GC
// interference from background writes.
type ArrayGCRow struct {
	WriteFrac     float64
	PlannedMaxMS  float64 // controller's view: max post-admission response
	RealizedAvgMS float64 // array's view: actual read responses
	RealizedP99MS float64
	RealizedMaxMS float64
	GuaranteePct  float64 // % of reads realized within the 0.133 ms guarantee
	GCRuns        int64
}

// AblationArrayGC runs the full QoS pipeline (admission + design-theoretic
// steering) on an array of FTL-backed SSD modules with a background write
// stream. At writeFrac = 0 the realized responses equal the plan — the
// fixed-latency premise holds end to end. As writes grow, GC stalls make
// realized tails exceed the guarantee even though the controller's plan is
// flat, quantifying how far the paper's guarantees stretch beyond its
// read-only evaluation.
func AblationArrayGC(writeFracs []float64, requests int, seed int64) ([]ArrayGCRow, error) {
	var rows []ArrayGCRow
	for _, wf := range writeFracs {
		sys, err := core.New(core.Config{Design: design.Paper931(), DisableFIM: true})
		if err != nil {
			return nil, err
		}
		arr, err := flashsim.NewSSDArray(9, flashsim.SSDConfig{
			Channels: 2, PlanesPerChan: 2, BlocksPerPlane: 8, PagesPerBlock: 8,
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		universe := int64(300) // data blocks; maps into the 36 design rows

		// Pre-fill module-local pages so reads hit mapped data. Writes go
		// to each module's local address space (bucket id), mirroring that
		// each replica holds its own physical copy.
		tNow := 0.0
		for b := int64(0); b < universe; b++ {
			for _, dev := range sys.Replicas(b) {
				arr.Write(dev, tNow, b)
			}
			tNow += 0.5
		}
		start := tNow + 10

		var planned, realized stats.Summary
		var all []float64
		within := 0
		reads := 0
		t := start
		for i := 0; i < requests; i++ {
			t += 0.2 // spaced arrivals: the controller plan never queues
			b := rng.Int63n(universe)
			if rng.Float64() < wf {
				// Background write: all replicas updated, bypassing QoS
				// (the interference source, not the measured traffic).
				for _, dev := range sys.Replicas(b) {
					arr.Write(dev, t, b)
				}
				continue
			}
			out := sys.Submit(t, b)
			planned.Add(out.Response())
			fin := arr.Read(out.Device, out.Admitted, b)
			resp := fin - out.Admitted
			realized.Add(resp)
			all = append(all, resp)
			reads++
			if resp <= 0.133+1e-9 {
				within++
			}
		}
		row := ArrayGCRow{
			WriteFrac:     wf,
			PlannedMaxMS:  planned.Max(),
			RealizedAvgMS: realized.Mean(),
			RealizedP99MS: stats.Percentile(all, 99),
			RealizedMaxMS: realized.Max(),
			GCRuns:        arr.TotalGCRuns(),
		}
		if reads > 0 {
			row.GuaranteePct = 100 * float64(within) / float64(reads)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
