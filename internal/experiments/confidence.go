package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"flashqos/internal/stats"
)

// Metric is one named measurement from an experiment run.
type Metric struct {
	Name  string
	Value float64
}

// ConfidenceRow is a metric aggregated across seeds.
type ConfidenceRow struct {
	Name     string
	Mean     float64
	Std      float64
	Min, Max float64
	Seeds    int
}

// String formats the row as mean ± std.
func (r ConfidenceRow) String() string {
	return fmt.Sprintf("%-24s %10.4f ± %.4f  [%.4f, %.4f]  (%d seeds)", r.Name, r.Mean, r.Std, r.Min, r.Max, r.Seeds)
}

// MultiSeed runs an experiment across several seeds in parallel and
// aggregates every metric it reports. Synthesized workloads make the
// published single-trace numbers one draw from a distribution; this
// harness reports the distribution, which a reproduction should.
func MultiSeed(seeds []int64, run func(seed int64) ([]Metric, error)) ([]ConfidenceRow, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: no seeds")
	}
	results := make([][]Metric, len(seeds))
	errs := make([]error, len(seeds))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = run(seed)
		}(i, seed)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seeds[i], err)
		}
	}
	// Aggregate by metric name, preserving first-seen order.
	var order []string
	agg := map[string]*stats.Summary{}
	for _, ms := range results {
		for _, m := range ms {
			if agg[m.Name] == nil {
				agg[m.Name] = &stats.Summary{}
				order = append(order, m.Name)
			}
			agg[m.Name].Add(m.Value)
		}
	}
	rows := make([]ConfidenceRow, 0, len(order))
	for _, name := range order {
		s := agg[name]
		rows = append(rows, ConfidenceRow{
			Name: name, Mean: s.Mean(), Std: s.Std(), Min: s.Min(), Max: s.Max(), Seeds: s.N(),
		})
	}
	return rows, nil
}

// Seeds returns n deterministic seeds derived from a base.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)*7919
	}
	return out
}

// HeadlineMetrics runs the two deterministic-QoS headline experiments
// (Figs 8 and 9) for one seed and returns their key numbers, for use with
// MultiSeed.
func HeadlineMetrics(scale float64) func(int64) ([]Metric, error) {
	return func(seed int64) ([]Metric, error) {
		var out []Metric
		for _, w := range []Workload{Exchange, TPCE} {
			res, err := DeterministicQoS(w, seed, scale)
			if err != nil {
				return nil, err
			}
			out = append(out,
				Metric{fmt.Sprintf("%s delayed %%", w), res.QoS.DelayedPct},
				Metric{fmt.Sprintf("%s avg delay ms", w), res.QoS.AvgDelay},
				Metric{fmt.Sprintf("%s orig max ms", w), res.Original.MaxResponse},
			)
			_, match, err := Fig11FIMBenefit(w, seed, scale)
			if err != nil {
				return nil, err
			}
			out = append(out, Metric{fmt.Sprintf("%s FIM match %%", w), match})
		}
		return out, nil
	}
}
