package experiments

import (
	"math/rand"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/stats"
)

// TenantRow reports one tenant's service under the shared QoS array.
type TenantRow struct {
	Tenant     int
	Requests   int
	DelayedPct float64
	AvgDelay   float64
}

// FairnessResult is the multi-tenant outcome.
type FairnessResult struct {
	Tenants   []TenantRow
	JainIndex float64 // fairness of per-tenant delayed%, 1.0 = perfectly fair
}

// AblationFairness runs several identical tenants against one QoS array
// (the storage-cloud setting of §I): each tenant issues Poisson reads over
// its own block range; all share the S-per-interval budget FCFS. The
// deterministic admission has no tenant awareness, so fairness emerges
// from FCFS alone — Jain's index across per-tenant delayed percentages
// quantifies it.
func AblationFairness(tenants, perTenant int, seed int64) (*FairnessResult, error) {
	sys, err := core.New(core.Config{Design: design.Paper931(), DisableFIM: true})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	type req struct {
		at     float64
		tenant int
		block  int64
	}
	var reqs []req
	for ti := 0; ti < tenants; ti++ {
		t := 0.0
		for i := 0; i < perTenant; i++ {
			t += rng.ExpFloat64() * 0.12 // per-tenant mean inter-arrival
			reqs = append(reqs, req{at: t, tenant: ti, block: int64(ti)*1000 + rng.Int63n(200)})
		}
	}
	// Merge streams by arrival.
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && reqs[j].at < reqs[j-1].at; j-- {
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
		}
	}
	delayed := make([]int, tenants)
	count := make([]int, tenants)
	delaySum := make([]stats.Summary, tenants)
	for _, r := range reqs {
		out := sys.Submit(r.at, r.block)
		count[r.tenant]++
		if out.Delayed {
			delayed[r.tenant]++
			delaySum[r.tenant].Add(out.Delay)
		}
	}
	res := &FairnessResult{}
	var sum, sumSq float64
	for ti := 0; ti < tenants; ti++ {
		pct := 0.0
		if count[ti] > 0 {
			pct = 100 * float64(delayed[ti]) / float64(count[ti])
		}
		res.Tenants = append(res.Tenants, TenantRow{
			Tenant: ti, Requests: count[ti], DelayedPct: pct, AvgDelay: delaySum[ti].Mean(),
		})
		sum += pct
		sumSq += pct * pct
	}
	if sumSq > 0 {
		res.JainIndex = sum * sum / (float64(tenants) * sumSq)
	} else {
		res.JainIndex = 1 // nobody delayed: trivially fair
	}
	return res, nil
}
