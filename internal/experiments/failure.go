package experiments

import (
	"fmt"

	"flashqos/internal/decluster"
	"flashqos/internal/design"
	"flashqos/internal/maxflow"
	"flashqos/internal/stats"
)

// FailureRow reports retrieval behaviour with failed devices.
type FailureRow struct {
	Failed      int     // devices removed
	Available   float64 // % of buckets still retrievable (some replica alive)
	AvgAccesses float64 // avg retrieval cost of S-sized requests on survivors
	MaxAccesses int
	GuaranteeOK float64 // % of trials still within the no-failure guarantee M
}

// AblationFailure exercises the reliability role of replication (paper
// §II-B1): with c = 3 copies placed by the (9,3,1) design, any one or two
// failed flash modules leave every bucket readable, and retrieval degrades
// gracefully — the failed devices' load shifts to the survivors. Requests
// of the guarantee size S(1) = 5 are scheduled on the surviving replicas.
func AblationFailure(maxFailed, trials int, seed int64) ([]FailureRow, error) {
	dt, err := decluster.NewDesignTheoretic(design.Paper931())
	if err != nil {
		return nil, err
	}
	if maxFailed >= dt.Copies() {
		return nil, fmt.Errorf("experiments: failing %d >= c devices can lose data", maxFailed)
	}
	rng := newRand(seed)
	var rows []FailureRow
	solver := maxflow.NewSolver(5, 9) // reused across failure counts and trials
	for f := 0; f <= maxFailed; f++ {
		row := FailureRow{Failed: f}
		var acc stats.Summary
		okWithin := 0
		availableBuckets := 0
		// Availability: every bucket must keep >= 1 replica.
		failedSet := map[int]bool{}
		for i := 0; i < f; i++ {
			failedSet[i] = true // deterministic worst-ish set; any f < c works
		}
		for b := 0; b < dt.Rows(); b++ {
			alive := 0
			for _, d := range dt.Replicas(b) {
				if !failedSet[d] {
					alive++
				}
			}
			if alive > 0 {
				availableBuckets++
			}
		}
		row.Available = 100 * float64(availableBuckets) / float64(dt.Rows())

		for trial := 0; trial < trials; trial++ {
			perm := rng.Perm(36)
			replicas := make([][]int, 5)
			for i := range replicas {
				var alive []int
				for _, d := range dt.Replicas(perm[i]) {
					if !failedSet[d] {
						alive = append(alive, d)
					}
				}
				replicas[i] = alive
			}
			m, _ := solver.Solve(replicas, 9)
			acc.Add(float64(m))
			if m > row.MaxAccesses {
				row.MaxAccesses = m
			}
			if m <= 1 { // the no-failure guarantee for 5 buckets
				okWithin++
			}
		}
		row.AvgAccesses = acc.Mean()
		row.GuaranteeOK = 100 * float64(okWithin) / float64(trials)
		rows = append(rows, row)
	}
	return rows, nil
}
