package experiments

import (
	"math"

	"flashqos/internal/core"
	"flashqos/internal/decluster"
	"flashqos/internal/design"
	"flashqos/internal/maxflow"
	"flashqos/internal/retrieval"
	"flashqos/internal/stats"
)

// GuaranteeRow compares the closed-form guarantees of design-theoretic and
// orthogonal allocation for one request size (paper §II-B3).
type GuaranteeRow struct {
	Buckets        int
	DesignAccesses int // smallest M with (c-1)M²+cM >= b, c = 2
	OrthAccesses   int // ⌈√b⌉
}

// GuaranteeComparison tabulates the §II-B3 argument for c = 2: design-
// theoretic retrieves 3 buckets in 1 access, 8 in 2, 15 in 3, while
// orthogonal needs ⌈√b⌉ = 2, 3, 4 for the same sizes.
func GuaranteeComparison(maxBuckets int) []GuaranteeRow {
	d := &design.Design{N: 7, C: 2, Lambda: 1} // only S(M) math is used
	rows := make([]GuaranteeRow, 0, maxBuckets)
	for b := 1; b <= maxBuckets; b++ {
		rows = append(rows, GuaranteeRow{
			Buckets:        b,
			DesignAccesses: d.AccessesFor(b),
			OrthAccesses:   int(math.Ceil(math.Sqrt(float64(b)))),
		})
	}
	return rows
}

// QueryKind selects the query shape for the scheme ablation.
type QueryKind int

const (
	// Arbitrary queries pick buckets uniformly at random.
	Arbitrary QueryKind = iota
	// Range queries pick a contiguous run of bucket numbers.
	Range
)

// SchemeCostRow reports the retrieval cost distribution of one scheme
// under one query shape.
type SchemeCostRow struct {
	Scheme  string
	Query   QueryKind
	Size    int
	AvgCost float64
	MaxCost int
}

// AblationSchemes measures average and worst observed retrieval cost for
// every implemented declustering scheme under arbitrary and range queries
// of the given size (N=9 devices; 2-copy orthogonal is included with its
// own pool). This is the empirical version of the paper's §II-B2 scheme
// discussion: design-theoretic should dominate on arbitrary queries while
// periodic/partitioned close the gap only on range queries.
func AblationSchemes(size, trials int, seed int64) ([]SchemeCostRow, error) {
	dt, err := decluster.NewDesignTheoretic(design.Paper931())
	if err != nil {
		return nil, err
	}
	mir, err := decluster.NewRAID1Mirrored(9, 3)
	if err != nil {
		return nil, err
	}
	ch, err := decluster.NewRAID1Chained(9, 3)
	if err != nil {
		return nil, err
	}
	rda, err := decluster.NewRDA(9, 3, 36, seed)
	if err != nil {
		return nil, err
	}
	part, err := decluster.NewPartitioned(9, 3)
	if err != nil {
		return nil, err
	}
	per, err := decluster.NewDependentPeriodic(9, 3, 3)
	if err != nil {
		return nil, err
	}
	orth, err := decluster.NewOrthogonal(9)
	if err != nil {
		return nil, err
	}
	schemes := []decluster.Allocator{dt, mir, ch, rda, part, per, orth}

	rng := newRand(seed)
	// All schemes serve the same 36-bucket pool (as in Table III); schemes
	// with fewer placement rows wrap, which is exactly where their
	// parallelism collapses.
	const pool = 36
	var rows []SchemeCostRow
	for _, q := range []QueryKind{Arbitrary, Range} {
		for _, a := range schemes {
			row := SchemeCostRow{Scheme: a.Name(), Query: q, Size: size}
			var sum stats.Summary
			solver := maxflow.NewSolver(size, a.Devices()) // reused across trials
			for t := 0; t < trials; t++ {
				replicas := make([][]int, size)
				switch q {
				case Arbitrary:
					perm := rng.Perm(pool)
					for i := range replicas {
						replicas[i] = a.Replicas(perm[i%pool])
					}
				case Range:
					start := rng.Intn(pool)
					for i := range replicas {
						replicas[i] = a.Replicas((start + i) % pool)
					}
				}
				m, _ := solver.Solve(replicas, a.Devices())
				sum.Add(float64(m))
				if m > row.MaxCost {
					row.MaxCost = m
				}
			}
			row.AvgCost = sum.Mean()
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FIMAblationResult compares FIM-driven block mapping against the plain
// modulo mapping on the same workload.
type FIMAblationResult struct {
	WithFIM    *core.Report
	ModuloOnly *core.Report
}

// AblationFIM quantifies the benefit of the §IV-A mining: the same
// workload replayed with FIM-driven remapping versus modulo-only mapping.
// Frequently co-requested blocks that collide under modulo are separated
// by FIM, reducing delayed requests.
func AblationFIM(w Workload, seed int64, scale float64) (*FIMAblationResult, error) {
	tr, err := makeTrace(w, seed, scale)
	if err != nil {
		return nil, err
	}
	d := workloadDesign(w)
	withFIM, err := core.New(core.Config{Design: d, FIMMinSupport: 1})
	if err != nil {
		return nil, err
	}
	modOnly, err := core.New(core.Config{Design: d, DisableFIM: true})
	if err != nil {
		return nil, err
	}
	return &FIMAblationResult{
		WithFIM:    withFIM.ReplayTrace(tr),
		ModuloOnly: modOnly.ReplayTrace(tr),
	}, nil
}

// MaxflowAblationRow reports how often the greedy design-theoretic
// retrieval needed the max-flow fallback at one request size.
type MaxflowAblationRow struct {
	Size        int
	FallbackPct float64 // % of trials where greedy was above the lower bound
	GreedyAvg   float64 // average greedy accesses
	OptimalAvg  float64 // average optimal accesses
	GreedyWorse float64 // % of trials where greedy was strictly worse than optimal
}

// AblationMaxflow measures the §III-C design choice: greedy first, max-flow
// only as a fallback. For sizes within the guarantee the fallback should
// be rare; past S it grows.
func AblationMaxflow(maxSize, trials int, seed int64) ([]MaxflowAblationRow, error) {
	dt, err := decluster.NewDesignTheoretic(design.Paper931())
	if err != nil {
		return nil, err
	}
	rng := newRand(seed)
	var rows []MaxflowAblationRow
	sched := retrieval.NewScheduler() // reused across sizes and trials
	for size := 1; size <= maxSize; size++ {
		row := MaxflowAblationRow{Size: size}
		fallback, worse := 0, 0
		var gSum, oSum float64
		for t := 0; t < trials; t++ {
			replicas := make([][]int, size)
			for i := range replicas {
				replicas[i] = dt.Replicas(rng.Intn(36))
			}
			g := sched.Greedy(replicas, 9).Accesses
			o := sched.Optimal(replicas, 9).Accesses
			lb := (size + 8) / 9
			if g > lb {
				fallback++
			}
			if g > o {
				worse++
			}
			gSum += float64(g)
			oSum += float64(o)
		}
		row.FallbackPct = 100 * float64(fallback) / float64(trials)
		row.GreedyWorse = 100 * float64(worse) / float64(trials)
		row.GreedyAvg = gSum / float64(trials)
		row.OptimalAvg = oSum / float64(trials)
		rows = append(rows, row)
	}
	return rows, nil
}

// DesignSizeRow describes the guarantee of one design.
type DesignSizeRow struct {
	N, C    int
	Name    string
	S1, S2  int // S(1), S(2)
	Buckets int // rotation capacity
}

// AblationDesignSize tabulates how the copy and device counts tune the
// guarantee (paper §II-B3: "a suitable design providing the requested
// guarantees can be chosen easily by changing the copy and the device
// count"). All returned designs are constructed and verified.
func AblationDesignSize() ([]DesignSizeRow, error) {
	params := [][2]int{{7, 3}, {9, 3}, {13, 3}, {15, 3}, {19, 3}, {21, 3}, {13, 4}, {16, 4}, {21, 5}, {25, 5}}
	var rows []DesignSizeRow
	for _, p := range params {
		d, err := design.ForParams(p[0], p[1])
		if err != nil {
			return nil, err
		}
		if err := d.Verify(); err != nil {
			return nil, err
		}
		rows = append(rows, DesignSizeRow{
			N: d.N, C: d.C, Name: d.Name,
			S1: d.S(1), S2: d.S(2), Buckets: d.MaxBuckets(),
		})
	}
	return rows, nil
}
