package experiments

import (
	"fmt"
	"io"
)

// ReportConfig sizes the full-report run.
type ReportConfig struct {
	Seed     int64
	Scale    float64 // trace scale (default 0.05)
	Requests int     // synthetic requests for Table III (default 10000)
	Trials   int     // sampling trials (default 20000)
	Seeds    int     // seeds for the confidence section (default 3)
}

func (c *ReportConfig) applyDefaults() {
	if c.Scale == 0 {
		c.Scale = 0.05
	}
	if c.Requests == 0 {
		c.Requests = 10000
	}
	if c.Trials == 0 {
		c.Trials = 20000
	}
	if c.Seeds == 0 {
		c.Seeds = 3
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// WriteReport regenerates the paper's evaluation as a self-contained
// markdown document: every table and figure, with the configuration
// recorded, ready to diff against EXPERIMENTS.md's claims.
func WriteReport(w io.Writer, cfg ReportConfig) error {
	cfg.applyDefaults()
	p := func(format string, args ...interface{}) {
		fmt.Fprintf(w, format, args...)
	}
	p("# flashqos evaluation report\n\n")
	p("Configuration: seed=%d scale=%g requests=%d trials=%d seeds=%d\n\n",
		cfg.Seed, cfg.Scale, cfg.Requests, cfg.Trials, cfg.Seeds)

	// Fig 4.
	tab, err := Fig4Probabilities(cfg.Trials, cfg.Seed)
	if err != nil {
		return err
	}
	p("## Fig 4 — optimal-retrieval probabilities (9,3,1)\n\n")
	p("| k | P_k |\n|---|---|\n")
	for k := 1; k <= 10; k++ {
		p("| %d | %.4f |\n", k, tab.At(k))
	}
	p("\n")

	// Table II.
	t2, err := TableIIRetrievalComparison(5000, cfg.Seed)
	if err != nil {
		return err
	}
	p("## Table II — DTR vs OLR accesses\n\n| S | DTR | OLR |\n|---|---|---|\n")
	rangeStr := func(lo, hi int) string {
		if lo == hi {
			return fmt.Sprintf("%d", lo)
		}
		return fmt.Sprintf("%d or %d", lo, hi)
	}
	for _, r := range t2 {
		p("| %d | %s | %s |\n", r.S, rangeStr(r.DTRMin, r.DTRMax), rangeStr(r.OLRMin, r.OLRMax))
	}
	p("\n")

	// Table III.
	t3, err := TableIIIAllocationComparison(cfg.Requests, cfg.Seed)
	if err != nil {
		return err
	}
	p("## Table III — allocation schemes, response times (ms)\n\n")
	p("| k | T | scheme | avg | std | max | meets |\n|---|---|---|---|---|---|---|\n")
	for _, r := range t3 {
		p("| %d | %.3f | %s | %.3f | %.3f | %.3f | %v |\n",
			r.Case.RequestSize, r.Case.IntervalMS, r.Scheme, r.Avg, r.Std, r.Max, r.Met)
	}
	p("\n")

	// Figs 8/9.
	p("## Figs 8–9 — deterministic QoS vs original stand\n\n")
	p("| workload | qos max | orig avg | orig max | delayed %% | avg delay |\n|---|---|---|---|---|---|\n")
	for _, wl := range []Workload{Exchange, TPCE} {
		res, err := DeterministicQoS(wl, cfg.Seed, cfg.Scale)
		if err != nil {
			return err
		}
		p("| %s | %.4f | %.4f | %.4f | %.2f | %.4f |\n",
			wl, res.QoS.MaxResponse, res.Original.AvgResponse, res.Original.MaxResponse,
			res.QoS.DelayedPct, res.QoS.AvgDelay)
	}
	p("\n")

	// Fig 10.
	p("## Fig 10 — statistical QoS sweep\n\n")
	p("| workload | epsilon | delayed %% | avg response |\n|---|---|---|---|\n")
	for _, wl := range []Workload{Exchange, TPCE} {
		rows, err := Fig10Statistical(wl, Fig10Epsilons, cfg.Seed, cfg.Scale)
		if err != nil {
			return err
		}
		for _, r := range rows {
			p("| %s | %.4f | %.2f | %.6f |\n", wl, r.Epsilon, r.DelayedPct, r.AvgResponse)
		}
	}
	p("\n")

	// Fig 11.
	p("## Fig 11 — FIM benefit\n\n| workload | mean match %% |\n|---|---|\n")
	for _, wl := range []Workload{Exchange, TPCE} {
		_, mean, err := Fig11FIMBenefit(wl, cfg.Seed, cfg.Scale)
		if err != nil {
			return err
		}
		p("| %s | %.1f |\n", wl, mean)
	}
	p("\n")

	// Fig 12.
	p("## Fig 12 — online vs interval-aligned retrieval delay (ms)\n\n")
	p("| workload | online | aligned |\n|---|---|---|\n")
	for _, wl := range []Workload{Exchange, TPCE} {
		rows, err := Fig12RetrievalComparison(wl, cfg.Seed, cfg.Scale)
		if err != nil {
			return err
		}
		var on, al float64
		for _, r := range rows {
			on += r.OnlineAvgDelay
			al += r.AlignedAvgDelay
		}
		n := float64(len(rows))
		if n > 0 {
			p("| %s | %.4f | %.4f |\n", wl, on/n, al/n)
		}
	}
	p("\n")

	// Confidence.
	conf, err := MultiSeed(Seeds(cfg.Seed, cfg.Seeds), HeadlineMetrics(cfg.Scale))
	if err != nil {
		return err
	}
	p("## Headline metrics across %d seeds\n\n| metric | mean | std |\n|---|---|---|\n", cfg.Seeds)
	for _, r := range conf {
		p("| %s | %.4f | %.4f |\n", r.Name, r.Mean, r.Std)
	}
	p("\n")

	// Tenant gate vs tenant-blind admission under a bursty aggressor.
	mc, err := AblationMClock(cfg.Seed)
	if err != nil {
		return err
	}
	p("## Tenant gate — victim latency under a bursty aggressor (ms)\n\n")
	p("| system | avg | p99 | max | flat response | aggressor shaped |\n|---|---|---|---|---|---|\n")
	for _, r := range mc {
		p("| %s | %.4f | %.4f | %.4f | %v | %d |\n",
			r.System, r.VictimAvgMS, r.VictimP99MS, r.VictimMaxMS, r.VictimFlatNs, r.AggressorShaped)
	}
	p("\n")
	return nil
}
