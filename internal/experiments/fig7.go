package experiments

import (
	"fmt"
	"sort"

	"flashqos/internal/decluster"
	"flashqos/internal/design"
)

// Fig7Layout is one allocation scheme's placement tables, in the two views
// the paper's Fig 7 prints: where each block's copies live, and what each
// device stores.
type Fig7Layout struct {
	Scheme  string
	Buckets [][]int // Buckets[b] = devices holding bucket b's copies (copy order)
	Devices [][]int // Devices[d] = buckets stored on device d (ascending)
}

// Fig7Layouts reproduces Fig 7: the design-theoretic (9,3,1), RAID-1
// mirrored and RAID-1 chained allocations over the first `buckets` buckets
// (the paper prints 12; rotations extend each scheme to 36).
func Fig7Layouts(buckets int) ([]Fig7Layout, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("experiments: buckets must be >= 1")
	}
	dt, err := decluster.NewDesignTheoretic(design.Paper931())
	if err != nil {
		return nil, err
	}
	mir, err := decluster.NewRAID1Mirrored(9, 3)
	if err != nil {
		return nil, err
	}
	ch, err := decluster.NewRAID1Chained(9, 3)
	if err != nil {
		return nil, err
	}
	var out []Fig7Layout
	for _, a := range []decluster.Allocator{dt, mir, ch} {
		l := Fig7Layout{Scheme: a.Name(), Devices: make([][]int, a.Devices())}
		for b := 0; b < buckets; b++ {
			row := a.Replicas(b)
			cp := make([]int, len(row))
			copy(cp, row)
			l.Buckets = append(l.Buckets, cp)
			for _, d := range row {
				l.Devices[d] = append(l.Devices[d], b)
			}
		}
		for d := range l.Devices {
			sort.Ints(l.Devices[d])
		}
		out = append(out, l)
	}
	return out, nil
}
