package experiments

import (
	"math/rand"

	"flashqos/internal/decluster"
	"flashqos/internal/design"
	"flashqos/internal/maxflow"
	"flashqos/internal/stats"
)

// The paper's §II-B2 weighs declustering schemes by how they handle
// arbitrary, range and connected queries over a spatially arranged bucket
// grid — the workloads of the replicated-declustering literature it draws
// on. This ablation lays the bucket pool out as a 6×6 grid (matching the
// 36-bucket pool) and measures retrieval cost per scheme and query shape.

// SpatialQuery is a query shape over the bucket grid.
type SpatialQuery int

const (
	// SpatialArbitrary picks cells uniformly at random.
	SpatialArbitrary SpatialQuery = iota
	// SpatialRange picks an axis-aligned rectangle.
	SpatialRange
	// SpatialConnected grows a random connected region.
	SpatialConnected
)

// String implements fmt.Stringer.
func (q SpatialQuery) String() string {
	switch q {
	case SpatialArbitrary:
		return "arbitrary"
	case SpatialRange:
		return "range"
	default:
		return "connected"
	}
}

// SpatialRow is one scheme × query-shape measurement.
type SpatialRow struct {
	Scheme  string
	Query   SpatialQuery
	Size    int
	AvgCost float64
	MaxCost int
}

// spatialQueries generates bucket sets of the given size on a w×h grid.
func spatialQueries(q SpatialQuery, w, h, size, trials int, rng *rand.Rand) [][]int {
	out := make([][]int, 0, trials)
	cell := func(x, y int) int { return y*w + x }
	for t := 0; t < trials; t++ {
		switch q {
		case SpatialArbitrary:
			perm := rng.Perm(w * h)
			out = append(out, perm[:size])
		case SpatialRange:
			// Random rectangle with ~size cells, cropped to exactly size.
			rw := 1 + rng.Intn(w)
			rh := (size + rw - 1) / rw
			if rh > h {
				rh = h
				rw = (size + rh - 1) / rh
			}
			x0 := rng.Intn(w - rw + 1)
			y0 := rng.Intn(h - rh + 1)
			var cells []int
			for y := y0; y < y0+rh && len(cells) < size; y++ {
				for x := x0; x < x0+rw && len(cells) < size; x++ {
					cells = append(cells, cell(x, y))
				}
			}
			out = append(out, cells)
		case SpatialConnected:
			// Random BFS-ish growth from a seed cell.
			seen := map[int]bool{}
			var cells []int
			frontier := []int{cell(rng.Intn(w), rng.Intn(h))}
			for len(cells) < size && len(frontier) > 0 {
				i := rng.Intn(len(frontier))
				c := frontier[i]
				frontier = append(frontier[:i], frontier[i+1:]...)
				if seen[c] {
					continue
				}
				seen[c] = true
				cells = append(cells, c)
				x, y := c%w, c/w
				for _, nb := range [][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
					if nb[0] >= 0 && nb[0] < w && nb[1] >= 0 && nb[1] < h {
						if nc := cell(nb[0], nb[1]); !seen[nc] {
							frontier = append(frontier, nc)
						}
					}
				}
			}
			out = append(out, cells)
		}
	}
	return out
}

// AblationSpatialQueries measures retrieval cost (optimal accesses) for
// every scheme under the three query shapes on a 6×6 bucket grid. Expected
// shape (§II-B2): design-theoretic is uniformly strong; dependent periodic
// and partitioned close the gap on range/connected queries but fall behind
// on arbitrary ones; RAID-1 mirrored is weakest on everything large.
func AblationSpatialQueries(size, trials int, seed int64) ([]SpatialRow, error) {
	dt, err := decluster.NewDesignTheoretic(design.Paper931())
	if err != nil {
		return nil, err
	}
	mir, err := decluster.NewRAID1Mirrored(9, 3)
	if err != nil {
		return nil, err
	}
	ch, err := decluster.NewRAID1Chained(9, 3)
	if err != nil {
		return nil, err
	}
	per, err := decluster.NewDependentPeriodic(9, 3, 3)
	if err != nil {
		return nil, err
	}
	part, err := decluster.NewPartitioned(9, 3)
	if err != nil {
		return nil, err
	}
	schemes := []decluster.Allocator{dt, mir, ch, per, part}

	const w, h = 6, 6 // the 36-bucket pool as a grid
	rng := newRand(seed)
	var rows []SpatialRow
	for _, q := range []SpatialQuery{SpatialArbitrary, SpatialRange, SpatialConnected} {
		queries := spatialQueries(q, w, h, size, trials, rng)
		for _, a := range schemes {
			row := SpatialRow{Scheme: a.Name(), Query: q, Size: size}
			var sum stats.Summary
			for _, cells := range queries {
				replicas := make([][]int, len(cells))
				for i, c := range cells {
					replicas[i] = a.Replicas(c)
				}
				m, _ := maxflow.MinAccesses(replicas, a.Devices())
				sum.Add(float64(m))
				if m > row.MaxCost {
					row.MaxCost = m
				}
			}
			row.AvgCost = sum.Mean()
			rows = append(rows, row)
		}
	}
	return rows, nil
}
