package experiments

import "testing"

// TestShardScaling asserts the tentpole scaling claim on the
// deterministic metric: in-guarantee admission throughput more than
// doubles at 4 shards vs 1 (it should land near 4x — each shard
// saturates its own S per interval), while no configuration ever exceeds
// its admission-invariant ceiling.
func TestShardScaling(t *testing.T) {
	rows, err := ShardScaling([]int{1, 2, 4}, 50, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.AdmittedInHorizon > r.CapacityBound {
			t.Errorf("K=%d admitted %d past the invariant ceiling %d", r.Shards, r.AdmittedInHorizon, r.CapacityBound)
		}
		// The offered load saturates every configuration, so the admitted
		// count should sit close to the ceiling — that's what makes it a
		// capacity measurement rather than a load measurement.
		if float64(r.AdmittedInHorizon) < 0.9*float64(r.CapacityBound) {
			t.Errorf("K=%d admitted %d, under 90%% of capacity %d — load not saturating", r.Shards, r.AdmittedInHorizon, r.CapacityBound)
		}
	}
	one, four := rows[0].AdmittedInHorizon, rows[2].AdmittedInHorizon
	if float64(four) <= 2*float64(one) {
		t.Errorf("4-shard capacity %d not >2x 1-shard %d", four, one)
	}
	two := rows[1].AdmittedInHorizon
	if float64(two) <= 1.5*float64(one) {
		t.Errorf("2-shard capacity %d not >1.5x 1-shard %d", two, one)
	}
}
