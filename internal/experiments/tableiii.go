package experiments

import (
	"fmt"
	"math/rand"

	"flashqos/internal/decluster"
	"flashqos/internal/design"
	"flashqos/internal/flashsim"
	"flashqos/internal/retrieval"
	"flashqos/internal/stats"
	"flashqos/internal/trace"
)

// newRand builds a deterministic RNG for experiments.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TableIIICase is one (request size, interval) workload of Table III.
type TableIIICase struct {
	RequestSize int     // blocks per interval: 5, 14, 27
	IntervalMS  float64 // 0.133, 0.266, 0.399
}

// TableIIICases are the paper's three synthetic workloads (§V-C).
var TableIIICases = []TableIIICase{
	{5, 0.133},
	{14, 0.266},
	{27, 0.399},
}

// TableIIIRow reports one allocation scheme under one workload.
type TableIIIRow struct {
	Case   TableIIICase
	Scheme string
	Avg    float64 // ms
	Std    float64
	Max    float64
	Met    bool // all responses within the interval guarantee
}

// String renders the row like the paper's table.
func (r TableIIIRow) String() string {
	return fmt.Sprintf("k=%-2d T=%.3f %-22s avg=%.3f std=%.3f max=%.3f",
		r.Case.RequestSize, r.Case.IntervalMS, r.Scheme, r.Avg, r.Std, r.Max)
}

// TableIIIAllocationComparison reproduces Table III: I/O driver response
// times of RAID-1 mirrored, RAID-1 chained and the (9,3,1) design-theoretic
// allocation under synthetic batch workloads of 5/14/27 blocks per
// 0.133/0.266/0.399 ms interval (totalRequests requests each, pool of 36
// buckets, 8 KB reads at 0.132507 ms).
//
// Every scheme sees the same request sequence and uses the same optimal
// batch retrieval; only the replica placements differ. Batches that exceed
// a scheme's parallelism overrun their interval and queue, which is what
// blows up the RAID-1 mirrored maximum at larger request sizes in the
// paper.
func TableIIIAllocationComparison(totalRequests int, seed int64) ([]TableIIIRow, error) {
	dt, err := decluster.NewDesignTheoretic(design.Paper931())
	if err != nil {
		return nil, err
	}
	mir, err := decluster.NewRAID1Mirrored(9, 3)
	if err != nil {
		return nil, err
	}
	ch, err := decluster.NewRAID1Chained(9, 3)
	if err != nil {
		return nil, err
	}
	schemes := []decluster.Allocator{mir, ch, dt}

	var rows []TableIIIRow
	for _, c := range TableIIICases {
		tr, err := trace.Synthetic(trace.SyntheticConfig{
			IntervalMS:        c.IntervalMS,
			BlocksPerInterval: c.RequestSize,
			TotalRequests:     totalRequests,
			PoolSize:          36,
			Seed:              seed,
		})
		if err != nil {
			return nil, err
		}
		for si, alloc := range schemes {
			row := TableIIIRow{Case: c, Scheme: alloc.Name(), Met: true}
			isDT := si == len(schemes)-1 // design-theoretic is last
			var sum stats.Summary
			sched := retrieval.NewOnline(9, flashsim.DefaultReadLatency)
			// Replay batch by batch: all requests of an interval arrive at
			// its start. The design-theoretic system retrieves the batch
			// jointly with remapping (§III-C); the RAID baselines behave
			// like an I/O driver, placing each request on its
			// earliest-finishing replica with no joint optimization.
			for i := 0; i < len(tr.Records); i += c.RequestSize {
				end := i + c.RequestSize
				if end > len(tr.Records) {
					end = len(tr.Records)
				}
				batch := tr.Records[i:end]
				at := batch[0].Arrival
				replicas := make([][]int, len(batch))
				for j, r := range batch {
					replicas[j] = alloc.Replicas(int(r.Block))
				}
				var comps []retrieval.Completion
				if isDT {
					comps = sched.SubmitBatch(at, replicas)
				} else {
					comps = make([]retrieval.Completion, len(replicas))
					for j, reps := range replicas {
						comps[j] = sched.Submit(at, reps)
					}
				}
				for _, comp := range comps {
					resp := comp.Finish - at
					sum.Add(resp)
					if resp > c.IntervalMS+1e-9 {
						row.Met = false
					}
				}
			}
			row.Avg = sum.Mean()
			row.Std = sum.Std()
			row.Max = sum.Max()
			rows = append(rows, row)
		}
	}
	return rows, nil
}
