package experiments

import (
	"fmt"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/fim"
	"flashqos/internal/sampling"
	"flashqos/internal/trace"
)

// Workload identifies one of the two synthesized server traces.
type Workload int

const (
	// Exchange is the Exchange-like mail-server workload (9 volumes,
	// (9,3,1) design).
	Exchange Workload = iota
	// TPCE is the TPC-E-like OLTP workload (13 volumes, (13,3,1) design).
	TPCE
)

// String implements fmt.Stringer.
func (w Workload) String() string {
	if w == Exchange {
		return "exchange"
	}
	return "tpce"
}

// makeTrace synthesizes the workload's trace.
func makeTrace(w Workload, seed int64, scale float64) (*trace.Trace, error) {
	if w == Exchange {
		return trace.ExchangeLike(seed, scale)
	}
	return trace.TPCELike(seed, scale)
}

// workloadDesign returns the design the paper pairs with the workload:
// (9,3,1) for Exchange (9 volumes), (13,3,1) for TPC-E (13 volumes).
func workloadDesign(w Workload) *design.Design {
	if w == Exchange {
		return design.Paper931()
	}
	return design.Paper1331()
}

// Fig6TraceStats reproduces Fig 6: per-interval request statistics
// (total, average and maximum reads per second) for both workloads.
func Fig6TraceStats(seed int64, scale float64) (exchange, tpce []trace.IntervalStats, err error) {
	te, err := makeTrace(Exchange, seed, scale)
	if err != nil {
		return nil, nil, err
	}
	tt, err := makeTrace(TPCE, seed, scale)
	if err != nil {
		return nil, nil, err
	}
	return te.Stats(), tt.Stats(), nil
}

// DeterministicResult pairs the QoS replay with the original-stand replay
// for one workload (Figs 8 and 9).
type DeterministicResult struct {
	Workload Workload
	QoS      *core.Report // deterministic QoS, online retrieval
	Original *core.Report // trace replayed on its stated devices
}

// DeterministicQoS reproduces Fig 8 (Exchange) or Fig 9 (TPC-E): the
// deterministic QoS with FIM mapping and online retrieval versus the
// original stand. The QoS response lines are flat at the service time;
// the original exceeds the guarantee; the delayed percentage and delay
// amounts are reported per interval.
func DeterministicQoS(w Workload, seed int64, scale float64) (*DeterministicResult, error) {
	tr, err := makeTrace(w, seed, scale)
	if err != nil {
		return nil, err
	}
	sys, err := core.New(core.Config{Design: workloadDesign(w)})
	if err != nil {
		return nil, err
	}
	qos := sys.ReplayTrace(tr)
	orig, err := core.ReplayOriginal(tr, workloadDesign(w).N, 0)
	if err != nil {
		return nil, err
	}
	return &DeterministicResult{Workload: w, QoS: qos, Original: orig}, nil
}

// Fig8ExchangeDeterministic is Fig 8.
func Fig8ExchangeDeterministic(seed int64, scale float64) (*DeterministicResult, error) {
	return DeterministicQoS(Exchange, seed, scale)
}

// Fig9TPCEDeterministic is Fig 9.
func Fig9TPCEDeterministic(seed int64, scale float64) (*DeterministicResult, error) {
	return DeterministicQoS(TPCE, seed, scale)
}

// Fig10Row is one ε point of the statistical QoS sweep.
type Fig10Row struct {
	Epsilon     float64
	DelayedPct  float64
	AvgResponse float64 // ms
}

// Fig10Epsilons is the sweep used by the harness. The values are smaller
// than a naive reading of the paper's axis because ε competes with the
// workload's violation probability Q = Σ(1-P_k)·R_k, and with only a few
// percent of over-capacity intervals Q tops out near 0.005; the sweep
// spans the region where the admission decision actually changes.
var Fig10Epsilons = []float64{0, 0.0005, 0.001, 0.002, 0.005, 0.01}

// Fig10Statistical reproduces Fig 10: percentage of delayed requests and
// average response time versus ε for one workload, using online retrieval.
// Delayed% decreases and response time increases with ε.
func Fig10Statistical(w Workload, epsilons []float64, seed int64, scale float64) ([]Fig10Row, error) {
	tr, err := makeTrace(w, seed, scale)
	if err != nil {
		return nil, err
	}
	d := workloadDesign(w)
	// Sample the probability table once and share it across ε runs.
	var table *sampling.Table
	{
		sys, err := core.New(core.Config{Design: d})
		if err != nil {
			return nil, err
		}
		table, err = sampling.Estimate(sys.Allocator(), sampling.Options{
			MaxK: 2*d.N + sys.S(), Trials: 10000, Seed: seed + 5,
		})
		if err != nil {
			return nil, err
		}
	}
	var rows []Fig10Row
	for _, eps := range epsilons {
		sys, err := core.New(core.Config{Design: d, Epsilon: eps, Table: table})
		if err != nil {
			return nil, err
		}
		rep := sys.ReplayTrace(tr)
		rows = append(rows, Fig10Row{Epsilon: eps, DelayedPct: rep.DelayedPct, AvgResponse: rep.AvgResponse})
	}
	return rows, nil
}

// TableIVRow reports one FIM mining run (paper Table IV).
type TableIVRow struct {
	Trace    string
	Requests int
	Support  int
	AllocMB  float64
	Seconds  float64
	Pairs    int
}

// String renders the row like the paper's table.
func (r TableIVRow) String() string {
	return fmt.Sprintf("%-8s %8d reqs support=%d mem=%.1fMB time=%.3fs pairs=%d",
		r.Trace, r.Requests, r.Support, r.AllocMB, r.Seconds, r.Pairs)
}

// TableIVFIMPerformance reproduces Table IV: mining time and memory for
// the largest and smallest reporting intervals of each workload, at
// supports 1 and 3 (the paper mines at support 1 and shows support 3
// shrinking time and memory on the largest TPC-E interval).
func TableIVFIMPerformance(seed int64, scale float64) ([]TableIVRow, error) {
	var rows []TableIVRow
	for _, w := range []Workload{Exchange, TPCE} {
		tr, err := makeTrace(w, seed, scale)
		if err != nil {
			return nil, err
		}
		// Locate smallest and largest intervals by request count.
		small, large := -1, -1
		for i := 0; i < tr.NumIntervals(); i++ {
			n := len(tr.Interval(i))
			if n == 0 {
				continue
			}
			if small < 0 || n < len(tr.Interval(small)) {
				small = i
			}
			if large < 0 || n > len(tr.Interval(large)) {
				large = i
			}
		}
		for _, iv := range []int{small, large} {
			if iv < 0 {
				continue
			}
			recs := tr.Interval(iv)
			supports := []int{1}
			if iv == large {
				supports = []int{1, 3}
			}
			for _, sup := range supports {
				var pairs []fim.Pair
				st := fim.Measure(func() {
					txs := fim.TransactionsFromRecords(recs, 0.133)
					pairs = fim.MinePairs(txs, sup)
				})
				rows = append(rows, TableIVRow{
					Trace:    fmt.Sprintf("%s%d", w, iv),
					Requests: len(recs),
					Support:  sup,
					AllocMB:  st.AllocMB,
					Seconds:  st.Duration.Seconds(),
					Pairs:    len(pairs),
				})
			}
		}
	}
	return rows, nil
}

// Fig11Row is one interval's FIM benefit.
type Fig11Row struct {
	Interval int
	MatchPct float64
}

// Fig11FIMBenefit reproduces Fig 11: for each interval, the percentage of
// blocks found by mining the previous interval that are encountered again
// in the current interval. The paper reports ≈17 % on average for Exchange
// and ≈87 % for TPC-E. Mining uses support 1, like the paper's Table IV
// runs.
func Fig11FIMBenefit(w Workload, seed int64, scale float64) ([]Fig11Row, float64, error) {
	tr, err := makeTrace(w, seed, scale)
	if err != nil {
		return nil, 0, err
	}
	d := workloadDesign(w)
	sys, err := core.New(core.Config{Design: d, FIMMinSupport: 1})
	if err != nil {
		return nil, 0, err
	}
	var rows []Fig11Row
	var sum float64
	n := tr.NumIntervals()
	for i := 0; i < n; i++ {
		match := 0.0
		if i > 0 {
			sys.Remap(tr.Interval(i - 1))
			match = 100 * sys.Mapper().MappedSeenFraction(trace.DistinctBlocks(tr.Interval(i)))
		}
		rows = append(rows, Fig11Row{Interval: i, MatchPct: match})
		if i > 0 {
			sum += match
		}
	}
	mean := 0.0
	if n > 1 {
		mean = sum / float64(n-1)
	}
	return rows, mean, nil
}

// Fig12Row compares retrieval delay per interval.
type Fig12Row struct {
	Interval        int
	OnlineAvgDelay  float64 // ms, averaged over all requests
	AlignedAvgDelay float64
}

// Fig12RetrievalComparison reproduces Fig 12: the average delay introduced
// by online retrieval versus the interval-aligned design-theoretic
// retrieval on the same workload. Online is lower everywhere because it
// avoids the alignment of requests to interval starts.
func Fig12RetrievalComparison(w Workload, seed int64, scale float64) ([]Fig12Row, error) {
	tr, err := makeTrace(w, seed, scale)
	if err != nil {
		return nil, err
	}
	d := workloadDesign(w)
	on, err := core.New(core.Config{Design: d})
	if err != nil {
		return nil, err
	}
	onRep := on.ReplayTrace(tr)
	al, err := core.New(core.Config{Design: d, Mode: core.IntervalAligned})
	if err != nil {
		return nil, err
	}
	alRep := al.ReplayTrace(tr)
	n := len(onRep.Intervals)
	if len(alRep.Intervals) < n {
		n = len(alRep.Intervals)
	}
	rows := make([]Fig12Row, n)
	for i := 0; i < n; i++ {
		rows[i] = Fig12Row{
			Interval:        i,
			OnlineAvgDelay:  onRep.Intervals[i].AvgDelayAll,
			AlignedAvgDelay: alRep.Intervals[i].AvgDelayAll,
		}
	}
	return rows, nil
}
