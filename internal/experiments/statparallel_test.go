package experiments

import "testing"

// TestConcurrentStatistical runs the parallel statistical-admission
// experiment on a CI-sized bursty trace and asserts the §III-B contract
// holds with 8 submitters racing the lock-free snapshot path: the
// statistical mode over-admits relative to the deterministic baseline
// (violated windows exist at this ε), its realized per-window violation
// rate stays the same order of magnitude as ε, its own Q estimate respects
// the bound (modulo snapshot staleness), and the deterministic baseline
// stays violation-free. Wall-clock throughput is reported, not asserted
// (the 2× criterion is gated by BenchmarkConcurrentStatistical); here only
// a generous sanity floor guards against reintroducing a global
// serialization that would crater the parallel path.
func TestConcurrentStatistical(t *testing.T) {
	// Same ε regime as TestStatisticalViolationBound (serial) and
	// TestStatisticalViolationBoundConcurrent (core): a bursty
	// exchange-like trace whose queues drain between bursts — the regime
	// the interval-size estimator prices. A different seed keeps this an
	// independent artifact rather than a copy of the core tests.
	const eps = 0.002
	rows, err := ConcurrentStatistical(8, 17, 0.05, eps, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	det, stat := rows[0], rows[1]

	if det.ViolWindows != 0 {
		t.Errorf("deterministic baseline violated %d windows, want 0 (guaranteed path)", det.ViolWindows)
	}
	if det.FinalQ != 0 {
		t.Errorf("deterministic Q = %g, want 0", det.FinalQ)
	}
	if stat.AdmittedInHorizon < det.AdmittedInHorizon {
		t.Errorf("statistical admitted %d < deterministic %d: over-admission should never lose ground",
			stat.AdmittedInHorizon, det.AdmittedInHorizon)
	}
	if stat.ViolWindows == 0 {
		t.Error("no violated windows at this epsilon: tradeoff never engaged")
	}
	// The realized violation rate may exceed the modeled Q (the request-size
	// model cannot see block conflicts; the paper's formula shares the
	// approximation) but must stay the same order of magnitude as ε.
	if stat.ViolRate > 0.02 {
		t.Errorf("violation rate %.5f implausibly high for epsilon %.3f", stat.ViolRate, eps)
	}
	// Q itself respects the bound modulo bounded snapshot staleness.
	if stat.FinalQ >= eps*1.5 {
		t.Errorf("final Q = %.5f, must stay near epsilon %.3f", stat.FinalQ, eps)
	}
	if stat.WallOpsPerSec <= 0 || det.WallOpsPerSec <= 0 {
		t.Fatal("wall throughput not measured")
	}
	if ratio := stat.WallOpsPerSec / det.WallOpsPerSec; ratio < 0.2 {
		t.Errorf("statistical wall throughput %.0f ops/s is %.2fx the deterministic %.0f ops/s; a regression below 0.2x suggests admission re-serialized",
			stat.WallOpsPerSec, ratio, det.WallOpsPerSec)
	}
	for _, r := range rows {
		if r.Goroutines != 8 || r.Offered == 0 || r.Offered != det.Offered || r.Windows < 100 {
			t.Errorf("row misconfigured: %+v", r)
		}
	}
}

func TestConcurrentStatisticalValidation(t *testing.T) {
	for _, c := range []struct {
		g      int
		seed   int64
		scale  float64
		eps    float64
		trials int
	}{
		{0, 17, 0.05, 0.01, 100},
		{8, 17, 0, 0.01, 100},
		{8, 17, -1, 0.01, 100},
		{8, 17, 0.05, 0, 100},
		{8, 17, 0.05, 1, 100},
		{8, 17, 0.05, 0.01, 0},
	} {
		if _, err := ConcurrentStatistical(c.g, c.seed, c.scale, c.eps, c.trials); err == nil {
			t.Errorf("ConcurrentStatistical(%+v) should error", c)
		}
	}
}
