package experiments

import (
	"flashqos/internal/decluster"
	"flashqos/internal/design"
	"flashqos/internal/retrieval"
	"flashqos/internal/stats"
)

// HeteroRow compares homogeneous access-count retrieval against makespan-
// optimal retrieval when some modules are slow.
type HeteroRow struct {
	SlowModules int // modules running at SlowFactor × service time
	SlowFactor  float64
	AccessesMS  float64 // avg makespan when scheduling by access counts only
	MakespanMS  float64 // avg makespan of the heterogeneity-aware schedule
	Improvement float64 // AccessesMS / MakespanMS
}

// AblationHeterogeneous measures the value of the generalized optimal
// response-time retrieval (ICPP'12 [15]) that the paper cites: when some
// flash modules are degraded (by GC, wear or mixed generations), the
// access-count-optimal schedule is no longer time-optimal. Requests of the
// guarantee size S are scheduled both ways on a (9,3,1) array with the
// given number of slowed modules.
func AblationHeterogeneous(slowFactor float64, trials int, seed int64) ([]HeteroRow, error) {
	dt, err := decluster.NewDesignTheoretic(design.Paper931())
	if err != nil {
		return nil, err
	}
	const service = 0.132507
	rng := newRand(seed)
	var rows []HeteroRow
	sched := retrieval.NewScheduler() // reused across slow counts and trials
	for slow := 0; slow <= 4; slow++ {
		svc := make([]float64, 9)
		for d := range svc {
			svc[d] = service
			if d < slow {
				svc[d] = service * slowFactor
			}
		}
		var accSum, mkSum stats.Summary
		for trial := 0; trial < trials; trial++ {
			perm := rng.Perm(36)
			replicas := make([][]int, 14) // S(2): stresses multi-access rounds
			for i := range replicas {
				replicas[i] = dt.Replicas(perm[i])
			}
			// Access-count-optimal schedule, then its real makespan.
			res := sched.Optimal(replicas, 9)
			load := make([]int, 9)
			for _, d := range res.Assignment {
				load[d]++
			}
			worst := 0.0
			for d, l := range load {
				if m := float64(l) * svc[d]; m > worst {
					worst = m
				}
			}
			accSum.Add(worst)
			// Heterogeneity-aware schedule.
			h := sched.MinResponseTime(replicas, svc)
			mkSum.Add(h.Makespan)
		}
		row := HeteroRow{
			SlowModules: slow,
			SlowFactor:  slowFactor,
			AccessesMS:  accSum.Mean(),
			MakespanMS:  mkSum.Mean(),
		}
		if row.MakespanMS > 0 {
			row.Improvement = row.AccessesMS / row.MakespanMS
		}
		rows = append(rows, row)
	}
	return rows, nil
}
