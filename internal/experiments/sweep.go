package experiments

import (
	"flashqos/internal/core"
	"flashqos/internal/design"
)

// SweepRow reports one (design, M) configuration on a common workload.
type SweepRow struct {
	N, C        int
	M           int
	S           int // admission limit
	DelayedPct  float64
	AvgDelay    float64
	Utilization float64 // mean device busy fraction
}

// SweepDesigns tests the paper's tunability claim ("utilization of the
// system can be tuned by adjusting the parameters"): the same workload is
// replayed over different device counts, copy counts and guarantee targets
// M. More devices or a looser M raise the admission limit S, cutting
// delays at the cost of per-device utilization headroom.
func SweepDesigns(seed int64, scale float64) ([]SweepRow, error) {
	tr, err := makeTrace(Exchange, seed, scale)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		n, c, m int
	}{
		{7, 3, 1},
		{9, 3, 1},
		{9, 3, 2},
		{13, 3, 1},
		{13, 3, 2},
		{19, 3, 1},
		{13, 4, 1},
	}
	var rows []SweepRow
	for _, cfg := range configs {
		d, err := design.ForParams(cfg.n, cfg.c)
		if err != nil {
			return nil, err
		}
		// Larger M needs a longer interval to fit M serial accesses.
		interval := 0.133 * float64(cfg.m)
		sys, err := core.New(core.Config{Design: d, M: cfg.m, IntervalMS: interval, DisableFIM: true})
		if err != nil {
			return nil, err
		}
		rep := sys.ReplayTrace(tr)
		rows = append(rows, SweepRow{
			N: cfg.n, C: cfg.c, M: cfg.m, S: sys.S(),
			DelayedPct:  rep.DelayedPct,
			AvgDelay:    rep.AvgDelay,
			Utilization: rep.Utilization,
		})
	}
	return rows, nil
}
