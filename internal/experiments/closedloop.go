package experiments

import (
	"math/rand"

	"flashqos/internal/admission"
	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/stats"
)

// ClosedLoopRow summarizes one application in the §III-A closed-loop model.
type ClosedLoopRow struct {
	App         string
	Size        int // block requests per period
	Requests    int
	MaxResponse float64
	DelayedPct  float64
}

// ClosedLoopResult is the outcome of the long-horizon admission scenario.
type ClosedLoopResult struct {
	Admitted  []ClosedLoopRow
	RejectedN int // applications the registry turned away
	Periods   int
}

// AblationClosedLoop runs the paper's application model (§III-A, Table I)
// over a long horizon: applications reserve a per-period request size
// against the S limit via the admission registry; admitted applications
// then issue exactly their reserved size at the start of every period.
// Because the registry caps the total at S, every period's requests are
// within the deterministic guarantee — the sustained version of the
// worked example.
func AblationClosedLoop(periods int, appSizes []int, seed int64) (*ClosedLoopResult, error) {
	sys, err := core.New(core.Config{Design: design.Paper931(), DisableFIM: true})
	if err != nil {
		return nil, err
	}
	reg, err := admission.NewRegistry(sys.S())
	if err != nil {
		return nil, err
	}
	type app struct {
		name string
		size int
		resp stats.Summary
		del  int
		n    int
	}
	var admitted []*app
	rejected := 0
	for i, size := range appSizes {
		name := string(rune('A' + i))
		if err := reg.Admit(name, size); err != nil {
			rejected++
			continue
		}
		admitted = append(admitted, &app{name: name, size: size})
	}
	rng := rand.New(rand.NewSource(seed))
	const T = 0.133
	// Partition the design's 36 bucket residues among the applications so
	// every period's requests hit distinct design buckets — the §III model
	// admits request SETS, and the guarantee is over distinct buckets.
	rows := 36
	perApp := rows / max(1, len(admitted))
	for p := 0; p < periods; p++ {
		at := float64(p) * T
		// All applications' period requests arrive together at the interval
		// start and are retrieved as one batch (§III).
		var blocks []int64
		var owner []*app
		for ai, a := range admitted {
			base := ai * perApp
			perm := rng.Perm(perApp)
			for j := 0; j < a.size; j++ {
				residue := base + perm[j]
				blocks = append(blocks, int64(residue)+36*rng.Int63n(1000))
				owner = append(owner, a)
			}
		}
		for i, out := range sys.SubmitBatch(at, blocks) {
			a := owner[i]
			a.n++
			a.resp.Add(out.Response())
			if out.Delayed {
				a.del++
			}
		}
	}
	res := &ClosedLoopResult{RejectedN: rejected, Periods: periods}
	for _, a := range admitted {
		row := ClosedLoopRow{App: a.name, Size: a.size, Requests: a.n, MaxResponse: a.resp.Max()}
		if a.n > 0 {
			row.DelayedPct = 100 * float64(a.del) / float64(a.n)
		}
		res.Admitted = append(res.Admitted, row)
	}
	return res, nil
}
