package experiments

import "testing"

// TestDegradedScenarioEndToEnd is the acceptance test of the health
// subsystem: inject a device failure through the flashsim fault hooks,
// watch the detector walk Healthy → Suspect → Failed, see admission drop
// to S', let the rate-capped rebuild finish, recover the device, and see
// the full guarantee restored.
func TestDegradedScenarioEndToEnd(t *testing.T) {
	// 1000 copies/s at one 0.133 ms interval per request: one rebuild copy
	// every ~7.5 requests, 24 copies in ~180 requests — 2000 requests is
	// ample headroom for both passes plus detector streaks.
	rep, err := DegradedScenario(2000, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SBefore != 5 {
		t.Errorf("SBefore = %d, want 5", rep.SBefore)
	}
	if rep.SuspectAt < 0 || rep.FailedAt < 0 {
		t.Fatalf("detector never escalated: %+v", rep)
	}
	if rep.SuspectAt > rep.FailedAt {
		t.Errorf("Suspect at %d after Failed at %d", rep.SuspectAt, rep.FailedAt)
	}
	if rep.SDegraded != 3 {
		t.Errorf("SDegraded = %d, want 3", rep.SDegraded)
	}
	if rep.ReprotectCopies != 12 {
		t.Errorf("reprotect copied %d buckets, want 12 (every bucket with a replica on the victim)", rep.ReprotectCopies)
	}
	if rep.TotalCopies != 24 {
		t.Errorf("total rebuild copies = %d, want 24 (reprotect + resilver)", rep.TotalCopies)
	}
	if !rep.RateCapOK {
		t.Error("rebuild exceeded the token-bucket rate cap")
	}
	if rep.HealthyAt < 0 || rep.SRestored != 5 {
		t.Errorf("device never fully recovered: %+v", rep)
	}
	if rep.Unavailable != 0 {
		t.Errorf("%d requests unavailable; one failure must never lose a bucket", rep.Unavailable)
	}
}

// TestDegradedScenarioValidation: bad parameters error instead of running.
func TestDegradedScenarioValidation(t *testing.T) {
	if _, err := DegradedScenario(10, 9, 100); err == nil {
		t.Error("victim out of range accepted")
	}
	if _, err := DegradedScenario(10, -1, 100); err == nil {
		t.Error("negative victim accepted")
	}
}
