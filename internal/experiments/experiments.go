// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each experiment
// is a pure function returning typed rows; cmd/qosbench prints them and
// bench_test.go wraps them as benchmarks. Absolute numbers depend on the
// synthesized workloads (the SNIA traces are not redistributable; see the
// substitution table in DESIGN.md), but the shapes the paper reports —
// who wins, by what factor, where the crossovers fall — are asserted in
// this package's tests.
package experiments

import (
	"fmt"

	"flashqos/internal/decluster"
	"flashqos/internal/design"
	"flashqos/internal/maxflow"
	"flashqos/internal/retrieval"
	"flashqos/internal/sampling"
)

// Fig2Design returns the paper's printed (9,3,1) design.
func Fig2Design() *design.Design { return design.Paper931() }

// TableIPeriod is one period of the paper's worked example (Table I/Fig 5).
type TableIPeriod struct {
	Period   string
	Requests [][]int // replica triples requested this period
	Accesses int     // optimal parallel accesses used
}

// TableIResult is the outcome of the worked example.
type TableIResult struct {
	AdmittedApps []string
	RejectedApps []string
	Periods      []TableIPeriod
}

// TableI replays the paper's Table I admission example and the Fig 5
// retrieval schedule: three applications with request sizes 2, 2, 1 fill
// the S=5 limit of the (9,3,1) design at M=1; the four periods' request
// sets retrieve in one access each (T3 after remapping).
func TableI() TableIResult {
	res := TableIResult{
		AdmittedApps: []string{"app1 (size 2)", "app2 (size 2)", "app3 (size 1)"},
		RejectedApps: []string{"app4 (size 1): system full until an application leaves"},
	}
	periods := []struct {
		name string
		reqs [][]int
	}{
		{"T0", [][]int{{0, 3, 6}, {5, 7, 0}}},
		{"T1", [][]int{{0, 4, 8}, {8, 0, 4}, {7, 0, 5}}},
		{"T2", [][]int{{1, 2, 0}, {6, 0, 3}}},
		{"T3", [][]int{{1, 4, 7}, {1, 3, 8}, {0, 5, 7}, {0, 1, 2}}},
	}
	for _, p := range periods {
		r := retrieval.Optimal(p.reqs, 9)
		res.Periods = append(res.Periods, TableIPeriod{Period: p.name, Requests: p.reqs, Accesses: r.Accesses})
	}
	return res
}

// Fig3Requests is the paper's example of 9 non-conflicting requests.
var Fig3Requests = [][]int{
	{0, 1, 2}, {1, 2, 0}, {2, 0, 1}, {3, 8, 1}, {4, 8, 0},
	{5, 7, 0}, {6, 0, 3}, {7, 0, 5}, {8, 1, 3},
}

// Fig3NonConflicting verifies the paper's Fig 3: the 9 listed requests are
// retrievable in a single parallel access, returning the access count and
// the device assignment found.
func Fig3NonConflicting() (int, []int) {
	m, a := maxflow.MinAccesses(Fig3Requests, 9)
	return m, a
}

// Fig4Probabilities samples the optimal-retrieval probabilities P_k of the
// (9,3,1) design (paper Fig 4): P6 ≈ 0.99, P7 ≈ 0.98, P8 ≈ 0.95,
// P9 ≈ 0.75, and P_k = 1 beyond N.
func Fig4Probabilities(trials int, seed int64) (*sampling.Table, error) {
	dt, err := decluster.NewDesignTheoretic(design.Paper931())
	if err != nil {
		return nil, err
	}
	return sampling.Estimate(dt, sampling.Options{MaxK: 15, Trials: trials, Seed: seed})
}

// TableIIRow compares the retrieval algorithms for one request size
// (paper Table II).
type TableIIRow struct {
	S      int
	DTRMin int // design-theoretic (optimal batch) accesses seen
	DTRMax int
	OLRMin int // online sequential accesses seen
	OLRMax int
	Trials int
}

// TableIIRetrievalComparison samples distinct request sets of sizes 1..6
// on the (9,3,1) design and records the range of access counts under the
// design-theoretic batch retrieval (DTR) and the online sequential
// assignment (OLR). The paper's Table II: DTR = 1 for sizes 1–5, 2 at 6;
// OLR = "1 or 2" at sizes 4–5.
func TableIIRetrievalComparison(trials int, seed int64) ([]TableIIRow, error) {
	dt, err := decluster.NewDesignTheoretic(design.Paper931())
	if err != nil {
		return nil, err
	}
	rng := newRand(seed)
	rows := make([]TableIIRow, 6)
	sched := retrieval.NewScheduler() // reused across sizes and trials
	for s := 1; s <= 6; s++ {
		row := TableIIRow{S: s, DTRMin: 1 << 30, OLRMin: 1 << 30, Trials: trials}
		probe := func(replicas [][]int) {
			dtr := sched.Optimal(replicas, 9).Accesses
			olr := retrieval.SequentialAccesses(replicas, 9)
			row.DTRMin = min(row.DTRMin, dtr)
			row.DTRMax = max(row.DTRMax, dtr)
			row.OLRMin = min(row.OLRMin, olr)
			row.OLRMax = max(row.OLRMax, olr)
		}
		for trial := 0; trial < trials; trial++ {
			perm := rng.Perm(36)
			replicas := make([][]int, s)
			for i := range replicas {
				replicas[i] = dt.Replicas(perm[i])
			}
			probe(replicas)
		}
		if s == 6 {
			// The worst case the table's DTR(6)=2 refers to is rare under
			// uniform sampling (~50 of the 1.9M distinct 6-sets): the six
			// rotations of two design blocks sharing a device span only
			// five devices. Probe it explicitly so the bound is attained.
			d := dt.Design()
			adversarial := make([][]int, 0, 6)
			for r := 0; r < 3; r++ {
				for _, blk := range [][]int{d.Blocks[0], d.Blocks[1]} {
					row := []int{blk[r%3], blk[(r+1)%3], blk[(r+2)%3]}
					adversarial = append(adversarial, row)
				}
			}
			probe(adversarial)
		}
		rows[s-1] = row
	}
	return rows, nil
}

// String renders a Table II row like the paper ("1", "1 or 2").
func (r TableIIRow) String() string {
	rng := func(lo, hi int) string {
		if lo == hi {
			return fmt.Sprintf("%d", lo)
		}
		return fmt.Sprintf("%d or %d", lo, hi)
	}
	return fmt.Sprintf("S=%d DTR=%s OLR=%s", r.S, rng(r.DTRMin, r.DTRMax), rng(r.OLRMin, r.OLRMax))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
