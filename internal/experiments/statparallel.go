package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/flashsim"
	"flashqos/internal/sampling"
	"flashqos/internal/trace"
)

// ConcurrentStatRow is one admission mode's slice of the parallel
// statistical-admission experiment.
type ConcurrentStatRow struct {
	Mode       string  // "deterministic" or "eps=<ε>"
	Epsilon    float64 // 0 for the deterministic baseline
	Goroutines int

	Offered   int     // trace records submitted
	HorizonMS float64 // trace duration

	// AdmittedInHorizon counts requests admitted inside the trace horizon.
	// The statistical controller over-admits past S while Q < ε, so its
	// count must at least match the deterministic baseline's (bursts clear
	// sooner instead of queueing into later windows).
	AdmittedInHorizon int

	// Violation accounting over T-windows of the horizon: a window is
	// violated when any of its admitted requests finished past the
	// deterministic guarantee. The paper's §III-B contract is that the
	// violated fraction stays bounded near ε (plus sampling slack) — here
	// verified with 8 submitters racing the lock-free snapshot path, not
	// the serial controller.
	ViolWindows int
	Windows     int
	ViolRate    float64
	FinalQ      float64 // controller's own estimate after the run

	// WallOpsPerSec is the measured end-to-end submit rate (host-dependent;
	// reported for the within-2×-of-deterministic throughput claim, gated
	// in CI by BenchmarkConcurrentStatistical rather than asserted here).
	WallOpsPerSec float64
}

// String renders a row for qosbench.
func (r ConcurrentStatRow) String() string {
	return fmt.Sprintf("%-13s g=%d admitted=%6d/%d viol=%4d/%6d windows (rate=%.5f) Q=%.5f wall=%.0f ops/s",
		r.Mode, r.Goroutines, r.AdmittedInHorizon, r.Offered,
		r.ViolWindows, r.Windows, r.ViolRate, r.FinalQ, r.WallOpsPerSec)
}

// ConcurrentStatistical measures the parallelized statistical admission
// path (core statGate) against the deterministic baseline under identical
// bursty load: an exchange-like trace (reproducible from seed), submitted
// by `goroutines` workers pulling a shared index, through a
// ConcurrentSystem in each mode. The bursty sub-capacity shape matters:
// the §III-B estimator prices interval-size risk, so its ε contract holds
// in the regime where queues drain between bursts — sustained overload
// would measure queueing collapse, not the admission tradeoff. Per-request
// arrivals come from the trace, so the workload is reproducible even
// though goroutine interleaving — and therefore the exact admission split
// — is not; the experiment's claims are the inequalities the mechanism
// guarantees, not exact counts: the deterministic baseline stays
// violation-free, the statistical mode over-admits (some violated windows
// exist), and its violated-window fraction stays the same order of
// magnitude as ε.
func ConcurrentStatistical(goroutines int, seed int64, scale, epsilon float64, trials int) ([]ConcurrentStatRow, error) {
	if goroutines < 1 {
		return nil, fmt.Errorf("statparallel: need at least one submitter, got %d", goroutines)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("statparallel: trace scale must be positive, got %g", scale)
	}
	if epsilon <= 0 || epsilon >= 1 {
		return nil, fmt.Errorf("statparallel: epsilon must be in (0,1), got %g", epsilon)
	}
	if trials < 1 {
		return nil, fmt.Errorf("statparallel: need at least one sampling trial, got %d", trials)
	}
	tr, err := trace.ExchangeLike(seed, scale)
	if err != nil {
		return nil, err
	}
	offered := len(tr.Records)
	horizon := float64(tr.NumIntervals()) * tr.IntervalMS

	base, err := core.New(core.Config{Design: design.Paper931()})
	if err != nil {
		return nil, err
	}
	// One pinned table for the statistical run, workers fixed so the P_k
	// estimate is identical across hosts.
	tab, err := sampling.Estimate(base.Allocator(), sampling.Options{MaxK: 25, Trials: trials, Seed: 3, Workers: 4})
	if err != nil {
		return nil, err
	}

	rows := make([]ConcurrentStatRow, 0, 2)
	for _, mode := range []struct {
		name string
		eps  float64
	}{
		{"deterministic", 0},
		{fmt.Sprintf("eps=%g", epsilon), epsilon},
	} {
		cfg := core.Config{Design: design.Paper931(), Epsilon: mode.eps}
		if mode.eps > 0 {
			cfg.Table = tab
		}
		sys, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		cs := core.NewConcurrent(sys)

		outs := make([]core.Outcome, offered)
		var next atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(offered) {
						return
					}
					r := tr.Records[i]
					outs[i] = cs.Submit(r.Arrival, r.Block)
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)

		admitted := 0
		viol := map[int64]bool{}
		var lastWindow int64
		for _, out := range outs {
			if out.Rejected {
				continue
			}
			if out.Admitted < horizon {
				admitted++
			}
			w := cs.Window(out.Admitted)
			if w > lastWindow {
				lastWindow = w
			}
			if out.Response() > flashsim.DefaultReadLatency+1e-9 {
				viol[w] = true
			}
		}
		windows := int(lastWindow) + 1
		rows = append(rows, ConcurrentStatRow{
			Mode:              mode.name,
			Epsilon:           mode.eps,
			Goroutines:        goroutines,
			Offered:           offered,
			HorizonMS:         horizon,
			AdmittedInHorizon: admitted,
			ViolWindows:       len(viol),
			Windows:           windows,
			ViolRate:          float64(len(viol)) / float64(windows),
			FinalQ:            cs.Q(),
			WallOpsPerSec:     float64(offered) / wall.Seconds(),
		})
	}
	return rows, nil
}
