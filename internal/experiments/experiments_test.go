package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestFig2DesignValid(t *testing.T) {
	d := Fig2Design()
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if d.N != 9 || d.C != 3 || len(d.Blocks) != 12 {
		t.Errorf("unexpected design shape: %s", d)
	}
}

func TestTableIExample(t *testing.T) {
	res := TableI()
	if len(res.AdmittedApps) != 3 || len(res.RejectedApps) != 1 {
		t.Errorf("admission outcome wrong: %+v", res)
	}
	// Fig 5: all four periods retrieve in one access (T3 after remapping).
	for _, p := range res.Periods {
		if p.Accesses != 1 {
			t.Errorf("period %s used %d accesses, want 1", p.Period, p.Accesses)
		}
	}
}

func TestFig3(t *testing.T) {
	m, assign := Fig3NonConflicting()
	if m != 1 {
		t.Fatalf("Fig 3 set needs %d accesses, paper says 1", m)
	}
	if len(assign) != 9 {
		t.Fatalf("assignment covers %d blocks", len(assign))
	}
	seen := map[int]bool{}
	for _, d := range assign {
		if seen[d] {
			t.Error("device reused in a 1-access schedule")
		}
		seen[d] = true
	}
}

func TestFig4Shape(t *testing.T) {
	tab, err := Fig4Probabilities(20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Paper values with sampling tolerance.
	checks := []struct {
		k      int
		lo, hi float64
	}{
		{6, 0.98, 1.0},
		{7, 0.96, 1.0},
		{8, 0.92, 0.98},
		{9, 0.70, 0.80},
		{10, 0.999, 1.0},
	}
	for _, c := range checks {
		if got := tab.At(c.k); got < c.lo || got > c.hi {
			t.Errorf("P%d = %.3f, want in [%.2f, %.2f]", c.k, got, c.lo, c.hi)
		}
	}
	// The k=9 dip is the minimum over 1..15.
	for k := 1; k <= 15; k++ {
		if tab.At(k) < tab.At(9)-1e-9 {
			t.Errorf("P%d = %.3f below the k=9 dip %.3f", k, tab.At(k), tab.At(9))
		}
	}
}

func TestTableIIShape(t *testing.T) {
	rows, err := TableIIRetrievalComparison(3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		switch {
		case r.S <= 5:
			if r.DTRMin != 1 || r.DTRMax != 1 {
				t.Errorf("DTR(%d) range %d-%d, want exactly 1", r.S, r.DTRMin, r.DTRMax)
			}
		case r.S == 6:
			if r.DTRMax != 2 {
				t.Errorf("DTR(6) max %d, want 2", r.DTRMax)
			}
		}
		switch {
		case r.S <= 3:
			if r.OLRMin != 1 || r.OLRMax != 1 {
				t.Errorf("OLR(%d) range %d-%d, want exactly 1", r.S, r.OLRMin, r.OLRMax)
			}
		case r.S == 4 || r.S == 5:
			if r.OLRMin != 1 || r.OLRMax != 2 {
				t.Errorf("OLR(%d) range %d-%d, want \"1 or 2\"", r.S, r.OLRMin, r.OLRMax)
			}
		case r.S == 6:
			if r.OLRMax != 2 {
				t.Errorf("OLR(6) max %d, want 2", r.OLRMax)
			}
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	rows, err := TableIIIAllocationComparison(5000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9 (3 cases x 3 schemes)", len(rows))
	}
	byCase := map[TableIIICase]map[string]TableIIIRow{}
	for _, r := range rows {
		if byCase[r.Case] == nil {
			byCase[r.Case] = map[string]TableIIIRow{}
		}
		byCase[r.Case][r.Scheme] = r
	}
	for c, schemes := range byCase {
		var dt, mir, ch TableIIIRow
		for name, r := range schemes {
			switch {
			case name == "RAID-1 mirrored":
				mir = r
			case name == "RAID-1 chained":
				ch = r
			default:
				dt = r
			}
		}
		// The headline claim: only design-theoretic meets the guarantee.
		if !dt.Met {
			t.Errorf("case %+v: design-theoretic missed its guarantee (max %.3f)", c, dt.Max)
		}
		if dt.Max > c.IntervalMS+1e-9 {
			t.Errorf("case %+v: DT max %.3f exceeds interval", c, dt.Max)
		}
		// Baselines violate the guarantee at every request size (Table III).
		if mir.Max <= c.IntervalMS {
			t.Errorf("case %+v: mirrored unexpectedly met the guarantee (max %.3f)", c, mir.Max)
		}
		if ch.Max <= c.IntervalMS {
			t.Errorf("case %+v: chained unexpectedly met the guarantee (max %.3f)", c, ch.Max)
		}
		// Mirrored degrades dramatically at the largest request size: its
		// 3-device groups run at utilization ~0.997, so queueing explodes
		// relative to both the guarantee and the chained layout. (The
		// paper's absolute blowup is larger — DiskSim's per-request
		// overheads tip the borderline queue into instability — but the
		// verdict is the same; see EXPERIMENTS.md.)
		if c.RequestSize == 27 && mir.Max < 4*c.IntervalMS {
			t.Errorf("mirrored at k=27 should blow up; max only %.3f", mir.Max)
		}
		if c.RequestSize == 27 && mir.Max < 2*ch.Max {
			t.Errorf("mirrored (%.3f) should be far above chained (%.3f) at k=27", mir.Max, ch.Max)
		}
		// Ordering: DT <= chained <= mirrored on max response for k=27.
		if c.RequestSize == 27 && !(dt.Max < ch.Max && ch.Max < mir.Max) {
			t.Errorf("k=27 ordering wrong: dt=%.3f ch=%.3f mir=%.3f", dt.Max, ch.Max, mir.Max)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	ex, tp, err := Fig6TraceStats(3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) < 90 || len(tp) != 6 {
		t.Fatalf("interval counts: exchange %d, tpce %d", len(ex), len(tp))
	}
	for _, s := range append(ex, tp...) {
		if s.Total > 0 && s.MaxPerSec < s.AvgPerSec-1e-9 {
			t.Errorf("interval %d: max/s %.1f below avg/s %.1f", s.Interval, s.MaxPerSec, s.AvgPerSec)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8ExchangeDeterministic(3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// QoS flat at service time; original exceeds it.
	if res.QoS.MaxResponse > 0.14 {
		t.Errorf("QoS max response %.4f should be ~0.1325", res.QoS.MaxResponse)
	}
	if res.Original.MaxResponse <= res.QoS.MaxResponse {
		t.Error("original stand should exceed the QoS guarantee")
	}
	if res.Original.AvgResponse < res.QoS.AvgResponse-1e-9 {
		t.Error("original average should not beat the QoS average")
	}
	// Paper: 3-13% delayed, ~7% average. Accept a generous band.
	if res.QoS.DelayedPct < 0.5 || res.QoS.DelayedPct > 25 {
		t.Errorf("Exchange delayed%% = %.2f, want a few percent", res.QoS.DelayedPct)
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9TPCEDeterministic(3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.QoS.MaxResponse > 0.14 {
		t.Errorf("QoS max response %.4f should be ~0.1325", res.QoS.MaxResponse)
	}
	if res.Original.MaxResponse <= 0.14 {
		t.Error("original stand should violate the guarantee")
	}
	if res.QoS.DelayedPct <= 0 || res.QoS.DelayedPct > 30 {
		t.Errorf("TPC-E delayed%% = %.2f", res.QoS.DelayedPct)
	}
}

func TestFig10Shape(t *testing.T) {
	for _, w := range []Workload{Exchange, TPCE} {
		rows, err := Fig10Statistical(w, []float64{0, 0.001, 0.01}, 5, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("got %d rows", len(rows))
		}
		// Monotone trends: delayed% non-increasing, response non-decreasing.
		if rows[2].DelayedPct > rows[0].DelayedPct {
			t.Errorf("%v: delayed%% should fall with epsilon: %.2f -> %.2f", w, rows[0].DelayedPct, rows[2].DelayedPct)
		}
		if rows[2].AvgResponse < rows[0].AvgResponse-1e-9 {
			t.Errorf("%v: response should rise with epsilon: %.4f -> %.4f", w, rows[0].AvgResponse, rows[2].AvgResponse)
		}
		// The deterministic run delays some requests; a permissive ε must
		// strictly reduce them (the tradeoff is real, not flat).
		if rows[0].DelayedPct > 0.5 && rows[2].DelayedPct >= rows[0].DelayedPct-0.1 {
			t.Errorf("%v: epsilon had no effect: %.2f%% -> %.2f%%", w, rows[0].DelayedPct, rows[2].DelayedPct)
		}
	}
}

func TestTableIVShape(t *testing.T) {
	rows, err := TableIVFIMPerformance(3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Support 3 on the same interval mines fewer (or equal) pairs than
	// support 1, in no more time order-of-magnitude-wise (paper's point is
	// that raising support cuts cost).
	byTrace := map[string]map[int]TableIVRow{}
	for _, r := range rows {
		if byTrace[r.Trace] == nil {
			byTrace[r.Trace] = map[int]TableIVRow{}
		}
		byTrace[r.Trace][r.Support] = r
		if r.Seconds < 0 || r.AllocMB < 0 {
			t.Errorf("bad measurement: %+v", r)
		}
	}
	for name, m := range byTrace {
		if r1, ok := m[1]; ok {
			if r3, ok := m[3]; ok {
				if r3.Pairs > r1.Pairs {
					t.Errorf("%s: support 3 mined more pairs (%d) than support 1 (%d)", name, r3.Pairs, r1.Pairs)
				}
			}
		}
	}
}

func TestFig11Shape(t *testing.T) {
	_, exMean, err := Fig11FIMBenefit(Exchange, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rows, tpMean, err := Fig11FIMBenefit(TPCE, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MatchPct != 0 {
		t.Error("first interval has no history; match must be 0")
	}
	// Paper: Exchange ~17%, TPC-E ~87%. Shape: TPC-E far above Exchange.
	if tpMean < exMean+20 {
		t.Errorf("TPC-E match %.1f%% should be far above Exchange %.1f%%", tpMean, exMean)
	}
	if exMean < 2 || exMean > 50 {
		t.Errorf("Exchange mean match %.1f%%, want low-moderate (~17%%)", exMean)
	}
	if tpMean < 55 {
		t.Errorf("TPC-E mean match %.1f%%, want high (~87%%)", tpMean)
	}
}

func TestFig12Shape(t *testing.T) {
	for _, w := range []Workload{Exchange, TPCE} {
		rows, err := Fig12RetrievalComparison(w, 5, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		var onSum, alSum float64
		n := 0
		for _, r := range rows {
			onSum += r.OnlineAvgDelay
			alSum += r.AlignedAvgDelay
			n++
		}
		if n == 0 {
			t.Fatal("no intervals")
		}
		if alSum/float64(n) <= onSum/float64(n) {
			t.Errorf("%v: aligned delay %.4f should exceed online %.4f", w, alSum/float64(n), onSum/float64(n))
		}
	}
}

func TestGuaranteeComparison(t *testing.T) {
	rows := GuaranteeComparison(15)
	// §II-B3: b=3 → DT 1 vs orth 2; b=8 → 2 vs 3; b=15 → 3 vs 4.
	expect := map[int][2]int{3: {1, 2}, 8: {2, 3}, 15: {3, 4}}
	for _, r := range rows {
		if want, ok := expect[r.Buckets]; ok {
			if r.DesignAccesses != want[0] || r.OrthAccesses != want[1] {
				t.Errorf("b=%d: got DT=%d orth=%d, want %v", r.Buckets, r.DesignAccesses, r.OrthAccesses, want)
			}
		}
		if r.DesignAccesses > r.OrthAccesses {
			t.Errorf("b=%d: design-theoretic (%d) worse than orthogonal (%d)", r.Buckets, r.DesignAccesses, r.OrthAccesses)
		}
	}
}

func TestAblationSchemes(t *testing.T) {
	rows, err := AblationSchemes(5, 300, 17)
	if err != nil {
		t.Fatal(err)
	}
	costs := map[QueryKind]map[string]SchemeCostRow{}
	for _, r := range rows {
		if costs[r.Query] == nil {
			costs[r.Query] = map[string]SchemeCostRow{}
		}
		costs[r.Query][r.Scheme] = r
	}
	arb := costs[Arbitrary]
	dt := arb["design-theoretic (9,3,1)"]
	if dt.MaxCost != 1 {
		t.Errorf("DT worst arbitrary cost %d, want 1 (5 <= S)", dt.MaxCost)
	}
	if mir := arb["RAID-1 mirrored"]; mir.MaxCost <= dt.MaxCost {
		t.Errorf("mirrored worst cost %d should exceed DT %d", mir.MaxCost, dt.MaxCost)
	}
	// Every scheme achieves >= 1 average cost.
	for _, r := range rows {
		if r.AvgCost < 1 {
			t.Errorf("%s %v: avg cost %.2f < 1", r.Scheme, r.Query, r.AvgCost)
		}
	}
}

func TestAblationFIM(t *testing.T) {
	res, err := AblationFIM(TPCE, 9, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithFIM.Requests != res.ModuloOnly.Requests {
		t.Fatal("both runs must see the same workload")
	}
	// FIM separates co-requested hot blocks: no more delayed than modulo.
	if res.WithFIM.DelayedPct > res.ModuloOnly.DelayedPct+1 {
		t.Errorf("FIM delayed%% %.2f worse than modulo %.2f", res.WithFIM.DelayedPct, res.ModuloOnly.DelayedPct)
	}
}

func TestAblationMaxflow(t *testing.T) {
	rows, err := AblationMaxflow(12, 500, 23)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.GreedyAvg < r.OptimalAvg-1e-9 {
			t.Errorf("size %d: greedy avg %.3f below optimal %.3f (impossible)", r.Size, r.GreedyAvg, r.OptimalAvg)
		}
		if r.Size <= 3 && r.FallbackPct > 1 {
			t.Errorf("size %d: fallback %.1f%%, want ~0 for tiny requests", r.Size, r.FallbackPct)
		}
	}
}

func TestAblationDesignSize(t *testing.T) {
	rows, err := AblationDesignSize()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		wantS1 := (r.C-1)*1 + r.C
		if r.S1 != wantS1 {
			t.Errorf("(%d,%d): S1 = %d, want %d", r.N, r.C, r.S1, wantS1)
		}
		if r.Buckets != r.N*(r.N-1)/(r.C-1) {
			t.Errorf("(%d,%d): buckets = %d", r.N, r.C, r.Buckets)
		}
	}
}

func TestAblationGCInterference(t *testing.T) {
	rows, err := AblationGCInterference([]float64{0, 0.2, 0.5}, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	pure := rows[0]
	// Pure reads: fixed latency, no GC.
	if pure.GCRuns != 0 {
		t.Errorf("pure-read workload ran GC %d times", pure.GCRuns)
	}
	if pure.ReadMaxMS > pure.ReadAvgMS+1e-9 {
		t.Errorf("pure-read latency not flat: avg %.4f max %.4f", pure.ReadAvgMS, pure.ReadMaxMS)
	}
	// Write-heavy workloads trigger GC and inflate the read tail.
	if rows[2].GCRuns == 0 {
		t.Error("write-heavy workload should trigger GC")
	}
	if rows[2].ReadMaxMS <= pure.ReadMaxMS {
		t.Errorf("GC should inflate the read tail: %.4f vs %.4f", rows[2].ReadMaxMS, pure.ReadMaxMS)
	}
	if rows[2].ReadP99MS <= pure.ReadP99MS {
		t.Errorf("p99 should degrade under writes: %.4f vs pure %.4f", rows[2].ReadP99MS, pure.ReadP99MS)
	}
}

func TestAblationHeterogeneous(t *testing.T) {
	rows, err := AblationHeterogeneous(2.0, 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// With no slow modules the two schedulers agree.
	if rows[0].Improvement < 0.999 || rows[0].Improvement > 1.001 {
		t.Errorf("homogeneous improvement %.3f, want 1.0", rows[0].Improvement)
	}
	// With slow modules the makespan-aware schedule is never worse and
	// strictly better on average.
	for _, r := range rows[1:] {
		if r.MakespanMS > r.AccessesMS+1e-9 {
			t.Errorf("slow=%d: aware schedule worse (%.4f > %.4f)", r.SlowModules, r.MakespanMS, r.AccessesMS)
		}
	}
	if rows[2].Improvement <= 1.01 {
		t.Errorf("2 slow modules: expected clear improvement, got %.3f", rows[2].Improvement)
	}
}

func TestAblationFailure(t *testing.T) {
	rows, err := AblationFailure(2, 500, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// c = 3 replicas: up to 2 failures never lose a bucket.
		if r.Available != 100 {
			t.Errorf("failed=%d: availability %.1f%%, want 100%%", r.Failed, r.Available)
		}
	}
	// No failures: the guarantee holds exactly.
	if rows[0].MaxAccesses != 1 || rows[0].GuaranteeOK != 100 {
		t.Errorf("failed=0: max=%d ok=%.1f%%, want 1/100%%", rows[0].MaxAccesses, rows[0].GuaranteeOK)
	}
	// Degradation is graceful and monotone.
	if rows[1].AvgAccesses < rows[0].AvgAccesses || rows[2].AvgAccesses < rows[1].AvgAccesses {
		t.Error("average cost should not improve as devices fail")
	}
	if rows[2].MaxAccesses > 3 {
		t.Errorf("2 failures: max accesses %d, expected graceful (<= 3)", rows[2].MaxAccesses)
	}
	// Failing c devices is rejected (could lose data).
	if _, err := AblationFailure(3, 10, 1); err == nil {
		t.Error("failing c devices should be rejected")
	}
}

func TestAblationArrayGC(t *testing.T) {
	rows, err := AblationArrayGC([]float64{0, 0.3}, 3000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	pure, mixed := rows[0], rows[1]
	// Read-only: the plan and the realization agree; every read within the
	// guarantee; no GC.
	if pure.GuaranteePct != 100 {
		t.Errorf("read-only guarantee held %.1f%%, want 100%%", pure.GuaranteePct)
	}
	if pure.RealizedMaxMS > 0.133+1e-9 {
		t.Errorf("read-only realized max %.4f exceeds guarantee", pure.RealizedMaxMS)
	}
	// Mixed: GC runs and some reads blow the guarantee end to end.
	if mixed.GCRuns == 0 {
		t.Error("mixed workload should trigger GC")
	}
	if mixed.GuaranteePct >= 100 {
		t.Error("GC interference should break some realized guarantees")
	}
	if mixed.RealizedP99MS <= pure.RealizedP99MS {
		t.Errorf("mixed p99 %.4f should exceed read-only %.4f", mixed.RealizedP99MS, pure.RealizedP99MS)
	}
	// The controller's plan stays flat regardless — the leak is physical.
	if mixed.PlannedMaxMS > 0.133+1e-9 {
		t.Errorf("controller plan %.4f should stay within the guarantee", mixed.PlannedMaxMS)
	}
}

func TestAblationFairness(t *testing.T) {
	res, err := AblationFairness(4, 2000, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 4 {
		t.Fatalf("got %d tenants", len(res.Tenants))
	}
	anyDelayed := false
	for _, tn := range res.Tenants {
		if tn.Requests != 2000 {
			t.Errorf("tenant %d: %d requests", tn.Tenant, tn.Requests)
		}
		if tn.DelayedPct > 0 {
			anyDelayed = true
		}
	}
	if !anyDelayed {
		t.Error("expected contention between tenants")
	}
	// FCFS across identical tenants should be near-fair.
	if res.JainIndex < 0.9 {
		t.Errorf("Jain index %.3f, want >= 0.9 for identical tenants", res.JainIndex)
	}
}

func TestAblationMClock(t *testing.T) {
	rows, err := AblationMClock(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	blind, gated := rows[0], rows[1]
	// Both rows keep post-admission response flat at one service time —
	// the gate shapes who is admitted, never what admission guarantees.
	if !blind.VictimFlatNs {
		t.Error("tenant-blind QoS response should stay flat at the service time")
	}
	if !gated.VictimFlatNs {
		t.Error("gated QoS response should stay flat at the service time")
	}
	// Tenant-blind FCFS makes the victim wait out the aggressor's burst
	// backlog; the gate clips the burst at the aggressor's share so the
	// victim's arrival-to-completion latency collapses to near one
	// service time.
	if blind.VictimMaxMS < 1 {
		t.Errorf("blind victim max %.4f: the burst should visibly delay the victim", blind.VictimMaxMS)
	}
	if gated.VictimMaxMS > 0.5 {
		t.Errorf("gated victim max %.4f, want near one service time", gated.VictimMaxMS)
	}
	if gated.VictimAvgMS >= blind.VictimAvgMS {
		t.Errorf("gate did not help: gated avg %.4f >= blind avg %.4f",
			gated.VictimAvgMS, blind.VictimAvgMS)
	}
	if blind.AggressorShaped != 0 {
		t.Errorf("blind row shaped %d aggressor requests without a gate", blind.AggressorShaped)
	}
	if gated.AggressorShaped == 0 {
		t.Error("gated row shaped no aggressor requests")
	}
	// Sanity on the latency summaries themselves.
	for _, r := range rows {
		if r.VictimAvgMS < 0.132 {
			t.Errorf("%s: victim avg %.4f below service time", r.System, r.VictimAvgMS)
		}
		if r.VictimMaxMS > 50 {
			t.Errorf("%s: victim max %.4f implausible", r.System, r.VictimMaxMS)
		}
		if r.VictimP99MS > r.VictimMaxMS+1e-9 {
			t.Errorf("%s: p99 above max", r.System)
		}
	}
}

func TestMultiSeed(t *testing.T) {
	rows, err := MultiSeed(Seeds(1, 4), func(seed int64) ([]Metric, error) {
		return []Metric{
			{"constant", 5},
			{"seeded", float64(seed % 10)},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Name != "constant" || rows[0].Mean != 5 || rows[0].Std != 0 || rows[0].Seeds != 4 {
		t.Errorf("constant row wrong: %+v", rows[0])
	}
	if rows[1].Std == 0 {
		t.Error("seeded metric should vary")
	}
	if _, err := MultiSeed(nil, nil); err == nil {
		t.Error("no seeds should fail")
	}
	if _, err := MultiSeed([]int64{1}, func(int64) ([]Metric, error) {
		return nil, fmt.Errorf("boom")
	}); err == nil {
		t.Error("run error should propagate")
	}
}

func TestHeadlineMetricsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := MultiSeed(Seeds(40, 3), HeadlineMetrics(0.02))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ConfidenceRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Seeds != 3 {
			t.Errorf("%s: %d seeds", r.Name, r.Seeds)
		}
	}
	// The paper's headline contrasts must hold in expectation, not just for
	// one lucky seed.
	ex := byName["exchange delayed %"]
	tp := byName["tpce delayed %"]
	if ex.Mean <= tp.Mean {
		t.Errorf("Exchange delayed %.2f%% should exceed TPC-E %.2f%% on average", ex.Mean, tp.Mean)
	}
	exM := byName["exchange FIM match %"]
	tpM := byName["tpce FIM match %"]
	if tpM.Mean < exM.Mean+20 {
		t.Errorf("FIM match contrast lost across seeds: exchange %.1f vs tpce %.1f", exM.Mean, tpM.Mean)
	}
}

func TestAblationSpatialQueries(t *testing.T) {
	rows, err := AblationSpatialQueries(5, 400, 29)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("got %d rows, want 15 (5 schemes x 3 shapes)", len(rows))
	}
	get := func(scheme string, q SpatialQuery) SpatialRow {
		for _, r := range rows {
			if r.Scheme == scheme && r.Query == q {
				return r
			}
		}
		t.Fatalf("missing row %s/%v", scheme, q)
		return SpatialRow{}
	}
	dtName := "design-theoretic (9,3,1)"
	// Design-theoretic: worst case 1 at the guarantee size on every shape.
	for _, q := range []SpatialQuery{SpatialArbitrary, SpatialRange, SpatialConnected} {
		if r := get(dtName, q); r.MaxCost != 1 {
			t.Errorf("DT %v: max cost %d, want 1", q, r.MaxCost)
		}
	}
	// Dependent periodic spreads better than mirrored groups on every shape
	// (its strength on consecutive bucket runs is covered by the 1D range
	// case in TestAblationSchemes; 2D rectangles alias across grid rows).
	per := "dependent periodic (shift 3)"
	for _, q := range []SpatialQuery{SpatialArbitrary, SpatialRange, SpatialConnected} {
		if get(per, q).AvgCost > get("RAID-1 mirrored", q).AvgCost+1e-9 {
			t.Errorf("%v: periodic (%f) should not lose to mirrored (%f)",
				q, get(per, q).AvgCost, get("RAID-1 mirrored", q).AvgCost)
		}
	}
	// Mirrored is the weakest scheme on arbitrary queries.
	mir := get("RAID-1 mirrored", SpatialArbitrary)
	if mir.AvgCost < get(dtName, SpatialArbitrary).AvgCost {
		t.Error("mirrored should not beat design-theoretic on arbitrary queries")
	}
}

func TestPeriodicShinesOnConsecutiveRuns(t *testing.T) {
	// §II-B2: dependent periodic "performs well for the queries including
	// buckets near to each other such as range queries" — with 1D runs of
	// consecutive bucket numbers, any 5-run costs exactly 1 access.
	rows, err := AblationSchemes(5, 500, 37)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Scheme == "dependent periodic (shift 3)" && r.Query == Range {
			if r.MaxCost != 1 {
				t.Errorf("periodic 1D range max cost %d, want 1", r.MaxCost)
			}
		}
	}
}

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	err := WriteReport(&buf, ReportConfig{Seed: 3, Scale: 0.02, Requests: 2000, Trials: 3000, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# flashqos evaluation report",
		"## Fig 4", "## Table II", "## Table III",
		"## Figs 8–9", "## Fig 10", "## Fig 11", "## Fig 12",
		"Headline metrics across 2 seeds",
		"design-theoretic (9,3,1)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 2000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestAblationClosedLoop(t *testing.T) {
	// Table I sizes (2,2,1) fill S=5; a fourth app of size 2 is rejected.
	res, err := AblationClosedLoop(2000, []int{2, 2, 1, 2}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.RejectedN != 1 {
		t.Errorf("rejected %d applications, want 1", res.RejectedN)
	}
	if len(res.Admitted) != 3 {
		t.Fatalf("admitted %d applications", len(res.Admitted))
	}
	for _, a := range res.Admitted {
		if a.Requests != a.Size*res.Periods {
			t.Errorf("app %s issued %d requests, want %d", a.App, a.Requests, a.Size*res.Periods)
		}
		// Sustained guarantee: every request of every admitted app is
		// served in one access, no delays, over thousands of periods.
		if a.MaxResponse > 0.132507+1e-9 {
			t.Errorf("app %s max response %.6f exceeds guarantee", a.App, a.MaxResponse)
		}
		if a.DelayedPct != 0 {
			t.Errorf("app %s delayed %.2f%%, want 0 within reservations", a.App, a.DelayedPct)
		}
	}
}

func TestSweepDesigns(t *testing.T) {
	rows, err := SweepDesigns(7, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	get := func(n, c, m int) SweepRow {
		for _, r := range rows {
			if r.N == n && r.C == c && r.M == m {
				return r
			}
		}
		t.Fatalf("missing row (%d,%d,%d)", n, c, m)
		return SweepRow{}
	}
	// S math per configuration.
	if get(9, 3, 1).S != 5 || get(9, 3, 2).S != 14 || get(13, 4, 1).S != 7 {
		t.Error("S limits wrong in sweep")
	}
	// Tunability: more devices with the same workload reduce delays.
	if get(19, 3, 1).DelayedPct > get(7, 3, 1).DelayedPct {
		t.Errorf("19 devices delayed %.2f%% should not exceed 7 devices %.2f%%",
			get(19, 3, 1).DelayedPct, get(7, 3, 1).DelayedPct)
	}
	// And reduce per-device utilization (same work spread wider).
	if get(19, 3, 1).Utilization > get(9, 3, 1).Utilization {
		t.Errorf("19-device utilization %.4f should be below 9-device %.4f",
			get(19, 3, 1).Utilization, get(9, 3, 1).Utilization)
	}
	// Raising M (longer interval, larger S) also reduces capacity delays.
	if get(9, 3, 2).DelayedPct > get(9, 3, 1).DelayedPct+1 {
		t.Errorf("M=2 delayed %.2f%% should not exceed M=1 %.2f%% by much",
			get(9, 3, 2).DelayedPct, get(9, 3, 1).DelayedPct)
	}
	for _, r := range rows {
		if r.Utilization <= 0 || r.Utilization >= 1 {
			t.Errorf("(%d,%d,M=%d): utilization %.4f out of range", r.N, r.C, r.M, r.Utilization)
		}
	}
}

func TestFig7Layouts(t *testing.T) {
	layouts, err := Fig7Layouts(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(layouts) != 3 {
		t.Fatalf("got %d layouts", len(layouts))
	}
	byName := map[string]Fig7Layout{}
	for _, l := range layouts {
		byName[l.Scheme] = l
		if len(l.Buckets) != 12 || len(l.Devices) != 9 {
			t.Errorf("%s: wrong table sizes", l.Scheme)
		}
		// Consistency: bucket view and device view agree.
		for b, devs := range l.Buckets {
			for _, d := range devs {
				found := false
				for _, bb := range l.Devices[d] {
					if bb == b {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: bucket %d on device %d missing from device view", l.Scheme, b, d)
				}
			}
		}
	}
	// Fig 7's printed patterns.
	dt := byName["design-theoretic (9,3,1)"]
	if got := dt.Buckets[0]; got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("DT b0 = %v, want [0 1 2]", got)
	}
	mir := byName["RAID-1 mirrored"]
	// b0 on group {0,1,2}, b1 on {3,4,5}, b2 on {6,7,8}.
	for b, wantBase := range map[int]int{0: 0, 1: 3, 2: 6} {
		for _, d := range mir.Buckets[b] {
			if d/3 != wantBase/3 {
				t.Errorf("mirrored b%d on device %d outside group %d", b, d, wantBase/3)
			}
		}
	}
	ch := byName["RAID-1 chained"]
	for j, d := range ch.Buckets[1] {
		if d != (1+j)%9 {
			t.Errorf("chained b1 copy %d on %d, want %d", j, d, (1+j)%9)
		}
	}
	if _, err := Fig7Layouts(0); err == nil {
		t.Error("buckets=0 should fail")
	}
}
