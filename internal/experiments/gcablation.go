package experiments

import (
	"math/rand"

	"flashqos/internal/flashsim"
	"flashqos/internal/stats"
)

// GCInterferenceRow reports read latency on one flash module under a mixed
// read/write load.
type GCInterferenceRow struct {
	WriteFrac  float64
	ReadAvgMS  float64
	ReadP99MS  float64
	ReadMaxMS  float64
	GCRuns     int64
	MovedPages int64
}

// AblationGCInterference quantifies the paper's §II-A premise: flash reads
// have a fixed, predictable latency — which is exactly why the QoS
// guarantees are stated for read traffic. Driving one SSD module with an
// increasing write fraction shows garbage collection progressively
// destroying read-latency predictability (tail >> fixed service time),
// while the pure-read column stays flat.
func AblationGCInterference(writeFracs []float64, requests int, seed int64) ([]GCInterferenceRow, error) {
	var rows []GCInterferenceRow
	for _, wf := range writeFracs {
		// Small geometry so GC pressure appears within the test budget.
		ssd, err := flashsim.NewSSD(flashsim.SSDConfig{
			Channels: 4, PlanesPerChan: 2, BlocksPerPlane: 16, PagesPerBlock: 16,
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		universe := ssd.Capacity() / 2
		// Pre-fill half the logical space so reads hit mapped pages and GC
		// has live data to move.
		tNow := 0.0
		for lpn := int64(0); lpn < universe; lpn++ {
			tNow = ssd.Write(tNow, lpn)
		}
		var lat stats.Summary
		var all []float64
		for i := 0; i < requests; i++ {
			tNow += 0.15 // spaced past the idle read time: a pure-read stream never queues
			lpn := rng.Int63n(universe)
			if rng.Float64() < wf {
				ssd.Write(tNow, lpn)
				continue
			}
			fin := ssd.Read(tNow, lpn)
			lat.Add(fin - tNow)
			all = append(all, fin-tNow)
		}
		rows = append(rows, GCInterferenceRow{
			WriteFrac:  wf,
			ReadAvgMS:  lat.Mean(),
			ReadP99MS:  stats.Percentile(all, 99),
			ReadMaxMS:  lat.Max(),
			GCRuns:     ssd.GCRuns(),
			MovedPages: ssd.MovedPages(),
		})
	}
	return rows, nil
}
