package experiments

import (
	"fmt"

	"flashqos/internal/core"
	"flashqos/internal/design"
	"flashqos/internal/flashsim"
	"flashqos/internal/health"
)

// DegradedReport traces the end-to-end failure → degrade → rebuild →
// recover arc of the health subsystem (ISSUE 4 acceptance flow).
type DegradedReport struct {
	SBefore         int   // admission limit while healthy: S(M)
	SDegraded       int   // limit after the detector fails the device: S'(M)
	SRestored       int   // limit after resilver completes
	SuspectAt       int   // request index of the Healthy → Suspect transition
	FailedAt        int   // request index of the Suspect → Failed transition
	HealthyAt       int   // request index the device rejoined (resilver drained)
	ReprotectCopies int64 // rebuild copies when the reprotect pass drained
	TotalCopies     int64 // rebuild copies at the end (reprotect + resilver)
	Unavailable     int   // requests lost for lack of a live replica (must be 0)
	RateCapOK       bool  // copies never exceeded Burst + rate·t (token bucket)
}

// DegradedScenario drives the whole stack against an injected device
// failure: the core system schedules mask-aware reads, a flashsim array
// with a per-module fault serves them, completions feed the health
// detectors, the detectors take the faulty device out of service (admission
// drops S → S'), the token-bucket rebuild re-replicates its buckets, and —
// once the fault is cleared and the device recovered — a resilver brings it
// back and restores S.
//
// requests is the read count to drive (cycling the 36 buckets of the
// (9,3,1) design), victim the module to break, rebuildRate the rebuild cap
// in copies/second. The simulation clock advances one QoS interval per
// request, so rebuildRate trades directly against requests: the scenario
// needs roughly 24·(1000/rebuildRate)/0.133 requests of headroom for both
// rebuild passes.
func DegradedScenario(requests, victim int, rebuildRate float64) (*DegradedReport, error) {
	const intervalMS = 0.133
	sys, err := core.New(core.Config{Design: design.Paper931(), M: 1, IntervalMS: intervalMS})
	if err != nil {
		return nil, err
	}
	if victim < 0 || victim >= 9 {
		return nil, fmt.Errorf("experiments: victim %d out of range", victim)
	}
	clock := 0.0
	rep := &DegradedReport{SuspectAt: -1, FailedAt: -1, HealthyAt: -1, RateCapOK: true}
	reqIndex := 0
	mon, err := sys.NewHealthMonitor(rebuildRate, health.Config{
		NowMS: func() float64 { return clock },
		OnTransition: func(dev int, from, to health.State) {
			if dev != victim {
				return
			}
			switch {
			case to == health.Suspect && rep.SuspectAt < 0:
				rep.SuspectAt = reqIndex
			case to == health.Failed && rep.FailedAt < 0:
				rep.FailedAt = reqIndex
			case to == health.Healthy && rep.FailedAt >= 0 && rep.HealthyAt < 0:
				rep.HealthyAt = reqIndex
			}
		},
	})
	if err != nil {
		return nil, err
	}
	arr, err := flashsim.New(flashsim.Config{Modules: 9})
	if err != nil {
		return nil, err
	}
	rep.SBefore = sys.EffectiveS()

	const faultAt = 40 // healthy warm-up before the device starts erroring
	faultCleared := false
	rebuildStartMS := 0.0
	var id int64
	for reqIndex = 0; reqIndex < requests; reqIndex++ {
		if reqIndex == faultAt {
			if err := arr.SetFault(victim, flashsim.Fault{ErrorProb: 1}); err != nil {
				return nil, err
			}
		}
		out := sys.Submit(clock, int64(reqIndex%36))
		if out.Unavailable {
			rep.Unavailable++
		} else if !out.Rejected {
			// Serve the admitted request on the simulated array at the
			// device the QoS scheduler chose, and feed the completion back
			// into the health detectors — the full loop a real deployment
			// closes through the storage backend.
			at := out.Admitted
			if now := arr.Now(); at < now {
				at = now
			}
			id++
			arr.Submit(flashsim.Request{ID: id, Arrival: at, Module: out.Device, Block: int64(reqIndex % 36)})
			for _, c := range arr.Run() {
				if c.Failed {
					mon.ReportError(c.Module)
				} else {
					mon.ReportSuccess(c.Module, c.Finish-c.Start)
				}
			}
		}
		if rep.FailedAt >= 0 && rep.SDegraded == 0 {
			rep.SDegraded = sys.EffectiveS()
			rebuildStartMS = clock
		}
		mon.Step()
		// Token-bucket invariant: at most Burst + rate·t copies in any
		// interval of length t since rebuild work existed (Burst is 1 here).
		if pending, done := mon.RebuildProgress(); pending > 0 || done > 0 {
			if allowed := 1 + rebuildRate*(clock-rebuildStartMS)/1000; rep.FailedAt >= 0 && float64(done) > allowed+1e-9 {
				rep.RateCapOK = false
			}
			// Reprotect drained and the fault is still active: clear it and
			// bring the device back, starting the resilver.
			if pending == 0 && !faultCleared && rep.FailedAt >= 0 && mon.State(victim) == health.Failed {
				rep.ReprotectCopies = done
				arr.ClearFault(victim)
				faultCleared = true
				if err := mon.Recover(victim); err != nil {
					return nil, err
				}
			}
		}
		clock += intervalMS
	}
	_, rep.TotalCopies = mon.RebuildProgress()
	rep.SRestored = sys.EffectiveS()
	return rep, nil
}
