// Package core is the replication-based QoS framework for flash arrays —
// the paper's primary contribution (§III, §IV). It composes the substrate
// packages into a running system:
//
//   - an (N, c, 1) design-theoretic allocator decides where the c replicas
//     of every bucket live (decluster, design);
//   - FIM-driven block matching maps the storage system's data blocks onto
//     the design's allocation rows (fim, blockmap);
//   - deterministic or statistical admission control bounds the number of
//     requests retrieved per interval T (admission, sampling);
//   - online or interval-aligned retrieval schedules admitted requests on
//     replica devices (retrieval);
//   - a pluggable storage Backend provides device latencies and raw-trace
//     service (flashsim by default; see backend.go).
//
// One admission/retrieval engine implements the submit paths (engine.go);
// System and ConcurrentSystem are facades over it that differ only in the
// interval ledger and locking they plug in (ledger.go). The System type
// exposes the per-request online API used by the examples; ReplayTrace
// drives a whole trace through the pipeline and produces the per-interval
// report behind the paper's Figs 8–12.
package core

import (
	"fmt"

	"flashqos/internal/admission"
	"flashqos/internal/blockmap"
	"flashqos/internal/decluster"
	"flashqos/internal/design"
	"flashqos/internal/fim"
	"flashqos/internal/sampling"
	"flashqos/internal/stats"
	"flashqos/internal/trace"
)

// Mode selects the retrieval strategy.
type Mode int

const (
	// Online retrieves each request as it arrives (§IV-B), FCFS with
	// earliest-finish-time replica selection.
	Online Mode = iota
	// IntervalAligned retrieves requests at the start of the interval after
	// their arrival using the design-theoretic batch retrieval (§III-C);
	// the mode Fig 12 compares against.
	IntervalAligned
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Online:
		return "online"
	case IntervalAligned:
		return "interval-aligned"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config assembles a QoS system.
type Config struct {
	// Design is the (N, c, 1) design to allocate with. If nil, N and C
	// select one via design.ForParams.
	Design *design.Design
	N, C   int

	// M is the access-count guarantee target; the admission limit is
	// S = (c-1)M² + cM. Default 1.
	M int
	// IntervalMS is the QoS interval T. Default 0.133 ms (paper §V-D).
	IntervalMS float64
	// ServiceMS is the per-block read time. Defaults to the backend's read
	// latency (0.132507 ms for the flashsim default).
	ServiceMS float64
	// WriteServiceMS is the per-block program time for the SubmitWrite
	// extension. Defaults to the backend's write latency (0.350 ms).
	WriteServiceMS float64
	// Epsilon enables statistical QoS when > 0 (§III-B); 0 is deterministic.
	Epsilon float64
	// Policy says what happens to requests that cannot be admitted.
	// Default Delay (the paper's choice).
	Policy admission.Policy
	// Mode selects online or interval-aligned retrieval. Default Online.
	Mode Mode
	// FIM configuration: minimum pair support and mining window. A
	// MinSupport of 0 keeps the default (2); set UseFIM=false to disable
	// mining and use the modulo mapping only.
	FIMMinSupport int
	DisableFIM    bool
	// Table optionally injects a precomputed optimal-retrieval probability
	// table for statistical QoS; when nil and Epsilon > 0, one is sampled
	// at construction (SampleTrials trials, default 20000).
	Table        *sampling.Table
	SampleTrials int
	Seed         int64
	// Backend supplies device latencies and raw-trace replay service.
	// Default: the flashsim discrete-event model (DefaultBackend).
	Backend Backend
	// Allocator optionally injects a prebuilt design-theoretic allocator.
	// It must be built over the same design the system uses (Design when
	// set, else the allocator's own design is adopted). The allocator is
	// immutable after construction, so sharded deployments pass one
	// instance to every shard: the replica table is stored once and stays
	// cache-resident instead of being duplicated per shard. When nil, one
	// is built from the design.
	Allocator *decluster.DesignTheoretic
	// DeviceBase is the global id of this system's device 0: outcomes
	// report Device as DeviceBase + local device. Sharded deployments give
	// shard i a base of i·N so the submit hot path emits global ids without
	// a per-outcome translation pass (see shard.New). Default 0. All
	// internal state — replica lists, masks, the scheduler — stays in local
	// device numbering; only the Outcome.Device field is offset.
	DeviceBase int
}

func (c *Config) applyDefaults() {
	if c.Backend == nil {
		c.Backend = DefaultBackend()
	}
	if c.M == 0 {
		c.M = 1
	}
	if c.IntervalMS == 0 {
		c.IntervalMS = 0.133
	}
	c.ServiceMS, c.WriteServiceMS = normalizeService(c.Backend, c.ServiceMS, c.WriteServiceMS)
	if c.FIMMinSupport == 0 {
		c.FIMMinSupport = 2
	}
	if c.SampleTrials == 0 {
		c.SampleTrials = 20000
	}
}

// Outcome reports what happened to one submitted request.
type Outcome struct {
	Admitted float64 // time the request was admitted for retrieval
	Device   int     // device serving the request
	Start    float64 // service start
	Finish   float64 // service completion
	Delay    float64 // Admitted - arrival (0 when served on arrival)
	Delayed  bool    // Delay exceeded tolerance
	Rejected bool    // dropped (Policy Reject only, or Unavailable)
	// Unavailable marks a rejection because every replica of the block is
	// on a failed/rebuilding device (only possible with a health monitor
	// attached and more than c-1 devices out of service).
	Unavailable bool
	// Tenant is the 1-based tenant index the request carried (0 = none);
	// it round-trips wire tenant tags back out through the response path.
	Tenant int32
	// OverLimit marks a rejection by the tenant gate's per-window arrival
	// limit — the request consumed no S-bound ledger credit.
	OverLimit bool
}

// Response returns the post-admission response time, the quantity the
// paper's QoS lines plot (flat at the service time when guarantees hold).
func (o Outcome) Response() float64 { return o.Finish - o.Admitted }

// System is a running QoS instance: the sequential facade over the shared
// admission/retrieval engine, using the plain-map ledger and no locking.
// Requests must be submitted in non-decreasing arrival order from a single
// goroutine; wrap with NewConcurrent for multi-goroutine submission.
type System struct {
	*engine
}

// New builds a system from the config.
func New(cfg Config) (*System, error) {
	eng, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &System{engine: eng}, nil
}

// Allocator exposes the design-theoretic allocator.
func (s *System) Allocator() *decluster.DesignTheoretic { return s.alloc }

// S returns the admission limit S(M).
func (s *System) S() int { return s.s }

// Design returns the block design in use.
func (s *System) Design() *design.Design { return s.alloc.Design() }

// DeviceBase returns the global id of this system's device 0
// (Config.DeviceBase): the offset outcomes report devices at.
func (s *System) DeviceBase() int { return s.cfg.DeviceBase }

// Mapper exposes the data-block mapper (for inspection).
func (s *System) Mapper() *blockmap.Mapper { return s.mapper }

// Backend returns the storage backend the system was configured with.
func (s *System) Backend() Backend { return s.cfg.Backend }

// Remap mines the previous interval's records (FIM, set size 2, window T)
// and rebuilds the data-block → design-block mapping (§IV-A). Returns the
// number of frequent pairs found.
func (s *System) Remap(prev []trace.Record) int {
	if s.cfg.DisableFIM {
		return 0
	}
	txs := fim.TransactionsFromRecords(prev, s.cfg.IntervalMS)
	pairs := fim.MinePairs(txs, s.cfg.FIMMinSupport)
	s.mapper.BuildFromPairs(pairs)
	return len(pairs)
}

// Submit runs one block request through admission control and online
// retrieval. Requests must be submitted in non-decreasing arrival order.
// With a health monitor attached, retrieval skips unavailable devices and
// admission enforces the degraded limit S' instead of S (the availability
// snapshot is taken once per call).
func (s *System) Submit(arrival float64, dataBlock int64) Outcome {
	return s.submit(arrival, dataBlock, 0)
}

// SubmitTenant is Submit with a tenant identity: the request passes the
// per-tenant mClock gate (arrival limit, then a reserved/weighted window
// cap) before any S-bound ledger credit is consumed. Tenant indices are
// the 1-based slots configured via SetTenants; 0 behaves exactly like
// Submit. Unknown tenants are rejected, never served untenanted.
func (s *System) SubmitTenant(arrival float64, dataBlock int64, tenant int32) Outcome {
	return s.submit(arrival, dataBlock, tenant)
}

// SubmitBatch admits a set of simultaneous block requests jointly — the
// §III interval model, where an application's period requests arrive
// together and are retrieved with the design-theoretic batch algorithm
// (remapping included). Up to the window's remaining capacity is admitted
// and scheduled with the optimal joint assignment; overflow falls back to
// the per-request path (delayed or rejected per policy). Outcomes are in
// input order.
func (s *System) SubmitBatch(arrival float64, blocks []int64) []Outcome {
	return s.submitBatch(arrival, blocks, 0, nil)
}

// SubmitBatchTenant is SubmitBatch with a tenant identity for the whole
// batch. Under an active tenant policy the batch takes the per-request
// gated path (per-tenant window caps fragment the joint assignment);
// tenant 0 behaves exactly like SubmitBatch.
func (s *System) SubmitBatchTenant(arrival float64, blocks []int64, tenant int32) []Outcome {
	return s.submitBatch(arrival, blocks, tenant, nil)
}

// SubmitWrite schedules a block write — an extension beyond the paper's
// read-only evaluation. A write must update all c replicas, so it consumes
// c slots of the interval's admission budget and requires every replica
// device idle (deterministic path). The write occupies each replica for
// WriteServiceMS; the outcome's response is the completion of the slowest
// replica. Writes may exceed the interval guarantee (flash programs are
// slower than reads); admission ensures they never preempt already
// admitted reads, but reads arriving afterwards can be delayed behind
// them, which the delay accounting reports honestly.
// Degraded writes (health monitor attached, devices out of service) update
// only the available replicas and consume only that many admission slots;
// the rebuild scheduler owns bringing the missing copies back in sync.
func (s *System) SubmitWrite(arrival float64, dataBlock int64) Outcome {
	return s.submitWrite(arrival, dataBlock, 0)
}

// SubmitWriteTenant is SubmitWrite with a tenant identity: the write
// charges one arrival against the tenant's limit and all c replica
// slots (all-or-nothing) against its window cap before the S-bound
// reservation. Tenant 0 behaves exactly like SubmitWrite.
func (s *System) SubmitWriteTenant(arrival float64, dataBlock int64, tenant int32) Outcome {
	return s.submitWrite(arrival, dataBlock, tenant)
}

// SetTenants validates and atomically installs a per-tenant QoS policy
// (see internal/admission): slot i of specs is tenant index i+1,
// ΣReserve must fit within S, and the surplus S − ΣReserve is shared by
// weight. The swap is a snapshot publication — in-flight submissions
// finish against the policy they loaded, nothing pauses, and the new
// policy opens fresh per-window accounting. Passing a table with no
// active slots turns the gate off. Per-tenant gauges survive
// reconfiguration, keyed by tenant name.
func (s *System) SetTenants(specs []admission.TenantSpec) error {
	return s.tenants.Configure(specs)
}

// TenantSpecs returns a copy of the installed tenant slot table.
func (s *System) TenantSpecs() []admission.TenantSpec { return s.tenants.Specs() }

// TenantCounters reads a tenant's admission gauges by name.
func (s *System) TenantCounters(name string) (admission.Counters, bool) {
	return s.tenants.Counters(name)
}

// Q returns the statistical controller's current estimate of the
// probability that an interval's requests cannot be retrieved optimally
// (0 for deterministic systems). Note the model prices request-count risk
// only — the paper's formula Q = Σ(1-P_k)·R_k knows nothing about which
// blocks are requested — so realized violations can exceed Q when
// admitted conflicting requests share replica sets; ε bounds the model,
// not the adversarial worst case.
func (s *System) Q() float64 {
	if s.stat == nil {
		return 0
	}
	return s.stat.q()
}

// Reset clears all scheduling and admission state (the mapper is kept).
func (s *System) Reset() {
	s.sched.Reset()
	s.ledger.reset()
	if s.stat != nil {
		s.stat.resetWindows()
	}
}

// --- Trace replay ---

// IntervalReport aggregates one reporting interval of a replay, mirroring
// the per-interval series of Figs 8–11.
type IntervalReport struct {
	Index       int
	Requests    int
	Rejected    int
	AvgResponse float64 // post-admission response time, ms
	MaxResponse float64
	DelayedPct  float64 // % of requests delayed
	AvgDelay    float64 // mean delay of the delayed requests, ms
	AvgDelayAll float64 // mean delay over ALL requests (Fig 12 metric), ms
	MaxDelay    float64
	FIMMatchPct float64 // % of mined blocks seen again this interval (Fig 11)
	FIMPairs    int     // frequent pairs mined from the previous interval
}

// Report is the result of a trace replay.
type Report struct {
	Name      string
	Intervals []IntervalReport
	// Overall aggregates.
	Requests    int
	Rejected    int
	AvgResponse float64
	MaxResponse float64
	DelayedPct  float64
	AvgDelay    float64 // over delayed requests
	AvgDelayAll float64 // over all requests (Fig 12 metric)
	Utilization float64 // mean device busy fraction over the replayed span
	// Write extension accounting (reads populate the fields above, keeping
	// the paper's read-only figures comparable).
	WriteRequests   int
	WriteAvgResp    float64
	WriteDelayedPct float64
}

// ReplayTrace drives a trace through the pipeline: before each reporting
// interval the previous interval is mined and the block mapping rebuilt
// (§V-D: "we use the trace one previous than the current interval for
// mining"); every read request then passes admission and retrieval.
func (s *System) ReplayTrace(tr *trace.Trace) *Report {
	tr.Sort() // Submit requires non-decreasing arrivals
	rep := &Report{Name: tr.Name}
	var respAll, delayAll stats.Summary
	delayedTotal := 0
	n := tr.NumIntervals()

	if s.cfg.Mode == IntervalAligned {
		return s.replayAligned(tr)
	}
	var wResp stats.Summary
	writeDelayed := 0
	for i := 0; i < n; i++ {
		recs := tr.Interval(i)
		ir := IntervalReport{Index: i}
		if i > 0 {
			ir.FIMPairs = s.Remap(tr.Interval(i - 1))
		}
		ir.FIMMatchPct = 100 * s.mapper.MappedSeenFraction(trace.DistinctBlocks(recs))
		var resp, delay stats.Summary
		delayed := 0
		for _, r := range recs {
			if r.Write {
				wout := s.SubmitWrite(r.Arrival, r.Block)
				if !wout.Rejected {
					wResp.Add(wout.Response())
					if wout.Delayed {
						writeDelayed++
					}
				}
				continue
			}
			out := s.Submit(r.Arrival, r.Block)
			if out.Rejected {
				ir.Rejected++
				rep.Rejected++
				continue
			}
			resp.Add(out.Response())
			respAll.Add(out.Response())
			if out.Delayed {
				delayed++
				delayedTotal++
				delay.Add(out.Delay)
				delayAll.Add(out.Delay)
			}
		}
		ir.Requests = resp.N() + ir.Rejected
		ir.AvgResponse = resp.Mean()
		ir.MaxResponse = resp.Max()
		if ir.Requests > 0 {
			ir.DelayedPct = 100 * float64(delayed) / float64(ir.Requests)
		}
		ir.AvgDelay = delay.Mean()
		ir.MaxDelay = delay.Max()
		if ir.Requests > 0 {
			ir.AvgDelayAll = delay.Mean() * float64(delay.N()) / float64(ir.Requests)
		}
		rep.Intervals = append(rep.Intervals, ir)
	}
	rep.Requests = respAll.N() + rep.Rejected
	rep.AvgResponse = respAll.Mean()
	rep.MaxResponse = respAll.Max()
	if rep.Requests > 0 {
		rep.DelayedPct = 100 * float64(delayedTotal) / float64(rep.Requests)
	}
	rep.AvgDelay = delayAll.Mean()
	if rep.Requests > 0 {
		rep.AvgDelayAll = delayAll.Mean() * float64(delayAll.N()) / float64(rep.Requests)
	}
	if n > 0 && tr.IntervalMS > 0 {
		rep.Utilization = s.sched.Utilization(float64(n) * tr.IntervalMS)
	}
	rep.WriteRequests = wResp.N()
	rep.WriteAvgResp = wResp.Mean()
	if wResp.N() > 0 {
		rep.WriteDelayedPct = 100 * float64(writeDelayed) / float64(wResp.N())
	}
	return rep
}

// replayAligned implements the interval-aligned (design-theoretic batch)
// replay: requests arriving in T-window w are retrieved together at the
// start of window w+1 with the optimal joint assignment; at most S are
// admitted per batch and the rest carry to the next batch.
func (s *System) replayAligned(tr *trace.Trace) *Report {
	rep := &Report{Name: tr.Name}
	var respAll, delayAll stats.Summary
	delayedTotal := 0
	n := tr.NumIntervals()

	type pending struct {
		arrival  float64
		interval int
		replicas []int
	}
	var backlog []pending
	perInterval := make([]IntervalReport, n)
	var respI = make([]stats.Summary, n)
	var delayI = make([]stats.Summary, n)
	delayedI := make([]int, n)

	// flush retrieves up to S of the batch at time `at` and returns the
	// overflow, which is delayed to the next window (paper: "delayed to the
	// next available interval").
	flush := func(batch []pending, at float64) []pending {
		if len(batch) == 0 {
			return nil
		}
		take := len(batch)
		if take > s.s {
			take = s.s
		}
		now, rest := batch[:take], batch[take:]
		replicas := make([][]int, len(now))
		for i, p := range now {
			replicas[i] = p.replicas
		}
		cs := s.sched.IntervalBatch(at, replicas)
		for i, c := range cs {
			p := now[i]
			d := at - p.arrival
			respI[p.interval].Add(c.Finish - at)
			respAll.Add(c.Finish - at)
			if d > delayTol {
				delayedI[p.interval]++
				delayedTotal++
				delayI[p.interval].Add(d)
				delayAll.Add(d)
			}
		}
		return rest
	}

	// Walk T-windows across the whole trace. Requests arriving exactly at a
	// window start are retrieved in that window (the §III model: requests
	// issued at the beginning of each interval complete within it); requests
	// arriving mid-window are aligned to the start of the next window
	// (§IV-B), as is admission overflow.
	recs := tr.Records
	ri := 0
	w := int64(0)
	if len(recs) > 0 {
		w = s.window(recs[0].Arrival)
	}
	lastRemapIv := 0
	for ri < len(recs) || len(backlog) > 0 {
		wStart := float64(w) * s.cfg.IntervalMS
		// FIM remapping at reporting-interval boundaries.
		if tr.IntervalMS > 0 {
			curIv := int(wStart / tr.IntervalMS)
			if curIv > lastRemapIv && curIv < n {
				perInterval[curIv].FIMPairs = s.Remap(tr.Interval(curIv - 1))
				lastRemapIv = curIv
			}
		}
		var boundary, mid []pending
		for ri < len(recs) && s.window(recs[ri].Arrival) == w {
			r := recs[ri]
			ri++
			if r.Write {
				continue
			}
			iv := tr.IntervalOf(r)
			if iv >= n {
				iv = n - 1
			}
			p := pending{arrival: r.Arrival, interval: iv, replicas: s.Replicas(r.Block)}
			if r.Arrival-wStart <= delayTol {
				boundary = append(boundary, p)
			} else {
				mid = append(mid, p)
			}
		}
		backlog = flush(append(backlog, boundary...), wStart)
		backlog = append(backlog, mid...)
		// Advance; skip idle stretches when nothing is pending.
		if len(backlog) == 0 && ri < len(recs) {
			w = s.window(recs[ri].Arrival)
		} else {
			w++
		}
	}
	for i := 0; i < n; i++ {
		ir := &perInterval[i]
		ir.Index = i
		ir.Requests = respI[i].N()
		ir.AvgResponse = respI[i].Mean()
		ir.MaxResponse = respI[i].Max()
		if ir.Requests > 0 {
			ir.DelayedPct = 100 * float64(delayedI[i]) / float64(ir.Requests)
		}
		ir.AvgDelay = delayI[i].Mean()
		ir.MaxDelay = delayI[i].Max()
		if ir.Requests > 0 {
			ir.AvgDelayAll = delayI[i].Mean() * float64(delayI[i].N()) / float64(ir.Requests)
		}
		ir.FIMMatchPct = 0 // not tracked per-interval in aligned mode
		rep.Intervals = append(rep.Intervals, *ir)
	}
	rep.Requests = respAll.N()
	rep.AvgResponse = respAll.Mean()
	rep.MaxResponse = respAll.Max()
	if rep.Requests > 0 {
		rep.DelayedPct = 100 * float64(delayedTotal) / float64(rep.Requests)
	}
	rep.AvgDelay = delayAll.Mean()
	if rep.Requests > 0 {
		rep.AvgDelayAll = delayAll.Mean() * float64(delayAll.N()) / float64(rep.Requests)
	}
	return rep
}

// ReplayOriginal replays a trace "as stated" (the paper's original stand,
// §V-D): every request goes to the device named in the trace record, FCFS,
// with no admission control, on the default flashsim backend. The response
// times include queueing delay.
func ReplayOriginal(tr *trace.Trace, devices int, serviceMS float64) (*Report, error) {
	return ReplayOriginalOn(DefaultBackend(), tr, devices, serviceMS)
}

// ReplayOriginalOn is ReplayOriginal against an explicit storage backend; a
// serviceMS of 0 falls back to the backend's read latency.
func ReplayOriginalOn(b Backend, tr *trace.Trace, devices int, serviceMS float64) (*Report, error) {
	if devices < 1 {
		return nil, fmt.Errorf("core: devices must be >= 1")
	}
	serviceMS, _ = normalizeService(b, serviceMS, 0)
	arr, err := b.NewArray(devices, serviceMS)
	if err != nil {
		return nil, err
	}
	var id int64
	for _, r := range tr.Records {
		if r.Write {
			continue
		}
		id++
		if err := arr.Submit(id, r.Arrival, r.Device%devices, r.Block); err != nil {
			return nil, err
		}
	}
	cs := arr.Drain()
	rep := &Report{Name: tr.Name + " (original)"}
	n := tr.NumIntervals()
	respI := make([]stats.Summary, n)
	var respAll stats.Summary
	for _, c := range cs {
		iv := 0
		if tr.IntervalMS > 0 {
			iv = int(c.ArrivalMS / tr.IntervalMS)
		}
		if iv >= n {
			iv = n - 1
		}
		respI[iv].Add(c.ResponseMS())
		respAll.Add(c.ResponseMS())
	}
	for i := 0; i < n; i++ {
		rep.Intervals = append(rep.Intervals, IntervalReport{
			Index:       i,
			Requests:    respI[i].N(),
			AvgResponse: respI[i].Mean(),
			MaxResponse: respI[i].Max(),
		})
	}
	rep.Requests = respAll.N()
	rep.AvgResponse = respAll.Mean()
	rep.MaxResponse = respAll.Max()
	return rep, nil
}
