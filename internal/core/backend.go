package core

import (
	"fmt"
	"sort"

	"flashqos/internal/flashsim"
)

// Backend abstracts the storage device layer behind the QoS engine. The
// engine itself schedules against a virtual-time model (retrieval.Online)
// and only needs three things from real hardware or a simulator: the
// per-block service times that parameterize the guarantee, and a way to
// drive raw requests for the paper's "original stand" comparison. Keeping
// that surface an interface makes the flashsim discrete-event model, the
// in-memory FIFO model below, and a future real-device backend
// interchangeable without touching admission or retrieval.
type Backend interface {
	// Name identifies the backend in logs and reports.
	Name() string
	// ReadLatencyMS is the per-block read service time (ms) used when
	// Config.ServiceMS is left zero.
	ReadLatencyMS() float64
	// WriteLatencyMS is the per-block program time (ms) used when
	// Config.WriteServiceMS is left zero.
	WriteLatencyMS() float64
	// NewArray builds a running device array with the given module count
	// and per-block read service time.
	NewArray(devices int, readServiceMS float64) (Array, error)
}

// Array is a running device array accepting raw block reads — the
// no-admission-control path ReplayOriginalOn drives.
type Array interface {
	// Submit enqueues one read for a specific device. Arrivals must be
	// non-decreasing relative to completions already drained. An
	// out-of-range device is rejected with an error by every backend — the
	// seam validates, callers need not pre-check.
	Submit(id int64, arrivalMS float64, device int, block int64) error
	// Drain runs all submitted requests to completion and returns them in
	// completion order.
	Drain() []ArrayCompletion
}

// errDeviceRange is the uniform out-of-range error every backend's Array
// returns from Submit, so callers can report it identically regardless of
// the backend behind the seam.
func errDeviceRange(backend string, device, n int) error {
	return fmt.Errorf("core: %s backend device %d out of range [0,%d)", backend, device, n)
}

// ArrayCompletion reports one finished raw request.
type ArrayCompletion struct {
	Device    int
	ArrivalMS float64
	StartMS   float64
	FinishMS  float64
}

// ResponseMS returns the I/O driver response time: completion minus
// arrival (the metric of the paper's Table III).
func (c ArrayCompletion) ResponseMS() float64 { return c.FinishMS - c.ArrivalMS }

// normalizeService is the single config-normalization point for service
// times: non-positive values fall back to the backend's device latencies.
// (Before the Backend extraction this fallback was duplicated at System
// construction and at ReplayOriginal.)
func normalizeService(b Backend, readMS, writeMS float64) (read, write float64) {
	if b == nil {
		b = DefaultBackend()
	}
	if readMS <= 0 {
		readMS = b.ReadLatencyMS()
	}
	if writeMS <= 0 {
		writeMS = b.WriteLatencyMS()
	}
	return readMS, writeMS
}

// DefaultBackend returns the flashsim discrete-event backend the paper's
// evaluation uses.
func DefaultBackend() Backend { return simBackend{} }

// simBackend adapts internal/flashsim to the Backend interface.
type simBackend struct{}

func (simBackend) Name() string            { return "flashsim" }
func (simBackend) ReadLatencyMS() float64  { return flashsim.DefaultReadLatency }
func (simBackend) WriteLatencyMS() float64 { return flashsim.DefaultWriteLatency }

func (simBackend) NewArray(devices int, readServiceMS float64) (Array, error) {
	arr, err := flashsim.New(flashsim.Config{Modules: devices, ReadLatency: readServiceMS})
	if err != nil {
		return nil, err
	}
	return &simArray{arr: arr, devices: devices}, nil
}

type simArray struct {
	arr     *flashsim.Array
	devices int
}

func (a *simArray) Submit(id int64, arrivalMS float64, device int, block int64) error {
	// Validate here rather than letting flashsim panic deep in its event
	// loop: the seam owns the bounds contract.
	if device < 0 || device >= a.devices {
		return errDeviceRange("flashsim", device, a.devices)
	}
	a.arr.Submit(flashsim.Request{ID: id, Arrival: arrivalMS, Module: device, Block: block})
	return nil
}

func (a *simArray) Drain() []ArrayCompletion {
	cs := a.arr.Run()
	out := make([]ArrayCompletion, len(cs))
	for i, c := range cs {
		out[i] = ArrayCompletion{Device: c.Module, ArrivalMS: c.Arrival, StartMS: c.Start, FinishMS: c.Finish}
	}
	return out
}

// MemBackend is a deterministic in-memory backend: each device is a FIFO
// queue serving one request at a time at a fixed service latency — the
// behavior the flashsim model reduces to with one way and no jitter. It
// exists to prove the Backend seam (and as the template for wiring a real
// device): a System configured over MemBackend with flashsim's latencies
// produces the same reports as one over the simulator.
type MemBackend struct {
	// ReadMS / WriteMS are the fixed service latencies; zero values fall
	// back to the flashsim defaults so MemBackend{} is usable as-is.
	ReadMS  float64
	WriteMS float64
}

// Name implements Backend.
func (MemBackend) Name() string { return "mem" }

// ReadLatencyMS implements Backend.
func (b MemBackend) ReadLatencyMS() float64 {
	if b.ReadMS > 0 {
		return b.ReadMS
	}
	return flashsim.DefaultReadLatency
}

// WriteLatencyMS implements Backend.
func (b MemBackend) WriteLatencyMS() float64 {
	if b.WriteMS > 0 {
		return b.WriteMS
	}
	return flashsim.DefaultWriteLatency
}

// NewArray implements Backend.
func (b MemBackend) NewArray(devices int, readServiceMS float64) (Array, error) {
	if devices < 1 {
		return nil, fmt.Errorf("core: mem backend needs >= 1 device, got %d", devices)
	}
	if readServiceMS <= 0 {
		readServiceMS = b.ReadLatencyMS()
	}
	return &memArray{name: "mem", free: make([]float64, devices), service: readServiceMS}, nil
}

type memReq struct {
	seq     int
	arrival float64
	device  int
}

type memArray struct {
	name    string    // backend name for error reporting ("mem", "pack")
	free    []float64 // per-device next-free time
	service float64
	queue   []memReq
	seq     int
}

func (a *memArray) Submit(id int64, arrivalMS float64, device int, block int64) error {
	if device < 0 || device >= len(a.free) {
		return errDeviceRange(a.name, device, len(a.free))
	}
	a.queue = append(a.queue, memReq{seq: a.seq, arrival: arrivalMS, device: device})
	a.seq++
	return nil
}

// Drain serves the queued requests FIFO per device (arrival order, with
// submission order breaking arrival ties) and returns completions in
// finish order, service order on ties — the ordering the simulator's event
// heap produces for the same workload.
func (a *memArray) Drain() []ArrayCompletion {
	q := a.queue
	a.queue = nil
	sort.SliceStable(q, func(i, j int) bool { return q[i].arrival < q[j].arrival })
	out := make([]ArrayCompletion, len(q))
	for i, r := range q {
		start := r.arrival
		if f := a.free[r.device]; f > start {
			start = f
		}
		finish := start + a.service
		a.free[r.device] = finish
		out[i] = ArrayCompletion{Device: r.device, ArrivalMS: r.arrival, StartMS: start, FinishMS: finish}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].FinishMS < out[j].FinishMS })
	return out
}
