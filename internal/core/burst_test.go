package core

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"flashqos/internal/admission"
	"flashqos/internal/design"
)

// burstSubmitter is either facade: the per-request verbs plus SubmitBurst.
type burstSubmitter interface {
	submitter
	SubmitBurst(arrival float64, reqs []BurstReq, sc *BurstScratch) []Outcome
}

func asBurst(sub submitter) burstSubmitter { return sub.(burstSubmitter) }

// TestSubmitBurstEquivalence drives the seed-42 workload chopped into
// pseudo-random bursts (1–12 requests sharing the first request's arrival)
// through SubmitBurst on one system and through the per-request verbs, in
// the same order with the same arrivals, on an identically configured
// reference system. Every outcome must match exactly — float-for-float —
// across both facades, both policies, a degraded mask, and statistical
// mode (where SubmitBurst must fall back to per-request admission because
// the gate's decisions are count-order-sensitive).
func TestSubmitBurstEquivalence(t *testing.T) {
	reqs := goldenWorkload()
	type variant struct {
		name  string
		build func() (burst, ref burstSubmitter)
	}
	variants := []variant{}
	for _, policy := range []admission.Policy{admission.Delay, admission.Reject} {
		for _, masked := range []bool{false, true} {
			for _, concurrent := range []bool{false, true} {
				policy, masked, concurrent := policy, masked, concurrent
				name := "delay"
				if policy == admission.Reject {
					name = "reject"
				}
				if masked {
					name += "/masked"
				}
				if concurrent {
					name += "/concurrent"
				}
				variants = append(variants, variant{name, func() (burstSubmitter, burstSubmitter) {
					return asBurst(goldenSystem(t, policy, masked, concurrent)),
						asBurst(goldenSystem(t, policy, masked, concurrent))
				}})
			}
		}
	}
	tab := goldenStatTable(t)
	for _, concurrent := range []bool{false, true} {
		concurrent := concurrent
		name := "stat/eps=0.05"
		if concurrent {
			name += "/concurrent"
		}
		variants = append(variants, variant{name, func() (burstSubmitter, burstSubmitter) {
			return asBurst(goldenStatSystem(t, admission.Delay, 0.05, tab, concurrent)),
				asBurst(goldenStatSystem(t, admission.Delay, 0.05, tab, concurrent))
		}})
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			burstSys, refSys := v.build()
			rng := rand.New(rand.NewSource(7))
			var sc BurstScratch
			burst := make([]BurstReq, 0, 12)
			for i := 0; i < len(reqs); {
				n := 1 + rng.Intn(12)
				if i+n > len(reqs) {
					n = len(reqs) - i
				}
				arrival := reqs[i].arrival
				burst = burst[:0]
				for _, r := range reqs[i : i+n] {
					burst = append(burst, BurstReq{Block: r.block, Write: r.write})
				}
				outs := burstSys.SubmitBurst(arrival, burst, &sc)
				if len(outs) != n {
					t.Fatalf("burst at %d: %d outcomes for %d requests", i, len(outs), n)
				}
				for j, br := range burst {
					var want Outcome
					if br.Write {
						want = refSys.SubmitWrite(arrival, br.Block)
					} else {
						want = refSys.Submit(arrival, br.Block)
					}
					if outs[j] != want {
						t.Fatalf("request %d (burst of %d at %.9f, write=%v): burst outcome %+v != per-request %+v",
							i+j, n, arrival, br.Write, outs[j], want)
					}
				}
				i += n
			}
		})
	}
}

// TestSubmitBurstGolden replays the committed seed-42 transcript through
// SubmitBurst (size-1 bursts at each request's own arrival): the burst
// path must reproduce testdata/golden_seed42.txt byte for byte, pinning it
// to the same committed behavior as the per-request verbs.
func TestSubmitBurstGolden(t *testing.T) {
	reqs := goldenWorkload()
	variants := []struct {
		policy admission.Policy
		name   string
		masked bool
	}{
		{admission.Delay, "delay/unmasked", false},
		{admission.Delay, "delay/masked", true},
		{admission.Reject, "reject/unmasked", false},
		{admission.Reject, "reject/masked", true},
	}
	var golden bytes.Buffer
	for _, v := range variants {
		for _, facade := range []string{"sequential/", "concurrent/"} {
			sub := asBurst(goldenSystem(t, v.policy, v.masked, facade == "concurrent/"))
			goldenRun(&golden, facade+v.name, &burstGoldenAdapter{sub: sub}, reqs)
		}
	}
	compareGolden(t, filepath.Join("testdata", "golden_seed42.txt"), golden.Bytes())
}

// burstGoldenAdapter presents SubmitBurst as the per-request submitter
// interface so goldenRun can drive it.
type burstGoldenAdapter struct {
	sub burstSubmitter
	sc  BurstScratch
	one [1]BurstReq
}

func (a *burstGoldenAdapter) Submit(arrival float64, block int64) Outcome {
	a.one[0] = BurstReq{Block: block}
	return a.sub.SubmitBurst(arrival, a.one[:], &a.sc)[0]
}

func (a *burstGoldenAdapter) SubmitWrite(arrival float64, block int64) Outcome {
	a.one[0] = BurstReq{Block: block, Write: true}
	return a.sub.SubmitBurst(arrival, a.one[:], &a.sc)[0]
}

// TestSubmitBurstEmpty pins the edge cases: an empty burst admits nothing
// and returns an empty slice, with or without scratch.
func TestSubmitBurstEmpty(t *testing.T) {
	sys, err := New(Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewConcurrent(sys)
	if outs := cs.SubmitBurst(0, nil, nil); len(outs) != 0 {
		t.Fatalf("empty burst returned %d outcomes", len(outs))
	}
	var sc BurstScratch
	if outs := cs.SubmitBurst(0, []BurstReq{}, &sc); len(outs) != 0 {
		t.Fatalf("empty burst with scratch returned %d outcomes", len(outs))
	}
	if out := cs.Submit(0, 1); out.Rejected {
		t.Fatal("admission state disturbed by empty bursts")
	}
}

// TestConcurrentBurstAllocFree pins the steady-state allocation count of
// ConcurrentSystem.SubmitBurst with a reused scratch to zero. Every run
// admits one fresh window inside a single pre-warmed counter chunk, so the
// ledger fast path (chunk cache hit) is the one measured — the occasional
// chunk-boundary allocation is amortized O(1/chunkSize) and excluded by
// construction.
func TestConcurrentBurstAllocFree(t *testing.T) {
	sys, err := New(Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewConcurrent(sys)
	interval := cs.IntervalMS()
	var sc BurstScratch
	// 2 reads + 1 write fill S(1) = 5 slots exactly: one window per run.
	reqs := []BurstReq{{Block: 1}, {Block: 2, Write: true}, {Block: 3}}
	w := int64(chunkSize) // chunk 1: warm-up call creates and caches it
	run := func() {
		outs := cs.SubmitBurst(float64(w)*interval, reqs, &sc)
		for _, o := range outs {
			if o.Rejected {
				t.Fatal("burst rejected in a fresh window")
			}
		}
		w++
	}
	if n := testing.AllocsPerRun(50, run); n != 0 {
		t.Fatalf("SubmitBurst allocates %.2f per run on warm scratch, want 0", n)
	}
}

// TestConcurrentBatchAllocFree pins ConcurrentSystem.SubmitBatch with a
// reused scratch to zero steady-state allocations, same construction as
// the burst pin.
func TestConcurrentBatchAllocFree(t *testing.T) {
	sys, err := New(Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	cs := NewConcurrent(sys)
	interval := cs.IntervalMS()
	var sc BatchScratch
	blocks := []int64{1, 2, 3, 4}
	w := int64(chunkSize)
	run := func() {
		outs := cs.SubmitBatch(float64(w)*interval, blocks, &sc)
		for _, o := range outs {
			if o.Rejected {
				t.Fatal("batch rejected in a fresh window")
			}
		}
		w++
	}
	if n := testing.AllocsPerRun(50, run); n != 0 {
		t.Fatalf("SubmitBatch allocates %.2f per run on warm scratch, want 0", n)
	}
}
