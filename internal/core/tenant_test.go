package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"flashqos/internal/admission"
	"flashqos/internal/design"
)

// tenantSystem builds a ConcurrentSystem over the paper (9,3,1) design with
// a tenant policy installed. ServiceMS is pinned tiny so device scheduling
// never competes with admission control and per-window counts stay exact.
func tenantSystem(t *testing.T, cfg Config, specs ...admission.TenantSpec) *ConcurrentSystem {
	t.Helper()
	if cfg.Design == nil {
		cfg.Design = design.Paper931()
	}
	if cfg.ServiceMS == 0 {
		cfg.ServiceMS = 0.001
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewConcurrent(sys)
	if len(specs) > 0 {
		if err := cs.SetTenants(specs); err != nil {
			t.Fatal(err)
		}
	}
	return cs
}

func TestTenantZeroMatchesUntagged(t *testing.T) {
	// Tenant 0 must behave exactly like the tenant-less entry point even
	// when a policy is installed: untenanted traffic runs ungated.
	a := tenantSystem(t, Config{M: 2})
	b := tenantSystem(t, Config{M: 2}, admission.TenantSpec{Name: "x", Reserve: 1, Weight: 1})
	for i := 0; i < 200; i++ {
		arrival := float64(i) * 0.01
		oa := a.Submit(arrival, int64(i))
		ob := b.SubmitTenant(arrival, int64(i), 0)
		ob.Tenant = 0 // both are zero already; make the intent explicit
		if oa != ob {
			t.Fatalf("request %d: untagged %+v != tenant-0 %+v", i, oa, ob)
		}
	}
}

func TestTenantUnknownRejected(t *testing.T) {
	cs := tenantSystem(t, Config{M: 2}, admission.TenantSpec{Name: "a", Weight: 1})
	for _, tenant := range []int32{2, 7, -1} {
		out := cs.SubmitTenant(0, 1, tenant)
		if !out.Rejected || out.OverLimit || out.Unavailable {
			t.Fatalf("tenant %d: %+v, want plain rejection", tenant, out)
		}
		if out.Tenant != tenant {
			t.Fatalf("tenant %d: outcome tagged %d", tenant, out.Tenant)
		}
	}
	if got := cs.WindowCount(0); got != 0 {
		t.Fatalf("unknown-tenant rejections consumed %d ledger slots", got)
	}
}

func TestTenantOverLimitConsumesNoLedger(t *testing.T) {
	// Limit 2: the 3rd..5th arrivals in a window are turned away before any
	// S-bound credit is taken, so untenanted traffic can still fill the
	// window to S.
	cs := tenantSystem(t, Config{M: 2, Policy: admission.Reject},
		admission.TenantSpec{Name: "a", Limit: 2, Weight: 1})
	admitted, overLimit := 0, 0
	for i := 0; i < 5; i++ {
		out := cs.SubmitTenant(0.01*float64(i), int64(i), 1)
		switch {
		case out.OverLimit:
			if !out.Rejected {
				t.Fatalf("over-limit outcome not rejected: %+v", out)
			}
			overLimit++
		case !out.Rejected:
			admitted++
		}
	}
	if admitted != 2 || overLimit != 3 {
		t.Fatalf("admitted=%d overLimit=%d, want 2 and 3", admitted, overLimit)
	}
	if got := cs.WindowCount(0); got != 2 {
		t.Fatalf("window holds %d slots, want 2 (over-limit must not consume credit)", got)
	}
	// The remaining S-2 slots are still there for other traffic.
	s := cs.S()
	for i := 0; i < s-2; i++ {
		if out := cs.Submit(0.05, int64(100+i)); out.Rejected {
			t.Fatalf("untenanted fill %d rejected with %d/%d slots used", i, cs.WindowCount(0), s)
		}
	}
	c, ok := cs.TenantCounters("a")
	if !ok || c.Admitted != 2 || c.OverLimit != 3 || c.Rejected != 3 {
		t.Fatalf("counters = %+v ok=%v, want Admitted=2 OverLimit=3 Rejected=3", c, ok)
	}
}

func TestTenantWriteChargesCSlots(t *testing.T) {
	// A write takes c tenant slots all-or-nothing, mirroring its c-slot
	// ledger reservation. Cap 5 with c=3: one write fits, a second does not.
	cs := tenantSystem(t, Config{M: 2, Policy: admission.Reject},
		admission.TenantSpec{Name: "a", Reserve: 5, Weight: 1},
		admission.TenantSpec{Name: "b", Reserve: 9, Weight: 1},
	)
	if out := cs.SubmitWriteTenant(0, 1, 1); out.Rejected {
		t.Fatalf("first write rejected: %+v", out)
	}
	if out := cs.SubmitWriteTenant(0.01, 2, 1); !out.Rejected {
		t.Fatalf("second write admitted past cap 5: %+v", out)
	}
	// Two reads still fit under the remaining 5-3=2 slots.
	for i := 0; i < 2; i++ {
		if out := cs.SubmitTenant(0.02, int64(10+i), 1); out.Rejected {
			t.Fatalf("read %d rejected with tenant credit left: %+v", i, out)
		}
	}
	if out := cs.SubmitTenant(0.03, 12, 1); !out.Rejected {
		t.Fatalf("read admitted past cap: %+v", out)
	}
}

func TestSubmitBurstTenantEquivalence(t *testing.T) {
	// A tenant-grouped burst must produce exactly the outcomes of the
	// per-request tenant path on an identical system.
	specs := []admission.TenantSpec{
		{Name: "a", Reserve: 3, Limit: 0, Weight: 3},
		{Name: "b", Reserve: 3, Limit: 6, Weight: 1},
	}
	for _, policy := range []admission.Policy{admission.Delay, admission.Reject} {
		ref := tenantSystem(t, Config{M: 2, Policy: policy}, specs...)
		bur := tenantSystem(t, Config{M: 2, Policy: policy}, specs...)
		var sc BurstScratch
		for round := 0; round < 40; round++ {
			arrival := float64(round) * 0.05
			var reqs []BurstReq
			for j := 0; j < 4; j++ {
				reqs = append(reqs, BurstReq{Block: int64(round*16 + j), Tenant: 1})
			}
			for j := 0; j < 4; j++ {
				reqs = append(reqs, BurstReq{Block: int64(round*16 + 8 + j), Tenant: 2})
			}
			reqs = append(reqs, BurstReq{Block: int64(round*16 + 14)}) // untenanted rider
			want := make([]Outcome, len(reqs))
			for i, r := range reqs {
				want[i] = ref.SubmitTenant(arrival, r.Block, r.Tenant)
			}
			got := bur.SubmitBurst(arrival, reqs, &sc)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("policy %v round %d req %d: burst %+v != per-request %+v",
						policy, round, i, got[i], want[i])
				}
			}
		}
	}
}

// TestTenantFairness is the acceptance test for the multi-tenant seam: two
// tenants at 3:1 weights saturating a (9,3,1)/M=2 array (S=14) must see
// the surplus split 3:1 with both reservations honored and zero S-bound
// violations — then a live SetTenants mid-run flips the weights with no
// pause and the second half splits 1:3.
func TestTenantFairness(t *testing.T) {
	const (
		windows = 100 // per phase
		offered = 20  // arrivals per tenant per window — over any cap
	)
	cs := tenantSystem(t, Config{M: 2, Policy: admission.Reject},
		admission.TenantSpec{Name: "alpha", Reserve: 3, Weight: 3},
		admission.TenantSpec{Name: "beta", Reserve: 3, Weight: 1},
	)
	s := cs.S()
	if s != 14 {
		t.Fatalf("S = %d, want 14 (c=3, M=2)", s)
	}
	interval := cs.IntervalMS()

	// phase saturates both tenants concurrently over [w0, w0+windows) and
	// returns admitted counts per tenant. The goroutines race within each
	// window but barrier between windows: logical arrival times drive the
	// device scheduler, so a tenant racing whole windows ahead would book
	// every replica into the future and starve the other's timestamps —
	// a harness artifact, not an admission property.
	phase := func(w0 int64) (admA, admB int64) {
		counts := [2]int64{}
		for w := w0; w < w0+windows; w++ {
			var wg sync.WaitGroup
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					tenant := int32(g + 1)
					var admitted int64
					for j := 0; j < offered; j++ {
						arrival := float64(w)*interval + interval*(float64(j)+0.5)/offered
						block := w*1000 + int64(g)*500 + int64(j)
						if out := cs.SubmitTenant(arrival, block, tenant); !out.Rejected {
							admitted++
						}
					}
					counts[g] += admitted
				}(g)
			}
			wg.Wait()
		}
		return counts[0], counts[1]
	}

	checkRatio := func(name string, admA, admB, resA, resB int64, want float64) {
		t.Helper()
		if admA < resA*windows || admB < resB*windows {
			t.Fatalf("%s: reservations not honored: alpha %d/%d, beta %d/%d",
				name, admA, resA*windows, admB, resB*windows)
		}
		surplusA := float64(admA - resA*windows)
		surplusB := float64(admB - resB*windows)
		ratio := surplusA / surplusB
		if ratio < want*0.9 || ratio > want*1.1 {
			t.Fatalf("%s: surplus ratio %.3f (alpha %v, beta %v), want %.2f ±10%%",
				name, ratio, surplusA, surplusB, want)
		}
	}

	admA, admB := phase(0)
	checkRatio("phase 1 (3:1)", admA, admB, 3, 3, 3.0)

	// Live reconfiguration: swap the weights with requests conceptually in
	// flight — no pause, the atomic snapshot swap is the whole operation.
	if err := cs.SetTenants([]admission.TenantSpec{
		{Name: "alpha", Reserve: 3, Weight: 1},
		{Name: "beta", Reserve: 3, Weight: 3},
	}); err != nil {
		t.Fatal(err)
	}
	admA2, admB2 := phase(int64(windows))
	checkRatio("phase 2 (1:3 after live SetTenants)", admB2, admA2, 3, 3, 3.0)

	if got := cs.MaxWindowCount(); got > s {
		t.Fatalf("S-bound violated: max window count %d > S=%d", got, s)
	}
	for _, name := range []string{"alpha", "beta"} {
		c, ok := cs.TenantCounters(name)
		if !ok {
			t.Fatalf("no counters for %s", name)
		}
		if c.Deficit != 0 {
			t.Errorf("%s: reservation deficit %d, want 0 (Σcaps = S)", name, c.Deficit)
		}
	}
	ca, _ := cs.TenantCounters("alpha")
	cb, _ := cs.TenantCounters("beta")
	if ca.Admitted != admA+admA2 || cb.Admitted != admB+admB2 {
		t.Errorf("gauges (%d, %d) disagree with observed admissions (%d, %d)",
			ca.Admitted, cb.Admitted, admA+admA2, admB+admB2)
	}
}

// TestTenantReconfigUnderLoad hammers SetTenants while submitters are in
// flight: no torn snapshots, no S-bound violation, and the gate keeps
// serving throughout (the stress anchor for the CI race step).
func TestTenantReconfigUnderLoad(t *testing.T) {
	cs := tenantSystem(t, Config{M: 2, Policy: admission.Reject},
		admission.TenantSpec{Name: "alpha", Reserve: 3, Weight: 3},
		admission.TenantSpec{Name: "beta", Reserve: 3, Weight: 1},
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// A shared logical clock keeps arrival timestamps roughly ordered
	// across the submitters (the device scheduler books replicas in
	// logical time, so unbounded skew between goroutines is a harness
	// artifact the engine does not owe service under).
	var clock atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := int32(g%2 + 1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				arrival := float64(clock.Add(1)) * 0.01
				cs.SubmitTenant(arrival, int64(g*1_000_000+i), tenant)
			}
		}(g)
	}
	// Churn the policy until both tenants have demonstrably served traffic
	// through at least 200 reconfigurations (the submitters need wall time
	// to get going; Configure alone is near-instant).
	served := func(name string) bool {
		c, ok := cs.TenantCounters(name)
		return ok && c.Admitted > 0
	}
	for i := 0; i < 200 || !served("alpha") || !served("beta"); i++ {
		if i >= 200_000 {
			t.Fatal("submitters made no progress under reconfig churn")
		}
		specs := []admission.TenantSpec{
			{Name: "alpha", Reserve: int(i%4) + 1, Weight: float64(i%3) + 1},
			{Name: "beta", Reserve: 3, Limit: 10 * (i%2 + 1), Weight: 1},
		}
		if err := cs.SetTenants(specs); err != nil {
			t.Errorf("reconfig %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if got := cs.MaxWindowCount(); got > cs.S() {
		t.Fatalf("S-bound violated under reconfig churn: %d > %d", got, cs.S())
	}
	ca, ok := cs.TenantCounters("alpha")
	if !ok || ca.Admitted == 0 {
		t.Fatalf("alpha served nothing under churn: %+v ok=%v", ca, ok)
	}
}
