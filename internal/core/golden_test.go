package core

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"flashqos/internal/admission"
	"flashqos/internal/design"
	"flashqos/internal/health"
	"flashqos/internal/sampling"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenRequest is one record of the fixed seed-42 workload.
type goldenRequest struct {
	arrival float64
	block   int64
	write   bool
}

// goldenWorkload generates the committed workload: 1500 requests with
// sorted arrivals dense enough to overflow windows, ~1/8 writes.
func goldenWorkload() []goldenRequest {
	rng := rand.New(rand.NewSource(42))
	reqs := make([]goldenRequest, 1500)
	arrivals := make([]float64, len(reqs))
	for i := range arrivals {
		arrivals[i] = rng.Float64() * 25 // ms
	}
	sort.Float64s(arrivals)
	for i := range reqs {
		reqs[i] = goldenRequest{
			arrival: arrivals[i],
			block:   int64(rng.Intn(4000)),
			write:   rng.Intn(8) == 0,
		}
	}
	return reqs
}

type submitter interface {
	Submit(arrival float64, dataBlock int64) Outcome
	SubmitWrite(arrival float64, dataBlock int64) Outcome
}

// goldenRun drives the workload through one system variant and appends
// the exact outcomes.
func goldenRun(buf *bytes.Buffer, label string, sub submitter, reqs []goldenRequest) {
	fmt.Fprintf(buf, "== %s ==\n", label)
	for i, r := range reqs {
		var out Outcome
		if r.write {
			out = sub.SubmitWrite(r.arrival, r.block)
		} else {
			out = sub.Submit(r.arrival, r.block)
		}
		fmt.Fprintf(buf, "%4d arr=%.9f blk=%d w=%v -> rej=%v dev=%d adm=%.9f start=%.9f fin=%.9f delay=%.9f delayed=%v\n",
			i, r.arrival, r.block, r.write, out.Rejected, out.Device, out.Admitted, out.Start, out.Finish, out.Delay, out.Delayed)
	}
}

// goldenSystem builds one variant. masked fails device 4 before any
// submission, so every decision runs against a degraded S' mask.
func goldenSystem(t *testing.T, policy admission.Policy, masked, concurrent bool) submitter {
	t.Helper()
	sys, err := New(Config{Design: design.Paper931(), Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	if masked {
		mon, err := sys.NewHealthMonitor(0, health.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := mon.Fail(4); err != nil {
			t.Fatal(err)
		}
	}
	if concurrent {
		return NewConcurrent(sys)
	}
	return sys
}

// TestGoldenSeed42 locks the engine's observable behavior to a committed
// byte-for-byte transcript: the same seed-42 workload through the
// sequential and concurrent facades, masked (device 4 failed, S'=3) and
// unmasked, under both admission policies. The sequential and concurrent
// sections must be identical to each other (the bit-identity contract of
// the shared engine) and to testdata/golden_seed42.txt (no drift across
// refactors). Regenerate deliberately with -update.
func TestGoldenSeed42(t *testing.T) {
	reqs := goldenWorkload()
	variants := []struct {
		policy admission.Policy
		name   string
		masked bool
	}{
		{admission.Delay, "delay/unmasked", false},
		{admission.Delay, "delay/masked", true},
		{admission.Reject, "reject/unmasked", false},
		{admission.Reject, "reject/masked", true},
	}
	var golden bytes.Buffer
	for _, v := range variants {
		var seq, conc bytes.Buffer
		goldenRun(&seq, "sequential/"+v.name, goldenSystem(t, v.policy, v.masked, false), reqs)
		goldenRun(&conc, "concurrent/"+v.name, goldenSystem(t, v.policy, v.masked, true), reqs)
		// Bit-identity across facades: same engine, same outputs, modulo
		// the section label.
		seqBody := bytes.TrimPrefix(seq.Bytes(), []byte("== sequential/"+v.name+" ==\n"))
		concBody := bytes.TrimPrefix(conc.Bytes(), []byte("== concurrent/"+v.name+" ==\n"))
		if !bytes.Equal(seqBody, concBody) {
			t.Errorf("%s: concurrent facade diverges from sequential facade", v.name)
		}
		golden.Write(seq.Bytes())
		golden.Write(conc.Bytes())
	}

	compareGolden(t, filepath.Join("testdata", "golden_seed42.txt"), golden.Bytes())
}

// compareGolden checks (or, with -update, rewrites) a committed transcript.
func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		g, w := got, want
		line, col := 1, 0
		for i := 0; i < len(g) && i < len(w); i++ {
			if g[i] != w[i] {
				break
			}
			col++
			if g[i] == '\n' {
				line++
				col = 0
			}
		}
		t.Fatalf("output differs from %s at line %d (got %d bytes, want %d); engine behavior drifted — if intentional, regenerate with -update",
			path, line, len(g), len(w))
	}
}

// goldenStatTable samples the P_k table for the statistical goldens with
// every degree of freedom pinned — seed, trial count, AND worker count
// (trials are sharded worker-round-robin with per-worker RNG streams, so
// the result depends on Workers; per-k counts are summed as int64, so it
// does not depend on scheduling).
func goldenStatTable(t *testing.T) *sampling.Table {
	t.Helper()
	base, err := New(Config{Design: design.Paper931()})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := sampling.Estimate(base.Allocator(), sampling.Options{
		MaxK: 25, Trials: 4000, Seed: 3, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// goldenStatSystem builds one ε > 0 variant over the pinned table.
func goldenStatSystem(t *testing.T, policy admission.Policy, epsilon float64, tab *sampling.Table, concurrent bool) submitter {
	t.Helper()
	sys, err := New(Config{Design: design.Paper931(), Policy: policy, Epsilon: epsilon, Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	if concurrent {
		return NewConcurrent(sys)
	}
	return sys
}

// qOf reads the violation-probability estimate off either facade.
func qOf(sub submitter) float64 {
	switch s := sub.(type) {
	case *System:
		return s.Q()
	case *ConcurrentSystem:
		return s.Q()
	}
	panic("unknown submitter")
}

// TestGoldenStatSeed42 locks the statistical (ε > 0) engine to a committed
// byte-for-byte transcript, exactly as TestGoldenSeed42 does for the
// deterministic one: the seed-42 workload through the sequential facade
// (the historical serial path) and the concurrent facade single-threaded,
// at a tight and a loose ε under both policies, over a fully pinned P_k
// table. Each section ends with the controller's final Q, so the estimator
// itself is pinned too. The serial and concurrent sections must match each
// other byte-for-byte — the correctness headline of the statistical
// parallelization: the snapshot/merge protocol is a parallelization of the
// serial estimator, not a different policy. Regenerate deliberately with
// -update.
func TestGoldenStatSeed42(t *testing.T) {
	reqs := goldenWorkload()
	tab := goldenStatTable(t)
	variants := []struct {
		policy  admission.Policy
		epsilon float64
		name    string
	}{
		{admission.Delay, 0.002, "delay/eps=0.002"},
		{admission.Delay, 0.05, "delay/eps=0.05"},
		{admission.Reject, 0.002, "reject/eps=0.002"},
		{admission.Reject, 0.05, "reject/eps=0.05"},
	}
	var golden bytes.Buffer
	for _, v := range variants {
		var seq, conc bytes.Buffer
		seqSys := goldenStatSystem(t, v.policy, v.epsilon, tab, false)
		concSys := goldenStatSystem(t, v.policy, v.epsilon, tab, true)
		goldenRun(&seq, "sequential/"+v.name, seqSys, reqs)
		fmt.Fprintf(&seq, "Q=%.12f\n", qOf(seqSys))
		goldenRun(&conc, "concurrent/"+v.name, concSys, reqs)
		fmt.Fprintf(&conc, "Q=%.12f\n", qOf(concSys))
		seqBody := bytes.TrimPrefix(seq.Bytes(), []byte("== sequential/"+v.name+" ==\n"))
		concBody := bytes.TrimPrefix(conc.Bytes(), []byte("== concurrent/"+v.name+" ==\n"))
		if !bytes.Equal(seqBody, concBody) {
			t.Errorf("%s: concurrent statistical facade diverges from the serial path", v.name)
		}
		golden.Write(seq.Bytes())
		golden.Write(conc.Bytes())
	}
	compareGolden(t, filepath.Join("testdata", "golden_stat_seed42.txt"), golden.Bytes())
}
