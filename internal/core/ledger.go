package core

import (
	"sync"
	"sync/atomic"
)

// intervalLedger is the per-T-window admission accounting behind the engine
// (§III: at most S requests retrieved per interval). The engine treats the
// ledger as the single source of truth for window counts; the frontier hint
// (advice about windows that can never admit again) is part of the
// interface so the lock-free implementation keeps overload handling O(1)
// amortized while the sequential one ignores it entirely.
//
// Implementations:
//
//   - seqLedger: a plain map for single-caller systems. No atomics, no
//     frontier; bit-identical to the historical System bookkeeping.
//   - shardedLedger: sharded per-window atomic counters with CAS
//     reservation and a monotone frontier hint; the structure behind
//     ConcurrentSystem since PR 1.
type intervalLedger interface {
	// count returns the admitted slots currently recorded for window w. It
	// must not create state for w (closeWindows walks cold windows).
	count(w int64) int
	// tryReserve claims n slots in window w unless that would push the
	// count past limit (S, or the degraded S' snapshot the caller took).
	tryReserve(w int64, n, limit int) bool
	// reserveUpTo claims as many of n slots in window w as fit under limit
	// and returns how many were claimed (0 means the window is full). The
	// burst path uses it to pay one grouped counter update per (window,
	// burst) instead of one CAS per request; unused claims must be released.
	reserveUpTo(w int64, n, limit int) int
	// add claims n slots unconditionally — the statistical controller may
	// admit past the deterministic limit (§III-B over-admission).
	add(w int64, n int)
	// release returns n slots claimed by tryReserve/add (used when the
	// scheduler could not serve the request at the reserved time).
	release(w int64, n int)
	// noteFull records that the window just below next was observed full;
	// the frontier extends only when it already points at next (a full
	// window far ahead of the frontier must not starve the windows between).
	noteFull(next int64)
	// noteDeadBefore raises the frontier to w outright — callers must
	// guarantee no request can ever be admitted below w. The one such proof
	// is device exhaustion (see engine.deadBefore).
	noteDeadBefore(w int64)
	// notePrunable tells the ledger that windows strictly below w will
	// never be read again (the statistical gate folded them into the
	// interval history), so their counters may be reclaimed. Advisory, like
	// the hint: implementations keep a safety margin below the floor so
	// concurrently in-flight stragglers still see their counts.
	notePrunable(w int64)
	// frontier returns the earliest window admission scans may start from.
	frontier() int64
	// tracksFrontier reports whether the hint methods do anything; the
	// engine skips computing dead-window proofs when they don't.
	tracksFrontier() bool
	// maxCount returns the largest count recorded for any tracked window
	// (test hook; after quiescence it must never exceed S).
	maxCount() int
	// reset drops all window state.
	reset()
}

// seqLedger is the single-caller ledger: a plain window → count map, the
// exact bookkeeping the sequential System used before the engine split.
type seqLedger struct {
	counts map[int64]int
}

func newSeqLedger() *seqLedger { return &seqLedger{counts: make(map[int64]int)} }

func (l *seqLedger) count(w int64) int { return l.counts[w] }

func (l *seqLedger) tryReserve(w int64, n, limit int) bool {
	if l.counts[w]+n > limit {
		return false
	}
	l.counts[w] += n
	return true
}

func (l *seqLedger) reserveUpTo(w int64, n, limit int) int {
	room := limit - l.counts[w]
	if room <= 0 {
		return 0
	}
	if n > room {
		n = room
	}
	l.counts[w] += n
	return n
}

func (l *seqLedger) add(w int64, n int)     { l.counts[w] += n }
func (l *seqLedger) release(w int64, n int) { l.counts[w] -= n }
func (l *seqLedger) noteFull(int64)         {}
func (l *seqLedger) noteDeadBefore(int64)   {}
func (l *seqLedger) notePrunable(int64)     {}
func (l *seqLedger) frontier() int64        { return 0 }
func (l *seqLedger) tracksFrontier() bool   { return false }

func (l *seqLedger) maxCount() int {
	max := 0
	for _, c := range l.counts {
		if c > max {
			max = c
		}
	}
	return max
}

func (l *seqLedger) reset() { l.counts = make(map[int64]int) }

const (
	windowShardBits  = 6
	windowShardCount = 1 << windowShardBits

	// Counters are allocated in chunks of 64 consecutive windows: one map
	// entry and one allocation cover chunkSize windows, so map traffic
	// (hash, assign, prune scans) is paid once per chunk instead of once
	// per window, and the frontier's working set is one or two chunks.
	chunkBits = 6
	chunkSize = 1 << chunkBits

	// shardPruneLen bounds per-shard map growth on long-running servers:
	// once a shard tracks this many chunks (chunkSize windows each),
	// chunks entirely below the reclaim floor — the admission frontier in
	// deterministic mode, the statistical gate's fold progress in ε > 0
	// mode (notePrunable); both only move forward — are dropped.
	shardPruneLen    = 512
	shardPruneMargin = 1024 // margin in windows kept below the floor
)

// counterChunk holds the admission counters for chunkSize consecutive
// windows (chunk index ck covers windows ck·chunkSize … ck·chunkSize+63).
type counterChunk struct {
	counts [chunkSize]atomic.Int32
}

type windowShard struct {
	mu     sync.Mutex
	chunks map[int64]*counterChunk
}

// counterCacheSize is the direct-mapped cache of recently resolved counter
// chunks. Submissions cluster around the admission frontier, so one or two
// chunks absorb almost every lookup; the cache turns those into one atomic
// pointer load plus an index instead of a shard mutex + map access.
const counterCacheSize = 256

// cachedChunk pins one resolved (chunk index, chunk) pair. The chunk
// pointer is the canonical one stored in the shard map — the cache never
// creates chunks, so two racing publishers for the same index always
// publish the same pointer and per-window CAS accounting stays sound.
type cachedChunk struct {
	ck int64
	p  *counterChunk
}

// shardedLedger is the concurrent ledger: interval-window admission counts
// live in sharded per-window atomic counters. A request reserves a slot
// with a CAS loop, so independent submissions — different windows, or free
// capacity in the same window — proceed in parallel while the per-window
// count provably never exceeds the limit (the test suite enforces this
// under -race). A frontier hint remembers the earliest window that was
// ever observed full, so admission under overload is O(1) amortized
// instead of scanning full windows one by one.
type shardedLedger struct {
	// hint is the earliest window not yet observed full; windows below it
	// are skipped on the admission fast path. It only advances, and it is
	// advisory: per-window correctness comes from the CAS reservation, the
	// hint only short-circuits the scan under sustained overload.
	hint atomic.Int64

	// front is the most recently resolved chunk, kept beside the hint so
	// the admission scan's two per-request ledger reads — frontier and the
	// frontier window's counter — share one cache line. Purely a first
	// lookup level over the mapped cache: it holds canonical chunk
	// pointers only, so the staleness argument below applies unchanged.
	front atomic.Pointer[cachedChunk]

	// prunable is the statistical gate's fold progress (notePrunable):
	// windows below it were merged into the interval history and are never
	// read again. It feeds the same reclaim floor as the hint — in ε > 0
	// mode the hint stays 0 (statistical admission keeps its own frontier
	// in the gate), so without this floor the shard maps would grow with
	// the run and every prune scan would walk them in vain.
	prunable atomic.Int64

	shards [windowShardCount]windowShard

	// cache short-circuits chunk resolution for hot windows, indexed by
	// chunk modulo counterCacheSize (direct-mapped, last publisher wins).
	// A stale entry can only describe a pruned chunk — pruning only drops
	// chunks below the reclaim floor, which are never read again — so a
	// hit never resurrects state the map has forgotten about a live chunk.
	cache [counterCacheSize]atomic.Pointer[cachedChunk]
}

func newShardedLedger() *shardedLedger { return &shardedLedger{} }

// counter returns the admission counter for window w, creating its chunk
// if needed. The fast path — chunk already cached — is small enough to
// inline into tryReserve/add/release; resolution through the shard map
// lives in counterSlow.
func (l *shardedLedger) counter(w int64) *atomic.Int32 {
	ck := w >> chunkBits
	if e := l.front.Load(); e != nil && e.ck == ck {
		return &e.p.counts[w&(chunkSize-1)]
	}
	if e := l.cache[uint64(ck)&(counterCacheSize-1)].Load(); e != nil && e.ck == ck {
		l.front.Store(e)
		return &e.p.counts[w&(chunkSize-1)]
	}
	return l.counterSlow(w, ck)
}

// counterSlow resolves (and creates if needed) w's chunk through the shard
// map, then publishes it to the cache. The shard lock is held only for the
// map access; the counter itself is operated on with atomics.
func (l *shardedLedger) counterSlow(w, ck int64) *atomic.Int32 {
	slot := &l.cache[uint64(ck)&(counterCacheSize-1)]
	sh := &l.shards[uint64(ck)&(windowShardCount-1)]
	sh.mu.Lock()
	if sh.chunks == nil {
		sh.chunks = make(map[int64]*counterChunk)
	}
	p, ok := sh.chunks[ck]
	if !ok {
		if len(sh.chunks) >= shardPruneLen {
			floor := l.hint.Load()
			if pr := l.prunable.Load(); pr > floor {
				floor = pr
			}
			// A chunk is reclaimable only when every window in it sits
			// below the margin-padded floor.
			floorCk := (floor - shardPruneMargin) >> chunkBits
			for k := range sh.chunks {
				if k < floorCk {
					delete(sh.chunks, k)
				}
			}
		}
		p = new(counterChunk)
		sh.chunks[ck] = p
	}
	sh.mu.Unlock()
	e := &cachedChunk{ck: ck, p: p}
	slot.Store(e)
	l.front.Store(e)
	return &p.counts[w&(chunkSize-1)]
}

func (l *shardedLedger) count(w int64) int {
	ck := w >> chunkBits
	if e := l.cache[uint64(ck)&(counterCacheSize-1)].Load(); e != nil && e.ck == ck {
		return int(e.p.counts[w&(chunkSize-1)].Load())
	}
	sh := &l.shards[uint64(ck)&(windowShardCount-1)]
	sh.mu.Lock()
	p := sh.chunks[ck]
	sh.mu.Unlock()
	if p == nil {
		return 0
	}
	return int(p.counts[w&(chunkSize-1)].Load())
}

// tryReserve atomically claims n admission slots in window w. During a
// mask transition concurrent callers may briefly hold different limits;
// each CAS enforces the limit its caller observed, so the count never
// exceeds the largest concurrently valid guarantee.
func (l *shardedLedger) tryReserve(w int64, n, limit int) bool {
	c := l.counter(w)
	for {
		v := c.Load()
		if v+int32(n) > int32(limit) {
			return false
		}
		if c.CompareAndSwap(v, v+int32(n)) {
			return true
		}
	}
}

// reserveUpTo claims min(n, room) slots in window w with one CAS loop —
// the grouped form of tryReserve behind the burst path. Like tryReserve,
// each CAS enforces the limit its caller observed.
func (l *shardedLedger) reserveUpTo(w int64, n, limit int) int {
	c := l.counter(w)
	for {
		v := c.Load()
		room := int32(limit) - v
		if room <= 0 {
			return 0
		}
		take := int32(n)
		if take > room {
			take = room
		}
		if c.CompareAndSwap(v, v+take) {
			return int(take)
		}
	}
}

func (l *shardedLedger) add(w int64, n int) { l.counter(w).Add(int32(n)) }

func (l *shardedLedger) release(w int64, n int) { l.counter(w).Add(int32(-n)) }

// noteFull records that the window below next was observed full. The hint
// is a "no admission possible below" *prefix*, so a full window may only
// extend it contiguously: a request can observe a full window far ahead
// of the frontier (its admit time jumps over windows when its replica
// devices are busy) while the skipped windows still have capacity for
// other blocks. Advancing past those would starve them, so only a
// failure at the frontier window itself extends it — the scan reports a
// full window w as noteFull(w+1), so the contiguous case is next == h+1.
func (l *shardedLedger) noteFull(next int64) {
	if h := l.hint.Load(); next == h+1 {
		l.hint.CompareAndSwap(h, next)
	}
}

// noteDeadBefore raises the hint to w outright — callers must guarantee no
// request can ever be admitted below w. The one such proof is device
// exhaustion (see engine.deadBefore): windows whose whole time range has
// every device busy are dead no matter how many admission slots remain,
// because both the read path (one idle replica) and the write path (all
// replicas idle) need a device free inside the window.
func (l *shardedLedger) noteDeadBefore(w int64) {
	for {
		h := l.hint.Load()
		if w <= h || l.hint.CompareAndSwap(h, w) {
			return
		}
	}
}

// notePrunable raises the reclaim floor: windows below w were folded into
// the statistical interval history and will never be read again. CAS-max so
// racing merges cannot move it backwards.
func (l *shardedLedger) notePrunable(w int64) {
	for {
		cur := l.prunable.Load()
		if w <= cur || l.prunable.CompareAndSwap(cur, w) {
			return
		}
	}
}

func (l *shardedLedger) frontier() int64      { return l.hint.Load() }
func (l *shardedLedger) tracksFrontier() bool { return true }

func (l *shardedLedger) maxCount() int {
	max := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for _, p := range sh.chunks {
			for j := range p.counts {
				if v := int(p.counts[j].Load()); v > max {
					max = v
				}
			}
		}
		sh.mu.Unlock()
	}
	return max
}

func (l *shardedLedger) reset() {
	l.front.Store(nil)
	for i := range l.cache {
		l.cache[i].Store(nil)
	}
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		sh.chunks = nil
		sh.mu.Unlock()
	}
	l.hint.Store(0)
	l.prunable.Store(0)
}
