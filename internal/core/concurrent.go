package core

import (
	"sync"
	"time"

	"flashqos/internal/admission"
	"flashqos/internal/health"
)

// ConcurrentSystem is a thread-safe admission/retrieval front-end over a
// System, built for the network layer (internal/qosnet) where many tenant
// connections submit requests at once.
//
// Concurrency model (see also ledger.go, statgate.go and engine.go):
//
//   - Replica lookup (block → design block → devices) is pure and runs
//     without any lock. Remap must therefore NOT be called while requests
//     are in flight; ConcurrentSystem deliberately does not expose it.
//   - NewConcurrent swaps the wrapped System's engine onto the sharded-CAS
//     interval ledger (shardedLedger): window admission counts live in
//     sharded per-window atomic counters, and a frontier hint keeps
//     admission under overload O(1) amortized. The submit logic itself is
//     the same engine code the sequential System runs — there is exactly
//     one admission/retrieval implementation.
//   - Device state (per-device next-free times) is the one genuinely
//     global resource: picking the earliest-finishing replica and marking
//     it busy must be atomic across devices, so a short mutex guards the
//     scheduler. Everything else — parsing, replica lookup, window
//     reservation, response formatting — runs outside it.
//   - Statistical mode (Epsilon > 0) runs concurrently too: admissions
//     evaluate a published snapshot of the Q bound (one atomic pointer
//     load), per-window R_k counts accumulate in the same sharded ledger
//     counters as deterministic mode, and closed windows merge into the
//     estimator behind a short lock taken once per T-window, not per
//     request (statGate). Single-threaded the outcomes are bit-identical
//     to the sequential System — enforced byte-for-byte by the ε > 0
//     golden transcripts — and under concurrency the snapshot a decision
//     sees is at most one in-flight merge stale (DESIGN.md §10).
//
// The wrapped System must not be used directly while a ConcurrentSystem is
// serving it.
type ConcurrentSystem struct {
	sys *System
}

// NewConcurrent wraps a System for concurrent submission, re-plugging its
// engine onto the sharded ledger and a real scheduler mutex. Admission
// state accumulated through the sequential facade is dropped. The System
// must not be used concurrently elsewhere.
func NewConcurrent(sys *System) *ConcurrentSystem {
	eng := sys.engine
	eng.ledger = newShardedLedger()
	eng.schedMu = new(sync.Mutex)
	eng.hinted = eng.ledger.tracksFrontier() && eng.stat == nil
	return &ConcurrentSystem{sys: sys}
}

// System returns the wrapped sequential System. Callers must not submit to
// it while the ConcurrentSystem is in use.
func (s *ConcurrentSystem) System() *System { return s.sys }

// S returns the admission limit S(M).
func (s *ConcurrentSystem) S() int { return s.sys.s }

// EffectiveS returns the current admission limit (S' when degraded).
func (s *ConcurrentSystem) EffectiveS() int { return s.sys.EffectiveS() }

// Health returns the attached device-health monitor (nil when none).
func (s *ConcurrentSystem) Health() *health.Monitor { return s.sys.health }

// IntervalMS returns the QoS interval T in milliseconds.
func (s *ConcurrentSystem) IntervalMS() float64 { return s.sys.cfg.IntervalMS }

// Replicas returns the devices storing a data block's copies.
func (s *ConcurrentSystem) Replicas(dataBlock int64) []int { return s.sys.Replicas(dataBlock) }

// DesignBlock returns the design block a data block maps to.
func (s *ConcurrentSystem) DesignBlock(dataBlock int64) int {
	return s.sys.mapper.DesignBlock(dataBlock)
}

// Q returns the statistical controller's violation-probability estimate
// (0 for deterministic systems). Lock-free: it reads the same published
// snapshot admissions decide against.
func (s *ConcurrentSystem) Q() float64 { return s.sys.Q() }

// StatIntervals returns the number of T-windows folded into the
// statistical estimator so far (0 for deterministic systems).
func (s *ConcurrentSystem) StatIntervals() int64 {
	if s.sys.stat == nil {
		return 0
	}
	return s.sys.stat.intervals()
}

// RefreshTable re-estimates the statistical controller's sampled P_k table
// with `trials` Monte-Carlo trials (parallelized across workers, each
// owning a preallocated maxflow.Solver) and installs it atomically. Safe
// to call while requests are in flight: admissions keep reading the
// snapshot they loaded until the refreshed one is published. Errors for
// deterministic systems.
func (s *ConcurrentSystem) RefreshTable(trials int, seed int64) error {
	return s.sys.refreshTable(trials, seed)
}

// StartTableRefresh launches a background goroutine that re-estimates the
// P_k table every `every` (seed advances per round so precision compounds
// rather than repeating one estimate). The returned stop function halts
// the loop and waits for an in-flight refresh to finish. Errors for
// deterministic systems; refresh errors after start are silently dropped
// (the previous table simply stays in force).
func (s *ConcurrentSystem) StartTableRefresh(every time.Duration, trials int, seed int64) (stop func(), err error) {
	if s.sys.stat == nil {
		return nil, s.sys.refreshTable(trials, seed) // returns the "no table" error
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		round := int64(0)
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				round++
				_ = s.sys.refreshTable(trials, seed+round)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}, nil
}

// WindowCount reports the admitted count currently recorded for window w
// (test hook).
func (s *ConcurrentSystem) WindowCount(w int64) int { return s.sys.ledger.count(w) }

// Window returns the T-window index of a time (same arithmetic as the
// sequential System).
func (s *ConcurrentSystem) Window(t float64) int64 { return s.sys.window(t) }

// MaxWindowCount returns the largest admitted count recorded for any
// tracked window — after quiescence it must never exceed S in
// deterministic mode (test hook; statistical mode over-admits by design).
func (s *ConcurrentSystem) MaxWindowCount() int { return s.sys.ledger.maxCount() }

// Submit runs one block read through concurrent admission control and
// online retrieval. Unlike System.Submit, arrivals need not be ordered:
// callers on different goroutines submit with whatever timestamps they
// observed. The deterministic path tolerates out-of-order arrivals because
// window reservation is commutative; the statistical path tolerates them
// because a window merged before a straggler lands simply misses that
// straggler in its recorded size — the bounded-staleness the estimator
// already prices in.
func (s *ConcurrentSystem) Submit(arrival float64, dataBlock int64) Outcome {
	return s.sys.submit(arrival, dataBlock, 0)
}

// SubmitTenant is Submit with a tenant identity: the request passes the
// lock-free per-tenant mClock gate (arrival limit, then a
// reserved/weighted window-cap acquisition) before any S-bound ledger
// credit is consumed. Tenant 0 behaves exactly like Submit.
func (s *ConcurrentSystem) SubmitTenant(arrival float64, dataBlock int64, tenant int32) Outcome {
	return s.sys.submit(arrival, dataBlock, tenant)
}

// SubmitWrite schedules a block write: c admission slots in one window and
// every replica device idle simultaneously, as in System.SubmitWrite.
func (s *ConcurrentSystem) SubmitWrite(arrival float64, dataBlock int64) Outcome {
	return s.sys.submitWrite(arrival, dataBlock, 0)
}

// SubmitWriteTenant is SubmitWrite with a tenant identity (see
// System.SubmitWriteTenant).
func (s *ConcurrentSystem) SubmitWriteTenant(arrival float64, dataBlock int64, tenant int32) Outcome {
	return s.sys.submitWrite(arrival, dataBlock, tenant)
}

// SetTenants validates and atomically installs a per-tenant QoS policy
// with no engine pause: the swap publishes an immutable snapshot, and
// concurrent submissions finish against whichever snapshot they loaded
// (see System.SetTenants and internal/admission).
func (s *ConcurrentSystem) SetTenants(specs []admission.TenantSpec) error {
	return s.sys.SetTenants(specs)
}

// TenantSpecs returns a copy of the installed tenant slot table.
func (s *ConcurrentSystem) TenantSpecs() []admission.TenantSpec { return s.sys.TenantSpecs() }

// TenantCounters reads a tenant's admission gauges by name; the gauges
// survive SetTenants reconfiguration.
func (s *ConcurrentSystem) TenantCounters(name string) (admission.Counters, bool) {
	return s.sys.TenantCounters(name)
}

// SubmitBatch admits a set of simultaneous block requests jointly, as in
// System.SubmitBatch. With a non-nil per-caller scratch the steady state
// is allocation-free (AllocsPerRun-pinned) and the returned slice is valid
// until the scratch's next use; a nil scratch allocates fresh buffers.
func (s *ConcurrentSystem) SubmitBatch(arrival float64, blocks []int64, sc *BatchScratch) []Outcome {
	return s.sys.submitBatch(arrival, blocks, 0, sc)
}

// SubmitBatchTenant is SubmitBatch with a tenant identity for the whole
// batch (see System.SubmitBatchTenant).
func (s *ConcurrentSystem) SubmitBatchTenant(arrival float64, blocks []int64, tenant int32, sc *BatchScratch) []Outcome {
	return s.sys.submitBatch(arrival, blocks, tenant, sc)
}
