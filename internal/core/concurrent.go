package core

import (
	"math"
	"sync"
	"sync/atomic"

	"flashqos/internal/admission"
	"flashqos/internal/health"
	"flashqos/internal/retrieval"
)

// ConcurrentSystem is a thread-safe admission/retrieval front-end over a
// System, built for the network layer (internal/qosnet) where many tenant
// connections submit requests at once.
//
// Concurrency model:
//
//   - Replica lookup (block → design block → devices) is pure and runs
//     without any lock. Remap must therefore NOT be called while requests
//     are in flight; ConcurrentSystem deliberately does not expose it.
//   - Interval-window admission counts live in sharded per-window atomic
//     counters. A request reserves a slot with a CAS loop, so independent
//     submissions — different windows, or free capacity in the same
//     window — proceed in parallel while the per-window count provably
//     never exceeds S (the test suite enforces this under -race).
//   - A frontier hint remembers the earliest window that was ever observed
//     full, so admission under overload is O(1) amortized instead of
//     scanning full windows one by one (the sequential Submit's behavior).
//   - Device state (per-device next-free times) is the one genuinely
//     global resource: picking the earliest-finishing replica and marking
//     it busy must be atomic across devices, so a short mutex guards the
//     scheduler. Everything else — parsing, replica lookup, window
//     reservation, response formatting — runs outside it.
//   - Statistical mode (Epsilon > 0) stays fully serialized through the
//     sequential System: the Q estimator folds *closed* windows into its
//     interval history in arrival order, an inherently sequential
//     computation. The serial path clamps arrivals non-decreasing so
//     concurrent callers cannot violate Submit's ordering contract.
//
// The wrapped System must not be used directly while a ConcurrentSystem is
// serving it.
type ConcurrentSystem struct {
	sys *System

	schedMu sync.Mutex // guards sys.sched

	// hint is the earliest window not yet observed full; windows below it
	// are skipped on the admission fast path. It only advances, and it is
	// advisory: per-window correctness comes from the CAS reservation, the
	// hint only short-circuits the scan under sustained overload.
	hint atomic.Int64

	shards [windowShardCount]windowShard

	serialMu    sync.Mutex // statistical mode: serializes the wrapped System
	lastArrival float64    // under serialMu; clamps arrivals non-decreasing
}

const (
	windowShardBits  = 6
	windowShardCount = 1 << windowShardBits

	// shardPruneLen bounds per-shard map growth on long-running servers:
	// once a shard tracks this many windows, counters for windows far below
	// the admission frontier (full and never revisited, because arrivals
	// and the hint only move forward) are dropped.
	shardPruneLen    = 4096
	shardPruneMargin = 1024
)

type windowShard struct {
	mu     sync.Mutex
	counts map[int64]*atomic.Int32
}

// NewConcurrent wraps a System for concurrent submission. The System must
// not be used concurrently elsewhere.
func NewConcurrent(sys *System) *ConcurrentSystem {
	return &ConcurrentSystem{sys: sys}
}

// System returns the wrapped sequential System. Callers must not submit to
// it while the ConcurrentSystem is in use.
func (s *ConcurrentSystem) System() *System { return s.sys }

// S returns the admission limit S(M).
func (s *ConcurrentSystem) S() int { return s.sys.s }

// EffectiveS returns the current admission limit (S' when degraded).
func (s *ConcurrentSystem) EffectiveS() int { return s.sys.EffectiveS() }

// Health returns the attached device-health monitor (nil when none).
func (s *ConcurrentSystem) Health() *health.Monitor { return s.sys.health }

// IntervalMS returns the QoS interval T in milliseconds.
func (s *ConcurrentSystem) IntervalMS() float64 { return s.sys.cfg.IntervalMS }

// Replicas returns the devices storing a data block's copies.
func (s *ConcurrentSystem) Replicas(dataBlock int64) []int { return s.sys.Replicas(dataBlock) }

// DesignBlock returns the design block a data block maps to.
func (s *ConcurrentSystem) DesignBlock(dataBlock int64) int {
	return s.sys.mapper.DesignBlock(dataBlock)
}

// Q returns the statistical controller's violation-probability estimate
// (0 for deterministic systems).
func (s *ConcurrentSystem) Q() float64 {
	if s.sys.stat == nil {
		return 0
	}
	s.serialMu.Lock()
	defer s.serialMu.Unlock()
	return s.sys.Q()
}

// counter returns the admission counter for window w, creating it if
// needed. The shard lock is held only for the map access; the counter
// itself is operated on with atomics.
func (s *ConcurrentSystem) counter(w int64) *atomic.Int32 {
	sh := &s.shards[uint64(w)&(windowShardCount-1)]
	sh.mu.Lock()
	if sh.counts == nil {
		sh.counts = make(map[int64]*atomic.Int32)
	}
	c, ok := sh.counts[w]
	if !ok {
		if len(sh.counts) >= shardPruneLen {
			floor := s.hint.Load() - shardPruneMargin
			for k := range sh.counts {
				if k < floor {
					delete(sh.counts, k)
				}
			}
		}
		c = new(atomic.Int32)
		sh.counts[w] = c
	}
	sh.mu.Unlock()
	return c
}

// reserve atomically claims n admission slots in window w, failing if that
// would push the window past the caller's limit (S, or the degraded S'
// snapshot the caller took). During a mask transition concurrent callers
// may briefly hold different limits; each CAS enforces the limit its
// caller observed, so the count never exceeds the largest concurrently
// valid guarantee.
func (s *ConcurrentSystem) reserve(w int64, n, limit int) bool {
	c := s.counter(w)
	for {
		v := c.Load()
		if v+int32(n) > int32(limit) {
			return false
		}
		if c.CompareAndSwap(v, v+int32(n)) {
			return true
		}
	}
}

// release returns n slots claimed by reserve (used when the scheduler
// could not serve the request at the reserved time).
func (s *ConcurrentSystem) release(w int64, n int) {
	s.counter(w).Add(int32(-n))
}

// advanceHint records that window w was observed full. The hint is a
// "no admission possible below" *prefix*, so a full window may only
// extend it contiguously: a request can observe a full window far ahead
// of the frontier (its admit time jumps over windows when its replica
// devices are busy) while the skipped windows still have capacity for
// other blocks. Advancing past those would starve them, so only a
// failure at the frontier itself extends it.
func (s *ConcurrentSystem) advanceHint(w int64) {
	if h := s.hint.Load(); w == h {
		s.hint.CompareAndSwap(h, w+1)
	}
}

// advanceHintTo raises the hint to w outright — callers must guarantee no
// request can ever be admitted below w. The one such proof is device
// exhaustion (see deadBefore): windows whose whole time range has every
// device busy are dead no matter how many admission slots remain, because
// both the read path (one idle replica) and the write path (all replicas
// idle) need a device free inside the window.
func (s *ConcurrentSystem) advanceHintTo(w int64) {
	for {
		h := s.hint.Load()
		if w <= h || s.hint.CompareAndSwap(h, w) {
			return
		}
	}
}

// deadBefore returns the first window that could still admit a request by
// the device criterion: the window holding the earliest next-free instant
// across ALL devices. Device next-free times only move forward, so every
// window strictly below stays unadmittable forever. Must be called with
// schedMu held.
func (s *ConcurrentSystem) deadBefore() int64 {
	minAll := math.Inf(1)
	for d := 0; d < s.sys.sched.Devices(); d++ {
		if nf := s.sys.sched.NextFree(d); nf < minAll {
			minAll = nf
		}
	}
	return s.sys.window(minAll)
}

// startFrom applies the frontier hint: admission scanning can begin at the
// hint window when it is ahead of the arrival. Only the Delay policy uses
// the hint — it skips windows where admission is provably impossible, and
// under Delay the scan provably converges to the same admit time either
// way. Under Reject the outcome depends on which window the scan samples
// first (a full window rejects immediately), so the scan must start at
// the arrival exactly like the sequential path; it is O(1) there anyway,
// because no branch of the Reject scan walks windows.
func (s *ConcurrentSystem) startFrom(arrival float64) float64 {
	if s.sys.cfg.Policy == admission.Reject {
		return arrival
	}
	if h := s.hint.Load(); h > s.sys.window(arrival) {
		if t := float64(h) * s.sys.cfg.IntervalMS; t > arrival {
			return t
		}
	}
	return arrival
}

// WindowCount reports the admitted count currently recorded for window w
// (test hook; deterministic mode only).
func (s *ConcurrentSystem) WindowCount(w int64) int { return int(s.counter(w).Load()) }

// Window returns the T-window index of a time (same arithmetic as the
// sequential System).
func (s *ConcurrentSystem) Window(t float64) int64 { return s.sys.window(t) }

// MaxWindowCount returns the largest admitted count recorded for any
// tracked window — after quiescence it must never exceed S (test hook).
func (s *ConcurrentSystem) MaxWindowCount() int {
	max := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, c := range sh.counts {
			if v := int(c.Load()); v > max {
				max = v
			}
		}
		sh.mu.Unlock()
	}
	return max
}

// Submit runs one block read through concurrent admission control and
// online retrieval. Unlike System.Submit, arrivals need not be ordered:
// callers on different goroutines submit with whatever timestamps they
// observed, and the deterministic path tolerates out-of-order arrivals
// because window reservation is commutative.
func (s *ConcurrentSystem) Submit(arrival float64, dataBlock int64) Outcome {
	if s.sys.stat != nil {
		return s.submitSerial(arrival, dataBlock, false)
	}
	replicas := s.sys.Replicas(dataBlock)
	// One availability snapshot per request: a FAIL/RECOVER racing with
	// this submission lands on either side of the snapshot, never halfway.
	mask, limit, masked := s.sys.maskLimit()
	if masked && aliveReplicas(replicas, mask) == 0 {
		return Outcome{Rejected: true, Unavailable: true, Admitted: arrival}
	}
	tAdm := s.startFrom(arrival)
	for {
		w := s.sys.window(tAdm)
		if !s.reserve(w, 1, limit) {
			if s.sys.cfg.Policy == admission.Reject {
				return Outcome{Rejected: true, Admitted: arrival}
			}
			s.advanceHint(w + 1)
			tAdm = float64(w+1) * s.sys.cfg.IntervalMS
			continue
		}
		// Slot reserved in w. The guaranteed path also needs an idle
		// available replica at tAdm so the response time stays at the
		// service time.
		s.schedMu.Lock()
		tFree := math.Inf(1)
		for _, d := range replicas {
			if masked && mask&(1<<uint(d)) == 0 {
				continue
			}
			if nf := s.sys.sched.NextFree(d); nf < tFree {
				tFree = nf
			}
		}
		if tFree <= tAdm {
			var c retrieval.Completion
			if masked {
				c, _ = s.sys.sched.SubmitMasked(tAdm, replicas, mask)
			} else {
				c = s.sys.sched.Submit(tAdm, replicas)
			}
			s.schedMu.Unlock()
			delay := tAdm - arrival
			if delay < 0 {
				delay = 0
			}
			return Outcome{
				Admitted: tAdm,
				Device:   c.Device,
				Start:    c.Start,
				Finish:   c.Finish,
				Delay:    delay,
				Delayed:  delay > delayTol,
			}
		}
		alive := s.deadBefore()
		s.schedMu.Unlock()
		// No replica idle at the reserved time: give the slot back and
		// retry at the earliest instant one frees up (strictly later, so
		// the loop always progresses). Windows proven dead by device
		// exhaustion are excluded from future scans so sustained overload
		// stays O(1) per request instead of crawling the backlog.
		s.release(w, 1)
		s.advanceHintTo(alive)
		tAdm = tFree
	}
}

// SubmitWrite schedules a block write: c admission slots in one window and
// every replica device idle simultaneously, as in System.SubmitWrite.
func (s *ConcurrentSystem) SubmitWrite(arrival float64, dataBlock int64) Outcome {
	if s.sys.stat != nil {
		return s.submitSerial(arrival, dataBlock, true)
	}
	replicas := s.sys.Replicas(dataBlock)
	mask, limit, masked := s.sys.maskLimit()
	c := len(replicas)
	if masked {
		if c = aliveReplicas(replicas, mask); c == 0 {
			return Outcome{Rejected: true, Unavailable: true, Admitted: arrival}
		}
	}
	tAdm := s.startFrom(arrival)
	for {
		w := s.sys.window(tAdm)
		if !s.reserve(w, c, limit) {
			if s.sys.cfg.Policy == admission.Reject {
				return Outcome{Rejected: true, Admitted: arrival}
			}
			// The window may still have room for smaller requests, so the
			// hint (which serves single-slot reads too) is not advanced.
			tAdm = float64(w+1) * s.sys.cfg.IntervalMS
			continue
		}
		s.schedMu.Lock()
		tAllFree := tAdm
		firstDev := -1
		for _, d := range replicas {
			if masked && mask&(1<<uint(d)) == 0 {
				continue
			}
			if firstDev < 0 {
				firstDev = d
			}
			if nf := s.sys.sched.NextFree(d); nf > tAllFree {
				tAllFree = nf
			}
		}
		if tAllFree <= tAdm {
			finish := 0.0
			for _, d := range replicas {
				if masked && mask&(1<<uint(d)) == 0 {
					continue
				}
				cmp := s.sys.sched.SubmitFor(tAdm, []int{d}, s.sys.cfg.WriteServiceMS)
				if cmp.Finish > finish {
					finish = cmp.Finish
				}
			}
			s.schedMu.Unlock()
			delay := tAdm - arrival
			if delay < 0 {
				delay = 0
			}
			return Outcome{
				Admitted: tAdm,
				Device:   firstDev,
				Start:    tAdm,
				Finish:   finish,
				Delay:    delay,
				Delayed:  delay > delayTol,
			}
		}
		alive := s.deadBefore()
		s.schedMu.Unlock()
		s.release(w, c)
		s.advanceHintTo(alive)
		tAdm = tAllFree
	}
}

// submitSerial is the statistical-mode path: the Q estimator's interval
// accounting is order-dependent, so requests take the sequential System
// under a lock, with arrivals clamped non-decreasing.
func (s *ConcurrentSystem) submitSerial(arrival float64, dataBlock int64, write bool) Outcome {
	s.serialMu.Lock()
	defer s.serialMu.Unlock()
	if arrival < s.lastArrival {
		arrival = s.lastArrival
	}
	s.lastArrival = arrival
	if write {
		return s.sys.SubmitWrite(arrival, dataBlock)
	}
	return s.sys.Submit(arrival, dataBlock)
}
