package core

import (
	"sync"

	"flashqos/internal/health"
)

// ConcurrentSystem is a thread-safe admission/retrieval front-end over a
// System, built for the network layer (internal/qosnet) where many tenant
// connections submit requests at once.
//
// Concurrency model (see also ledger.go and engine.go):
//
//   - Replica lookup (block → design block → devices) is pure and runs
//     without any lock. Remap must therefore NOT be called while requests
//     are in flight; ConcurrentSystem deliberately does not expose it.
//   - NewConcurrent swaps the wrapped System's engine onto the sharded-CAS
//     interval ledger (shardedLedger): window admission counts live in
//     sharded per-window atomic counters, and a frontier hint keeps
//     admission under overload O(1) amortized. The submit logic itself is
//     the same engine code the sequential System runs — there is exactly
//     one admission/retrieval implementation.
//   - Device state (per-device next-free times) is the one genuinely
//     global resource: picking the earliest-finishing replica and marking
//     it busy must be atomic across devices, so a short mutex guards the
//     scheduler. Everything else — parsing, replica lookup, window
//     reservation, response formatting — runs outside it.
//   - Statistical mode (Epsilon > 0) stays fully serialized: the Q
//     estimator folds *closed* windows into its interval history in
//     arrival order, an inherently sequential computation. The serial path
//     clamps arrivals non-decreasing so concurrent callers cannot violate
//     the engine's ordering contract.
//
// The wrapped System must not be used directly while a ConcurrentSystem is
// serving it.
type ConcurrentSystem struct {
	sys *System

	serialMu    sync.Mutex // statistical mode: serializes the engine
	lastArrival float64    // under serialMu; clamps arrivals non-decreasing
}

// NewConcurrent wraps a System for concurrent submission, re-plugging its
// engine onto the sharded ledger and a real scheduler mutex. Admission
// state accumulated through the sequential facade is dropped. The System
// must not be used concurrently elsewhere.
func NewConcurrent(sys *System) *ConcurrentSystem {
	eng := sys.engine
	eng.ledger = newShardedLedger()
	eng.schedMu = new(sync.Mutex)
	eng.hinted = eng.ledger.tracksFrontier() && eng.stat == nil
	return &ConcurrentSystem{sys: sys}
}

// System returns the wrapped sequential System. Callers must not submit to
// it while the ConcurrentSystem is in use.
func (s *ConcurrentSystem) System() *System { return s.sys }

// S returns the admission limit S(M).
func (s *ConcurrentSystem) S() int { return s.sys.s }

// EffectiveS returns the current admission limit (S' when degraded).
func (s *ConcurrentSystem) EffectiveS() int { return s.sys.EffectiveS() }

// Health returns the attached device-health monitor (nil when none).
func (s *ConcurrentSystem) Health() *health.Monitor { return s.sys.health }

// IntervalMS returns the QoS interval T in milliseconds.
func (s *ConcurrentSystem) IntervalMS() float64 { return s.sys.cfg.IntervalMS }

// Replicas returns the devices storing a data block's copies.
func (s *ConcurrentSystem) Replicas(dataBlock int64) []int { return s.sys.Replicas(dataBlock) }

// DesignBlock returns the design block a data block maps to.
func (s *ConcurrentSystem) DesignBlock(dataBlock int64) int {
	return s.sys.mapper.DesignBlock(dataBlock)
}

// Q returns the statistical controller's violation-probability estimate
// (0 for deterministic systems).
func (s *ConcurrentSystem) Q() float64 {
	if s.sys.stat == nil {
		return 0
	}
	s.serialMu.Lock()
	defer s.serialMu.Unlock()
	return s.sys.Q()
}

// WindowCount reports the admitted count currently recorded for window w
// (test hook; deterministic mode only).
func (s *ConcurrentSystem) WindowCount(w int64) int { return s.sys.ledger.count(w) }

// Window returns the T-window index of a time (same arithmetic as the
// sequential System).
func (s *ConcurrentSystem) Window(t float64) int64 { return s.sys.window(t) }

// MaxWindowCount returns the largest admitted count recorded for any
// tracked window — after quiescence it must never exceed S (test hook).
func (s *ConcurrentSystem) MaxWindowCount() int { return s.sys.ledger.maxCount() }

// Submit runs one block read through concurrent admission control and
// online retrieval. Unlike System.Submit, arrivals need not be ordered:
// callers on different goroutines submit with whatever timestamps they
// observed, and the deterministic path tolerates out-of-order arrivals
// because window reservation is commutative.
func (s *ConcurrentSystem) Submit(arrival float64, dataBlock int64) Outcome {
	if s.sys.stat != nil {
		return s.submitSerial(arrival, dataBlock, false)
	}
	return s.sys.submit(arrival, dataBlock)
}

// SubmitWrite schedules a block write: c admission slots in one window and
// every replica device idle simultaneously, as in System.SubmitWrite.
func (s *ConcurrentSystem) SubmitWrite(arrival float64, dataBlock int64) Outcome {
	if s.sys.stat != nil {
		return s.submitSerial(arrival, dataBlock, true)
	}
	return s.sys.submitWrite(arrival, dataBlock)
}

// SubmitBatch admits a set of simultaneous block requests jointly, as in
// System.SubmitBatch. The batch path allocates; it is not the lock-free
// hot path.
func (s *ConcurrentSystem) SubmitBatch(arrival float64, blocks []int64) []Outcome {
	if s.sys.stat != nil {
		s.serialMu.Lock()
		defer s.serialMu.Unlock()
		if arrival < s.lastArrival {
			arrival = s.lastArrival
		}
		s.lastArrival = arrival
		return s.sys.submitBatch(arrival, blocks)
	}
	return s.sys.submitBatch(arrival, blocks)
}

// submitSerial is the statistical-mode path: the Q estimator's interval
// accounting is order-dependent, so requests take the engine under a lock,
// with arrivals clamped non-decreasing.
func (s *ConcurrentSystem) submitSerial(arrival float64, dataBlock int64, write bool) Outcome {
	s.serialMu.Lock()
	defer s.serialMu.Unlock()
	if arrival < s.lastArrival {
		arrival = s.lastArrival
	}
	s.lastArrival = arrival
	if write {
		return s.sys.submitWrite(arrival, dataBlock)
	}
	return s.sys.submit(arrival, dataBlock)
}
