package core

import (
	"errors"
	"fmt"
	"sync"

	"flashqos/internal/flashsim"
	"flashqos/internal/pack"
)

// PackBackend is the file-backed pack/needle storage backend: real bytes
// in append-only per-device volume files (internal/pack) behind the same
// seam as the simulators. The QoS guarantee is parameterized by the
// configured service latencies, not measured per request, so the timing
// model is the mem backend's deterministic FIFO — but every replayed read
// whose block exists also performs the real volume pread (checksum
// verified), so replay exercises per-device media I/O and surfaces media
// faults as Submit errors.
//
// The Store is opened lazily on first NewArray (or explicitly via Open)
// and shared by every array built from this backend, so the server's data
// path and the replay path see the same bytes.
type PackBackend struct {
	// Dir is the volume directory (required).
	Dir string
	// ReadMS / WriteMS are the modeled service latencies; zero values fall
	// back to the flashsim defaults, keeping reports comparable across
	// backends.
	ReadMS  float64
	WriteMS float64
	// Opts tunes the underlying store (group-commit interval, payload cap).
	Opts pack.Options

	mu      sync.Mutex
	store   *pack.Store
	devices int
}

// Name implements Backend.
func (*PackBackend) Name() string { return "pack" }

// ReadLatencyMS implements Backend.
func (b *PackBackend) ReadLatencyMS() float64 {
	if b.ReadMS > 0 {
		return b.ReadMS
	}
	return flashsim.DefaultReadLatency
}

// WriteLatencyMS implements Backend.
func (b *PackBackend) WriteLatencyMS() float64 {
	if b.WriteMS > 0 {
		return b.WriteMS
	}
	return flashsim.DefaultWriteLatency
}

// Open opens (or returns the already-open) pack store with the given
// device count. The store is shared: qosd opens it once and hands it to
// both the QoS config and the network data path.
func (b *PackBackend) Open(devices int) (*pack.Store, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.store != nil {
		if devices != b.devices {
			return nil, fmt.Errorf("core: pack backend already open with %d devices, asked for %d", b.devices, devices)
		}
		return b.store, nil
	}
	if b.Dir == "" {
		return nil, fmt.Errorf("core: pack backend needs a data directory")
	}
	st, err := pack.Open(b.Dir, devices, b.Opts)
	if err != nil {
		return nil, err
	}
	b.store, b.devices = st, devices
	return st, nil
}

// Close flushes and closes the store, if open.
func (b *PackBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.store == nil {
		return nil
	}
	err := b.store.Close()
	b.store = nil
	return err
}

// NewArray implements Backend.
func (b *PackBackend) NewArray(devices int, readServiceMS float64) (Array, error) {
	if devices < 1 {
		return nil, fmt.Errorf("core: pack backend needs >= 1 device, got %d", devices)
	}
	st, err := b.Open(devices)
	if err != nil {
		return nil, err
	}
	if readServiceMS <= 0 {
		readServiceMS = b.ReadLatencyMS()
	}
	return &packArray{
		memArray: memArray{name: "pack", free: make([]float64, devices), service: readServiceMS},
		store:    st,
	}, nil
}

// packArray queues with the deterministic FIFO timing model and touches
// the real media on submit.
type packArray struct {
	memArray
	store *pack.Store
	buf   []byte
}

func (a *packArray) Submit(id int64, arrivalMS float64, device int, block int64) error {
	if err := a.memArray.Submit(id, arrivalMS, device, block); err != nil {
		return err
	}
	// Blocks never stored stay timing-only (a replayed trace references
	// more blocks than anyone PUT); a block that exists must read clean.
	b, err := a.store.Get(device, block, a.buf[:0])
	a.buf = b[:0]
	if err != nil && !errors.Is(err, pack.ErrNotFound) {
		return err
	}
	return nil
}
