package core

import (
	"sync"
	"sync/atomic"

	"flashqos/internal/admission"
	"flashqos/internal/sampling"
)

// statGate is the concurrency shell around the statistical admission
// controller (§III-B). The Q = Σ(1−P_k)·R_k estimator is order-dependent —
// closed T-windows must fold into the interval histogram exactly once, in
// window order — which historically forced every ε > 0 request through one
// mutex. The gate splits the estimator into three roles with different
// consistency needs:
//
//   - Accumulation is the ledger's job. Per-window admitted counts R_k
//     build up in the sharded CAS counters exactly as in deterministic
//     mode; nothing statistical happens on that path.
//   - Merging is serialized but rare. The first submission to observe a
//     window boundary folds every newly closed window into the canonical
//     controller under mu — once per T-window, not per request — and
//     publishes a fresh immutable admission.Snapshot. lastClosed advances
//     atomically, so concurrent submissions in an already-closed region
//     skip the lock entirely with one atomic load.
//   - Decisions are lock-free. wouldAdmit evaluates the published snapshot
//     (one atomic pointer load, zero allocations); it never touches the
//     live controller.
//
// Single-threaded this is bit-identical to the serialized path: merges
// happen at the same points, in the same order, and Snapshot.Q runs the
// same float arithmetic as the live controller (admission.qOver), which the
// ε > 0 golden transcripts enforce byte-for-byte. Under concurrency the
// snapshot a decision sees is bounded-stale — at most the windows whose
// merge is in flight plus the requests racing into the current window —
// and the ε guarantee degrades gracefully rather than breaking; DESIGN.md
// §10 gives the argument.
type statGate struct {
	mu   sync.Mutex             // serializes merges and table swaps
	stat *admission.Statistical // canonical history; guarded by mu
	snap atomic.Pointer[admission.Snapshot]

	// lastClosed is the most recent window folded into the history. It
	// only advances, and only under mu; readers use it to skip the merge
	// lock when there is provably nothing to fold.
	lastClosed atomic.Int64

	// Statistical admission frontier (Delay policy). A window dies when its
	// count sits at the deterministic limit AND the published snapshot
	// refuses to over-admit past it; refusal is final — the window never
	// reopens, even if a later snapshot would have accepted its size. This
	// matches the paper's forward-only interval model (§III-B closes each
	// interval's admission when the interval does; it never revisits old
	// intervals with a fresher estimator) and is what makes the frontier
	// monotone, so sustained overload costs O(1) amortized per request
	// instead of rescanning an ever-growing dead backlog. Finality only
	// ever under-admits relative to a rescanning implementation, so the
	// ε violation bound is preserved. Both facades share this engine path,
	// so sequential and concurrent stay bit-identical by construction (the
	// ε > 0 golden transcripts pin it).
	deadFrontier atomic.Int64
}

// newStatGate wraps a controller and publishes its (empty) initial
// snapshot.
func newStatGate(stat *admission.Statistical) *statGate {
	g := &statGate{stat: stat}
	g.lastClosed.Store(-1)
	g.snap.Store(stat.Snapshot())
	return g
}

// frontier returns the first window not declared statistically dead (0 when
// none is). Delay-policy submissions may start their window scan here: the
// skipped prefix consists only of windows a refusal already closed for
// good, so the admit time is identical to a full rescan under sticky
// verdicts. The load is lock-free; the frontier only grows (resetWindows
// aside), so a stale read merely rescans a few already-dead windows.
func (g *statGate) frontier() int64 {
	return g.deadFrontier.Load()
}

// noteDead records that window w was full at the deterministic limit and
// the published snapshot refused to over-admit into it. Refusal is final
// (see the deadFrontier comment), so the scan may start at w+1 from now on.
// Lock-free CAS-max; called on the Delay overflow path only.
func (g *statGate) noteDead(w int64) {
	next := w + 1
	for {
		cur := g.deadFrontier.Load()
		if cur >= next || g.deadFrontier.CompareAndSwap(cur, next) {
			break
		}
	}
}

// closeUpTo folds every window before w into the interval history and
// publishes a fresh snapshot. Windows below the dead frontier are decided
// — full, refused, and closed for good — so folding also runs ahead to the
// frontier without waiting for arrivals to cross them; under sustained
// overload that keeps fold progress level with the frontier and lets the
// ledger reclaim the dead region (notePrunable) instead of carrying an
// ever-growing backlog of frozen counters. Concurrent callers race
// benignly: the atomic fast path skips closed regions, the recheck under
// mu guarantees each window is recorded exactly once (nt == lastClosed+1
// always), and a caller with an old arrival (w already closed) is a no-op
// — its window's count was frozen when the merge happened, which is the
// documented bounded-staleness of concurrent statistical mode.
func (g *statGate) closeUpTo(w int64, led intervalLedger) {
	if f := g.deadFrontier.Load(); f > w {
		w = f
	}
	if g.lastClosed.Load() >= w-1 {
		return
	}
	g.mu.Lock()
	last := g.lastClosed.Load()
	if last >= w-1 {
		g.mu.Unlock()
		return
	}
	for i := last + 1; i < w; i++ {
		g.stat.RecordInterval(led.count(i))
	}
	g.lastClosed.Store(w - 1)
	// Folded windows are never read again; let the ledger reclaim them
	// (minus its safety margin) so long overloaded runs stay O(1) per op.
	led.notePrunable(w)
	g.snap.Store(g.stat.Snapshot())
	g.mu.Unlock()
}

// wouldAdmit reports whether an interval of size k passes the published Q
// bound. Lock-free and allocation-free: one atomic load plus the snapshot's
// histogram walk.
func (g *statGate) wouldAdmit(k int) bool {
	return g.snap.Load().WouldAdmit(k)
}

// q returns the published violation-probability estimate.
func (g *statGate) q() float64 {
	return g.snap.Load().Q()
}

// intervals returns the number of intervals folded so far.
func (g *statGate) intervals() int64 {
	return g.snap.Load().Intervals()
}

// setTable swaps in a refreshed P_k table and republishes the snapshot.
func (g *statGate) setTable(tab *sampling.Table) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.stat.SetTable(tab); err != nil {
		return err
	}
	g.snap.Store(g.stat.Snapshot())
	return nil
}

// resetWindows forgets window-close progress (System.Reset: the ledger is
// wiped, so folding restarts from window 0; the interval history itself is
// kept, matching the historical Reset semantics). The dead frontier rests
// on ledger counts, so it is dropped with them.
func (g *statGate) resetWindows() {
	g.lastClosed.Store(-1)
	g.deadFrontier.Store(0)
}
