package core

import (
	"fmt"
	"math"
	"sync"

	"flashqos/internal/admission"
	"flashqos/internal/blockmap"
	"flashqos/internal/decluster"
	"flashqos/internal/design"
	"flashqos/internal/health"
	"flashqos/internal/retrieval"
	"flashqos/internal/sampling"
)

// engine is the one admission/retrieval implementation behind both System
// and ConcurrentSystem. The facades differ only in the parts they plug in:
//
//   - ledger: seqLedger (plain map) vs shardedLedger (CAS counters + hint);
//   - schedMu: noLock vs a real mutex around the device scheduler;
//   - hinted: whether the frontier hint is consulted and maintained.
//
// The submit paths themselves — window scan, mask snapshot, reserve,
// idle-replica check, statistical over-admission, write slot accounting —
// are written once here, reserve-first: a slot is claimed in the ledger
// before the scheduler is consulted and released again when no replica is
// usable at the reserved time. Single-threaded this is outcome-equivalent
// to the historical check-first loop (counts only differ transiently
// within one call), which is what keeps System and ConcurrentSystem
// bit-identical to their pre-refactor outputs (see TestEngineGolden).
type engine struct {
	// The admission scan reads these on every request; they are packed
	// first so a shard's per-request engine state spans as few cache
	// lines as possible (K engines compete for the same cache).
	alloc      *decluster.DesignTheoretic
	mapper     *blockmap.Mapper
	sched      *retrieval.Online
	ledger     intervalLedger
	invT       float64 // 1/IntervalMS, hoisted off the admission hot loop
	intervalMS float64 // cfg.IntervalMS, hoisted likewise
	deviceBase int     // cfg.DeviceBase, hoisted likewise
	s          int     // admission limit S(M)
	reject     bool    // cfg.Policy == admission.Reject, hoisted likewise
	hinted     bool    // ledger tracks a frontier and stat == nil

	stat    *statGate        // nil for deterministic (see statgate.go)
	health  *health.Monitor  // nil unless AttachHealth was called
	tenants *admission.MClock // per-tenant gate; snapshot nil until configured
	schedMu sync.Locker      // guards sched; noLock for single-caller systems
	cfg     Config
}

// noLock is the no-op Locker the sequential facade plugs in: the zero-size
// value adds no allocation and the calls compile to nothing but the
// interface dispatch.
type noLock struct{}

func (noLock) Lock()   {}
func (noLock) Unlock() {}

// newEngine builds the engine from the config with the sequential ledger
// and no scheduler lock; NewConcurrent swaps those for the lock-free parts.
func newEngine(cfg Config) (*engine, error) {
	cfg.applyDefaults()
	if cfg.DeviceBase < 0 {
		return nil, fmt.Errorf("core: negative DeviceBase %d", cfg.DeviceBase)
	}
	d := cfg.Design
	alloc := cfg.Allocator
	if alloc != nil {
		if d != nil && alloc.Design() != d {
			return nil, fmt.Errorf("core: injected allocator built over a different design")
		}
		d = alloc.Design()
	} else {
		if d == nil {
			var err error
			d, err = design.ForParams(cfg.N, cfg.C)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
		var err error
		alloc, err = decluster.NewDesignTheoretic(d)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("core: M must be >= 1, got %d", cfg.M)
	}
	if cfg.IntervalMS < cfg.ServiceMS {
		return nil, fmt.Errorf("core: interval %g ms shorter than service time %g ms", cfg.IntervalMS, cfg.ServiceMS)
	}
	mapper, err := blockmap.NewMapper(alloc.Rows())
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	e := &engine{
		cfg:        cfg,
		invT:       1 / cfg.IntervalMS,
		intervalMS: cfg.IntervalMS,
		deviceBase: cfg.DeviceBase,
		reject:     cfg.Policy == admission.Reject,
		alloc:      alloc,
		mapper:     mapper,
		sched:      retrieval.NewOnline(d.N, cfg.ServiceMS),
		s:          d.S(cfg.M),
		ledger:     newSeqLedger(),
		schedMu:    noLock{},
	}
	// The tenant gate partitions windows of the design capacity S; it
	// stays off (nil snapshot, one untaken branch per tenanted request)
	// until SetTenants installs a policy.
	e.tenants, err = admission.NewMClock(e.s)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.Epsilon > 0 {
		tab := cfg.Table
		if tab == nil {
			tab, err = sampling.Estimate(alloc, sampling.Options{
				MaxK:   2*d.N + e.s,
				Trials: cfg.SampleTrials,
				Seed:   cfg.Seed + 1,
			})
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		}
		stat, err := admission.NewStatistical(e.s, cfg.Epsilon, tab, cfg.Policy)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		e.stat = newStatGate(stat)
	}
	return e, nil
}

// refreshTable re-estimates the sampled P_k table — sampling.Estimate
// shards the Monte-Carlo trials across worker goroutines, each owning one
// preallocated maxflow.Solver — and installs the result atomically: the
// gate republishes its snapshot, so in-flight admissions keep the table
// they loaded and later ones see the refreshed bound. Deterministic
// systems have no table to refresh.
func (e *engine) refreshTable(trials int, seed int64) error {
	if e.stat == nil {
		return fmt.Errorf("core: deterministic system has no sampled table")
	}
	tab, err := sampling.Estimate(e.alloc, sampling.Options{
		MaxK:   2*e.alloc.Devices() + e.s,
		Trials: trials,
		Seed:   seed,
	})
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return e.stat.setTable(tab)
}

// Replicas returns the devices storing a data block's copies, going through
// the FIM/modulo design-block mapping.
func (e *engine) Replicas(dataBlock int64) []int {
	return e.alloc.Replicas(e.mapper.DesignBlock(dataBlock))
}

const delayTol = 1e-9

// window returns the T-window index of a time. The small bias keeps times
// computed as float64(w)*T — window starts — in window w despite rounding;
// without it, bumping a delayed request to "the start of window w+1" can
// floor back into window w and loop forever.
func (e *engine) window(t float64) int64 {
	return int64(math.Floor(t*e.invT + windowEps))
}

// windowEps absorbs float rounding in window arithmetic (in units of
// windows; times span < 1e9 windows, where float64 error is << 1e-6).
const windowEps = 1e-6

// startFrom applies the frontier hint: admission scanning can begin at the
// hint window when it is ahead of the arrival. Only the Delay policy uses
// hints — they skip windows where admission is provably impossible, and
// under Delay the scan provably converges to the same admit time either
// way. Under Reject the outcome depends on which window the scan samples
// first (a full window rejects immediately), so the scan must start at the
// arrival exactly like the hintless path; it is O(1) there anyway, because
// no branch of the Reject scan walks windows.
//
// Deterministic mode uses the ledger frontier ("full at the limit" is
// final). Statistical mode may admit past the deterministic limit, which
// voids that premise, so it keeps its own frontier in the gate: windows
// full at the limit AND refused by the published Q snapshot
// (statGate.noteDead), where refusal is final per window. Both frontiers
// serve writes too — a window that cannot take one more read cannot take a
// c-slot write either.
func (e *engine) startFrom(arrival float64) float64 {
	if e.reject {
		return arrival
	}
	var h int64
	switch {
	case e.hinted:
		h = e.ledger.frontier()
	case e.stat != nil:
		h = e.stat.frontier()
	default:
		return arrival
	}
	if h > e.window(arrival) {
		if t := float64(h) * e.intervalMS; t > arrival {
			return t
		}
	}
	return arrival
}

// deadBefore returns the first window that could still admit a request by
// the device criterion: the window holding the earliest next-free instant
// across ALL devices. Device next-free times only move forward, so every
// window strictly below stays unadmittable forever. Must be called with
// schedMu held.
func (e *engine) deadBefore() int64 {
	minAll := math.Inf(1)
	for d := 0; d < e.sched.Devices(); d++ {
		if nf := e.sched.NextFree(d); nf < minAll {
			minAll = nf
		}
	}
	return e.window(minAll)
}

// gate loads the tenant-policy snapshot a tenanted submission decides
// against and runs the arrival-side checks: unknown tenants and tenants
// over their per-window arrival limit are finished immediately (done =
// true, out filled in) without touching the ledger. Untenanted requests
// (tenant == 0) and requests under a nil snapshot (gate off) pass
// through with a nil snap — that path costs one predictable branch, and
// for tenant == 0 not even the atomic snapshot load.
func (e *engine) gate(arrival float64, tenant int32) (snap *admission.MCSnap, out Outcome, done bool) {
	if tenant == 0 {
		return nil, Outcome{}, false
	}
	snap = e.tenants.Snapshot()
	if snap == nil {
		return nil, Outcome{}, false
	}
	switch snap.NoteArrival(tenant, e.window(arrival)) {
	case admission.Unknown:
		// The slot was deleted between wire validation and submission;
		// reject defensively rather than fall back to untenanted service.
		return nil, Outcome{Rejected: true, Admitted: arrival, Tenant: tenant}, true
	case admission.OverLimit:
		return nil, Outcome{Rejected: true, OverLimit: true, Admitted: arrival, Tenant: tenant}, true
	}
	return snap, Outcome{}, false
}

// submit runs one block read through admission control and online
// retrieval: the shared implementation behind System.Submit and
// ConcurrentSystem.Submit. tenant is the 1-based tenant index the
// request carries (0 = untenanted): tenanted requests pass the mClock
// gate — arrival limit, then a per-window cap acquisition in front of
// every ledger reservation — before consuming any S-bound credit.
func (e *engine) submit(arrival float64, dataBlock int64, tenant int32) Outcome {
	replicas := e.Replicas(dataBlock)
	if e.stat != nil {
		e.stat.closeUpTo(e.window(arrival), e.ledger)
	}
	snap, gout, done := e.gate(arrival, tenant)
	if done {
		return gout
	}
	// One availability snapshot per request: a FAIL/RECOVER racing with
	// this submission lands on either side of the snapshot, never halfway.
	mask, limit, masked := e.maskLimit()
	if masked && aliveReplicas(replicas, mask) == 0 {
		if snap != nil {
			snap.NoteRejected(tenant)
		}
		return Outcome{Rejected: true, Unavailable: true, Admitted: arrival, Tenant: tenant}
	}
	if snap != nil && snap.Cap(tenant) < 1 {
		// A zero-cap tenant can never acquire a slot in any window; reject
		// rather than walk windows forever under the Delay policy.
		snap.NoteRejected(tenant)
		return Outcome{Rejected: true, Admitted: arrival, Tenant: tenant}
	}
	tAdm := e.startFrom(arrival)
	// w tracks window(tAdm) across the scan: advancing to the next window
	// is an integer increment (windowEps guarantees window(float64(w+1)·T)
	// is exactly w+1), so only scheduler-driven jumps recompute it.
	w := e.window(tAdm)
	for {
		// Tenant cap first: a tenant over its window share consumes no
		// ledger credit, and under Delay it advances to the next window
		// without moving the global frontier (the window may still have
		// room for other tenants).
		tenantReserved := false
		if snap != nil {
			res, ok := snap.Acquire(tenant, w, 1)
			if !ok {
				if e.reject {
					snap.NoteRejected(tenant)
					return Outcome{Rejected: true, Admitted: arrival, Tenant: tenant}
				}
				w++
				tAdm = float64(w) * e.intervalMS
				continue
			}
			tenantReserved = res
		}
		if !e.ledger.tryReserve(w, 1, limit) {
			// Window w is full under the snapshot limit.
			if e.stat != nil {
				if cnt := e.ledger.count(w); e.stat.wouldAdmit(cnt + 1) {
					// Statistical path: admit past the deterministic limit;
					// the request may queue behind busy replicas (§III-B).
					e.ledger.add(w, 1)
					out := e.schedule(arrival, tAdm, replicas, mask, masked, false)
					return e.noteAdmitted(snap, tenant, out)
				} else if !e.reject {
					// Full and refused by the published snapshot: closed
					// for good, later scans skip it (statGate).
					e.stat.noteDead(w)
				}
			}
			if snap != nil {
				// Give the tenant slot back; a reserved slot the global
				// ledger would not honor is a reservation deficit.
				snap.Release(tenant, w, 1)
				if tenantReserved {
					snap.NoteDeficit(tenant)
				}
			}
			if e.reject {
				if snap != nil {
					snap.NoteRejected(tenant)
				}
				return Outcome{Rejected: true, Admitted: arrival, Tenant: tenant}
			}
			if e.hinted {
				e.ledger.noteFull(w + 1)
			}
			w++
			tAdm = float64(w) * e.intervalMS // next window
			continue
		}
		// Slot reserved in w. The guaranteed path also needs an idle
		// available replica at tAdm so the response stays at the service
		// time.
		e.schedMu.Lock()
		tFree := math.Inf(1)
		for _, d := range replicas {
			if masked && mask&(1<<uint(d)) == 0 {
				continue
			}
			if nf := e.sched.NextFree(d); nf < tFree {
				tFree = nf
			}
		}
		if tFree <= tAdm {
			out := e.scheduleLocked(arrival, tAdm, replicas, mask, masked, true)
			e.schedMu.Unlock()
			return e.noteAdmitted(snap, tenant, out)
		}
		if e.stat != nil && e.stat.wouldAdmit(e.ledger.count(w)) {
			// Statistical path with the reservation kept: every replica is
			// busy, but the estimator accepts the risk and the request
			// queues. count(w) already includes this request's slot.
			out := e.scheduleLocked(arrival, tAdm, replicas, mask, masked, false)
			e.schedMu.Unlock()
			return e.noteAdmitted(snap, tenant, out)
		}
		var dead int64
		if e.hinted {
			dead = e.deadBefore()
		}
		e.schedMu.Unlock()
		// No replica idle at the reserved time: give the slot back and
		// retry at the earliest instant one frees up (strictly later, so
		// the loop always progresses). Windows proven dead by device
		// exhaustion are excluded from future scans so sustained overload
		// stays O(1) per request instead of crawling the backlog.
		e.ledger.release(w, 1)
		if snap != nil {
			// The request moves to a later window, so the tenant slot in w
			// goes back too (no deficit: nothing was refused).
			snap.Release(tenant, w, 1)
		}
		if e.hinted {
			e.ledger.noteDeadBefore(dead)
		}
		tAdm = tFree
		w = e.window(tAdm)
	}
}

// noteAdmitted stamps the tenant tag on an admitted outcome and bumps
// the tenant's admitted gauge when the gate is on.
func (e *engine) noteAdmitted(snap *admission.MCSnap, tenant int32, out Outcome) Outcome {
	if snap != nil {
		snap.NoteAdmitted(tenant)
	}
	out.Tenant = tenant
	return out
}

// schedule wraps scheduleLocked in the scheduler lock.
func (e *engine) schedule(arrival, tAdm float64, replicas []int, mask uint64, masked, requireIdle bool) Outcome {
	e.schedMu.Lock()
	out := e.scheduleLocked(arrival, tAdm, replicas, mask, masked, requireIdle)
	e.schedMu.Unlock()
	return out
}

// scheduleLocked places the admitted request on the best available replica
// at time tAdm. Must be called with schedMu held; the admission slot has
// already been charged to the ledger.
func (e *engine) scheduleLocked(arrival, tAdm float64, replicas []int, mask uint64, masked, requireIdle bool) Outcome {
	var c retrieval.Completion
	if masked {
		var ok bool
		if c, ok = e.sched.SubmitMasked(tAdm, replicas, mask); !ok {
			panic("core: admit with no available replica") // caller checked
		}
	} else {
		c = e.sched.Submit(tAdm, replicas)
	}
	if requireIdle && c.Start > tAdm+delayTol {
		panic("core: guaranteed-path request had to queue") // invariant
	}
	delay := tAdm - arrival
	if delay < 0 {
		delay = 0
	}
	return Outcome{
		Admitted: tAdm,
		Device:   e.deviceBase + c.Device,
		Start:    c.Start,
		Finish:   c.Finish,
		Delay:    delay,
		Delayed:  delay > delayTol,
	}
}

// submitWrite schedules a block write: c admission slots in one window and
// every available replica device idle simultaneously. Shared implementation
// behind System.SubmitWrite and ConcurrentSystem.SubmitWrite. A tenanted
// write charges one arrival against the tenant's limit and c usage slots
// (all-or-nothing) against its window cap.
func (e *engine) submitWrite(arrival float64, dataBlock int64, tenant int32) Outcome {
	replicas := e.Replicas(dataBlock)
	if e.stat != nil {
		e.stat.closeUpTo(e.window(arrival), e.ledger)
	}
	snap, gout, done := e.gate(arrival, tenant)
	if done {
		return gout
	}
	mask, limit, masked := e.maskLimit()
	c := len(replicas)
	if masked {
		if c = aliveReplicas(replicas, mask); c == 0 {
			if snap != nil {
				snap.NoteRejected(tenant)
			}
			return Outcome{Rejected: true, Unavailable: true, Admitted: arrival, Tenant: tenant}
		}
	}
	if snap != nil && snap.Cap(tenant) < c {
		// The tenant's window share can never fit a c-slot write; reject
		// rather than walk windows forever under the Delay policy.
		snap.NoteRejected(tenant)
		return Outcome{Rejected: true, Admitted: arrival, Tenant: tenant}
	}
	tAdm := e.startFrom(arrival)
	w := e.window(tAdm)
	for {
		tenantReserved := false
		if snap != nil {
			res, ok := snap.Acquire(tenant, w, int32(c))
			if !ok {
				if e.reject {
					snap.NoteRejected(tenant)
					return Outcome{Rejected: true, Admitted: arrival, Tenant: tenant}
				}
				w++
				tAdm = float64(w) * e.intervalMS
				continue
			}
			tenantReserved = res
		}
		if !e.ledger.tryReserve(w, c, limit) {
			if snap != nil {
				snap.Release(tenant, w, int32(c))
				if tenantReserved {
					snap.NoteDeficit(tenant)
				}
			}
			if e.reject {
				if snap != nil {
					snap.NoteRejected(tenant)
				}
				return Outcome{Rejected: true, Admitted: arrival, Tenant: tenant}
			}
			// The window may still have room for smaller requests, so the
			// frontier (which serves single-slot reads too) is not advanced.
			w++
			tAdm = float64(w) * e.intervalMS
			continue
		}
		// All available replicas must be free simultaneously.
		e.schedMu.Lock()
		tAllFree := tAdm
		firstDev := -1
		for _, d := range replicas {
			if masked && mask&(1<<uint(d)) == 0 {
				continue
			}
			if firstDev < 0 {
				firstDev = d
			}
			if nf := e.sched.NextFree(d); nf > tAllFree {
				tAllFree = nf
			}
		}
		if tAllFree <= tAdm {
			finish := 0.0
			for _, d := range replicas {
				if masked && mask&(1<<uint(d)) == 0 {
					continue
				}
				cmp := e.sched.SubmitFor(tAdm, []int{d}, e.cfg.WriteServiceMS)
				if cmp.Finish > finish {
					finish = cmp.Finish
				}
			}
			e.schedMu.Unlock()
			delay := tAdm - arrival
			if delay < 0 {
				delay = 0
			}
			return e.noteAdmitted(snap, tenant, Outcome{
				Admitted: tAdm,
				Device:   e.deviceBase + firstDev,
				Start:    tAdm,
				Finish:   finish,
				Delay:    delay,
				Delayed:  delay > delayTol,
			})
		}
		var dead int64
		if e.hinted {
			dead = e.deadBefore()
		}
		e.schedMu.Unlock()
		e.ledger.release(w, c)
		if snap != nil {
			snap.Release(tenant, w, int32(c))
		}
		if e.hinted {
			e.ledger.noteDeadBefore(dead)
		}
		tAdm = tAllFree
		w = e.window(tAdm)
	}
}

// submitBatch admits a set of simultaneous block requests jointly — the
// §III interval model. Shared implementation behind System.SubmitBatch and
// ConcurrentSystem.SubmitBatch. A nil scratch allocates fresh result and
// working buffers (safe to retain); a non-nil scratch makes the steady
// state allocation-free, with the returned slice valid until its next use.
func (e *engine) submitBatch(arrival float64, blocks []int64, tenant int32, sc *BatchScratch) []Outcome {
	if len(blocks) == 0 {
		return nil
	}
	if sc == nil {
		sc = &BatchScratch{}
	}
	if tenant != 0 && e.tenants.Snapshot() != nil {
		// The joint assignment admits the whole batch into one window;
		// per-tenant window caps fragment that, so tenanted batches under
		// an active policy take the per-request path (each request runs
		// the full gate + scan; outcomes stay in input order).
		out := sc.outcomes(len(blocks))
		for i, b := range blocks {
			out[i] = e.submit(arrival, b, tenant)
		}
		return out
	}
	if e.stat != nil {
		e.stat.closeUpTo(e.window(arrival), e.ledger)
	}
	mask, limit, masked := e.maskLimit()
	w := e.window(arrival)
	// Reserve up to the window's remaining capacity. Under concurrent
	// submission another caller can shrink the room between the read and
	// the reserve, so retry with the smaller room until a reservation
	// sticks (single-threaded the first attempt always does).
	var take int
	for {
		room := limit - e.ledger.count(w)
		if room < 0 {
			room = 0
		}
		take = len(blocks)
		if take > room {
			take = room
		}
		if take == 0 || e.ledger.tryReserve(w, take, limit) {
			break
		}
	}
	out := sc.outcomes(len(blocks))
	if take > 0 {
		replicas := sc.replicaBuf(take)
		unavailable := 0
		if masked {
			// Degraded batch: restrict the joint assignment to the
			// surviving replicas. The alive lists live in one flat buffer
			// sized up front, so the sub-slices stay valid as it fills.
			alive := sc.aliveBuf(take, e.alloc.Copies())
			for i := 0; i < take; i++ {
				start := len(alive)
				for _, d := range e.Replicas(blocks[i]) {
					if mask&(1<<uint(d)) != 0 {
						alive = append(alive, d)
					}
				}
				if len(alive) == start {
					out[i] = Outcome{Rejected: true, Unavailable: true, Admitted: arrival}
					replicas[i] = nil
					unavailable++
					continue
				}
				replicas[i] = alive[start:len(alive):len(alive)]
			}
		} else {
			for i := 0; i < take; i++ {
				replicas[i] = e.Replicas(blocks[i])
			}
		}
		if masked {
			// Compact out unavailable blocks before the joint assignment;
			// their reserved slots go back (they consume no budget).
			live := replicas[:0]
			idx := sc.idxBuf(take)
			for i, r := range replicas {
				if r != nil {
					live = append(live, r)
					idx = append(idx, i)
				}
			}
			if unavailable > 0 {
				e.ledger.release(w, unavailable)
			}
			e.schedMu.Lock()
			cs := e.sched.SubmitBatchInto(arrival, live, sc.comps)
			e.schedMu.Unlock()
			sc.comps = cs
			for j, c := range cs {
				out[idx[j]] = Outcome{
					Admitted: arrival,
					Device:   e.deviceBase + c.Device,
					Start:    c.Start,
					Finish:   c.Finish,
				}
			}
		} else {
			e.schedMu.Lock()
			cs := e.sched.SubmitBatchInto(arrival, replicas, sc.comps)
			e.schedMu.Unlock()
			sc.comps = cs
			for i, c := range cs {
				out[i] = Outcome{
					Admitted: arrival,
					Device:   e.deviceBase + c.Device,
					Start:    c.Start,
					Finish:   c.Finish,
				}
			}
		}
	}
	// Overflow: per-request path (next windows).
	for i := take; i < len(blocks); i++ {
		out[i] = e.submit(arrival, blocks[i], tenant)
	}
	if tenant != 0 {
		// Gate off (nil snapshot) but the batch was tagged: the tag still
		// flows through to the outcomes.
		for i := range out {
			out[i].Tenant = tenant
		}
	}
	return out
}
