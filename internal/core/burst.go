package core

import (
	"math"

	"flashqos/internal/admission"
	"flashqos/internal/retrieval"
)

// Burst-grained admission: the network layer drains a whole pipelined burst
// of frames that share one arrival timestamp and submits them together.
// Per-request submission pays one ledger CAS, one scheduler lock round trip
// and one availability snapshot per frame; a burst pays each of those once
// per (window, burst) instead. The outcomes are bit-identical to calling
// Submit/SubmitWrite per request in input order from a single goroutine —
// the contract DESIGN.md §12 spells out and TestSubmitBurstEquivalence /
// the golden transcripts enforce:
//
//   - The deterministic scan never reads a window's count, only
//     tryReserve/release deltas, so holding unconsumed burst credit in a
//     window is invisible to it: credit is capped so consumed+credit never
//     exceeds the limit, meaning a credit hit and a per-request tryReserve
//     succeed in exactly the same states, and reserveUpTo returns 0 in
//     exactly the states tryReserve fails.
//   - Writes and statistical mode fall back to the per-request entry
//     points: a write's c-slot reservation must see the true window count
//     (credit is released first), and the statistical gate's wouldAdmit is
//     count-order-sensitive, so grouping would change its decisions.
//   - The frontier hints (noteFull, noteDeadBefore) fire at the same
//     logical points as the per-request scan.

// BurstReq is one request of a burst submitted via SubmitBurst.
type BurstReq struct {
	Block int64
	// Tenant is the 1-based tenant index the request carries (0 = none).
	// Callers submitting mixed-tenant bursts should present them grouped
	// by tenant (the network layer buckets by tenant exactly like it
	// buckets by shard): any order is correct, but each tenant-cap miss
	// inside an interleaved burst strands and re-reserves the grouped
	// ledger credit.
	Tenant int32
	Write  bool
}

// BurstScratch is per-caller reusable state for SubmitBurst. The zero value
// is ready to use; a nil scratch makes SubmitBurst allocate. Outcomes
// returned against a scratch are valid until its next use.
type BurstScratch struct {
	outs []Outcome
}

// outcomes returns a len-n outcome buffer, reusing the scratch when there
// is one.
func (sc *BurstScratch) outcomes(n int) []Outcome {
	if sc == nil {
		return make([]Outcome, n)
	}
	if cap(sc.outs) < n {
		sc.outs = make([]Outcome, n)
	}
	return sc.outs[:n]
}

// submitBurst admits reqs — simultaneous arrivals sharing one timestamp —
// in input order, writing one outcome per request into outs. With a nil
// idx the burst is reqs[0:len(reqs)] and outcome i lands in outs[i]
// (len(outs) == len(reqs)). A non-nil idx is the scatter form behind
// sharded fan-out: the burst is reqs[idx[0]], reqs[idx[1]], … in idx
// order, and each outcome lands in outs[idx[k]] — the caller partitions
// one request slice across engines by index and never copies requests or
// outcomes.
func (e *engine) submitBurst(arrival float64, reqs []BurstReq, idx []int32, outs []Outcome) {
	n := len(reqs)
	if idx != nil {
		n = len(idx)
	}
	if e.stat != nil {
		// Statistical admission is count-order-sensitive (wouldAdmit reads
		// the live window count against the published Q snapshot), so the
		// burst runs the exact per-request path.
		for k := 0; k < n; k++ {
			ri := k
			if idx != nil {
				ri = int(idx[k])
			}
			if r := &reqs[ri]; r.Write {
				outs[ri] = e.submitWrite(arrival, r.Block, r.Tenant)
			} else {
				outs[ri] = e.submit(arrival, r.Block, r.Tenant)
			}
		}
		return
	}
	// One tenant-policy snapshot per burst, loaded lazily at the first
	// tenanted request (so tenant-less bursts pay one predictable branch
	// per frame and no atomic load): a TENANT SET racing the burst lands
	// on a request boundary at worst.
	var (
		snap       *admission.MCSnap
		snapLoaded bool
		arrivalW   int64
	)
	// One availability snapshot per burst: single-threaded this is
	// indistinguishable from per-request snapshots; under concurrency a
	// mask flip lands on a burst boundary instead of a frame boundary.
	mask, limit, masked := e.maskLimit()
	var (
		curW   int64 // window holding unconsumed burst credit
		credit int   // reserved-but-unconsumed slots in curW
		locked bool  // schedMu held across the burst's read run
	)
	for k := 0; k < n; k++ {
		i := k
		if idx != nil {
			i = int(idx[k])
		}
		r := &reqs[i]
		tenant := r.Tenant
		if tenant != 0 && !snapLoaded {
			snap = e.tenants.Snapshot()
			snapLoaded = true
			if snap != nil {
				arrivalW = e.window(arrival)
			}
		}
		gated := tenant != 0 && snap != nil
		if r.Write {
			// submitWrite reserves c slots against the true window count and
			// takes its own locks (and runs its own tenant gate); drop the
			// credit and the scheduler lock so it sees exactly the
			// per-request state.
			if credit > 0 {
				e.ledger.release(curW, credit)
				credit = 0
			}
			if locked {
				e.schedMu.Unlock()
				locked = false
			}
			outs[i] = e.submitWrite(arrival, r.Block, tenant)
			continue
		}
		if gated {
			// Arrival-side gate, same order as the per-request path:
			// limit first (no ledger credit), then availability.
			switch snap.NoteArrival(tenant, arrivalW) {
			case admission.Unknown:
				outs[i] = Outcome{Rejected: true, Admitted: arrival, Tenant: tenant}
				continue
			case admission.OverLimit:
				outs[i] = Outcome{Rejected: true, OverLimit: true, Admitted: arrival, Tenant: tenant}
				continue
			}
		}
		replicas := e.Replicas(r.Block)
		if masked && aliveReplicas(replicas, mask) == 0 {
			if gated {
				snap.NoteRejected(tenant)
			}
			outs[i] = Outcome{Rejected: true, Unavailable: true, Admitted: arrival, Tenant: tenant}
			continue
		}
		if gated && snap.Cap(tenant) < 1 {
			snap.NoteRejected(tenant)
			outs[i] = Outcome{Rejected: true, Admitted: arrival, Tenant: tenant}
			continue
		}
		tAdm := e.startFrom(arrival)
		w := e.window(tAdm)
	scan:
		for {
			tenantReserved := false
			if gated {
				// Tenant cap before any ledger interaction: a cap miss
				// advances the scan without consuming or stranding the
				// window's grouped credit for other requests.
				res, ok := snap.Acquire(tenant, w, 1)
				if !ok {
					if e.reject {
						snap.NoteRejected(tenant)
						outs[i] = Outcome{Rejected: true, Admitted: arrival, Tenant: tenant}
						break scan
					}
					w++
					tAdm = float64(w) * e.intervalMS
					continue
				}
				tenantReserved = res
			}
			if credit > 0 && w == curW {
				// Grouped fast path: the slot was reserved with the burst's
				// one counter update for this window.
				credit--
			} else {
				if credit > 0 {
					// The scan moved to another window; stranded credit goes
					// back before the new grouped reservation.
					e.ledger.release(curW, credit)
					credit = 0
				}
				got := e.ledger.reserveUpTo(w, n-k, limit)
				if got == 0 {
					// Window w is full under the snapshot limit — exactly
					// the states the per-request tryReserve fails in.
					if gated {
						snap.Release(tenant, w, 1)
						if tenantReserved {
							snap.NoteDeficit(tenant)
						}
					}
					if e.reject {
						if gated {
							snap.NoteRejected(tenant)
						}
						outs[i] = Outcome{Rejected: true, Admitted: arrival, Tenant: tenant}
						break scan
					}
					if e.hinted {
						e.ledger.noteFull(w + 1)
					}
					w++
					tAdm = float64(w) * e.intervalMS
					continue
				}
				curW = w
				credit = got - 1
			}
			// Slot held in w; the guaranteed path also needs an idle
			// available replica at tAdm. The scheduler lock is taken once
			// per burst read run, not once per frame.
			if !locked {
				e.schedMu.Lock()
				locked = true
			}
			tFree := math.Inf(1)
			for _, d := range replicas {
				if masked && mask&(1<<uint(d)) == 0 {
					continue
				}
				if nf := e.sched.NextFree(d); nf < tFree {
					tFree = nf
				}
			}
			if tFree <= tAdm {
				outs[i] = e.scheduleLocked(arrival, tAdm, replicas, mask, masked, true)
				if tenant != 0 {
					outs[i].Tenant = tenant
					if gated {
						snap.NoteAdmitted(tenant)
					}
				}
				break scan
			}
			// No replica idle at the reserved time: give the slot back and
			// retry at the earliest instant one frees up, marking windows
			// proven dead by device exhaustion (same as the per-request
			// scan; the lock is simply kept across the retry).
			var dead int64
			if e.hinted {
				dead = e.deadBefore()
			}
			e.ledger.release(w, 1)
			if gated {
				snap.Release(tenant, w, 1)
			}
			if e.hinted {
				e.ledger.noteDeadBefore(dead)
			}
			tAdm = tFree
			w = e.window(tAdm)
		}
	}
	if credit > 0 {
		e.ledger.release(curW, credit)
	}
	if locked {
		e.schedMu.Unlock()
	}
}

// SubmitBurst admits a burst of requests that share one arrival timestamp,
// in input order, with grouped ledger reservations and one scheduler lock
// round trip per read run. Outcomes are bit-identical to calling
// Submit/SubmitWrite per request in the same order. With a non-nil scratch
// the call is allocation-free and the returned slice is valid until the
// scratch's next use.
func (s *System) SubmitBurst(arrival float64, reqs []BurstReq, sc *BurstScratch) []Outcome {
	outs := sc.outcomes(len(reqs))
	s.submitBurst(arrival, reqs, nil, outs)
	return outs
}

// SubmitBurst is the concurrent counterpart of System.SubmitBurst: the
// hot-path entry point the network layer drains pipelined frame bursts
// into. Bursts from different goroutines interleave at request granularity
// (grouped reservations shrink room for concurrent callers only while the
// burst is in flight).
func (s *ConcurrentSystem) SubmitBurst(arrival float64, reqs []BurstReq, sc *BurstScratch) []Outcome {
	outs := sc.outcomes(len(reqs))
	s.sys.submitBurst(arrival, reqs, nil, outs)
	return outs
}

// SubmitBurstScatter admits the sub-burst reqs[idx[0]], reqs[idx[1]], … in
// idx order, writing each outcome to outs[idx[k]]. It exists for fan-out
// layers (shard.Array) that partition one request slice across several
// systems: each system walks its own index list over the shared backing
// arrays, so the partition copies no requests and the scatter copies no
// outcomes. len(outs) must be at least len(reqs). Outcomes are
// bit-identical to calling Submit/SubmitWrite per request in idx order.
func (s *ConcurrentSystem) SubmitBurstScatter(arrival float64, reqs []BurstReq, idx []int32, outs []Outcome) {
	if idx == nil {
		idx = []int32{} // nil means "whole slice" internally; scatter of none is none
	}
	s.sys.submitBurst(arrival, reqs, idx, outs)
}

// BatchScratch is per-caller reusable state for SubmitBatch — the joint
// §III batch path. The zero value is ready to use; a nil scratch makes
// SubmitBatch allocate. Outcomes returned against a scratch are valid
// until its next use.
type BatchScratch struct {
	outs     []Outcome
	replicas [][]int
	idx      []int
	alive    []int // flat backing for masked replica compaction
	comps    []retrieval.Completion
}

func (sc *BatchScratch) outcomes(n int) []Outcome {
	if cap(sc.outs) < n {
		sc.outs = make([]Outcome, n)
	}
	return sc.outs[:n]
}

func (sc *BatchScratch) replicaBuf(n int) [][]int {
	if cap(sc.replicas) < n {
		sc.replicas = make([][]int, n)
	}
	return sc.replicas[:n]
}

func (sc *BatchScratch) idxBuf(n int) []int {
	if cap(sc.idx) < n {
		sc.idx = make([]int, 0, n)
	}
	return sc.idx[:0]
}

// aliveBuf returns a flat device buffer with capacity for n replica lists
// of up to c devices each. Capacity is reserved up front so appends never
// reallocate and the sub-slices handed out stay valid.
func (sc *BatchScratch) aliveBuf(n, c int) []int {
	if cap(sc.alive) < n*c {
		sc.alive = make([]int, 0, n*c)
	}
	return sc.alive[:0]
}
