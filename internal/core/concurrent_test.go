package core

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"flashqos/internal/admission"
	"flashqos/internal/design"
)

func newConcurrent(t testing.TB, cfg Config) *ConcurrentSystem {
	t.Helper()
	if cfg.Design == nil && cfg.N == 0 {
		cfg.Design = design.Paper931()
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewConcurrent(sys)
}

// TestConcurrentSubmitStress floods a ConcurrentSystem from many
// goroutines at ~5× the admission capacity S/T and asserts the paper's
// core invariant survives the concurrency: every request is admitted
// (Delay policy), no window ever exceeds S admissions, and the guaranteed
// path holds (service starts exactly at the admitted time, so the
// response time equals the service time). Run under -race this doubles as
// the memory-safety proof for the sharded admission path.
func TestConcurrentSubmitStress(t *testing.T) {
	cs := newConcurrent(t, Config{})
	const (
		goroutines = 16
		perG       = 250
		dt         = 0.005 // ms between arrivals → 200 req/ms offered vs ~37.6 capacity
	)
	var clock atomic.Int64
	outs := make([][]Outcome, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g] = make([]Outcome, 0, perG)
			for i := 0; i < perG; i++ {
				arrival := float64(clock.Add(1)) * dt
				out := cs.Submit(arrival, int64(g*1_000_000+i))
				outs[g] = append(outs[g], out)
			}
		}(g)
	}
	wg.Wait()

	s := cs.S()
	perWindow := make(map[int64]int)
	total := 0
	for g := range outs {
		for _, out := range outs[g] {
			total++
			if out.Rejected {
				t.Fatalf("request rejected under Delay policy: %+v", out)
			}
			if out.Admitted < 0 {
				t.Fatalf("negative admit time: %+v", out)
			}
			if math.Abs(out.Start-out.Admitted) > 1e-9 {
				t.Fatalf("guaranteed path violated: start %.9f != admitted %.9f", out.Start, out.Admitted)
			}
			if r := out.Response(); math.Abs(r-cs.System().cfg.ServiceMS) > 1e-9 {
				t.Fatalf("response %.9f != service time %.9f", r, cs.System().cfg.ServiceMS)
			}
			perWindow[cs.Window(out.Admitted)]++
		}
	}
	if total != goroutines*perG {
		t.Fatalf("outcomes = %d, want %d", total, goroutines*perG)
	}
	for w, n := range perWindow {
		if n > s {
			t.Errorf("window %d admitted %d requests, limit S=%d", w, n, s)
		}
	}
	if max := cs.MaxWindowCount(); max > s {
		t.Errorf("MaxWindowCount = %d, limit S=%d", max, s)
	}
}

// TestConcurrentMixedReadWriteStress mixes reads and writes. A write
// consumes c admission slots, so the per-window invariant becomes
// reads(w) + c·writes(w) ≤ S.
func TestConcurrentMixedReadWriteStress(t *testing.T) {
	cs := newConcurrent(t, Config{})
	c := cs.System().Design().C
	const (
		goroutines = 12
		perG       = 120
	)
	var clock atomic.Int64
	type res struct {
		out   Outcome
		write bool
	}
	results := make([][]res, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				arrival := float64(clock.Add(1)) * 0.01
				block := int64(rng.Intn(5000))
				if rng.Intn(4) == 0 {
					results[g] = append(results[g], res{cs.SubmitWrite(arrival, block), true})
				} else {
					results[g] = append(results[g], res{cs.Submit(arrival, block), false})
				}
			}
		}(g)
	}
	wg.Wait()

	s := cs.S()
	slots := make(map[int64]int)
	for g := range results {
		for _, r := range results[g] {
			if r.out.Rejected {
				t.Fatalf("rejected under Delay policy: %+v", r.out)
			}
			w := cs.Window(r.out.Admitted)
			if r.write {
				slots[w] += c
			} else {
				slots[w]++
			}
		}
	}
	for w, n := range slots {
		if n > s {
			t.Errorf("window %d consumed %d slots, limit S=%d", w, n, s)
		}
	}
}

// TestConcurrentRejectPolicy floods one instant with far more requests
// than one window holds under the Reject policy: no window may exceed S
// admissions and every request is either admitted or rejected.
func TestConcurrentRejectPolicy(t *testing.T) {
	cs := newConcurrent(t, Config{Policy: admission.Reject})
	const n = 64
	outs := make([]Outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = cs.Submit(0, int64(i))
		}(i)
	}
	wg.Wait()

	s := cs.S()
	perWindow := make(map[int64]int)
	admitted, rejected := 0, 0
	for _, out := range outs {
		if out.Rejected {
			rejected++
			continue
		}
		admitted++
		perWindow[cs.Window(out.Admitted)]++
	}
	if admitted+rejected != n {
		t.Fatalf("admitted %d + rejected %d != %d", admitted, rejected, n)
	}
	if admitted == 0 {
		t.Fatal("no request admitted at an empty instant")
	}
	if rejected == 0 {
		t.Fatalf("flooding %d simultaneous requests (S=%d) rejected none", n, s)
	}
	for w, cnt := range perWindow {
		if cnt > s {
			t.Errorf("window %d admitted %d, limit S=%d", w, cnt, s)
		}
	}
}

// TestConcurrentMatchesSequential drives identical request sequences
// through a sequential System and a single-goroutine ConcurrentSystem and
// requires bit-identical outcomes: the concurrent admission algorithm is
// a parallelization of the sequential one, not a different policy.
func TestConcurrentMatchesSequential(t *testing.T) {
	for _, policy := range []admission.Policy{admission.Delay, admission.Reject} {
		seq, err := New(Config{Design: design.Paper931(), Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		cs := newConcurrent(t, Config{Policy: policy})

		rng := rand.New(rand.NewSource(7))
		const n = 2000
		arrivals := make([]float64, n)
		for i := range arrivals {
			arrivals[i] = rng.Float64() * 20 // ms; dense enough to overflow windows
		}
		sort.Float64s(arrivals)
		for i, arr := range arrivals {
			block := int64(rng.Intn(3000))
			write := rng.Intn(8) == 0
			var a, b Outcome
			if write {
				a, b = seq.SubmitWrite(arr, block), cs.SubmitWrite(arr, block)
			} else {
				a, b = seq.Submit(arr, block), cs.Submit(arr, block)
			}
			if a != b {
				t.Fatalf("policy %v, request %d (arr=%.6f block=%d write=%v):\nsequential %+v\nconcurrent %+v",
					policy, i, arr, block, write, a, b)
			}
		}
	}
}

// TestConcurrentStatisticalSerialized exercises the ε > 0 path, which
// serializes through the sequential System, from many goroutines — under
// -race this proves the serial path is actually serialized, including the
// arrival-clamping that keeps Submit's ordering contract.
func TestConcurrentStatisticalSerialized(t *testing.T) {
	cs := newConcurrent(t, Config{Epsilon: 0.05, SampleTrials: 2000})
	const goroutines, perG = 8, 100
	var clock atomic.Int64
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				arrival := float64(clock.Add(1)) * 0.01
				out := cs.Submit(arrival, int64(g*1000+i))
				if !out.Rejected {
					admitted.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := admitted.Load(); got != goroutines*perG {
		t.Errorf("admitted %d, want %d (Delay policy rejects nothing)", got, goroutines*perG)
	}
	if q := cs.Q(); q < 0 || q > 1 {
		t.Errorf("Q = %g, want a probability", q)
	}
}

// TestConcurrentAccessors sanity-checks the read-only delegates the
// network layer relies on.
func TestConcurrentAccessors(t *testing.T) {
	cs := newConcurrent(t, Config{})
	if cs.S() != cs.System().S() {
		t.Errorf("S mismatch: %d vs %d", cs.S(), cs.System().S())
	}
	if cs.IntervalMS() != cs.System().cfg.IntervalMS {
		t.Errorf("IntervalMS mismatch")
	}
	if got, want := cs.DesignBlock(100), cs.System().Mapper().DesignBlock(100); got != want {
		t.Errorf("DesignBlock(100) = %d, want %d", got, want)
	}
	reps := cs.Replicas(100)
	if len(reps) != cs.System().Design().C {
		t.Errorf("Replicas(100) = %v, want %d devices", reps, cs.System().Design().C)
	}
	if q := cs.Q(); q != 0 {
		t.Errorf("deterministic Q = %g, want 0", q)
	}
	if w := cs.Window(0); w != 0 {
		t.Errorf("Window(0) = %d, want 0", w)
	}
}

// TestWindowShardPruning pushes the admission frontier across far more
// windows than the prune threshold and checks old counters are dropped
// while the invariant still holds for live ones.
func TestWindowShardPruning(t *testing.T) {
	cs := newConcurrent(t, Config{})
	led := cs.System().ledger.(*shardedLedger)
	// Touch many distinct windows directly through the counter path.
	const windows = windowShardCount * (shardPruneLen + 100)
	for w := int64(0); w < windows; w += windowShardCount {
		led.counter(w).Store(1)
		led.hint.Store(w) // frontier far ahead, as sustained overload leaves it
	}
	sh := &led.shards[0]
	sh.mu.Lock()
	n := len(sh.counts)
	sh.mu.Unlock()
	if n > shardPruneLen+1 {
		t.Errorf("shard 0 tracks %d windows, prune threshold %d", n, shardPruneLen)
	}
}

func BenchmarkConcurrentSubmit(b *testing.B) {
	cs := newConcurrent(b, Config{})
	var clock atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			arrival := float64(clock.Add(1)) * 0.005
			cs.Submit(arrival, i)
			i++
		}
	})
}
